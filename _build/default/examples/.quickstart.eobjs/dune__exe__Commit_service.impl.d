examples/commit_service.ml: Eba Format List
