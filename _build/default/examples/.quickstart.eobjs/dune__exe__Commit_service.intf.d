examples/commit_service.mli:
