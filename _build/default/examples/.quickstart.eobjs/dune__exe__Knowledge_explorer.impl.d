examples/knowledge_explorer.ml: Eba Format
