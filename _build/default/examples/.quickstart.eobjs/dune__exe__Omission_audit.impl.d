examples/omission_audit.ml: Array Eba Format Option
