examples/omission_audit.mli:
