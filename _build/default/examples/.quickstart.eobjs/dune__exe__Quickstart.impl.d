examples/quickstart.ml: Eba Format Option
