examples/quickstart.mli:
