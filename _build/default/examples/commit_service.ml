(* A realistic scenario for the operational layer: a replicated commit
   service.

   A client's transaction is prepared on n replicas; each replica votes
   commit (1) or abort (0) depending on whether its local prepare
   succeeded.  Replicas may crash mid-broadcast.  All surviving replicas
   must reach the same commit/abort verdict (agreement), a unanimous vote
   must win (validity), and the service wants the verdict as early as
   possible — exactly eventual Byzantine agreement in the crash model.

   We compare three engines on the same workload:
     - FloodSet   : the classical simultaneous protocol (always t+1 rounds)
     - P0opt      : the paper's optimal EBA protocol (t = 1 optimal)
     - P0opt+     : the delivery-evidence variant, optimal for every t
   The point the paper's introduction makes — eventual decisions usually
   come much earlier than simultaneous ones — is visible directly in the
   mean decision times.

     dune exec examples/commit_service.exe
*)

let scenario ~n ~t ~samples =
  let params = Eba.Params.make ~n ~t ~horizon:(t + 2) ~mode:Eba.Params.Crash in
  Format.printf "@.== commit service: %d replicas, at most %d crashes, %d workloads ==@."
    n t samples;
  Format.printf "%a" Eba.Stats.pp_table_header ();
  List.iter
    (fun p ->
      let s = Eba.Stats.sampled p params ~seed:2024 ~samples in
      Format.printf "%a" Eba.Stats.pp_table_row s)
    [
      (module Eba.Floodset : Eba.Protocol_intf.PROTOCOL);
      (module Eba.P0opt);
      (module Eba.P0opt_plus);
    ];
  (* decision-time profile by how many replicas actually crashed *)
  let s = Eba.Stats.sampled (module Eba.P0opt_plus) params ~seed:2024 ~samples in
  Format.printf "P0opt+ decision times by actual crash count:@.";
  List.iter
    (fun (b : Eba.Stats.by_failures) ->
      Format.printf "  %d crashes: %5d runs, mean %.2f rounds, worst %d (SBA baseline: always %d)@."
        b.Eba.Stats.failures b.Eba.Stats.count b.Eba.Stats.mean_time b.Eba.Stats.max_time
        (t + 1))
    s.Eba.Stats.by_failures

let () =
  scenario ~n:5 ~t:2 ~samples:2000;
  scenario ~n:9 ~t:3 ~samples:1000;
  scenario ~n:15 ~t:4 ~samples:300
