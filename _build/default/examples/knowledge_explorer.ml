(* Exploring states of knowledge directly: evaluate formulas of the
   Section 3 logic over a bounded model and watch how knowledge,
   common knowledge, and continual common knowledge differ.

     dune exec examples/knowledge_explorer.exe
*)

let count name env formula =
  let pset = Eba.Formula.eval env formula in
  Format.printf "  %-42s holds at %5d / %d points@." name (Eba.Pset.cardinal pset)
    (Eba.Pset.length pset)

let () =
  let params = Eba.Params.make ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Crash in
  let model = Eba.Model.build params in
  let env = Eba.Formula.env model in
  Format.printf "%a@.@." Eba.Model.pp_stats model;

  let nf = Eba.Nonrigid.nonfaulty model in
  let e0 = Eba.Formula.exists_value model Eba.Value.zero in

  Format.printf "the ladder from truth to continual common knowledge (phi = \"some initial 0\"):@.";
  count "phi" env e0;
  count "K_0 phi" env (Eba.Formula.K (0, e0));
  count "E_N phi" env (Eba.Formula.E (nf, e0));
  count "E_N E_N phi" env (Eba.Formula.E (nf, Eba.Formula.E (nf, e0)));
  count "C_N phi  (common knowledge)" env (Eba.Formula.C (nf, e0));
  count "E□_N phi" env (Eba.Formula.Ebox (nf, e0));
  count "C□_N phi (continual common knowledge)" env (Eba.Formula.Cbox (nf, e0));

  Format.printf "@.temporal structure:@.";
  count "◇ K_0 phi" env (Eba.Formula.Eventually (Eba.Formula.K (0, e0)));
  count "□ K_0 phi" env (Eba.Formula.Always (Eba.Formula.K (0, e0)));
  count "⊟ K_0 phi" env (Eba.Formula.Throughout (Eba.Formula.K (0, e0)));

  (* The decision condition of the optimal protocol, spelled out: a
     processor decides 0 exactly when it believes e0 is continual common
     knowledge among the nonfaulty processors that have decided 1 --
     which, here, means that set must stay empty. *)
  Format.printf "@.the optimal decision conditions (Theorem 5.3):@.";
  let pair = Eba.Zoo.f_lambda_2 env in
  let n_and_o = Eba.Kb_protocol.conjoin env nf "N&O" pair.Eba.Kb_protocol.one in
  count "B^N_0 (e0 ∧ C□_{N∧O} e0)" env
    (Eba.Formula.B (nf, 0, Eba.Formula.And [ e0; Eba.Formula.Cbox (n_and_o, e0) ]));
  let d = Eba.Kb_protocol.decide model pair in
  count "decide_0(0) in F^Λ,2" env (Eba.Kb_protocol.decided_atom env d Eba.Value.zero 0);

  (* And the reachability view of C□: pick a run and see how much of the
     model is S-□-reachable from it. *)
  Format.printf "@.S-□-reachability (runs reachable from run 0): %d / %d@."
    (Eba.Pset.cardinal
       (Eba.Continual.reachable_runs (Eba.Continual.closure model nf) ~run:0))
    (Eba.Model.nruns model)
