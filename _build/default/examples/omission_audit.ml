(* The omission-mode story of Section 6, end to end.

   A fleet of sensor gateways votes on whether to raise an alarm; faulty
   gateways silently drop outgoing reports (sending omissions) without
   crashing.  Two lessons from the paper:

   1. Prop 6.3: the protocol that is optimal for crashes (F^Λ,2) can fail
      to terminate under omissions — we exhibit the exact run.
   2. Prop 6.4 / 6.6: the 0-chain protocol decides within f+1 rounds, and
      its two-step optimization F* is an optimal omission-mode EBA
      protocol.

     dune exec examples/omission_audit.exe
*)

let nontermination () =
  Format.printf "== Prop 6.3: crash-optimal protocol, omission failures ==@.";
  let params = Eba.Params.make ~n:4 ~t:2 ~horizon:2 ~mode:Eba.Params.Omission in
  let model = Eba.Model.build params in
  Format.printf "built %a@." Eba.Model.pp_stats model;
  let env = Eba.Formula.env model in
  let fl2 = Eba.Zoo.f_lambda_2 env in
  let d = Eba.Kb_protocol.decide model fl2 in
  let report = Eba.Spec.check d in
  Format.printf "F^L,2 under omissions: consistent (%b) but decision fails (%b)@."
    (Eba.Spec.is_nontrivial_agreement report)
    report.Eba.Spec.decision;
  (* the witness run: unanimous 1, gateway 0 silently drops everything *)
  let omits = Array.make 2 (Eba.Bitset.of_list [ 1; 2; 3 ]) in
  let pattern =
    Eba.Pattern.make params [ Eba.Pattern.omission ~horizon:2 ~proc:0 ~omits ]
  in
  let config = Eba.Config.constant ~n:4 Eba.Value.One in
  let run = Option.get (Eba.Model.find_run model ~config ~pattern) in
  Format.printf "witness: all vote 1, gateway 0 drops all reports:@.";
  for i = 1 to 3 do
    (match Eba.Kb_protocol.outcome d ~run:run.Eba.Model.index ~proc:i with
    | None -> Format.printf "  gateway %d (healthy) never decides@." i
    | Some { Eba.Kb_protocol.at; value } ->
        Format.printf "  gateway %d decides %a at %d@." i Eba.Value.pp value at)
  done

let chain_protocol () =
  Format.printf "@.== Prop 6.4/6.6: the 0-chain protocol and F* ==@.";
  let params = Eba.Params.make ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Omission in
  let model = Eba.Model.build params in
  let env = Eba.Formula.env model in
  let chain = Eba.Zoo.chain_zero env in
  let dchain = Eba.Kb_protocol.decide model chain in
  Format.printf "FIP(Z0,O0): %a@." Eba.Spec.pp (Eba.Spec.check dchain);
  let fstar = Eba.Zoo.f_star env in
  let dstar = Eba.Kb_protocol.decide model fstar in
  Format.printf "F*: EBA %b, optimal %b, dominates the chain protocol %b@."
    (Eba.Spec.is_eba (Eba.Spec.check dstar))
    (Eba.Characterize.is_optimal env dstar)
    (Eba.Dominance.dominates dstar dchain)

let operational_fleet () =
  Format.printf "@.== operational: 10 gateways, up to 3 omitters ==@.";
  let params = Eba.Params.make ~n:10 ~t:3 ~horizon:5 ~mode:Eba.Params.Omission in
  let s = Eba.Stats.sampled (module Eba.Chain0) params ~seed:99 ~samples:2000 in
  Format.printf "%a" Eba.Stats.pp s;
  Format.printf "(worst-case decision stays within f+1 in every sampled run)@."

let () =
  nontermination ();
  chain_protocol ();
  operational_fleet ()
