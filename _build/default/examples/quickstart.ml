(* Quickstart: build a bounded model, derive the optimal EBA protocol with
   the paper's two-step construction, check it against the specification
   and the Theorem 5.3 characterization, and look at a few runs.

     dune exec examples/quickstart.exe
*)

let () =
  (* A synchronous system: 3 processors, at most 1 crash, 3 rounds. *)
  let params = Eba.Params.make ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Crash in
  let model = Eba.Model.build params in
  Format.printf "built %a@." Eba.Model.pp_stats model;

  (* The knowledge-based layer works against this model. *)
  let env = Eba.Formula.env model in

  (* Start from the protocol in which nobody ever decides, and apply the
     paper's two-step optimization (Theorem 5.2). *)
  let never = Eba.Kb_protocol.never_decide model in
  let optimal = Eba.Construct.optimize env never in

  (* It is an EBA protocol ... *)
  let decisions = Eba.Kb_protocol.decide model optimal in
  let report = Eba.Spec.check decisions in
  Format.printf "specification: %a@." Eba.Spec.pp report;
  assert (Eba.Spec.is_eba report);

  (* ... and it is optimal, by the Theorem 5.3 characterization. *)
  assert (Eba.Characterize.is_optimal env decisions);
  Format.printf "optimal by the continual-common-knowledge characterization@.";

  (* It strictly dominates the classic protocol P0. *)
  let p0 = Eba.Kb_protocol.decide model (Eba.Zoo.p0 env) in
  let verdict = Eba.Dominance.compare decisions p0 in
  Format.printf "vs P0: %a@." Eba.Dominance.pp verdict;

  (* Inspect a concrete run: all processors start with 1, processor 0
     crashes in round 1 without delivering anything. *)
  let pattern =
    Eba.Pattern.make params
      [
        Eba.Pattern.crash ~horizon:3 ~proc:0 ~round:1 ~recipients:Eba.Bitset.empty;
      ]
  in
  let config = Eba.Config.constant ~n:3 Eba.Value.One in
  let run = Option.get (Eba.Model.find_run model ~config ~pattern) in
  Format.printf "run: all values 1, processor 0 silent from round 1@.";
  Format.printf "%a" (Eba.Trace.pp_run ~decisions model ~run:run.Eba.Model.index) ()
