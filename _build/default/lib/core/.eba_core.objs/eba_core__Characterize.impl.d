lib/core/characterize.ml: Eba_epistemic Eba_fip Eba_sim Kb_protocol List Printf
