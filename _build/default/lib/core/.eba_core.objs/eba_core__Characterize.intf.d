lib/core/characterize.mli: Eba_epistemic Kb_protocol
