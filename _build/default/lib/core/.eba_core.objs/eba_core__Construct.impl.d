lib/core/construct.ml: Decision_set Eba_epistemic Eba_sim Kb_protocol
