lib/core/construct.mli: Eba_epistemic Kb_protocol
