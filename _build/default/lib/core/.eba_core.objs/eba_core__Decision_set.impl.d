lib/core/decision_set.ml: Array Bytes Eba_epistemic Eba_fip
