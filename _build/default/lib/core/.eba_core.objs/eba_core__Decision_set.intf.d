lib/core/decision_set.mli: Eba_epistemic Eba_fip
