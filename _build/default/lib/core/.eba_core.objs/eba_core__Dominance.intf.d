lib/core/dominance.mli: Eba_fip Format Kb_protocol
