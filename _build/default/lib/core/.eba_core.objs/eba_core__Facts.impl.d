lib/core/facts.ml: Array Eba_epistemic Eba_fip Eba_sim Eba_util Hashtbl
