lib/core/facts.mli: Eba_epistemic
