lib/core/kb_protocol.ml: Array Decision_set Eba_epistemic Eba_fip Eba_sim Eba_util Format List
