lib/core/kb_protocol.mli: Decision_set Eba_epistemic Eba_fip Eba_sim Eba_util
