lib/core/spec.ml: Eba_fip Eba_sim Eba_util Format Kb_protocol List Option
