lib/core/spec.mli: Eba_fip Eba_sim Format Kb_protocol
