lib/core/trace.mli: Eba_fip Format Kb_protocol
