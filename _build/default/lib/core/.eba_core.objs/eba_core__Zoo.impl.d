lib/core/zoo.ml: Construct Decision_set Eba_epistemic Eba_fip Eba_sim Facts Kb_protocol
