lib/core/zoo.mli: Eba_epistemic Eba_fip Kb_protocol
