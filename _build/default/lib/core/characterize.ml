module Formula = Eba_epistemic.Formula
module Nonrigid = Eba_epistemic.Nonrigid
module Pset = Eba_epistemic.Pset
module Value = Eba_sim.Value
module Model = Eba_fip.Model

type failure = { condition : string; point : int; proc : int }

type ctx = {
  env : Formula.env;
  n : Nonrigid.t;
  e0 : Formula.t;
  e1 : Formula.t;
  c_zero : Formula.t;  (* C□_{N∧O} ∃0 *)
  c_one : Formula.t;  (* C□_{N∧Z} ∃1 *)
  dec : Value.t -> int -> Formula.t;
}

let ctx env (d : Kb_protocol.decisions) =
  let model = Formula.model env in
  let n = Nonrigid.nonfaulty model in
  let pair = d.Kb_protocol.pair in
  let n_and_o = Kb_protocol.conjoin env n "N&O" pair.Kb_protocol.one in
  let n_and_z = Kb_protocol.conjoin env n "N&Z" pair.Kb_protocol.zero in
  let e0 = Formula.exists_value model Value.zero in
  let e1 = Formula.exists_value model Value.one in
  {
    env;
    n;
    e0;
    e1;
    c_zero = Formula.Cbox (n_and_o, e0);
    c_one = Formula.Cbox (n_and_z, e1);
    dec = (fun y i -> Kb_protocol.decided_atom env d y i);
  }

let check_per_proc env nprocs mk =
  let failures = ref [] in
  for i = 0 to nprocs - 1 do
    let condition, formula = mk i in
    match Formula.counterexample env formula with
    | None -> ()
    | Some point -> failures := { condition; point; proc = i } :: !failures
  done;
  List.rev !failures

let necessary env d =
  let c = ctx env d in
  let model = Formula.model env in
  let mk_zero i =
    ( Printf.sprintf "4.3a: decide_%d(0) => B(e0 & Cbox[N&O] e0 & ~decide(1))" i,
      Formula.Implies
        ( c.dec Value.Zero i,
          Formula.B
            (c.n, i, Formula.And [ c.e0; c.c_zero; Formula.Not (c.dec Value.One i) ]) ) )
  in
  let mk_one i =
    ( Printf.sprintf "4.3b: decide_%d(1) => B(e1 & Cbox[N&Z] e1 & ~decide(0))" i,
      Formula.Implies
        ( c.dec Value.One i,
          Formula.B
            (c.n, i, Formula.And [ c.e1; c.c_one; Formula.Not (c.dec Value.Zero i) ]) ) )
  in
  check_per_proc env (Model.n model) mk_zero
  @ check_per_proc env (Model.n model) mk_one

(* Prop 4.4 constrains the decision pair itself, so its decide_i(y) is the
   raw set-membership reading (Kb_protocol.member_atom): the first-entry
   outcome differs only at views whose owner knows itself faulty, where
   every B^N_i formula is vacuously true and outcomes are unconstrained. *)
let sufficient_zero_anchored env (d : Kb_protocol.decisions) =
  let c = ctx env d in
  let model = Formula.model env in
  let mem = Kb_protocol.member_atom env d.Kb_protocol.pair in
  let ok = ref true in
  for i = 0 to Model.n model - 1 do
    let a = Formula.Implies (mem Value.Zero i, Formula.B (c.n, i, c.e0)) in
    let b =
      Formula.Iff (mem Value.One i, Formula.B (c.n, i, Formula.And [ c.e1; c.c_one ]))
    in
    if not (Formula.valid env a && Formula.valid env b) then ok := false
  done;
  !ok

let sufficient_one_anchored env (d : Kb_protocol.decisions) =
  let c = ctx env d in
  let model = Formula.model env in
  let mem = Kb_protocol.member_atom env d.Kb_protocol.pair in
  let ok = ref true in
  for i = 0 to Model.n model - 1 do
    let a =
      Formula.Iff (mem Value.Zero i, Formula.B (c.n, i, Formula.And [ c.e0; c.c_zero ]))
    in
    let b = Formula.Implies (mem Value.One i, Formula.B (c.n, i, c.e1)) in
    if not (Formula.valid env a && Formula.valid env b) then ok := false
  done;
  !ok

let optimality_failures env d =
  let c = ctx env d in
  let model = Formula.model env in
  let mk_zero i =
    ( Printf.sprintf "5.3a: nonfaulty %d decides 0 iff the knowledge condition" i,
      Formula.Implies
        ( Formula.In (c.n, i),
          Formula.Iff
            ( c.dec Value.Zero i,
              Formula.B
                ( c.n,
                  i,
                  Formula.And [ c.e0; c.c_zero; Formula.Not (c.dec Value.One i) ] ) ) ) )
  in
  let mk_one i =
    ( Printf.sprintf "5.3b: nonfaulty %d decides 1 iff the knowledge condition" i,
      Formula.Implies
        ( Formula.In (c.n, i),
          Formula.Iff
            ( c.dec Value.One i,
              Formula.B
                ( c.n,
                  i,
                  Formula.And [ c.e1; c.c_one; Formula.Not (c.dec Value.Zero i) ] ) ) ) )
  in
  check_per_proc env (Model.n model) mk_zero
  @ check_per_proc env (Model.n model) mk_one

let is_optimal env d = optimality_failures env d = []
