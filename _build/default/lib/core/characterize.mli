(** The knowledge-theoretic characterizations of Sections 4 and 5,
    as decidable checks over a model.

    - {!necessary} — Proposition 4.3: in every nontrivial agreement
      protocol, a decision entails belief in the corresponding continual
      common knowledge.
    - {!sufficient_zero_anchored} / {!sufficient_one_anchored} — the two
      alternative antecedents of Proposition 4.4 that guarantee nontrivial
      agreement.
    - {!is_optimal} — Theorem 5.3: a full-information nontrivial agreement
      protocol is optimal iff decisions happen {e exactly} when the
      continual-common-knowledge conditions hold. *)

module Formula = Eba_epistemic.Formula

type failure = { condition : string; point : int; proc : int }
(** A violated condition and a witnessing point. *)

val necessary : Formula.env -> Kb_protocol.decisions -> failure list
(** Empty iff the Proposition 4.3 conditions hold (they must, for any
    nontrivial agreement protocol — a nonempty result flags a bug or a
    non-NTA input). *)

val sufficient_zero_anchored : Formula.env -> Kb_protocol.decisions -> bool
(** Prop 4.4 (a)+(b): deciding 0 entails [B^N_i ∃0], and deciding 1 happens
    exactly on [B^N_i(∃1 ∧ C□_{N∧Z} ∃1)]. *)

val sufficient_one_anchored : Formula.env -> Kb_protocol.decisions -> bool
(** Prop 4.4 (a')+(b'): the symmetric variant anchored at 0. *)

val is_optimal : Formula.env -> Kb_protocol.decisions -> bool
(** The Theorem 5.3 equivalences, restricted to nonfaulty processors. *)

val optimality_failures : Formula.env -> Kb_protocol.decisions -> failure list
