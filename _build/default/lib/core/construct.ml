module Formula = Eba_epistemic.Formula
module Nonrigid = Eba_epistemic.Nonrigid
module Value = Eba_sim.Value

type order = Zero_first | One_first

let nonfaulty_of env =
  let model = Formula.model env in
  Nonrigid.nonfaulty model

let step_zero_first env (pair : Kb_protocol.pair) =
  let model = Formula.model env in
  let n = nonfaulty_of env in
  let n_and_o = Kb_protocol.conjoin env n "N&O" pair.Kb_protocol.one in
  let e0 = Formula.exists_value model Value.zero in
  let e1 = Formula.exists_value model Value.one in
  let c = Formula.Cbox (n_and_o, e0) in
  let zero =
    Decision_set.of_formulas env (fun i -> Formula.B (n, i, Formula.And [ e0; c ]))
  in
  let one =
    Decision_set.of_formulas env (fun i ->
        Formula.B (n, i, Formula.And [ e1; Formula.Not c ]))
  in
  { Kb_protocol.zero; one }

let step_one_first env (pair : Kb_protocol.pair) =
  let model = Formula.model env in
  let n = nonfaulty_of env in
  let n_and_z = Kb_protocol.conjoin env n "N&Z" pair.Kb_protocol.zero in
  let e0 = Formula.exists_value model Value.zero in
  let e1 = Formula.exists_value model Value.one in
  let c = Formula.Cbox (n_and_z, e1) in
  let zero =
    Decision_set.of_formulas env (fun i ->
        Formula.B (n, i, Formula.And [ e0; Formula.Not c ]))
  in
  let one =
    Decision_set.of_formulas env (fun i -> Formula.B (n, i, Formula.And [ e1; c ]))
  in
  { Kb_protocol.zero; one }

let step order = match order with
  | Zero_first -> step_zero_first
  | One_first -> step_one_first

let opposite = function Zero_first -> One_first | One_first -> Zero_first

let optimize ?(first = Zero_first) env pair =
  step (opposite first) env (step first env pair)

let iterate_until_fixpoint ?(first = Zero_first) ?(limit = 8) env pair =
  (* Alternate steps until both orders leave the pair unchanged; report how
     many changing steps were needed.  Theorem 5.2 predicts at most two. *)
  let rec loop order pair steps unchanged =
    if unchanged >= 2 || steps >= limit then (pair, steps)
    else
      let next = step order env pair in
      if Kb_protocol.pair_equal next pair then loop (opposite order) pair steps (unchanged + 1)
      else loop (opposite order) next (steps + 1) 0
  in
  loop first pair 0 0
