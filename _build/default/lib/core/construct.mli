(** The optimization construction of Section 5.

    {!step_zero_first} is the [(Z', O')] step of Proposition 5.1 — decide 0
    as early as possible given the old criterion for deciding 1:

    [Z'_i = B^N_i(∃0 ∧ C□_{N∧O} ∃0)]  and  [O'_i = B^N_i(∃1 ∧ ¬C□_{N∧O} ∃0)].

    {!step_one_first} is the symmetric [(Z'', O'')] step.  Theorem 5.2:
    applying one step and then the other yields an optimal nontrivial
    agreement protocol dominating the original (an optimal EBA protocol if
    the original was EBA); the process is a fixed point after two steps. *)

module Formula = Eba_epistemic.Formula
module Nonrigid = Eba_epistemic.Nonrigid

type order = Zero_first | One_first

val step_zero_first : Formula.env -> Kb_protocol.pair -> Kb_protocol.pair
val step_one_first : Formula.env -> Kb_protocol.pair -> Kb_protocol.pair
val step : order -> Formula.env -> Kb_protocol.pair -> Kb_protocol.pair

val optimize : ?first:order -> Formula.env -> Kb_protocol.pair -> Kb_protocol.pair
(** The two-step construction of Theorem 5.2: [step first] then the
    opposite step.  [first] defaults to [Zero_first] (the order used for
    [F^Λ,2] in Section 6.1; [One_first] is the order used for [F*] in
    Section 6.2). *)

val iterate_until_fixpoint :
  ?first:order -> ?limit:int -> Formula.env -> Kb_protocol.pair -> Kb_protocol.pair * int
(** Alternates steps until both orders leave the pair unchanged, returning
    the final pair and the number of {e changing} steps; exposed to test the
    "two steps suffice" claim of Theorem 5.2.  [limit] (default 8) bounds
    runaway iteration. *)
