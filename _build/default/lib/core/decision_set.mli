(** Decision sets (Section 4): for each processor [i], a set of local
    states (views) at which [i] decides or has decided a given value.

    A decision set is stored as a membership table over the model's view
    arena; since a view records its owner, one table represents the whole
    family [(A_i)_i].  Decision sets defined by knowledge formulas
    ([B^N_i(...)]) are view-measurable by construction; {!of_formulas}
    checks this as it projects point sets onto views. *)

module Model = Eba_fip.Model
module View = Eba_fip.View
module Formula = Eba_epistemic.Formula
module Pset = Eba_epistemic.Pset

type t

val empty : Model.t -> t
val mem : t -> View.id -> bool
(** Is the view in its owner's decision set? *)

val of_views : Model.t -> (View.id -> bool) -> t

val of_formulas : Formula.env -> (int -> Formula.t) -> t
(** [of_formulas env f] builds the set [{A_i}] where [A_i] is the set of
    views of [i] satisfying [f i].  Raises [Invalid_argument] if some
    [f i] is not measurable in [i]'s view (two points sharing [i]'s view
    disagreeing on [f i]). *)

val of_formula : Formula.env -> Formula.t -> t
(** One formula used for every processor (it may still mention the
    processor through {!Formula.B} only if constant; prefer
    {!of_formulas}). *)

val points : Model.t -> t -> proc:int -> Pset.t
(** Points [(r,m)] with [r_proc(m) ∈ A_proc]. *)

val union : Model.t -> t -> t -> t
val inter : Model.t -> t -> t -> t
val equal : t -> t -> bool
val is_empty : t -> bool
val cardinal : t -> int
(** Number of member views, across all processors. *)

val persistent : Model.t -> t -> bool
(** Once a processor's view is in the set, do all its later views in every
    run stay in the set?  The paper's "decides or has decided" reading
    presumes this; we test it rather than assume it. *)
