module Model = Eba_fip.Model
module Bitset = Eba_util.Bitset
module Value = Eba_sim.Value

type verdict = {
  dominates : bool;
  strictly : bool;
  witness_strict : (int * int) option;
  witness_failure : (int * int) option;
}

let same_model (a : Kb_protocol.decisions) (b : Kb_protocol.decisions) =
  if a.Kb_protocol.model != b.Kb_protocol.model then
    invalid_arg "Dominance: decisions from different models"

let compare (d : Kb_protocol.decisions) (d' : Kb_protocol.decisions) =
  same_model d d';
  let model = d.Kb_protocol.model in
  let dominates = ref true
  and witness_failure = ref None
  and witness_strict = ref None in
  for run = 0 to Model.nruns model - 1 do
    Bitset.iter
      (fun i ->
        let o = Kb_protocol.outcome d ~run ~proc:i
        and o' = Kb_protocol.outcome d' ~run ~proc:i in
        match (o, o') with
        | _, None -> ()
        | None, Some _ ->
            dominates := false;
            if !witness_failure = None then witness_failure := Some (run, i)
        | Some { Kb_protocol.at; _ }, Some { Kb_protocol.at = at'; _ } ->
            if at > at' then begin
              dominates := false;
              if !witness_failure = None then witness_failure := Some (run, i)
            end
            else if at < at' && !witness_strict = None then
              witness_strict := Some (run, i))
      (Model.nonfaulty model ~run)
  done;
  (* A strict improvement also counts when the dominating protocol decides
     in a run/processor where the dominated one never does. *)
  if !dominates && !witness_strict = None then begin
    try
      for run = 0 to Model.nruns model - 1 do
        Bitset.iter
          (fun i ->
            match
              (Kb_protocol.outcome d ~run ~proc:i, Kb_protocol.outcome d' ~run ~proc:i)
            with
            | Some _, None ->
                witness_strict := Some (run, i);
                raise Exit
            | (Some _ | None), _ -> ())
          (Model.nonfaulty model ~run)
      done
    with Exit -> ()
  end;
  {
    dominates = !dominates;
    strictly = !dominates && !witness_strict <> None;
    witness_strict = !witness_strict;
    witness_failure = !witness_failure;
  }

let dominates a b = (compare a b).dominates
let strictly_dominates a b = (compare a b).strictly

let equivalent (d : Kb_protocol.decisions) (d' : Kb_protocol.decisions) =
  same_model d d';
  let model = d.Kb_protocol.model in
  let same = ref true in
  for run = 0 to Model.nruns model - 1 do
    Bitset.iter
      (fun i ->
        let o = Kb_protocol.outcome d ~run ~proc:i
        and o' = Kb_protocol.outcome d' ~run ~proc:i in
        let eq =
          match (o, o') with
          | None, None -> true
          | Some { Kb_protocol.at; value }, Some { Kb_protocol.at = at'; value = value' }
            -> at = at' && Value.equal value value'
          | None, Some _ | Some _, None -> false
        in
        if not eq then same := false)
      (Model.nonfaulty model ~run)
  done;
  !same

let pp fmt v =
  Format.fprintf fmt "dominates=%b strictly=%b" v.dominates v.strictly;
  (match v.witness_strict with
  | Some (r, i) -> Format.fprintf fmt " sooner@(run %d, proc %d)" r i
  | None -> ());
  match v.witness_failure with
  | Some (r, i) -> Format.fprintf fmt " fails@(run %d, proc %d)" r i
  | None -> ()
