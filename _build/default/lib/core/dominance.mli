(** Domination between protocols (Section 2.3).

    [P] dominates [P'] iff every nonfaulty processor that decides in a run
    of [P'] also decides in the corresponding run of [P], at least as soon.
    Both protocols' decisions must be computed over the same model, in
    which correspondence of runs is the identity. *)

module Model = Eba_fip.Model

type verdict = {
  dominates : bool;
  strictly : bool;  (** dominates, and somewhere some nonfaulty decides sooner *)
  witness_strict : (int * int) option;  (** (run, proc) deciding strictly sooner *)
  witness_failure : (int * int) option;  (** (run, proc) violating domination *)
}

val compare : Kb_protocol.decisions -> Kb_protocol.decisions -> verdict
(** [compare d d'] reports whether [d]'s protocol dominates [d']'s.
    Raises [Invalid_argument] if the decisions come from different
    models. *)

val dominates : Kb_protocol.decisions -> Kb_protocol.decisions -> bool
val strictly_dominates : Kb_protocol.decisions -> Kb_protocol.decisions -> bool

val equivalent : Kb_protocol.decisions -> Kb_protocol.decisions -> bool
(** Nonfaulty processors decide at the same times with the same values in
    every run (the sense in which Theorem 6.2 identifies [P0opt] and
    [F^Λ,2]). *)

val pp : Format.formatter -> verdict -> unit
