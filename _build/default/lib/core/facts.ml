module Formula = Eba_epistemic.Formula
module Nonrigid = Eba_epistemic.Nonrigid
module Pset = Eba_epistemic.Pset
module Model = Eba_fip.Model
module Pattern = Eba_sim.Pattern
module Config = Eba_sim.Config
module Value = Eba_sim.Value
module Bitset = Eba_util.Bitset

let believes_faulty env ~suspect i =
  let model = Formula.model env in
  let n = Nonrigid.nonfaulty model in
  Formula.eval env (Formula.B (n, i, Formula.Not (Formula.In (n, suspect))))

(* All pairwise believes-faulty tables for a model, suspects indexed
   second. *)
let faulty_tables env =
  let model = Formula.model env in
  let n = Model.n model in
  Array.init n (fun i -> Array.init n (fun j -> believes_faulty env ~suspect:j i))

(* Chain reachability inside one run, as a DP over (chain member set, last
   member).  [reach.(mask * n + last)] at level [m] means: the initial 0 of
   some processor has travelled along a path of distinct processors [mask]
   ending at [last], one hop per round, each hop at round [k] delivered and
   trusted (the receiver does not believe the sender faulty at time [k]).
   A 0-chain exists at [(r,m)] iff some level-[m] path ends at a nonfaulty
   processor; at [m = 0] that is a nonfaulty processor holding a 0. *)
let chains_of_run model bf ~run =
  let n = Model.n model and horizon = Model.horizon model in
  let r = Model.run_of_point model (Model.point model ~run ~time:0) in
  let config = r.Model.config and pattern = r.Model.pattern in
  let nonfaulty = Model.nonfaulty model ~run in
  let nmasks = 1 lsl n in
  let reach = Array.make (nmasks * n) false in
  for j = 0 to n - 1 do
    if Value.equal (Config.value config j) Value.Zero then
      reach.((Bitset.to_int (Bitset.singleton j) * n) + j) <- true
  done;
  let chain_at = Array.make (horizon + 1) false in
  let ends_nonfaulty level_reach =
    let ok = ref false in
    for mask = 0 to nmasks - 1 do
      for last = 0 to n - 1 do
        if level_reach.((mask * n) + last) && Bitset.mem last nonfaulty then ok := true
      done
    done;
    !ok
  in
  let current = ref reach in
  chain_at.(0) <- ends_nonfaulty !current;
  for k = 1 to horizon do
    let next = Array.make (nmasks * n) false in
    let pid_k = Model.point model ~run ~time:k in
    for mask = 0 to nmasks - 1 do
      for last = 0 to n - 1 do
        if !current.((mask * n) + last) then
          for j' = 0 to n - 1 do
            if
              (not (Bitset.mem j' (Bitset.of_int mask)))
              && Pattern.delivers pattern ~round:k ~sender:last ~receiver:j'
              && not (Pset.mem bf.(j').(last) pid_k)
            then next.(((mask lor (1 lsl j')) * n) + j') <- true
          done
      done
    done;
    current := next;
    chain_at.(k) <- ends_nonfaulty !current
  done;
  chain_at

module Model_tbl = Hashtbl.Make (struct
  type t = Model.t

  let equal = ( == )
  let hash m = Hashtbl.hash (Model.nruns m, Model.npoints m)
end)

let caches : bool array array Model_tbl.t = Model_tbl.create 8

let chain_table env =
  let model = Formula.model env in
  match Model_tbl.find_opt caches model with
  | Some t -> t
  | None ->
      let bf = faulty_tables env in
      let t =
        Array.init (Model.nruns model) (fun run -> chains_of_run model bf ~run)
      in
      Model_tbl.add caches model t;
      t

let chain_at env ~run ~time = (chain_table env).(run).(time)

let exists0_star env =
  let model = Formula.model env in
  let table = chain_table env in
  Formula.atom model "exists0*" (fun pid ->
      let run = Model.run_index_of_point model pid in
      let time = Model.time_of_point model pid in
      let chain = table.(run) in
      let rec any m = m >= 0 && (chain.(m) || any (m - 1)) in
      any time)
