(** Derived basic facts used by the Section 6 protocols.

    The central one is [∃0*] (Section 6.2): a {e 0-chain} exists at point
    [(r,m)] iff an initial value of 0 has travelled along a path of
    distinct processors, one hop per round — distinct [i_0, ..., i_m] such
    that [i_0] has initial value 0, each [i_k] received [i_{k-1}]'s
    round-[k] message and does not believe [i_{k-1}] faulty at time [k],
    and [i_m] is nonfaulty.  (At [m = 0] this degenerates to "a nonfaulty
    processor holds a 0".)  [∃0*] holds at [(r,m)] iff a 0-chain exists at
    some [(r,m')] with [m' <= m].

    The paper's prose indexes the chain as [m] processors at time [m]; the
    hop-per-round reading used here is the one under which its Lemma A.10
    and A.11 arguments go through (chain membership must be acquired the
    round the value arrives, before omission echoes can reveal the
    sender's faultiness), and it makes the Prop 6.6 equivalences
    machine-checkable. *)

module Formula = Eba_epistemic.Formula
module Pset = Eba_epistemic.Pset

val believes_faulty : Formula.env -> suspect:int -> int -> Pset.t
(** [believes_faulty env ~suspect i] is the point set of
    [B^N_i(suspect ∉ N)] — processor [i] believes [suspect] is faulty. *)

val exists0_star : Formula.env -> Formula.t
(** The [∃0*] atom over the whole model. *)

val chain_at : Formula.env -> run:int -> time:int -> bool
(** Is there a 0-chain ending exactly at [(run, time)] (a trusted delivery
    path of [time] hops from a 0)?  Exposed for unit tests of the chain
    semantics. *)
