module Model = Eba_fip.Model
module Value = Eba_sim.Value
module Formula = Eba_epistemic.Formula
module Nonrigid = Eba_epistemic.Nonrigid
module Bitset = Eba_util.Bitset

type pair = { zero : Decision_set.t; one : Decision_set.t }

let never_decide model = { zero = Decision_set.empty model; one = Decision_set.empty model }

let pair_equal a b =
  Decision_set.equal a.zero b.zero && Decision_set.equal a.one b.one

type outcome = { at : int; value : Value.t }

type decisions = {
  model : Model.t;
  pair : pair;
  table : outcome option array;
  ambiguities : (int * int * int) list;
}

let decide model pair =
  let n = Model.n model and horizon = Model.horizon model in
  let table = Array.make (Model.nruns model * n) None in
  let ambiguities = ref [] in
  for run = 0 to Model.nruns model - 1 do
    for i = 0 to n - 1 do
      let rec first time =
        if time > horizon then ()
        else
          let v = Model.view model ~run ~time ~proc:i in
          let in_zero = Decision_set.mem pair.zero v
          and in_one = Decision_set.mem pair.one v in
          if in_zero && in_one then ambiguities := (run, i, time) :: !ambiguities
          else if in_zero then table.((run * n) + i) <- Some { at = time; value = Value.Zero }
          else if in_one then table.((run * n) + i) <- Some { at = time; value = Value.One }
          else first (time + 1)
      in
      first 0
    done
  done;
  { model; pair; table; ambiguities = List.rev !ambiguities }

let outcome d ~run ~proc = d.table.((run * Model.n d.model) + proc)

let decided_atom env d y i =
  let model = Formula.model env in
  let name = Format.asprintf "decide_%d(%a)" i Value.pp y in
  Formula.atom model name (fun pid ->
      let run = Model.run_index_of_point model pid in
      let time = Model.time_of_point model pid in
      match outcome d ~run ~proc:i with
      | Some { at; value } -> Value.equal value y && at <= time
      | None -> false)

let member_atom env pair y i =
  let model = Formula.model env in
  let set =
    match y with Value.Zero -> pair.zero | Value.One -> pair.one
  in
  let name = Format.asprintf "in_%d(%a)" i Value.pp y in
  Formula.atom model name (fun pid ->
      Decision_set.mem set (Model.view_at model ~point:pid ~proc:i))

let conjoin env s name a =
  let model = Formula.model env in
  Nonrigid.restrict_by_view model ~name s (fun ~proc:_ ~view -> Decision_set.mem a view)
