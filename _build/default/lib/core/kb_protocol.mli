(** Knowledge-based (full-information) protocols [FIP(Z, O)] and their
    decision behaviour on a model.

    A protocol is a decision pair: [Z] describes the local states at which a
    processor decides (or has decided) 0, [O] the states for 1.  Decisions
    use first-entry semantics — a processor decides at the first time its
    view enters [Z_i ∪ O_i], and the decision is irreversible.  A view lying
    in both sets is an {e ambiguity}; the paper's constructions never
    produce one on a reachable state, and the spec checker reports any. *)

module Model = Eba_fip.Model
module Value = Eba_sim.Value
module Formula = Eba_epistemic.Formula
module Nonrigid = Eba_epistemic.Nonrigid
module Bitset = Eba_util.Bitset

type pair = { zero : Decision_set.t; one : Decision_set.t }

val never_decide : Model.t -> pair
(** The paper's [F^Λ]: both sets empty. *)

val pair_equal : pair -> pair -> bool

type outcome = { at : int; value : Value.t }

type decisions = private {
  model : Model.t;
  pair : pair;
  table : outcome option array;  (** indexed [run * n + proc] *)
  ambiguities : (int * int * int) list;  (** (run, proc, time) in both sets *)
}

val decide : Model.t -> pair -> decisions

val outcome : decisions -> run:int -> proc:int -> outcome option

val decided_atom : Formula.env -> decisions -> Value.t -> int -> Formula.t
(** [decide_i(y)] as a formula: [i] decides or has decided [y] at the
    point.  (Defined from first-entry outcomes, hence automatically
    persistent and exclusive — Prop 4.1.) *)

val member_atom : Formula.env -> pair -> Value.t -> int -> Formula.t
(** The raw decision-{e set} reading of [decide_i(y)]: [i]'s current view
    lies in the set for [y].  This is the sense in which the paper's
    Prop 4.4 sufficiency conditions constrain a protocol's decision pair;
    it differs from {!decided_atom} only at views of processors that know
    their own faultiness (where formula-defined sets overlap vacuously). *)

val conjoin : Formula.env -> Nonrigid.t -> string -> Decision_set.t -> Nonrigid.t
(** [conjoin env s name a] is the paper's [S ∧ A]: members of [S] whose
    current view lies in [A]. *)
