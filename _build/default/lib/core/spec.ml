module Model = Eba_fip.Model
module Value = Eba_sim.Value
module Config = Eba_sim.Config
module Bitset = Eba_util.Bitset

type report = {
  weak_agreement : bool;
  agreement : bool;
  weak_validity : bool;
  validity : bool;
  decision : bool;
  simultaneity : bool;
  unambiguous : bool;
  max_decision_time : int option;
}

let check (d : Kb_protocol.decisions) =
  let model = d.Kb_protocol.model in
  let weak_agreement = ref true
  and weak_validity = ref true
  and validity = ref true
  and decision = ref true
  and simultaneity = ref true in
  let max_time = ref None in
  let note_time t =
    max_time := Some (match !max_time with None -> t | Some m -> max m t)
  in
  for run = 0 to Model.nruns model - 1 do
    let nonfaulty = Model.nonfaulty model ~run in
    let unanimous = Config.all_equal (Model.run_of_point model (Model.point model ~run ~time:0)).Model.config in
    let seen_value = ref None and seen_time = ref None in
    Bitset.iter
      (fun i ->
        match Kb_protocol.outcome d ~run ~proc:i with
        | None -> decision := false
        | Some { Kb_protocol.at; value } ->
            note_time at;
            (match !seen_value with
            | None -> seen_value := Some value
            | Some v -> if not (Value.equal v value) then weak_agreement := false);
            (match !seen_time with
            | None -> seen_time := Some at
            | Some t -> if t <> at then simultaneity := false);
            (match unanimous with
            | Some v when not (Value.equal v value) -> weak_validity := false
            | Some _ | None -> ()))
      nonfaulty;
    (match unanimous with
    | Some _ ->
        Bitset.iter
          (fun i ->
            match Kb_protocol.outcome d ~run ~proc:i with
            | None -> validity := false
            | Some { Kb_protocol.value; _ } ->
                if not (Value.equal value (Option.get unanimous)) then validity := false)
          nonfaulty
    | None -> ())
  done;
  let weak_agreement = !weak_agreement in
  (* A view in both decision sets is only a real ambiguity for a processor
     that might be nonfaulty; a processor that knows its own faultiness
     satisfies B^N_i vacuously and its outputs are unconstrained. *)
  let nonfaulty_ambiguity =
    List.exists
      (fun (run, proc, _) -> Bitset.mem proc (Model.nonfaulty model ~run))
      d.Kb_protocol.ambiguities
  in
  {
    weak_agreement;
    agreement = weak_agreement;
    weak_validity = !weak_validity;
    validity = !validity && !weak_validity;
    decision = !decision;
    simultaneity = !simultaneity;
    unambiguous = not nonfaulty_ambiguity;
    max_decision_time = !max_time;
  }

let is_nontrivial_agreement r = r.weak_agreement && r.weak_validity && r.unambiguous
let is_eba r = r.decision && r.agreement && r.validity && r.unambiguous
let is_sba r = is_eba r && r.simultaneity

let pp fmt r =
  Format.fprintf fmt
    "agreement=%b validity=%b decision=%b simultaneity=%b unambiguous=%b \
     weak_agreement=%b weak_validity=%b max_time=%s"
    r.agreement r.validity r.decision r.simultaneity r.unambiguous r.weak_agreement
    r.weak_validity
    (match r.max_decision_time with None -> "-" | Some t -> string_of_int t)
