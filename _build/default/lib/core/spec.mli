(** The Byzantine-agreement specification (Section 2.1), checked over every
    run of a bounded model.

    The checks use the paper's conventions: "nonfaulty" means nonfaulty
    throughout the run, and the [decision] property is relative to the
    horizon (every nonfaulty processor must have decided by the last time
    of the model). *)

module Model = Eba_fip.Model
module Value = Eba_sim.Value

type report = {
  weak_agreement : bool;  (** no two nonfaulty processors decide differently *)
  agreement : bool;  (** all nonfaulty deciders decide the same value *)
  weak_validity : bool;
      (** unanimous initial value ⇒ every nonfaulty decider picks it *)
  validity : bool;  (** unanimous initial value ⇒ every nonfaulty decides it *)
  decision : bool;  (** every nonfaulty processor decides (by the horizon) *)
  simultaneity : bool;  (** nonfaulty decisions happen at one time *)
  unambiguous : bool;
      (** no possibly-nonfaulty processor's reachable view is in both
          decision sets (a processor that knows itself faulty satisfies
          [B^N_i] vacuously, so overlap there is benign) *)
  max_decision_time : int option;  (** latest nonfaulty decision, if any *)
}

val check : Kb_protocol.decisions -> report

val is_nontrivial_agreement : report -> bool
(** Weak agreement + weak validity + no ambiguity (Section 2.1, 2' & 3'). *)

val is_eba : report -> bool
(** Decision + agreement + validity + no ambiguity. *)

val is_sba : report -> bool
(** EBA + simultaneity. *)

val pp : Format.formatter -> report -> unit
