module Model = Eba_fip.Model
module View = Eba_fip.View
module Bitset = Eba_util.Bitset
module Value = Eba_sim.Value
module Pattern = Eba_sim.Pattern
module Config = Eba_sim.Config

let pp_outcome fmt = function
  | Some { Kb_protocol.at; value } -> Format.fprintf fmt "D:%a@@%d" Value.pp value at
  | None -> Format.pp_print_string fmt "D:-"

let pp_decisions d ~run fmt () =
  let model = d.Kb_protocol.model in
  for i = 0 to Model.n model - 1 do
    Format.fprintf fmt "p%d %a  " i pp_outcome (Kb_protocol.outcome d ~run ~proc:i)
  done

let pp_run ?decisions model ~run fmt () =
  let r = Model.run_of_point model (Model.point model ~run ~time:0) in
  let store = model.Model.store in
  let nonfaulty = Model.nonfaulty model ~run in
  Format.fprintf fmt "run %d: config=%a pattern=%a@\n" run Config.pp r.Model.config
    Pattern.pp r.Model.pattern;
  for time = 0 to Model.horizon model do
    Format.fprintf fmt "  t=%d " time;
    for i = 0 to Model.n model - 1 do
      let v = Model.view model ~run ~time ~proc:i in
      Format.fprintf fmt "| p%d%s v=%a heard=%a%s "
        i
        (if Bitset.mem i nonfaulty then "" else "!")
        Value.pp (View.init_value store v) Bitset.pp (View.heard_from store v)
        (if View.knows_zero store v then " knows0" else "");
      match decisions with
      | Some d -> (
          match Kb_protocol.outcome d ~run ~proc:i with
          | Some { Kb_protocol.at; value } when at <= time ->
              Format.fprintf fmt "[%a] " Value.pp value
          | Some _ | None -> ())
      | None -> ()
    done;
    Format.fprintf fmt "@\n"
  done;
  match decisions with
  | Some d -> Format.fprintf fmt "  outcomes: %a@\n" (pp_decisions d ~run) ()
  | None -> ()
