(** Human-readable rendering of runs: who heard from whom at each round,
    what every processor knows, and when decisions land.  Useful for
    debugging protocols and for the examples' output. *)

module Model = Eba_fip.Model

val pp_run :
  ?decisions:Kb_protocol.decisions ->
  Model.t ->
  run:int ->
  Format.formatter ->
  unit ->
  unit
(** One line per processor per time:
    [t=2 p1 v=1 heard={0,2} knows0 D:1@2].  Faulty processors are marked
    with [!]. *)

val pp_decisions : Kb_protocol.decisions -> run:int -> Format.formatter -> unit -> unit
(** Just the per-processor outcomes of one run. *)
