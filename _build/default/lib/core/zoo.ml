module Formula = Eba_epistemic.Formula
module Nonrigid = Eba_epistemic.Nonrigid
module Model = Eba_fip.Model
module View = Eba_fip.View
module Value = Eba_sim.Value

let f_lambda model = Kb_protocol.never_decide model

let f_lambda_1 env = Construct.step_zero_first env (f_lambda (Formula.model env))
let f_lambda_2 env = Construct.optimize ~first:Construct.Zero_first env (f_lambda (Formula.model env))

let believes_exists env v =
  let model = Formula.model env in
  let n = Nonrigid.nonfaulty model in
  Decision_set.of_formulas env (fun i -> Formula.B (n, i, Formula.exists_value model v))

let crash_simple env =
  let model = Formula.model env in
  let n = Nonrigid.nonfaulty model in
  let zero = believes_exists env Value.zero in
  let n_and_z = Kb_protocol.conjoin env n "N&Zcr" zero in
  let one =
    Decision_set.of_formulas env (fun i -> Formula.B (n, i, Formula.Empty n_and_z))
  in
  { Kb_protocol.zero; one }

let deadline_pair env ~decide_now ~deadline_value =
  (* Decide [1 - deadline_value] as soon as [decide_now] holds on the view;
     otherwise decide [deadline_value] at time t+1. *)
  let model = Formula.model env in
  let store = model.Model.store in
  let deadline = model.Model.params.Eba_sim.Params.t_failures + 1 in
  let eager = Decision_set.of_views model decide_now in
  let late =
    Decision_set.of_views model (fun v ->
        View.time store v >= deadline && not (decide_now v))
  in
  ignore deadline_value;
  (eager, late)

let p0 env =
  let model = Formula.model env in
  let store = model.Model.store in
  let eager, late = deadline_pair env ~decide_now:(View.knows_zero store) ~deadline_value:Value.one in
  { Kb_protocol.zero = eager; one = late }

let knows_one_everywhere store v =
  (* structural mirror of knows_zero: the view contains an initial 1 *)
  let rec scan v =
    Value.equal (View.init_value store v) Value.One
    || (match View.prev store v with Some p -> scan p | None -> false)
    || begin
         let n = View.n store in
         let rec any j =
           j < n
           && ((match View.received store v j with Some r -> scan r | None -> false)
              || any (j + 1))
         in
         any 0
       end
  in
  scan v

let p1 env =
  let model = Formula.model env in
  let store = model.Model.store in
  let eager, late =
    deadline_pair env ~decide_now:(knows_one_everywhere store) ~deadline_value:Value.zero
  in
  { Kb_protocol.zero = late; one = eager }

let chain_zero env =
  let model = Formula.model env in
  let n = Nonrigid.nonfaulty model in
  let e0star = Facts.exists0_star env in
  let zero = Decision_set.of_formulas env (fun i -> Formula.B (n, i, e0star)) in
  (* The paper writes O⁰_i = B^N_i ¬∃0*; since ¬∃0* trivially holds at time
     0, the intended (and correct) reading — the one Prop 6.4's proof
     actually establishes — is belief that no 0-chain will ever exist. *)
  let one =
    Decision_set.of_formulas env (fun i ->
        Formula.B (n, i, Formula.Always (Formula.Not e0star)))
  in
  { Kb_protocol.zero; one }

let f_star env = Construct.optimize ~first:Construct.One_first env (chain_zero env)

let f_star_direct env =
  let model = Formula.model env in
  let n = Nonrigid.nonfaulty model in
  let pair0 = chain_zero env in
  let n_and_o0 = Kb_protocol.conjoin env n "N&O0" pair0.Kb_protocol.one in
  let e0 = Formula.exists_value model Value.zero in
  let e1 = Formula.exists_value model Value.one in
  let c = Formula.Cbox (n_and_o0, e0) in
  let zero = Decision_set.of_formulas env (fun i -> Formula.B (n, i, Formula.And [ e0; c ])) in
  let one =
    Decision_set.of_formulas env (fun i ->
        Formula.B (n, i, Formula.And [ e1; Formula.Not c ]))
  in
  { Kb_protocol.zero; one }

let knows_zero_set env =
  let model = Formula.model env in
  Decision_set.of_views model (View.knows_zero model.Model.store)

let sba_common_knowledge env =
  (* The SBA counterpart from [DM90]: decide v only when the supporting
     fact is common knowledge among the nonfaulty — C_N ∃0 for 0, and for
     1 common knowledge that no nonfaulty processor will ever learn of a
     0.  Common knowledge is shared (C φ ⇒ E C φ), so decisions are
     simultaneous; this is the baseline EBA is measured against at the
     knowledge level. *)
  let model = Formula.model env in
  let n = Nonrigid.nonfaulty model in
  let e0 = Formula.exists_value model Value.zero in
  let n_and_kz = Kb_protocol.conjoin env n "N&kz" (knows_zero_set env) in
  let never_zero_witness = Formula.Throughout (Formula.Empty n_and_kz) in
  let zero = Decision_set.of_formulas env (fun i -> Formula.B (n, i, Formula.C (n, e0))) in
  let one =
    Decision_set.of_formulas env (fun i ->
        Formula.B (n, i, Formula.C (n, never_zero_witness)))
  in
  { Kb_protocol.zero; one }

let sba_fixed_time env =
  (* semantic FloodSet: everyone decides at exactly time t+1 *)
  let model = Formula.model env in
  let store = model.Model.store in
  let deadline = model.Model.params.Eba_sim.Params.t_failures + 1 in
  let zero =
    Decision_set.of_views model (fun v ->
        View.time store v >= deadline && View.knows_zero store v)
  in
  let one =
    Decision_set.of_views model (fun v ->
        View.time store v >= deadline && not (View.knows_zero store v))
  in
  { Kb_protocol.zero; one }

let f_zero env =
  (* Section 3.2's F0: decide 0 on believing eventual common knowledge of
     ∃0; decide 1 on believing C◇ ∃1 together with the permanent absence
     of C◇ ∃0.  Correct but deliberately suboptimal. *)
  let model = Formula.model env in
  let n = Nonrigid.nonfaulty model in
  let e0 = Formula.exists_value model Value.zero in
  let e1 = Formula.exists_value model Value.one in
  let c0 = Formula.Cdia (n, e0) in
  let zero = Decision_set.of_formulas env (fun i -> Formula.B (n, i, c0)) in
  let one =
    Decision_set.of_formulas env (fun i ->
        Formula.B
          (n, i, Formula.And [ Formula.Cdia (n, e1); Formula.Always (Formula.Not c0) ]))
  in
  { Kb_protocol.zero; one }

let knows_zero_structural env =
  let model = Formula.model env in
  let store = model.Model.store in
  let n = Nonrigid.nonfaulty model in
  let zero = Decision_set.of_views model (View.knows_zero store) in
  let n_and_z = Kb_protocol.conjoin env n "N&Zkz" zero in
  let one =
    Decision_set.of_formulas env (fun i -> Formula.B (n, i, Formula.Empty n_and_z))
  in
  { Kb_protocol.zero; one }
