(** The paper's named protocols, as decision pairs over a model.

    Section 2.2 / 6.1: [p0], [p1] (the Lamport–Fischer style protocols),
    [f_lambda] (never decide), its one-step and two-step optimizations
    [f_lambda_1], [f_lambda_2], and the explicit crash-mode form
    [crash_simple = FIP(Z^cr, O^cr)] of Theorem 6.1.

    Section 6.2: [chain_zero = FIP(Z⁰, O⁰)] (decide through 0-chains;
    an EBA protocol for omission failures by Prop 6.4) and [f_star], the
    optimal omission-mode EBA protocol of Prop 6.6, provided both as the
    generic two-step optimization and in the paper's simplified direct
    form ({!f_star_direct}). *)

module Formula = Eba_epistemic.Formula
module Model = Eba_fip.Model

val f_lambda : Model.t -> Kb_protocol.pair
(** [F^Λ]: nobody ever decides. *)

val f_lambda_1 : Formula.env -> Kb_protocol.pair
(** One zero-first step from [F^Λ]; Section 6.1 shows it reduces to
    [Z_i = B^N_i ∃0], [O_i = ∅]. *)

val f_lambda_2 : Formula.env -> Kb_protocol.pair
(** The optimal protocol [F^Λ,2] (two-step construction from [F^Λ]). *)

val crash_simple : Formula.env -> Kb_protocol.pair
(** [FIP(Z^cr, O^cr)]: decide 0 on [B^N_i ∃0], decide 1 on
    [B^N_i((N ∧ Z^cr) = ∅)].  Theorem 6.1: equals [F^Λ,2] in crash mode. *)

val p0 : Formula.env -> Kb_protocol.pair
(** Decide 0 upon learning of a 0; otherwise decide 1 at time [t+1].
    (Crash-mode EBA; the protocol of Prop 2.1's proof.) *)

val p1 : Formula.env -> Kb_protocol.pair
(** The 0/1-mirror of [p0]. *)

val chain_zero : Formula.env -> Kb_protocol.pair
(** [FIP(Z⁰, O⁰)]: [Z⁰_i = B^N_i ∃0*], [O⁰_i = B^N_i ¬∃0*]. *)

val f_star : Formula.env -> Kb_protocol.pair
(** [Construct.optimize ~first:One_first] applied to [chain_zero]. *)

val f_star_direct : Formula.env -> Kb_protocol.pair
(** The paper's closed form: [Z*_i = B^N_i(∃0 ∧ C□_{N∧O⁰} ∃0)],
    [O*_i = B^N_i(∃1 ∧ ¬C□_{N∧O⁰} ∃0)].  Prop 6.6's derivation makes this
    equal to {!f_star}; the equality is tested, not assumed. *)

val sba_common_knowledge : Formula.env -> Kb_protocol.pair
(** Extension (after [DM90]): the {e simultaneous} protocol that decides a
    value exactly when the supporting fact becomes common knowledge among
    the nonfaulty processors.  Satisfies SBA in crash mode; dominated
    strictly by the optimal EBA protocols, and strictly dominating the
    fixed-time rule once [t ≥ 2] (the Dwork–Moses "waste" effect). *)

val sba_fixed_time : Formula.env -> Kb_protocol.pair
(** Semantic FloodSet: decide at exactly time [t+1] on whatever is known.
    The naive SBA baseline. *)

val f_zero : Formula.env -> Kb_protocol.pair
(** Section 3.2's [F0], built on {e eventual} common knowledge: decide 0
    on [B^N_i C◇_N ∃0], decide 1 on [B^N_i(C◇_N ∃1 ∧ □¬C◇_N ∃0)].  A
    nontrivial agreement protocol, but strictly weaker than the
    continual-common-knowledge constructions — the paper's motivation for
    introducing [C□]. *)

val knows_zero_structural : Formula.env -> Kb_protocol.pair
(** Ablation twin of {!crash_simple} using the structural "my view contains
    a 0" test instead of the semantic [B^N_i ∃0]; the test-suite checks the
    two coincide on crash and omission models. *)
