lib/epistemic/common.ml: Eba_fip Knowledge Pset
