lib/epistemic/common.mli: Eba_fip Nonrigid Pset
