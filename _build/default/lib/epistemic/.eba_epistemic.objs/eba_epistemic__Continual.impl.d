lib/epistemic/continual.ml: Array Eba_fip Fun Knowledge Nonrigid Pset Temporal
