lib/epistemic/continual.mli: Eba_fip Nonrigid Pset
