lib/epistemic/eventual.ml: Eba_fip Knowledge Pset Temporal
