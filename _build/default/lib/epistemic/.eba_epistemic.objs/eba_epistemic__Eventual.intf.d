lib/epistemic/eventual.mli: Eba_fip Nonrigid Pset
