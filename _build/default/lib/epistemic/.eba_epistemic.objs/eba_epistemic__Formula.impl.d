lib/epistemic/formula.ml: Common Continual Eba_fip Eba_sim Eventual Format Knowledge List Nonrigid Pset Temporal
