lib/epistemic/formula.mli: Eba_fip Eba_sim Format Nonrigid Pset
