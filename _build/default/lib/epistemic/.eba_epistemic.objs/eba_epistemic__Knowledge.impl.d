lib/epistemic/knowledge.ml: Array Bytes Eba_fip Eba_util Nonrigid Pset
