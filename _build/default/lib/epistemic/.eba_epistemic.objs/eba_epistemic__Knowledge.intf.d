lib/epistemic/knowledge.mli: Eba_fip Nonrigid Pset
