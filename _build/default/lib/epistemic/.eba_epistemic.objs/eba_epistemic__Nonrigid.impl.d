lib/epistemic/nonrigid.ml: Array Eba_fip Eba_util Format
