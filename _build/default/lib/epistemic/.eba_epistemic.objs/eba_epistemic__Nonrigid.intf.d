lib/epistemic/nonrigid.mli: Eba_fip Eba_util Format
