lib/epistemic/pset.ml: Array Format
