lib/epistemic/pset.mli: Format
