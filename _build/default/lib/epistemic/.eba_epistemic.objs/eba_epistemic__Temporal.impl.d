lib/epistemic/temporal.ml: Eba_fip Pset
