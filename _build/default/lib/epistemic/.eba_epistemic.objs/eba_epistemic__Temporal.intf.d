lib/epistemic/temporal.mli: Eba_fip Pset
