module Model = Eba_fip.Model

let common model s phi =
  let x = ref (Pset.full (Model.npoints model)) in
  let continue = ref true in
  while !continue do
    let next = Knowledge.everyone_knows model s (Pset.inter phi !x) in
    if Pset.equal next !x then continue := false else x := next
  done;
  !x

let iterated model s k phi =
  let rec loop k acc =
    if k = 0 then acc else loop (k - 1) (Knowledge.everyone_knows model s acc)
  in
  loop k phi
