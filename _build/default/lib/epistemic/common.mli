(** Common knowledge among a nonrigid set (Section 3.1): [C_S φ] is the
    greatest fixed point of [X ↔ E_S(φ ∧ X)], computed by downward
    iteration from the full point set. *)

module Model = Eba_fip.Model

val common : Model.t -> Nonrigid.t -> Pset.t -> Pset.t
(** [C_S φ]. *)

val iterated : Model.t -> Nonrigid.t -> int -> Pset.t -> Pset.t
(** [E_S^k φ] (plain iteration, [E_S^0 φ = φ]) — the finite approximants
    of the paper's infinite-conjunction definition, exposed for the
    test-suite's fixed-point checks. *)
