(** Continual common knowledge (Section 3.3) — the paper's new variant.

    [E□_S φ = ⊟ E_S φ] (at all times of the run, everyone currently in [S]
    believes φ), and [C□_S φ] is the greatest fixed point of
    [X ↔ E□_S(φ ∧ X)].

    The production implementation uses the S-□-reachability characterization
    (Prop 3.2 / Cor 3.3).  Unfolding the definition, one reachability step
    from a run [r] lands on any point [(r',m')] for which some processor
    [i ∈ S(r',m')] has the same view at some [(r,m)] with [i ∈ S(r,m)]
    (views being time-stamped forces [m = m']).  Steps therefore factor
    through {e lander groups}: for each view [v] with owner [i], the points
    of [cell v] at which [i ∈ S].  All runs touching a group are mutually
    reachable and every point of the group is reachable.  We compute
    connected components of runs with a union-find over the groups once per
    nonrigid set, after which every [C□_S φ] query is a linear scan:
    [C□_S φ] holds at [(r,m)] iff either [r] touches no group (so no step
    can start — the vacuous case of an everywhere-empty [S]) or no landable
    point in [r]'s component refutes φ.  The result is constant along each
    run, which is Lemma 3.4(g).

    [cbox_naive] is the direct fixed-point iteration of the definition; the
    test-suite checks the two implementations coincide, and the benchmark
    harness uses the naive version as the ablation baseline. *)

module Model = Eba_fip.Model

type closure
(** The cached S-□-reachability structure for one (model, nonrigid set)
    pair. *)

val closure : Model.t -> Nonrigid.t -> closure

val ebox : Model.t -> Nonrigid.t -> Pset.t -> Pset.t
(** [E□_S φ]. *)

val cbox : closure -> Pset.t -> Pset.t
(** [C□_S φ] via the reachability characterization. *)

val cbox_naive : Model.t -> Nonrigid.t -> Pset.t -> Pset.t
(** [C□_S φ] by iterating [X ← E□_S(φ ∧ X)] to the fixed point. *)

val reachable_runs : closure -> run:int -> Pset.t
(** The runs S-□-reachable (in ≥ 1 step) from [run], as a set of run
    indices; exposed for tests of the characterization itself. *)
