module Model = Eba_fip.Model

let eventual_common model s phi =
  let x = ref (Pset.full (Model.npoints model)) in
  let continue = ref true in
  while !continue do
    let next =
      Temporal.eventually model (Knowledge.everyone_knows model s (Pset.inter phi !x))
    in
    if Pset.equal next !x then continue := false else x := next
  done;
  !x
