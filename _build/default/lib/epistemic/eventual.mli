(** Eventual common knowledge (Section 3.2, after [HM90]):
    [C◇_S φ] is the greatest fixed point of [X ↔ ◇E_S(φ ∧ X)] —
    "eventually everyone will know that eventually everyone will know …".

    The paper uses it negatively: [◇C_S φ ⇒ C◇_S φ] is valid, yet a
    decision rule built on [C◇] (the protocol [F0] of Section 3.2) is
    {e too weak} — it yields a correct nontrivial agreement protocol that
    is strictly dominated by the continual-common-knowledge constructions.
    Both facts are part of the test-suite. *)

module Model = Eba_fip.Model

val eventual_common : Model.t -> Nonrigid.t -> Pset.t -> Pset.t
(** [C◇_S φ]. *)
