module Model = Eba_fip.Model
module Value = Eba_sim.Value
module Config = Eba_sim.Config

type t =
  | Const of bool
  | Atom of string * Pset.t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | In of Nonrigid.t * int
  | K of int * t
  | B of Nonrigid.t * int * t
  | E of Nonrigid.t * t
  | C of Nonrigid.t * t
  | Ebox of Nonrigid.t * t
  | Cbox of Nonrigid.t * t
  | Cdia of Nonrigid.t * t
  | Empty of Nonrigid.t
  | Always of t
  | Eventually of t
  | Throughout of t

let atom model name pred = Atom (name, Pset.init (Model.npoints model) pred)

let exists_value model v =
  let name = Format.asprintf "exists%a" Value.pp v in
  atom model name (fun pid ->
      Config.exists_value (Model.run_of_point model pid).Model.config v)

let ( &&& ) a b = And [ a; b ]
let ( ||| ) a b = Or [ a; b ]
let neg a = Not a

type env = {
  env_model : Model.t;
  mutable closures : (Nonrigid.t * Continual.closure) list;
}

let env model = { env_model = model; closures = [] }
let model e = e.env_model

let closure_for e s =
  match List.find_opt (fun (s', _) -> s' == s) e.closures with
  | Some (_, cl) -> cl
  | None ->
      let cl = Continual.closure e.env_model s in
      e.closures <- (s, cl) :: e.closures;
      cl

let rec eval e f =
  let m = e.env_model in
  let np = Model.npoints m in
  match f with
  | Const true -> Pset.full np
  | Const false -> Pset.create np
  | Atom (_, s) -> s
  | Not f -> Pset.complement (eval e f)
  | And fs ->
      List.fold_left (fun acc f -> Pset.inter acc (eval e f)) (Pset.full np) fs
  | Or fs ->
      List.fold_left (fun acc f -> Pset.union acc (eval e f)) (Pset.create np) fs
  | Implies (a, b) -> Pset.union (Pset.complement (eval e a)) (eval e b)
  | Iff (a, b) ->
      let sa = eval e a and sb = eval e b in
      Pset.complement (Pset.union (Pset.diff sa sb) (Pset.diff sb sa))
  | In (s, i) -> Pset.init np (fun pid -> Nonrigid.mem s ~point:pid ~proc:i)
  | K (i, f) -> Knowledge.knows m ~proc:i (eval e f)
  | B (s, i, f) -> Knowledge.believes m s ~proc:i (eval e f)
  | E (s, f) -> Knowledge.everyone_knows m s (eval e f)
  | C (s, f) -> Common.common m s (eval e f)
  | Ebox (s, f) -> Continual.ebox m s (eval e f)
  | Cbox (s, f) -> Continual.cbox (closure_for e s) (eval e f)
  | Cdia (s, f) -> Eventual.eventual_common m s (eval e f)
  | Empty s -> Pset.init np (fun pid -> Nonrigid.is_empty_at s ~point:pid)
  | Always f -> Temporal.always m (eval e f)
  | Eventually f -> Temporal.eventually m (eval e f)
  | Throughout f -> Temporal.throughout m (eval e f)

let holds e f ~point = Pset.mem (eval e f) point
let valid e f = Pset.is_full (eval e f)

let counterexample e f =
  let s = eval e f in
  Pset.choose (Pset.complement s)

let rec pp fmt = function
  | Const b -> Format.pp_print_bool fmt b
  | Atom (name, _) -> Format.pp_print_string fmt name
  | Not f -> Format.fprintf fmt "~%a" pp_paren f
  | And fs -> pp_infix fmt " & " fs
  | Or fs -> pp_infix fmt " | " fs
  | Implies (a, b) -> Format.fprintf fmt "(%a => %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf fmt "(%a <=> %a)" pp a pp b
  | In (s, i) -> Format.fprintf fmt "%d in %a" i Nonrigid.pp s
  | K (i, f) -> Format.fprintf fmt "K_%d %a" i pp_paren f
  | B (s, i, f) -> Format.fprintf fmt "B[%a]_%d %a" Nonrigid.pp s i pp_paren f
  | E (s, f) -> Format.fprintf fmt "E[%a] %a" Nonrigid.pp s pp_paren f
  | C (s, f) -> Format.fprintf fmt "C[%a] %a" Nonrigid.pp s pp_paren f
  | Ebox (s, f) -> Format.fprintf fmt "E□[%a] %a" Nonrigid.pp s pp_paren f
  | Cbox (s, f) -> Format.fprintf fmt "C□[%a] %a" Nonrigid.pp s pp_paren f
  | Cdia (s, f) -> Format.fprintf fmt "C◇[%a] %a" Nonrigid.pp s pp_paren f
  | Empty s -> Format.fprintf fmt "(%a = {})" Nonrigid.pp s
  | Always f -> Format.fprintf fmt "□%a" pp_paren f
  | Eventually f -> Format.fprintf fmt "◇%a" pp_paren f
  | Throughout f -> Format.fprintf fmt "⊟%a" pp_paren f

and pp_paren fmt f =
  match f with
  | Const _ | Atom _ | Not _ | K _ | B _ | E _ | C _ | Ebox _ | Cbox _ | Empty _ ->
      pp fmt f
  | Cdia _ -> pp fmt f
  | And _ | Or _ | Implies _ | Iff _ | In _ | Always _ | Eventually _ | Throughout _ ->
      Format.fprintf fmt "(%a)" pp f

and pp_infix fmt sep fs =
  match fs with
  | [] -> Format.pp_print_string fmt "true"
  | _ ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt sep)
           pp)
        fs
