(** A little logic of knowledge and time over one model: the language of
    Section 3, closed under the Booleans, [K_i], [B^S_i], [E_S], [C_S],
    [E□_S], [C□_S] and the temporal operators.

    Formulas are built against a fixed model (atoms are extensional point
    sets), evaluated to point sets, and printed for diagnostics.  An
    {!env} caches the continual-knowledge closures per nonrigid set, so
    repeated [C□_S] evaluations with the same [S] cost one union-find. *)

module Model = Eba_fip.Model
module Value = Eba_sim.Value

type t =
  | Const of bool
  | Atom of string * Pset.t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | In of Nonrigid.t * int  (** [i ∈ S] *)
  | K of int * t
  | B of Nonrigid.t * int * t
  | E of Nonrigid.t * t
  | C of Nonrigid.t * t
  | Ebox of Nonrigid.t * t
  | Cbox of Nonrigid.t * t
  | Cdia of Nonrigid.t * t  (** eventual common knowledge [C◇_S] *)
  | Empty of Nonrigid.t  (** [S = ∅] at the current point *)
  | Always of t  (** [□] *)
  | Eventually of t  (** [◇] *)
  | Throughout of t  (** [⊟] *)

val atom : Model.t -> string -> (int -> bool) -> t
(** [atom model name pred] tabulates a point predicate. *)

val exists_value : Model.t -> Value.t -> t
(** The paper's [∃0] / [∃1]. *)

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val neg : t -> t

type env

val env : Model.t -> env
val model : env -> Model.t
val eval : env -> t -> Pset.t
val holds : env -> t -> point:int -> bool
val valid : env -> t -> bool
(** True iff the formula holds at every point of the model — the paper's
    [ℛ ⊨ φ]. *)

val counterexample : env -> t -> int option
(** Some point where the formula fails, if any. *)

val pp : Format.formatter -> t -> unit
