(** The basic knowledge operators of Section 3.1, computed extensionally:
    each operator maps the set of points satisfying φ to the set of points
    satisfying the modal formula.

    [K_i φ] holds at a point iff φ holds at every point where [i] has the
    same view; [B^S_i φ = K_i(i ∈ S ⇒ φ)] is the belief variant for
    processors that need not know whether they belong to the nonrigid set;
    [E_S φ = ∧_{i∈S} B^S_i φ] (vacuously true where [S] is empty). *)

module Model = Eba_fip.Model

val knows : Model.t -> proc:int -> Pset.t -> Pset.t
(** [K_i φ]. *)

val believes : Model.t -> Nonrigid.t -> proc:int -> Pset.t -> Pset.t
(** [B^S_i φ]. *)

val everyone_knows : Model.t -> Nonrigid.t -> Pset.t -> Pset.t
(** [E_S φ]. *)

val view_measurable : Model.t -> proc:int -> Pset.t -> bool
(** Does membership of the set depend only on [proc]'s view?  True of every
    [K_i]/[B^S_i] result; used to project point sets onto decision sets. *)
