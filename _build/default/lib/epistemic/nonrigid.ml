module Bitset = Eba_util.Bitset
module Model = Eba_fip.Model
module View = Eba_fip.View

type t = { nr_name : string; table : int array }

let name s = s.nr_name
let members s ~point = Bitset.of_int s.table.(point)
let mem s ~point ~proc = Bitset.mem proc (members s ~point)

let of_fun model ~name f =
  { nr_name = name; table = Array.init (Model.npoints model) (fun pid -> Bitset.to_int (f pid)) }

let nonfaulty model =
  of_fun model ~name:"N" (fun pid ->
      Model.nonfaulty model ~run:(Model.run_index_of_point model pid))

let rigid model ~name set = of_fun model ~name (fun _ -> set)

let everyone model = rigid model ~name:"All" (Bitset.full (Model.n model))

let restrict_by_view model ~name s pred =
  of_fun model ~name (fun pid ->
      Bitset.filter
        (fun i -> pred ~proc:i ~view:(Model.view_at model ~point:pid ~proc:i))
        (members s ~point:pid))

let is_empty_at s ~point = s.table.(point) = 0

let empty_everywhere_in_run model s ~run =
  let horizon = Model.horizon model in
  let rec loop m =
    m > horizon || (s.table.(Model.point model ~run ~time:m) = 0 && loop (m + 1))
  in
  loop 0

let pp fmt s = Format.fprintf fmt "%s" s.nr_name
