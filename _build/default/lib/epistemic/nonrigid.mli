(** Nonrigid sets of processors (Section 3.1): a possibly different set of
    processors at every point of the system.

    The canonical example is 𝒩, the nonfaulty processors; the paper's
    constructions use intersections 𝒩 ∧ 𝒜 with decision sets.  Membership is
    precomputed per point as a processor bitset so the epistemic operators
    can query it in constant time.

    Identity matters: the continual-common-knowledge engine caches a
    reachability closure per nonrigid set, keyed on physical identity, so
    build each set once and reuse the value. *)

module Bitset = Eba_util.Bitset
module Model = Eba_fip.Model

type t

val name : t -> string
val members : t -> point:int -> Bitset.t
val mem : t -> point:int -> proc:int -> bool

val of_fun : Model.t -> name:string -> (int -> Bitset.t) -> t
(** [of_fun model ~name f] tabulates [f] over every point id. *)

val nonfaulty : Model.t -> t
(** 𝒩: constant along each run, varies across runs. *)

val everyone : Model.t -> t
(** The constant (rigid) set of all processors — turns [B]/[E]/[C] into
    their classical fixed-group versions. *)

val rigid : Model.t -> name:string -> Bitset.t -> t

val restrict_by_view : Model.t -> name:string -> t -> (proc:int -> view:Eba_fip.View.id -> bool) -> t
(** [restrict_by_view model ~name s pred] is the nonrigid set
    [{i ∈ s(r,m) : pred i (r_i(m))}] — the paper's 𝒩 ∧ 𝒜 when [pred] is
    membership of the view in the decision set 𝒜. *)

val is_empty_at : t -> point:int -> bool
val empty_everywhere_in_run : Model.t -> t -> run:int -> bool
val pp : Format.formatter -> t -> unit
