module Model = Eba_fip.Model

let scan model combine init phi =
  let horizon = Model.horizon model in
  let out = Pset.create (Model.npoints model) in
  for run = 0 to Model.nruns model - 1 do
    (* Walk the run backwards so the suffix property is a running fold. *)
    let acc = ref init in
    for time = horizon downto 0 do
      let pid = Model.point model ~run ~time in
      acc := combine !acc (Pset.mem phi pid);
      if !acc then Pset.add out pid
    done
  done;
  out

let always model phi = scan model (fun acc here -> acc && here) true phi
let eventually model phi = scan model (fun acc here -> acc || here) false phi

let throughout model phi =
  let horizon = Model.horizon model in
  let out = Pset.create (Model.npoints model) in
  for run = 0 to Model.nruns model - 1 do
    let all = ref true in
    for time = 0 to horizon do
      if not (Pset.mem phi (Model.point model ~run ~time)) then all := false
    done;
    if !all then
      for time = 0 to horizon do
        Pset.add out (Model.point model ~run ~time)
      done
  done;
  out
