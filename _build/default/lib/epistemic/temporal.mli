(** Temporal operators over the bounded horizon.

    [always] is the standard [□] (present and future of the run),
    [eventually] is [◇], and [throughout] is the paper's [⊟] — all times of
    the run, past, present and future (Section 3.3). *)

module Model = Eba_fip.Model

val always : Model.t -> Pset.t -> Pset.t
val eventually : Model.t -> Pset.t -> Pset.t
val throughout : Model.t -> Pset.t -> Pset.t
