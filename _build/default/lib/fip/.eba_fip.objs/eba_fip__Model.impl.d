lib/fip/model.ml: Array Eba_sim Eba_util Format List View
