lib/fip/model.mli: Eba_sim Eba_util Format View
