lib/fip/view.ml: Array Eba_sim Eba_util Format Hashtbl
