lib/fip/view.mli: Eba_sim Eba_util Format
