(** Enumerated bounded models: the system ℛ of all runs of the
    full-information protocol for a parameter set.

    A {e run} is determined by an initial configuration and a failure
    pattern (Prop 2.2 makes full-information states independent of any
    decision function, so one enumerated model supports every decision
    pair).  A {e point} is a pair (run, time); points are densely numbered
    so the epistemic layer can work with flat bitsets over point ids. *)

module Bitset = Eba_util.Bitset
module Value = Eba_sim.Value
module Config = Eba_sim.Config
module Params = Eba_sim.Params
module Pattern = Eba_sim.Pattern
module Universe = Eba_sim.Universe

type run = private {
  index : int;
  config : Config.t;
  pattern : Pattern.t;
  faulty : Bitset.t;
  views : View.id array;  (** [views.(time * n + proc)] *)
}

type t = private {
  params : Params.t;
  store : View.store;
  runs : run array;
  cells : int array array;
      (** [cells.(v)] = point ids whose owner's current view is [v] *)
}

val build : ?flavour:Universe.flavour -> ?configs:Config.t list -> Params.t -> t
(** Enumerates every (configuration, pattern) pair and simulates the
    full-information protocol under it.  [configs] defaults to all [2^n]
    configurations — restricting it changes the system runs are drawn from
    and hence what is known; it exists for ablation experiments only. *)

val build_of_patterns : Params.t -> Pattern.t list -> t
(** As {!build} with an explicit pattern list (all [2^n] configurations). *)

val nruns : t -> int
val npoints : t -> int
val horizon : t -> int
val n : t -> int

val point : t -> run:int -> time:int -> int
(** Dense point id; inverse of {!run_of_point} / {!time_of_point}. *)

val run_of_point : t -> int -> run
val run_index_of_point : t -> int -> int
val time_of_point : t -> int -> int

val view_at : t -> point:int -> proc:int -> View.id
(** [r_i(m)]: processor [proc]'s view at the point. *)

val view : t -> run:int -> time:int -> proc:int -> View.id

val nonfaulty : t -> run:int -> Bitset.t
(** The paper's 𝒩(r): processors that follow the protocol throughout. *)

val cell : t -> View.id -> int array
(** All points at which the view's owner holds exactly this view.  The point
    the view was taken from is always a member. *)

val find_run : t -> config:Config.t -> pattern:Pattern.t -> run option
(** Locate the run with this configuration and pattern, if the model
    contains it (used to relate operational executions to semantic runs). *)

val iter_points : t -> (int -> unit) -> unit
val pp_stats : Format.formatter -> t -> unit
