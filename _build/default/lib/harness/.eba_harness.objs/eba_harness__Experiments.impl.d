lib/harness/experiments.ml: Array Eba Format Hashtbl List Option Printf
