lib/harness/tables.ml: Array Eba Float Format List Random Unix
