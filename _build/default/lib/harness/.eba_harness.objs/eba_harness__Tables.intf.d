lib/harness/tables.mli: Format
