(** The reproduction experiments (DESIGN.md E1–E12): one entry per
    proposition/theorem of the paper, each returning a structured verdict
    that the CLI prints and EXPERIMENTS.md records.

    The paper has no numeric tables; its "evaluation" is its theorems, so
    each experiment re-establishes one claim over exhaustively enumerated
    bounded models (with the model parameters recorded in the result). *)

type outcome = {
  id : string;  (** experiment id, e.g. "E7" *)
  claim : string;  (** the paper claim being reproduced *)
  setting : string;  (** models/universes the check ran over *)
  holds : bool;
  detail : string;  (** measured facts, incl. deviations from the paper *)
}

val all : unit -> outcome list
(** Runs every experiment (a few seconds of model building and
    model checking). *)

val run : string -> outcome option
(** Run a single experiment by id ("E1" .. "E12"). *)

val ids : unit -> string list

val pp : Format.formatter -> outcome -> unit
val pp_summary : Format.formatter -> outcome list -> unit
