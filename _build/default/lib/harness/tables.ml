module F = Eba.Formula
module M = Eba.Model
module KB = Eba.Kb_protocol
module Spec = Eba.Spec
module Dom = Eba.Dominance
module Con = Eba.Construct
module Ch = Eba.Characterize
module Zoo = Eba.Zoo
module Stats = Eba.Stats
module Val = Eba.Value
module B = Eba.Bitset
module Pat = Eba.Pattern

let time_it f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let operational_protocols : (module Eba.Protocol_intf.PROTOCOL) list =
  [ (module Eba.P0.P0); (module Eba.P0opt); (module Eba.P0opt_plus); (module Eba.Floodset) ]

(* --- T1 --- *)

let t1_crash_decision_times fmt () =
  Format.fprintf fmt "== T1: decision rounds by actual failure count (crash, exhaustive) ==@\n";
  List.iter
    (fun (n, t, horizon) ->
      let params = Eba.Params.make ~n ~t ~horizon ~mode:Eba.Params.Crash in
      Format.fprintf fmt "-- %a --@\n" Eba.Params.pp params;
      Format.fprintf fmt "%-10s" "protocol";
      for f = 0 to t do
        Format.fprintf fmt "  f=%d mean/max " f
      done;
      Format.fprintf fmt "@\n";
      List.iter
        (fun (module P : Eba.Protocol_intf.PROTOCOL) ->
          let s = Stats.exhaustive (module P) params in
          Format.fprintf fmt "%-10s" P.name;
          List.iter
            (fun (b : Stats.by_failures) ->
              Format.fprintf fmt "  %6.2f/%-5d" b.Stats.mean_time b.Stats.max_time)
            s.Stats.by_failures;
          Format.fprintf fmt "@\n")
        operational_protocols)
    [ (3, 1, 3); (4, 1, 3); (4, 2, 4) ]

(* --- T2 --- *)

let t2_no_optimum fmt () =
  Format.fprintf fmt "== T2: Prop 2.1 — why no optimum exists (crash n=3 t=1 T=3) ==@\n";
  let env = F.env (M.build (Eba.Params.make ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Crash)) in
  let m = F.model env in
  let frac_time0 pair target =
    let d = KB.decide m pair in
    let hits = ref 0 and total = ref 0 in
    for run = 0 to M.nruns m - 1 do
      B.iter
        (fun i ->
          incr total;
          match KB.outcome d ~run ~proc:i with
          | Some { KB.at = 0; value } when Val.equal value target -> incr hits
          | Some _ | None -> ())
        (M.nonfaulty m ~run)
    done;
    float_of_int !hits /. float_of_int !total
  in
  Format.fprintf fmt "P0 decides 0 at time 0 for %.0f%% of nonfaulty slots@\n"
    (100. *. frac_time0 (Zoo.p0 env) Val.Zero);
  Format.fprintf fmt "P1 decides 1 at time 0 for %.0f%% of nonfaulty slots@\n"
    (100. *. frac_time0 (Zoo.p1 env) Val.One);
  let d = KB.decide m (Zoo.f_lambda_2 env) in
  Format.fprintf fmt
    "an optimum would have to decide everything at time 0; even the optimal F^L,2 \
     needs %s rounds somewhere@\n"
    (match (Spec.check d).Spec.max_decision_time with
    | Some t -> string_of_int t
    | None -> "?")

(* --- T3 --- *)

let t3_two_step fmt () =
  Format.fprintf fmt "== T3: the two-step construction, per seed (Thm 5.2) ==@\n";
  Format.fprintf fmt "%-22s %-9s %5s %8s %9s@\n" "seed" "mode" "steps" "optimal?" "dominates";
  let row name env pair =
    let d = KB.decide (F.model env) pair in
    let opt, steps = Con.iterate_until_fixpoint env pair in
    let dopt = KB.decide (F.model env) opt in
    let mode =
      Format.asprintf "%a" Eba.Params.pp_mode (F.model env).M.params.Eba.Params.mode
    in
    Format.fprintf fmt "%-22s %-9s %5d %8b %9b@\n" name mode steps
      (Ch.is_optimal env dopt) (Dom.dominates dopt d)
  in
  let c = F.env (M.build (Eba.Params.make ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Crash)) in
  let o = F.env (M.build (Eba.Params.make ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Omission)) in
  row "never-decide" c (KB.never_decide (F.model c));
  row "P0" c (Zoo.p0 c);
  row "P1" c (Zoo.p1 c);
  row "F^L,2 (already opt)" c (Zoo.f_lambda_2 c);
  row "never-decide" o (KB.never_decide (F.model o));
  row "chain FIP(Z0,O0)" o (Zoo.chain_zero o);
  row "F* (already opt)" o (Zoo.f_star o)

(* --- T4 --- *)

let decide_profile fmt env pair =
  let m = F.model env in
  let d = KB.decide m pair in
  let horizon = M.horizon m in
  let counts = Array.make (horizon + 2) 0 in
  let total = ref 0 in
  for run = 0 to M.nruns m - 1 do
    B.iter
      (fun i ->
        incr total;
        match KB.outcome d ~run ~proc:i with
        | Some { KB.at; _ } -> counts.(at) <- counts.(at) + 1
        | None -> counts.(horizon + 1) <- counts.(horizon + 1) + 1)
      (M.nonfaulty m ~run)
  done;
  for t = 0 to horizon do
    Format.fprintf fmt "  by time %d: %5.1f%%@\n" t
      (100.
      *. float_of_int (Array.fold_left ( + ) 0 (Array.sub counts 0 (t + 1)))
      /. float_of_int !total)
  done;
  Format.fprintf fmt "  never:     %5.1f%%@\n"
    (100. *. float_of_int counts.(horizon + 1) /. float_of_int !total)

let t4_crash_vs_omission fmt () =
  Format.fprintf fmt "== T4: F^L,2 decide-by-time profile, crash vs omission (Prop 6.3) ==@\n";
  let c = F.env (M.build (Eba.Params.make ~n:4 ~t:2 ~horizon:4 ~mode:Eba.Params.Crash)) in
  Format.fprintf fmt "crash n=4 t=2 T=4:@\n";
  decide_profile fmt c (Zoo.f_lambda_2 c);
  let o = F.env (M.build (Eba.Params.make ~n:4 ~t:2 ~horizon:2 ~mode:Eba.Params.Omission)) in
  Format.fprintf fmt "omission n=4 t=2 T=2:@\n";
  decide_profile fmt o (Zoo.f_lambda_2 o);
  Format.fprintf fmt "omission n=4 t=2 T=2, F* (the terminating optimal protocol):@\n";
  decide_profile fmt o (Zoo.f_star o);
  Format.fprintf fmt
    "(F*'s 'never' entries are horizon truncation — f=2 runs decide at f+1=3 > T=2; \
     F^L,2's include runs that provably never decide at any horizon, e.g. the \
     Prop 6.3 witness)@\n"

(* --- T5 --- *)

let t5_chain_bound fmt () =
  Format.fprintf fmt "== T5: Chain0 worst decision time vs the f+1 bound ==@\n";
  Format.fprintf fmt "%-26s %4s %10s %8s@\n" "universe" "f" "worst" "bound";
  let report name (s : Stats.summary) =
    List.iter
      (fun (b : Stats.by_failures) ->
        Format.fprintf fmt "%-26s %4d %10d %8d@\n" name b.Stats.failures b.Stats.max_time
          (b.Stats.failures + 1))
      s.Stats.by_failures
  in
  let ex = Eba.Params.make ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Omission in
  report "exhaustive n=3 t=1" (Stats.exhaustive (module Eba.Chain0) ex);
  let ex4 = Eba.Params.make ~n:4 ~t:1 ~horizon:3 ~mode:Eba.Params.Omission in
  report "exhaustive n=4 t=1" (Stats.exhaustive (module Eba.Chain0) ex4);
  let big = Eba.Params.make ~n:12 ~t:4 ~horizon:6 ~mode:Eba.Params.Omission in
  report "sampled n=12 t=4 (3000)" (Stats.sampled (module Eba.Chain0) big ~seed:5 ~samples:3000)

(* --- T6 (extension): SBA at the knowledge level --- *)

let t6_sba_knowledge fmt () =
  Format.fprintf fmt
    "== T6 (extension): SBA at the knowledge level vs the EBA optimum ==@\n";
  List.iter
    (fun (n, t, horizon) ->
      let params = Eba.Params.make ~n ~t ~horizon ~mode:Eba.Params.Crash in
      let env = F.env (M.build params) in
      let m = F.model env in
      Format.fprintf fmt "-- %a --@\n" Eba.Params.pp params;
      let mean_max pair =
        let d = KB.decide m pair in
        let sum = ref 0 and cnt = ref 0 and mx = ref 0 in
        for run = 0 to M.nruns m - 1 do
          B.iter
            (fun i ->
              match KB.outcome d ~run ~proc:i with
              | Some { KB.at; _ } ->
                  sum := !sum + at;
                  incr cnt;
                  if at > !mx then mx := at
              | None -> ())
            (M.nonfaulty m ~run)
        done;
        (float_of_int !sum /. float_of_int (max 1 !cnt), !mx)
      in
      let d_ck = KB.decide m (Zoo.sba_common_knowledge env) in
      let d_ft = KB.decide m (Zoo.sba_fixed_time env) in
      List.iter
        (fun (name, pair) ->
          let mean, mx = mean_max pair in
          let d = KB.decide m pair in
          Format.fprintf fmt "%-22s mean %.2f max %d  SBA:%b@\n" name mean mx
            (Spec.is_sba (Spec.check d)))
        [
          ("fixed-time (t+1)", Zoo.sba_fixed_time env);
          ("common-knowledge SBA", Zoo.sba_common_knowledge env);
          ("EBA optimum F^L,2", Zoo.f_lambda_2 env);
        ];
      Format.fprintf fmt "CK-SBA vs fixed-time: %a@\n" Dom.pp (Dom.compare d_ck d_ft))
    [ (3, 1, 3); (4, 2, 4) ]

(* --- F1 --- *)

let f1_decision_cdf fmt () =
  Format.fprintf fmt "== F1: decision-round CDF, sampled crash workload (n=8 t=3 T=5, 3000 runs) ==@\n";
  let params = Eba.Params.make ~n:8 ~t:3 ~horizon:5 ~mode:Eba.Params.Crash in
  let cdf (module P : Eba.Protocol_intf.PROTOCOL) =
    let module R = Eba.Runner.Make (P) in
    let rng = Random.State.make [| 31 |] in
    let counts = Array.make 7 0 in
    let total = ref 0 in
    for _ = 1 to 3000 do
      let config = Eba.Config.of_bits ~n:8 (Random.State.int rng 256) in
      let pattern = Eba.Universe.random_pattern rng params in
      let trace = R.run params config pattern in
      let nonfaulty = B.diff (B.full 8) (Pat.faulty pattern) in
      B.iter
        (fun i ->
          incr total;
          match trace.Eba.Runner.decisions.(i) with
          | Some { Eba.Runner.at; _ } -> counts.(at) <- counts.(at) + 1
          | None -> counts.(6) <- counts.(6) + 1)
        nonfaulty
    done;
    (counts, !total)
  in
  Format.fprintf fmt "%-10s" "round≤";
  for t = 0 to 5 do
    Format.fprintf fmt "%8d" t
  done;
  Format.fprintf fmt "@\n";
  List.iter
    (fun (module P : Eba.Protocol_intf.PROTOCOL) ->
      let counts, total = cdf (module P) in
      Format.fprintf fmt "%-10s" P.name;
      let acc = ref 0 in
      for t = 0 to 5 do
        acc := !acc + counts.(t);
        Format.fprintf fmt "%7.1f%%" (100. *. float_of_int !acc /. float_of_int total)
      done;
      Format.fprintf fmt "@\n")
    operational_protocols

(* --- F2 --- *)

let f2_sba_gap fmt () =
  Format.fprintf fmt "== F2: EBA vs SBA decision-time gap as the system grows ==@\n";
  Format.fprintf fmt "%-14s %8s %12s %12s %8s@\n" "system" "t+1" "EBA mean" "SBA mean" "speedup";
  List.iter
    (fun (n, t) ->
      let params = Eba.Params.make ~n ~t ~horizon:(t + 2) ~mode:Eba.Params.Crash in
      let eba = Stats.sampled (module Eba.P0opt_plus) params ~seed:17 ~samples:1500 in
      let sba = Stats.sampled (module Eba.Floodset) params ~seed:17 ~samples:1500 in
      Format.fprintf fmt "n=%-3d t=%-6d %8d %12.2f %12.2f %7.1fx@\n" n t (t + 1)
        eba.Stats.mean_time sba.Stats.mean_time
        (sba.Stats.mean_time /. Float.max eba.Stats.mean_time 0.01))
    [ (4, 1); (6, 2); (9, 3); (13, 4); (21, 6) ]

(* --- F3 --- *)

let f3_engine_scaling fmt () =
  Format.fprintf fmt "== F3: engine scaling and the C□ implementation ablation ==@\n";
  Format.fprintf fmt "%-26s %9s %9s %9s %11s %11s@\n" "model" "runs" "points" "views"
    "C□ fast(s)" "C□ naive(s)";
  List.iter
    (fun (n, t, horizon, mode) ->
      let params = Eba.Params.make ~n ~t ~horizon ~mode in
      let m, _build_time = time_it (fun () -> M.build params) in
      let env = F.env m in
      let nf = Eba.Nonrigid.nonfaulty m in
      let e0 = F.eval env (F.exists_value m Val.Zero) in
      let (_, fast), (_, naive) =
        ( time_it (fun () -> Eba.Continual.cbox (Eba.Continual.closure m nf) e0),
          time_it (fun () -> Eba.Continual.cbox_naive m nf e0) )
      in
      Format.fprintf fmt "%-26s %9d %9d %9d %11.3f %11.3f@\n"
        (Format.asprintf "%a" Eba.Params.pp params)
        (M.nruns m) (M.npoints m)
        (Eba.View.size m.M.store)
        fast naive)
    [
      (3, 1, 3, Eba.Params.Crash);
      (4, 1, 3, Eba.Params.Crash);
      (4, 2, 4, Eba.Params.Crash);
      (3, 1, 3, Eba.Params.Omission);
      (4, 1, 3, Eba.Params.Omission);
      (4, 2, 2, Eba.Params.Omission);
    ]

let all fmt () =
  t1_crash_decision_times fmt ();
  Format.fprintf fmt "@\n";
  t2_no_optimum fmt ();
  Format.fprintf fmt "@\n";
  t3_two_step fmt ();
  Format.fprintf fmt "@\n";
  t4_crash_vs_omission fmt ();
  Format.fprintf fmt "@\n";
  t5_chain_bound fmt ();
  Format.fprintf fmt "@\n";
  t6_sba_knowledge fmt ();
  Format.fprintf fmt "@\n";
  f1_decision_cdf fmt ();
  Format.fprintf fmt "@\n";
  f2_sba_gap fmt ();
  Format.fprintf fmt "@\n";
  f3_engine_scaling fmt ()
