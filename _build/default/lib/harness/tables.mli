(** The benchmark tables and figure-series of EXPERIMENTS.md.

    The paper prints no numbers, so these series measure the {e shape} of
    its qualitative claims: who decides when, who dominates whom, how the
    failure modes differ, and how the engine itself scales. *)

val t1_crash_decision_times : Format.formatter -> unit -> unit
(** T1: mean/max decision round of P0, P0opt, P0opt+, FloodSet and the
    semantic optimum by actual failure count (exhaustive crash models). *)

val t2_no_optimum : Format.formatter -> unit -> unit
(** T2: the Prop 2.1 tension — fraction of runs in which each of P0/P1
    decides at time 0, and the t+1 worst case of the optimum. *)

val t3_two_step : Format.formatter -> unit -> unit
(** T3: per seed protocol — steps to fixpoint, optimality before/after,
    domination (Thm 5.2 ablation). *)

val t4_crash_vs_omission : Format.formatter -> unit -> unit
(** T4: F^Λ,2's decide-by-time profile under crash vs omission failures
    (the Prop 6.3 dichotomy). *)

val t5_chain_bound : Format.formatter -> unit -> unit
(** T5: Chain0's worst decision time vs the f+1 bound, exhaustive and
    sampled at large n. *)

val t6_sba_knowledge : Format.formatter -> unit -> unit
(** T6 (extension): the simultaneous baselines — fixed-time vs
    common-knowledge SBA — against the EBA optimum, with the domination
    verdicts. *)

val f1_decision_cdf : Format.formatter -> unit -> unit
(** F1: cumulative distribution of decision rounds per protocol over a
    sampled crash workload. *)

val f2_sba_gap : Format.formatter -> unit -> unit
(** F2: EBA vs SBA decision-time gap as n grows. *)

val f3_engine_scaling : Format.formatter -> unit -> unit
(** F3: model size and continual-common-knowledge closure time vs
    (n, t, horizon), with the naive-fixpoint ablation. *)

val all : Format.formatter -> unit -> unit
