lib/protocols/chain0.ml: Array Eba_sim Eba_util
