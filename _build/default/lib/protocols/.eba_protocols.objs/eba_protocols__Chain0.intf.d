lib/protocols/chain0.mli: Protocol_intf
