lib/protocols/fip_op.ml: Array Eba_core Eba_fip Eba_sim Fun Protocol_intf
