lib/protocols/fip_op.mli: Eba_core Eba_fip Protocol_intf
