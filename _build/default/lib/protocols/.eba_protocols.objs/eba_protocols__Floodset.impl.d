lib/protocols/floodset.ml: Array Eba_sim
