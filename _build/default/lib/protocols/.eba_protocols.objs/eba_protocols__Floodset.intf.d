lib/protocols/floodset.mli: Protocol_intf
