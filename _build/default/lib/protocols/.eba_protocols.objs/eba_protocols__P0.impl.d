lib/protocols/p0.ml: Array Eba_sim Protocol_intf
