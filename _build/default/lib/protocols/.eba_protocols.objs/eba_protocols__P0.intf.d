lib/protocols/p0.mli: Eba_sim Protocol_intf
