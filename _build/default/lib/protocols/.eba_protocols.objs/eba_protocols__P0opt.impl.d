lib/protocols/p0opt.ml: Array Eba_sim Eba_util
