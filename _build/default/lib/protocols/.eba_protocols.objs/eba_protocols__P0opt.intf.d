lib/protocols/p0opt.mli: Protocol_intf
