lib/protocols/p0opt_plus.ml: Array Eba_sim Eba_util Fun Option
