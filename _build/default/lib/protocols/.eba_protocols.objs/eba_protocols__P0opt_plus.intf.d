lib/protocols/p0opt_plus.mli: Protocol_intf
