lib/protocols/protocol_intf.ml: Eba_sim
