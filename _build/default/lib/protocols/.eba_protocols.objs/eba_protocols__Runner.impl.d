lib/protocols/runner.ml: Array Eba_sim Protocol_intf
