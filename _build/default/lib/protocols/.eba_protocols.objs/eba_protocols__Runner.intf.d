lib/protocols/runner.mli: Eba_sim Protocol_intf
