lib/protocols/stats.ml: Array Eba_sim Eba_util Float Format Hashtbl List Printf Protocol_intf Random Runner Stdlib
