lib/protocols/stats.mli: Eba_sim Format Protocol_intf Runner
