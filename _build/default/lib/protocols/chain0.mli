(** The operational 0-chain protocol for sending-omission failures
    (Section 6.2, Prop 6.4): an implementable counterpart of
    [FIP(Z⁰, O⁰)].  Decide 0 when an initial 0 arrives along a trusted
    hop-per-round path; decide 1 after the first round that brings no new
    fault evidence.  All nonfaulty processors decide by time [f+1] when
    [f] processors actually fail; under {e general} omissions the protocol
    remains safe but loses liveness (silence no longer convicts the
    sender). *)

include Protocol_intf.PROTOCOL
