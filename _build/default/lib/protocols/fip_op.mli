(** The full-information protocol as an operational protocol.

    Processors broadcast their entire view every round and decide by
    looking their view up in a knowledge-based decision pair.  Sharing the
    hash-consing arena with an enumerated {!Eba_fip.Model} means a view
    built here is {e the same integer} as the corresponding view in the
    model — executing this protocol under a pattern must reproduce the
    model's states and decisions exactly, which is the cross-layer
    integration test for Prop 2.2 and for the whole simulation stack. *)

module View = Eba_fip.View
module Kb_protocol = Eba_core.Kb_protocol

module Make (Ctx : sig
  val store : View.store
  val pair : Kb_protocol.pair
end) : Protocol_intf.PROTOCOL
