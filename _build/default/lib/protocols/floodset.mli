(** FloodSet: the classical [t+1]-round simultaneous (SBA) baseline for
    crash failures.  Every processor floods the set of initial values it
    has seen and decides at exactly time [t+1] — 0 if a 0 was ever seen,
    1 otherwise.  This is the fixed-cost protocol the optimal EBA
    protocols are measured against. *)

include Protocol_intf.PROTOCOL
