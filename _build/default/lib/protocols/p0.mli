(** The crash-mode EBA protocols of Prop 2.1's proof (after [LF82]).

    [P0]: when a processor first learns that some processor has an initial
    value of 0, it decides 0 and relays the 0 once; a processor that has
    not learned of a 0 by time [t+1] decides 1.  All nonfaulty 0-holders
    decide at time 0.  [P1] is the 0/1 mirror, deciding 1 eagerly.

    These two protocols carry the paper's no-optimum argument: any optimum
    EBA protocol would have to dominate both, and hence decide everything
    at time 0 — impossible by the [DS82] lower bound. *)

module Value = Eba_sim.Value

module Make (_ : sig
  val name : string

  val target : Value.t
  (** Decide [target] on learning of it; decide its negation at [t+1]. *)
end) : Protocol_intf.PROTOCOL

module P0 : Protocol_intf.PROTOCOL
module P1 : Protocol_intf.PROTOCOL
