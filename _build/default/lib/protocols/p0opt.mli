(** [P0opt] (Section 2.2): the optimal crash-mode EBA protocol obtained by
    keeping [P0]'s rule for deciding 0 and deciding 1 as early as possible
    with value-vector messages.  Decide 0 on learning of an initial 0;
    decide 1 when (a) every initial value is known to be 1, or (b) the
    heard-from set repeats in two consecutive rounds with no 0 known.

    Theorem 6.2 claims this matches the knowledge-based optimum [F^Λ,2];
    machine-checking shows that equivalence holds exactly for [t = 1] and
    fails for [t ≥ 2] (see {!P0opt_plus} and EXPERIMENTS.md E9).  [P0opt]
    remains a correct EBA protocol at every [t]. *)

include Protocol_intf.PROTOCOL
