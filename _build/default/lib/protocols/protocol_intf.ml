(** The operational protocol interface: the message-generation /
    state-transition / output form of Section 2.3, for protocols that run
    as real message-passing automata (as opposed to the knowledge-based
    decision pairs of [Eba_core]).

    One round proceeds as: every processor computes its outgoing messages
    with [send]; the failure pattern removes some of them; every processor
    then ingests what arrived with [receive].  Decisions are read with
    [output] at each time step (time 0 included) and are irreversible: the
    first non-[None] output is the decision. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value

module type PROTOCOL = sig
  val name : string

  type state
  type msg

  val init : Params.t -> me:int -> Value.t -> state
  (** State at time 0. *)

  val send : Params.t -> state -> round:int -> msg option array
  (** [send params st ~round] returns the message for each destination
      ([None] = protocol sends nothing there; the self slot is ignored).
      The array length must be [n]. *)

  val receive : Params.t -> state -> round:int -> msg option array -> state
  (** [receive params st ~round arrived] with [arrived.(j)] the message
      from [j] if it was sent and delivered. *)

  val output : state -> Value.t option
  (** Current decision, if any; once some value is returned the runner
      records the first time it appeared. *)
end
