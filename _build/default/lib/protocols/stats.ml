module Params = Eba_sim.Params
module Config = Eba_sim.Config
module Pattern = Eba_sim.Pattern
module Universe = Eba_sim.Universe
module Value = Eba_sim.Value
module Bitset = Eba_util.Bitset

type by_failures = {
  failures : int;
  count : int;
  mean_time : float;
  max_time : int;
  undecided : int;
}

type summary = {
  protocol : string;
  runs : int;
  agreement_violations : int;
  validity_violations : int;
  undecided_nonfaulty : int;
  mean_time : float;
  max_time : int;
  by_failures : by_failures list;
  messages_attempted : int;
  messages_delivered : int;
}

let run_one (module P : Protocol_intf.PROTOCOL) params config pattern =
  let module R = Runner.Make (P) in
  R.run params config pattern

type acc = {
  mutable a_count : int;
  mutable a_time_sum : int;
  mutable a_time_n : int;
  mutable a_max : int;
  mutable a_undecided : int;
}

let over (module P : Protocol_intf.PROTOCOL) (params : Params.t) workload =
  let module R = Runner.Make (P) in
  let n = params.Params.n in
  let agreement_violations = ref 0
  and validity_violations = ref 0
  and undecided = ref 0
  and time_sum = ref 0
  and time_n = ref 0
  and max_time = ref 0
  and attempted = ref 0
  and delivered = ref 0
  and runs = ref 0 in
  let per_f : (int, acc) Hashtbl.t = Hashtbl.create 8 in
  let acc_for f =
    match Hashtbl.find_opt per_f f with
    | Some a -> a
    | None ->
        let a = { a_count = 0; a_time_sum = 0; a_time_n = 0; a_max = 0; a_undecided = 0 } in
        Hashtbl.add per_f f a;
        a
  in
  List.iter
    (fun (config, pattern) ->
      incr runs;
      let trace = R.run params config pattern in
      attempted := !attempted + trace.Runner.messages_attempted;
      delivered := !delivered + trace.Runner.messages_delivered;
      let nonfaulty = Bitset.diff (Bitset.full n) (Pattern.faulty pattern) in
      let f = Pattern.num_failures pattern in
      let a = acc_for f in
      a.a_count <- a.a_count + 1;
      let seen = ref None and agreement_bad = ref false and validity_bad = ref false in
      let unanimous = Config.all_equal config in
      Bitset.iter
        (fun i ->
          match trace.Runner.decisions.(i) with
          | None ->
              incr undecided;
              a.a_undecided <- a.a_undecided + 1
          | Some { Runner.at; value } ->
              time_sum := !time_sum + at;
              incr time_n;
              if at > !max_time then max_time := at;
              a.a_time_sum <- a.a_time_sum + at;
              a.a_time_n <- a.a_time_n + 1;
              if at > a.a_max then a.a_max <- at;
              (match !seen with
              | None -> seen := Some value
              | Some v -> if not (Value.equal v value) then agreement_bad := true);
              (match unanimous with
              | Some v when not (Value.equal v value) -> validity_bad := true
              | Some _ | None -> ()))
        nonfaulty;
      if !agreement_bad then incr agreement_violations;
      if !validity_bad then incr validity_violations)
    workload;
  let by_failures =
    Hashtbl.fold (fun f a acc -> (f, a) :: acc) per_f []
    |> List.sort (fun (f1, _) (f2, _) -> Stdlib.compare f1 f2)
    |> List.map (fun (f, a) ->
           {
             failures = f;
             count = a.a_count;
             mean_time =
               (if a.a_time_n = 0 then Float.nan
                else float_of_int a.a_time_sum /. float_of_int a.a_time_n);
             max_time = a.a_max;
             undecided = a.a_undecided;
           })
  in
  {
    protocol = P.name;
    runs = !runs;
    agreement_violations = !agreement_violations;
    validity_violations = !validity_violations;
    undecided_nonfaulty = !undecided;
    mean_time =
      (if !time_n = 0 then Float.nan else float_of_int !time_sum /. float_of_int !time_n);
    max_time = !max_time;
    by_failures;
    messages_attempted = !attempted;
    messages_delivered = !delivered;
  }

let exhaustive ?(flavour = Universe.Exhaustive) p (params : Params.t) =
  let configs = Config.all ~n:params.Params.n in
  let patterns = Universe.patterns ~flavour params in
  let workload =
    List.concat_map (fun pattern -> List.map (fun c -> (c, pattern)) configs) patterns
  in
  over p params workload

let sampled p (params : Params.t) ~seed ~samples =
  let rng = Random.State.make [| seed |] in
  let workload =
    List.init samples (fun _ ->
        let config =
          Config.of_bits ~n:params.Params.n
            (Random.State.int rng (1 lsl params.Params.n))
        in
        (config, Universe.random_pattern rng params))
  in
  over p params workload

let pp_by_failures fmt b =
  Format.fprintf fmt "f=%d: %d runs, mean %.2f, max %d%s" b.failures b.count b.mean_time
    b.max_time
    (if b.undecided > 0 then Printf.sprintf ", %d undecided" b.undecided else "")

let pp fmt s =
  Format.fprintf fmt "%s over %d runs: agreement-violations=%d validity-violations=%d \
                      undecided=%d mean-decision=%.2f max-decision=%d msgs=%d/%d@\n"
    s.protocol s.runs s.agreement_violations s.validity_violations s.undecided_nonfaulty
    s.mean_time s.max_time s.messages_delivered s.messages_attempted;
  List.iter (fun b -> Format.fprintf fmt "  %a@\n" pp_by_failures b) s.by_failures

let pp_table_header fmt () =
  Format.fprintf fmt "%-10s %8s %6s %6s %8s %8s %10s@\n" "protocol" "runs" "agree"
    "valid" "mean_t" "max_t" "msgs"

let pp_table_row fmt s =
  Format.fprintf fmt "%-10s %8d %6s %6s %8.2f %8d %10d@\n" s.protocol s.runs
    (if s.agreement_violations = 0 then "ok" else string_of_int s.agreement_violations)
    (if s.validity_violations = 0 then "ok" else string_of_int s.validity_violations)
    s.mean_time s.max_time s.messages_delivered
