lib/sim/config.ml: Array List Stdlib Value
