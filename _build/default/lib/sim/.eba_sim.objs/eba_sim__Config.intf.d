lib/sim/config.mli: Format Value
