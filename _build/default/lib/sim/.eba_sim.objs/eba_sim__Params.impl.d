lib/sim/params.ml: Eba_util Format Fun List
