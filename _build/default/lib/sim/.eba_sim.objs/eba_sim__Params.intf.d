lib/sim/params.mli: Eba_util Format
