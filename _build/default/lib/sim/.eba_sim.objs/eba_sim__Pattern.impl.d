lib/sim/pattern.ml: Array Eba_util Format Params Stdlib String
