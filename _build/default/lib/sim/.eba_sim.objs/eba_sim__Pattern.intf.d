lib/sim/pattern.mli: Eba_util Format Params
