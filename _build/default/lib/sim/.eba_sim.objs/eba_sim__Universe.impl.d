lib/sim/universe.ml: Array Eba_util Fun List Option Params Pattern Random
