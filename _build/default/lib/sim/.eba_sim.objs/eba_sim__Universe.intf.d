lib/sim/universe.mli: Eba_util Params Pattern Random
