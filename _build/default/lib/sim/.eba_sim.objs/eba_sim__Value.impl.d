lib/sim/value.ml: Format Printf Stdlib
