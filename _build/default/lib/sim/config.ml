type t = Value.t array

let make values = Array.copy values

let of_bits ~n bits =
  Array.init n (fun i -> if bits land (1 lsl i) <> 0 then Value.One else Value.Zero)

let to_bits c =
  let bits = ref 0 in
  Array.iteri (fun i v -> if Value.equal v Value.One then bits := !bits lor (1 lsl i)) c;
  !bits

let n = Array.length
let value c i = c.(i)
let exists_value c v = Array.exists (Value.equal v) c

let all_equal c =
  let v = c.(0) in
  if Array.for_all (Value.equal v) c then Some v else None

let all ~n =
  List.init (1 lsl n) (fun bits -> of_bits ~n bits)

let constant ~n v = Array.make n v
let equal a b = to_bits a = to_bits b && Array.length a = Array.length b
let compare a b = Stdlib.compare (Array.length a, to_bits a) (Array.length b, to_bits b)

let pp fmt c =
  Array.iter (fun v -> Value.pp fmt v) c
