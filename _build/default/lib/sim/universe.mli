(** Adversary universes: enumerations of failure patterns that define which
    runs exist in a bounded model.

    Knowledge is always computed {e relative to a system of runs}; these
    enumerators make the system explicit.  [exhaustive] universes contain
    every canonical pattern of the mode and are what the correctness and
    optimality experiments quantify over.  The [sparse] omission universe is
    a documented restriction (each faulty processor omits, per round, either
    nothing, everything, or a single receiver) used when the exhaustive
    omission universe is too large; it still contains every run construction
    used by the paper's Section 6 proofs. *)

module Bitset = Eba_util.Bitset

val crash_behaviours : Params.t -> proc:int -> Pattern.behaviour list
(** All canonical crash behaviours of [proc]: the in-horizon clean one plus,
    for every round and every strict subset of the other processors, the
    crash delivering exactly that subset. *)

val omission_behaviours : Params.t -> proc:int -> Pattern.behaviour list
(** All [2^(n-1)] per-round omission choices, over all rounds. *)

val omission_behaviours_sparse : Params.t -> proc:int -> Pattern.behaviour list
(** Per-round omission set restricted to [∅], a singleton, or all others. *)

type flavour = Exhaustive | Sparse

val patterns : ?flavour:flavour -> Params.t -> Pattern.t list
(** Every pattern: for each faulty set of size [<= t], every combination of
    per-processor behaviours.  [flavour] defaults to [Exhaustive] and only
    affects omission mode. *)

val count : ?flavour:flavour -> Params.t -> int
(** [List.length (patterns p)] computed arithmetically, for guarding against
    accidentally huge models. *)

val random_pattern : Random.State.t -> Params.t -> Pattern.t
(** A uniformly-chosen-shape random pattern for the operational layer:
    failure count uniform in [0..t], then uniform behaviours. *)
