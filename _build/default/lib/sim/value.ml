type t = Zero | One

let zero = Zero
let one = One

let of_int = function
  | 0 -> Zero
  | 1 -> One
  | v -> invalid_arg (Printf.sprintf "Value.of_int: %d" v)

let to_int = function Zero -> 0 | One -> 1
let negate = function Zero -> One | One -> Zero
let equal a b = a = b
let compare a b = Stdlib.compare (to_int a) (to_int b)
let pp fmt v = Format.pp_print_int fmt (to_int v)
let all = [ Zero; One ]
