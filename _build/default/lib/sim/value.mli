(** Binary agreement values.

    The paper restricts attention to binary agreement ([V = {0,1}]); the
    whole construction extends verbatim to larger finite [V] but every
    protocol in the paper is stated for the binary case. *)

type t = Zero | One

val zero : t
val one : t

val of_int : int -> t
(** [of_int 0 = Zero], [of_int 1 = One]; raises [Invalid_argument]
    otherwise. *)

val to_int : t -> int
val negate : t -> t
(** [negate Zero = One] and vice versa — the [1 - y] of the paper. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val all : t list
(** [[Zero; One]]. *)
