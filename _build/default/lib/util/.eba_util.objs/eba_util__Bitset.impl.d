lib/util/bitset.ml: Format List Printf Stdlib String
