lib/util/combi.ml: List
