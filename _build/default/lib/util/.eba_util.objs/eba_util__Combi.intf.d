lib/util/combi.mli:
