test/helpers.ml: Alcotest Eba Lazy List QCheck2 QCheck_alcotest
