test/test_bitset.ml: Alcotest Eba Helpers List QCheck2 Stdlib
