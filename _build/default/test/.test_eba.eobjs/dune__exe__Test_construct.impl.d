test/test_construct.ml: Alcotest Eba Helpers List Printf QCheck2
