test/test_cross.ml: Array Eba Helpers List
