test/test_decision.ml: Alcotest Eba Helpers
