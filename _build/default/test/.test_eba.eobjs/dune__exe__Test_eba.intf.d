test/test_eba.mli:
