test/test_epistemic.ml: Array Eba Fun Helpers Lazy List Option Printf QCheck2
