test/test_eventual.ml: Eba Helpers List
