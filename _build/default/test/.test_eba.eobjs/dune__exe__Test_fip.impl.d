test/test_fip.ml: Alcotest Array Eba Helpers List Option
