test/test_general.ml: Eba Helpers List
