test/test_misc.ml: Alcotest Eba Format Helpers List QCheck2 String
