test/test_protocols.ml: Alcotest Array Eba Float Helpers List
