test/test_pset.ml: Alcotest Eba Helpers List QCheck2 Stdlib
