test/test_sba.ml: Eba Helpers Option
