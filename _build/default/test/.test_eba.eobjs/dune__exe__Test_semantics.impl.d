test/test_semantics.ml: Alcotest Eba Format Helpers List Option Printf Stdlib String
