test/test_sim.ml: Alcotest Eba Helpers List Random
