test/test_zoo.ml: Alcotest Array Eba Helpers List Option
