(* Shared fixtures: bounded models are expensive to build, so every suite
   draws them from these lazy caches. *)

module Params = Eba.Params
module Model = Eba.Model
module Formula = Eba.Formula

type fixture = {
  params : Params.t;
  model : Model.t Lazy.t;
  env : Formula.env Lazy.t;
}

let fixture ~n ~t ~horizon ~mode =
  let params = Params.make ~n ~t ~horizon ~mode in
  let model = lazy (Model.build params) in
  let env = lazy (Formula.env (Lazy.force model)) in
  { params; model; env }

let crash_3_1_3 = fixture ~n:3 ~t:1 ~horizon:3 ~mode:Params.Crash
let crash_4_1_3 = fixture ~n:4 ~t:1 ~horizon:3 ~mode:Params.Crash
let crash_3_2_4 = fixture ~n:3 ~t:2 ~horizon:4 ~mode:Params.Crash
let crash_4_2_4 = fixture ~n:4 ~t:2 ~horizon:4 ~mode:Params.Crash
let omission_3_1_2 = fixture ~n:3 ~t:1 ~horizon:2 ~mode:Params.Omission
let omission_3_1_3 = fixture ~n:3 ~t:1 ~horizon:3 ~mode:Params.Omission
let omission_4_1_3 = fixture ~n:4 ~t:1 ~horizon:3 ~mode:Params.Omission
let omission_4_2_2 = fixture ~n:4 ~t:2 ~horizon:2 ~mode:Params.Omission

let model f = Lazy.force f.model
let env f = Lazy.force f.env

(* The standard small fixtures most epistemic suites iterate over. *)
let small_fixtures =
  [ ("crash n=3 t=1 T=3", crash_3_1_3); ("omission n=3 t=1 T=2", omission_3_1_2) ]

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* Deterministic per-model point picker for spot checks. *)
let some_points m k =
  let np = Model.npoints m in
  List.init k (fun i -> i * 7919 mod np)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
