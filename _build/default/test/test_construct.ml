(* The Section 5 machinery: Prop 5.1 steps, the Theorem 5.2 two-step
   optimizer, the Theorem 5.3 characterization, and the Prop 4.3 / 4.4
   conditions (experiments E6, E7, E8). *)

module F = Eba.Formula
module M = Eba.Model
module KB = Eba.Kb_protocol
module Spec = Eba.Spec
module Dom = Eba.Dominance
module Con = Eba.Construct
module Ch = Eba.Characterize
module Zoo = Eba.Zoo
module DS = Eba.Decision_set
module Val = Eba.Value
open Helpers

(* Nontrivial-agreement seed protocols to optimize, per fixture. *)
let seeds fixture =
  let e = env fixture in
  let m = model fixture in
  match fixture.params.Eba.Params.mode with
  | Eba.Params.Crash ->
      [ ("F^Λ", KB.never_decide m); ("P0", Zoo.p0 e); ("P1", Zoo.p1 e) ]
  | Eba.Params.Omission | Eba.Params.General_omission ->
      [ ("F^Λ", KB.never_decide m); ("chain0", Zoo.chain_zero e) ]

let nta_fixtures = [ ("crash n=3 t=1 T=3", crash_3_1_3); ("omission n=3 t=1 T=3", omission_3_1_3) ]

let step_tests =
  List.concat_map
    (fun (fname, fixture) ->
      [
        test (Printf.sprintf "Prop 5.1: both steps give dominating NTAs [%s]" fname)
          (fun () ->
            let e = env fixture in
            let m = model fixture in
            List.iter
              (fun (sname, pair) ->
                let d = KB.decide m pair in
                List.iter
                  (fun (order_name, order) ->
                    let stepped = Con.step order e pair in
                    let d' = KB.decide m stepped in
                    check
                      (Printf.sprintf "%s/%s NTA" sname order_name)
                      true
                      (Spec.is_nontrivial_agreement (Spec.check d'));
                    check
                      (Printf.sprintf "%s/%s dominates" sname order_name)
                      true (Dom.dominates d' d))
                  [ ("zero-first", Con.Zero_first); ("one-first", Con.One_first) ])
              (seeds fixture));
        test (Printf.sprintf "Thm 5.2: two-step optimize is optimal [%s]" fname)
          (fun () ->
            let e = env fixture in
            let m = model fixture in
            List.iter
              (fun (sname, pair) ->
                List.iter
                  (fun first ->
                    let opt = Con.optimize ~first e pair in
                    let d = KB.decide m opt in
                    check (sname ^ " NTA") true
                      (Spec.is_nontrivial_agreement (Spec.check d));
                    check (sname ^ " optimal") true (Ch.is_optimal e d);
                    check (sname ^ " dominates seed") true
                      (Dom.dominates d (KB.decide m pair)))
                  [ Con.Zero_first; Con.One_first ])
              (seeds fixture));
        test (Printf.sprintf "Thm 5.2: fixed point within two steps [%s]" fname)
          (fun () ->
            let e = env fixture in
            List.iter
              (fun (sname, pair) ->
                let _, steps = Con.iterate_until_fixpoint e pair in
                check (sname ^ " <=2 steps") true (steps <= 2))
              (seeds fixture));
        test
          (Printf.sprintf "Thm 5.2: EBA seeds give optimal EBA [%s]" fname)
          (fun () ->
            let e = env fixture in
            let m = model fixture in
            List.iter
              (fun (sname, pair) ->
                let seed_report = Spec.check (KB.decide m pair) in
                if Spec.is_eba seed_report then begin
                  let opt = Con.optimize e pair in
                  let d = KB.decide m opt in
                  check (sname ^ " optimal EBA") true
                    (Spec.is_eba (Spec.check d) && Ch.is_optimal e d)
                end)
              (seeds fixture));
      ])
    nta_fixtures

let characterization_tests =
  [
    test "Prop 4.3 necessity holds for every NTA protocol" (fun () ->
        List.iter
          (fun (fname, fixture) ->
            let e = env fixture in
            let m = model fixture in
            List.iter
              (fun (sname, pair) ->
                let d = KB.decide m pair in
                Alcotest.(check (list string))
                  (Printf.sprintf "%s/%s" fname sname)
                  []
                  (List.map (fun f -> f.Ch.condition) (Ch.necessary e d)))
              (seeds fixture))
          nta_fixtures);
    test "Thm 5.3 rejects the non-optimal P0" (fun () ->
        let e = env crash_3_1_3 in
        let m = model crash_3_1_3 in
        check "P0 not optimal" false (Ch.is_optimal e (KB.decide m (Zoo.p0 e)));
        check "failures witness it" true
          (Ch.optimality_failures e (KB.decide m (Zoo.p0 e)) <> []));
    test "Thm 5.3 accepts F^Λ,2 (crash)" (fun () ->
        let e = env crash_3_1_3 in
        let m = model crash_3_1_3 in
        check "optimal" true (Ch.is_optimal e (KB.decide m (Zoo.f_lambda_2 e))));
    test "Prop 4.4 sufficiency: F^Λ,2 satisfies the one-anchored variant" (fun () ->
        let e = env crash_3_1_3 in
        let m = model crash_3_1_3 in
        let d = KB.decide m (Zoo.f_lambda_2 e) in
        check "one-anchored" true (Ch.sufficient_one_anchored e d));
    test "optimize is idempotent on the result" (fun () ->
        let e = env crash_3_1_3 in
        let fl2 = Zoo.f_lambda_2 e in
        let again = Con.optimize ~first:Con.One_first e fl2 in
        check "unchanged" true (KB.pair_equal fl2 again));
  ]

(* Random NTA protocols: delay P0's decisions by per-processor offsets;
   delaying decisions preserves nontrivial agreement, so the construction
   must dominate and optimize each of them. *)
let delayed_p0 fixture d0 d1 =
  let e = env fixture in
  let m = model fixture in
  let store = m.M.store in
  let t1 = fixture.params.Eba.Params.t_failures + 1 in
  let zero =
    DS.of_views m (fun v ->
        Eba.View.knows_zero store v && Eba.View.time store v >= d0)
  in
  let one =
    DS.of_views m (fun v ->
        Eba.View.time store v >= t1 + d1 && not (Eba.View.knows_zero store v))
  in
  ignore e;
  { KB.zero; one }

let random_delay_tests =
  [
    qtest ~count:9 "optimizing randomly delayed P0 variants (crash)"
      QCheck2.Gen.(pair (int_bound 2) (int_bound 1))
      (fun (d0, d1) ->
        let fixture = crash_3_1_3 in
        let e = env fixture in
        let m = model fixture in
        let pair = delayed_p0 fixture d0 d1 in
        let d = KB.decide m pair in
        Spec.is_nontrivial_agreement (Spec.check d)
        &&
        let opt = Con.optimize e pair in
        let dopt = KB.decide m opt in
        Spec.is_nontrivial_agreement (Spec.check dopt)
        && Ch.is_optimal e dopt && Dom.dominates dopt d);
  ]

let value_symmetry_tests =
  [
    test "optimal protocols decide 0 exactly on B(e0 ∧ C□ e0)" (fun () ->
        (* the two 5.3 equivalences, spot-checked through the public
           formula API rather than Characterize *)
        let fixture = crash_3_1_3 in
        let e = env fixture in
        let m = model fixture in
        let pair = Zoo.f_lambda_2 e in
        let d = KB.decide m pair in
        let nf = Eba.Nonrigid.nonfaulty m in
        let n_and_o = KB.conjoin e nf "N&O" pair.KB.one in
        let e0 = F.exists_value m Val.Zero in
        for i = 0 to 2 do
          let lhs = KB.decided_atom e d Val.Zero i in
          let rhs =
            F.B
              ( nf,
                i,
                F.And
                  [
                    e0;
                    F.Cbox (n_and_o, e0);
                    F.Not (KB.decided_atom e d Val.One i);
                  ] )
          in
          check "iff on nonfaulty" true
            (F.valid e (F.Implies (F.In (nf, i), F.Iff (lhs, rhs))))
        done);
  ]

let suite =
  ( "construct",
    step_tests @ characterization_tests @ random_delay_tests @ value_symmetry_tests )
