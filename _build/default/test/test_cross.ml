(* Cross-layer integration: operational executions against the semantic
   model, at corresponding runs (same configuration and failure pattern).
   This is the machine form of Prop 2.2 / Cor 2.3 and Theorem 6.2. *)

module M = Eba.Model
module KB = Eba.Kb_protocol
module Runner = Eba.Runner
module Val = Eba.Value
module B = Eba.Bitset
open Helpers

(* Compare nonfaulty decisions of an operational protocol with a semantic
   decision pair over every run of a model.  Returns the number of
   mismatching (run, proc) entries. *)
let mismatches fixture pair (module P : Eba.Protocol_intf.PROTOCOL) =
  let m = model fixture in
  let params = fixture.params in
  let d = KB.decide m pair in
  let module R = Runner.Make (P) in
  let bad = ref 0 in
  for r = 0 to M.nruns m - 1 do
    let run = M.run_of_point m (M.point m ~run:r ~time:0) in
    let trace = R.run params run.M.config run.M.pattern in
    B.iter
      (fun i ->
        let sem = KB.outcome d ~run:r ~proc:i in
        let op = trace.Runner.decisions.(i) in
        let same =
          match (sem, op) with
          | None, None -> true
          | Some { KB.at; value }, Some { Runner.at = at'; value = value' } ->
              at = at' && Val.equal value value'
          | None, Some _ | Some _, None -> false
        in
        if not same then incr bad)
      (M.nonfaulty m ~run:r)
  done;
  !bad

let fip_of fixture pair =
  let m = model fixture in
  (module Eba.Fip_op.Make (struct
    let store = m.M.store
    let pair = pair
  end) : Eba.Protocol_intf.PROTOCOL)

let tests =
  [
    test "operational FIP reproduces semantic decisions exactly (crash)" (fun () ->
        let e = env crash_3_1_3 in
        let pair = Eba.Zoo.f_lambda_2 e in
        check_int "mismatches" 0 (mismatches crash_3_1_3 pair (fip_of crash_3_1_3 pair)));
    test "operational FIP reproduces semantic decisions exactly (omission)" (fun () ->
        let e = env omission_3_1_3 in
        let pair = Eba.Zoo.f_star e in
        check_int "mismatches" 0
          (mismatches omission_3_1_3 pair (fip_of omission_3_1_3 pair)));
    test "Thm 6.2: P0opt ≡ F^Λ,2 at corresponding points (crash n=3)" (fun () ->
        let e = env crash_3_1_3 in
        check_int "mismatches" 0
          (mismatches crash_3_1_3 (Eba.Zoo.f_lambda_2 e) (module Eba.P0opt)));
    test "Thm 6.2 at n=4 t=1" (fun () ->
        let e = env crash_4_1_3 in
        check_int "mismatches" 0
          (mismatches crash_4_1_3 (Eba.Zoo.f_lambda_2 e) (module Eba.P0opt)));
    slow "Thm 6.2's equivalence is a t=1 phenomenon: P0opt lags at t=2" (fun () ->
        (* For t ≥ 2, P0opt's value-vector messages lose information that
           the full-information protocol exploits: a round-1 crasher that
           delivered its last message to me breaks rule (b)'s "same set
           twice" forever-shrinking test, while F^Λ,2 can use gossiped
           heard-histories to pin every potential witness of a 0 as dead
           one round earlier.  P0opt remains a correct EBA protocol,
           dominated (not equalled) by F^Λ,2; the delivery-evidence
           gossiping variant P0opt+ restores the exact equivalence (see
           the tests below and EXPERIMENTS.md E9). *)
        List.iter
          (fun fixture ->
            let e = env fixture in
            check "not equivalent" true
              (mismatches fixture (Eba.Zoo.f_lambda_2 e) (module Eba.P0opt) > 0);
            let s = Eba.Stats.exhaustive (module Eba.P0opt) fixture.params in
            check "agreement" true (s.Eba.Stats.agreement_violations = 0);
            check "validity" true (s.Eba.Stats.validity_violations = 0);
            check "decision" true (s.Eba.Stats.undecided_nonfaulty = 0))
          [ crash_3_2_4; crash_4_2_4 ]);
    test "P0opt+ ≡ F^Λ,2 at t=1 (crash n=3)" (fun () ->
        let e = env crash_3_1_3 in
        check_int "mismatches" 0
          (mismatches crash_3_1_3 (Eba.Zoo.f_lambda_2 e) (module Eba.P0opt_plus)));
    slow "P0opt+ ≡ F^Λ,2 at t=2 where P0opt is not (crash n=3, n=4)" (fun () ->
        List.iter
          (fun fixture ->
            let e = env fixture in
            check_int "mismatches" 0
              (mismatches fixture (Eba.Zoo.f_lambda_2 e) (module Eba.P0opt_plus)))
          [ crash_3_2_4; crash_4_2_4 ]);
    test "operational P0 ≡ semantic P0 (crash)" (fun () ->
        let e = env crash_3_1_3 in
        check_int "mismatches" 0
          (mismatches crash_3_1_3 (Eba.Zoo.p0 e) (module Eba.P0.P0)));
    test "operational P1 ≡ semantic P1 (crash)" (fun () ->
        let e = env crash_3_1_3 in
        check_int "mismatches" 0
          (mismatches crash_3_1_3 (Eba.Zoo.p1 e) (module Eba.P0.P1)));
    test "operational Chain0 ≡ semantic FIP(Z⁰,O⁰) (omission n=3)" (fun () ->
        let e = env omission_3_1_3 in
        check_int "mismatches" 0
          (mismatches omission_3_1_3 (Eba.Zoo.chain_zero e) (module Eba.Chain0)));
    slow "operational Chain0 ≡ semantic FIP(Z⁰,O⁰) (omission n=4)" (fun () ->
        let e = env omission_4_1_3 in
        check_int "mismatches" 0
          (mismatches omission_4_1_3 (Eba.Zoo.chain_zero e) (module Eba.Chain0)));
  ]

let suite = ("cross", tests)
