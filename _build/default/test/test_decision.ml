(* Decision sets, knowledge-based protocols, the specification checker and
   the dominance order. *)

module F = Eba.Formula
module M = Eba.Model
module N = Eba.Nonrigid
module P = Eba.Pset
module DS = Eba.Decision_set
module KB = Eba.Kb_protocol
module Spec = Eba.Spec
module Dom = Eba.Dominance
module Zoo = Eba.Zoo
module Val = Eba.Value
module B = Eba.Bitset
open Helpers

let decision_set_tests =
  [
    test "empty set has no members" (fun () ->
        let m = model crash_3_1_3 in
        check_int "card" 0 (DS.cardinal (DS.empty m));
        check "is_empty" true (DS.is_empty (DS.empty m)));
    test "of_formulas on B^N e0 is view-measurable and persistent" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let nf = N.nonfaulty m in
        let z =
          DS.of_formulas e (fun i -> F.B (nf, i, F.exists_value m Val.Zero))
        in
        check "nonempty" false (DS.is_empty z);
        check "persistent" true (DS.persistent m z));
    test "of_formulas rejects non-measurable formulas" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        (* ∃0 is a property of the run, not of any processor's view *)
        Alcotest.check_raises "not measurable"
          (Invalid_argument "Decision_set.of_formulas: formula not view-measurable")
          (fun () -> ignore (DS.of_formulas e (fun _ -> F.exists_value m Val.Zero))));
    test "points projection agrees with membership" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let nf = N.nonfaulty m in
        let z = DS.of_formulas e (fun i -> F.B (nf, i, F.exists_value m Val.Zero)) in
        let pts = DS.points m z ~proc:1 in
        M.iter_points m (fun pid ->
            check "agree" (DS.mem z (M.view_at m ~point:pid ~proc:1)) (P.mem pts pid)));
    test "union and inter" (fun () ->
        let m = model crash_3_1_3 in
        let store = m.M.store in
        let a = DS.of_views m (fun v -> Eba.View.time store v = 1) in
        let b = DS.of_views m (fun v -> Eba.View.knows_zero store v) in
        let u = DS.union m a b and i = DS.inter m a b in
        check "inter sub union" true (DS.cardinal i <= DS.cardinal u);
        check "union card" true
          (DS.cardinal u = DS.cardinal a + DS.cardinal b - DS.cardinal i));
  ]

let kb_tests =
  [
    test "never_decide has no outcomes" (fun () ->
        let m = model crash_3_1_3 in
        let d = KB.decide m (KB.never_decide m) in
        for run = 0 to M.nruns m - 1 do
          for i = 0 to 2 do
            check "none" true (KB.outcome d ~run ~proc:i = None)
          done
        done);
    test "first-entry semantics" (fun () ->
        let m = model crash_3_1_3 in
        let store = m.M.store in
        (* decide 0 at time >= 1 always: outcome should be time 1 *)
        let zero = DS.of_views m (fun v -> Eba.View.time store v >= 1) in
        let d = KB.decide m { KB.zero; one = DS.empty m } in
        for run = 0 to M.nruns m - 1 do
          match KB.outcome d ~run ~proc:0 with
          | Some { KB.at; value } ->
              check_int "time" 1 at;
              check "value" true (Val.equal value Val.Zero)
          | None -> Alcotest.fail "expected decision"
        done);
    test "ambiguity is recorded" (fun () ->
        let m = model crash_3_1_3 in
        let store = m.M.store in
        let all1 = DS.of_views m (fun v -> Eba.View.time store v = 1) in
        let d = KB.decide m { KB.zero = all1; one = all1 } in
        check "ambiguous" false (d.KB.ambiguities = []);
        check "no outcome" true (KB.outcome d ~run:0 ~proc:0 = None));
    test "decided_atom is persistent and exclusive (Prop 4.1)" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let pair = Zoo.p0 e in
        let d = KB.decide m pair in
        for i = 0 to 2 do
          let d0 = KB.decided_atom e d Val.Zero i in
          let d1 = KB.decided_atom e d Val.One i in
          check "exclusive" true
            (F.valid e (F.Implies (d0, F.Not d1)));
          check "persistent" true
            (F.valid e (F.Implies (d0, F.Always d0)));
          (* 4.1(b): a processor knows its own decision state *)
          check "introspective+" true (F.valid e (F.Iff (d0, F.K (i, d0))));
          check "introspective-" true
            (F.valid e (F.Iff (F.Not d0, F.K (i, F.Not d0))))
        done);
  ]

let spec_tests =
  [
    test "P0 is EBA in crash mode" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let r = Spec.check (KB.decide m (Zoo.p0 e)) in
        check "eba" true (Spec.is_eba r);
        check "not sba" false (Spec.is_sba r));
    test "P1 is EBA in crash mode" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        check "eba" true (Spec.is_eba (Spec.check (KB.decide m (Zoo.p1 e)))));
    test "never_decide is NTA but not EBA" (fun () ->
        let m = model crash_3_1_3 in
        let r = Spec.check (KB.decide m (KB.never_decide m)) in
        check "nta" true (Spec.is_nontrivial_agreement r);
        check "not eba" false (Spec.is_eba r);
        check "no decision" false r.Spec.decision);
    test "a broken protocol is caught" (fun () ->
        (* decide your own value at time 0: violates agreement *)
        let m = model crash_3_1_3 in
        let store = m.M.store in
        let own v target =
          Eba.View.time store v = 0 && Val.equal (Eba.View.init_value store v) target
        in
        let pair =
          {
            KB.zero = DS.of_views m (fun v -> own v Val.Zero);
            one = DS.of_views m (fun v -> own v Val.One);
          }
        in
        let r = Spec.check (KB.decide m pair) in
        check "agreement broken" false r.Spec.agreement;
        check "weak validity still fine" true r.Spec.weak_validity);
    test "max decision time of P0 is t+1" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let r = Spec.check (KB.decide m (Zoo.p0 e)) in
        check "max" true (r.Spec.max_decision_time = Some 2));
  ]

let dominance_tests =
  [
    test "every protocol dominates itself, not strictly" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let d = KB.decide m (Zoo.p0 e) in
        let v = Dom.compare d d in
        check "dom" true v.Dom.dominates;
        check "not strict" false v.Dom.strictly;
        check "equivalent" true (Dom.equivalent d d));
    test "everything dominates never_decide" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let d_p0 = KB.decide m (Zoo.p0 e) in
        let d_never = KB.decide m (KB.never_decide m) in
        check "dominates" true (Dom.strictly_dominates d_p0 d_never);
        check "converse fails" false (Dom.dominates d_never d_p0));
    test "P0 and P1 are incomparable" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let d0 = KB.decide m (Zoo.p0 e) in
        let d1 = KB.decide m (Zoo.p1 e) in
        check "P0 !> P1" false (Dom.dominates d0 d1);
        check "P1 !> P0" false (Dom.dominates d1 d0));
    test "domination is transitive here" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let a = KB.decide m (Zoo.f_lambda_2 e) in
        let b = KB.decide m (Zoo.p0 e) in
        let c = KB.decide m (KB.never_decide m) in
        check "a>b" true (Dom.dominates a b);
        check "b>c" true (Dom.dominates b c);
        check "a>c" true (Dom.dominates a c));
  ]

let suite = ("decision", decision_set_tests @ kb_tests @ spec_tests @ dominance_tests)
