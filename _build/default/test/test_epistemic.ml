(* The epistemic engine: S5 for K_i (Prop 3.1), the Lemma 3.4 axioms for
   continual common knowledge, agreement of the two C□ implementations,
   and the relation C□ ⇒ C (strict). *)

module F = Eba.Formula
module N = Eba.Nonrigid
module P = Eba.Pset
module M = Eba.Model
module K = Eba.Knowledge
module Cm = Eba.Common
module Ct = Eba.Continual
module T = Eba.Temporal
module Val = Eba.Value
module B = Eba.Bitset
open Helpers

(* --- a pool of atoms and nonrigid sets per fixture, built once --- *)

type pool = {
  p_env : F.env;
  p_model : M.t;
  atoms : F.t array;
  rigids : N.t array;  (* nonrigid sets to quantify over *)
}

let pool_of fixture =
  let m = model fixture in
  let e = env fixture in
  let pseudo salt =
    F.atom m (Printf.sprintf "rnd%d" salt) (fun pid -> (pid * 2654435761) lxor salt land 7 < 3)
  in
  let nf = N.nonfaulty m in
  let everyone = N.everyone m in
  let knows_zero =
    N.restrict_by_view m ~name:"N&kz" nf (fun ~proc:_ ~view ->
        Eba.View.knows_zero m.M.store view)
  in
  {
    p_env = e;
    p_model = m;
    atoms =
      [|
        F.exists_value m Val.Zero;
        F.exists_value m Val.One;
        pseudo 17;
        pseudo 40961;
        F.Const true;
        F.Const false;
      |];
    rigids = [| nf; everyone; knows_zero |];
  }

let pools = lazy (List.map (fun (name, f) -> (name, pool_of f)) small_fixtures)

(* --- random formula generation --- *)

let gen_formula pool =
  let open QCheck2.Gen in
  let atom = map (fun i -> pool.atoms.(i mod Array.length pool.atoms)) small_nat in
  let nonrigid = map (fun i -> pool.rigids.(i mod Array.length pool.rigids)) small_nat in
  let proc = int_bound (M.n pool.p_model - 1) in
  sized
  @@ fix (fun self size ->
         if size = 0 then atom
         else
           let sub = self (size / 2) in
           oneof
             [
               atom;
               map (fun f -> F.Not f) sub;
               map2 (fun a b -> F.And [ a; b ]) sub sub;
               map2 (fun a b -> F.Or [ a; b ]) sub sub;
               map2 (fun a b -> F.Implies (a, b)) sub sub;
               map2 (fun i f -> F.K (i, f)) proc sub;
               map3 (fun s i f -> F.B (s, i, f)) nonrigid proc sub;
               map2 (fun s f -> F.E (s, f)) nonrigid sub;
               map2 (fun s f -> F.C (s, f)) nonrigid sub;
               map2 (fun s f -> F.Ebox (s, f)) nonrigid sub;
               map2 (fun s f -> F.Cbox (s, f)) nonrigid sub;
               map (fun f -> F.Always f) sub;
               map (fun f -> F.Eventually f) sub;
               map (fun f -> F.Throughout f) sub;
             ])

let gen_small pool = QCheck2.Gen.(gen_formula pool |> map Fun.id)

(* check a schema (formula-valued function of random subformulas) over all
   pooled fixtures *)
let axiom ?(count = 60) name mk =
  let pools = Lazy.force pools in
  List.map
    (fun (fixture_name, pool) ->
      qtest ~count
        (Printf.sprintf "%s [%s]" name fixture_name)
        QCheck2.Gen.(pair (gen_small pool) (gen_small pool))
        (fun (phi, psi) -> F.valid pool.p_env (mk pool phi psi)))
    pools

let proc0 = 0

(* --- deterministic spot checks --- *)

let spot_tests =
  [
    test "a 0-holder knows e0 at time 0" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let e0 = F.exists_value m Val.Zero in
        let k = F.eval e (F.K (0, e0)) in
        M.iter_points m (fun pid ->
            if M.time_of_point m pid = 0 then begin
              let run = M.run_of_point m pid in
              let own_zero = Val.equal (Eba.Config.value run.M.config 0) Val.Zero in
              if own_zero then check "knows" true (P.mem k pid)
            end));
    test "nobody knows another's value at time 0" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        (* K_0 e0 must fail at time 0 when 0's own value is 1, even if
           someone else holds a 0 *)
        let e0 = F.exists_value m Val.Zero in
        let k = F.eval e (F.K (0, e0)) in
        M.iter_points m (fun pid ->
            if M.time_of_point m pid = 0 then begin
              let run = M.run_of_point m pid in
              if Val.equal (Eba.Config.value run.M.config 0) Val.One then
                check "cannot know" false (P.mem k pid)
            end));
    test "knows_zero structurally = K_i e0 semantically" (fun () ->
        (* the Section 2 claim that full-information views make the finest
           distinctions: knowing of a 0 is exactly containing a 0 *)
        List.iter
          (fun (_, fixture) ->
            let m = model fixture in
            let e = env fixture in
            let e0 = F.exists_value m Val.Zero in
            for i = 0 to M.n m - 1 do
              let k = F.eval e (F.K (i, e0)) in
              M.iter_points m (fun pid ->
                  let v = M.view_at m ~point:pid ~proc:i in
                  check "match" (Eba.View.knows_zero m.M.store v) (P.mem k pid))
            done)
          small_fixtures);
    test "E over empty set is vacuous" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let nobody = N.rigid m ~name:"none" B.empty in
        check "valid" true (F.valid e (F.E (nobody, F.Const false))));
    test "C□ over empty set is vacuous" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let nobody = N.rigid m ~name:"none" B.empty in
        check "valid" true (F.valid e (F.Cbox (nobody, F.Const false))));
    test "C□ strictly stronger than C" (fun () ->
        (* C_N e0 holds somewhere (e.g. late in a unanimous-0 failure-free
           run) while C□_N e0 holds nowhere in these models *)
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let nf = N.nonfaulty m in
        let e0 = F.exists_value m Val.Zero in
        let c = F.eval e (F.C (nf, e0)) in
        let cbox = F.eval e (F.Cbox (nf, e0)) in
        check "C somewhere" false (P.is_empty c);
        check "C□ nowhere" true (P.is_empty cbox);
        check "C□ ⊆ C" true (P.subset cbox c));
    test "common knowledge arises in unanimous runs" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let nf = N.nonfaulty m in
        let e0 = F.eval e (F.C (nf, F.exists_value m Val.Zero)) in
        (* the all-zero failure-free run at the horizon *)
        let pattern = Eba.Pattern.failure_free crash_3_1_3.params in
        let config = Eba.Config.constant ~n:3 Val.Zero in
        let run = Option.get (M.find_run m ~config ~pattern) in
        check "C e0 at horizon" true (P.mem e0 (M.point m ~run:run.M.index ~time:3)));
    test "iterated E approximates C from above" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let nf = N.nonfaulty m in
        let phi = F.eval e (F.exists_value m Val.Zero) in
        let c = Cm.common m nf phi in
        let rec chain prev k =
          if k > 4 then ()
          else begin
            let ek = Cm.iterated m nf k phi in
            check "decreasing" true (P.subset ek prev);
            check "C below" true (P.subset c ek);
            chain ek (k + 1)
          end
        in
        chain (P.full (M.npoints m)) 1);
  ]

(* --- axioms as random-formula properties --- *)

let s5_axioms =
  axiom "K: knowledge axiom Kφ⇒φ" (fun _ phi _ -> F.Implies (F.K (proc0, phi), phi))
  @ axiom "K: distribution" (fun _ phi psi ->
        F.Implies
          ( F.And [ F.K (proc0, phi); F.K (proc0, F.Implies (phi, psi)) ],
            F.K (proc0, psi) ))
  @ axiom "K: positive introspection" (fun _ phi _ ->
        F.Implies (F.K (proc0, phi), F.K (proc0, F.K (proc0, phi))))
  @ axiom "K: negative introspection" (fun _ phi _ ->
        F.Implies (F.Not (F.K (proc0, phi)), F.K (proc0, F.Not (F.K (proc0, phi)))))

let belief_axioms =
  axiom "B: distribution" (fun pool phi psi ->
        let s = pool.rigids.(0) in
        F.Implies
          ( F.And [ F.B (s, proc0, phi); F.B (s, proc0, F.Implies (phi, psi)) ],
            F.B (s, proc0, psi) ))
  @ axiom "B: membership-truth" (fun pool phi _ ->
        let s = pool.rigids.(0) in
        F.Implies (F.And [ F.B (s, proc0, phi); F.In (s, proc0) ], phi))
  @ axiom "E distributes over ∧" (fun pool phi psi ->
        let s = pool.rigids.(0) in
        F.Iff (F.E (s, F.And [ phi; psi ]), F.And [ F.E (s, phi); F.E (s, psi) ]))

let common_axioms =
  axiom ~count:30 "C: fixed point C_Sφ ⇒ E_S(φ ∧ C_Sφ)" (fun pool phi _ ->
        let s = pool.rigids.(0) in
        F.Implies (F.C (s, phi), F.E (s, F.And [ phi; F.C (s, phi) ])))
  @ axiom ~count:30 "C□ ⇒ C" (fun pool phi _ ->
        let s = pool.rigids.(0) in
        F.Implies (F.Cbox (s, phi), F.C (s, phi)))

let continual_axioms =
  axiom ~count:30 "C□: distribution (3.4b)" (fun pool phi psi ->
        let s = pool.rigids.(0) in
        F.Implies
          ( F.And [ F.Cbox (s, phi); F.Cbox (s, F.Implies (phi, psi)) ],
            F.Cbox (s, psi) ))
  @ axiom ~count:30 "C□: positive introspection (3.4c)" (fun pool phi _ ->
        let s = pool.rigids.(0) in
        F.Implies (F.Cbox (s, phi), F.Cbox (s, F.Cbox (s, phi))))
  @ axiom ~count:30 "C□: negative introspection (3.4d)" (fun pool phi _ ->
        let s = pool.rigids.(0) in
        F.Implies (F.Not (F.Cbox (s, phi)), F.Cbox (s, F.Not (F.Cbox (s, phi)))))
  @ axiom ~count:30 "C□: fixed-point axiom (3.4e)" (fun pool phi _ ->
        let s = pool.rigids.(0) in
        F.Implies (F.Cbox (s, phi), F.Ebox (s, F.And [ phi; F.Cbox (s, phi) ])))
  @ axiom ~count:30 "C□ constant along runs (3.4g)" (fun pool phi _ ->
        let s = pool.rigids.(0) in
        F.Iff (F.Cbox (s, phi), F.Throughout (F.Cbox (s, phi))))

let temporal_axioms =
  axiom "□φ ⇒ φ" (fun _ phi _ -> F.Implies (F.Always phi, phi))
  @ axiom "⊟φ ⇒ □φ" (fun _ phi _ -> F.Implies (F.Throughout phi, F.Always phi))
  @ axiom "◇ = ¬□¬" (fun _ phi _ ->
        F.Iff (F.Eventually phi, F.Not (F.Always (F.Not phi))))
  @ axiom "□ idempotent" (fun _ phi _ -> F.Iff (F.Always phi, F.Always (F.Always phi)))

let implementation_agreement =
  let pools = Lazy.force pools in
  List.concat_map
    (fun (fixture_name, pool) ->
      List.map
        (fun (sname, sidx) ->
          qtest ~count:25
            (Printf.sprintf "C□ fast = naive over %s [%s]" sname fixture_name)
            (gen_small pool)
            (fun phi ->
              let s = pool.rigids.(sidx) in
              let pset = F.eval pool.p_env phi in
              let fast = Ct.cbox (Ct.closure pool.p_model s) pset in
              let naive = Ct.cbox_naive pool.p_model s pset in
              P.equal fast naive))
        [ ("N", 0); ("All", 1); ("N&kz", 2) ])
    pools

let induction_rule =
  (* Lemma 3.4(f): if ⊨ φ ⇒ E□_S(φ ∧ ψ) then ⊨ φ ⇒ C□_S ψ.  Checked as a
     conditional property on random φ, ψ. *)
  let pools = Lazy.force pools in
  List.map
    (fun (fixture_name, pool) ->
      qtest ~count:60
        (Printf.sprintf "C□: induction rule (3.4f) [%s]" fixture_name)
        QCheck2.Gen.(pair (gen_small pool) (gen_small pool))
        (fun (phi, psi) ->
          let s = pool.rigids.(0) in
          let premise = F.Implies (phi, F.Ebox (s, F.And [ phi; psi ])) in
          (not (F.valid pool.p_env premise))
          || F.valid pool.p_env (F.Implies (phi, F.Cbox (s, psi)))))
    pools

let suite =
  ( "epistemic",
    spot_tests @ s5_axioms @ belief_axioms @ common_axioms @ continual_axioms
    @ temporal_axioms @ implementation_agreement @ induction_rule )
