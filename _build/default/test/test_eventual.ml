(* Eventual common knowledge and the Section 3.2 protocol F0: C◇ is weaker
   than the decision conditions need, which is the paper's motivation for
   continual common knowledge. *)

module F = Eba.Formula
module M = Eba.Model
module N = Eba.Nonrigid
module P = Eba.Pset
module KB = Eba.Kb_protocol
module Spec = Eba.Spec
module Dom = Eba.Dominance
module Con = Eba.Construct
module Zoo = Eba.Zoo
module Val = Eba.Value
open Helpers

let tests =
  [
    test "◇C φ ⇒ C◇ φ (the paper's stated relation)" (fun () ->
        List.iter
          (fun (_, fixture) ->
            let m = model fixture in
            let e = env fixture in
            let nf = N.nonfaulty m in
            let e0 = F.exists_value m Val.Zero in
            check "valid" true
              (F.valid e (F.Implies (F.Eventually (F.C (nf, e0)), F.Cdia (nf, e0)))))
          small_fixtures);
    test "C□ φ ⇒ C φ ⇒ C◇ φ ladder" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let nf = N.nonfaulty m in
        let e0 = F.exists_value m Val.Zero in
        check "C□⇒C◇" true
          (F.valid e (F.Implies (F.Cbox (nf, e0), F.Cdia (nf, e0))));
        check "C⇒C◇" true (F.valid e (F.Implies (F.C (nf, e0), F.Cdia (nf, e0))));
        (* and strictly: C◇ holds somewhere C does not *)
        let c = F.eval e (F.C (nf, e0)) in
        let cd = F.eval e (F.Cdia (nf, e0)) in
        check "strict" true (P.cardinal cd > P.cardinal c));
    test "C◇ distributes like an E-based fixpoint" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let nf = N.nonfaulty m in
        let e0 = F.exists_value m Val.Zero in
        (* fixed point property: C◇φ ⇒ ◇E(φ ∧ C◇φ) *)
        check "fixpoint" true
          (F.valid e
             (F.Implies
                ( F.Cdia (nf, e0),
                  F.Eventually (F.E (nf, F.And [ e0; F.Cdia (nf, e0) ])) ))));
    test "F0 is a nontrivial agreement protocol (crash & omission)" (fun () ->
        List.iter
          (fun (_, fixture) ->
            let m = model fixture in
            let e = env fixture in
            let d = KB.decide m (Zoo.f_zero e) in
            check "nta" true (Spec.is_nontrivial_agreement (Spec.check d)))
          small_fixtures);
    test "F0 is dominated by the two-step optimization of itself" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let f0 = Zoo.f_zero e in
        let d0 = KB.decide m f0 in
        let opt = Con.optimize e f0 in
        let dopt = KB.decide m opt in
        check "dominates" true (Dom.dominates dopt d0);
        check "optimal" true (Eba.Characterize.is_optimal e dopt));
    test "in crash mode C◇ already suffices: F0 ≡ F^Λ,2" (fun () ->
        (* the paper's counterexample to F0 (Section 3.2) is an
           omission-mode run; in the crash mode eventual common knowledge
           collapses onto the optimum in these models *)
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let d0 = KB.decide m (Zoo.f_zero e) in
        let dopt = KB.decide m (Zoo.f_lambda_2 e) in
        check "equivalent" true (Dom.equivalent dopt d0);
        check "F0 optimal here" true (Eba.Characterize.is_optimal e d0));
    test "under omissions F0 is suboptimal and strictly dominated (§3.2)" (fun () ->
        let m = model omission_3_1_3 in
        let e = env omission_3_1_3 in
        let d0 = KB.decide m (Zoo.f_zero e) in
        check "not optimal" false (Eba.Characterize.is_optimal e d0);
        let dstar = KB.decide m (Zoo.f_star e) in
        check "strict" true (Dom.strictly_dominates dstar d0));
  ]

let suite = ("eventual", tests)
