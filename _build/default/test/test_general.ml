(* Extension beyond the paper: general omission failures [PT86], which
   Section 2.1 explicitly sets aside.  The knowledge machinery is
   failure-mode agnostic, so we can ask which results survive:

   - the Prop 5.1 / Thm 5.2 construction still yields optimal nontrivial
     agreement protocols, with the fixed point still reached in two steps
     (supporting the paper's "our techniques will extend" conjecture);
   - the semantic 0-chain protocol remains correct here;
   - but the *operational* chain protocol's fault detection (silence
     convicts the sender) is sound yet no longer live: with receive
     omissions a missing message cannot be pinned on the sender, so some
     runs never reach the quiet-round condition. *)

module F = Eba.Formula
module M = Eba.Model
module KB = Eba.Kb_protocol
module Spec = Eba.Spec
module Dom = Eba.Dominance
module Con = Eba.Construct
module Ch = Eba.Characterize
module Zoo = Eba.Zoo
module U = Eba.Universe
module Params = Eba.Params
open Helpers

let general_3_1_2 = fixture ~n:3 ~t:1 ~horizon:2 ~mode:Params.General_omission

let tests =
  [
    test "universe enumeration matches the count formula" (fun () ->
        let params = general_3_1_2.params in
        check_int "count" (U.count params) (List.length (U.patterns params));
        let sparse = Params.make ~n:4 ~t:1 ~horizon:2 ~mode:Params.General_omission in
        check_int "sparse count" (U.count ~flavour:U.Sparse sparse)
          (List.length (U.patterns ~flavour:U.Sparse sparse)));
    test "receive omissions remove messages" (fun () ->
        let params = general_3_1_2.params in
        let b =
          Eba.Pattern.general ~horizon:2 ~proc:1
            ~send:[| Eba.Bitset.empty; Eba.Bitset.empty |]
            ~recv:[| Eba.Bitset.singleton 0; Eba.Bitset.empty |]
        in
        let p = Eba.Pattern.make params [ b ] in
        check "dropped on receipt" false
          (Eba.Pattern.delivers p ~round:1 ~sender:0 ~receiver:1);
        check "sender unaffected elsewhere" true
          (Eba.Pattern.delivers p ~round:1 ~sender:0 ~receiver:2);
        check "second round fine" true
          (Eba.Pattern.delivers p ~round:2 ~sender:0 ~receiver:1));
    test "Thm 5.2 extends: two-step optimize gives optimal NTA" (fun () ->
        let e = env general_3_1_2 in
        let m = model general_3_1_2 in
        List.iter
          (fun (name, seed) ->
            let opt, steps = Con.iterate_until_fixpoint e seed in
            let d = KB.decide m opt in
            check (name ^ " steps<=2") true (steps <= 2);
            check (name ^ " NTA") true (Spec.is_nontrivial_agreement (Spec.check d));
            check (name ^ " optimal") true (Ch.is_optimal e d);
            check (name ^ " dominates") true (Dom.dominates d (KB.decide m seed)))
          [ ("never", KB.never_decide m); ("chain0", Zoo.chain_zero e) ]);
    test "Prop 4.3 necessity still holds" (fun () ->
        let e = env general_3_1_2 in
        let m = model general_3_1_2 in
        List.iter
          (fun pair ->
            check "no failures" true (Ch.necessary e (KB.decide m pair) = []))
          [ Zoo.chain_zero e; Con.optimize e (KB.never_decide m) ]);
    test "semantic chain protocol remains EBA under general omissions" (fun () ->
        let e = env general_3_1_2 in
        let m = model general_3_1_2 in
        check "eba" true (Spec.is_eba (Spec.check (KB.decide m (Zoo.chain_zero e)))));
    test "operational Chain0 is safe but not live under general omissions" (fun () ->
        let params = general_3_1_2.params in
        let s = Eba.Stats.exhaustive (module Eba.Chain0) params in
        check "agreement" true (s.Eba.Stats.agreement_violations = 0);
        check "validity" true (s.Eba.Stats.validity_violations = 0);
        check "liveness lost" true (s.Eba.Stats.undecided_nonfaulty > 0));
    test "crash and sending-omission runs embed into the general mode" (fun () ->
        (* an Omits behaviour is accepted in general mode and produces the
           same deliveries *)
        let params_g = general_3_1_2.params in
        let params_o = Params.make ~n:3 ~t:1 ~horizon:2 ~mode:Params.Omission in
        let omits = [| Eba.Bitset.singleton 2; Eba.Bitset.empty |] in
        let b = Eba.Pattern.omission ~horizon:2 ~proc:0 ~omits in
        let pg = Eba.Pattern.make params_g [ b ] in
        let po = Eba.Pattern.make params_o [ b ] in
        for round = 1 to 2 do
          for s = 0 to 2 do
            for r = 0 to 2 do
              if s <> r then
                check "same delivery"
                  (Eba.Pattern.delivers po ~round ~sender:s ~receiver:r)
                  (Eba.Pattern.delivers pg ~round ~sender:s ~receiver:r)
            done
          done
        done);
  ]

let suite = ("general-omission", tests)
