(* Extension: simultaneous Byzantine agreement at the knowledge level
   (after [DM90]) — the contrast class the paper measures EBA against.

   - common knowledge of the supporting fact gives a genuinely
     simultaneous protocol;
   - it dominates the fixed-time rule, strictly once t ≥ 2 (the
     Dwork–Moses "waste" effect: a visible early crash lets everyone
     decide before t+1);
   - the optimal EBA protocol strictly dominates both — the eventual/
     simultaneous gap of the paper's introduction. *)

module KB = Eba.Kb_protocol
module Spec = Eba.Spec
module Dom = Eba.Dominance
module Zoo = Eba.Zoo
open Helpers

let tests =
  [
    test "SBA-CK is a simultaneous agreement protocol (crash t=1)" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let r = Spec.check (KB.decide m (Zoo.sba_common_knowledge e)) in
        check "sba" true (Spec.is_sba r));
    test "fixed-time FloodSet is SBA too" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        check "sba" true (Spec.is_sba (Spec.check (KB.decide m (Zoo.sba_fixed_time e)))));
    test "SBA-CK dominates the fixed-time rule" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        check "dominates" true
          (Dom.dominates
             (KB.decide m (Zoo.sba_common_knowledge e))
             (KB.decide m (Zoo.sba_fixed_time e))));
    test "optimal EBA strictly dominates SBA-CK" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        check "strict" true
          (Dom.strictly_dominates
             (KB.decide m (Zoo.f_lambda_2 e))
             (KB.decide m (Zoo.sba_common_knowledge e))));
    slow "at t=2 the CK rule strictly beats fixed time (DM90 waste)" (fun () ->
        let m = model crash_4_2_4 in
        let e = env crash_4_2_4 in
        let d_ck = KB.decide m (Zoo.sba_common_knowledge e) in
        let r = Spec.check d_ck in
        check "sba" true (Spec.is_sba r);
        check "strict over fixed time" true
          (Dom.strictly_dominates d_ck (KB.decide m (Zoo.sba_fixed_time e)));
        check "EBA optimum strictly better still" true
          (Dom.strictly_dominates (KB.decide m (Zoo.f_lambda_2 e)) d_ck));
    test "SBA decisions never precede the EBA optimum's" (fun () ->
        (* domination already implies it, but check the simultaneity gap
           run by run: in the failure-free all-one run the EBA optimum is
           a full round earlier *)
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let d_eba = KB.decide m (Zoo.f_lambda_2 e) in
        let d_sba = KB.decide m (Zoo.sba_common_knowledge e) in
        let pattern = Eba.Pattern.failure_free crash_3_1_3.params in
        let config = Eba.Config.constant ~n:3 Eba.Value.One in
        let run = (Option.get (Eba.Model.find_run m ~config ~pattern)).Eba.Model.index in
        let at d i =
          match KB.outcome d ~run ~proc:i with
          | Some { KB.at; _ } -> at
          | None -> max_int
        in
        for i = 0 to 2 do
          check "strictly earlier" true (at d_eba i < at d_sba i)
        done);
  ]

let suite = ("sba", tests)
