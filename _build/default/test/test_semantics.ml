(* Deeper semantic properties of the model construction itself:

   - universe canonicity: no two enumerated patterns describe the same
     in-horizon behaviour (same faulty set + same delivery matrix), so
     models contain no duplicate runs and knowledge is not skewed by
     double counting;
   - knowledge is monotone in the run set: removing runs from the system
     can only create knowledge, never destroy it (the formal reason the
     adversary universe is part of every claim);
   - trace rendering sanity. *)

module M = Eba.Model
module F = Eba.Formula
module N = Eba.Nonrigid
module P = Eba.Pset
module Pat = Eba.Pattern
module U = Eba.Universe
module Params = Eba.Params
module Cfg = Eba.Config
module Val = Eba.Value
open Helpers

let delivery_matrix (params : Params.t) pattern =
  let n = params.Params.n and horizon = params.Params.horizon in
  let rows = ref [] in
  for round = 1 to horizon do
    for s = 0 to n - 1 do
      for r = 0 to n - 1 do
        if s <> r then
          rows := Pat.delivers pattern ~round ~sender:s ~receiver:r :: !rows
      done
    done
  done;
  (Eba.Bitset.to_int (Pat.faulty pattern), !rows)

let canonicity params =
  let patterns = U.patterns params in
  let keys = List.map (delivery_matrix params) patterns in
  let sorted = List.sort_uniq Stdlib.compare keys in
  check_int "all behaviours distinct" (List.length patterns) (List.length sorted)

let canonicity_tests =
  [
    test "crash universe canonicity (n=3 t=1)" (fun () -> canonicity crash_3_1_3.params);
    test "crash universe canonicity (n=4 t=1)" (fun () -> canonicity crash_4_1_3.params);
    test "crash universe canonicity (n=3 t=2)" (fun () -> canonicity crash_3_2_4.params);
    test "omission universe canonicity (n=3 t=1)" (fun () ->
        canonicity omission_3_1_2.params);
    test "general universe canonicity (n=3 t=1 T=2)" (fun () ->
        canonicity (Params.make ~n:3 ~t:1 ~horizon:2 ~mode:Params.General_omission));
  ]

(* knowledge monotonicity: build the same parameter set over a restricted
   configuration set; every B^N_i φ point that held in the full system
   must hold at the corresponding point of the restricted one (fewer runs
   to refute a belief). *)
let monotonicity_tests =
  [
    test "restricting the run set only creates knowledge" (fun () ->
        let params = crash_3_1_3.params in
        let full = model crash_3_1_3 in
        let configs = List.filter (fun c -> Cfg.to_bits c <> 0b111) (Cfg.all ~n:3) in
        let small = M.build ~configs params in
        let env_full = env crash_3_1_3 in
        let env_small = F.env small in
        let b_of env m =
          let nf = N.nonfaulty m in
          F.eval env (F.B (nf, 0, F.exists_value m Val.Zero))
        in
        let b_full = b_of env_full full and b_small = b_of env_small small in
        (* match runs of the small model back to the full model *)
        for run_s = 0 to M.nruns small - 1 do
          let r = M.run_of_point small (M.point small ~run:run_s ~time:0) in
          match M.find_run full ~config:r.M.config ~pattern:r.M.pattern with
          | None -> Alcotest.fail "restricted run missing from full model"
          | Some rf ->
              for time = 0 to 3 do
                let p_small = M.point small ~run:run_s ~time in
                let p_full = M.point full ~run:rf.M.index ~time in
                if P.mem b_full p_full then
                  check "knowledge preserved" true (P.mem b_small p_small)
              done
        done);
    test "and can strictly create it" (fun () ->
        (* dropping the all-one configuration makes a 1-holder believe in a
           0 at time 0 *)
        let params = crash_3_1_3.params in
        let configs = List.filter (fun c -> Cfg.to_bits c <> 0b111) (Cfg.all ~n:3) in
        let small = M.build ~configs params in
        let env_small = F.env small in
        let nf = N.nonfaulty small in
        let b = F.eval env_small (F.B (nf, 0, F.exists_value small Val.Zero)) in
        let pattern = Pat.failure_free params in
        let config = Cfg.of_bits ~n:3 0b011 in
        (* processor 0 holds 0? bits: p0 = bit0 = 1 -> value One.  It holds
           a 1 but every remaining run with p0=1 has someone else at 0. *)
        let run = Option.get (M.find_run small ~config ~pattern) in
        check "believes e0 at time 0" true (P.mem b (M.point small ~run:run.M.index ~time:0)));
  ]

let trace_tests =
  [
    test "trace rendering mentions every processor and decision" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let d = Eba.Kb_protocol.decide m (Eba.Zoo.f_lambda_2 e) in
        let out = Format.asprintf "%a" (Eba.Trace.pp_run ~decisions:d m ~run:0) () in
        let contains needle =
          let nl = String.length needle and ol = String.length out in
          let rec find i =
            i + nl <= ol && (String.sub out i nl = needle || find (i + 1))
          in
          find 0
        in
        List.iter
          (fun needle ->
            check (Printf.sprintf "contains %S" needle) true (contains needle))
          [ "p0"; "p1"; "p2"; "t=0"; "t=3"; "D:" ]);
  ]

let suite = ("semantics", canonicity_tests @ monotonicity_tests @ trace_tests)
