(* The Section 2 and Section 6 protocols: Prop 2.1 (no optimum), the
   P0/P0opt story (E1, E2), Theorem 6.1 (E9), Prop 6.3 (E10),
   Prop 6.4 / Cor 6.5 (E11) and Prop 6.6 (E12). *)

module F = Eba.Formula
module M = Eba.Model
module KB = Eba.Kb_protocol
module Spec = Eba.Spec
module Dom = Eba.Dominance
module Con = Eba.Construct
module Ch = Eba.Characterize
module Zoo = Eba.Zoo
module Facts = Eba.Facts
module Val = Eba.Value
module B = Eba.Bitset
module Pat = Eba.Pattern
module Cfg = Eba.Config
open Helpers

(* --- E1 / Prop 2.1: no optimum EBA protocol --- *)

let no_optimum_tests =
  [
    test "P0 deciders with value 0 decide at time 0; P1 mirrors" (fun () ->
        let e = env crash_3_1_3 in
        let m = model crash_3_1_3 in
        let d0 = KB.decide m (Zoo.p0 e) in
        let d1 = KB.decide m (Zoo.p1 e) in
        for run = 0 to M.nruns m - 1 do
          let cfg = (M.run_of_point m (M.point m ~run ~time:0)).M.config in
          B.iter
            (fun i ->
              (match KB.outcome d0 ~run ~proc:i with
              | Some { KB.at; value } when Val.equal (Cfg.value cfg i) Val.Zero ->
                  check "P0 time 0" true (at = 0 && Val.equal value Val.Zero)
              | Some _ | None -> ());
              match KB.outcome d1 ~run ~proc:i with
              | Some { KB.at; value } when Val.equal (Cfg.value cfg i) Val.One ->
                  check "P1 time 0" true (at = 0 && Val.equal value Val.One)
              | Some _ | None -> ())
            (M.nonfaulty m ~run)
        done);
    test "no protocol dominates both P0 and P1 (DS82 lower bound)" (fun () ->
        (* a protocol dominating both would decide everything at time 0;
           time-0 decisions depend only on the initial value, and both
           all-zero and all-one runs share each single-value view, so any
           time-0 rule violates agreement or validity somewhere.  We verify
           the concrete consequence: even the optimal F^Λ,2 fails to
           dominate P0 and P1 simultaneously. *)
        let e = env crash_3_1_3 in
        let m = model crash_3_1_3 in
        let dopt = KB.decide m (Zoo.f_lambda_2 e) in
        let d0 = KB.decide m (Zoo.p0 e) in
        let d1 = KB.decide m (Zoo.p1 e) in
        check "dominates P0" true (Dom.dominates dopt d0);
        check "cannot also dominate P1" false (Dom.dominates dopt d1));
    test "t+1 lower bound: some run decides only at t+1" (fun () ->
        let e = env crash_3_1_3 in
        let m = model crash_3_1_3 in
        let r = Spec.check (KB.decide m (Zoo.f_lambda_2 e)) in
        check "max time = t+1" true (r.Spec.max_decision_time = Some 2));
  ]

(* --- E2 / §2.2 and E9 / Thm 6.1–6.2: the crash-mode story --- *)

let crash_story_tests =
  [
    test "Thm 6.1: F^Λ,2 = FIP(Z^cr, O^cr) as decision pairs" (fun () ->
        List.iter
          (fun fixture ->
            let e = env fixture in
            check "pairs equal" true
              (KB.pair_equal (Zoo.f_lambda_2 e) (Zoo.crash_simple e)))
          [ crash_3_1_3; crash_4_1_3 ]);
    test "F^Λ,1 reduces to Z = B^N ∃0, O = ∅ (Section 6.1)" (fun () ->
        (* The paper simplifies O^Λ,1 to B^N_i false and treats it as the
           empty set.  B^N_i false is not literally empty: it holds exactly
           at views whose owner knows its own faultiness (where all its
           nonfaulty decisions are moot), so the comparison is up to
           nonfaulty decisions. *)
        let e = env crash_3_1_3 in
        let m = model crash_3_1_3 in
        let fl1 = Zoo.f_lambda_1 e in
        let nf = Eba.Nonrigid.nonfaulty m in
        let expected_zero =
          Eba.Decision_set.of_formulas e (fun i ->
              F.B (nf, i, F.exists_value m Val.Zero))
        in
        check "zero set" true (Eba.Decision_set.equal fl1.KB.zero expected_zero);
        let reduced = { KB.zero = expected_zero; one = Eba.Decision_set.empty m } in
        check "one set = knows-own-faultiness only" true
          (Dom.equivalent (KB.decide m fl1) (KB.decide m reduced));
        (* and every O^Λ,1 view indeed knows its own faultiness *)
        let self_faulty =
          Eba.Decision_set.of_formulas e (fun i ->
              F.K (i, F.Not (F.In (nf, i))))
        in
        check "O ⊆ self-known-faulty" true
          (Eba.Decision_set.equal
             (Eba.Decision_set.inter m fl1.KB.one self_faulty)
             fl1.KB.one));
    test "B^N ∃0 coincides with the structural knows-zero set" (fun () ->
        (* again up to self-known-faulty views, hence decision equivalence *)
        List.iter
          (fun fixture ->
            let e = env fixture in
            let m = model fixture in
            check "equivalent" true
              (Dom.equivalent
                 (KB.decide m (Zoo.crash_simple e))
                 (KB.decide m (Zoo.knows_zero_structural e))))
          [ crash_3_1_3; omission_3_1_2 ]);
    test "F^Λ,2 strictly dominates P0, is optimal EBA (crash)" (fun () ->
        List.iter
          (fun fixture ->
            let e = env fixture in
            let m = model fixture in
            let dopt = KB.decide m (Zoo.f_lambda_2 e) in
            let d0 = KB.decide m (Zoo.p0 e) in
            check "strict" true (Dom.strictly_dominates dopt d0);
            check "eba" true (Spec.is_eba (Spec.check dopt));
            check "optimal" true (Ch.is_optimal e dopt))
          [ crash_3_1_3; crash_4_1_3 ]);
    test "uniqueness: optimize(P0) = F^Λ,2 (crash)" (fun () ->
        (* §2.2 remarks F^Λ,2 is the unique optimal protocol dominating P0 *)
        let e = env crash_3_1_3 in
        let m = model crash_3_1_3 in
        let opt_p0, _ = Con.iterate_until_fixpoint e (Zoo.p0 e) in
        check "equivalent decisions" true
          (Dom.equivalent (KB.decide m opt_p0) (KB.decide m (Zoo.f_lambda_2 e))));
    slow "Thm 6.1 and optimality also at n=3 t=2" (fun () ->
        let e = env crash_3_2_4 in
        let m = model crash_3_2_4 in
        let fl2 = Zoo.f_lambda_2 e in
        check "pairs equal" true (KB.pair_equal fl2 (Zoo.crash_simple e));
        let d = KB.decide m fl2 in
        check "eba" true (Spec.is_eba (Spec.check d));
        check "optimal" true (Ch.is_optimal e d));
  ]

(* --- E10 / Prop 6.3: omission-mode non-termination of F^Λ,2 --- *)

let omission_nontermination_tests =
  [
    test "F^Λ,2 is NTA and optimal but not EBA in omission mode" (fun () ->
        let e = env omission_3_1_2 in
        let m = model omission_3_1_2 in
        let d = KB.decide m (Zoo.f_lambda_2 e) in
        let r = Spec.check d in
        check "nta" true (Spec.is_nontrivial_agreement r);
        check "optimal" true (Ch.is_optimal e d));
    slow "Prop 6.3: with t=2, n=4 the nonfaulty never decide (all-1, one silent)"
      (fun () ->
        let fixture = omission_4_2_2 in
        let e = env fixture in
        let m = model fixture in
        let d = KB.decide m (Zoo.f_lambda_2 e) in
        let r = Spec.check d in
        check "still NTA" true (Spec.is_nontrivial_agreement r);
        check "decision fails" false r.Spec.decision;
        (* the paper's witness run *)
        let horizon = 2 in
        let omits = Array.make horizon (B.of_list [ 1; 2; 3 ]) in
        let pattern =
          Pat.make fixture.params [ Pat.omission ~horizon ~proc:0 ~omits ]
        in
        let config = Cfg.constant ~n:4 Val.One in
        let run = (Option.get (M.find_run m ~config ~pattern)).M.index in
        B.iter
          (fun i -> check "no decision" true (KB.outcome d ~run ~proc:i = None))
          (M.nonfaulty m ~run));
  ]

(* --- E11 / Prop 6.4, Cor 6.5: the 0-chain protocol --- *)

let chain_tests =
  [
    test "chain facts: failure-free all-one run has no chains" (fun () ->
        let fixture = omission_3_1_3 in
        let e = env fixture in
        let m = model fixture in
        let pattern = Pat.failure_free fixture.params in
        let run =
          (Option.get (M.find_run m ~config:(Cfg.constant ~n:3 Val.One) ~pattern)).M.index
        in
        for time = 0 to 3 do
          check "no chain" false (Facts.chain_at e ~run ~time)
        done);
    test "chain facts: nonfaulty zero-holder is a chain at time 0" (fun () ->
        let fixture = omission_3_1_3 in
        let e = env fixture in
        let m = model fixture in
        let pattern = Pat.failure_free fixture.params in
        let run =
          (Option.get (M.find_run m ~config:(Cfg.of_bits ~n:3 0b110) ~pattern)).M.index
        in
        check "chain at 0" true (Facts.chain_at e ~run ~time:0));
    test "exists0* is monotone along runs" (fun () ->
        let fixture = omission_3_1_3 in
        let e = env fixture in
        let m = model fixture in
        let star = F.eval e (Facts.exists0_star e) in
        for run = 0 to M.nruns m - 1 do
          let prev = ref false in
          for time = 0 to 3 do
            let now = Eba.Pset.mem star (M.point m ~run ~time) in
            check "monotone" true ((not !prev) || now);
            prev := now
          done
        done);
    test "Cor 6.5: FIP(Z⁰,O⁰) is an EBA protocol (omission)" (fun () ->
        List.iter
          (fun fixture ->
            let e = env fixture in
            let m = model fixture in
            check "eba" true (Spec.is_eba (Spec.check (KB.decide m (Zoo.chain_zero e)))))
          [ omission_3_1_2; omission_3_1_3 ]);
    test "Prop 6.4: nonfaulty decide by time f+1" (fun () ->
        List.iter
          (fun fixture ->
            let e = env fixture in
            let m = model fixture in
            let d = KB.decide m (Zoo.chain_zero e) in
            for run = 0 to M.nruns m - 1 do
              let f =
                Pat.num_failures (M.run_of_point m (M.point m ~run ~time:0)).M.pattern
              in
              B.iter
                (fun i ->
                  match KB.outcome d ~run ~proc:i with
                  | Some { KB.at; _ } -> check "≤ f+1" true (at <= f + 1)
                  | None -> Alcotest.fail "must decide")
                (M.nonfaulty m ~run)
            done)
          [ omission_3_1_3 ]);
    slow "Prop 6.4 at n=4 t=1" (fun () ->
        let fixture = omission_4_1_3 in
        let e = env fixture in
        let m = model fixture in
        let d = KB.decide m (Zoo.chain_zero e) in
        let r = Spec.check d in
        check "eba" true (Spec.is_eba r);
        for run = 0 to M.nruns m - 1 do
          let f = Pat.num_failures (M.run_of_point m (M.point m ~run ~time:0)).M.pattern in
          B.iter
            (fun i ->
              match KB.outcome d ~run ~proc:i with
              | Some { KB.at; _ } -> check "≤ f+1" true (at <= f + 1)
              | None -> Alcotest.fail "must decide")
            (M.nonfaulty m ~run)
        done);
  ]

(* --- E12 / Prop 6.6: F* --- *)

let f_star_tests =
  [
    test "Prop 6.6: F* is an optimal EBA protocol dominating FIP(Z⁰,O⁰)" (fun () ->
        List.iter
          (fun fixture ->
            let e = env fixture in
            let m = model fixture in
            let dstar = KB.decide m (Zoo.f_star e) in
            check "eba" true (Spec.is_eba (Spec.check dstar));
            check "optimal" true (Ch.is_optimal e dstar);
            check "dominates" true
              (Dom.dominates dstar (KB.decide m (Zoo.chain_zero e))))
          [ omission_3_1_2; omission_3_1_3 ]);
    test "Prop 6.6 simplification: F* = its closed form" (fun () ->
        List.iter
          (fun fixture ->
            let e = env fixture in
            check "pairs equal" true
              (KB.pair_equal (Zoo.f_star e) (Zoo.f_star_direct e)))
          [ omission_3_1_3 ]);
    test "Prop 6.6 intermediate: one-first step fixes chain0" (fun () ->
        let e = env omission_3_1_3 in
        let m = model omission_3_1_3 in
        let ch = Zoo.chain_zero e in
        let stepped = Con.step_one_first e ch in
        check "equivalent decisions" true
          (Dom.equivalent (KB.decide m stepped) (KB.decide m ch)));
    slow "F* at n=4 t=1 omission" (fun () ->
        (* Prop 6.6 claims domination, not strict domination; with t=1 the
           chain protocol is in fact already optimal, so the two protocols
           coincide on nonfaulty decisions. *)
        let e = env omission_4_1_3 in
        let m = model omission_4_1_3 in
        let dstar = KB.decide m (Zoo.f_star e) in
        let dchain = KB.decide m (Zoo.chain_zero e) in
        check "eba" true (Spec.is_eba (Spec.check dstar));
        check "optimal" true (Ch.is_optimal e dstar);
        check "dominates chain0" true (Dom.dominates dstar dchain);
        check "chain0 itself optimal at t=1" true (Ch.is_optimal e dchain));
  ]

let suite =
  ( "zoo",
    no_optimum_tests @ crash_story_tests @ omission_nontermination_tests @ chain_tests
    @ f_star_tests )
