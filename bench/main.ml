(* Benchmark harness.

   Three parts:

   1. Bechamel micro/meso-benchmarks — one [Test.make] per reproduction
      table or figure (T1..T5, F1..F3: the code that regenerates each one)
      plus the engine-level benches the F3 ablation is built on (model
      construction, the two C□ implementations, knowledge closures, the
      two-step optimizer, and the operational runners).

   2. The actual tables — the series EXPERIMENTS.md records, printed after
      the timings so that `dune exec bench/main.exe` regenerates every
      number in that file.

   3. A machine-readable artifact: `--json FILE` writes every timing row,
      the model-size counters and a deterministic metrics signature in the
      schema-stable `eba-bench/1` format, so each PR can commit a
      `BENCH_<PR>.json` and diff perf against the previous one.

   Flags: `--json FILE` (emit the artifact), `--smoke` (tiny quotas, skip
   the heavy group and the table regeneration — the CI schema check),
   `--quota S` (override the per-group time budget). *)

(* captured before [open Bechamel], which shadows the stub library's
   [Monotonic_clock] with bechamel's internal module of the same name *)
let monotonic_now = Monotonic_clock.now

open Bechamel
open Toolkit

module F = Eba.Formula
module M = Eba.Model

(* --- command line --- *)

let json_path = ref None
let smoke = ref false
let quota_override = ref None

let () =
  let specs =
    [
      ("--json", Arg.String (fun p -> json_path := Some p),
       "FILE  write the eba-bench/1 JSON artifact to FILE");
      ("--smoke", Arg.Set smoke,
       "  minimal quotas, no heavy benches or table regeneration (CI)");
      ("--quota", Arg.Float (fun q -> quota_override := Some q),
       "SECONDS  per-group time budget (default 0.5/1.0, smoke 0.05)");
    ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench/main.exe [--json FILE] [--smoke] [--quota SECONDS]"

let () = Eba.Metrics.set_clock (fun () -> Int64.to_float (monotonic_now ()) /. 1e9)

(* --- prebuilt fixtures so benches measure the operation, not setup --- *)

let crash_params = Eba.Params.make ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Crash
let crash4_params = Eba.Params.make ~n:4 ~t:2 ~horizon:4 ~mode:Eba.Params.Crash
let om_params = Eba.Params.make ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Omission

(* larger builder-only scales: deep omission universe, wide crash universe *)
let om_t4_params = Eba.Params.make ~n:3 ~t:1 ~horizon:4 ~mode:Eba.Params.Omission
let crash5_params = Eba.Params.make ~n:5 ~t:2 ~horizon:2 ~mode:Eba.Params.Crash
let crash_model = M.build crash_params
let crash4_model = M.build crash4_params
let om_model = M.build om_params
let crash4_env = F.env crash4_model
let nf = Eba.Nonrigid.nonfaulty crash4_model
let e0_pts = F.eval crash4_env (F.exists_value crash4_model Eba.Value.zero)

let big_crash = Eba.Params.make ~n:16 ~t:5 ~horizon:7 ~mode:Eba.Params.Crash
let big_om = Eba.Params.make ~n:16 ~t:5 ~horizon:7 ~mode:Eba.Params.Omission
let rng = Random.State.make [| 1234 |]
let big_config = Eba.Config.of_bits ~n:16 0xAAAA
let big_crash_pattern = Eba.Universe.random_pattern rng big_crash
let big_om_pattern = Eba.Universe.random_pattern rng big_om

let fixture_models =
  [
    ("crash n=3 t=1 T=3", crash_model);
    ("crash n=4 t=2 T=4", crash4_model);
    ("omission n=3 t=1 T=3", om_model);
  ]

let run_protocol (module P : Eba.Protocol_intf.PROTOCOL) params config pattern () =
  let module R = Eba.Runner.Make (P) in
  ignore (R.run params config pattern)

let null_fmt =
  Format.formatter_of_out_functions
    {
      Format.out_string = (fun _ _ _ -> ());
      out_flush = ignore;
      out_newline = ignore;
      out_spaces = ignore;
      out_indent = ignore;
    }

(* --- engine benches (basis of ablation F3) --- *)

let engine_tests =
  Test.make_grouped ~name:"engine"
    [
      Test.make ~name:"model-build crash n=3 t=1 T=3 naive" (Staged.stage (fun () ->
          ignore (M.build ~builder:M.Naive crash_params)));
      Test.make ~name:"model-build crash n=3 t=1 T=3 shared" (Staged.stage (fun () ->
          ignore (M.build ~builder:M.Shared crash_params)));
      Test.make ~name:"model-build omission n=3 t=1 T=3 naive" (Staged.stage (fun () ->
          ignore (M.build ~builder:M.Naive om_params)));
      Test.make ~name:"model-build omission n=3 t=1 T=3 shared" (Staged.stage (fun () ->
          ignore (M.build ~builder:M.Shared om_params)));
      Test.make ~name:"model-build crash n=4 t=2 T=4 naive" (Staged.stage (fun () ->
          ignore (M.build ~builder:M.Naive crash4_params)));
      Test.make ~name:"model-build crash n=4 t=2 T=4 shared" (Staged.stage (fun () ->
          ignore (M.build ~builder:M.Shared crash4_params)));
      Test.make ~name:"cbox fast (closure+query) n=4 t=2" (Staged.stage (fun () ->
          ignore (Eba.Continual.cbox (Eba.Continual.closure crash4_model nf) e0_pts)));
      Test.make ~name:"cbox naive fixpoint n=4 t=2" (Staged.stage (fun () ->
          ignore (Eba.Continual.cbox_naive crash4_model nf e0_pts)));
      Test.make ~name:"E_N closure n=4 t=2" (Staged.stage (fun () ->
          ignore (Eba.Knowledge.everyone_knows crash4_model nf e0_pts)));
      Test.make ~name:"C_N fixpoint n=4 t=2" (Staged.stage (fun () ->
          ignore (Eba.Common.common crash4_model nf e0_pts)));
      Test.make ~name:"two-step optimize crash n=3" (Staged.stage (fun () ->
          let env = F.env crash_model in
          ignore (Eba.Construct.optimize env (Eba.Kb_protocol.never_decide crash_model))));
      Test.make ~name:"two-step optimize omission n=3" (Staged.stage (fun () ->
          let env = F.env om_model in
          ignore
            (Eba.Construct.optimize ~first:Eba.Construct.One_first env
               (Eba.Zoo.chain_zero env))));
    ]

let runner_tests =
  Test.make_grouped ~name:"runner"
    [
      Test.make ~name:"P0opt run n=16 t=5"
        (Staged.stage (run_protocol (module Eba.P0opt) big_crash big_config big_crash_pattern));
      Test.make ~name:"P0opt+ run n=16 t=5"
        (Staged.stage
           (run_protocol (module Eba.P0opt_plus) big_crash big_config big_crash_pattern));
      Test.make ~name:"FloodSet run n=16 t=5"
        (Staged.stage (run_protocol (module Eba.Floodset) big_crash big_config big_crash_pattern));
      Test.make ~name:"Chain0 run n=16 t=5"
        (Staged.stage (run_protocol (module Eba.Chain0) big_om big_config big_om_pattern));
    ]

(* --- network simulator: replay cost vs the lockstep runner, and sampled
       sweeps at scales the enumerable universes cannot reach --- *)

let net_topology ~n ~loss =
  Eba.Net.Topology.make ~n
    ~link:(Eba.Net.Link.make ~latency:(Eba.Net.Link.Uniform (0.2, 1.0)) ~loss)

let net_sweep (module P : Eba.Protocol_intf.PROTOCOL) ~n ~t ~mode ~loss ~seed
    ~runs () =
  let params = Eba.Params.make ~n ~t ~horizon:(t + 1) ~mode in
  let topology = net_topology ~n ~loss in
  let sync = Eba.Net.Sync.default_for topology in
  Eba.Net.Netsim.sweep ~jobs:1
    (module P)
    params ~sync ~topology
    ~dynamic:(Eba.Net.Inject.dynamic ~max_faulty:t ())
    ~seed ~runs

let net_tests =
  let module S = Eba.Net.Netsim.Make (Eba.Floodset) in
  let replay_pattern = Eba.Universe.random_pattern rng crash_params in
  let replay_config = Eba.Config.of_bits ~n:3 0b101 in
  Test.make_grouped ~name:"net"
    ([
      Test.make ~name:"netsim replay crash n=3 t=1 T=3 (FloodSet)"
        (Staged.stage (fun () ->
             ignore (S.replay crash_params replay_pattern replay_config)));
      Test.make ~name:"netsim sweep FloodSet n=16 t=5 loss=0.1 x4"
        (Staged.stage (fun () ->
             ignore
               (net_sweep
                  (module Eba.Floodset)
                  ~n:16 ~t:5 ~mode:Eba.Params.Crash ~loss:0.1 ~seed:1 ~runs:4
                  ())));
      Test.make ~name:"netsim sweep FloodSet n=64 t=8 loss=0.05 x1"
        (Staged.stage (fun () ->
             ignore
               (net_sweep
                  (module Eba.Floodset)
                  ~n:64 ~t:8 ~mode:Eba.Params.Crash ~loss:0.05 ~seed:1 ~runs:1
                  ())));
    ]
    @
    (* full vs bounded-bandwidth at the wide scale: same sweep identity,
       the timing difference is the cost/saving of delta encoding *)
    (if !smoke then []
     else
       [
         Test.make ~name:"netsim sweep P0opt n=128 t=16 loss=0.05 x1"
           (Staged.stage (fun () ->
                let params =
                  Eba.Params.make ~n:128 ~t:16 ~horizon:17 ~mode:Eba.Params.Crash
                in
                ignore
                  (net_sweep
                     (Eba.P0opt.for_params params)
                     ~n:128 ~t:16 ~mode:Eba.Params.Crash ~loss:0.05 ~seed:1
                     ~runs:1 ())));
         Test.make ~name:"netsim sweep P0opt-delta n=128 t=16 loss=0.05 x1"
           (Staged.stage (fun () ->
                let params =
                  Eba.Params.make ~n:128 ~t:16 ~horizon:17 ~mode:Eba.Params.Crash
                in
                ignore
                  (net_sweep
                     (Eba.P0opt_delta.for_params params)
                     ~n:128 ~t:16 ~mode:Eba.Params.Crash ~loss:0.05 ~seed:1
                     ~runs:1 ())));
       ]))

(* --- multiplexed engine: the same seeded sweep through one shared event
       loop, wave-sized arenas, batched const-latency deliveries.  The
       summaries are bit-identical to the sequential rows; only the wall
       clock differs, which is the whole point. --- *)

let mux_params = Eba.Params.make ~n:16 ~t:5 ~horizon:6 ~mode:Eba.Params.Crash

let mux_topology =
  Eba.Net.Topology.make ~n:16
    ~link:(Eba.Net.Link.make ~latency:(Eba.Net.Link.Const 1.0) ~loss:0.05)

let mux_sweep ?mux ~runs () =
  let sync = Eba.Net.Sync.default_for mux_topology in
  ignore
    (Eba.Net.Netsim.sweep ~jobs:1 ?mux
       (module Eba.Floodset)
       mux_params ~sync ~topology:mux_topology
       ~dynamic:(Eba.Net.Inject.dynamic ~max_faulty:5 ())
       ~seed:8128 ~runs)

let mux_tests =
  Test.make_grouped ~name:"mux"
    ([
       Test.make ~name:"netsim sweep FloodSet n=16 t=5 const x200 sequential"
         (Staged.stage (fun () -> mux_sweep ~runs:200 ()));
       Test.make ~name:"netsim sweep FloodSet n=16 t=5 const x200 mux live=16"
         (Staged.stage (mux_sweep ~mux:16 ~runs:200));
       Test.make ~name:"netsim sweep FloodSet n=16 t=5 const x200 mux live=64"
         (Staged.stage (mux_sweep ~mux:64 ~runs:200));
     ]
    @
    if !smoke then []
    else
      [
        Test.make ~name:"netsim sweep FloodSet n=16 t=5 const x10000 mux live=16"
          (Staged.stage (mux_sweep ~mux:16 ~runs:10_000));
      ])

(* --- builder scaling: naive vs shared at scales where sharing bites --- *)

let build_heavy_tests =
  Test.make_grouped ~name:"build-heavy"
    [
      Test.make ~name:"model-build omission n=3 t=1 T=4 naive" (Staged.stage (fun () ->
          ignore (M.build ~builder:M.Naive om_t4_params)));
      Test.make ~name:"model-build omission n=3 t=1 T=4 shared" (Staged.stage (fun () ->
          ignore (M.build ~builder:M.Shared om_t4_params)));
      Test.make ~name:"model-build crash n=5 t=2 T=2 naive" (Staged.stage (fun () ->
          ignore (M.build ~builder:M.Naive crash5_params)));
      Test.make ~name:"model-build crash n=5 t=2 T=2 shared" (Staged.stage (fun () ->
          ignore (M.build ~builder:M.Shared crash5_params)));
    ]

(* --- 1-domain vs N-domain sweep engine (summaries are bit-identical;
       only the wall clock should differ) --- *)

let sweep_jobs =
  let avail = Eba.Parallel.available () in
  if avail >= 4 then 4 else max 2 avail

let parallel_tests =
  let sweep jobs () =
    ignore (Eba.Stats.exhaustive ~jobs (module Eba.P0opt_plus) om_params)
  in
  let kernel jobs () =
    Eba.Parallel.with_jobs jobs (fun () ->
        ignore (Eba.Knowledge.everyone_knows crash4_model nf e0_pts))
  in
  Test.make_grouped ~name:"parallel"
    [
      Test.make ~name:"Stats.exhaustive omission n=3 t=1 jobs=1" (Staged.stage (sweep 1));
      Test.make
        ~name:(Printf.sprintf "Stats.exhaustive omission n=3 t=1 jobs=%d" sweep_jobs)
        (Staged.stage (sweep sweep_jobs));
      Test.make ~name:"E_N closure n=4 t=2 jobs=1" (Staged.stage (kernel 1));
      Test.make
        ~name:(Printf.sprintf "E_N closure n=4 t=2 jobs=%d" sweep_jobs)
        (Staged.stage (kernel sweep_jobs));
    ]

(* --- one bench per table / figure --- *)

let table_tests =
  let module T = Eba_harness.Tables in
  Test.make_grouped ~name:"tables"
    [
      Test.make ~name:"T2 no-optimum" (Staged.stage (fun () -> T.t2_no_optimum null_fmt ()));
      Test.make ~name:"T3 two-step" (Staged.stage (fun () -> T.t3_two_step null_fmt ()));
      Test.make ~name:"T5 chain f+1 bound" (Staged.stage (fun () -> T.t5_chain_bound null_fmt ()));
      Test.make ~name:"T6 SBA extension" (Staged.stage (fun () -> T.t6_sba_knowledge null_fmt ()));
      Test.make ~name:"F1 decision CDF" (Staged.stage (fun () -> T.f1_decision_cdf null_fmt ()));
      Test.make ~name:"F2 SBA gap" (Staged.stage (fun () -> T.f2_sba_gap null_fmt ()));
    ]

let heavy_table_tests =
  (* T1 and T4 build four-processor t=2 models; keep them in their own
     group with a small quota so the harness stays fast *)
  let module T = Eba_harness.Tables in
  Test.make_grouped ~name:"tables-heavy"
    [
      Test.make ~name:"T1 decision times" (Staged.stage (fun () ->
          T.t1_crash_decision_times null_fmt ()));
      Test.make ~name:"T4 crash-vs-omission" (Staged.stage (fun () ->
          T.t4_crash_vs_omission null_fmt ()));
      Test.make ~name:"F3 engine scaling" (Staged.stage (fun () ->
          T.f3_engine_scaling null_fmt ()));
    ]

(* --- measurement --- *)

(* Collected timing rows for the JSON artifact: (group, name, ns/run). *)
let rows_acc : (string * string * float) list ref = ref []

let benchmark ~group ~quota tests =
  let quota = match !quota_override with Some q -> q | None -> if !smoke then 0.05 else quota in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> est
          | Some _ | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  rows_acc := !rows_acc @ List.map (fun (name, ns) -> (group, name, ns)) rows;
  List.iter
    (fun (name, ns) ->
      if ns >= 1e9 then Printf.printf "  %-52s %10.3f s/run\n" name (ns /. 1e9)
      else if ns >= 1e6 then Printf.printf "  %-52s %10.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "  %-52s %10.3f us/run\n" name (ns /. 1e3))
    rows

(* --- the eba-bench/1 JSON artifact --- *)

(* A deterministic metrics signature: run a fixed instrumented workload
   (model build, E_N closure, one exhaustive sweep) with metrics on and
   record every deterministic counter.  Independent of machine speed and
   job count, so artifact diffs surface semantic engine changes. *)
let metrics_signature () =
  let was = Eba.Metrics.enabled () in
  Eba.Metrics.reset ();
  Eba.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Eba.Metrics.set_enabled was)
    (fun () ->
      let m = M.build crash_params in
      let nf = Eba.Nonrigid.nonfaulty m in
      let env = F.env m in
      let e0 = F.eval env (F.exists_value m Eba.Value.zero) in
      ignore (Eba.Knowledge.everyone_knows m nf e0);
      ignore (Eba.Continual.cbox (Eba.Continual.closure m nf) e0);
      ignore (Eba.Stats.exhaustive (module Eba.P0opt) crash_params);
      (* the daemon's model cache: one cold build, one warm reuse — the
         promise protocol makes the hit/miss counts a pure function of
         this sequence, so they belong in the deterministic signature *)
      let cache = Eba.Server.Registry.model_cache in
      Eba.Server.Model_cache.clear cache;
      ignore
        (Eba.Server.Model_cache.find_or_build cache crash_params (fun p ->
             M.build p));
      ignore
        (Eba.Server.Model_cache.find_or_build cache crash_params (fun p ->
             M.build p));
      Eba.Metrics.deterministic_counters ())

(* Builder work accounting, one row per modelled universe: how many
   interior-view interning calls the naive builder makes
   ([runs * horizon * n]), how many the shared builder makes
   ([tree_nodes * 2^n * n], read off the deterministic
   [model.tree_nodes] / [model.prefix_hits] counters), and the sharing
   factor between them.  Pure counts — machine-independent, job-count
   independent — so the CI regression guard can diff them exactly. *)
let build_cases () =
  let small =
    [
      ("crash n=3 t=1 T=3", crash_params);
      ("omission n=3 t=1 T=3", om_params);
      ("crash n=4 t=2 T=4", crash4_params);
    ]
  in
  let large = [ ("omission n=3 t=1 T=4", om_t4_params); ("crash n=5 t=2 T=2", crash5_params) ] in
  if !smoke then small else small @ large

let build_entry_json (name, params) =
  let was = Eba.Metrics.enabled () in
  Eba.Metrics.reset ();
  Eba.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Eba.Metrics.set_enabled was;
      Eba.Metrics.reset ())
    (fun () ->
      let m = M.build ~builder:M.Shared params in
      let det = Eba.Metrics.deterministic_counters () in
      let get n = match List.assoc_opt n det with Some v -> v | None -> 0 in
      let naive_calls = M.nruns m * M.horizon m * M.n m in
      let hits = get "model.prefix_hits" in
      Eba.Json.Obj
        [
          ("name", Eba.Json.String name);
          ("flavour", Eba.Json.String "exhaustive");
          ("runs", Eba.Json.Int (M.nruns m));
          ("views", Eba.Json.Int (Eba.View.size m.M.store));
          ("tree_nodes", Eba.Json.Int (get "model.tree_nodes"));
          ("node_calls_naive", Eba.Json.Int naive_calls);
          ("node_calls_shared", Eba.Json.Int (naive_calls - hits));
          ("prefix_hits", Eba.Json.Int hits);
        ])

let model_size_json (name, m) =
  Eba.Json.Obj
    [
      ("name", Eba.Json.String name);
      ("runs", Eba.Json.Int (M.nruns m));
      ("points", Eba.Json.Int (M.npoints m));
      ("views", Eba.Json.Int (Eba.View.size m.M.store));
    ]

(* Deterministic netsim rows: fixed seeded sweeps whose summaries are all
   exact integers and strings (identity includes the seed, topology, sync
   and adversary), so artifact diffs surface engine changes and any row can
   be regenerated with `eba netsim` from its recorded identity. *)
let net_rows () =
  let row (module P : Eba.Protocol_intf.PROTOCOL) ~n ~t ~mode ~loss ~partitions
      ~seed ~runs =
    let params = Eba.Params.make ~n ~t ~horizon:(t + 1) ~mode in
    let topology = net_topology ~n ~loss in
    let sync = Eba.Net.Sync.default_for topology in
    let dynamic =
      Eba.Net.Inject.dynamic ~partitions
        ~partition_span:(2.0 *. sync.Eba.Net.Sync.rto)
        ~max_faulty:t ()
    in
    Eba.Net.Net_stats.summary_json
      (Eba.Net.Netsim.sweep (module P) params ~sync ~topology ~dynamic ~seed ~runs)
  in
  let runs = if !smoke then 5 else 25 in
  (* Wide-set rows (full runs only): the optimal protocols past the word
     width, picked per-n by [for_params] — P0opt/P0opt+/Chain0 at n = 128
     and n = 256, t = 16, 5% loss.  CI asserts zero violations and no
     undecided nonfaulty on every one of these. *)
  let wide_rows =
    if !smoke then []
    else
      let wrow selector ~n ~t ~mode ~loss ~seed ~runs =
        let params = Eba.Params.make ~n ~t ~horizon:(t + 1) ~mode in
        let topology = net_topology ~n ~loss in
        let sync = Eba.Net.Sync.default_for topology in
        let dynamic = Eba.Net.Inject.dynamic ~max_faulty:t () in
        Eba.Net.Net_stats.summary_json
          (Eba.Net.Netsim.sweep (selector params) params ~sync ~topology ~dynamic
             ~seed ~runs)
      in
      (* each full-information row is paired with its bounded-bandwidth
         variant at the SAME seed/runs/adversary: the sweeps replay the
         same schedule, so CI can assert identical decisions and strictly
         fewer data bytes as exact integer comparisons *)
      [
        wrow Eba.P0opt.for_params ~n:128 ~t:16 ~mode:Eba.Params.Crash ~loss:0.05
          ~seed:5128 ~runs:5;
        wrow Eba.P0opt_delta.for_params ~n:128 ~t:16 ~mode:Eba.Params.Crash
          ~loss:0.05 ~seed:5128 ~runs:5;
        wrow Eba.P0opt_plus.for_params ~n:128 ~t:16 ~mode:Eba.Params.Crash
          ~loss:0.05 ~seed:5129 ~runs:5;
        wrow Eba.P0opt_plus_delta.for_params ~n:128 ~t:16 ~mode:Eba.Params.Crash
          ~loss:0.05 ~seed:5129 ~runs:5;
        wrow Eba.Chain0.for_params ~n:128 ~t:16 ~mode:Eba.Params.Omission
          ~loss:0.05 ~seed:5130 ~runs:5;
        wrow Eba.Chain0_cert.for_params ~n:128 ~t:16 ~mode:Eba.Params.Omission
          ~loss:0.05 ~seed:5130 ~runs:5;
        wrow Eba.P0opt.for_params ~n:256 ~t:16 ~mode:Eba.Params.Crash ~loss:0.05
          ~seed:5256 ~runs:5;
        wrow Eba.P0opt_delta.for_params ~n:256 ~t:16 ~mode:Eba.Params.Crash
          ~loss:0.05 ~seed:5256 ~runs:5;
        wrow Eba.P0opt_plus.for_params ~n:256 ~t:16 ~mode:Eba.Params.Crash
          ~loss:0.05 ~seed:5257 ~runs:3;
        wrow Eba.P0opt_plus_delta.for_params ~n:256 ~t:16 ~mode:Eba.Params.Crash
          ~loss:0.05 ~seed:5257 ~runs:3;
        wrow Eba.Chain0.for_params ~n:256 ~t:16 ~mode:Eba.Params.Omission
          ~loss:0.05 ~seed:5258 ~runs:3;
        wrow Eba.Chain0_cert.for_params ~n:256 ~t:16 ~mode:Eba.Params.Omission
          ~loss:0.05 ~seed:5258 ~runs:3;
      ]
  in
  [
    row (module Eba.Floodset) ~n:16 ~t:5 ~mode:Eba.Params.Crash ~loss:0.1
      ~partitions:0 ~seed:42 ~runs;
    row (module Eba.P0opt) ~n:8 ~t:2 ~mode:Eba.Params.Omission ~loss:0.02
      ~partitions:1 ~seed:43 ~runs;
    row (module Eba.Floodset) ~n:64 ~t:8 ~mode:Eba.Params.Crash ~loss:0.05
      ~partitions:0 ~seed:2026 ~runs:(if !smoke then 1 else 5);
  ]
  @ wide_rows

(* Multiplexed-engine rows: each runs one seeded workload through BOTH
   engines, wall-clocks them, and records the mux summary with throughput
   (instances/sec) and the p99 decision latency.  The first row's workload
   identity matches the first [net] row exactly, so CI can assert the two
   engines' decision statistics agree within one artifact; the second is
   the 10k-instance headline.  Timing keys (seq_ns, mux_ns,
   instances_per_sec) are machine-dependent; everything under "summary"
   and the p99 are exact. *)
let mux_rows () =
  let row (module P : Eba.Protocol_intf.PROTOCOL) ~params ~topology ~dynamic
      ~seed ~runs ~live =
    let sync = Eba.Net.Sync.default_for topology in
    let timed f =
      (* both engines start from a compacted heap: these rows run late in
         the artifact writer, after the wide sweeps have grown the major
         heap, and the mux arenas' large allocations are otherwise billed
         whatever GC debt the preceding sections left behind *)
      Gc.compact ();
      let t0 = monotonic_now () in
      let x = f () in
      (x, Int64.to_float (Int64.sub (monotonic_now ()) t0))
    in
    let seq, seq_ns =
      timed (fun () ->
          Eba.Net.Netsim.sweep (module P) params ~sync ~topology ~dynamic ~seed
            ~runs)
    in
    let mux, mux_ns =
      timed (fun () ->
          Eba.Net.Netsim.sweep ~mux:live
            (module P)
            params ~sync ~topology ~dynamic ~seed ~runs)
    in
    if compare seq mux <> 0 then
      failwith "mux_rows: engines disagree — the differential suite missed";
    let p99 = Eba.Net.Net_stats.p99_decision_round mux in
    Eba.Json.Obj
      [
        ("live", Eba.Json.Int live);
        ("runs", Eba.Json.Int runs);
        ("seq_ns", Eba.Json.Float seq_ns);
        ("mux_ns", Eba.Json.Float mux_ns);
        ( "instances_per_sec",
          Eba.Json.Float (float_of_int runs *. 1e9 /. Float.max mux_ns 1.0) );
        ( "p99_decision_ns",
          Eba.Json.Int
            (Eba.Net.Net_stats.ns_of_seconds
               (float_of_int p99 *. sync.Eba.Net.Sync.round_duration)) );
        ("summary", Eba.Net.Net_stats.summary_json mux);
      ]
  in
  [
    (* same identity as net row 0: the in-artifact cross-engine guard *)
    (let topology = net_topology ~n:16 ~loss:0.1 in
     let sync = Eba.Net.Sync.default_for topology in
     row
       (module Eba.Floodset)
       ~params:(Eba.Params.make ~n:16 ~t:5 ~horizon:6 ~mode:Eba.Params.Crash)
       ~topology
       ~dynamic:
         (Eba.Net.Inject.dynamic ~partitions:0
            ~partition_span:(2.0 *. sync.Eba.Net.Sync.rto)
            ~max_faulty:5 ())
       ~seed:42
       ~runs:(if !smoke then 5 else 25)
       ~live:8);
    (* the headline: 10k instances, constant-latency fabric (the batched
       path), wave size at the measured throughput peak *)
    row
      (module Eba.Floodset)
      ~params:mux_params ~topology:mux_topology
      ~dynamic:(Eba.Net.Inject.dynamic ~max_faulty:5 ())
      ~seed:8128
      ~runs:(if !smoke then 300 else 10_000)
      ~live:16;
  ]

(* Sampled lockstep sweeps, recorded with their full regeneration identity
   (seed, sample count, universe) via the library's [Stats.summary_json] —
   the superset of the fields this file used to assemble by hand, now
   including the per-failure-count breakdown and exact byte totals. *)
let sampled_rows () =
  let samples = if !smoke then 50 else 500 in
  let om8 = Eba.Params.make ~n:8 ~t:2 ~horizon:3 ~mode:Eba.Params.Omission in
  [
    Eba.Stats.summary_json
      (Eba.Stats.sampled (module Eba.P0opt) crash4_params ~seed:11 ~samples);
    Eba.Stats.summary_json
      (Eba.Stats.sampled (module Eba.Floodset) om8 ~seed:12 ~samples);
  ]

(* Exact probcheck reports for the two pinned parameter sets.  These are
   computed, not measured — every field is an exact rational (or a decimal
   rendering of one), identical in smoke and full artifacts and across
   machines, so the CI ratchet diffs them with string equality. *)
let prob_rows () =
  [
    Eba.Prob.Report.to_json (Eba_harness.Probcheck_cases.small ());
    Eba.Prob.Report.to_json (Eba_harness.Probcheck_cases.n64 ());
  ]

(* Served-request latency: an in-process daemon on an ephemeral loopback
   port, concurrent synchronous clients, wall latency per request.  These
   are measured numbers (machine-dependent), recorded for trend tracking
   like the timing entries — the ratchet only checks the section's shape.
   One contended row (more clients than workers) and one matched row. *)
let serve_rows () =
  let clients_requests = if !smoke then (4, 5) else (8, 50) in
  let clients, requests = clients_requests in
  [
    Eba.Server.Bench_load.result_json
      (Eba.Server.Bench_load.run_local ~workers:2 ~queue_cap:64 ~clients
         ~requests ~verb:"netsim-sweep"
         ~params:
           [
             ("protocol", Eba.Json.String "floodset");
             ("n", Eba.Json.Int 4);
             ("t", Eba.Json.Int 1);
             ("runs", Eba.Json.Int 10);
           ]
         ());
    Eba.Server.Bench_load.result_json
      (Eba.Server.Bench_load.run_local ~workers:clients ~queue_cap:64 ~clients
         ~requests ~verb:"status" ~params:[] ());
    (* repeat knowledge-query against one universe: the first request
       builds the model, every later one reuses the cached build, so the
       row's p50 sits far below its p99 (the one cold build) — the
       warm-cache speedup, recorded per machine like the other latency
       rows *)
    (Eba.Server.Model_cache.clear Eba.Server.Registry.model_cache;
     Eba.Server.Bench_load.result_json
       (Eba.Server.Bench_load.run_local ~workers:2 ~queue_cap:64 ~clients:2
          ~requests ~verb:"knowledge-query"
          ~params:
            [
              ("protocol", Eba.Json.String "p0");
              ("n", Eba.Json.Int 4);
              ("t", Eba.Json.Int 1);
              ("horizon", Eba.Json.Int 3);
            ]
          ()));
  ]

let write_json path =
  let entries =
    List.map
      (fun (group, name, ns) ->
        (* bechamel reports "group/test"; the group is its own field *)
        let prefix = group ^ "/" in
        let name =
          if String.starts_with ~prefix name then
            String.sub name (String.length prefix)
              (String.length name - String.length prefix)
          else name
        in
        Eba.Json.Obj
          [
            ("group", Eba.Json.String group);
            ("name", Eba.Json.String name);
            ("ns_per_run", Eba.Json.Float ns);
          ])
      !rows_acc
  in
  let metrics =
    List.map (fun (name, v) -> (name, Eba.Json.Int v)) (metrics_signature ())
  in
  let doc =
    Eba.Json.Obj
      [
        ("schema", Eba.Json.String "eba-bench/1");
        ("smoke", Eba.Json.Bool !smoke);
        ( "jobs",
          Eba.Json.Obj
            [
              ("configured", Eba.Json.Int (Eba.Parallel.jobs ()));
              ("available", Eba.Json.Int (Eba.Parallel.available ()));
            ] );
        ("entries", Eba.Json.List entries);
        ("models", Eba.Json.List (List.map model_size_json fixture_models));
        ("build", Eba.Json.List (List.map build_entry_json (build_cases ())));
        ("net", Eba.Json.List (net_rows ()));
        ("mux", Eba.Json.List (mux_rows ()));
        ("sampled", Eba.Json.List (sampled_rows ()));
        ("prob", Eba.Json.List (prob_rows ()));
        ("serve", Eba.Json.List (serve_rows ()));
        ("metrics", Eba.Json.Obj metrics);
      ]
  in
  Eba.Json.to_file path doc;
  Printf.printf "wrote %s (%d timing entries)\n%!" path (List.length !rows_acc)

let () =
  print_endline "=== bechamel: engine benches ===";
  benchmark ~group:"engine" ~quota:0.5 engine_tests;
  print_endline "=== bechamel: operational runners ===";
  benchmark ~group:"runner" ~quota:0.5 runner_tests;
  print_endline "=== bechamel: network simulator ===";
  benchmark ~group:"net" ~quota:0.5 net_tests;
  print_endline "=== bechamel: multiplexed engine ===";
  benchmark ~group:"mux" ~quota:0.5 mux_tests;
  print_endline "=== bechamel: sweep engine, 1 domain vs N domains ===";
  benchmark ~group:"parallel" ~quota:1.0 parallel_tests;
  if not !smoke then begin
    print_endline "=== bechamel: builder scaling, naive vs shared ===";
    benchmark ~group:"build-heavy" ~quota:0.5 build_heavy_tests;
    print_endline "=== bechamel: table regeneration ===";
    benchmark ~group:"tables" ~quota:1.0 table_tests;
    print_endline "=== bechamel: heavy table regeneration ===";
    benchmark ~group:"tables-heavy" ~quota:1.0 heavy_table_tests
  end;
  (match !json_path with Some path -> write_json path | None -> ());
  if not !smoke then begin
    print_endline "";
    print_endline "=== reproduction experiments (E1..E12) ===";
    Format.printf "%a@." Eba_harness.Experiments.pp_summary (Eba_harness.Experiments.all ());
    print_endline "=== reproduction tables and series ===";
    Format.printf "%a@." Eba_harness.Tables.all ()
  end;
  Eba.Metrics.report_at_exit ()
