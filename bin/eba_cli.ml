(* The `eba` command-line tool: build models, check and optimize
   protocols, run the reproduction experiments, and print the benchmark
   tables. *)

open Cmdliner

let ( let* ) = Result.bind

(* --- shared arguments --- *)

let n_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Number of processors.")

let t_arg =
  Arg.(value & opt int 1 & info [ "t" ] ~docv:"T" ~doc:"Resilience bound (max faulty).")

let horizon_arg =
  Arg.(value & opt int 3 & info [ "horizon"; "T" ] ~docv:"H" ~doc:"Time horizon of the bounded model.")

let mode_conv =
  Arg.enum
    [
      ("crash", Eba.Params.Crash);
      ("omission", Eba.Params.Omission);
      ("general-omission", Eba.Params.General_omission);
    ]

let mode_arg =
  Arg.(value & opt mode_conv Eba.Params.Crash & info [ "mode" ] ~docv:"MODE" ~doc:"Failure mode: crash, omission, or general-omission.")

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "pretty") (some string) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "Enable the engine's observability layer and print a metrics \
           report (counters, gauges, span timings) to stderr on exit.  \
           $(docv) is $(b,pretty) (default) or $(b,json).  The \
           $(b,EBA_METRICS) environment variable ($(b,1)/$(b,pretty) or \
           $(b,json)) enables the same report without a flag.")

(* Like [jobs_term]: evaluated before every command so the flag steers the
   process-wide metrics layer, with a usage error on a bad format. *)
let metrics_term =
  let set = function
    | None -> Ok ()
    | Some fmt -> (
        let mode =
          match String.lowercase_ascii fmt with
          | "pretty" | "1" -> Some Eba.Metrics.Pretty
          | "json" -> Some Eba.Metrics.Json_mode
          | _ -> None
        in
        match mode with
        | None -> Error (`Msg (Printf.sprintf "--metrics: unknown format %S" fmt))
        | Some mode ->
            Eba.Metrics.set_enabled true;
            Eba.Metrics.set_mode mode;
            Ok ())
  in
  Term.(term_result (const set $ metrics_arg))

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for parallel sweeps and knowledge kernels; results \
           are identical for every value.  0 (the default) defers to \
           $(b,EBA_DOMAINS) (where 0 means all hardware domains), which \
           itself defaults to 1.")

(* Evaluated by every command before it runs, so [--jobs] steers the whole
   process-wide engine.  Validates the flag and [EBA_DOMAINS] eagerly so a
   bad value is a usage error up front, not an exception mid-sweep. *)
let jobs_term =
  let set j =
    if j < 0 then Error (`Msg "--jobs must be >= 0")
    else
      match Eba.Parallel.set_jobs j; Eba.Parallel.jobs () with
      | (_ : int) -> Ok ()
      | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Term.(term_result (const set $ jobs_arg))

let build_conv =
  Arg.enum [ ("shared", Eba.Model.Shared); ("naive", Eba.Model.Naive) ]

let build_arg =
  Arg.(
    value
    & opt build_conv Eba.Model.Shared
    & info [ "build" ] ~docv:"BUILDER"
        ~doc:
          "Model builder: $(b,shared) (default) walks the shared-prefix \
           pattern forest and extends views once per signature class; \
           $(b,naive) simulates every run independently.  Both produce \
           bit-identical models — the flag is an escape hatch for \
           benchmarking and for cross-checking the shared builder.")

(* Like [jobs_term]: evaluated before every command, steering the
   process-wide builder default. *)
let build_term =
  let set b = Eba.Model.set_builder b in
  Term.(const set $ build_arg)

let params_term =
  let make () () () n t horizon mode = Eba.Params.make ~n ~t ~horizon ~mode in
  Term.(
    const make $ jobs_term $ metrics_term $ build_term $ n_arg $ t_arg
    $ horizon_arg $ mode_arg)

let protocol_names =
  [ "never"; "p0"; "p1"; "p0opt"; "f-lambda-2"; "chain0"; "f-star" ]

let protocol_arg =
  Arg.(
    value
    & opt (enum (List.map (fun s -> (s, s)) protocol_names)) "f-lambda-2"
    & info [ "protocol"; "p" ] ~docv:"PROTOCOL"
        ~doc:(Printf.sprintf "One of: %s." (String.concat ", " protocol_names)))

let pair_of_name env = function
  | "never" -> Eba.Kb_protocol.never_decide (Eba.Formula.model env)
  | "p0" -> Eba.Zoo.p0 env
  | "p1" -> Eba.Zoo.p1 env
  | "p0opt" | "f-lambda-2" -> Eba.Zoo.f_lambda_2 env
  | "chain0" -> Eba.Zoo.chain_zero env
  | "f-star" -> Eba.Zoo.f_star env
  | other -> invalid_arg ("unknown protocol " ^ other)

(* --- commands --- *)

let model_cmd =
  let run params =
    let model = Eba.Model.build params in
    Format.printf "%a@." Eba.Model.pp_stats model;
    Format.printf "failure patterns: %d@." (Eba.Universe.count params)
  in
  Cmd.v
    (Cmd.info "model" ~doc:"Build a bounded model and print its size.")
    Term.(const run $ params_term)

let check_cmd =
  let run params name =
    let model = Eba.Model.build params in
    let env = Eba.Formula.env model in
    let pair = pair_of_name env name in
    let d = Eba.Kb_protocol.decide model pair in
    let report = Eba.Spec.check d in
    Format.printf "%s on %a@." name Eba.Params.pp params;
    Format.printf "  %a@." Eba.Spec.pp report;
    Format.printf "  EBA: %b  NTA: %b  optimal (Thm 5.3): %b@."
      (Eba.Spec.is_eba report)
      (Eba.Spec.is_nontrivial_agreement report)
      (Eba.Characterize.is_optimal env d)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a protocol against the EBA specification and the optimality characterization.")
    Term.(const run $ params_term $ protocol_arg)

let optimize_cmd =
  let run params name =
    let model = Eba.Model.build params in
    let env = Eba.Formula.env model in
    let pair = pair_of_name env name in
    let opt, steps = Eba.Construct.iterate_until_fixpoint env pair in
    let d = Eba.Kb_protocol.decide model pair in
    let dopt = Eba.Kb_protocol.decide model opt in
    Format.printf "optimizing %s on %a@." name Eba.Params.pp params;
    Format.printf "  steps to fixpoint: %d@." steps;
    Format.printf "  %a@." Eba.Dominance.pp (Eba.Dominance.compare dopt d);
    Format.printf "  result optimal: %b, spec: %a@."
      (Eba.Characterize.is_optimal env dopt)
      Eba.Spec.pp
      (Eba.Spec.check dopt)
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Apply the paper's two-step optimization to a protocol and report the outcome.")
    Term.(const run $ params_term $ protocol_arg)

let experiments_cmd =
  let ids = Eba_harness.Experiments.ids () in
  let id_arg =
    Arg.(
      value
      & opt (some (enum (List.map (fun s -> (s, s)) ids))) None
      & info [ "only" ] ~docv:"ID" ~doc:"Run a single experiment (E1..E12).")
  in
  let run () () () only =
    match only with
    | Some id ->
        (match Eba_harness.Experiments.run id with
        | Some o -> Format.printf "%a@." Eba_harness.Experiments.pp o
        | None -> prerr_endline "unknown experiment")
    | None ->
        Format.printf "%a@." Eba_harness.Experiments.pp_summary
          (Eba_harness.Experiments.all ())
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Reproduce the paper's propositions (E1..E12) on exhaustive models.")
    Term.(const run $ jobs_term $ metrics_term $ build_term $ id_arg)

let tables_cmd =
  let which =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"TABLE" ~doc:"One of t1..t5, f1..f3; default all.")
  in
  let run () () () only =
    let fmt = Format.std_formatter in
    let module T = Eba_harness.Tables in
    (match only with
    | None -> T.all fmt ()
    | Some "t1" -> T.t1_crash_decision_times fmt ()
    | Some "t2" -> T.t2_no_optimum fmt ()
    | Some "t3" -> T.t3_two_step fmt ()
    | Some "t4" -> T.t4_crash_vs_omission fmt ()
    | Some "t5" -> T.t5_chain_bound fmt ()
    | Some "t6" -> T.t6_sba_knowledge fmt ()
    | Some "f1" -> T.f1_decision_cdf fmt ()
    | Some "f2" -> T.f2_sba_gap fmt ()
    | Some "f3" -> T.f3_engine_scaling fmt ()
    | Some other -> Format.fprintf fmt "unknown table %s@\n" other);
    Format.pp_print_flush fmt ()
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Print the benchmark tables and figure series (EXPERIMENTS.md).")
    Term.(const run $ jobs_term $ metrics_term $ build_term $ which)

let latency_conv =
  let parse s =
    match Eba.Net.Link.latency_of_string s with
    | lat -> Ok lat
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun fmt l -> Format.pp_print_string fmt (Eba.Net.Link.latency_to_string l) )

let netsim_cmd =
  let module Net = Eba.Net in
  (* Flags are only collected here; their interpretation — protocol
     selector tables, derived sync timing, runs/mux defaulting — lives in
     [Eba.Server.Spec], shared verbatim with the daemon so a served
     sweep is byte-identical to this command's JSON. *)
  let module Spec = Eba.Server.Spec in
  let protocol_arg =
    let names = List.map (fun name -> (name, name)) Spec.protocol_names in
    Arg.(
      value
      & opt (enum names) "floodset"
      & info [ "protocol"; "p" ] ~docv:"PROTOCOL"
          ~doc:
            (Printf.sprintf "Operational protocol to simulate: %s."
               (String.concat ", " (List.map fst names))))
  in
  let latency_arg =
    Arg.(
      value
      & opt latency_conv (Net.Link.Const 1.0)
      & info [ "latency" ] ~docv:"SPEC"
          ~doc:
            "Per-link latency model: $(b,const:C), $(b,uniform:LO,HI) or \
             $(b,spike:BASE,PROB,SPIKE) (simulated seconds).")
  in
  let loss_arg =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"P"
          ~doc:"Per-copy drop probability of every link (data and acks).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Master seed.  The sweep is a pure function of (parameters, \
             seed): rerunning reproduces the summary bit for bit, for any \
             $(b,--jobs).")
  in
  let runs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "runs" ] ~docv:"RUNS"
          ~doc:"Independent runs, each with a fresh random initial \
                configuration and adversary (default 100; with $(b,--mux K), \
                defaults to K).")
  in
  let mux_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "auto" -> Ok Spec.Mux_auto
      | "off" -> Ok Spec.Mux_off
      | s -> (
          match int_of_string_opt s with
          | Some k when k >= 1 -> Ok (Spec.Mux_live k)
          | Some _ -> Error (`Msg "--mux: wave size must be >= 1")
          | None -> Error (`Msg "--mux: expected auto, off or a wave size"))
    in
    let print fmt = function
      | Spec.Mux_off -> Format.pp_print_string fmt "off"
      | Spec.Mux_auto -> Format.pp_print_string fmt "auto"
      | Spec.Mux_live k -> Format.pp_print_int fmt k
    in
    Arg.conv (parse, print)
  in
  let mux_arg =
    Arg.(
      value & opt mux_conv Spec.Mux_off
      & info [ "mux" ] ~docv:"K"
          ~doc:
            "Run the sweep through the multiplexed engine: $(docv) instances \
             live concurrently in one event loop, recycled arena state, \
             batched deliveries on constant-latency fabrics.  $(b,auto) \
             picks the measured-throughput-peak wave size (16, clamped to \
             the run count).  The summary is bit-identical to the \
             sequential engine for every wave size; also reports instances \
             per second and the p99 decision latency.")
  in
  let rto_arg =
    Arg.(
      value & opt (some float) None
      & info [ "rto" ] ~docv:"SECS"
          ~doc:"Retransmission timeout (default: derived from the latency \
                bound).")
  in
  let window_arg =
    Arg.(
      value & opt (some float) None
      & info [ "round-duration" ] ~docv:"SECS"
          ~doc:"Round window width (default: 8 RTOs).")
  in
  let retries_arg =
    Arg.(
      value & opt (some int) None
      & info [ "retries" ] ~docv:"K"
          ~doc:"Retransmissions per unacknowledged message (default 7).")
  in
  let omit_prob_arg =
    Arg.(
      value & opt float 0.5
      & info [ "omit-prob" ] ~docv:"P"
          ~doc:"Omission modes: probability a faulty processor's copy is \
                suppressed.")
  in
  let partitions_arg =
    Arg.(
      value & opt int 0
      & info [ "partitions" ] ~docv:"K"
          ~doc:"Transient network partitions per run.")
  in
  let span_arg =
    Arg.(
      value & opt (some float) None
      & info [ "partition-span" ] ~docv:"SECS"
          ~doc:"Duration of each partition (default: 2 RTOs).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the summary as an eba-bench style JSON object.")
  in
  let compact_arg =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "Use the bounded-bandwidth variant of the protocol (p0opt, \
             p0opt+ and chain0 only): identical decisions, fewer bytes on \
             the wire.")
  in
  let run params name compact latency loss seed runs mux rto window retries
      omit_prob partitions span json =
    let spec =
      {
        Spec.default with
        protocol = name;
        compact;
        n = params.Eba.Params.n;
        t_failures = params.Eba.Params.t_failures;
        horizon = params.Eba.Params.horizon;
        mode = params.Eba.Params.mode;
        latency;
        loss;
        seed;
        runs;
        mux;
        rto;
        round_duration = window;
        retries;
        omit_prob;
        partitions;
        partition_span = span;
      }
    in
    let* resolved =
      match Spec.resolve spec with Ok r -> Ok r | Error m -> Error (`Msg m)
    in
    let t0 = Monotonic_clock.now () in
    let summary = Spec.run resolved in
    let elapsed = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
    Format.printf "%a@." Net.Net_stats.pp summary;
    (match resolved.Spec.r_mux with
    | None -> ()
    | Some live ->
        let runs = resolved.Spec.r_runs in
        let p99_round = Net.Net_stats.p99_decision_round summary in
        Format.printf
          "mux: %d instances (waves of %d) in %.3fs (%.0f instances/sec), \
           p99 decision latency %.1fs simulated (round %d)@."
          runs live elapsed
          (float_of_int runs /. Float.max elapsed 1e-9)
          (float_of_int p99_round
          *. resolved.Spec.r_sync.Net.Sync.round_duration)
          p99_round);
    Option.iter
      (fun file -> Eba.Json.to_file file (Net.Net_stats.summary_json summary))
      json;
    Ok ()
  in
  Cmd.v
    (Cmd.info "netsim"
       ~doc:
         "Run an operational protocol over the discrete-event network \
          simulator: seeded sampled workloads with message loss, latency, \
          crash/omission adversaries and transient partitions, executed \
          under the timeout-and-retransmission round synchronizer.")
    Term.(
      term_result
        (const run $ params_term $ protocol_arg $ compact_arg $ latency_arg
        $ loss_arg $ seed_arg $ runs_arg $ mux_arg $ rto_arg $ window_arg
        $ retries_arg $ omit_prob_arg $ partitions_arg $ span_arg $ json_arg))

let probcheck_cmd =
  let module Net = Eba.Net in
  let module Prob = Eba.Prob in
  let latency_arg =
    Arg.(
      value
      & opt latency_conv (Net.Link.Const 1.0)
      & info [ "latency" ] ~docv:"SPEC"
          ~doc:
            "Per-link latency model: $(b,const:C), $(b,uniform:LO,HI) or \
             $(b,spike:BASE,PROB,SPIKE) (simulated seconds).")
  in
  let loss_arg =
    Arg.(
      value & opt string "0"
      & info [ "loss" ] ~docv:"P"
          ~doc:
            "Per-copy drop probability, read exactly as a decimal literal: \
             $(b,0.05) means the rational 1/20, not the nearest float.")
  in
  let rounds_arg =
    Arg.(
      value & opt (some int) None
      & info [ "rounds" ] ~docv:"R"
          ~doc:"Protocol rounds in a run (default: t + 1, FloodSet's \
                decision deadline).")
  in
  let rto_arg =
    Arg.(
      value & opt (some float) None
      & info [ "rto" ] ~docv:"SECS"
          ~doc:"Retransmission timeout (default: derived from the latency \
                bound).")
  in
  let window_arg =
    Arg.(
      value & opt (some float) None
      & info [ "round-duration" ] ~docv:"SECS"
          ~doc:"Round window width (default: 8 RTOs).")
  in
  let retries_arg =
    Arg.(
      value & opt (some int) None
      & info [ "retries" ] ~docv:"K"
          ~doc:"Retransmissions per unacknowledged message (default 7).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as an eba-prob/1 JSON object.")
  in
  let run n t rounds latency loss rto window retries json =
    (* Same shared interpretation as the daemon's [probcheck] verb. *)
    let spec =
      {
        Eba.Server.Spec.Probcheck.n;
        t_failures = t;
        rounds;
        latency;
        loss;
        rto;
        round_duration = window;
        retries;
      }
    in
    let* report =
      match Eba.Server.Spec.Probcheck.report spec with
      | Ok r -> Ok r
      | Error msg -> Error (`Msg msg)
    in
    print_string (Prob.Report.to_text report);
    Option.iter
      (fun file -> Eba.Json.to_file file (Prob.Report.to_json report))
      json;
    Ok ()
  in
  Cmd.v
    (Cmd.info "probcheck"
       ~doc:
         "Exact failure probabilities of a lossy sweep, computed instead of \
          sampled: a Markov analysis of the retransmission schedule inside \
          one synchronizer round window yields the per-message residual-miss \
          probability, landing-attempt distribution, and whole-run \
          all-copies-delivered probability as exact rationals (the numbers \
          seeded $(b,eba netsim) sweeps fluctuate around).")
    Term.(
      term_result
        (const run $ n_arg $ t_arg $ rounds_arg $ latency_arg $ loss_arg
        $ rto_arg $ window_arg $ retries_arg $ json_arg))

(* --- the resident agreement service --- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Serve on a Unix-domain socket at $(docv).  A stale socket file \
           left by a killed daemon is detected (probe connect) and \
           replaced; a live one is refused.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Serve on loopback TCP port $(docv) (0 picks an ephemeral one).")

let workers_arg =
  Arg.(
    value & opt int 4
    & info [ "workers" ] ~docv:"J"
        ~doc:
          "Worker domains executing requests.  Replies are bit-identical \
           for every value; 0 accepts but never executes (testing).")

let queue_cap_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:
          "Bounded request-queue slots; an arriving request that finds \
           the queue full gets the typed $(b,busy) reply immediately.")

let address_of ~socket ~port =
  match (socket, port) with
  | Some path, None -> Ok (Eba.Server.Frame.Unix_socket path)
  | None, Some port -> Ok (Eba.Server.Frame.Tcp port)
  | None, None -> Error (`Msg "one of --socket PATH or --port P is required")
  | Some _, Some _ -> Error (`Msg "--socket and --port are mutually exclusive")

let serve_cmd =
  let run () () socket port workers queue_cap =
    let* address = address_of ~socket ~port in
    if workers < 0 then Error (`Msg "--workers must be >= 0")
    else if queue_cap < 1 then Error (`Msg "--queue-cap must be >= 1")
    else begin
      let cfg =
        {
          Eba.Server.Daemon.default_config with
          address;
          workers;
          queue_cap;
          handle_signals = true;
        }
      in
      match
        Eba.Server.Daemon.run
          ~on_ready:(fun bound ->
            Format.printf "eba-serve/1 listening on %s (%d workers, queue %d)@."
              (Eba.Server.Frame.address_to_string bound)
              workers queue_cap;
            Format.print_flush ())
          cfg
      with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, arg) ->
          Error (`Msg (Printf.sprintf "serve: %s: %s" arg (Unix.error_message e)))
      | exception Invalid_argument msg -> Error (`Msg msg)
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident agreement service: a daemon answering \
          netsim-sweep, probcheck and knowledge-query requests over \
          length-prefixed JSON frames, with a bounded queue, typed \
          backpressure, and graceful SIGINT/SIGTERM drain.  Served \
          results are byte-identical to the batch commands for the same \
          request identity.")
    Term.(term_result (const run $ jobs_term $ metrics_term $ socket_arg
                       $ port_arg $ workers_arg $ queue_cap_arg))

let bench_serve_cmd =
  let clients_arg =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"C" ~doc:"Concurrent client connections.")
  in
  let requests_arg =
    Arg.(
      value & opt int 50
      & info [ "requests" ] ~docv:"R" ~doc:"Requests per client.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit nonzero unless every request succeeded — the CI smoke \
             mode.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the result as an eba-bench serve row.")
  in
  let run () () clients requests workers queue_cap check json =
    if clients < 1 then Error (`Msg "--clients must be >= 1")
    else if requests < 1 then Error (`Msg "--requests must be >= 1")
    else begin
      let result =
        Eba.Server.Bench_load.run_local ~workers ~queue_cap ~clients ~requests
          ~verb:"netsim-sweep"
          ~params:
            [
              ("protocol", Eba.Json.String "floodset");
              ("n", Eba.Json.Int 4);
              ("t", Eba.Json.Int 1);
              ("runs", Eba.Json.Int 10);
            ]
          ()
      in
      Format.printf "%a@." Eba.Server.Bench_load.pp result;
      Option.iter
        (fun file ->
          Eba.Json.to_file file (Eba.Server.Bench_load.result_json result))
        json;
      if check && result.Eba.Server.Bench_load.ok < result.Eba.Server.Bench_load.requests
      then
        Error
          (`Msg
             (Printf.sprintf "bench-serve --check: %d of %d requests failed"
                (result.Eba.Server.Bench_load.requests
                - result.Eba.Server.Bench_load.ok)
                result.Eba.Server.Bench_load.requests))
      else Ok ()
    end
  in
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:
         "Load-test an in-process agreement daemon: concurrent clients \
          issuing netsim-sweep requests, reporting p50/p99 latency and \
          requests/sec (the benchmark artifact's serve section).")
    Term.(
      term_result
        (const run $ jobs_term $ metrics_term $ clients_arg $ requests_arg
        $ workers_arg $ queue_cap_arg $ check_arg $ json_arg))

let () =
  (* Spans get bechamel's CLOCK_MONOTONIC stub; the library default is
     wall-clock [Unix.gettimeofday]. *)
  Eba.Metrics.set_clock (fun () -> Int64.to_float (Monotonic_clock.now ()) /. 1e9);
  Eba.Metrics.report_at_exit ();
  let doc = "eventual Byzantine agreement via continual common knowledge" in
  let info = Cmd.info "eba" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ model_cmd; check_cmd; optimize_cmd; experiments_cmd; tables_cmd; netsim_cmd; probcheck_cmd; serve_cmd; bench_serve_cmd ]))
