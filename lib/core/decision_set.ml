module Model = Eba_fip.Model
module View = Eba_fip.View
module Formula = Eba_epistemic.Formula
module Pset = Eba_epistemic.Pset

type t = Bytes.t

let nviews model = View.size model.Model.store

let empty model = Bytes.make (nviews model) '\000'
let mem t v = Bytes.get t v = '\001'

let of_views model pred =
  Bytes.init (nviews model) (fun v -> if pred v then '\001' else '\000')

let of_formulas env f =
  let model = Formula.model env in
  let store = model.Model.store in
  let t = empty model in
  let n = Model.n model in
  let sets = Array.init n (fun i -> Formula.eval env (f i)) in
  for v = 0 to nviews model - 1 do
    let i = View.owner store v in
    if Model.cell_length model v > 0 then begin
      let first = ref (-1) in
      Model.cell_iter model v (fun q ->
          let inside = if Pset.mem sets.(i) q then 1 else 0 in
          if !first < 0 then first := inside
          else if inside <> !first then
            invalid_arg "Decision_set.of_formulas: formula not view-measurable");
      if !first = 1 then Bytes.set t v '\001'
    end
  done;
  t

let of_formula env f = of_formulas env (fun _ -> f)

let points model t ~proc =
  Pset.init (Model.npoints model) (fun pid ->
      mem t (Model.view_at model ~point:pid ~proc))

let lift2 op a b = Bytes.init (Bytes.length a) (fun v ->
    if op (Bytes.get a v = '\001') (Bytes.get b v = '\001') then '\001' else '\000')

let union _model a b = lift2 ( || ) a b
let inter _model a b = lift2 ( && ) a b
let equal a b = Bytes.equal a b
let is_empty t = not (Bytes.exists (fun c -> c = '\001') t)

let cardinal t =
  let c = ref 0 in
  Bytes.iter (fun ch -> if ch = '\001' then incr c) t;
  !c

let persistent model t =
  let n = Model.n model and horizon = Model.horizon model in
  let ok = ref true in
  for run = 0 to Model.nruns model - 1 do
    for i = 0 to n - 1 do
      let entered = ref false in
      for time = 0 to horizon do
        let v = Model.view model ~run ~time ~proc:i in
        if mem t v then entered := true
        else if !entered then ok := false
      done
    done
  done;
  !ok
