(** Eventual Byzantine agreement via continual common knowledge — the
    public umbrella module.

    This library reproduces Halpern, Moses & Waarts, "A Characterization of
    Eventual Byzantine Agreement" (PODC 1990): bounded models of
    synchronous systems with crash or sending-omission failures,
    full-information protocols, the knowledge operators up to {e continual
    common knowledge} [C□_S], the two-step construction of optimal EBA
    protocols, and operational implementations of every protocol the paper
    names.

    Quickstart:
    {[
      let params = Eba.Params.make ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Crash in
      let model  = Eba.Model.build params in
      let env    = Eba.Formula.env model in
      let optimal = Eba.Zoo.f_lambda_2 env in
      let report  = Eba.Spec.check (Eba.Kb_protocol.decide model optimal) in
      assert (Eba.Spec.is_eba report)
    ]} *)

(* foundation *)
module Bitset = Eba_util.Bitset
module Bigint = Eba_util.Bigint
module Procset = Eba_util.Procset
module Combi = Eba_util.Combi
module Parallel = Eba_util.Parallel
module Cancel = Eba_util.Cancel
module Metrics = Eba_util.Metrics
module Json = Eba_util.Json

(* synchronous substrate *)
module Value = Eba_sim.Value
module Params = Eba_sim.Params
module Config = Eba_sim.Config
module Pattern = Eba_sim.Pattern
module Universe = Eba_sim.Universe

(* full-information layer *)
module View = Eba_fip.View
module Model = Eba_fip.Model

(* epistemic engine *)
module Pset = Eba_epistemic.Pset
module Nonrigid = Eba_epistemic.Nonrigid
module Knowledge = Eba_epistemic.Knowledge
module Temporal = Eba_epistemic.Temporal
module Common = Eba_epistemic.Common
module Continual = Eba_epistemic.Continual
module Eventual = Eba_epistemic.Eventual
module Formula = Eba_epistemic.Formula

(* the paper's contribution *)
module Decision_set = Eba_core.Decision_set
module Kb_protocol = Eba_core.Kb_protocol
module Spec = Eba_core.Spec
module Dominance = Eba_core.Dominance
module Construct = Eba_core.Construct
module Characterize = Eba_core.Characterize
module Facts = Eba_core.Facts
module Zoo = Eba_core.Zoo
module Trace = Eba_core.Trace

(* operational protocols *)
module Protocol_intf = Eba_protocols.Protocol_intf
module Runner = Eba_protocols.Runner
module P0 = Eba_protocols.P0
module P0opt = Eba_protocols.P0opt
module P0opt_plus = Eba_protocols.P0opt_plus
module Floodset = Eba_protocols.Floodset
module Chain0 = Eba_protocols.Chain0
module Fip_op = Eba_protocols.Fip_op
module Stats = Eba_protocols.Stats

(* bounded-bandwidth (compact-message) variants: identical decisions,
   strictly fewer bytes on the wire *)
module P0opt_delta = Eba_protocols.P0opt_delta
module P0opt_plus_delta = Eba_protocols.P0opt_plus_delta
module Chain0_cert = Eba_protocols.Chain0_cert

(* exact probability engine *)
module Prob = Eba_prob
(** Exact-rational failure probabilities: {!Eba_prob.Q} (normalized
    rationals over {!Eba_util.Bigint}), {!Eba_prob.Round_chain} (Markov
    analysis of a {!Eba_net.Sync} round window under per-copy loss),
    {!Eba_prob.Binomial} (exact confidence bounds for the Monte Carlo
    differential), {!Eba_prob.Report} (the [eba probcheck] payload). *)

(* network simulation *)
module Net = Eba_net
(** Discrete-event network simulator: {!Eba_net.Event_queue},
    {!Eba_net.Link}, {!Eba_net.Topology}, {!Eba_net.Inject},
    {!Eba_net.Sync}, {!Eba_net.Node}, {!Eba_net.Netsim},
    {!Eba_net.Net_stats}. *)

(* the resident agreement service *)
module Server = Eba_server
(** Agreement as a service: {!Eba_server.Frame} (length-prefixed JSON
    framing and sockets), {!Eba_server.Protocol} (request/response
    envelope with typed backpressure), {!Eba_server.Spec} (the shared
    request interpretation that makes served answers byte-identical to
    the batch CLI), {!Eba_server.Registry}, {!Eba_server.Req_queue},
    {!Eba_server.Pool}, {!Eba_server.Daemon}, {!Eba_server.Client},
    {!Eba_server.Bench_load}. *)
