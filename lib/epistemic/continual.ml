module Model = Eba_fip.Model
module View = Eba_fip.View
module Metrics = Eba_util.Metrics

let s_closure = Metrics.span "continual.closure"
let s_cbox = Metrics.span "continual.cbox"
let m_unions = Metrics.counter "continual.uf_unions"
let m_landable = Metrics.counter "continual.landable_points"
let m_naive_iters = Metrics.counter "continual.naive_iterations"

let ebox model s phi =
  Temporal.throughout model (Knowledge.everyone_knows model s phi)

(* --- union-find over run indices --- *)

module Uf = struct
  type t = int array

  let create n = Array.init n Fun.id

  let rec find uf i = if uf.(i) = i then i else begin
    uf.(i) <- find uf uf.(i);
    uf.(i)
  end

  let union uf i j =
    let ri = find uf i and rj = find uf j in
    if ri <> rj then uf.(ri) <- rj
end

type closure = {
  model : Model.t;
  uf : Uf.t;
  landable : Pset.t;  (* all points reachable as the endpoint of some step *)
  participates : Pset.t;  (* runs (by index) having at least one landable point *)
}

let closure model s =
  Metrics.time s_closure @@ fun () ->
  let store = model.Model.store in
  let nv = View.size store in
  let uf = Uf.create (Model.nruns model) in
  let landable = Pset.create (Model.npoints model) in
  let participates = Pset.create (Model.nruns model) in
  let unions = ref 0 in
  for v = 0 to nv - 1 do
    let i = View.owner store v in
    (* the lander group of [v]: points of the cell at which the owner is in S *)
    let first = ref (-1) in
    Model.cell_iter model v (fun q ->
        if Nonrigid.mem s ~point:q ~proc:i then begin
          Pset.add landable q;
          let run = Model.run_index_of_point model q in
          Pset.add participates run;
          if !first < 0 then first := run
          else begin
            incr unions;
            Uf.union uf !first run
          end
        end)
  done;
  Metrics.add m_unions !unions;
  if Metrics.enabled () then Metrics.add m_landable (Pset.cardinal landable);
  { model; uf; landable; participates }

let cbox cl phi =
  Metrics.time s_cbox @@ fun () ->
  let model = cl.model in
  let nruns = Model.nruns model in
  (* a component root is bad if some landable point of the component
     refutes φ *)
  let bad = Array.make nruns false in
  Pset.iter cl.landable (fun q ->
      if not (Pset.mem phi q) then
        bad.(Uf.find cl.uf (Model.run_index_of_point model q)) <- true);
  let run_ok =
    Array.init nruns (fun r ->
        (not (Pset.mem cl.participates r)) || not bad.(Uf.find cl.uf r))
  in
  Pset.init (Model.npoints model) (fun pid -> run_ok.(Model.run_index_of_point model pid))

let cbox_naive model s phi =
  let x = ref (Pset.full (Model.npoints model)) in
  let continue = ref true in
  while !continue do
    Metrics.incr m_naive_iters;
    let next = ebox model s (Pset.inter phi !x) in
    if Pset.equal next !x then continue := false else x := next
  done;
  !x

let reachable_runs cl ~run =
  let nruns = Model.nruns cl.model in
  if not (Pset.mem cl.participates run) then Pset.create nruns
  else
    let root = Uf.find cl.uf run in
    Pset.init nruns (fun r -> Pset.mem cl.participates r && Uf.find cl.uf r = root)
