module Model = Eba_fip.Model
module View = Eba_fip.View
module Bitset = Eba_util.Bitset
module Metrics = Eba_util.Metrics
module Parallel = Eba_util.Parallel

let s_kernel = Metrics.span "knowledge.known_per_view"
let m_views = Metrics.counter "knowledge.views_scanned"
let m_probes = Metrics.counter "knowledge.cell_points_probed"

(* [known_per_view model s phi] computes, for every view [v] with owner [i],
   whether φ holds at every point of [cell v] where [i ∈ S]; this is the
   kernel shared by [K], [B] and [E].  The model is immutable after
   [Model.build] and each iteration writes only its own byte, so the
   per-view loop parallelizes over domains; cells are read straight out of
   the model's CSR arrays, so the inner loop allocates nothing.  [m_probes]
   counts whole cells even when the scan exits early (and is batched per
   chunk rather than bumped per view), keeping its total a function of the
   model alone — identical across job counts and short-circuit luck. *)
let known_per_view model s phi =
  Metrics.time s_kernel @@ fun () ->
  let store = model.Model.store in
  let nv = View.size store in
  Metrics.add m_views nv;
  let off = model.Model.cell_off and ids = model.Model.cell_ids in
  let known = Bytes.make nv '\001' in
  Parallel.parallel_ranges nv (fun lo hi ->
      if Metrics.enabled () then Metrics.add m_probes (off.(hi) - off.(lo));
      for v = lo to hi - 1 do
        let i = View.owner store v in
        let e = off.(v + 1) in
        let ok = ref true in
        let k = ref off.(v) in
        while !ok && !k < e do
          let q = ids.(!k) in
          ok :=
            (match s with
            | Some s -> not (Nonrigid.mem s ~point:q ~proc:i)
            | None -> false)
            || Pset.mem phi q;
          incr k
        done;
        if not !ok then Bytes.set known v '\000'
      done);
  known

let knows model ~proc phi =
  let known = known_per_view model None phi in
  Pset.init (Model.npoints model) (fun pid ->
      Bytes.get known (Model.view_at model ~point:pid ~proc) = '\001')

let believes model s ~proc phi =
  let known = known_per_view model (Some s) phi in
  Pset.init (Model.npoints model) (fun pid ->
      Bytes.get known (Model.view_at model ~point:pid ~proc) = '\001')

let everyone_knows model s phi =
  let known = known_per_view model (Some s) phi in
  Pset.init (Model.npoints model) (fun pid ->
      Bitset.for_all
        (fun i -> Bytes.get known (Model.view_at model ~point:pid ~proc:i) = '\001')
        (Nonrigid.members s ~point:pid))

let view_measurable model ~proc phi =
  let store = model.Model.store in
  let nv = View.size store in
  let status = Array.make nv 0 in
  (* 0 = unseen, 1 = in phi, 2 = out of phi *)
  let ok = ref true in
  Model.iter_points model (fun pid ->
      let v = Model.view_at model ~point:pid ~proc in
      if View.owner store v = proc then begin
        let s = if Pset.mem phi pid then 1 else 2 in
        if status.(v) = 0 then status.(v) <- s
        else if status.(v) <> s then ok := false
      end);
  !ok
