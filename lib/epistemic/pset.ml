type t = { len : int; words : int array }

module Metrics = Eba_util.Metrics

(* Word-granularity traffic counters: how much bitset material the
   epistemic kernels actually stream.  Each [init]/[map2] touches a fixed
   number of words regardless of the job count, so both are deterministic. *)
let m_words_init = Metrics.counter "pset.words_init"
let m_words_map2 = Metrics.counter "pset.words_map2"

let bpw = 62

(* [bpw] low bits set, computed without shifting into the sign bit:
   [max_int] already has [Sys.int_size - 1] one bits. *)
let all_ones = max_int lsr (Sys.int_size - 1 - bpw)

let nwords len = (len + bpw - 1) / bpw

let create len = { len; words = Array.make (max 1 (nwords len)) 0 }

let last_word_mask len =
  let rem = len mod bpw in
  if rem = 0 then all_ones else all_ones lsr (bpw - rem)

let full len =
  let s = { len; words = Array.make (max 1 (nwords len)) all_ones } in
  if len = 0 then s.words.(0) <- 0
  else s.words.(nwords len - 1) <- last_word_mask len;
  s

let copy s = { len = s.len; words = Array.copy s.words }
let length s = s.len

let check_index s i =
  if i < 0 || i >= s.len then invalid_arg "Pset: index out of bounds"

let mem s i =
  check_index s i;
  s.words.(i / bpw) land (1 lsl (i mod bpw)) <> 0

let add s i =
  check_index s i;
  s.words.(i / bpw) <- s.words.(i / bpw) lor (1 lsl (i mod bpw))

let remove s i =
  check_index s i;
  s.words.(i / bpw) <- s.words.(i / bpw) land lnot (1 lsl (i mod bpw))

(* Parallel over whole words: each index computes one word of the vector
   from scratch, so domains never write to the same array slot and the
   result is identical for every job count.  [f] must be pure (every caller
   passes a read-only probe of an immutable model). *)
let init len f =
  let s = create len in
  Metrics.add m_words_init (nwords len);
  Eba_util.Parallel.parallel_for (nwords len) (fun w ->
      let lo = w * bpw in
      let hi = min len (lo + bpw) in
      let word = ref 0 in
      for i = lo to hi - 1 do
        if f i then word := !word lor (1 lsl (i - lo))
      done;
      s.words.(w) <- !word);
  s

let check_same a b = if a.len <> b.len then invalid_arg "Pset: length mismatch"

let map2 op a b =
  check_same a b;
  Metrics.add m_words_map2 (Array.length a.words);
  let words = Array.init (Array.length a.words) (fun w -> op a.words.(w) b.words.(w)) in
  { len = a.len; words }

let union = map2 ( lor )
let inter = map2 ( land )
let diff = map2 (fun x y -> x land lnot y)

let complement a =
  let s = { len = a.len; words = Array.map (fun w -> lnot w land all_ones) a.words } in
  if a.len = 0 then s.words.(0) <- 0
  else begin
    let lw = nwords a.len - 1 in
    s.words.(lw) <- s.words.(lw) land last_word_mask a.len
  end;
  s

let inter_ip acc s =
  check_same acc s;
  Array.iteri (fun w x -> acc.words.(w) <- x land s.words.(w)) acc.words

let equal a b = a.len = b.len && a.words = b.words

let subset a b =
  check_same a b;
  let rec loop w =
    w >= Array.length a.words || (a.words.(w) land lnot b.words.(w) = 0 && loop (w + 1))
  in
  loop 0

let is_empty a = Array.for_all (fun w -> w = 0) a.words
let is_full a = equal a (full a.len)

let popcount x =
  let rec count acc x = if x = 0 then acc else count (acc + 1) (x land (x - 1)) in
  count 0 x

let cardinal a = Array.fold_left (fun acc w -> acc + popcount w) 0 a.words

let iter s f =
  for w = 0 to Array.length s.words - 1 do
    let word = s.words.(w) in
    if word <> 0 then
      for b = 0 to bpw - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bpw) + b)
      done
  done

let for_all s f =
  let ok = ref true in
  (try iter s (fun i -> if not (f i) then begin ok := false; raise Exit end)
   with Exit -> ());
  !ok

let choose s =
  let found = ref None in
  (try iter s (fun i -> found := Some i; raise Exit) with Exit -> ());
  !found

let pp fmt s = Format.fprintf fmt "<%d/%d points>" (cardinal s) s.len
