(** Dense sets of point ids, as packed bit vectors.

    Every epistemic operator maps point sets to point sets; models have up
    to a few million points, so sets are flat bit vectors with word-wise
    boolean operations.  All binary operations require operands of the same
    length (the number of points in the model) and raise [Invalid_argument]
    otherwise. *)

type t

val create : int -> t
(** [create len] is the empty set over a universe of [len] points. *)

val full : int -> t

val init : int -> (int -> bool) -> t
(** [init len f] is [{i | f i}].  [f] must be a pure predicate: when the
    engine runs with more than one domain the indices are evaluated
    concurrently (word-parallel), in no particular order. *)

val copy : t -> t
val length : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
(** In-place insertion (used while building atoms). *)

val remove : t -> int -> unit

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
(** All fresh; operands are not mutated. *)

val inter_ip : t -> t -> unit
(** [inter_ip acc s] replaces [acc] with [acc ∩ s]. *)

val equal : t -> t -> bool
val subset : t -> t -> bool
val is_empty : t -> bool
val is_full : t -> bool
val cardinal : t -> int

val iter : t -> (int -> unit) -> unit
(** Iterates over members in increasing order. *)

val for_all : t -> (int -> bool) -> bool
(** Over members. *)

val choose : t -> int option
val pp : Format.formatter -> t -> unit
(** Cardinality summary, not the elements. *)
