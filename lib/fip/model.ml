module Bitset = Eba_util.Bitset
module Metrics = Eba_util.Metrics
module Value = Eba_sim.Value
module Config = Eba_sim.Config
module Params = Eba_sim.Params
module Pattern = Eba_sim.Pattern
module Universe = Eba_sim.Universe

type run = {
  index : int;
  config : Config.t;
  pattern : Pattern.t;
  faulty : Bitset.t;
  views : View.id array;
}

type t = {
  params : Params.t;
  store : View.store;
  runs : run array;
  cells : int array array;
}

let s_build = Metrics.span "model.build"
let s_simulate = Metrics.span "model.build.simulate"
let s_cells = Metrics.span "model.build.cells"
let m_runs = Metrics.counter "model.runs"
let m_points = Metrics.counter "model.points"
let m_views = Metrics.counter "model.views"
let m_cell_entries = Metrics.counter "model.cell_entries"

let simulate_run store (params : Params.t) ~index config pattern =
  let n = params.Params.n and horizon = params.Params.horizon in
  let views = Array.make ((horizon + 1) * n) (-1) in
  for i = 0 to n - 1 do
    views.(i) <- View.leaf store ~owner:i (Config.value config i)
  done;
  for k = 1 to horizon do
    for i = 0 to n - 1 do
      let received =
        Array.init n (fun j ->
            if j = i then None
            else if Pattern.delivers pattern ~round:k ~sender:j ~receiver:i then
              Some views.(((k - 1) * n) + j)
            else None)
      in
      views.((k * n) + i) <-
        View.node store ~owner:i ~prev:views.(((k - 1) * n) + i) ~received
    done
  done;
  { index; config; pattern; faulty = Pattern.faulty pattern; views }

let build_cells store runs horizon n =
  let nviews = View.size store in
  let counts = Array.make nviews 0 in
  let npoints_per_run = horizon + 1 in
  Array.iter
    (fun run ->
      for m = 0 to horizon do
        for i = 0 to n - 1 do
          let v = run.views.((m * n) + i) in
          counts.(v) <- counts.(v) + 1
        done
      done)
    runs;
  let cells = Array.map (fun c -> Array.make c (-1)) counts in
  let fill = Array.make nviews 0 in
  Array.iter
    (fun run ->
      for m = 0 to horizon do
        let pid = (run.index * npoints_per_run) + m in
        for i = 0 to n - 1 do
          let v = run.views.((m * n) + i) in
          cells.(v).(fill.(v)) <- pid;
          fill.(v) <- fill.(v) + 1
        done
      done)
    runs;
  cells

let build_of_configs_patterns (params : Params.t) configs patterns =
  Metrics.time s_build (fun () ->
      let store = View.create_store ~n:params.Params.n in
      let runs = ref [] in
      let index = ref 0 in
      Metrics.time s_simulate (fun () ->
          List.iter
            (fun pattern ->
              List.iter
                (fun config ->
                  runs :=
                    simulate_run store params ~index:!index config pattern :: !runs;
                  incr index)
                configs)
            patterns);
      let runs = Array.of_list (List.rev !runs) in
      let cells =
        Metrics.time s_cells (fun () ->
            build_cells store runs params.Params.horizon params.Params.n)
      in
      if Metrics.enabled () then begin
        let nruns = Array.length runs in
        let npoints = nruns * (params.Params.horizon + 1) in
        Metrics.add m_runs nruns;
        Metrics.add m_points npoints;
        Metrics.add m_views (View.size store);
        Metrics.add m_cell_entries (npoints * params.Params.n)
      end;
      { params; store; runs; cells })

let build ?(flavour = Universe.Exhaustive) ?configs (params : Params.t) =
  let configs =
    match configs with Some cs -> cs | None -> Config.all ~n:params.Params.n
  in
  build_of_configs_patterns params configs (Universe.patterns ~flavour params)

let build_of_patterns params patterns =
  build_of_configs_patterns params (Config.all ~n:params.Params.n) patterns

let nruns m = Array.length m.runs
let horizon m = m.params.Params.horizon
let n m = m.params.Params.n
let npoints m = nruns m * (horizon m + 1)
let point m ~run ~time = (run * (horizon m + 1)) + time
let run_index_of_point m pid = pid / (horizon m + 1)
let run_of_point m pid = m.runs.(run_index_of_point m pid)
let time_of_point m pid = pid mod (horizon m + 1)

let view m ~run ~time ~proc = m.runs.(run).views.((time * n m) + proc)

let view_at m ~point:pid ~proc =
  let run = run_of_point m pid and time = time_of_point m pid in
  run.views.((time * n m) + proc)

let nonfaulty m ~run = Bitset.diff (Bitset.full (n m)) m.runs.(run).faulty
let cell m v = m.cells.(v)

let find_run m ~config ~pattern =
  Array.find_opt
    (fun r -> Config.equal r.config config && Pattern.equal r.pattern pattern)
    m.runs

let iter_points m f =
  for pid = 0 to npoints m - 1 do
    f pid
  done

let pp_stats fmt m =
  Format.fprintf fmt "model %a: %d runs, %d points, %d distinct views" Params.pp
    m.params (nruns m) (npoints m) (View.size m.store)
