module Bitset = Eba_util.Bitset
module Combi = Eba_util.Combi
module Metrics = Eba_util.Metrics
module Parallel = Eba_util.Parallel
module Value = Eba_sim.Value
module Config = Eba_sim.Config
module Params = Eba_sim.Params
module Pattern = Eba_sim.Pattern
module Universe = Eba_sim.Universe

type run = {
  index : int;
  config : Config.t;
  pattern : Pattern.t;
  faulty : Bitset.t;
  views : View.id array;
}

type t = {
  params : Params.t;
  store : View.store;
  runs : run array;
  cell_off : int array;
  cell_ids : int array;
  by_key : (int, int list) Hashtbl.t Lazy.t;
}

type builder = Naive | Shared

let builder_override : builder Atomic.t = Atomic.make Shared
let set_builder b = Atomic.set builder_override b
let current_builder () = Atomic.get builder_override

let s_build = Metrics.span "model.build"
let s_simulate = Metrics.span "model.build.simulate"
let s_merge = Metrics.span "model.build.merge"
let s_cells = Metrics.span "model.build.cells"
let m_runs = Metrics.counter "model.runs"
let m_points = Metrics.counter "model.points"
let m_views = Metrics.counter "model.views"
let m_cell_entries = Metrics.counter "model.cell_entries"

(* Interior-node view extensions the shared builder actually performed, and
   the ones it skipped relative to the naive per-run simulation.  Both are
   functions of the universe alone, so they are deterministic across job
   counts — which is what lets CI assert the sharing factor. *)
let m_tree_nodes = Metrics.counter "model.tree_nodes"
let m_prefix_hits = Metrics.counter "model.prefix_hits"

(* [parts] is a caller-provided scratch array of length [n]; the interner
   copies it only when the view is new. *)
let simulate_run store (params : Params.t) ~parts ~index config pattern =
  let n = params.Params.n and horizon = params.Params.horizon in
  let views = Array.make ((horizon + 1) * n) (-1) in
  for i = 0 to n - 1 do
    views.(i) <- View.leaf store ~owner:i (Config.value config i)
  done;
  for k = 1 to horizon do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        parts.(j) <-
          (if j = i then -1
           else if Pattern.delivers pattern ~round:k ~sender:j ~receiver:i then
             views.(((k - 1) * n) + j)
           else -1)
      done;
      views.((k * n) + i) <-
        View.node_parts store ~owner:i ~prev:views.(((k - 1) * n) + i) ~parts
    done
  done;
  { index; config; pattern; faulty = Pattern.faulty pattern; views }

(* CSR layout: cell of view [v] is [cell_ids.(cell_off.(v)) ..
   cell_ids.(cell_off.(v+1) - 1)].  Two passes in canonical run order, so
   within a cell the point ids are sorted ascending whatever builder
   produced the runs. *)
let build_cells store runs horizon n =
  let nviews = View.size store in
  let npoints_per_run = horizon + 1 in
  let off = Array.make (nviews + 1) 0 in
  Array.iter
    (fun run ->
      for m = 0 to horizon do
        for i = 0 to n - 1 do
          let v = run.views.((m * n) + i) in
          off.(v + 1) <- off.(v + 1) + 1
        done
      done)
    runs;
  for v = 1 to nviews do
    off.(v) <- off.(v) + off.(v - 1)
  done;
  let ids = Array.make off.(nviews) (-1) in
  let fill = Array.sub off 0 nviews in
  Array.iter
    (fun run ->
      for m = 0 to horizon do
        let pid = (run.index * npoints_per_run) + m in
        for i = 0 to n - 1 do
          let v = run.views.((m * n) + i) in
          ids.(fill.(v)) <- pid;
          fill.(v) <- fill.(v) + 1
        done
      done)
    runs;
  (off, ids)

(* Locating a run by (config, pattern) is a rare operation on a huge array,
   so the index is lazy: a hash bucket per [Hashtbl.hash] key, resolved by
   [equal] on the (short) bucket.  Structurally equal patterns hash equal,
   which is all the bucketing needs. *)
let run_key config pattern = Hashtbl.hash (Config.to_bits config, pattern)

let make_index runs =
  lazy
    (let tbl = Hashtbl.create (2 * max 1 (Array.length runs)) in
     for idx = Array.length runs - 1 downto 0 do
       let r = runs.(idx) in
       let key = run_key r.config r.pattern in
       let prior = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
       Hashtbl.replace tbl key (idx :: prior)
     done;
     tbl)

let finish (params : Params.t) store runs =
  let cell_off, cell_ids =
    Metrics.time s_cells (fun () ->
        build_cells store runs params.Params.horizon params.Params.n)
  in
  if Metrics.enabled () then begin
    let nruns = Array.length runs in
    let npoints = nruns * (params.Params.horizon + 1) in
    Metrics.add m_runs nruns;
    Metrics.add m_points npoints;
    Metrics.add m_views (View.size store);
    Metrics.add m_cell_entries (npoints * params.Params.n)
  end;
  { params; store; runs; cell_off; cell_ids; by_key = make_index runs }

let build_of_configs_patterns (params : Params.t) configs patterns =
  Metrics.time s_build (fun () ->
      let store = View.create_store ~n:params.Params.n () in
      let parts = Array.make (max 1 params.Params.n) (-1) in
      let runs = ref [] in
      let index = ref 0 in
      Metrics.time s_simulate (fun () ->
          List.iter
            (fun pattern ->
              List.iter
                (fun config ->
                  runs :=
                    simulate_run store params ~parts ~index:!index config pattern
                    :: !runs;
                  incr index)
                configs)
            patterns);
      let runs = Array.of_list (List.rev !runs) in
      finish params store runs)

(* --- shared-prefix builders --------------------------------------------

   Patterns that agree on their delivery signatures for rounds [1..k]
   produce identical views through time [k], so the naive builder recomputes
   every shared prefix once per pattern.  The builders below extend each
   processor's view once per signature-prefix class instead of once per
   run.  Both are bit-identical to the naive builder: the sequential one by
   allocation order (it interns views in exactly the order the naive
   enumeration first needs them), the sharded one by an explicit canonical
   renumbering merge. *)

(* One signature-prefix class, grown lazily while patterns stream by in
   canonical order.  [t_levels.(c)] is the per-processor view vector of the
   class at its depth for configuration [c], computed on first use — per
   configuration, not per class, so the store's allocation order is exactly
   the naive builder's (pattern-major, configuration-inner, time-ascending). *)
type trie = {
  t_send : Bitset.t array;
  t_recv : Bitset.t array;
  t_levels : int array array;
  t_children : (int array, trie) Hashtbl.t;
}

let build_shared_seq ~flavour (params : Params.t) configs =
  Metrics.time s_build @@ fun () ->
  let n = params.Params.n and horizon = params.Params.horizon in
  let configs = Array.of_list configs in
  let nconfigs = Array.length configs in
  let store = View.create_store ~n () in
  let parts = Array.make (max 1 n) (-1) in
  let runs = ref [] in
  let index = ref 0 in
  let npatterns = ref 0 in
  let tree_nodes = ref 0 in
  let dummy =
    { t_send = [||]; t_recv = [||]; t_levels = [||]; t_children = Hashtbl.create 1 }
  in
  let path = Array.make (horizon + 1) dummy in
  Metrics.time s_simulate (fun () ->
      List.iter
        (fun set ->
          let procs = Bitset.to_list set in
          let behs =
            List.map (fun proc -> Universe.behaviours_for ~flavour params ~proc) procs
          in
          let fresh_node send recv =
            {
              t_send = send;
              t_recv = recv;
              t_levels = Array.make (max 1 nconfigs) [||];
              t_children = Hashtbl.create 4;
            }
          in
          let empty_sig = Array.make n Bitset.empty in
          let root = fresh_node empty_sig empty_sig in
          path.(0) <- root;
          Seq.iter
            (fun tuple ->
              let pattern = Pattern.make params tuple in
              incr npatterns;
              for k = 1 to horizon do
                let key =
                  Array.of_list
                    (List.concat_map
                       (fun b ->
                         let s, r = Pattern.round_signature ~n b ~round:k in
                         [ Bitset.to_int s; Bitset.to_int r ])
                       tuple)
                in
                let parent = path.(k - 1) in
                let child =
                  match Hashtbl.find_opt parent.t_children key with
                  | Some c -> c
                  | None ->
                      let send = Array.make n Bitset.empty
                      and recv = Array.make n Bitset.empty in
                      List.iter2
                        (fun proc b ->
                          let s, r = Pattern.round_signature ~n b ~round:k in
                          send.(proc) <- s;
                          recv.(proc) <- r)
                        procs tuple;
                      let c = fresh_node send recv in
                      incr tree_nodes;
                      Hashtbl.add parent.t_children key c;
                      c
                in
                path.(k) <- child
              done;
              let faulty = Pattern.faulty pattern in
              for c = 0 to nconfigs - 1 do
                if root.t_levels.(c) = [||] then
                  root.t_levels.(c) <-
                    Array.init n (fun i ->
                        View.leaf store ~owner:i (Config.value configs.(c) i));
                for k = 1 to horizon do
                  let nd = path.(k) in
                  if nd.t_levels.(c) = [||] then begin
                    let prev = path.(k - 1).t_levels.(c) in
                    let lv = Array.make n (-1) in
                    for i = 0 to n - 1 do
                      for j = 0 to n - 1 do
                        parts.(j) <-
                          (if
                             j = i
                             || Bitset.mem i nd.t_send.(j)
                             || Bitset.mem j nd.t_recv.(i)
                           then -1
                           else prev.(j))
                      done;
                      lv.(i) <- View.node_parts store ~owner:i ~prev:prev.(i) ~parts
                    done;
                    nd.t_levels.(c) <- lv
                  end
                done;
                let views = Array.make ((horizon + 1) * n) (-1) in
                for m = 0 to horizon do
                  Array.blit path.(m).t_levels.(c) 0 views (m * n) n
                done;
                runs :=
                  { index = !index; config = configs.(c); pattern; faulty; views }
                  :: !runs;
                incr index
              done)
            (Combi.cartesian_seq behs))
        (Bitset.subsets_upto n params.Params.t_failures));
  if Metrics.enabled () then begin
    Metrics.add m_tree_nodes !tree_nodes;
    Metrics.add m_prefix_hits
      (((!npatterns * horizon) - !tree_nodes) * nconfigs * n)
  end;
  finish params store (Array.of_list (List.rev !runs))

let build_shared_sharded ?(flavour = Universe.Exhaustive) ?jobs
    (params : Params.t) configs =
  Metrics.time s_build @@ fun () ->
  let n = params.Params.n and horizon = params.Params.horizon in
  let configs = Array.of_list configs in
  let nconfigs = Array.length configs in
  let npatterns, forest = Universe.prefix_forest ~flavour params in
  let nruns = npatterns * nconfigs in
  let dummy =
    {
      index = -1;
      config = Config.constant ~n:0 Value.Zero;
      pattern = Pattern.failure_free params;
      faulty = Bitset.empty;
      views = [||];
    }
  in
  let runs = Array.make nruns dummy in
  let items =
    Array.of_list
      (List.concat_map
         (fun (_set, root) ->
           if horizon = 0 then [ root ] else root.Universe.pn_children ())
         forest)
  in
  let nitems = Array.length items in
  let stores = Array.init nitems (fun _ -> View.create_store ~capacity:64 ~n ()) in
  let run_shard = Array.make (max 1 nruns) 0 in
  let item_nodes = Array.make (max 1 nitems) 0 in
  Metrics.time s_simulate (fun () ->
      Parallel.parallel_for ?jobs nitems (fun it ->
          let store = stores.(it) in
          let levels =
            Array.init (horizon + 1) (fun _ -> Array.make (nconfigs * n) (-1))
          in
          let parts = Array.make (max 1 n) (-1) in
          for c = 0 to nconfigs - 1 do
            for i = 0 to n - 1 do
              levels.(0).((c * n) + i) <-
                View.leaf store ~owner:i (Config.value configs.(c) i)
            done
          done;
          let nodes = ref 0 in
          let emit_leaves node =
            List.iter
              (fun (pidx, pattern) ->
                let faulty = Pattern.faulty pattern in
                for c = 0 to nconfigs - 1 do
                  let ridx = (pidx * nconfigs) + c in
                  let views = Array.make ((horizon + 1) * n) (-1) in
                  for m = 0 to horizon do
                    Array.blit levels.(m) (c * n) views (m * n) n
                  done;
                  runs.(ridx) <-
                    { index = ridx; config = configs.(c); pattern; faulty; views };
                  run_shard.(ridx) <- it
                done)
              (node.Universe.pn_patterns ())
          in
          let rec walk (node : Universe.prefix_node) =
            let d = node.Universe.pn_depth in
            if d > 0 then begin
              incr nodes;
              let send = node.Universe.pn_send_omit
              and recv = node.Universe.pn_recv_omit in
              let prev = levels.(d - 1) and cur = levels.(d) in
              for c = 0 to nconfigs - 1 do
                let base = c * n in
                for i = 0 to n - 1 do
                  for j = 0 to n - 1 do
                    parts.(j) <-
                      (if j = i || Bitset.mem i send.(j) || Bitset.mem j recv.(i)
                       then -1
                       else prev.(base + j))
                  done;
                  cur.(base + i) <-
                    View.node_parts store ~owner:i ~prev:prev.(base + i) ~parts
                done
              done
            end;
            if d = horizon then emit_leaves node
            else List.iter walk (node.Universe.pn_children ())
          in
          walk items.(it);
          item_nodes.(it) <- !nodes));
  (* Canonical merge: scan runs in index order, each run's view slots in
     time-major order, re-interning each shard-local view the first time it
     is met.  That is exactly the order in which the naive builder allocates
     ids, so the merged store assigns the same id to the same view. *)
  let gstore = View.create_store ~n () in
  Metrics.time s_merge (fun () ->
      let maps = Array.map (fun s -> Array.make (max 1 (View.size s)) (-1)) stores in
      let lookups = Array.map (fun map v -> map.(v)) maps in
      for ridx = 0 to nruns - 1 do
        let shard = run_shard.(ridx) in
        let map = maps.(shard) in
        let lstore = stores.(shard) in
        let lookup = lookups.(shard) in
        let views = runs.(ridx).views in
        for slot = 0 to Array.length views - 1 do
          let v = views.(slot) in
          let g = map.(v) in
          if g >= 0 then views.(slot) <- g
          else begin
            let g = View.remap_into ~dst:gstore ~map:lookup lstore v in
            map.(v) <- g;
            views.(slot) <- g
          end
        done
      done);
  if Metrics.enabled () then begin
    let tree_nodes = Array.fold_left ( + ) 0 item_nodes in
    Metrics.add m_tree_nodes tree_nodes;
    Metrics.add m_prefix_hits (((npatterns * horizon) - tree_nodes) * nconfigs * n)
  end;
  finish params gstore runs

(* With one job there is nothing to shard: the trie walk interns straight
   into the final store (no private stores, no merge) and is still
   bit-identical by construction.  With several jobs the forest's depth-1
   subtrees go through the shard-and-renumber path above. *)
let build_shared ?jobs ~flavour (params : Params.t) configs =
  let effective = match jobs with Some j when j > 0 -> j | _ -> Parallel.jobs () in
  if effective <= 1 then build_shared_seq ~flavour params configs
  else build_shared_sharded ~flavour ?jobs params configs

let build ?(flavour = Universe.Exhaustive) ?configs ?builder ?jobs
    (params : Params.t) =
  let configs =
    match configs with Some cs -> cs | None -> Config.all ~n:params.Params.n
  in
  match Option.value builder ~default:(current_builder ()) with
  | Shared -> build_shared ?jobs ~flavour params configs
  | Naive -> build_of_configs_patterns params configs (Universe.patterns ~flavour params)

let build_of_patterns params patterns =
  build_of_configs_patterns params (Config.all ~n:params.Params.n) patterns

let nruns m = Array.length m.runs
let horizon m = m.params.Params.horizon
let n m = m.params.Params.n
let npoints m = nruns m * (horizon m + 1)
let point m ~run ~time = (run * (horizon m + 1)) + time
let run_index_of_point m pid = pid / (horizon m + 1)
let run_of_point m pid = m.runs.(run_index_of_point m pid)
let time_of_point m pid = pid mod (horizon m + 1)

let view m ~run ~time ~proc = m.runs.(run).views.((time * n m) + proc)

let view_at m ~point:pid ~proc =
  let run = run_of_point m pid and time = time_of_point m pid in
  run.views.((time * n m) + proc)

let nonfaulty m ~run = Bitset.diff (Bitset.full (n m)) m.runs.(run).faulty

let cell_length m v = m.cell_off.(v + 1) - m.cell_off.(v)

let cell_iter m v f =
  for k = m.cell_off.(v) to m.cell_off.(v + 1) - 1 do
    f m.cell_ids.(k)
  done

let cell_forall m v p =
  let e = m.cell_off.(v + 1) in
  let rec go k = k >= e || (p m.cell_ids.(k) && go (k + 1)) in
  go m.cell_off.(v)

let cell m v = Array.sub m.cell_ids m.cell_off.(v) (cell_length m v)

let prepare_index m = ignore (Lazy.force m.by_key : (int, int list) Hashtbl.t)

let find_run m ~config ~pattern =
  match Hashtbl.find_opt (Lazy.force m.by_key) (run_key config pattern) with
  | None -> None
  | Some idxs ->
      List.find_map
        (fun idx ->
          let r = m.runs.(idx) in
          if Config.equal r.config config && Pattern.equal r.pattern pattern then
            Some r
          else None)
        idxs

let iter_points m f =
  for pid = 0 to npoints m - 1 do
    f pid
  done

let pp_stats fmt m =
  Format.fprintf fmt "model %a: %d runs, %d points, %d distinct views" Params.pp
    m.params (nruns m) (npoints m) (View.size m.store)
