(** Enumerated bounded models: the system ℛ of all runs of the
    full-information protocol for a parameter set.

    A {e run} is determined by an initial configuration and a failure
    pattern (Prop 2.2 makes full-information states independent of any
    decision function, so one enumerated model supports every decision
    pair).  A {e point} is a pair (run, time); points are densely numbered
    so the epistemic layer can work with flat bitsets over point ids.

    Two builders produce the same model: the naive one simulates every run
    independently, the shared one extends views once per signature-prefix
    class.  With one job the shared builder grows a signature trie while
    the patterns stream by canonically, interning straight into the final
    store in the naive allocation order; with several it shards the
    depth-1 subtrees of {!Universe.prefix_forest} across domains and
    renumbers the shard stores into that same order during a merge.
    Either way the stores, runs and cells are bit-identical to naive, so
    the choice is purely a performance knob. *)

module Bitset = Eba_util.Bitset
module Value = Eba_sim.Value
module Config = Eba_sim.Config
module Params = Eba_sim.Params
module Pattern = Eba_sim.Pattern
module Universe = Eba_sim.Universe

type run = private {
  index : int;
  config : Config.t;
  pattern : Pattern.t;
  faulty : Bitset.t;
  views : View.id array;  (** [views.(time * n + proc)] *)
}

type t = private {
  params : Params.t;
  store : View.store;
  runs : run array;
  cell_off : int array;
      (** CSR row offsets: cell of view [v] occupies
          [cell_ids.(cell_off.(v)) .. cell_ids.(cell_off.(v+1) - 1)] *)
  cell_ids : int array;
      (** point ids, ascending within each cell — all points at which the
          view's owner holds exactly that view *)
  by_key : (int, int list) Hashtbl.t Lazy.t;
      (** lazy (config, pattern)-hash -> run-index buckets for {!find_run} *)
}

type builder = Naive | Shared

val set_builder : builder -> unit
(** Process-wide default builder for {!build} (initially [Shared]); the
    [--build] CLI flag calls this. *)

val current_builder : unit -> builder

val build :
  ?flavour:Universe.flavour ->
  ?configs:Config.t list ->
  ?builder:builder ->
  ?jobs:int ->
  Params.t ->
  t
(** Enumerates every (configuration, pattern) pair and simulates the
    full-information protocol under it.  [configs] defaults to all [2^n]
    configurations — restricting it changes the system runs are drawn from
    and hence what is known; it exists for ablation experiments only.
    [builder] overrides the {!set_builder} default for this call; either
    choice produces a bit-identical model.  [jobs] overrides the ambient
    {!Eba_util.Parallel.jobs} count for this build only (a per-call
    argument, safe under concurrent builders, unlike the process-global
    {!Eba_util.Parallel.set_jobs}); any positive count yields the same
    bits — it only picks the sequential or sharded shared builder and the
    sharding width. *)

val build_of_patterns : Params.t -> Pattern.t list -> t
(** As {!build} with an explicit pattern list (all [2^n] configurations).
    Always uses the naive builder: an arbitrary pattern list has no
    prefix-forest structure to share. *)

val nruns : t -> int
val npoints : t -> int
val horizon : t -> int
val n : t -> int

val point : t -> run:int -> time:int -> int
(** Dense point id; inverse of {!run_of_point} / {!time_of_point}. *)

val run_of_point : t -> int -> run
val run_index_of_point : t -> int -> int
val time_of_point : t -> int -> int

val view_at : t -> point:int -> proc:int -> View.id
(** [r_i(m)]: processor [proc]'s view at the point. *)

val view : t -> run:int -> time:int -> proc:int -> View.id

val nonfaulty : t -> run:int -> Bitset.t
(** The paper's 𝒩(r): processors that follow the protocol throughout. *)

val cell_length : t -> View.id -> int
(** Number of points in the view's cell (always [>= 1]: the point the view
    was taken from is a member). *)

val cell_iter : t -> View.id -> (int -> unit) -> unit
(** Iterate the view's cell in ascending point order, without allocating. *)

val cell_forall : t -> View.id -> (int -> bool) -> bool
(** Short-circuiting universal quantification over the cell — the knowledge
    test [∀ points ≈ here. φ]. *)

val cell : t -> View.id -> int array
(** The cell as a fresh array (allocates; the hot paths use {!cell_iter} /
    {!cell_forall} or index [cell_ids] through [cell_off] directly). *)

val find_run : t -> config:Config.t -> pattern:Pattern.t -> run option
(** Locate the run with this configuration and pattern, if the model
    contains it (used to relate operational executions to semantic runs).
    Backed by a lazily built hash index, so repeated lookups cost O(bucket)
    rather than a scan of all runs. *)

val prepare_index : t -> unit
(** Force {!find_run}'s lazy index now.  A built model is immutable
    {e except} this suspension — forcing it in the owning domain makes
    the whole model safe to share across domains (the model cache does
    this before publishing an entry). *)

val iter_points : t -> (int -> unit) -> unit
val pp_stats : Format.formatter -> t -> unit
