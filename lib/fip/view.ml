module Bitset = Eba_util.Bitset
module Value = Eba_sim.Value

type id = int

type meta = {
  m_owner : int;
  m_time : int;
  m_init : Value.t;
  m_prev : id;  (* -1 for leaves *)
  m_received : id array;  (* length n for nodes, [||] for leaves; -1 = none *)
  m_heard : Bitset.t;
  m_knows_zero : bool;
}

type store = {
  s_n : int;
  tbl : (int array, id) Hashtbl.t;
  mutable metas : meta array;
  mutable next : int;
  key_scratch : int array;
      (* probe buffer for node keys: interning a view that already exists
         allocates nothing.  Stores are single-domain, so one buffer. *)
}

let dummy_meta =
  {
    m_owner = -1;
    m_time = -1;
    m_init = Value.Zero;
    m_prev = -1;
    m_received = [||];
    m_heard = Bitset.empty;
    m_knows_zero = false;
  }

let create_store ?(capacity = 1024) ~n () =
  {
    s_n = n;
    tbl = Hashtbl.create (4 * max 1 capacity);
    metas = Array.make (max 1 capacity) dummy_meta;
    next = 0;
    key_scratch = Array.make (n + 3) 0;
  }

let grow store =
  let cap = Array.length store.metas in
  if store.next >= cap then begin
    let metas = Array.make (2 * cap) store.metas.(0) in
    Array.blit store.metas 0 metas 0 cap;
    store.metas <- metas
  end

let alloc store key meta =
  match Hashtbl.find_opt store.tbl key with
  | Some id -> id
  | None ->
      let id = store.next in
      grow store;
      store.metas.(id) <- meta;
      store.next <- id + 1;
      Hashtbl.add store.tbl key id;
      id

let meta store id = store.metas.(id)

let leaf store ~owner value =
  let key = [| 0; owner; Value.to_int value |] in
  alloc store key
    {
      m_owner = owner;
      m_time = 0;
      m_init = value;
      m_prev = -1;
      m_received = [||];
      m_heard = Bitset.empty;
      m_knows_zero = Value.equal value Value.Zero;
    }

(* The hot interner path: [parts.(j)] is the view received from [j], or
   [-1].  The key is assembled in the store's scratch buffer so a hit — the
   common case once prefixes are shared — allocates nothing and skips the
   meta computation entirely; only a miss copies the key and [parts].  The
   array is borrowed: callers may reuse it immediately. *)
let node_parts store ~owner ~prev ~parts =
  let key = store.key_scratch in
  key.(0) <- 1;
  key.(1) <- owner;
  key.(2) <- prev;
  Array.blit parts 0 key 3 store.s_n;
  match Hashtbl.find_opt store.tbl key with
  | Some id -> id
  | None ->
      let p = store.metas.(prev) in
      let heard = ref Bitset.empty in
      let knows_zero = ref p.m_knows_zero in
      let parts = Array.copy parts in
      Array.iteri
        (fun j v ->
          if v >= 0 then begin
            heard := Bitset.add j !heard;
            knows_zero := !knows_zero || store.metas.(v).m_knows_zero
          end)
        parts;
      let id = store.next in
      grow store;
      store.metas.(id) <-
        {
          m_owner = owner;
          m_time = p.m_time + 1;
          m_init = p.m_init;
          m_prev = prev;
          m_received = parts;
          m_heard = !heard;
          m_knows_zero = !knows_zero;
        };
      store.next <- id + 1;
      Hashtbl.add store.tbl (Array.copy key) id;
      id

let node store ~owner ~prev ~received =
  let p = meta store prev in
  if p.m_owner <> owner then invalid_arg "View.node: owner mismatch with prev";
  if Array.length received <> store.s_n then invalid_arg "View.node: received arity";
  if received.(owner) <> None then invalid_arg "View.node: self-message";
  let parts = Array.make store.s_n (-1) in
  Array.iteri
    (fun j rv ->
      match rv with
      | None -> ()
      | Some v ->
          let mv = meta store v in
          if mv.m_owner <> j then invalid_arg "View.node: received view owner mismatch";
          if mv.m_time <> p.m_time then invalid_arg "View.node: received view time mismatch";
          parts.(j) <- v)
    received;
  node_parts store ~owner ~prev ~parts

(* Re-intern [id]'s meta from [src] into [dst], translating the ids it
   references through [map] — the merge step of the sharded builder.  Every
   view [id] references (its [prev] and received parts) must already have
   been remapped, which the canonical run-major/time-major merge order
   guarantees. *)
let remap_into ~dst ~map src id =
  let m = src.metas.(id) in
  if m.m_prev < 0 then
    alloc dst
      [| 0; m.m_owner; Value.to_int m.m_init |]
      { m with m_received = [||] }
  else begin
    let n = dst.s_n in
    let parts = Array.make n (-1) in
    for j = 0 to n - 1 do
      let v = m.m_received.(j) in
      if v >= 0 then parts.(j) <- map v
    done;
    let prev = map m.m_prev in
    let key = Array.make (n + 3) 0 in
    key.(0) <- 1;
    key.(1) <- m.m_owner;
    key.(2) <- prev;
    Array.blit parts 0 key 3 n;
    alloc dst key { m with m_prev = prev; m_received = parts }
  end

let size store = store.next
let n store = store.s_n
let owner store id = (meta store id).m_owner
let time store id = (meta store id).m_time
let init_value store id = (meta store id).m_init

let prev store id =
  let p = (meta store id).m_prev in
  if p < 0 then None else Some p

let received store id j =
  let m = meta store id in
  if Array.length m.m_received = 0 then None
  else
    let v = m.m_received.(j) in
    if v < 0 then None else Some v

let heard_from store id = (meta store id).m_heard
let knows_zero store id = (meta store id).m_knows_zero

let pp store fmt id =
  let m = meta store id in
  Format.fprintf fmt "p%d@%d:v%a<-%a" m.m_owner m.m_time Value.pp m.m_init Bitset.pp
    m.m_heard
