(** Hash-consed full-information views (Section 2.4).

    In a full-information protocol each processor sends its entire state to
    everybody in every round, so its state at time [m] is determined by its
    name, its initial value, and — for each earlier round — which of the
    other processors' states it received.  Views form a DAG; hash-consing
    makes state identity ([r_i(m) = r'_i(m')], the heart of the knowledge
    semantics) a constant-time integer comparison and lets millions of
    points share structure.

    Because a view records its owner's name and its depth records the time,
    two equal views always have the same owner and time — the form the
    paper's indistinguishability takes for full-information protocols. *)

module Bitset = Eba_util.Bitset
module Value = Eba_sim.Value

type id = int
(** A view identifier, dense in [0 .. size store - 1]. *)

type store
(** A mutable hash-consing arena for one model. *)

val create_store : ?capacity:int -> n:int -> unit -> store
(** [n] is the number of processors (fixes the arity of interior nodes).
    [capacity] (default 1024) sizes the initial meta arena and hash table;
    both grow on demand, so it only tunes allocation for stores known to
    stay small (e.g. the sharded builder's per-domain stores). *)

val leaf : store -> owner:int -> Value.t -> id
(** The time-0 view of [owner] with the given initial value. *)

val node : store -> owner:int -> prev:id -> received:id option array -> id
(** The view after one more round: [prev] is [owner]'s previous view and
    [received.(j)] is the view [j] sent in that round, if it was delivered.
    [received.(owner)] must be [None].  Raises [Invalid_argument] if the
    owner or times are inconsistent. *)

val node_parts : store -> owner:int -> prev:id -> parts:id array -> id
(** The unchecked fast path behind {!node}: [parts.(j)] is the view
    received from [j], or [-1] for none ([parts.(owner)] must be [-1]).
    The key is probed through a scratch buffer, so re-interning an existing
    view allocates nothing; [parts] is borrowed and may be reused by the
    caller immediately.  Preconditions ({!node}'s owner/time checks) are
    the caller's responsibility — this is for the model builders, whose
    simulation loops establish them structurally. *)

val remap_into : dst:store -> map:(id -> id) -> store -> id -> id
(** [remap_into ~dst ~map src id] re-interns [src]'s view [id] into [dst],
    translating the ids it references through [map].  Requires every view
    [id] references to have been remapped already — i.e. callers must
    process views in a dependency-respecting (time-ascending) order.  Used
    to merge per-domain stores into one canonical store. *)

val size : store -> int
(** Number of distinct views allocated so far. *)

val n : store -> int
val owner : store -> id -> int
val time : store -> id -> int
val init_value : store -> id -> Value.t
(** The owner's initial value. *)

val prev : store -> id -> id option
(** The owner's view one round earlier ([None] for leaves). *)

val received : store -> id -> int -> id option
(** [received store v j] is the view received from [j] in the view's last
    round ([None] for leaves, for [j = owner], and for omitted messages). *)

val heard_from : store -> id -> Bitset.t
(** Senders whose message arrived in the view's last round (empty for
    leaves). *)

val knows_zero : store -> id -> bool
(** Structural test: does the view contain an initial value of 0 anywhere?
    For crash and sending-omission full-information systems this coincides
    with [K_i ∃0]; the coincidence is property-tested, not assumed, by the
    epistemic layer's test-suite. *)

val pp : store -> Format.formatter -> id -> unit
(** Concise rendering, e.g. [p2@3:v1<-{0,1}]. *)
