module F = Eba.Formula
module M = Eba.Model
module KB = Eba.Kb_protocol
module Spec = Eba.Spec
module Dom = Eba.Dominance
module Con = Eba.Construct
module Ch = Eba.Characterize
module Zoo = Eba.Zoo
module N = Eba.Nonrigid
module P = Eba.Pset
module Val = Eba.Value
module B = Eba.Bitset
module Pat = Eba.Pattern
module Cfg = Eba.Config

type outcome = {
  id : string;
  claim : string;
  setting : string;
  holds : bool;
  detail : string;
}

(* [Full] runs every claim at the sizes EXPERIMENTS.md records.  [Small]
   replaces the one expensive fixture (crash n=4 t=2 T=4, used by E9's
   t=2 deviation) with the smallest instance exhibiting the same
   phenomenon (crash n=3 t=2 T=4 — see note N5); every other claim
   already runs at its minimal instance.  The golden test pins the
   [Small] verdicts on every commit. *)
type scale = Small | Full

(* memoized fixtures, built on first use *)
let memo tbl key build =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = build () in
      Hashtbl.add tbl key v;
      v

let envs : (string, F.env) Hashtbl.t = Hashtbl.create 8

let env_of ~n ~t ~horizon ~mode =
  let key = Printf.sprintf "%d-%d-%d-%b" n t horizon (mode = Eba.Params.Crash) in
  memo envs key (fun () ->
      F.env (M.build (Eba.Params.make ~n ~t ~horizon ~mode)))

let crash_small () = env_of ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Crash
let crash_medium () = env_of ~n:4 ~t:1 ~horizon:3 ~mode:Eba.Params.Crash

let crash_t2 = function
  | Full -> env_of ~n:4 ~t:2 ~horizon:4 ~mode:Eba.Params.Crash
  | Small -> env_of ~n:3 ~t:2 ~horizon:4 ~mode:Eba.Params.Crash

let omission_small () = env_of ~n:3 ~t:1 ~horizon:3 ~mode:Eba.Params.Omission

(* Prop 6.3 needs t > 1 and n >= t + 2; n=4 t=2 T=2 is already minimal. *)
let omission_t2 () = env_of ~n:4 ~t:2 ~horizon:2 ~mode:Eba.Params.Omission

let setting_of env = Format.asprintf "%a (exhaustive)" Eba.Params.pp (F.model env).M.params

let decisions env pair = KB.decide (F.model env) pair

(* --- E1: Prop 2.1, no optimum EBA protocol --- *)
let e1 () =
  let env = crash_small () in
  let d0 = decisions env (Zoo.p0 env) and d1 = decisions env (Zoo.p1 env) in
  let m = F.model env in
  let dopt = decisions env (Zoo.f_lambda_2 env) in
  let zero_holders_at_0 =
    let ok = ref true in
    for run = 0 to M.nruns m - 1 do
      let cfg = (M.run_of_point m (M.point m ~run ~time:0)).M.config in
      B.iter
        (fun i ->
          if Val.equal (Cfg.value cfg i) Val.Zero then
            match KB.outcome d0 ~run ~proc:i with
            | Some { KB.at = 0; _ } -> ()
            | Some _ | None -> ok := false)
        (M.nonfaulty m ~run)
    done;
    !ok
  in
  let not_both = not (Dom.dominates dopt d0 && Dom.dominates dopt d1) in
  let lower_bound =
    (Spec.check dopt).Spec.max_decision_time = Some (m.M.params.Eba.Params.t_failures + 1)
  in
  {
    id = "E1";
    claim = "Prop 2.1: there is no optimum EBA protocol";
    setting = setting_of env;
    holds = zero_holders_at_0 && not_both && lower_bound;
    detail =
      Printf.sprintf
        "P0 decides 0 at time 0 for 0-holders (%b); even the optimal F^L,2 cannot \
         dominate both P0 and P1 (%b); some run needs t+1 rounds (%b)"
        zero_holders_at_0 not_both lower_bound;
  }

(* --- E2: §2.2, P0opt strictly dominates P0 and is the optimal closure --- *)
let e2 () =
  let env = crash_small () in
  let d0 = decisions env (Zoo.p0 env) in
  let dopt = decisions env (Zoo.f_lambda_2 env) in
  let strict = Dom.strictly_dominates dopt d0 in
  let optimal = Ch.is_optimal env dopt in
  let unique =
    let via_p0, steps = Con.iterate_until_fixpoint env (Zoo.p0 env) in
    steps <= 2 && Dom.equivalent (decisions env via_p0) dopt
  in
  {
    id = "E2";
    claim = "§2.2: P0opt strictly dominates P0 and is the unique optimal closure";
    setting = setting_of env;
    holds = strict && optimal && unique;
    detail =
      Printf.sprintf "strict domination %b; Thm 5.3-optimal %b; optimize(P0) = F^L,2 %b"
        strict optimal unique;
  }

(* --- E3: Prop 3.1, S5 axioms (sampled through the formula engine) --- *)
let e3 () =
  let env = crash_small () in
  let m = F.model env in
  let e0 = F.exists_value m Val.Zero in
  let phi = F.K (1, F.Or [ e0; F.Not (F.K (0, e0)) ]) in
  let checks =
    [
      F.Implies (F.K (0, phi), phi);
      F.Implies (F.K (0, phi), F.K (0, F.K (0, phi)));
      F.Implies (F.Not (F.K (0, phi)), F.K (0, F.Not (F.K (0, phi))));
      F.Implies (F.And [ F.K (0, phi); F.K (0, F.Implies (phi, e0)) ], F.K (0, e0));
    ]
  in
  let holds = List.for_all (F.valid env) checks in
  {
    id = "E3";
    claim = "Prop 3.1: knowledge satisfies S5";
    setting = setting_of env ^ "; full qcheck suite in test/";
    holds;
    detail = Printf.sprintf "%d axiom schemata valid on nested witnesses" (List.length checks);
  }

(* --- E4: Lemma 3.4, the C□ axioms --- *)
let e4 () =
  let env = crash_small () in
  let m = F.model env in
  let nf = N.nonfaulty m in
  let e0 = F.exists_value m Val.Zero in
  let e1 = F.exists_value m Val.One in
  let c phi = F.Cbox (nf, phi) in
  let checks =
    [
      F.Implies (F.And [ c e0; c (F.Implies (e0, e1)) ], c e1);
      F.Implies (c e0, c (c e0));
      F.Implies (F.Not (c e0), c (F.Not (c e0)));
      F.Implies (c e0, F.Ebox (nf, F.And [ e0; c e0 ]));
      F.Iff (c e0, F.Throughout (c e0));
      F.Implies (c e0, F.C (nf, e0));
    ]
  in
  let holds = List.for_all (F.valid env) checks in
  {
    id = "E4";
    claim = "Lemma 3.4: C□ satisfies K45 + fixed point, is run-constant, implies C";
    setting = setting_of env ^ "; full qcheck suite in test/";
    holds;
    detail = Printf.sprintf "%d schemata valid" (List.length checks);
  }

(* --- E5: C□ strictly stronger than C --- *)
let e5 () =
  let env = crash_small () in
  let m = F.model env in
  let nf = N.nonfaulty m in
  let e0 = F.exists_value m Val.Zero in
  let csome = not (P.is_empty (F.eval env (F.C (nf, e0)))) in
  let cbox_none = P.is_empty (F.eval env (F.Cbox (nf, e0))) in
  {
    id = "E5";
    claim = "C□ is strictly stronger than C (converse of C□⇒C fails)";
    setting = setting_of env;
    holds = csome && cbox_none;
    detail =
      Printf.sprintf "C_N ∃0 at %d points, C□_N ∃0 at %d"
        (P.cardinal (F.eval env (F.C (nf, e0))))
        (P.cardinal (F.eval env (F.Cbox (nf, e0))));
  }

(* --- E6: Prop 4.3 / 4.4 --- *)
let e6 () =
  let check_env env seeds =
    List.for_all
      (fun pair ->
        let d = decisions env pair in
        Ch.necessary env d = [])
      seeds
  in
  let c = crash_small () and o = omission_small () in
  let crash_ok = check_env c [ Zoo.p0 c; Zoo.p1 c; Zoo.f_lambda_2 c ] in
  let om_ok = check_env o [ Zoo.chain_zero o; Zoo.f_star o ] in
  let sufficiency =
    Ch.sufficient_one_anchored c (decisions c (Zoo.f_lambda_2 c))
    && Ch.sufficient_zero_anchored o (decisions o (Zoo.f_star o))
  in
  {
    id = "E6";
    claim = "Prop 4.3/4.4: continual common knowledge is necessary & sufficient for NTA";
    setting = "crash n=3 t=1 T=3; omission n=3 t=1 T=3 (exhaustive)";
    holds = crash_ok && om_ok && sufficiency;
    detail =
      Printf.sprintf "necessity on 5 protocols (%b, %b); sufficiency variants (%b)"
        crash_ok om_ok sufficiency;
  }

(* --- E7: Thm 5.2 --- *)
let e7 () =
  let run_env env seeds =
    List.for_all
      (fun pair ->
        let opt = Con.optimize env pair in
        let d = decisions env opt in
        let _, steps = Con.iterate_until_fixpoint env pair in
        Spec.is_nontrivial_agreement (Spec.check d)
        && Ch.is_optimal env d
        && Dom.dominates d (decisions env pair)
        && steps <= 2)
      seeds
  in
  let c = crash_small () and o = omission_small () in
  let crash_ok =
    run_env c [ KB.never_decide (F.model c); Zoo.p0 c; Zoo.p1 c ]
  in
  let om_ok = run_env o [ KB.never_decide (F.model o); Zoo.chain_zero o ] in
  {
    id = "E7";
    claim = "Thm 5.2: two steps produce an optimal dominating protocol; fixed point in ≤2";
    setting = "crash & omission n=3 t=1 T=3, 5 seed protocols";
    holds = crash_ok && om_ok;
    detail = Printf.sprintf "crash seeds %b; omission seeds %b" crash_ok om_ok;
  }

(* --- E8: Thm 5.3 --- *)
let e8 () =
  let env = crash_small () in
  let optimal_accepted = Ch.is_optimal env (decisions env (Zoo.f_lambda_2 env)) in
  let p0_rejected = not (Ch.is_optimal env (decisions env (Zoo.p0 env))) in
  let o = omission_small () in
  let fstar_accepted = Ch.is_optimal o (decisions o (Zoo.f_star o)) in
  {
    id = "E8";
    claim = "Thm 5.3: optimality ⟺ the two knowledge equivalences";
    setting = "crash & omission n=3 t=1 T=3 (exhaustive)";
    holds = optimal_accepted && p0_rejected && fstar_accepted;
    detail =
      Printf.sprintf "accepts F^L,2 (%b) and F* (%b); rejects P0 (%b)" optimal_accepted
        fstar_accepted p0_rejected;
  }

(* --- E9: Thm 6.1 / 6.2 --- *)
let e9 scale =
  let c3 = crash_small () and c4 = crash_medium () in
  let thm61 =
    KB.pair_equal (Zoo.f_lambda_2 c3) (Zoo.crash_simple c3)
    && KB.pair_equal (Zoo.f_lambda_2 c4) (Zoo.crash_simple c4)
  in
  let equiv env (module Pr : Eba.Protocol_intf.PROTOCOL) pair =
    let m = F.model env in
    let d = decisions env pair in
    let module R = Eba.Runner.Make (Pr) in
    let ok = ref true in
    for r = 0 to M.nruns m - 1 do
      let run = M.run_of_point m (M.point m ~run:r ~time:0) in
      let trace = R.run m.M.params run.M.config run.M.pattern in
      B.iter
        (fun i ->
          let same =
            match (KB.outcome d ~run:r ~proc:i, trace.Eba.Runner.decisions.(i)) with
            | None, None -> true
            | Some { KB.at; value }, Some { Eba.Runner.at = at'; value = value' } ->
                at = at' && Val.equal value value'
            | None, Some _ | Some _, None -> false
          in
          if not same then ok := false)
        (M.nonfaulty m ~run:r)
    done;
    !ok
  in
  let thm62_t1 = equiv c4 (module Eba.P0opt) (Zoo.f_lambda_2 c4) in
  let t2 = crash_t2 scale in
  let thm62_t2_fails = not (equiv t2 (module Eba.P0opt) (Zoo.f_lambda_2 t2)) in
  let p0opt_plus_t2 = equiv t2 (module Eba.P0opt_plus) (Zoo.f_lambda_2 t2) in
  {
    id = "E9";
    claim = "Thm 6.1/6.2: crash-mode closed form; P0opt ≡ F^L,2";
    setting =
      Printf.sprintf "crash n=3,4 t=1 T=3 and %s (exhaustive)"
        (match scale with Full -> "n=4 t=2 T=4" | Small -> "n=3 t=2 T=4");
    holds = thm61 && thm62_t1 && thm62_t2_fails && p0opt_plus_t2;
    detail =
      Printf.sprintf
        "Thm 6.1 exact (%b); Thm 6.2 exact at t=1 (%b); DEVIATION: fails at t=2 (%b) — \
         P0opt's value-vector messages lose heard-history; our P0opt+ (delivery-evidence \
         gossip, O(n^2 T) bits) restores exact equivalence at t=2 (%b)"
        thm61 thm62_t1 thm62_t2_fails p0opt_plus_t2;
  }

(* --- E10: Prop 6.3 --- *)
let e10 () =
  let env = omission_t2 () in
  let m = F.model env in
  let d = decisions env (Zoo.f_lambda_2 env) in
  let r = Spec.check d in
  let horizon = 2 in
  let omits = Array.make horizon (B.of_list [ 1; 2; 3 ]) in
  let pattern = Pat.make m.M.params [ Pat.omission ~horizon ~proc:0 ~omits ] in
  let config = Cfg.constant ~n:4 Val.One in
  let run = (Option.get (M.find_run m ~config ~pattern)).M.index in
  let witness =
    B.for_all
      (fun i -> KB.outcome d ~run ~proc:i = None)
      (B.of_list [ 1; 2; 3 ])
  in
  {
    id = "E10";
    claim = "Prop 6.3: under omissions (t>1, n≥t+2) F^L,2 has non-deciding runs";
    setting = setting_of env;
    holds = Spec.is_nontrivial_agreement r && (not r.Spec.decision) && witness;
    detail =
      Printf.sprintf
        "still consistent (%b); decision fails globally (%b); paper's witness run \
         (all-1, processor 0 silent) has no nonfaulty decision (%b)"
        (Spec.is_nontrivial_agreement r) (not r.Spec.decision) witness;
  }

(* --- E11: Prop 6.4 / Cor 6.5 --- *)
let e11 () =
  let env = omission_small () in
  let m = F.model env in
  let d = decisions env (Zoo.chain_zero env) in
  let eba = Spec.is_eba (Spec.check d) in
  let bound = ref true in
  for run = 0 to M.nruns m - 1 do
    let f = Pat.num_failures (M.run_of_point m (M.point m ~run ~time:0)).M.pattern in
    B.iter
      (fun i ->
        match KB.outcome d ~run ~proc:i with
        | Some { KB.at; _ } -> if at > f + 1 then bound := false
        | None -> bound := false)
      (M.nonfaulty m ~run)
  done;
  let op = Eba.Stats.exhaustive (module Eba.Chain0) m.M.params in
  let op_ok =
    op.Eba.Stats.agreement_violations = 0
    && op.Eba.Stats.validity_violations = 0
    && op.Eba.Stats.undecided_nonfaulty = 0
  in
  {
    id = "E11";
    claim = "Prop 6.4/Cor 6.5: FIP(Z0,O0) is EBA; nonfaulty decide by f+1";
    setting = setting_of env;
    holds = eba && !bound && op_ok;
    detail =
      Printf.sprintf "semantic EBA (%b); f+1 bound in every run (%b); operational \
                      Chain0 matches over the same universe (%b)" eba !bound op_ok;
  }

(* --- E12: Prop 6.6 --- *)
let e12 () =
  let env = omission_small () in
  let dstar = decisions env (Zoo.f_star env) in
  let dchain = decisions env (Zoo.chain_zero env) in
  let eba = Spec.is_eba (Spec.check dstar) in
  let optimal = Ch.is_optimal env dstar in
  let dominates = Dom.dominates dstar dchain in
  let closed_form = KB.pair_equal (Zoo.f_star env) (Zoo.f_star_direct env) in
  {
    id = "E12";
    claim = "Prop 6.6: F* is optimal omission EBA dominating FIP(Z0,O0)";
    setting = setting_of env;
    holds = eba && optimal && dominates && closed_form;
    detail =
      Printf.sprintf
        "EBA %b; optimal %b; dominates %b; closed form matches the generic two-step \
         construction %b (domination is non-strict at t=1: the chain protocol is \
         already optimal there)"
        eba optimal dominates closed_form;
  }

let experiments : (string * (scale -> outcome)) list =
  let fixed f _scale = f () in
  [
    ("E1", fixed e1); ("E2", fixed e2); ("E3", fixed e3); ("E4", fixed e4);
    ("E5", fixed e5); ("E6", fixed e6); ("E7", fixed e7); ("E8", fixed e8);
    ("E9", e9); ("E10", fixed e10); ("E11", fixed e11); ("E12", fixed e12);
  ]

let ids () = List.map fst experiments
let run ?(scale = Full) id = Option.map (fun f -> f scale) (List.assoc_opt id experiments)
let all ?(scale = Full) () = List.map (fun (_, f) -> f scale) experiments

let pp fmt o =
  Format.fprintf fmt "%-4s %s@\n     claim:   %s@\n     setting: %s@\n     detail:  %s@\n"
    o.id (if o.holds then "PASS" else "FAIL") o.claim o.setting o.detail

let pp_summary fmt outcomes =
  List.iter (pp fmt) outcomes;
  let passed = List.length (List.filter (fun o -> o.holds) outcomes) in
  Format.fprintf fmt "%d/%d experiments reproduce the paper's claims@\n" passed
    (List.length outcomes)

(* One line per experiment, nothing volatile: this is the surface the
   golden test diffs against test/golden/experiments.expected. *)
let pp_verdicts fmt outcomes =
  List.iter
    (fun o ->
      Format.fprintf fmt "%s %s | %s | %s@\n" o.id
        (if o.holds then "PASS" else "FAIL")
        o.claim o.setting)
    outcomes;
  let passed = List.length (List.filter (fun o -> o.holds) outcomes) in
  Format.fprintf fmt "total %d/%d PASS@\n" passed (List.length outcomes)
