(** The reproduction experiments (DESIGN.md E1–E12): one entry per
    proposition/theorem of the paper, each returning a structured verdict
    that the CLI prints and EXPERIMENTS.md records.

    The paper has no numeric tables; its "evaluation" is its theorems, so
    each experiment re-establishes one claim over exhaustively enumerated
    bounded models (with the model parameters recorded in the result). *)

type outcome = {
  id : string;  (** experiment id, e.g. "E7" *)
  claim : string;  (** the paper claim being reproduced *)
  setting : string;  (** models/universes the check ran over *)
  holds : bool;
  detail : string;  (** measured facts, incl. deviations from the paper *)
}

type scale = Small | Full
(** [Full] (the default) checks every claim at the sizes EXPERIMENTS.md
    records; [Small] substitutes the minimal instance exhibiting the same
    phenomenon for the one expensive fixture (E9's t=2 model drops from
    crash n=4 t=2 T=4 to n=3 t=2 T=4).  The golden regression test runs
    [Small] on every [dune runtest]. *)

val all : ?scale:scale -> unit -> outcome list
(** Runs every experiment (a few seconds of model building and
    model checking). *)

val run : ?scale:scale -> string -> outcome option
(** Run a single experiment by id ("E1" .. "E12"). *)

val ids : unit -> string list

val pp : Format.formatter -> outcome -> unit
val pp_summary : Format.formatter -> outcome list -> unit

val pp_verdicts : Format.formatter -> outcome list -> unit
(** Stable one-line-per-experiment verdicts ([id PASS/FAIL | claim |
    setting] plus a [total n/m PASS] footer) — the format pinned by
    [test/golden/experiments.expected]. *)
