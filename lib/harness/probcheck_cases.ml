module Net = Eba.Net
module Prob = Eba.Prob

let case ~n ~t ~latency ~loss () =
  let topology =
    Net.Topology.make ~n ~link:(Net.Link.make ~latency ~loss:0.0)
  in
  let sync = Net.Sync.default_for topology in
  Prob.Report.make ~n ~t ~rounds:(t + 1)
    ~loss:(Prob.Q.of_decimal_string loss)
    ~latency ~sync ()

let small = case ~n:4 ~t:1 ~latency:(Net.Link.Const 1.0) ~loss:"0.25"
let n64 = case ~n:64 ~t:8 ~latency:(Net.Link.Uniform (0.2, 1.0)) ~loss:"0.05"

let by_name = function
  | "small" -> Some (small ())
  | "n64" -> Some (n64 ())
  | _ -> None
