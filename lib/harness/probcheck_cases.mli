(** The pinned [eba probcheck] parameter sets shared by the golden tests,
    their regenerator, and the benchmark artifact's [prob] section — one
    constructor per surface so the committed JSON can never drift from
    what the library computes. *)

val small : unit -> Eba.Prob.Report.t
(** [n = 4, t = 1], constant latency 1.0, loss 0.25, default synchronizer
    timing: 8 attempts, per-message miss exactly 1/65536. *)

val n64 : unit -> Eba.Prob.Report.t
(** The committed benchmark row's parameters ([n = 64, t = 8], uniform
    latency 0.2..1.0, loss 0.05, default timing): per-message miss exactly
    1/25600000000 — the number EXPERIMENTS.md used to hand-derive as
    [p^8 ~ 4e-11]. *)

val by_name : string -> Eba.Prob.Report.t option
(** ["small"] or ["n64"]. *)
