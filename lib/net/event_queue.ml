type 'a cell = { ev_time : float; ev_seq : int; ev_payload : 'a }

type 'a t = {
  mutable heap : 'a cell array;  (* heap.(0) unused when len = 0 *)
  mutable len : int;
  mutable next_seq : int;
  mutable want : int;  (* requested capacity for the next allocation *)
}

let create () = { heap = [||]; len = 0; next_seq = 0; want = 0 }

let earlier a b =
  a.ev_time < b.ev_time || (a.ev_time = b.ev_time && a.ev_seq < b.ev_seq)

let grow q cell =
  let cap = Array.length q.heap in
  if q.len = cap then begin
    let heap = Array.make (max q.want (max 16 (2 * cap))) cell in
    q.want <- 0;
    Array.blit q.heap 0 heap 0 q.len;
    q.heap <- heap
  end

let reserve q n =
  if n < 0 then invalid_arg "Event_queue.reserve: negative capacity";
  if n > Array.length q.heap then
    if q.len = 0 then q.want <- max q.want n
    else begin
      (* 'a cell arrays need a seed element; any live cell works *)
      let heap = Array.make n q.heap.(0) in
      Array.blit q.heap 0 heap 0 q.len;
      q.heap <- heap
    end

let clear q =
  q.len <- 0;
  q.next_seq <- 0

let alloc_seq q =
  let s = q.next_seq in
  q.next_seq <- s + 1;
  s

let push q ~time payload =
  if not (Float.is_finite time) || time < 0.0 then
    invalid_arg "Event_queue.push: time must be finite and non-negative";
  let cell = { ev_time = time; ev_seq = q.next_seq; ev_payload = payload } in
  q.next_seq <- q.next_seq + 1;
  grow q cell;
  let heap = q.heap in
  (* sift up *)
  let i = ref q.len in
  q.len <- q.len + 1;
  heap.(!i) <- cell;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if earlier cell heap.(parent) then begin
      heap.(!i) <- heap.(parent);
      heap.(parent) <- cell;
      i := parent
    end
    else continue := false
  done

let pop q =
  if q.len = 0 then None
  else begin
    let heap = q.heap in
    let top = heap.(0) in
    q.len <- q.len - 1;
    let last = heap.(q.len) in
    if q.len > 0 then begin
      heap.(0) <- last;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.len && earlier heap.(l) heap.(!smallest) then smallest := l;
        if r < q.len && earlier heap.(r) heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = heap.(!i) in
          heap.(!i) <- heap.(!smallest);
          heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.ev_time, top.ev_payload)
  end

let peek_time q = if q.len = 0 then None else Some q.heap.(0).ev_time

let peek q =
  if q.len = 0 then None
  else
    let top = q.heap.(0) in
    Some (top.ev_time, top.ev_seq)
let is_empty q = q.len = 0
let size q = q.len
let pushed q = q.next_seq
