(** A deterministic discrete-event scheduler: a binary min-heap of events
    keyed by [(time, seqno)].

    The sequence number is assigned by {!push} in call order, so two events
    scheduled for the same instant pop in the order they were pushed —
    simulation outcomes are a pure function of the push sequence, never of
    heap internals.  Times must be finite and non-negative. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Schedule an event.  Raises [Invalid_argument] if [time] is negative or
    not finite. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event; ties break by push order. *)

val peek_time : 'a t -> float option

val is_empty : 'a t -> bool
val size : 'a t -> int
(** Events currently scheduled. *)

val pushed : 'a t -> int
(** Total number of pushes so far (the next event's sequence number). *)
