(** A deterministic discrete-event scheduler: a binary min-heap of events
    keyed by [(time, seqno)].

    The sequence number is assigned by {!push} in call order, so two events
    scheduled for the same instant pop in the order they were pushed —
    simulation outcomes are a pure function of the push sequence, never of
    heap internals.  Times must be finite and non-negative. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Schedule an event.  Raises [Invalid_argument] if [time] is negative or
    not finite. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event; ties break by push order. *)

val peek_time : 'a t -> float option

val peek : 'a t -> (float * int) option
(** The earliest event's [(time, seqno)] without removing it — lets an
    external event source (the mux engine's timer wheel) merge against the
    heap by the exact scheduling key. *)

val reserve : 'a t -> int -> unit
(** [reserve q n] pre-sizes the heap for at least [n] events, so pushes up
    to that capacity never copy through the intermediate arrays of repeated
    doubling.  On an empty queue the allocation is deferred to the first
    push (cells are not nullable); otherwise it happens immediately.  Never
    shrinks.  Raises [Invalid_argument] on a negative capacity. *)

val clear : 'a t -> unit
(** Drop every scheduled event and restart sequence numbers from 0,
    keeping the allocated capacity — the reuse entry point for engines
    that run many simulations through one queue.  Payload references
    survive in the backing array until overwritten by later pushes. *)

val is_empty : 'a t -> bool
val size : 'a t -> int
(** Events currently scheduled. *)

val pushed : 'a t -> int
(** Total number of pushes so far (the next event's sequence number). *)

val alloc_seq : 'a t -> int
(** Consume and return the next sequence number without scheduling
    anything.  External event sources (the mux engine's timer wheel) key
    their entries with sequence numbers from the same counter as the heap,
    so merging the two streams by [(time, seqno)] reproduces exactly the
    order a single all-heap schedule would have produced. *)
