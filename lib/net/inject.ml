module Params = Eba_sim.Params
module Pattern = Eba_sim.Pattern
module Bitset = Eba_util.Bitset

type dynamic = {
  dyn_max_faulty : int;
  dyn_omit_prob : float;
  dyn_partitions : int;
  dyn_partition_span : float;
}

let dynamic ?(omit_prob = 0.5) ?(partitions = 0) ?(partition_span = 0.0)
    ~max_faulty () =
  if max_faulty < 0 then invalid_arg "Inject.dynamic: max_faulty must be >= 0";
  if not (omit_prob >= 0.0 && omit_prob <= 1.0) then
    invalid_arg "Inject.dynamic: omit_prob outside [0, 1]";
  if partitions < 0 then invalid_arg "Inject.dynamic: partitions must be >= 0";
  if partitions > 0 && not (partition_span > 0.0) then
    invalid_arg "Inject.dynamic: partitions need a positive span";
  {
    dyn_max_faulty = max_faulty;
    dyn_omit_prob = omit_prob;
    dyn_partitions = partitions;
    dyn_partition_span = partition_span;
  }

type plan = Replay of Pattern.t | Dynamic of dynamic

let describe = function
  | Replay p -> Format.asprintf "replay %a" Pattern.pp p
  | Dynamic d ->
      Printf.sprintf "dynamic max_faulty=%d omit=%g partitions=%dx%g"
        d.dyn_max_faulty d.dyn_omit_prob d.dyn_partitions d.dyn_partition_span

type partition = { p_from : float; p_until : float; p_side : bool array }

type compiled =
  | C_replay of { pat : Pattern.t; rp_faulty : bool array }
  | C_dynamic of {
      mode : Params.mode;
      omit_prob : float;
      dy_faulty : bool array;
      crash_at : float option array;  (* crash mode only *)
      parts : partition list;
    }

(* [k] distinct processors, drawn in a fixed order. *)
let pick_faulty rng n k =
  let chosen = Array.make n false in
  let picked = ref 0 in
  while !picked < k do
    let p = Random.State.int rng n in
    if not chosen.(p) then begin
      chosen.(p) <- true;
      incr picked
    end
  done;
  chosen

let compile rng (params : Params.t) ~total_time = function
  | Replay pat ->
      let faulty = Pattern.faulty pat in
      C_replay
        {
          pat;
          rp_faulty = Array.init params.Params.n (fun i -> Bitset.mem i faulty);
        }
  | Dynamic d ->
      let n = params.Params.n in
      let f = Random.State.int rng (d.dyn_max_faulty + 1) in
      let dy_faulty = pick_faulty rng n (min f n) in
      let crash_at = Array.make n None in
      (match params.Params.mode with
      | Params.Crash ->
          Array.iteri
            (fun p is_faulty ->
              if is_faulty then
                crash_at.(p) <- Some (Random.State.float rng total_time))
            dy_faulty
      | Params.Omission | Params.General_omission -> ());
      let parts =
        List.init d.dyn_partitions (fun _ ->
            let from = Random.State.float rng total_time in
            {
              p_from = from;
              p_until = from +. d.dyn_partition_span;
              p_side = Array.init n (fun _ -> Random.State.bool rng);
            })
      in
      C_dynamic
        { mode = params.Params.mode; omit_prob = d.dyn_omit_prob; dy_faulty; crash_at; parts }

let faulty = function
  | C_replay r -> Array.copy r.rp_faulty
  | C_dynamic d -> Array.copy d.dy_faulty

let crash_time c ~proc =
  match c with C_replay _ -> None | C_dynamic d -> d.crash_at.(proc)

let dead c ~now ~proc =
  match c with
  | C_replay _ -> false
  | C_dynamic d -> (
      match d.crash_at.(proc) with Some t -> now >= t | None -> false)

let blocks_send c rng ~round ~sender ~receiver =
  match c with
  | C_replay r -> not (Pattern.delivers r.pat ~round ~sender ~receiver)
  | C_dynamic d -> (
      match d.mode with
      | Params.Crash -> false  (* crashes silence the node itself *)
      | Params.Omission ->
          d.dy_faulty.(sender)
          && d.omit_prob > 0.0
          && Random.State.float rng 1.0 < d.omit_prob
      | Params.General_omission ->
          (d.dy_faulty.(sender) || d.dy_faulty.(receiver))
          && d.omit_prob > 0.0
          && Random.State.float rng 1.0 < d.omit_prob)

let cut c ~now ~src ~dst =
  match c with
  | C_replay _ -> false
  | C_dynamic d ->
      List.exists
        (fun p ->
          now >= p.p_from && now < p.p_until && p.p_side.(src) <> p.p_side.(dst))
        d.parts
