(** Fault injection for the network simulator.

    Two kinds of adversary:

    - {b Replay}: a static {!Eba_sim.Pattern.t} — the semantic layer's
      notion of a run — re-enacted at the network: a copy of a round-[k]
      message from [s] to [d] (first transmission or retransmission) is
      dropped in flight exactly when the pattern says the message is not
      delivered.  Under a loss-free topology this reproduces the lockstep
      {!Eba_protocols.Runner} deliveries exactly — the differential hook.

    - {b Dynamic}: adversaries the enumerated universes cannot reach —
      crash times drawn uniformly over the whole simulated run (so nodes
      die mid-protocol, silencing retransmissions), per-copy message
      omission by faulty processors, and transient network partitions that
      cut data and acks alike across a random bipartition.

    Compilation draws every random choice from the caller's seeded
    [Random.State.t] in a fixed order, keeping runs reproducible. *)

module Params = Eba_sim.Params
module Pattern = Eba_sim.Pattern

type dynamic = {
  dyn_max_faulty : int;  (** actual faulty count drawn uniformly in [0..max] *)
  dyn_omit_prob : float;
      (** omission modes: probability a faulty processor's copy is omitted *)
  dyn_partitions : int;  (** transient partitions per run *)
  dyn_partition_span : float;  (** duration of each partition *)
}

val dynamic :
  ?omit_prob:float -> ?partitions:int -> ?partition_span:float -> max_faulty:int ->
  unit -> dynamic
(** Defaults: [omit_prob = 0.5], [partitions = 0], [partition_span = 0].
    Raises [Invalid_argument] on negative counts or probabilities outside
    [[0, 1]]. *)

type plan = Replay of Pattern.t | Dynamic of dynamic

val describe : plan -> string
(** A short human-readable description for telemetry records. *)

type compiled

val compile : Random.State.t -> Params.t -> total_time:float -> plan -> compiled
(** Draws the run's concrete adversary.  [total_time] bounds crash times
    and partition starts ([horizon * round_duration] in practice). *)

val faulty : compiled -> bool array
(** The processors this run's adversary makes faulty. *)

val crash_time : compiled -> proc:int -> float option
(** Dynamic crash-mode only: the simulated instant the processor dies. *)

val dead : compiled -> now:float -> proc:int -> bool
(** Has the processor crashed (dynamic mode)?  Dead processors neither
    send, acknowledge, nor step their protocol state.  Replayed patterns
    never kill a node — the pattern already encodes its silence, and the
    runner's crash semantics keep the state machine observing. *)

val blocks_send : compiled -> Random.State.t -> round:int -> sender:int -> receiver:int -> bool
(** Is this copy suppressed by a processor fault?  Deterministic per
    message for replayed patterns; sampled per copy for dynamic omission. *)

val cut : compiled -> now:float -> src:int -> dst:int -> bool
(** Is the wire between the two endpoints severed by a partition at
    [now]?  Applies to data and acknowledgement copies alike. *)
