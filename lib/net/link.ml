type latency =
  | Const of float
  | Uniform of float * float
  | Spike of { base : float; prob : float; spike : float }

let check_lat = function
  | Const c ->
      if not (Float.is_finite c) || c < 0.0 then
        invalid_arg "Link: constant latency must be finite and >= 0"
  | Uniform (lo, hi) ->
      if not (Float.is_finite lo && Float.is_finite hi) || lo < 0.0 || hi < lo then
        invalid_arg "Link: uniform latency needs 0 <= lo <= hi"
  | Spike { base; prob; spike } ->
      if not (Float.is_finite base && Float.is_finite spike)
         || base < 0.0 || spike < base
      then invalid_arg "Link: spike latency needs 0 <= base <= spike";
      if not (prob >= 0.0 && prob <= 1.0) then
        invalid_arg "Link: spike probability outside [0, 1]"

let latency_of_string s =
  let fail () = invalid_arg (Printf.sprintf "Link: cannot parse latency spec %S" s) in
  let float_of x = match float_of_string_opt (String.trim x) with
    | Some f -> f
    | None -> fail ()
  in
  let lat =
    match String.index_opt s ':' with
    | None -> fail ()
    | Some i ->
        let kind = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        let args = String.split_on_char ',' rest in
        (match (String.lowercase_ascii kind, args) with
        | "const", [ c ] -> Const (float_of c)
        | "uniform", [ lo; hi ] -> Uniform (float_of lo, float_of hi)
        | "spike", [ base; prob; spike ] ->
            Spike { base = float_of base; prob = float_of prob; spike = float_of spike }
        | _ -> fail ())
  in
  check_lat lat;
  lat

let latency_to_string = function
  | Const c -> Printf.sprintf "const:%g" c
  | Uniform (lo, hi) -> Printf.sprintf "uniform:%g,%g" lo hi
  | Spike { base; prob; spike } -> Printf.sprintf "spike:%g,%g,%g" base prob spike

let sample_latency rng = function
  | Const c -> c
  | Uniform (lo, hi) -> if hi = lo then lo else lo +. Random.State.float rng (hi -. lo)
  | Spike { base; prob; spike } ->
      if prob > 0.0 && Random.State.float rng 1.0 < prob then spike else base

let latency_bound = function
  | Const c -> c
  | Uniform (_, hi) -> hi
  | Spike { spike; _ } -> spike

type t = { lat : latency; loss : float }

let make ~latency ~loss =
  check_lat latency;
  if not (loss >= 0.0 && loss < 1.0) then
    invalid_arg "Link: loss probability outside [0, 1)";
  { lat = latency; loss }

let pp fmt l =
  Format.fprintf fmt "%s loss=%g" (latency_to_string l.lat) l.loss
