(** Per-link behaviour: a latency model plus an independent per-transmission
    drop probability.

    All sampling is driven by the caller's [Random.State.t], so a link's
    behaviour in a run is a pure function of the run's seed.  Times are in
    abstract simulated seconds. *)

(** One-way latency models for a single message copy. *)
type latency =
  | Const of float  (** every copy takes exactly this long *)
  | Uniform of float * float  (** uniform in [[lo, hi]] *)
  | Spike of { base : float; prob : float; spike : float }
      (** [base] normally; with probability [prob] a slow [spike] copy
          (queueing burst / reroute) *)

val latency_of_string : string -> latency
(** Parses a CLI latency spec: [const:C], [uniform:LO,HI] or
    [spike:BASE,PROB,SPIKE].  Raises [Invalid_argument] on malformed specs
    or non-positive/ill-ordered parameters. *)

val latency_to_string : latency -> string
(** Inverse of {!latency_of_string} (canonical form). *)

val sample_latency : Random.State.t -> latency -> float

val latency_bound : latency -> float
(** An inclusive upper bound on {!sample_latency} — what the synchronizer's
    timing rules are validated against. *)

type t = { lat : latency; loss : float }
(** A directed link.  [loss] is the probability an individual copy (first
    transmission or retransmission, data or ack) is dropped in flight. *)

val make : latency:latency -> loss:float -> t
(** Raises [Invalid_argument] unless [0 <= loss < 1]. *)

val pp : Format.formatter -> t -> unit
