module Params = Eba_sim.Params

let auto_live ~runs = max 1 (min 16 runs)
module Config = Eba_sim.Config
module Value = Eba_sim.Value
module Metrics = Eba_util.Metrics
module Parallel = Eba_util.Parallel

(* the sequential engine's counters, shared by name so a mux sweep and a
   one-at-a-time sweep report identical net.* totals *)
let m_runs = Metrics.counter "net.runs_simulated"
let m_events = Metrics.counter "net.events_processed"
let m_copies = Metrics.counter "net.copies_sent"
let m_retrans = Metrics.counter "net.retransmissions"
let m_acks = Metrics.counter "net.acks_sent"
let m_delivered = Metrics.counter "net.messages_delivered"
let m_dropped = Metrics.counter "net.copies_dropped"
let m_bytes = Metrics.counter "net.data_bytes"

(* mux-specific accounting: every count is a pure function of the
   workload, so the amortization is asserted, not inferred *)
let m_mux_ticks = Metrics.counter "mux.timer_ticks"
let m_mux_batched = Metrics.counter "mux.batched_deliveries"
let m_mux_arena = Metrics.counter "mux.arena_reuses"
let g_mux_live = Metrics.gauge "mux.live_instances"

let ns_of_seconds = Net_stats.ns_of_seconds

module Make (P : Eba_protocols.Protocol_intf.PROTOCOL) = struct
  module N = Node.Make (P)

  (* A retransmission timer.  Mutable throughout so one record re-arms in
     place across its retry ladder and recycles through the free list
     across instances and waves. *)
  type timer = {
    mutable tm_inst : int;
    mutable tm_round : int;
    mutable tm_sender : int;
    mutable tm_dest : int;
    mutable tm_copy : int;
    mutable tm_bytes : int;
    mutable tm_msg : P.msg;
  }

  (* All copies (data and acks) landing at one (instance, instant) under a
     uniform constant-latency fabric, stored struct-of-arrays in append
     order.  One heap cell replaces them all; see [batchable] for why this
     is only sound at non-tick instants. *)
  type batch = {
    mutable bt_inst : int;
    mutable bt_dn : int;
    mutable bt_dround : int array;
    mutable bt_dsender : int array;
    mutable bt_ddest : int array;
    mutable bt_dbytes : int array;
    mutable bt_dmsg : P.msg array;
    mutable bt_an : int;
    mutable bt_around : int array;
    mutable bt_afrom : int array;
    mutable bt_ato : int array;
  }

  type ev =
    | Deliver of {
        v_inst : int;
        v_round : int;
        v_sender : int;
        v_dest : int;
        v_bytes : int;
        v_msg : P.msg;
      }
    | Ack of { k_inst : int; k_round : int; k_from : int; k_to : int }
    | Batch of batch
    | Heap_timer of timer
        (* defensive fallback: a fire instant that missed the tick
           schedule (float absorption) rides the heap — same (time, seq)
           key, same semantics *)

  type engine = {
    eg_params : Params.t;
    eg_sync : Sync.t;
    eg_topology : Topology.t;
    eg_plan : Inject.plan;
    eg_live : int;
    eg_total : float;  (* horizon * round_duration, the compile bound *)
    eg_round_end : float array;  (* index by round, 0 .. horizon *)
    eg_is_boundary : bool array;  (* per tick *)
    eg_tick_round : int array;  (* boundary index k, or retry round *)
    eg_wheel : timer Timer_wheel.t;
    eg_q : ev Event_queue.t;
    eg_ulink : Link.t option;  (* the one link, when no overrides *)
    eg_batching : bool;  (* uniform link with Const latency *)
    (* per-instance arenas, all recycled across waves *)
    eg_nodes : N.t array array;
    eg_wire : Net_stats.wire array;
    eg_rng : Random.State.t array;
    eg_inj : Inject.compiled array;
    eg_cfg : Config.t array;
    eg_att : int array;
    eg_del : int array;
    eg_evt : int array;
    (* per-instance cache of open batches: parallel (arrival, batch) *)
    eg_bc_time : float array;  (* live * bc_slots *)
    eg_bc : batch array;
    eg_bc_next : int array;
    (* free lists *)
    mutable eg_free_timers : timer list;
    mutable eg_free_batches : batch list;
    (* wave-local accounting, flushed to Metrics per wave *)
    mutable eg_waves : int;
    mutable eg_ticks_fired : int;
    mutable eg_batched : int;
    mutable eg_reuses : int;
  }

  let bc_slots = 4

  let dummy_batch =
    {
      bt_inst = -1;
      bt_dn = 0;
      bt_dround = [||];
      bt_dsender = [||];
      bt_ddest = [||];
      bt_dbytes = [||];
      bt_dmsg = [||];
      bt_an = 0;
      bt_around = [||];
      bt_afrom = [||];
      bt_ato = [||];
    }

  (* The tick schedule: every instant a boundary or retransmission timer
     can fire, for any instance — all instances share the synchronizer.
     Mirrors the sequential engine's float arithmetic exactly: boundaries
     at [k *. d]; a round's retry ladder accumulates by repeated [+. rto]
     from the opening boundary, armed only while the next fire stays
     strictly inside the window. *)
  let tick_schedule (params : Params.t) (sync : Sync.t) =
    let d = sync.Sync.round_duration and rto = sync.Sync.rto in
    let horizon = params.Params.horizon in
    let acc = ref [] in
    for k = 0 to horizon do
      acc := (float_of_int k *. d, true, k) :: !acc;
      if k < horizon then begin
        let r = k + 1 in
        let e = float_of_int r *. d in
        let fire = ref (float_of_int k *. d) in
        let c = ref 0 in
        while !c < sync.Sync.max_retries && !fire +. rto < e do
          fire := !fire +. rto;
          acc := (!fire, false, r) :: !acc;
          incr c
        done
      end
    done;
    let all = Array.of_list (List.rev !acc) in
    ( Array.map (fun (t, _, _) -> t) all,
      Array.map (fun (_, b, _) -> b) all,
      Array.map (fun (_, _, r) -> r) all )

  let create (params : Params.t) ~sync ~topology ~plan ~live =
    if live < 1 then invalid_arg "Mux.create: live must be >= 1";
    Sync.check sync topology;
    if Topology.n topology <> params.Params.n then
      invalid_arg "Mux: topology size does not match params";
    let n = params.Params.n and horizon = params.Params.horizon in
    let d = sync.Sync.round_duration in
    let times, is_boundary, tick_round = tick_schedule params sync in
    let ulink = Topology.uniform_link topology in
    let batching =
      match ulink with
      | Some { Link.lat = Link.Const _; _ } -> true
      | Some _ | None -> false
    in
    let dummy_rng = Random.State.make [| 0 |] in
    let total = float_of_int horizon *. d in
    {
      eg_params = params;
      eg_sync = sync;
      eg_topology = topology;
      eg_plan = plan;
      eg_live = live;
      eg_total = total;
      eg_round_end = Array.init (horizon + 1) (fun r -> float_of_int r *. d);
      eg_is_boundary = is_boundary;
      eg_tick_round = tick_round;
      eg_wheel = Timer_wheel.create ~times;
      eg_q = Event_queue.create ();
      eg_ulink = ulink;
      eg_batching = batching;
      eg_nodes =
        Array.init live (fun _ ->
            Array.init n (fun p -> N.create params ~me:p Value.Zero ~sim_time:0.0));
      eg_wire = Array.init live (fun _ -> Net_stats.fresh_wire ());
      eg_rng = Array.make live dummy_rng;
      eg_inj =
        Array.make live
          (Inject.compile dummy_rng params ~total_time:total plan);
      eg_cfg = Array.make live (Config.make (Array.make n Value.Zero));
      eg_att = Array.make live 0;
      eg_del = Array.make live 0;
      eg_evt = Array.make live 0;
      eg_bc_time = Array.make (live * bc_slots) neg_infinity;
      eg_bc = Array.make (live * bc_slots) dummy_batch;
      eg_bc_next = Array.make live 0;
      eg_free_timers = [];
      eg_free_batches = [];
      eg_waves = 0;
      eg_ticks_fired = 0;
      eg_batched = 0;
      eg_reuses = 0;
    }

  (* -- timers ---------------------------------------------------------- *)

  let alloc_timer eng ~inst ~round ~sender ~dest ~copy ~bytes msg =
    match eng.eg_free_timers with
    | tm :: rest ->
        eng.eg_free_timers <- rest;
        tm.tm_inst <- inst;
        tm.tm_round <- round;
        tm.tm_sender <- sender;
        tm.tm_dest <- dest;
        tm.tm_copy <- copy;
        tm.tm_bytes <- bytes;
        tm.tm_msg <- msg;
        tm
    | [] ->
        {
          tm_inst = inst;
          tm_round = round;
          tm_sender = sender;
          tm_dest = dest;
          tm_copy = copy;
          tm_bytes = bytes;
          tm_msg = msg;
        }

  (* arena accounting counts returns and in-place recycles — pure
     per-wave functions of the workload, unlike free-list hit rates,
     which depend on how waves distribute over worker engines *)
  let free_timer eng tm =
    eng.eg_reuses <- eng.eg_reuses + 1;
    eng.eg_free_timers <- tm :: eng.eg_free_timers

  (* Arm a timer at [time].  In the sequential engine this is a heap push,
     consuming one sequence number — the wheel draws the same number from
     the shared counter so the merged order is identical. *)
  let arm eng tm ~time =
    match Timer_wheel.index_of_time eng.eg_wheel time with
    | Some tick when tick >= Timer_wheel.cursor eng.eg_wheel ->
        Timer_wheel.schedule eng.eg_wheel ~tick
          ~seq:(Event_queue.alloc_seq eng.eg_q)
          tm
    | Some _ | None -> Event_queue.push eng.eg_q ~time (Heap_timer tm)

  (* -- batches --------------------------------------------------------- *)

  let alloc_batch eng inst =
    let b =
      match eng.eg_free_batches with
      | b :: rest ->
          eng.eg_free_batches <- rest;
          b
      | [] ->
          {
            bt_inst = inst;
            bt_dn = 0;
            bt_dround = [||];
            bt_dsender = [||];
            bt_ddest = [||];
            bt_dbytes = [||];
            bt_dmsg = [||];
            bt_an = 0;
            bt_around = [||];
            bt_afrom = [||];
            bt_ato = [||];
          }
    in
    b.bt_inst <- inst;
    b.bt_dn <- 0;
    b.bt_an <- 0;
    b

  let free_batch eng b =
    eng.eg_reuses <- eng.eg_reuses + 1;
    eng.eg_free_batches <- b :: eng.eg_free_batches

  (* An open batch for this (instance, arrival instant), creating and
     scheduling one if none is cached.  Stale cache entries can never
     collide: an open batch's instant is strictly in the future, and the
     wave reset wipes the cache before simulated time restarts. *)
  let batch_at eng inst ~now ~arrival =
    ignore now;
    let base = inst * bc_slots in
    let rec scan j =
      if j = bc_slots then None
      else if eng.eg_bc_time.(base + j) = arrival then Some eng.eg_bc.(base + j)
      else scan (j + 1)
    in
    match scan 0 with
    | Some b -> b
    | None ->
        let b = alloc_batch eng inst in
        Event_queue.push eng.eg_q ~time:arrival (Batch b);
        let slot = eng.eg_bc_next.(inst) in
        eng.eg_bc_time.(base + slot) <- arrival;
        eng.eg_bc.(base + slot) <- b;
        eng.eg_bc_next.(inst) <- (slot + 1) mod bc_slots;
        b

  let push_int a len v =
    let cap = Array.length !a in
    if len = cap then begin
      let na = Array.make (max 8 (2 * cap)) 0 in
      Array.blit !a 0 na 0 len;
      a := na
    end;
    !a.(len) <- v

  let push_msg a len (v : P.msg) =
    let cap = Array.length !a in
    if len = cap then begin
      let na = Array.make (max 8 (2 * cap)) v in
      Array.blit !a 0 na 0 len;
      a := na
    end;
    !a.(len) <- v

  let batch_deliver b ~round ~sender ~dest ~bytes msg =
    let len = b.bt_dn in
    let r = ref b.bt_dround in
    push_int r len round;
    b.bt_dround <- !r;
    let r = ref b.bt_dsender in
    push_int r len sender;
    b.bt_dsender <- !r;
    let r = ref b.bt_ddest in
    push_int r len dest;
    b.bt_ddest <- !r;
    let r = ref b.bt_dbytes in
    push_int r len bytes;
    b.bt_dbytes <- !r;
    let r = ref b.bt_dmsg in
    push_msg r len msg;
    b.bt_dmsg <- !r;
    b.bt_dn <- len + 1

  let batch_ack b ~round ~from ~to_ =
    let len = b.bt_an in
    let r = ref b.bt_around in
    push_int r len round;
    b.bt_around <- !r;
    let r = ref b.bt_afrom in
    push_int r len from;
    b.bt_afrom <- !r;
    let r = ref b.bt_ato in
    push_int r len to_;
    b.bt_ato <- !r;
    b.bt_an <- len + 1

  (* Batching one (instance, instant)'s arrivals is sound exactly when no
     interleaved same-instance event at that instant can observe the
     reordering: the instant must not be a tick (no boundary closes the
     round, no timer reads the ack flags there), and the fabric must be
     uniform Const (so every same-instant data copy rides the batch and
     their relative order — the rng draw order — is append order; acks
     draw nothing and only set idempotent flags, so they commute and
     drain after the data copies). *)
  let batchable eng ~now ~arrival =
    eng.eg_batching && arrival > now
    && Timer_wheel.index_of_time eng.eg_wheel arrival = None

  (* -- the per-copy hot path ------------------------------------------- *)

  let link_of eng ~src ~dst =
    match eng.eg_ulink with
    | Some l -> l
    | None -> Topology.link eng.eg_topology ~src ~dst

  let transmit eng inst ~now ~round ~sender ~dest ~copy ~bytes msg =
    let wire = eng.eg_wire.(inst) in
    let rng = eng.eg_rng.(inst) in
    let inj = eng.eg_inj.(inst) in
    wire.Net_stats.w_copies <- wire.Net_stats.w_copies + 1;
    wire.Net_stats.w_data_bytes <- wire.Net_stats.w_data_bytes + bytes;
    if copy > 0 then
      wire.Net_stats.w_retransmissions <- wire.Net_stats.w_retransmissions + 1;
    if Inject.blocks_send inj rng ~round ~sender ~receiver:dest then
      wire.Net_stats.w_dropped_fault <- wire.Net_stats.w_dropped_fault + 1
    else if Inject.cut inj ~now ~src:sender ~dst:dest then
      wire.Net_stats.w_dropped_cut <- wire.Net_stats.w_dropped_cut + 1
    else
      let link = link_of eng ~src:sender ~dst:dest in
      if link.Link.loss > 0.0 && Random.State.float rng 1.0 < link.Link.loss then
        wire.Net_stats.w_dropped_loss <- wire.Net_stats.w_dropped_loss + 1
      else begin
        let l = Link.sample_latency rng link.Link.lat in
        let ns = ns_of_seconds l in
        wire.Net_stats.w_latency_ns_sum <- wire.Net_stats.w_latency_ns_sum + ns;
        if ns > wire.Net_stats.w_latency_ns_max then
          wire.Net_stats.w_latency_ns_max <- ns;
        let bucket =
          min
            (Net_stats.hist_buckets - 1)
            (int_of_float
               (float_of_int Net_stats.hist_buckets
               *. l
               /. eng.eg_sync.Sync.round_duration))
        in
        wire.Net_stats.w_latency_hist.(bucket) <-
          wire.Net_stats.w_latency_hist.(bucket) + 1;
        let arrival = now +. l in
        if batchable eng ~now ~arrival then
          batch_deliver
            (batch_at eng inst ~now ~arrival)
            ~round ~sender ~dest ~bytes msg
        else
          Event_queue.push eng.eg_q ~time:arrival
            (Deliver
               {
                 v_inst = inst;
                 v_round = round;
                 v_sender = sender;
                 v_dest = dest;
                 v_bytes = bytes;
                 v_msg = msg;
               })
      end

  let send_ack eng inst ~now ~round ~from ~to_ =
    let wire = eng.eg_wire.(inst) in
    let rng = eng.eg_rng.(inst) in
    let inj = eng.eg_inj.(inst) in
    wire.Net_stats.w_acks <- wire.Net_stats.w_acks + 1;
    wire.Net_stats.w_ack_bytes <-
      wire.Net_stats.w_ack_bytes + Eba_protocols.Protocol_intf.Wire.header;
    if Inject.cut inj ~now ~src:from ~dst:to_ then
      wire.Net_stats.w_dropped_cut <- wire.Net_stats.w_dropped_cut + 1
    else
      let link = link_of eng ~src:from ~dst:to_ in
      if link.Link.loss > 0.0 && Random.State.float rng 1.0 < link.Link.loss then
        wire.Net_stats.w_dropped_loss <- wire.Net_stats.w_dropped_loss + 1
      else
        let l = Link.sample_latency rng link.Link.lat in
        let arrival = now +. l in
        if batchable eng ~now ~arrival then
          batch_ack (batch_at eng inst ~now ~arrival) ~round ~from ~to_
        else
          Event_queue.push eng.eg_q ~time:arrival
            (Ack { k_inst = inst; k_round = round; k_from = from; k_to = to_ })

  let deliver eng inst ~now ~round ~sender ~dest ~bytes msg =
    let wire = eng.eg_wire.(inst) in
    let inj = eng.eg_inj.(inst) in
    if Inject.dead inj ~now ~proc:dest then
      wire.Net_stats.w_to_dead <- wire.Net_stats.w_to_dead + 1
    else
      match N.accept eng.eg_nodes.(inst).(dest) ~round ~sender ~bytes msg with
      | `Fresh ->
          eng.eg_del.(inst) <- eng.eg_del.(inst) + 1;
          wire.Net_stats.w_delivered_bytes <-
            wire.Net_stats.w_delivered_bytes + bytes;
          send_ack eng inst ~now ~round ~from:dest ~to_:sender
      | `Duplicate ->
          wire.Net_stats.w_duplicates <- wire.Net_stats.w_duplicates + 1;
          send_ack eng inst ~now ~round ~from:dest ~to_:sender
      | `Late -> wire.Net_stats.w_late <- wire.Net_stats.w_late + 1

  let timer_fire eng ~now tm =
    let inst = tm.tm_inst in
    eng.eg_evt.(inst) <- eng.eg_evt.(inst) + 1;
    let node = eng.eg_nodes.(inst).(tm.tm_sender) in
    let inj = eng.eg_inj.(inst) in
    if
      (not (Inject.dead inj ~now ~proc:tm.tm_sender))
      && N.round node = tm.tm_round
      && not (N.acked node ~dest:tm.tm_dest)
    then begin
      transmit eng inst ~now ~round:tm.tm_round ~sender:tm.tm_sender
        ~dest:tm.tm_dest ~copy:tm.tm_copy ~bytes:tm.tm_bytes tm.tm_msg;
      if
        tm.tm_copy < eng.eg_sync.Sync.max_retries
        && now +. eng.eg_sync.Sync.rto < eng.eg_round_end.(tm.tm_round)
      then begin
        (* re-arm the same record in place: one timer allocation per
           (sender, dest, round), however many retries it climbs *)
        tm.tm_copy <- tm.tm_copy + 1;
        eng.eg_reuses <- eng.eg_reuses + 1;
        arm eng tm ~time:(now +. eng.eg_sync.Sync.rto)
      end
      else free_timer eng tm
    end
    else free_timer eng tm

  let inst_boundary eng inst ~now k =
    let params = eng.eg_params in
    let n = params.Params.n and horizon = params.Params.horizon in
    let nodes = eng.eg_nodes.(inst) in
    let inj = eng.eg_inj.(inst) in
    eng.eg_evt.(inst) <- eng.eg_evt.(inst) + 1;
    if k >= 1 then
      Array.iter
        (fun node ->
          if not (Inject.dead inj ~now ~proc:(N.me node)) then
            N.finish_round params node ~sim_time:now)
        nodes;
    if k < horizon then begin
      let round = k + 1 in
      let round_end = eng.eg_round_end.(round) in
      Array.iter
        (fun node ->
          let i = N.me node in
          if not (Inject.dead inj ~now ~proc:i) then begin
            let out = N.start_round params node ~round in
            let sized = ref None in
            let size_of msg =
              match !sized with
              | Some (m, b) when m == msg -> b
              | _ ->
                  let b = P.wire_size params msg in
                  sized := Some (msg, b);
                  b
            in
            for dest = 0 to n - 1 do
              if dest <> i then
                match out.(dest) with
                | None -> ()
                | Some msg ->
                    eng.eg_att.(inst) <- eng.eg_att.(inst) + 1;
                    let bytes = size_of msg in
                    transmit eng inst ~now ~round ~sender:i ~dest ~copy:0 ~bytes
                      msg;
                    if
                      eng.eg_sync.Sync.max_retries > 0
                      && now +. eng.eg_sync.Sync.rto < round_end
                    then
                      arm eng
                        (alloc_timer eng ~inst ~round ~sender:i ~dest ~copy:1
                           ~bytes msg)
                        ~time:(now +. eng.eg_sync.Sync.rto)
            done
          end)
        nodes
    end

  let dispatch eng ~now ev =
    match ev with
    | Deliver { v_inst; v_round; v_sender; v_dest; v_bytes; v_msg } ->
        eng.eg_evt.(v_inst) <- eng.eg_evt.(v_inst) + 1;
        deliver eng v_inst ~now ~round:v_round ~sender:v_sender ~dest:v_dest
          ~bytes:v_bytes v_msg
    | Ack { k_inst; k_round; k_from; k_to } ->
        eng.eg_evt.(k_inst) <- eng.eg_evt.(k_inst) + 1;
        N.ack eng.eg_nodes.(k_inst).(k_to) ~round:k_round ~dest:k_from
    | Heap_timer tm -> timer_fire eng ~now tm
    | Batch b ->
        let inst = b.bt_inst in
        (* each batched copy is one simulated event, same as the
           sequential engine's per-copy cells *)
        eng.eg_evt.(inst) <- eng.eg_evt.(inst) + b.bt_dn + b.bt_an;
        eng.eg_batched <- eng.eg_batched + b.bt_dn + b.bt_an;
        (* data copies first, in append (= sequence) order — their rng
           draws must replay exactly; the draw-free acks commute and
           drain after *)
        for j = 0 to b.bt_dn - 1 do
          deliver eng inst ~now ~round:b.bt_dround.(j)
            ~sender:b.bt_dsender.(j) ~dest:b.bt_ddest.(j)
            ~bytes:b.bt_dbytes.(j) b.bt_dmsg.(j)
        done;
        for j = 0 to b.bt_an - 1 do
          N.ack
            eng.eg_nodes.(inst).(b.bt_ato.(j))
            ~round:b.bt_around.(j) ~dest:b.bt_afrom.(j)
        done;
        free_batch eng b

  let fire_boundary eng ~count tick =
    let now = Timer_wheel.time eng.eg_wheel tick in
    let k = eng.eg_tick_round.(tick) in
    for i = 0 to count - 1 do
      inst_boundary eng i ~now k
    done

  let process_heap eng =
    match Event_queue.pop eng.eg_q with
    | None -> ()
    | Some (now, ev) -> dispatch eng ~now ev

  (* The merged event loop.  Invariant: events are processed in exact
     global (time, seqno) order, except that (a) boundaries fire for all
     instances once every earlier event has drained — sound because in the
     sequential engine a boundary's sequence number is smaller than any
     same-instant event's — and (b) batches reorder only provably
     commuting same-instant arrivals.  Restricted to one instance, the
     processing order is therefore the sequential engine's, which is why
     outcomes are bit-identical. *)
  let drive eng ~count =
    let q = eng.eg_q and w = eng.eg_wheel in
    let continue = ref true in
    while !continue do
      let c = Timer_wheel.cursor w in
      if c < Timer_wheel.nticks w then begin
        let tc = Timer_wheel.time w c in
        match Event_queue.peek q with
        | Some (ht, _) when ht < tc -> process_heap eng
        | heap_top -> (
            if eng.eg_is_boundary.(c) then begin
              eng.eg_ticks_fired <- eng.eg_ticks_fired + 1;
              fire_boundary eng ~count c;
              Timer_wheel.advance w
            end
            else
              match Timer_wheel.peek w with
              | None -> Timer_wheel.advance w
              | Some (_, tseq) -> (
                  match heap_top with
                  | Some (ht, hseq) when ht = tc && hseq < tseq ->
                      process_heap eng
                  | _ ->
                      eng.eg_ticks_fired <- eng.eg_ticks_fired + 1;
                      timer_fire eng ~now:tc (Timer_wheel.take w)))
      end
      else
        match Event_queue.pop q with
        | None -> continue := false
        | Some (now, ev) -> dispatch eng ~now ev
    done

  let setup eng ~rng_of_run ~first i =
    let params = eng.eg_params in
    let n = params.Params.n in
    let rng = rng_of_run (first + i) in
    (* draw order per instance mirrors Netsim.sweep exactly: initial
       configuration first, then adversary compilation *)
    let config =
      Config.make
        (Array.init n (fun _ ->
             if Random.State.bool rng then Value.One else Value.Zero))
    in
    let inj = Inject.compile rng params ~total_time:eng.eg_total eng.eg_plan in
    eng.eg_rng.(i) <- rng;
    eng.eg_cfg.(i) <- config;
    eng.eg_inj.(i) <- inj;
    let nodes = eng.eg_nodes.(i) in
    for p = 0 to n - 1 do
      N.reset params nodes.(p) ~me:p (Config.value config p) ~sim_time:0.0
    done;
    Net_stats.wire_reset eng.eg_wire.(i);
    eng.eg_att.(i) <- 0;
    eng.eg_del.(i) <- 0;
    eng.eg_evt.(i) <- 0;
    let base = i * bc_slots in
    for j = 0 to bc_slots - 1 do
      eng.eg_bc_time.(base + j) <- neg_infinity;
      eng.eg_bc.(base + j) <- dummy_batch
    done;
    eng.eg_bc_next.(i) <- 0;
    (* the instance slot itself — nodes, wire record, tables — recycled
       in place rather than reallocated *)
    eng.eg_reuses <- eng.eg_reuses + 1

  let outcome_of eng i =
    let nodes = eng.eg_nodes.(i) in
    {
      Net_stats.o_decisions = Array.map N.decision nodes;
      o_decision_sim_ns =
        Array.map
          (fun node -> Option.map ns_of_seconds (N.decision_sim_time node))
          nodes;
      o_faulty = Inject.faulty eng.eg_inj.(i);
      o_unanimous = Config.all_equal eng.eg_cfg.(i);
      o_attempted = eng.eg_att.(i);
      o_delivered = eng.eg_del.(i);
      o_wire = eng.eg_wire.(i);
    }

  let run_wave eng ~rng_of_run ~first ~count ~consume =
    if count < 1 || count > eng.eg_live then
      invalid_arg "Mux.run_wave: count outside [1, live]";
    Event_queue.clear eng.eg_q;
    Timer_wheel.reset eng.eg_wheel;
    eng.eg_ticks_fired <- 0;
    eng.eg_batched <- 0;
    eng.eg_reuses <- 0;
    for i = 0 to count - 1 do
      setup eng ~rng_of_run ~first i
    done;
    drive eng ~count;
    let enabled = Metrics.enabled () in
    for i = 0 to count - 1 do
      if enabled then begin
        let wire = eng.eg_wire.(i) in
        Metrics.incr m_runs;
        Metrics.add m_events eng.eg_evt.(i);
        Metrics.add m_copies wire.Net_stats.w_copies;
        Metrics.add m_retrans wire.Net_stats.w_retransmissions;
        Metrics.add m_acks wire.Net_stats.w_acks;
        Metrics.add m_delivered eng.eg_del.(i);
        Metrics.add m_bytes wire.Net_stats.w_data_bytes;
        Metrics.add m_dropped
          (wire.Net_stats.w_dropped_fault + wire.Net_stats.w_dropped_loss
         + wire.Net_stats.w_dropped_cut)
      end;
      consume (first + i) (outcome_of eng i)
    done;
    if enabled then begin
      Metrics.add m_mux_ticks eng.eg_ticks_fired;
      Metrics.add m_mux_batched eng.eg_batched;
      Metrics.add m_mux_arena eng.eg_reuses;
      Metrics.record g_mux_live count
    end;
    eng.eg_waves <- eng.eg_waves + 1

  type sweep_acc = {
    sa_st : Net_stats.state;
    mutable sa_eng : engine option;
  }

  let sweep_state ?jobs ?cancel ?progress (params : Params.t) ~sync ~topology
      ~dynamic ~rng_of_run ~live ~runs =
    if live < 1 then invalid_arg "Mux.sweep_state: live must be >= 1";
    let plan = Inject.Dynamic dynamic in
    let waves = (runs + live - 1) / live in
    let init () = { sa_st = Net_stats.fresh_state (); sa_eng = None } in
    let fold acc wave =
      Eba_util.Cancel.check_opt cancel;
      let eng =
        match acc.sa_eng with
        | Some e -> e
        | None ->
            let e = create params ~sync ~topology ~plan ~live in
            acc.sa_eng <- Some e;
            e
      in
      let first = wave * live in
      let count = min live (runs - first) in
      run_wave eng ~rng_of_run ~first ~count ~consume:(fun _ o ->
          Net_stats.consume acc.sa_st o);
      match progress with None -> () | Some f -> f count
    in
    let merge a b = Net_stats.merge a.sa_st b.sa_st in
    let acc =
      (* one wave per work unit: waves are heavyweight and their results
         merge exactly, so distribution over domains is free of ordering
         effects *)
      Parallel.map_reduce_seq ?jobs ~chunk:1 ~init ~fold ~merge
        (Seq.init waves Fun.id)
    in
    acc.sa_st
end
