(** Massively multiplexed network simulation.

    Runs many independent protocol instances — each with its own seed,
    initial configuration and adversary plan, all sharing one topology and
    synchronizer — through a {e single} event loop over one shared
    {!Event_queue}.  Per-instance results are bit-identical to running
    {!Netsim.Make.run_one} once per instance, because restricted to any one
    instance the processing order (and hence that instance's rng draw
    sequence) is exactly the sequential engine's:

    - every event carries a sequence number from the one shared counter,
      and the loop processes strictly in global [(time, seqno)] order;
    - deterministic timers (round boundaries, retransmission ladders) live
      in a {!Timer_wheel} over the precomputed shared tick schedule instead
      of the heap, merged back by exact [(time, seqno)];
    - on a uniform constant-latency fabric, all copies landing at one
      (instance, instant) collapse into one batch cell and drain in append
      order — a reordering only of provably commuting events;
    - instance state (nodes, wire counters, timers, batch cells) recycles
      through arenas across waves, so steady-state allocation per run is
      near zero.

    Cross-instance interleaving never leaks between instances: instances
    share no mutable state, and the aggregate statistics are commutative
    sums.  The wave partition is a pure function of [(runs, live)], so
    sweeps are also independent of the parallel job count.

    Deterministic metrics: [mux.timer_ticks], [mux.batched_deliveries],
    [mux.arena_reuses] (counters) and [mux.live_instances] (peak gauge),
    alongside the same [net.*] counters the sequential engine reports. *)

module Params = Eba_sim.Params

val auto_live : runs:int -> int
(** The default wave size when the caller asks for multiplexing without
    picking one ([--mux auto]): throughput on one core peaks near 16
    live instances and decays as the resident working set grows (the
    PR 8 measurement recorded in BENCH_PR8.json), so [auto_live] is 16
    clamped to [[1, runs]].  Results are bit-identical for every wave
    size — this only picks the fast one. *)

module Make (P : Eba_protocols.Protocol_intf.PROTOCOL) : sig
  type engine
  (** The reusable arena: one timer wheel, one event queue, [live]
      instance slots.  Create once, run any number of waves. *)

  val create :
    Params.t ->
    sync:Sync.t ->
    topology:Topology.t ->
    plan:Inject.plan ->
    live:int ->
    engine
  (** Validates like the sequential engine ({!Sync.check}, topology
      width) and additionally requires the tick schedule to be strictly
      increasing (it always is for sane [rto]/[round_duration]). *)

  val run_wave :
    engine ->
    rng_of_run:(int -> Random.State.t) ->
    first:int ->
    count:int ->
    consume:(int -> Net_stats.outcome -> unit) ->
    unit
  (** Run instances [first .. first + count - 1] ([1 <= count <= live])
      concurrently through one event loop.  [rng_of_run run] must return
      a fresh generator for that run index (e.g. {!Netsim.run_seed});
      each instance draws its initial configuration and adversary from it
      in the same order as {!Netsim.sweep}.  [consume] is called once per
      instance in run order with an outcome bit-identical to the
      sequential engine's; the outcome's wire record is recycled after
      the callback returns, so consume it, don't keep it. *)

  val sweep_state :
    ?jobs:int ->
    ?cancel:Eba_util.Cancel.t ->
    ?progress:(int -> unit) ->
    Params.t ->
    sync:Sync.t ->
    topology:Topology.t ->
    dynamic:Inject.dynamic ->
    rng_of_run:(int -> Random.State.t) ->
    live:int ->
    runs:int ->
    Net_stats.state
  (** [runs] instances in waves of [live], folded into one
      {!Net_stats.state} — the mux counterpart of {!Netsim.sweep}'s
      accumulation loop (the caller renders the summary, keeping identity
      strings in one place).  Waves are distributed over [jobs] with one
      engine per worker; the result is independent of [jobs].

      [cancel] is polled once per wave: a fired token raises
      {!Eba_util.Cancel.Cancelled} out of the sweep within one wave per
      worker.  [progress] is called after each completed wave with the
      number of runs that wave finished (possibly from several domains
      concurrently — callers aggregate with an atomic). *)
end
