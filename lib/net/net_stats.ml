module Value = Eba_sim.Value
module Runner = Eba_protocols.Runner
module Json = Eba_util.Json

let hist_buckets = 16
let ns_of_seconds s = int_of_float ((s *. 1e9) +. 0.5)

type wire = {
  mutable w_copies : int;
  mutable w_retransmissions : int;
  mutable w_acks : int;
  mutable w_dropped_fault : int;
  mutable w_dropped_loss : int;
  mutable w_dropped_cut : int;
  mutable w_late : int;
  mutable w_duplicates : int;
  mutable w_to_dead : int;
  mutable w_data_bytes : int;
  mutable w_ack_bytes : int;
  mutable w_delivered_bytes : int;
  mutable w_latency_ns_sum : int;
  mutable w_latency_ns_max : int;
  w_latency_hist : int array;
}

let fresh_wire () =
  {
    w_copies = 0;
    w_retransmissions = 0;
    w_acks = 0;
    w_dropped_fault = 0;
    w_dropped_loss = 0;
    w_dropped_cut = 0;
    w_late = 0;
    w_duplicates = 0;
    w_to_dead = 0;
    w_data_bytes = 0;
    w_ack_bytes = 0;
    w_delivered_bytes = 0;
    w_latency_ns_sum = 0;
    w_latency_ns_max = 0;
    w_latency_hist = Array.make hist_buckets 0;
  }

let wire_reset w =
  w.w_copies <- 0;
  w.w_retransmissions <- 0;
  w.w_acks <- 0;
  w.w_dropped_fault <- 0;
  w.w_dropped_loss <- 0;
  w.w_dropped_cut <- 0;
  w.w_late <- 0;
  w.w_duplicates <- 0;
  w.w_to_dead <- 0;
  w.w_data_bytes <- 0;
  w.w_ack_bytes <- 0;
  w.w_delivered_bytes <- 0;
  w.w_latency_ns_sum <- 0;
  w.w_latency_ns_max <- 0;
  Array.fill w.w_latency_hist 0 hist_buckets 0

let wire_merge into from =
  into.w_copies <- into.w_copies + from.w_copies;
  into.w_retransmissions <- into.w_retransmissions + from.w_retransmissions;
  into.w_acks <- into.w_acks + from.w_acks;
  into.w_dropped_fault <- into.w_dropped_fault + from.w_dropped_fault;
  into.w_dropped_loss <- into.w_dropped_loss + from.w_dropped_loss;
  into.w_dropped_cut <- into.w_dropped_cut + from.w_dropped_cut;
  into.w_late <- into.w_late + from.w_late;
  into.w_duplicates <- into.w_duplicates + from.w_duplicates;
  into.w_to_dead <- into.w_to_dead + from.w_to_dead;
  into.w_data_bytes <- into.w_data_bytes + from.w_data_bytes;
  into.w_ack_bytes <- into.w_ack_bytes + from.w_ack_bytes;
  into.w_delivered_bytes <- into.w_delivered_bytes + from.w_delivered_bytes;
  into.w_latency_ns_sum <- into.w_latency_ns_sum + from.w_latency_ns_sum;
  into.w_latency_ns_max <- max into.w_latency_ns_max from.w_latency_ns_max;
  Array.iteri
    (fun i v -> into.w_latency_hist.(i) <- into.w_latency_hist.(i) + v)
    from.w_latency_hist

type outcome = {
  o_decisions : Runner.decision option array;
  o_decision_sim_ns : int option array;
  o_faulty : bool array;
  o_unanimous : Value.t option;
  o_attempted : int;
  o_delivered : int;
  o_wire : wire;
}

type state = {
  mutable s_runs : int;
  mutable s_agreement : int;
  mutable s_validity : int;
  mutable s_undecided : int;
  mutable s_decided : int;
  mutable s_round_sum : int;
  mutable s_round_max : int;
  mutable s_sim_ns_sum : int;
  mutable s_sim_ns_max : int;
  mutable s_attempted : int;
  mutable s_delivered : int;
  mutable s_faulty_runs : int;
  mutable s_round_hist : int array;
      (* s_round_hist.(r) = nonfaulty decisions at round r; grown on
         demand, trailing zeros allowed until summarized *)
  s_wire : wire;
}

let fresh_state () =
  {
    s_runs = 0;
    s_agreement = 0;
    s_validity = 0;
    s_undecided = 0;
    s_decided = 0;
    s_round_sum = 0;
    s_round_max = 0;
    s_sim_ns_sum = 0;
    s_sim_ns_max = 0;
    s_attempted = 0;
    s_delivered = 0;
    s_faulty_runs = 0;
    s_round_hist = [||];
    s_wire = fresh_wire ();
  }

let hist_incr st r =
  let len = Array.length st.s_round_hist in
  if r >= len then begin
    let a = Array.make (max (r + 1) (2 * len)) 0 in
    Array.blit st.s_round_hist 0 a 0 len;
    st.s_round_hist <- a
  end;
  st.s_round_hist.(r) <- st.s_round_hist.(r) + 1

let consume st o =
  st.s_runs <- st.s_runs + 1;
  st.s_attempted <- st.s_attempted + o.o_attempted;
  st.s_delivered <- st.s_delivered + o.o_delivered;
  if Array.exists Fun.id o.o_faulty then st.s_faulty_runs <- st.s_faulty_runs + 1;
  wire_merge st.s_wire o.o_wire;
  let seen = ref None and agreement_bad = ref false and validity_bad = ref false in
  Array.iteri
    (fun i faulty ->
      if not faulty then
        match o.o_decisions.(i) with
        | None -> st.s_undecided <- st.s_undecided + 1
        | Some { Runner.at; value } ->
            st.s_decided <- st.s_decided + 1;
            st.s_round_sum <- st.s_round_sum + at;
            hist_incr st at;
            if at > st.s_round_max then st.s_round_max <- at;
            (match o.o_decision_sim_ns.(i) with
            | Some ns ->
                st.s_sim_ns_sum <- st.s_sim_ns_sum + ns;
                if ns > st.s_sim_ns_max then st.s_sim_ns_max <- ns
            | None -> ());
            (match !seen with
            | None -> seen := Some value
            | Some v -> if not (Value.equal v value) then agreement_bad := true);
            (match o.o_unanimous with
            | Some v when not (Value.equal v value) -> validity_bad := true
            | Some _ | None -> ()))
    o.o_faulty;
  if !agreement_bad then st.s_agreement <- st.s_agreement + 1;
  if !validity_bad then st.s_validity <- st.s_validity + 1

let merge into from =
  into.s_runs <- into.s_runs + from.s_runs;
  into.s_agreement <- into.s_agreement + from.s_agreement;
  into.s_validity <- into.s_validity + from.s_validity;
  into.s_undecided <- into.s_undecided + from.s_undecided;
  into.s_decided <- into.s_decided + from.s_decided;
  into.s_round_sum <- into.s_round_sum + from.s_round_sum;
  into.s_round_max <- max into.s_round_max from.s_round_max;
  into.s_sim_ns_sum <- into.s_sim_ns_sum + from.s_sim_ns_sum;
  into.s_sim_ns_max <- max into.s_sim_ns_max from.s_sim_ns_max;
  into.s_attempted <- into.s_attempted + from.s_attempted;
  into.s_delivered <- into.s_delivered + from.s_delivered;
  into.s_faulty_runs <- into.s_faulty_runs + from.s_faulty_runs;
  (let flen = Array.length from.s_round_hist in
   if flen > Array.length into.s_round_hist then begin
     let a = Array.make flen 0 in
     Array.blit into.s_round_hist 0 a 0 (Array.length into.s_round_hist);
     into.s_round_hist <- a
   end;
   Array.iteri
     (fun r v -> into.s_round_hist.(r) <- into.s_round_hist.(r) + v)
     from.s_round_hist);
  wire_merge into.s_wire from.s_wire

type summary = {
  ns_protocol : string;
  ns_params : string;
  ns_seed : int;
  ns_plan : string;
  ns_topology : string;
  ns_sync : string;
  ns_runs : int;
  ns_agreement_violations : int;
  ns_validity_violations : int;
  ns_undecided_nonfaulty : int;
  ns_decided_nonfaulty : int;
  ns_decision_round_sum : int;
  ns_mean_decision_round : float;
  ns_max_decision_round : int;
  ns_decision_ns_sum : int;
  ns_mean_decision_ns : float;
  ns_max_decision_ns : int;
  ns_attempted : int;
  ns_delivered : int;
  ns_wire : wire;
  ns_faulty_runs : int;
  ns_round_hist : int array;
}

let summary_of_state ~protocol ~params ~seed ~plan ~topology ~sync st =
  (* canonical histogram: trimmed to the last nonzero bucket, so the
     summary is bit-identical whatever growth pattern the merges took *)
  let hist =
    let len = ref (Array.length st.s_round_hist) in
    while !len > 0 && st.s_round_hist.(!len - 1) = 0 do
      decr len
    done;
    Array.sub st.s_round_hist 0 !len
  in
  {
    ns_protocol = protocol;
    ns_params = params;
    ns_seed = seed;
    ns_plan = plan;
    ns_topology = topology;
    ns_sync = sync;
    ns_runs = st.s_runs;
    ns_agreement_violations = st.s_agreement;
    ns_validity_violations = st.s_validity;
    ns_undecided_nonfaulty = st.s_undecided;
    ns_decided_nonfaulty = st.s_decided;
    ns_decision_round_sum = st.s_round_sum;
    (* empty-mean convention (see {!Eba_protocols.Stats}): 0.0 when no
       nonfaulty processor decided, so the summary and its JSON stay
       finite on all-undecided sweeps *)
    ns_mean_decision_round =
      (if st.s_decided = 0 then 0.0
       else float_of_int st.s_round_sum /. float_of_int st.s_decided);
    ns_max_decision_round = st.s_round_max;
    ns_decision_ns_sum = st.s_sim_ns_sum;
    ns_mean_decision_ns =
      (if st.s_decided = 0 then 0.0
       else float_of_int st.s_sim_ns_sum /. float_of_int st.s_decided);
    ns_max_decision_ns = st.s_sim_ns_max;
    ns_attempted = st.s_attempted;
    ns_delivered = st.s_delivered;
    ns_wire = st.s_wire;
    ns_faulty_runs = st.s_faulty_runs;
    ns_round_hist = hist;
  }

let quantile_decision_round s ~permille =
  if permille < 0 || permille > 1000 then
    invalid_arg "Net_stats.quantile_decision_round: permille outside [0, 1000]";
  if s.ns_decided_nonfaulty = 0 then 0
  else begin
    (* smallest round r with 1000 * cumulative(r) >= permille * decided —
       exact integer arithmetic, no float rounding *)
    let target = permille * s.ns_decided_nonfaulty in
    let cum = ref 0 and r = ref 0 in
    while !r < Array.length s.ns_round_hist && 1000 * !cum < target do
      cum := !cum + s.ns_round_hist.(!r);
      if 1000 * !cum < target then incr r
    done;
    !r
  end

let p99_decision_round s = quantile_decision_round s ~permille:990

let pp fmt s =
  let w = s.ns_wire in
  Format.fprintf fmt
    "%s over %d runs (%s, seed=%d)@\n\
    \  plan: %s@\n\
    \  net:  %s, sync %s@\n\
    \  spec: agreement-violations=%d validity-violations=%d undecided=%d \
     decided=%d (%d faulty runs)@\n\
    \  decision: mean round %.2f, max round %d; mean sim %.3g s, max %.3g s@\n\
    \  protocol msgs: %d/%d delivered/attempted@\n\
    \  wire: %d copies (%d retransmissions), %d acks; dropped %d fault / %d \
     loss / %d cut; %d late, %d duplicates, %d to-dead@\n\
    \  bytes: %d data + %d acks on the wire, %d delivered fresh@\n\
    \  copy latency: mean %.3g s, max %.3g s"
    s.ns_protocol s.ns_runs s.ns_params s.ns_seed s.ns_plan s.ns_topology
    s.ns_sync s.ns_agreement_violations s.ns_validity_violations
    s.ns_undecided_nonfaulty s.ns_decided_nonfaulty s.ns_faulty_runs
    s.ns_mean_decision_round s.ns_max_decision_round
    (s.ns_mean_decision_ns /. 1e9)
    (float_of_int s.ns_max_decision_ns /. 1e9)
    s.ns_delivered s.ns_attempted w.w_copies w.w_retransmissions w.w_acks
    w.w_dropped_fault w.w_dropped_loss w.w_dropped_cut w.w_late w.w_duplicates
    w.w_to_dead w.w_data_bytes w.w_ack_bytes w.w_delivered_bytes
    (let flights = w.w_copies - w.w_dropped_fault - w.w_dropped_loss - w.w_dropped_cut in
     if flights = 0 then 0.0
     else float_of_int w.w_latency_ns_sum /. float_of_int flights /. 1e9)
    (float_of_int w.w_latency_ns_max /. 1e9)

let summary_json s =
  let w = s.ns_wire in
  Json.Obj
    [
      ("protocol", Json.String s.ns_protocol);
      ("params", Json.String s.ns_params);
      ("seed", Json.Int s.ns_seed);
      ("plan", Json.String s.ns_plan);
      ("topology", Json.String s.ns_topology);
      ("sync", Json.String s.ns_sync);
      ("runs", Json.Int s.ns_runs);
      ("agreement_violations", Json.Int s.ns_agreement_violations);
      ("validity_violations", Json.Int s.ns_validity_violations);
      ("undecided_nonfaulty", Json.Int s.ns_undecided_nonfaulty);
      ("decided_nonfaulty", Json.Int s.ns_decided_nonfaulty);
      ("decision_round_sum", Json.Int s.ns_decision_round_sum);
      ("max_decision_round", Json.Int s.ns_max_decision_round);
      ("decision_ns_sum", Json.Int s.ns_decision_ns_sum);
      ("max_decision_ns", Json.Int s.ns_max_decision_ns);
      ("faulty_runs", Json.Int s.ns_faulty_runs);
      ("messages_attempted", Json.Int s.ns_attempted);
      ("messages_delivered", Json.Int s.ns_delivered);
      ("copies", Json.Int w.w_copies);
      ("retransmissions", Json.Int w.w_retransmissions);
      ("acks", Json.Int w.w_acks);
      ("dropped_fault", Json.Int w.w_dropped_fault);
      ("dropped_loss", Json.Int w.w_dropped_loss);
      ("dropped_cut", Json.Int w.w_dropped_cut);
      ("late", Json.Int w.w_late);
      ("duplicates", Json.Int w.w_duplicates);
      ("to_dead", Json.Int w.w_to_dead);
      ("data_bytes", Json.Int w.w_data_bytes);
      ("ack_bytes", Json.Int w.w_ack_bytes);
      ("delivered_bytes", Json.Int w.w_delivered_bytes);
      ("latency_ns_sum", Json.Int w.w_latency_ns_sum);
      ("latency_ns_max", Json.Int w.w_latency_ns_max);
      ("latency_hist", Json.List (Array.to_list (Array.map (fun v -> Json.Int v) w.w_latency_hist)));
      ( "decision_round_hist",
        Json.List (Array.to_list (Array.map (fun v -> Json.Int v) s.ns_round_hist)) );
      ("p99_decision_round", Json.Int (p99_decision_round s));
    ]
