(** Telemetry for the network simulator: per-run outcomes and their
    aggregation into sweep summaries.

    Every accumulated quantity is an exact integer count, sum or max
    (simulated times are tracked in integer nanoseconds), so merging
    per-domain accumulators reproduces a sequential sweep bit for bit
    whatever the job count — the same discipline as
    {!Eba_protocols.Stats}.  Specification checks (agreement, validity,
    decision) quantify over the processors the run's adversary did {e not}
    make faulty, exactly as in the lockstep harness. *)

module Value = Eba_sim.Value
module Runner = Eba_protocols.Runner
module Json = Eba_util.Json

val ns_of_seconds : float -> int
(** Round a simulated duration in seconds to integer nanoseconds — the
    exact representation every accumulator uses. *)

val hist_buckets : int
(** Number of latency histogram buckets (copies binned by fraction of the
    round window: bucket [i] holds latencies in
    [[i/16, (i+1)/16) * round_duration], the last bucket catching
    everything slower). *)

type wire = {
  mutable w_copies : int;  (** data copies put on the wire, retransmits included *)
  mutable w_retransmissions : int;
  mutable w_acks : int;  (** acknowledgement copies put on the wire *)
  mutable w_dropped_fault : int;  (** suppressed by the injected adversary *)
  mutable w_dropped_loss : int;  (** lost to link loss *)
  mutable w_dropped_cut : int;  (** severed by a transient partition *)
  mutable w_late : int;  (** data copies arriving after their round closed *)
  mutable w_duplicates : int;  (** redelivery of an already-received message *)
  mutable w_to_dead : int;  (** copies arriving at a crashed node *)
  mutable w_data_bytes : int;
      (** exact {!Eba_protocols.Protocol_intf.PROTOCOL.wire_size} total of
          every data copy put on the wire, retransmits included — dropped
          copies count (they were transmitted), like {!w_copies} *)
  mutable w_ack_bytes : int;  (** ... of every acknowledgement copy *)
  mutable w_delivered_bytes : int;
      (** ... of the fresh deliveries only (duplicates and late excluded) *)
  mutable w_latency_ns_sum : int;  (** over in-flight data copies *)
  mutable w_latency_ns_max : int;
  w_latency_hist : int array;  (** length {!hist_buckets} *)
}

val fresh_wire : unit -> wire

val wire_reset : wire -> unit
(** Zero every field in place (histogram included) — the arena-reuse hook
    for engines that recycle one [wire] record across simulations. *)

type outcome = {
  o_decisions : Runner.decision option array;
      (** first output per processor, [at] in rounds — comparable to the
          lockstep runner's trace *)
  o_decision_sim_ns : int option array;  (** the simulated instant of it *)
  o_faulty : bool array;  (** processors the adversary made faulty *)
  o_unanimous : Value.t option;  (** the run's initial values, if all equal *)
  o_attempted : int;  (** protocol messages requested (not copies) *)
  o_delivered : int;  (** protocol messages that reached their destination *)
  o_wire : wire;
}

type state
(** A mergeable sweep accumulator. *)

val fresh_state : unit -> state
val consume : state -> outcome -> unit
val merge : state -> state -> unit
(** [merge into from] folds [from] into [into]. *)

type summary = {
  ns_protocol : string;
  ns_params : string;
  ns_seed : int;
  ns_plan : string;
  ns_topology : string;
  ns_sync : string;
      (** with the seed, everything needed to regenerate the sweep *)
  ns_runs : int;
  ns_agreement_violations : int;
  ns_validity_violations : int;
  ns_undecided_nonfaulty : int;
  ns_decided_nonfaulty : int;
  ns_decision_round_sum : int;  (** exact, for bit-identical comparisons *)
  ns_mean_decision_round : float;
      (** empty-mean convention: [0.0] when nothing decided, never NaN *)
  ns_max_decision_round : int;
  ns_decision_ns_sum : int;
  ns_mean_decision_ns : float;  (** same convention *)
  ns_max_decision_ns : int;
  ns_attempted : int;
  ns_delivered : int;
  ns_wire : wire;
  ns_faulty_runs : int;  (** runs where the adversary made someone faulty *)
  ns_round_hist : int array;
      (** decision-round histogram over nonfaulty decided processors:
          bucket [r] counts decisions whose [at] was round [r], trimmed to
          the last nonzero bucket ([[||]] when nothing decided).  Exact
          counts — the source of the latency quantiles. *)
}

val summary_of_state :
  protocol:string ->
  params:string ->
  seed:int ->
  plan:string ->
  topology:string ->
  sync:string ->
  state ->
  summary

val quantile_decision_round : summary -> permille:int -> int
(** The smallest round [r] such that at least [permille / 1000] of the
    nonfaulty decisions happened by round [r] (exact integer arithmetic);
    [0] when nothing decided.  Raises [Invalid_argument] outside
    [[0, 1000]]. *)

val p99_decision_round : summary -> int
(** [quantile_decision_round ~permille:990] — the headline tail-latency
    round.  Decisions land exactly at round boundaries, so the simulated
    p99 decision latency is this round times the sync round duration. *)

val pp : Format.formatter -> summary -> unit

val summary_json : summary -> Json.t
(** Schema-stable object: identity fields as strings, every count as an
    integer — the [net] rows of the benchmark artifact. *)
