module Params = Eba_sim.Params
module Config = Eba_sim.Config
module Pattern = Eba_sim.Pattern
module Value = Eba_sim.Value
module Metrics = Eba_util.Metrics
module Parallel = Eba_util.Parallel

let m_runs = Metrics.counter "net.runs_simulated"
let m_events = Metrics.counter "net.events_processed"
let m_copies = Metrics.counter "net.copies_sent"
let m_retrans = Metrics.counter "net.retransmissions"
let m_acks = Metrics.counter "net.acks_sent"
let m_delivered = Metrics.counter "net.messages_delivered"
let m_dropped = Metrics.counter "net.copies_dropped"
let m_bytes = Metrics.counter "net.data_bytes"

let lossless_topology ~n =
  Topology.make ~n ~link:(Link.make ~latency:(Link.Const 1.0) ~loss:0.0)

(* SplitMix64-style finalizer over (seed, run), so per-run generators are
   well-separated whatever the master seed, and independent of scheduling. *)
let run_seed ~seed ~run =
  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let a = mix (Int64.add (Int64.of_int seed) 0x9e3779b97f4a7c15L) in
  let b = mix (Int64.logxor a (Int64.of_int run)) in
  Random.State.make
    [| Int64.to_int a land max_int; Int64.to_int b land max_int |]

let ns_of_seconds = Net_stats.ns_of_seconds

module Make (P : Eba_protocols.Protocol_intf.PROTOCOL) = struct
  module N = Node.Make (P)

  type event =
    | Boundary of int
        (* time k·D: close round k (k >= 1), then open round k+1 (k < horizon) *)
    | Deliver of {
        d_round : int;
        d_sender : int;
        d_dest : int;
        d_bytes : int;  (* wire size, computed once at first transmit *)
        d_msg : P.msg;
      }
    | Ack of { a_round : int; a_from : int; a_to : int }
        (* a_from acknowledged a_to's round message *)
    | Timer of {
        t_round : int;
        t_sender : int;
        t_dest : int;
        t_copy : int;
        t_bytes : int;  (* retransmits reuse the original size, no re-measuring *)
        t_msg : P.msg;
      }

  (* [run_one] after validation — sweeps check the (sync, topology) pair
     once up front rather than once per run *)
  let run_prepared (params : Params.t) ~(sync : Sync.t) ~topology ~plan ~rng
      config =
    let n = params.Params.n and horizon = params.Params.horizon in
    let d = sync.Sync.round_duration in
    let inj = Inject.compile rng params ~total_time:(float_of_int horizon *. d) plan in
    let wire = Net_stats.fresh_wire () in
    let attempted = ref 0 and delivered = ref 0 in
    let q : event Event_queue.t = Event_queue.create () in
    let nodes =
      Array.init n (fun i -> N.create params ~me:i (Config.value config i) ~sim_time:0.0)
    in
    for k = 0 to horizon do
      Event_queue.push q ~time:(float_of_int k *. d) (Boundary k)
    done;
    (* Put one copy of a data message on the wire.  Bytes are charged here,
       before any drop decision: a lost copy was still transmitted. *)
    let transmit ~now ~round ~sender ~dest ~copy ~bytes msg =
      wire.Net_stats.w_copies <- wire.Net_stats.w_copies + 1;
      wire.Net_stats.w_data_bytes <- wire.Net_stats.w_data_bytes + bytes;
      if copy > 0 then
        wire.Net_stats.w_retransmissions <- wire.Net_stats.w_retransmissions + 1;
      if Inject.blocks_send inj rng ~round ~sender ~receiver:dest then
        wire.Net_stats.w_dropped_fault <- wire.Net_stats.w_dropped_fault + 1
      else if Inject.cut inj ~now ~src:sender ~dst:dest then
        wire.Net_stats.w_dropped_cut <- wire.Net_stats.w_dropped_cut + 1
      else
        let link = Topology.link topology ~src:sender ~dst:dest in
        if link.Link.loss > 0.0 && Random.State.float rng 1.0 < link.Link.loss then
          wire.Net_stats.w_dropped_loss <- wire.Net_stats.w_dropped_loss + 1
        else begin
          let l = Link.sample_latency rng link.Link.lat in
          let ns = ns_of_seconds l in
          wire.Net_stats.w_latency_ns_sum <- wire.Net_stats.w_latency_ns_sum + ns;
          if ns > wire.Net_stats.w_latency_ns_max then
            wire.Net_stats.w_latency_ns_max <- ns;
          let bucket =
            min (Net_stats.hist_buckets - 1)
              (int_of_float (float_of_int Net_stats.hist_buckets *. l /. d))
          in
          wire.Net_stats.w_latency_hist.(bucket) <-
            wire.Net_stats.w_latency_hist.(bucket) + 1;
          Event_queue.push q ~time:(now +. l)
            (Deliver
               {
                 d_round = round;
                 d_sender = sender;
                 d_dest = dest;
                 d_bytes = bytes;
                 d_msg = msg;
               })
        end
    in
    (* Acknowledgement copies ride the reverse link: same loss, same
       latency model, severed by the same partitions — but never by the
       replayed pattern, which only speaks about protocol messages. *)
    let send_ack ~now ~round ~from ~to_ =
      wire.Net_stats.w_acks <- wire.Net_stats.w_acks + 1;
      (* an acknowledgement is a bare header: tag + round stamp *)
      wire.Net_stats.w_ack_bytes <-
        wire.Net_stats.w_ack_bytes + Eba_protocols.Protocol_intf.Wire.header;
      if Inject.cut inj ~now ~src:from ~dst:to_ then
        wire.Net_stats.w_dropped_cut <- wire.Net_stats.w_dropped_cut + 1
      else
        let link = Topology.link topology ~src:from ~dst:to_ in
        if link.Link.loss > 0.0 && Random.State.float rng 1.0 < link.Link.loss then
          wire.Net_stats.w_dropped_loss <- wire.Net_stats.w_dropped_loss + 1
        else
          let l = Link.sample_latency rng link.Link.lat in
          Event_queue.push q ~time:(now +. l)
            (Ack { a_round = round; a_from = from; a_to = to_ })
    in
    let boundary ~now k =
      if k >= 1 then
        Array.iter
          (fun node ->
            if not (Inject.dead inj ~now ~proc:(N.me node)) then
              N.finish_round params node ~sim_time:now)
          nodes;
      if k < horizon then begin
        let round = k + 1 in
        let round_end = Sync.round_end sync ~round in
        Array.iter
          (fun node ->
            let i = N.me node in
            if not (Inject.dead inj ~now ~proc:i) then begin
              let out = N.start_round params node ~round in
              (* the full protocols share one message snapshot across all
                 destinations — size it once (physical equality) rather
                 than per destination *)
              let sized = ref None in
              let size_of msg =
                match !sized with
                | Some (m, b) when m == msg -> b
                | _ ->
                    let b = P.wire_size params msg in
                    sized := Some (msg, b);
                    b
              in
              for dest = 0 to n - 1 do
                if dest <> i then
                  match out.(dest) with
                  | None -> ()
                  | Some msg ->
                      incr attempted;
                      let bytes = size_of msg in
                      transmit ~now ~round ~sender:i ~dest ~copy:0 ~bytes msg;
                      if sync.Sync.max_retries > 0 && now +. sync.Sync.rto < round_end
                      then
                        Event_queue.push q ~time:(now +. sync.Sync.rto)
                          (Timer
                             {
                               t_round = round;
                               t_sender = i;
                               t_dest = dest;
                               t_copy = 1;
                               t_bytes = bytes;
                               t_msg = msg;
                             })
              done
            end)
          nodes
      end
    in
    let events = ref 0 in
    let rec loop () =
      match Event_queue.pop q with
      | None -> ()
      | Some (now, ev) ->
          incr events;
          (match ev with
          | Boundary k -> boundary ~now k
          | Deliver { d_round; d_sender; d_dest; d_bytes; d_msg } ->
              if Inject.dead inj ~now ~proc:d_dest then
                wire.Net_stats.w_to_dead <- wire.Net_stats.w_to_dead + 1
              else (
                match
                  N.accept nodes.(d_dest) ~round:d_round ~sender:d_sender
                    ~bytes:d_bytes d_msg
                with
                | `Fresh ->
                    incr delivered;
                    wire.Net_stats.w_delivered_bytes <-
                      wire.Net_stats.w_delivered_bytes + d_bytes;
                    send_ack ~now ~round:d_round ~from:d_dest ~to_:d_sender
                | `Duplicate ->
                    (* the ack was lost or raced a retransmission: re-ack
                       so the sender's timer goes quiet *)
                    wire.Net_stats.w_duplicates <- wire.Net_stats.w_duplicates + 1;
                    send_ack ~now ~round:d_round ~from:d_dest ~to_:d_sender
                | `Late -> wire.Net_stats.w_late <- wire.Net_stats.w_late + 1)
          | Ack { a_round; a_from; a_to } ->
              N.ack nodes.(a_to) ~round:a_round ~dest:a_from
          | Timer { t_round; t_sender; t_dest; t_copy; t_bytes; t_msg } ->
              let node = nodes.(t_sender) in
              if
                (not (Inject.dead inj ~now ~proc:t_sender))
                && N.round node = t_round
                && not (N.acked node ~dest:t_dest)
              then begin
                transmit ~now ~round:t_round ~sender:t_sender ~dest:t_dest
                  ~copy:t_copy ~bytes:t_bytes t_msg;
                if
                  t_copy < sync.Sync.max_retries
                  && now +. sync.Sync.rto < Sync.round_end sync ~round:t_round
                then
                  Event_queue.push q ~time:(now +. sync.Sync.rto)
                    (Timer
                       {
                         t_round;
                         t_sender;
                         t_dest;
                         t_copy = t_copy + 1;
                         t_bytes;
                         t_msg;
                       })
              end);
          loop ()
    in
    loop ();
    if Metrics.enabled () then begin
      Metrics.incr m_runs;
      Metrics.add m_events !events;
      Metrics.add m_copies wire.Net_stats.w_copies;
      Metrics.add m_retrans wire.Net_stats.w_retransmissions;
      Metrics.add m_acks wire.Net_stats.w_acks;
      Metrics.add m_delivered !delivered;
      Metrics.add m_bytes wire.Net_stats.w_data_bytes;
      Metrics.add m_dropped
        (wire.Net_stats.w_dropped_fault + wire.Net_stats.w_dropped_loss
       + wire.Net_stats.w_dropped_cut)
    end;
    {
      Net_stats.o_decisions = Array.map N.decision nodes;
      o_decision_sim_ns =
        Array.map
          (fun node -> Option.map ns_of_seconds (N.decision_sim_time node))
          nodes;
      o_faulty = Inject.faulty inj;
      o_unanimous = Config.all_equal config;
      o_attempted = !attempted;
      o_delivered = !delivered;
      o_wire = wire;
    }

  let check (params : Params.t) ~sync ~topology =
    Sync.check sync topology;
    if Topology.n topology <> params.Params.n then
      invalid_arg "Netsim: topology size does not match params"

  let run_one (params : Params.t) ~sync ~topology ~plan ~rng config =
    check params ~sync ~topology;
    run_prepared params ~sync ~topology ~plan ~rng config

  let replay ?sync (params : Params.t) pattern config =
    let topology = lossless_topology ~n:params.Params.n in
    let sync = match sync with Some s -> s | None -> Sync.default_for topology in
    (* Replay draws nothing from the rng: the pattern decides every drop
       and the lossless links are deterministic. *)
    let rng = Random.State.make [| 0 |] in
    run_one params ~sync ~topology ~plan:(Inject.Replay pattern) ~rng config
end

let sweep ?jobs ?mux ?cancel ?progress
    (module P : Eba_protocols.Protocol_intf.PROTOCOL) (params : Params.t)
    ~sync ~topology ~dynamic ~seed ~runs =
  let module E = Make (P) in
  E.check params ~sync ~topology;
  let n = params.Params.n in
  let rng_of_run run = run_seed ~seed ~run in
  (* one shared counter across domains: [done] counts completed runs,
     whatever their scheduling order *)
  let completed = Atomic.make 0 in
  let tick count =
    let d = Atomic.fetch_and_add completed count + count in
    match progress with
    | None -> ()
    | Some f -> f ~done_:d ~total:runs
  in
  let st =
    match mux with
    | Some live ->
        let module M = Mux.Make (P) in
        M.sweep_state ?jobs ?cancel ?progress:(Option.map (fun _ -> tick) progress)
          params ~sync ~topology ~dynamic ~rng_of_run ~live ~runs
    | None ->
        let consume st run =
          Eba_util.Cancel.check_opt cancel;
          let rng = rng_of_run run in
          let config =
            Config.make
              (Array.init n (fun _ ->
                   if Random.State.bool rng then Value.One else Value.Zero))
          in
          let outcome =
            E.run_prepared params ~sync ~topology
              ~plan:(Inject.Dynamic dynamic) ~rng config
          in
          Net_stats.consume st outcome;
          tick 1
        in
        Parallel.map_reduce_seq ?jobs ~init:Net_stats.fresh_state
          ~fold:consume ~merge:Net_stats.merge
          (Seq.init runs Fun.id)
  in
  Net_stats.summary_of_state
    ~protocol:P.name
    ~params:(Format.asprintf "%a" Params.pp params)
    ~seed
    ~plan:(Inject.describe (Inject.Dynamic dynamic))
    ~topology:(Format.asprintf "%a" Topology.pp topology)
    ~sync:(Format.asprintf "%a" Sync.pp sync)
    st
