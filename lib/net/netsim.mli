(** The discrete-event network simulation engine.

    A run is a pure function of [(params, config, sync, topology, plan,
    rng)]: every random choice — adversary compilation, per-copy latency
    and loss, dynamic omissions — is drawn from the given seeded state in
    event order, and simultaneous events resolve by scheduling order
    ({!Event_queue}).  Re-running with an equally-seeded state reproduces
    the outcome bit for bit, which the qcheck determinism properties pin.

    Execution model: the {!Sync.t} round windows drive {!Node} adapters
    over the {!Topology.t} fabric.  At each window's start every live node
    transmits its round messages; unacknowledged copies retransmit every
    [rto] until the retry budget or the window runs out; at the window's
    close each node ingests what arrived and steps.  {!Inject} drops
    copies (replayed patterns, dynamic omissions), kills nodes outright
    (dynamic crashes), or severs links (transient partitions).

    Under a loss-free topology replaying a pattern, per-round deliveries —
    and hence decisions and message counts — are exactly the lockstep
    {!Eba_protocols.Runner}'s; the differential suite checks this
    point-for-point over exhaustive universes. *)

module Params = Eba_sim.Params
module Config = Eba_sim.Config
module Pattern = Eba_sim.Pattern

val lossless_topology : n:int -> Topology.t
(** Unit constant latency, zero loss — the replay fabric. *)

val run_seed : seed:int -> run:int -> Random.State.t
(** The per-run generator of a sweep: a fixed mix of the master seed and
    the run index, so a run's randomness is independent of how runs are
    distributed over domains. *)

module Make (P : Eba_protocols.Protocol_intf.PROTOCOL) : sig
  val run_one :
    Params.t ->
    sync:Sync.t ->
    topology:Topology.t ->
    plan:Inject.plan ->
    rng:Random.State.t ->
    Config.t ->
    Net_stats.outcome
  (** Simulate one run.  Raises [Invalid_argument] when the topology's
      latency bound does not fit the round window ({!Sync.check}). *)

  val replay :
    ?sync:Sync.t -> Params.t -> Pattern.t -> Config.t -> Net_stats.outcome
  (** [run_one] over the {!lossless_topology} with a fresh dummy rng —
      the deterministic pattern-replay entry point the differential tests
      compare against {!Eba_protocols.Runner.Make.run}. *)
end

val sweep :
  ?jobs:int ->
  ?mux:int ->
  ?cancel:Eba_util.Cancel.t ->
  ?progress:(done_:int -> total:int -> unit) ->
  (module Eba_protocols.Protocol_intf.PROTOCOL) ->
  Params.t ->
  sync:Sync.t ->
  topology:Topology.t ->
  dynamic:Inject.dynamic ->
  seed:int ->
  runs:int ->
  Net_stats.summary
(** A sampled workload: [runs] independent runs, each with a uniformly
    random initial configuration and a freshly compiled dynamic adversary,
    distributed over [jobs] domains ({!Eba_util.Parallel}).  Per-run
    generators come from {!run_seed} and the accumulators are exact
    integers, so the summary is bit-identical for every job count.

    [mux] routes the sweep through the multiplexed engine ({!Mux}) with
    that many concurrently live instances per wave.  The summary is
    bit-identical to the sequential path — same seeds, same outcomes,
    same counters — the engines differ only in wall-clock.

    [cancel] is a cooperative token polled at per-run (sequential path)
    or per-wave (mux path) boundaries: once fired, the sweep raises
    {!Eba_util.Cancel.Cancelled} within one such boundary per domain.
    [progress] is called after each completed run (or wave) with the
    cumulative count of finished runs and the total; calls may arrive
    from worker domains concurrently and [done_] is not guaranteed
    monotone across racing calls — throttle and order on the consumer
    side.  Both default off and cost nothing when absent. *)
