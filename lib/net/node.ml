module Params = Eba_sim.Params
module Value = Eba_sim.Value
module Runner = Eba_protocols.Runner

module Make (P : Eba_protocols.Protocol_intf.PROTOCOL) = struct
  type t = {
    mutable nd_me : int;
    mutable nd_state : P.state;
    mutable nd_round : int;
    mutable nd_closed : bool;  (* current round already fed to [receive] *)
    mutable nd_inbox : P.msg option array;
    mutable nd_got : bool array;
    mutable nd_acked : bool array;
    mutable nd_bytes_in : int;  (* wire bytes of fresh-accepted copies *)
    mutable nd_decision : Runner.decision option;
    mutable nd_decision_sim : float option;
  }

  let note_output node ~time ~sim_time =
    match node.nd_decision with
    | Some _ -> ()
    | None -> (
        match P.output node.nd_state with
        | None -> ()
        | Some value ->
            node.nd_decision <- Some { Runner.at = time; value };
            node.nd_decision_sim <- Some sim_time)

  let create (params : Params.t) ~me value ~sim_time =
    let n = params.Params.n in
    let node =
      {
        nd_me = me;
        nd_state = P.init params ~me value;
        nd_round = 0;
        nd_closed = true;
        nd_inbox = Array.make n None;
        nd_got = Array.make n false;
        nd_acked = Array.make n false;
        nd_bytes_in = 0;
        nd_decision = None;
        nd_decision_sim = None;
      }
    in
    note_output node ~time:0 ~sim_time;
    node

  let reset (params : Params.t) node ~me value ~sim_time =
    let n = params.Params.n in
    if Array.length node.nd_inbox <> n then begin
      node.nd_inbox <- Array.make n None;
      node.nd_got <- Array.make n false;
      node.nd_acked <- Array.make n false
    end
    else begin
      Array.fill node.nd_inbox 0 n None;
      Array.fill node.nd_got 0 n false;
      Array.fill node.nd_acked 0 n false
    end;
    node.nd_me <- me;
    node.nd_state <- P.init params ~me value;
    node.nd_round <- 0;
    node.nd_closed <- true;
    node.nd_bytes_in <- 0;
    node.nd_decision <- None;
    node.nd_decision_sim <- None;
    note_output node ~time:0 ~sim_time

  let me node = node.nd_me
  let round node = node.nd_round

  let start_round params node ~round =
    if round <> node.nd_round + 1 then
      invalid_arg "Node.start_round: rounds must be entered in order";
    node.nd_round <- round;
    node.nd_closed <- false;
    Array.fill node.nd_inbox 0 (Array.length node.nd_inbox) None;
    Array.fill node.nd_got 0 (Array.length node.nd_got) false;
    Array.fill node.nd_acked 0 (Array.length node.nd_acked) false;
    let out = P.send params node.nd_state ~round in
    if Array.length out <> Array.length node.nd_inbox then
      invalid_arg "Node: send must return one slot per destination";
    out

  let accept node ~round ~sender ~bytes msg =
    if round <> node.nd_round || node.nd_closed then `Late
    else if node.nd_got.(sender) then `Duplicate
    else begin
      node.nd_got.(sender) <- true;
      node.nd_inbox.(sender) <- Some msg;
      node.nd_bytes_in <- node.nd_bytes_in + bytes;
      `Fresh
    end

  let ack node ~round ~dest = if round = node.nd_round then node.nd_acked.(dest) <- true
  let acked node ~dest = node.nd_acked.(dest)
  let bytes_in node = node.nd_bytes_in

  let finish_round params node ~sim_time =
    node.nd_closed <- true;
    node.nd_state <- P.receive params node.nd_state ~round:node.nd_round node.nd_inbox;
    note_output node ~time:node.nd_round ~sim_time

  let decision node = node.nd_decision
  let decision_sim_time node = node.nd_decision_sim
  let state node = node.nd_state
end
