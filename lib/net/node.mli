(** The adapter that runs one lockstep {!Eba_protocols.Protocol_intf.PROTOCOL}
    automaton as a network node.

    A node owns the protocol state, the current round's receive buffer with
    per-sender deduplication (retransmissions may deliver a message twice),
    the per-destination acknowledgement flags the retransmission timers
    consult, and the decision record.  The simulation engine drives it with
    [start_round] / [accept] / [finish_round]; decisions are read after any
    state change, mirroring the runner's "first non-[None] output" rule,
    and carry both the round number (comparable to the lockstep runner) and
    the simulated instant. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value
module Runner = Eba_protocols.Runner

module Make (P : Eba_protocols.Protocol_intf.PROTOCOL) : sig
  type t

  val create : Params.t -> me:int -> Value.t -> sim_time:float -> t
  (** Initial state; records a time-0 decision if the protocol outputs
      one immediately. *)

  val reset : Params.t -> t -> me:int -> Value.t -> sim_time:float -> unit
  (** Reinitialize in place to exactly the state [create] would build,
      recycling the inbox/got/acked arrays when the width matches — the
      arena-reuse hook for engines that run many instances through one
      node record.  Records a time-0 decision like [create]. *)

  val me : t -> int

  val round : t -> int
  (** The round the node is currently collecting messages for; 0 before
      the first [start_round]. *)

  val start_round : Params.t -> t -> round:int -> P.msg option array
  (** Enter a round: clears the receive buffer and ack flags and returns
      the protocol's outgoing messages (one slot per destination).  Rounds
      must be entered in order. *)

  val accept :
    t -> round:int -> sender:int -> bytes:int -> P.msg -> [ `Fresh | `Duplicate | `Late ]
  (** Offer a delivered copy of [bytes] wire bytes.  [`Fresh] stores it
      (and is the receiver's cue to acknowledge), adding [bytes] to the
      node's inbox byte count; [`Duplicate] if this sender already got
      through this round; [`Late] if the copy's round is already over. *)

  val ack : t -> round:int -> dest:int -> unit
  (** Record a received acknowledgement for this round's message to
      [dest]; stale-round acks are ignored. *)

  val acked : t -> dest:int -> bool
  (** Has this round's message to [dest] been acknowledged? *)

  val bytes_in : t -> int
  (** Exact wire bytes of every fresh copy this node accepted over its
      lifetime (duplicates and late copies excluded) — the per-node share
      of {!Net_stats.wire.w_delivered_bytes}. *)

  val finish_round : Params.t -> t -> sim_time:float -> unit
  (** Close the current round: feed the buffered arrivals to [P.receive]
      and record a first decision if one appeared. *)

  val decision : t -> Runner.decision option
  val decision_sim_time : t -> float option
  val state : t -> P.state
end
