type t = { round_duration : float; rto : float; max_retries : int }

let make ~round_duration ~rto ~max_retries =
  if not (Float.is_finite round_duration) || round_duration <= 0.0 then
    invalid_arg "Sync.make: round_duration must be finite and > 0";
  if not (Float.is_finite rto) || rto <= 0.0 then
    invalid_arg "Sync.make: rto must be finite and > 0";
  if rto > round_duration then
    invalid_arg "Sync.make: rto cannot exceed the round window";
  if max_retries < 0 then invalid_arg "Sync.make: max_retries must be >= 0";
  { round_duration; rto; max_retries }

let default_for topology =
  let bound = Topology.latency_bound topology in
  let rto = if bound > 0.0 then 2.5 *. bound else 1.0 in
  make ~round_duration:(8.0 *. rto) ~rto ~max_retries:7

let check t topology =
  let bound = Topology.latency_bound topology in
  if bound >= t.round_duration then
    invalid_arg
      (Printf.sprintf
         "Sync.check: latency bound %g does not fit the round window %g"
         bound t.round_duration)

let attempts t =
  (* Retransmission [i] fires at [round_start + i * rto], and the event
     loop schedules it only strictly inside the window ([fire < round_end]
     — a copy launched exactly at the close would be dead on arrival, its
     round already over).  Count with the same strict predicate instead of
     truncating [round_duration /. rto]: when the window is an exact
     multiple [k *. rto] of the timeout, truncation admits the phantom
     attempt at the boundary and over-reports by one. *)
  let retries = ref 0 in
  while
    !retries < t.max_retries
    && float_of_int (!retries + 1) *. t.rto < t.round_duration
  do
    incr retries
  done;
  1 + !retries

let attempt_times t =
  (* Mirror the event loop exactly: fire times accumulate by repeated
     [+. rto] (not multiplication) and a retransmission is armed only
     while [fire +. rto] stays strictly inside the window.  Offsets are
     relative to the window start (round 1's absolute times). *)
  let acc = ref [ 0.0 ] in
  let fire = ref 0.0 in
  let count = ref 0 in
  while !count < t.max_retries && !fire +. t.rto < t.round_duration do
    fire := !fire +. t.rto;
    acc := !fire :: !acc;
    incr count
  done;
  Array.of_list (List.rev !acc)

let round_start t ~round = float_of_int (round - 1) *. t.round_duration
let round_end t ~round = float_of_int round *. t.round_duration

let pp fmt t =
  Format.fprintf fmt "round=%g rto=%g retries=%d" t.round_duration t.rto
    t.max_retries
