type t = { round_duration : float; rto : float; max_retries : int }

let make ~round_duration ~rto ~max_retries =
  if not (Float.is_finite round_duration) || round_duration <= 0.0 then
    invalid_arg "Sync.make: round_duration must be finite and > 0";
  if not (Float.is_finite rto) || rto <= 0.0 then
    invalid_arg "Sync.make: rto must be finite and > 0";
  if rto > round_duration then
    invalid_arg "Sync.make: rto cannot exceed the round window";
  if max_retries < 0 then invalid_arg "Sync.make: max_retries must be >= 0";
  { round_duration; rto; max_retries }

let default_for topology =
  let bound = Topology.latency_bound topology in
  let rto = if bound > 0.0 then 2.5 *. bound else 1.0 in
  make ~round_duration:(8.0 *. rto) ~rto ~max_retries:7

let check t topology =
  let bound = Topology.latency_bound topology in
  if bound >= t.round_duration then
    invalid_arg
      (Printf.sprintf
         "Sync.check: latency bound %g does not fit the round window %g"
         bound t.round_duration)

let attempts t =
  1 + min t.max_retries (int_of_float (t.round_duration /. t.rto))

let round_start t ~round = float_of_int (round - 1) *. t.round_duration
let round_end t ~round = float_of_int round *. t.round_duration

let pp fmt t =
  Format.fprintf fmt "round=%g rto=%g retries=%d" t.round_duration t.rto
    t.max_retries
