(** Timing discipline of the round synchronizer.

    The simulator executes the lockstep protocols over the unreliable
    network by giving every round a fixed window of simulated time: round
    [k] occupies [[(k-1) * round_duration, k * round_duration)].  At a
    window's start each alive node transmits its round-[k] messages; copies
    are retransmitted every [rto] until the receiver's acknowledgement
    arrives, the retry budget runs out, or the window closes.  At the
    window's end every node ingests whatever round-[k] messages reached it
    and steps its protocol state — exactly one [receive] per round, like the
    lockstep {!Eba_protocols.Runner}.

    Validity ([check]) requires [latency_bound < round_duration], so a
    first-attempt copy sent at the window's start always arrives within the
    window: under a loss-free schedule the delivered message sets per round
    are exactly the runner's, which is what the differential suite pins. *)

type t = private {
  round_duration : float;  (** width of each round window, > 0 *)
  rto : float;  (** retransmission timeout, > 0 *)
  max_retries : int;  (** retransmissions per message (first copy excluded) *)
}

val make : round_duration:float -> rto:float -> max_retries:int -> t
(** Raises [Invalid_argument] on non-positive durations, negative retry
    budgets, or [rto > round_duration]. *)

val default_for : Topology.t -> t
(** Timing derived from the topology's latency bound [L]: an RTO just above
    a worst-case round trip ([2.5 L], so loss-free runs never retransmit)
    and a round window of 8 RTOs with a matching retry budget of 7.  Falls
    back to an RTO of 1.0 when [L = 0]. *)

val check : t -> Topology.t -> unit
(** Raises [Invalid_argument] unless the topology's latency bound is
    strictly below [round_duration]. *)

val attempts : t -> int
(** Maximum transmissions per message: the initial copy plus every retry
    the budget and the window admit.  Retry [i] fires at
    [round_start + i * rto] and counts only if that instant is {e strictly}
    before the window's close — a copy launched exactly at [round_end]
    would be dead on arrival, so when [round_duration = k *. rto] the
    boundary retry is excluded (the same [< round_end] cutoff the event
    loop uses to schedule timers). *)

val attempt_times : t -> float array
(** Fire offsets of every admitted transmission, relative to the window
    start: [[| 0.0; rto; rto +. rto; ... |]].  Computed by the same
    repeated float addition and strict in-window re-arm test the event
    loop uses, so the schedule is bit-exact against the simulator —
    [Array.length (attempt_times t)] agrees with {!attempts} whenever
    iterated addition and multiplication round identically (always at the
    repo's dyadic-friendly defaults).  The probability engine
    ({!Eba_prob.Round_chain}) keys its per-attempt window cutoffs off
    these offsets. *)

val round_start : t -> round:int -> float
val round_end : t -> round:int -> float

val pp : Format.formatter -> t -> unit
