type 'a t = {
  tw_times : float array;
  tw_len : int array;  (* entries scheduled into each slot *)
  tw_next : int array;  (* entries already drained from each slot *)
  tw_seqs : int array array;
  tw_pay : 'a array array;
  mutable tw_cursor : int;
}

let create ~times =
  Array.iteri
    (fun i t ->
      if not (Float.is_finite t) || t < 0.0 then
        invalid_arg "Timer_wheel.create: times must be finite and non-negative";
      if i > 0 && not (times.(i - 1) < t) then
        invalid_arg "Timer_wheel.create: times must be strictly increasing")
    times;
  let n = Array.length times in
  {
    tw_times = Array.copy times;
    tw_len = Array.make n 0;
    tw_next = Array.make n 0;
    tw_seqs = Array.make n [||];
    tw_pay = Array.make n [||];
    tw_cursor = 0;
  }

let nticks w = Array.length w.tw_times
let time w tick = w.tw_times.(tick)
let cursor w = w.tw_cursor

let index_of_time w t =
  (* exact binary search: fire times are computed by the same float
     arithmetic that built the schedule, so equality is the contract *)
  let lo = ref 0 and hi = ref (Array.length w.tw_times - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = w.tw_times.(mid) in
    if v = t then found := mid else if v < t then lo := mid + 1 else hi := mid - 1
  done;
  if !found < 0 then None else Some !found

let schedule w ~tick ~seq payload =
  if tick < w.tw_cursor || tick >= Array.length w.tw_times then
    invalid_arg "Timer_wheel.schedule: tick out of range";
  let len = w.tw_len.(tick) in
  let cap = Array.length w.tw_seqs.(tick) in
  if len = cap then begin
    (* payload arrays need a seed element, so capacity appears with the
       first entry and doubles in place after that *)
    let ncap = max 8 (2 * cap) in
    let seqs = Array.make ncap 0 in
    let pay = Array.make ncap payload in
    Array.blit w.tw_seqs.(tick) 0 seqs 0 len;
    Array.blit w.tw_pay.(tick) 0 pay 0 len;
    w.tw_seqs.(tick) <- seqs;
    w.tw_pay.(tick) <- pay
  end;
  w.tw_seqs.(tick).(len) <- seq;
  w.tw_pay.(tick).(len) <- payload;
  w.tw_len.(tick) <- len + 1

let peek w =
  let c = w.tw_cursor in
  if c >= Array.length w.tw_times then None
  else
    let next = w.tw_next.(c) in
    if next >= w.tw_len.(c) then None
    else Some (w.tw_times.(c), w.tw_seqs.(c).(next))

let take w =
  let c = w.tw_cursor in
  if c >= Array.length w.tw_times then invalid_arg "Timer_wheel.take: past the end";
  let next = w.tw_next.(c) in
  if next >= w.tw_len.(c) then invalid_arg "Timer_wheel.take: slot drained";
  w.tw_next.(c) <- next + 1;
  w.tw_pay.(c).(next)

let advance w =
  let c = w.tw_cursor in
  if c >= Array.length w.tw_times then invalid_arg "Timer_wheel.advance: past the end";
  if w.tw_next.(c) < w.tw_len.(c) then
    invalid_arg "Timer_wheel.advance: slot not drained";
  w.tw_cursor <- c + 1

let reset w =
  Array.fill w.tw_len 0 (Array.length w.tw_len) 0;
  Array.fill w.tw_next 0 (Array.length w.tw_next) 0;
  w.tw_cursor <- 0
