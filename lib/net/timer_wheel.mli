(** A hierarchical-schedule timer wheel for the multiplexed engine.

    When every simulated instance shares one synchronizer configuration,
    all round boundaries and retransmission timers can only ever fire at a
    {e fixed, precomputed} set of instants — the tick schedule.  The wheel
    stores one append-ordered slot per tick, so arming a timer is an array
    append and firing a slot drains it front to back: no heap sifts for
    the (overwhelmingly common) deterministic timer events, leaving the
    heap to latency-randomized deliveries.

    Entries carry sequence numbers drawn from the same counter as the
    event heap ({!Event_queue.alloc_seq}).  Appends to a slot happen in
    processing order, so a slot's sequence numbers are strictly
    increasing; draining front to back while merging against the heap by
    exact [(time, seqno)] therefore reproduces the event order a pure-heap
    schedule would have produced, bit for bit.

    The cursor advances monotonically; {!reset} rewinds it and empties
    every slot while keeping the slot arrays — the arena-reuse hook for
    running many simulation waves through one wheel. *)

type 'a t

val create : times:float array -> 'a t
(** [create ~times] builds a wheel over the given tick schedule.  Raises
    [Invalid_argument] unless [times] is strictly increasing, finite and
    non-negative.  The array is copied. *)

val nticks : 'a t -> int
val time : 'a t -> int -> float
(** The instant of a tick index. *)

val index_of_time : 'a t -> float -> int option
(** Exact binary search for a tick at precisely this float instant —
    [None] when the instant is not a tick.  Fire times computed by the
    same float arithmetic as the schedule always hit. *)

val cursor : 'a t -> int
(** The slot currently draining; [nticks] once the wheel is exhausted. *)

val schedule : 'a t -> tick:int -> seq:int -> 'a -> unit
(** Append an entry to a slot.  Raises [Invalid_argument] for a slot
    before the cursor or past the end. *)

val peek : 'a t -> (float * int) option
(** The cursor slot's next undrained entry as [(time, seqno)]; [None]
    when the cursor slot is drained (other slots may still hold
    entries — advancing is the caller's scheduling decision). *)

val take : 'a t -> 'a
(** Remove and return the cursor slot's next entry.  Raises
    [Invalid_argument] when {!peek} is [None]. *)

val advance : 'a t -> unit
(** Move the cursor to the next slot.  Raises [Invalid_argument] unless
    the current slot is fully drained. *)

val reset : 'a t -> unit
(** Empty every slot and rewind the cursor, keeping allocated slot
    capacity. *)
