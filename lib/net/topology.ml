type t = {
  top_n : int;
  default : Link.t;
  overrides : ((int * int) * Link.t) list;  (* most recent first *)
}

let make ~n ~link =
  if n < 2 then invalid_arg "Topology.make: need at least 2 processors";
  { top_n = n; default = link; overrides = [] }

let check_edge t ~src ~dst =
  if src < 0 || src >= t.top_n || dst < 0 || dst >= t.top_n then
    invalid_arg "Topology: endpoint out of range";
  if src = dst then invalid_arg "Topology: no self link"

let with_link t ~src ~dst link =
  check_edge t ~src ~dst;
  { t with overrides = ((src, dst), link) :: t.overrides }

let n t = t.top_n

let uniform_link t = match t.overrides with [] -> Some t.default | _ -> None

let link t ~src ~dst =
  check_edge t ~src ~dst;
  match List.assoc_opt (src, dst) t.overrides with
  | Some l -> l
  | None -> t.default

let latency_bound t =
  List.fold_left
    (fun acc (_, l) -> Float.max acc (Link.latency_bound l.Link.lat))
    (Link.latency_bound t.default.Link.lat)
    t.overrides

let pp fmt t =
  Format.fprintf fmt "mesh n=%d default=%a%s" t.top_n Link.pp t.default
    (match List.length t.overrides with
    | 0 -> ""
    | k -> Printf.sprintf " (+%d overrides)" k)
