(** The simulated network fabric: a full mesh of [n] processors with a
    directed {!Link.t} per ordered pair.

    Built uniform (every link shares one latency model and loss rate) with
    optional per-link overrides, so heterogeneous fabrics — one slow
    processor, one congested edge — are a couple of [with_link] calls. *)

type t

val make : n:int -> link:Link.t -> t
(** A uniform full mesh on [n >= 2] processors. *)

val with_link : t -> src:int -> dst:int -> Link.t -> t
(** Functional override of one directed link.  Raises [Invalid_argument]
    on out-of-range endpoints or [src = dst] (there is no self link). *)

val n : t -> int
val link : t -> src:int -> dst:int -> Link.t

val uniform_link : t -> Link.t option
(** The one link every pair shares, when no override was applied — the
    condition under which the mux engine may batch same-instant arrivals
    (a single latency model governs every copy). *)

val latency_bound : t -> float
(** The largest {!Link.latency_bound} over every link — what the
    synchronizer validates its round timing against. *)

val pp : Format.formatter -> t -> unit
