module Bigint = Eba_util.Bigint

let choose n k =
  if k < 0 || k > n then Bigint.zero
  else begin
    let k = Stdlib.min k (n - k) in
    let acc = ref Bigint.one in
    for i = 0 to k - 1 do
      (* Exact at every step: the running product C(n, i+1) is integral. *)
      let num = Bigint.mul !acc (Bigint.of_int (n - i)) in
      let q, r = Bigint.divmod num (Bigint.of_int (i + 1)) in
      assert (Bigint.sign r = 0);
      acc := q
    done;
    !acc
  end

let pmf ~n ~k ~p =
  if k < 0 || k > n then Q.zero
  else
    Q.mul
      (Q.of_bigint (choose n k))
      (Q.mul (Q.pow p k) (Q.pow (Q.one_minus p) (n - k)))

let cdf ~n ~k ~p =
  let acc = ref Q.zero in
  for i = 0 to Stdlib.min k n do
    acc := Q.add !acc (pmf ~n ~k:i ~p)
  done;
  !acc

let two_sided_bounds ~n ~p ~alpha =
  if n < 1 then invalid_arg "Binomial.two_sided_bounds: n must be >= 1";
  if Q.sign p < 0 || Q.compare p Q.one > 0 then
    invalid_arg "Binomial.two_sided_bounds: p must be in [0, 1]";
  if Q.sign alpha <= 0 || Q.compare alpha Q.one >= 0 then
    invalid_arg "Binomial.two_sided_bounds: alpha must be in (0, 1)";
  if Q.is_zero p then (0, 0)
  else if Q.equal p Q.one then (n, n)
  else begin
    let a = Q.num p and b = Q.den p in
    let b_minus_a = Bigint.sub b a in
    (* All terms live over the common denominator b^n; alpha/2 = an/ad. *)
    let d = Bigint.pow b n in
    let half_alpha = Q.div alpha (Q.of_int 2) in
    let an = Q.num half_alpha and ad = Q.den half_alpha in
    let low_threshold = Bigint.mul d an in
    let high_threshold = Bigint.mul d (Bigint.sub ad an) in
    let term = ref (Bigint.pow b_minus_a n) in
    let acc = ref !term in
    let lo = ref (-1) and hi = ref (-1) in
    let k = ref 0 in
    while !hi < 0 && !k <= n do
      let scaled = Bigint.mul !acc ad in
      if !lo < 0 && Bigint.compare scaled low_threshold > 0 then lo := !k;
      if Bigint.compare scaled high_threshold >= 0 then hi := !k;
      if !hi < 0 then begin
        (* term_{k+1} = term_k * (n-k) * a / ((k+1) * (b-a)), exactly. *)
        let num = Bigint.mul !term (Bigint.mul (Bigint.of_int (n - !k)) a) in
        let q, r =
          Bigint.divmod num (Bigint.mul (Bigint.of_int (!k + 1)) b_minus_a)
        in
        assert (Bigint.sign r = 0);
        term := q;
        acc := Bigint.add !acc q;
        incr k
      end
    done;
    ((if !lo < 0 then n else !lo), (if !hi < 0 then n else !hi))
  end
