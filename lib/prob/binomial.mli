(** Exact binomial distribution arithmetic.

    {!pmf} and {!cdf} build normalized rationals and are meant for small
    [n] (closed-form cross-checks).  {!two_sided_bounds} is the
    Monte-Carlo differential workhorse: it runs entirely in integer
    arithmetic over the fixed denominator [b^n] (for [p = a/b]), using the
    exact term recurrence
    [term_{k+1} = term_k * (n-k) * a / ((k+1) * (b-a))], so it scales to
    the tens of thousands of trials a seeded netsim sweep produces. *)

val choose : int -> int -> Eba_util.Bigint.t
(** [choose n k]; zero outside [0 <= k <= n]. *)

val pmf : n:int -> k:int -> p:Q.t -> Q.t
(** [P(X = k)] for [X ~ Binomial(n, p)]. *)

val cdf : n:int -> k:int -> p:Q.t -> Q.t
(** [P(X <= k)]. *)

val two_sided_bounds : n:int -> p:Q.t -> alpha:Q.t -> int * int
(** [(lo, hi)] with [P(X < lo) <= alpha/2] and [P(X > hi) <= alpha/2] —
    the tightest such central interval: [lo] is the smallest [k] with
    [cdf k > alpha/2], [hi] the smallest [k] with [cdf k >= 1 - alpha/2].
    An observation outside [[lo, hi]] rejects [p] at level [alpha].
    Raises [Invalid_argument] unless [n >= 1], [0 <= p <= 1] and
    [0 < alpha < 1]. *)
