module Bigint = Eba_util.Bigint

type t = { num : Bigint.t; den : Bigint.t }

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }

let make num den =
  let s = Bigint.sign den in
  if s = 0 then raise Division_by_zero;
  let num = if s < 0 then Bigint.neg num else num in
  let den = Bigint.abs den in
  if Bigint.sign num = 0 then zero
  else begin
    let g = Bigint.gcd num den in
    if Bigint.equal g Bigint.one then { num; den }
    else { num = fst (Bigint.divmod num g); den = fst (Bigint.divmod den g) }
  end

let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)
let of_int a = { num = Bigint.of_int a; den = Bigint.one }
let of_bigint n = { num = n; den = Bigint.one }

let of_float f =
  if not (Float.is_finite f) then invalid_arg "Q.of_float: not finite";
  if f = 0.0 then zero
  else begin
    let m, e = Float.frexp f in
    (* m * 2^53 is an integer of magnitude < 2^53: every finite float is
       exactly this dyadic rational. *)
    let mi = int_of_float (Float.ldexp m 53) in
    let e = e - 53 in
    let two = Bigint.of_int 2 in
    if e >= 0 then make (Bigint.mul (Bigint.of_int mi) (Bigint.pow two e)) Bigint.one
    else make (Bigint.of_int mi) (Bigint.pow two (-e))
  end

let of_decimal_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Q.of_decimal_string: empty string";
  let negated = s.[0] = '-' in
  let start = if negated || s.[0] = '+' then 1 else 0 in
  let buf = Buffer.create len in
  let frac = ref (-1) in
  for i = start to len - 1 do
    match s.[i] with
    | '0' .. '9' as c ->
        Buffer.add_char buf c;
        if !frac >= 0 then incr frac
    | '.' when !frac < 0 -> frac := 0
    | c -> invalid_arg (Printf.sprintf "Q.of_decimal_string: bad char %C" c)
  done;
  if Buffer.length buf = 0 then
    invalid_arg "Q.of_decimal_string: no digits";
  let digits = Bigint.of_string (Buffer.contents buf) in
  let den = Bigint.pow (Bigint.of_int 10) (Stdlib.max 0 !frac) in
  let v = make digits den in
  if negated then { v with num = Bigint.neg v.num } else v

let num q = q.num
let den q = q.den
let sign q = Bigint.sign q.num
let is_zero q = Bigint.sign q.num = 0
let neg q = { q with num = Bigint.neg q.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv q =
  match Bigint.sign q.num with
  | 0 -> raise Division_by_zero
  | s when s > 0 -> { num = q.den; den = q.num }
  | _ -> { num = Bigint.neg q.den; den = Bigint.abs q.num }

let div a b = mul a (inv b)
let one_minus q = sub one q

let pow q k =
  (* Normalized input stays normalized: gcd(n^k, d^k) = gcd(n, d)^k = 1.
     This is the engine's hot path — no gcd of huge operands, ever. *)
  if k = 0 then one
  else if k > 0 then { num = Bigint.pow q.num k; den = Bigint.pow q.den k }
  else inv { num = Bigint.pow q.num (-k); den = Bigint.pow q.den (-k) }

let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_string q =
  if Bigint.equal q.den Bigint.one then Bigint.to_string q.num
  else Bigint.to_string q.num ^ "/" ^ Bigint.to_string q.den

let decimal_of_ratio ?(sig_figs = 9) ~num ~den () =
  if sig_figs < 1 then invalid_arg "Q.decimal_of_ratio: sig_figs must be >= 1";
  if Bigint.sign den <= 0 then
    invalid_arg "Q.decimal_of_ratio: denominator must be > 0";
  if Bigint.sign num = 0 then "0"
  else begin
    let ten = Bigint.of_int 10 in
    let n = Bigint.abs num and d = den in
    (* Mantissa of [sig_figs] digits at trial exponent [e]: round
       n * 10^(sig_figs - 1 - e) / d half-up on the magnitude. *)
    let mantissa_at e =
      let k = sig_figs - 1 - e in
      let a, b =
        if k >= 0 then (Bigint.mul n (Bigint.pow ten k), d)
        else (n, Bigint.mul d (Bigint.pow ten (-k)))
      in
      let m, r = Bigint.divmod a b in
      if Bigint.compare (Bigint.mul (Bigint.of_int 2) r) b >= 0 then
        Bigint.add m Bigint.one
      else m
    in
    let lo = Bigint.pow ten (sig_figs - 1) in
    let hi = Bigint.mul lo ten in
    let e = ref (Bigint.num_digits n - Bigint.num_digits d) in
    let m = ref (mantissa_at !e) in
    while Bigint.compare !m lo < 0 do
      decr e;
      m := mantissa_at !e
    done;
    while Bigint.compare !m hi >= 0 do
      incr e;
      m := mantissa_at !e
    done;
    let digits = Bigint.to_string !m in
    let trimmed =
      let stop = ref (String.length digits) in
      while !stop > 1 && digits.[!stop - 1] = '0' do
        decr stop
      done;
      String.sub digits 0 !stop
    in
    let sign = if Bigint.sign num < 0 then "-" else "" in
    let e = !e in
    if e >= -4 && e < sig_figs then begin
      if e >= 0 then begin
        let width = e + 1 in
        let whole =
          if String.length trimmed >= width then String.sub trimmed 0 width
          else trimmed ^ String.make (width - String.length trimmed) '0'
        in
        let frac =
          if String.length trimmed > width then
            "." ^ String.sub trimmed width (String.length trimmed - width)
          else ""
        in
        sign ^ whole ^ frac
      end
      else sign ^ "0." ^ String.make (-e - 1) '0' ^ trimmed
    end
    else begin
      let head = String.make 1 trimmed.[0] in
      let tail =
        if String.length trimmed > 1 then
          "." ^ String.sub trimmed 1 (String.length trimmed - 1)
        else ""
      in
      Printf.sprintf "%s%s%se%+03d" sign head tail e
    end
  end

let to_decimal ?sig_figs q = decimal_of_ratio ?sig_figs ~num:q.num ~den:q.den ()

let pp fmt q = Format.pp_print_string fmt (to_string q)
