(** Exact rational arithmetic over {!Eba_util.Bigint}.

    Values are kept normalized: the denominator is strictly positive, the
    sign lives on the numerator, and [gcd (|num|, den) = 1] — so
    structural equality coincides with numeric equality and [pow] never
    needs a gcd (a normalized input stays normalized under limb-wise
    exponentiation).  The probability engine relies on that: its large
    values are powers of small normalized rationals, and reducing two
    similar-size thousand-limb operands is the one operation this module
    is designed never to perform. *)

type t = private { num : Eba_util.Bigint.t; den : Eba_util.Bigint.t }

val make : Eba_util.Bigint.t -> Eba_util.Bigint.t -> t
(** [make num den] normalizes; raises [Division_by_zero] on [den = 0]. *)

val of_ints : int -> int -> t
val of_int : int -> t
val of_bigint : Eba_util.Bigint.t -> t
val zero : t
val one : t

val of_float : float -> t
(** Exact dyadic value of the float.  Raises [Invalid_argument] on
    non-finite input. *)

val of_decimal_string : string -> t
(** Exact value of a decimal literal: ["0.05"] is 1/20, not the nearest
    double.  Accepts an optional sign, digits, and at most one point; no
    exponent.  Raises [Invalid_argument] otherwise. *)

val num : t -> Eba_util.Bigint.t
val den : t -> Eba_util.Bigint.t
val sign : t -> int
val is_zero : t -> bool

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Raises [Division_by_zero]. *)

val inv : t -> t
val one_minus : t -> t

val pow : t -> int -> t
(** Negative exponents invert; [pow zero k] with [k < 0] raises
    [Division_by_zero]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val to_string : t -> string
(** ["num/den"], or just ["num"] when the denominator is 1. *)

val to_decimal : ?sig_figs:int -> t -> string
(** Deterministic [%g]-style decimal rendering: [sig_figs] significant
    digits (default 9, rounded half-up on the magnitude), trailing zeros
    trimmed, positional notation for exponents in [[-4, sig_figs)] and
    scientific (["3.90625e-11"]) outside. *)

val decimal_of_ratio :
  ?sig_figs:int -> num:Eba_util.Bigint.t -> den:Eba_util.Bigint.t -> unit -> string
(** {!to_decimal} on a raw numerator/denominator pair that need not be
    reduced.  This is how callers render differences of huge same-scale
    powers (e.g. landing-round masses): building them over a hand-picked
    common denominator and skipping normalization avoids the one operation
    the engine cannot afford, a gcd of two structure-free thousand-limb
    operands.  Requires [den > 0]. *)

val pp : Format.formatter -> t -> unit
