module Bigint = Eba_util.Bigint
module Json = Eba_util.Json
module Link = Eba_net.Link
module Sync = Eba_net.Sync

type t = {
  n : int;
  t_faults : int;
  rounds : int;
  loss : Q.t;
  latency : Link.latency;
  sync : Sync.t;
  spec : Round_chain.spec;
  messages_per_round : int;
  messages_per_run : int;
  per_message_miss : Q.t;
  expected_misses_per_run : Q.t;
  window_clean : Q.t;
  run_all_delivered : Q.t;
  landing : Round_chain.landing;
  decision_time_ns : Q.t;
}

let sig_figs = 9

let make ?cancel ~n ~t ~rounds ~loss ~latency ~sync () =
  if n < 2 then invalid_arg "Prob.Report.make: n must be >= 2";
  if t < 0 then invalid_arg "Prob.Report.make: t must be >= 0";
  if rounds < 1 then invalid_arg "Prob.Report.make: rounds must be >= 1";
  let check () = Eba_util.Cancel.check_opt cancel in
  let spec = Round_chain.spec ~sync ~latency ~loss in
  let m = n * (n - 1) in
  let mr = m * rounds in
  let q = Round_chain.per_message_miss spec in
  check ();
  let window_clean = Round_chain.window_clean spec ~m in
  check ();
  let run_all_delivered = Q.pow (Q.one_minus q) mr in
  check ();
  let landing = Round_chain.landing ~sig_figs ?cancel spec ~m in
  {
    n;
    t_faults = t;
    rounds;
    loss;
    latency;
    sync;
    spec;
    messages_per_round = m;
    messages_per_run = mr;
    per_message_miss = q;
    expected_misses_per_run = Q.mul (Q.of_int mr) q;
    window_clean;
    run_all_delivered;
    landing;
    decision_time_ns =
      Q.mul
        (Q.of_int (rounds * 1_000_000_000))
        (Q.of_float sync.Sync.round_duration);
  }

let rat q =
  Json.Obj
    [
      ("num", Json.String (Bigint.to_string (Q.num q)));
      ("den", Json.String (Bigint.to_string (Q.den q)));
      ("decimal", Json.String (Q.to_decimal ~sig_figs q));
    ]

(* [power] is [base^exp] already computed exactly; emit the factored exact
   form plus the decimal of the full power. *)
let pow_rat ~base ~exp ~power =
  Json.Obj
    [
      ("base_num", Json.String (Bigint.to_string (Q.num base)));
      ("base_den", Json.String (Bigint.to_string (Q.den base)));
      ("exp", Json.Int exp);
      ("decimal", Json.String (Q.to_decimal ~sig_figs power));
    ]

let to_json r =
  let spec = r.spec in
  let landing_json =
    Json.Obj
      [
        ( "all_by",
          Json.List
            (List.init (spec.Round_chain.attempts + 1) (fun k ->
                 pow_rat
                   ~base:(Q.one_minus (Round_chain.miss_after spec k))
                   ~exp:r.messages_per_round
                   ~power:r.landing.Round_chain.all_by_attempt.(k))) );
        ( "exactly",
          Json.List
            (Array.to_list
               (Array.map
                  (fun s -> Json.String s)
                  r.landing.Round_chain.exactly_decimal)) );
        ("residual", Json.String r.landing.Round_chain.residual_decimal);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "eba-prob/1");
      ("protocol", Json.String "FloodSet");
      ("n", Json.Int r.n);
      ("t", Json.Int r.t_faults);
      ("rounds", Json.Int r.rounds);
      ("loss", rat r.loss);
      ("latency", Json.String (Link.latency_to_string r.latency));
      ( "sync",
        Json.Obj
          [
            ("round_duration", Json.Float r.sync.Sync.round_duration);
            ("rto", Json.Float r.sync.Sync.rto);
            ("max_retries", Json.Int r.sync.Sync.max_retries);
            ("attempts", Json.Int spec.Round_chain.attempts);
          ] );
      ( "per_attempt_success",
        Json.List
          (Array.to_list (Array.map rat spec.Round_chain.success)) );
      ("per_message_miss", rat r.per_message_miss);
      ("messages_per_round", Json.Int r.messages_per_round);
      ("messages_per_run", Json.Int r.messages_per_run);
      ("expected_misses_per_run", rat r.expected_misses_per_run);
      ( "window_clean",
        pow_rat
          ~base:(Q.one_minus r.per_message_miss)
          ~exp:r.messages_per_round ~power:r.window_clean );
      ( "run_all_delivered",
        pow_rat
          ~base:(Q.one_minus r.per_message_miss)
          ~exp:r.messages_per_run ~power:r.run_all_delivered );
      ("landing", landing_json);
      ("decision_time_ns", rat r.decision_time_ns);
    ]

let to_text r =
  let spec = r.spec in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let show q = Printf.sprintf "%s = %s" (Q.to_string q) (Q.to_decimal ~sig_figs q) in
  line "probcheck: FloodSet n=%d t=%d rounds=%d loss=%s latency=%s" r.n
    r.t_faults r.rounds (Q.to_string r.loss)
    (Link.latency_to_string r.latency);
  line "sync: %s -> attempts=%d"
    (Format.asprintf "%a" Sync.pp r.sync)
    spec.Round_chain.attempts;
  Array.iteri
    (fun i s -> line "attempt %d: success %s" (i + 1) (show s))
    spec.Round_chain.success;
  line "per-message residual miss: %s" (show r.per_message_miss);
  line "messages: %d per round, %d per run" r.messages_per_round
    r.messages_per_run;
  line "expected misses per run: %s" (show r.expected_misses_per_run);
  line "window clean (all %d copies land): (%s)^%d = %s" r.messages_per_round
    (Q.to_string (Q.one_minus r.per_message_miss))
    r.messages_per_round
    (Q.to_decimal ~sig_figs r.window_clean);
  line "run all-delivered: (%s)^%d = %s"
    (Q.to_string (Q.one_minus r.per_message_miss))
    r.messages_per_run
    (Q.to_decimal ~sig_figs r.run_all_delivered);
  line "landing of the window's last copy:";
  Array.iteri
    (fun i d ->
      line "  attempt %d: %s (all by: %s)" (i + 1) d
        (Q.to_decimal ~sig_figs r.landing.Round_chain.all_by_attempt.(i + 1)))
    r.landing.Round_chain.exactly_decimal;
  line "  misses window: %s" r.landing.Round_chain.residual_decimal;
  line "decision time: %s ns (deterministic, close of round %d)"
    (Q.to_decimal ~sig_figs:18 r.decision_time_ns)
    r.rounds;
  Buffer.contents buf
