(** Whole-sweep exact probability report (the [eba probcheck] payload).

    Assembles the {!Round_chain} window analysis into the quantities a
    loss-only FloodSet sweep exposes: with [n] processors every alive
    sender transmits to every other in each of the [rounds] windows
    ([m = n * (n-1)] messages per window), and the protocol decides
    deterministically at the close of the last window — so the per-message
    residual miss [q] lifts to exact sweep-level answers:
    [E misses = m * rounds * q], [P(all delivered) = (1-q)^(m*rounds)],
    and a deterministic decision time of [rounds * round_duration].

    The same report object feeds the CLI text/JSON renderings, the
    benchmark artifact's [prob] section, and the golden tests — one
    producer, byte-identical everywhere.  Huge power-shaped probabilities
    are emitted in factored exact form ([base^exp] plus a decimal
    rendering) so the JSON stays small and exact at [n = 64]. *)

type t = {
  n : int;
  t_faults : int;
  rounds : int;
  loss : Q.t;
  latency : Eba_net.Link.latency;
  sync : Eba_net.Sync.t;
  spec : Round_chain.spec;
  messages_per_round : int;  (** [n * (n-1)] *)
  messages_per_run : int;  (** [messages_per_round * rounds] *)
  per_message_miss : Q.t;
  expected_misses_per_run : Q.t;
  window_clean : Q.t;  (** [(1-q)^m], exact *)
  run_all_delivered : Q.t;  (** [(1-q)^(m * rounds)], exact *)
  landing : Round_chain.landing;
  decision_time_ns : Q.t;
      (** [rounds * round_duration] in integer-exact nanoseconds *)
}

val make :
  ?cancel:Eba_util.Cancel.t ->
  n:int ->
  t:int ->
  rounds:int ->
  loss:Q.t ->
  latency:Eba_net.Link.latency ->
  sync:Eba_net.Sync.t ->
  unit ->
  t
(** Raises [Invalid_argument] on [n < 2], [t < 0], [rounds < 1] or a loss
    outside [[0, 1)].  [cancel] is polled between the report's major
    exact computations and before each {!Round_chain.landing} row; a
    fired token raises {!Eba_util.Cancel.Cancelled}. *)

val sig_figs : int
(** Significant digits of every decimal rendering in the report (9). *)

val to_json : t -> Eba_util.Json.t
(** Schema [eba-prob/1].  Small rationals appear as
    [{"num", "den", "decimal"}] objects (exact, normalized); power-shaped
    quantities as [{"base_num", "base_den", "exp", "decimal"}]. *)

val to_text : t -> string
(** Human-readable rendering of the same numbers. *)
