module Bigint = Eba_util.Bigint
module Sync = Eba_net.Sync
module Link = Eba_net.Link

type spec = {
  attempts : int;
  loss : Q.t;
  in_window : Q.t array;
  success : Q.t array;
}

let clamp01 q = Q.max Q.zero (Q.min Q.one q)

let latency_cdf lat ~cutoff =
  match lat with
  | Link.Const c -> if Q.compare (Q.of_float c) cutoff < 0 then Q.one else Q.zero
  | Link.Uniform (lo, hi) ->
      if hi = lo then
        if Q.compare (Q.of_float lo) cutoff < 0 then Q.one else Q.zero
      else begin
        let lo = Q.of_float lo and hi = Q.of_float hi in
        clamp01 (Q.div (Q.sub cutoff lo) (Q.sub hi lo))
      end
  | Link.Spike { base; prob; spike } ->
      let p = clamp01 (Q.of_float prob) in
      let hit q = if Q.compare (Q.of_float q) cutoff < 0 then Q.one else Q.zero in
      Q.add (Q.mul (Q.one_minus p) (hit base)) (Q.mul p (hit spike))

let spec ~sync ~latency ~loss =
  if Q.sign loss < 0 || Q.compare loss Q.one >= 0 then
    invalid_arg "Round_chain.spec: loss must be in [0, 1)";
  let offsets = Sync.attempt_times sync in
  let attempts = Array.length offsets in
  let window = Q.of_float sync.Sync.round_duration in
  let in_window =
    Array.map
      (fun off -> latency_cdf latency ~cutoff:(Q.sub window (Q.of_float off)))
      offsets
  in
  let survive = Q.one_minus loss in
  let success = Array.map (fun u -> Q.mul survive u) in_window in
  { attempts; loss; in_window; success }

let miss_after spec k =
  if k < 0 || k > spec.attempts then
    invalid_arg "Round_chain.miss_after: attempt index out of range";
  let acc = ref Q.one in
  for a = 0 to k - 1 do
    acc := Q.mul !acc (Q.one_minus spec.success.(a))
  done;
  !acc

let per_message_miss spec = miss_after spec spec.attempts

let all_by spec ~m ~k =
  if m < 0 then invalid_arg "Round_chain.all_by: m must be >= 0";
  Q.pow (Q.one_minus (miss_after spec k)) m

let window_clean spec ~m = all_by spec ~m ~k:spec.attempts
let expected_undelivered spec ~m = Q.mul (Q.of_int m) (per_message_miss spec)

type landing = {
  all_by_attempt : Q.t array;
  exactly_decimal : string array;
  residual_decimal : string;
}

let landing ?sig_figs ?cancel spec ~m =
  if m < 1 then invalid_arg "Round_chain.landing: m must be >= 1";
  let all_by_attempt =
    Array.init
      (spec.attempts + 1)
      (fun k ->
        Eba_util.Cancel.check_opt cancel;
        all_by spec ~m ~k)
  in
  let exactly_decimal =
    Array.init spec.attempts (fun i ->
        (* all_by (k) - all_by (k-1) over the product denominator —
           never normalized, never gcd'd. *)
        let hi = all_by_attempt.(i + 1) and lo = all_by_attempt.(i) in
        let num =
          Bigint.sub
            (Bigint.mul (Q.num hi) (Q.den lo))
            (Bigint.mul (Q.num lo) (Q.den hi))
        in
        let den = Bigint.mul (Q.den hi) (Q.den lo) in
        Q.decimal_of_ratio ?sig_figs ~num ~den ())
  in
  let residual_decimal =
    let clean = all_by_attempt.(spec.attempts) in
    Q.decimal_of_ratio ?sig_figs
      ~num:(Bigint.sub (Q.den clean) (Q.num clean))
      ~den:(Q.den clean) ()
  in
  { all_by_attempt; exactly_decimal; residual_decimal }

let chain spec ~m =
  if m < 0 then invalid_arg "Round_chain.chain: m must be >= 0";
  let rows = Array.make (spec.attempts + 1) [||] in
  let row0 = Array.make (m + 1) Q.zero in
  row0.(m) <- Q.one;
  rows.(0) <- row0;
  for a = 1 to spec.attempts do
    let s = spec.success.(a - 1) in
    let fail = Q.one_minus s in
    let prev = rows.(a - 1) in
    let next = Array.make (m + 1) Q.zero in
    for j = 0 to m do
      if not (Q.is_zero prev.(j)) then
        (* j undelivered; each lands independently with probability s. *)
        for i = 0 to j do
          let move =
            Q.mul
              (Q.of_bigint (Binomial.choose j i))
              (Q.mul (Q.pow s i) (Q.pow fail (j - i)))
          in
          next.(j - i) <- Q.add next.(j - i) (Q.mul prev.(j) move)
        done
    done;
    rows.(a) <- next
  done;
  rows

let pp_spec fmt spec =
  Format.fprintf fmt "attempts=%d loss=%s success=[%s]" spec.attempts
    (Q.to_string spec.loss)
    (String.concat "; " (Array.to_list (Array.map Q.to_string spec.success)))
