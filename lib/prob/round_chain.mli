(** Exact Markov analysis of one {!Eba_net.Sync} round window.

    A round-[k] message is transmitted up to [A = Sync.attempts] times:
    attempt [a] fires at the window offsets {!Eba_net.Sync.attempt_times}
    reports (the PR 6 boundary-exact schedule), its copy survives the link
    with probability [1 - loss], and the surviving copy beats the window
    close with the latency-model probability [u_a] ([in_window]).  Attempt
    outcomes are independent, and a missed message keeps retransmitting
    through the whole budget (no delivery means no data ack ever arrives;
    ack loss merely causes duplicates), so the per-attempt success
    probabilities [s_a = (1 - loss) * u_a] drive everything:

    - a single message still misses its window with probability
      [prod_a (1 - s_a)] ({!per_message_miss});
    - the undelivered-copy count of [m] independent messages evolves as a
      Markov chain with binomial transition kernels in [s_a] ({!chain}),
      absorbing at 0 (all delivered) or at window close;
    - all [m] land within the first [k] attempts with probability
      [(1 - miss_after k)^m] ({!all_by}), the chain's row-[k] mass at 0.

    The chain is the ground truth the closed forms are differentially
    tested against at small [m]; the closed forms are what scales to the
    committed [n = 64] benchmark row.  The analysis models round 1 of a
    loss-only (fault-free) run; every window of such a run is
    probabilistically identical. *)

type spec = {
  attempts : int;  (** max transmissions per message, [Sync.attempts] *)
  loss : Q.t;  (** exact per-copy loss probability [p], [0 <= p < 1] *)
  in_window : Q.t array;
      (** [u_a]: probability a surviving attempt-[a] copy arrives strictly
          before the window closes (index [a - 1]) *)
  success : Q.t array;  (** [s_a = (1 - loss) * u_a] (index [a - 1]) *)
}

val latency_cdf : Eba_net.Link.latency -> cutoff:Q.t -> Q.t
(** [P(latency < cutoff)] under the exact-rational reading of the latency
    model's float parameters. *)

val spec : sync:Eba_net.Sync.t -> latency:Eba_net.Link.latency -> loss:Q.t -> spec
(** Raises [Invalid_argument] unless [0 <= loss < 1]. *)

val miss_after : spec -> int -> Q.t
(** [prod_{a <= k} (1 - s_a)]: probability a single message is still
    undelivered after its first [k] attempts ([1] for [k = 0]). *)

val per_message_miss : spec -> Q.t
(** [miss_after attempts]: the residual-miss probability after the whole
    retry budget. *)

val all_by : spec -> m:int -> k:int -> Q.t
(** [(1 - miss_after k)^m]: probability all [m] messages of the window
    land within their first [k] attempts. *)

val window_clean : spec -> m:int -> Q.t
(** [all_by ~m ~k:attempts]: no message misses the window. *)

val expected_undelivered : spec -> m:int -> Q.t
(** [m * per_message_miss]: expected misses per window. *)

type landing = {
  all_by_attempt : Q.t array;
      (** index [k in 0..attempts]: [all_by ~m ~k] (exact) *)
  exactly_decimal : string array;
      (** index [k - 1]: decimal of [all_by k - all_by (k-1)], the
          probability the window's last copy lands on attempt [k] *)
  residual_decimal : string;
      (** decimal of [1 - window_clean]: some copy misses the window *)
}

val landing : ?sig_figs:int -> ?cancel:Eba_util.Cancel.t -> spec -> m:int -> landing
(** Distribution of the attempt on which the window's last copy lands.
    The [exactly]/[residual] masses are differences of huge same-scale
    powers, so they are rendered via {!Q.decimal_of_ratio} over a common
    power denominator instead of materializing normalized rationals.
    Requires [m >= 1].  [cancel] is polled before each chain row
    (attempt); a fired token raises {!Eba_util.Cancel.Cancelled}. *)

val chain : spec -> m:int -> Q.t array array
(** [chain spec ~m] is the exact distribution of the undelivered-message
    count: row [k] (for [k in 0..attempts]) maps [j in 0..m] to the
    probability [j] messages remain undelivered after the window's first
    [k] attempts; row 0 is a point mass at [m].  O(m^2 * attempts)
    rational operations — the small-[m] ground truth. *)

val pp_spec : Format.formatter -> spec -> unit
