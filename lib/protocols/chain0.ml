(** The operational 0-chain protocol for omission failures (Section 6.2,
    Prop 6.4): an implementable counterpart of [FIP(Z⁰, O⁰)].

    A processor carries a {e chain flag} — "an initial 0 has reached me
    along a trusted hop-per-round path" — and a set of processors it knows
    to be faulty (a missing message convicts its sender: only senders fail
    in the sending-omission mode; convictions are gossiped).  Rules:

    - the flag starts true iff the initial value is 0, and is set at round
      [k] if some sender the receiver did not already suspect delivers a
      true flag in round [k];
    - decide 0 as soon as the flag is true;
    - decide 1 after the first round that brings {e no news}: no new
      suspicions, no new gossip, and no flag — then (Prop 6.4) no 0-chain
      can ever exist, so no nonfaulty processor will ever decide 0.

    All nonfaulty processors decide by time [f+1] where [f] processors
    actually fail.  The knowledge-based [FIP(Z⁰, O⁰)] dominates this
    implementation (its decide-1 test is the exact epistemic condition,
    not the no-news sufficient condition); the test-suite checks both
    directions of that relationship.

    The suspicion sets in state and on the wire are the only
    processor-set data, so the protocol is functorized over
    {!Eba_util.Procset.S}: [Word] at [n <= 62], [Wide] at any [n]. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value

module Make (S : Eba_util.Procset.S) = struct
  type msg = { m_chain : bool; m_suspected : S.t }

  type state = {
    me : int;
    n : int;
    chain : bool;
    suspected : S.t;
    decided : Value.t option;
    time : int;
  }

  let name = "Chain0"

  let init (params : Params.t) ~me value =
    let chain = Value.equal value Value.Zero in
    {
      me;
      n = params.Params.n;
      chain;
      suspected = S.empty;
      decided = (if chain then Some Value.Zero else None);
      time = 0;
    }

  let send (params : Params.t) st ~round:_ =
    let out = Array.make params.Params.n None in
    for j = 0 to params.Params.n - 1 do
      if j <> st.me then out.(j) <- Some { m_chain = st.chain; m_suspected = st.suspected }
    done;
    out

  let receive _params st ~round arrived =
    (* Silence in this round convicts the sender, and gossip arriving this
       round counts too: the chain-hop trust condition of the paper is
       ¬B^N at the time the hop lands, i.e. {e after} all round-k evidence.
       So convictions are merged first and flags accepted only from senders
       who survive the merge. *)
    let silent = ref S.empty in
    let gossip = ref S.empty in
    let flagged = ref S.empty in
    Array.iteri
      (fun j m ->
        if j <> st.me then
          match m with
          | None -> silent := S.add j !silent
          | Some { m_chain; m_suspected } ->
              gossip := S.union !gossip m_suspected;
              if m_chain then flagged := S.add j !flagged)
      arrived;
    let suspected' = S.union st.suspected (S.union !silent !gossip) in
    let no_news = S.equal suspected' st.suspected in
    let chain = st.chain || not (S.is_empty (S.diff !flagged suspected')) in
    let decided =
      match st.decided with
      | Some _ as d -> d
      | None ->
          if chain then Some Value.Zero
          else if no_news then Some Value.One
          else None
    in
    { st with chain; suspected = suspected'; decided; time = round }

  let output st = st.decided

  (* flag byte + the suspicion set as a dense bitmap *)
  let wire_size (params : Params.t) (_ : msg) =
    Protocol_intf.Wire.(header + 1 + set_bytes params.Params.n)
end

module Word = Make (Eba_util.Procset.Word)
module Wide = Make (Eba_util.Procset.Wide)
include Word

let for_params (params : Params.t) : (module Protocol_intf.PROTOCOL) =
  if params.Params.n <= Eba_util.Bitset.max_width then (module Word) else (module Wide)
