(** The operational 0-chain protocol for sending-omission failures
    (Section 6.2, Prop 6.4): an implementable counterpart of
    [FIP(Z⁰, O⁰)].  Decide 0 when an initial 0 arrives along a trusted
    hop-per-round path; decide 1 after the first round that brings no new
    fault evidence.  All nonfaulty processors decide by time [f+1] when
    [f] processors actually fail; under {e general} omissions the protocol
    remains safe but loses liveness (silence no longer convicts the
    sender). *)

module Make (S : Eba_util.Procset.S) : Protocol_intf.PROTOCOL
(** The protocol over an arbitrary processor-set representation; all
    instances decide identically and send bit-identical messages. *)

module Word : Protocol_intf.PROTOCOL
(** [Make (Procset.Word)]: single-word suspicion sets, [n <= 62]. *)

module Wide : Protocol_intf.PROTOCOL
(** [Make (Procset.Wide)]: limb-array suspicion sets, any [n]. *)

include Protocol_intf.PROTOCOL
(** The historical interface — an alias of {!Word}. *)

val for_params : Eba_sim.Params.t -> (module Protocol_intf.PROTOCOL)
(** {!Word} when [n] fits a single word, {!Wide} beyond. *)
