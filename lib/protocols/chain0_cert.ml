(** [Chain0-cert]: the bounded-bandwidth variant of {!Chain0} — identical
    chain flag and suspicion-set evolution, but instead of gossiping the
    whole suspicion set every round, a processor sends each destination a
    {e certificate}: the suspicions the destination is not yet proven to
    hold.

    The same confirm-or-resend discipline as {!P0opt_delta}, specialized
    to suspicion sets:

    - [confirmed.(d)] accumulates the suspicions that arrived {e in
      certificates from [d]} (whatever [d] gossiped, [d] suspects — and
      suspicion sets only grow);
    - the certificate to [d] carries [suspected \ confirmed.(d)] plus a
      one-round {e fresh echo} of the suspicions gained last round, so
      convictions learned from [d] itself flow back as confirmation and
      the certificates go quiet — exactly when the full protocol's
      {e no-news} decide-1 rule fires;
    - the chain flag still rides in every message (one byte), and set
      union is idempotent, so late or retransmitted copies merge cleanly
      under the round-stamped header.

    Certificate contents differ from the full suspicion sets, but the
    receiver-side union reconstructs the identical [suspected'] at every
    step (missing elements are precisely ones the receiver already holds),
    so flags, convictions, no-news rounds — and therefore decisions in
    value and time — match {!Chain0} on every run.  The differential suite
    checks this point-for-point over exhaustive omission universes and at
    the wide netsim scales. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value

module Make (S : Eba_util.Procset.S) = struct
  type msg = { c_round : int; c_chain : bool; c_news : S.t }

  type state = {
    me : int;
    n : int;
    chain : bool;
    suspected : S.t;
    confirmed : S.t array;  (* per destination: suspicions provably held there *)
    fresh : S.t;  (* suspicions gained in the previous round's receive *)
    decided : Value.t option;
    time : int;
  }

  let name = "Chain0-cert"

  let init (params : Params.t) ~me value =
    let chain = Value.equal value Value.Zero in
    {
      me;
      n = params.Params.n;
      chain;
      suspected = S.empty;
      confirmed = Array.make params.Params.n S.empty;
      fresh = S.empty;
      decided = (if chain then Some Value.Zero else None);
      time = 0;
    }

  let send (params : Params.t) st ~round =
    let out = Array.make params.Params.n None in
    for d = 0 to params.Params.n - 1 do
      if d <> st.me then
        let news = S.union (S.diff st.suspected st.confirmed.(d)) st.fresh in
        out.(d) <- Some { c_round = round; c_chain = st.chain; c_news = news }
    done;
    out

  let receive _params st ~round arrived =
    (* the full protocol's rules verbatim, with certificates in place of
       whole suspicion sets as the gossip *)
    let silent = ref S.empty in
    let gossip = ref S.empty in
    let flagged = ref S.empty in
    let confirmed = Array.copy st.confirmed in
    Array.iteri
      (fun j m ->
        if j <> st.me then
          match m with
          | None -> silent := S.add j !silent
          | Some { c_round = _; c_chain; c_news } ->
              gossip := S.union !gossip c_news;
              (* whatever j gossiped, j suspects *)
              confirmed.(j) <- S.union confirmed.(j) c_news;
              if c_chain then flagged := S.add j !flagged)
      arrived;
    let suspected' = S.union st.suspected (S.union !silent !gossip) in
    let no_news = S.equal suspected' st.suspected in
    let chain = st.chain || not (S.is_empty (S.diff !flagged suspected')) in
    let decided =
      match st.decided with
      | Some _ as d -> d
      | None ->
          if chain then Some Value.Zero
          else if no_news then Some Value.One
          else None
    in
    {
      st with
      chain;
      suspected = suspected';
      confirmed;
      fresh = S.diff suspected' st.suspected;
      decided;
      time = round;
    }

  let output st = st.decided

  (* flag byte + sparse conviction ids, never above the dense bitmap *)
  let wire_size (params : Params.t) m =
    let open Protocol_intf.Wire in
    let n = params.Params.n in
    header + 1 + min (proc_id * S.cardinal m.c_news) (set_bytes n)
end

module Word = Make (Eba_util.Procset.Word)
module Wide = Make (Eba_util.Procset.Wide)
include Word

let for_params (params : Params.t) : (module Protocol_intf.PROTOCOL) =
  if params.Params.n <= Eba_util.Bitset.max_width then (module Word) else (module Wide)
