(** [Chain0-cert]: the bounded-bandwidth variant of {!Chain0}.

    Same chain flag and suspicion-set evolution, but each destination
    receives a {e certificate} — the suspicions it is not yet proven to
    hold (confirm-or-resend with a one-round echo of fresh convictions)
    — instead of the whole suspicion set, under a round-stamped header
    that keeps the receiving union idempotent.

    Decisions are identical to {!Chain0} in value and round on every run
    (checked exhaustively by the differential suite); only
    {!Protocol_intf.PROTOCOL.wire_size} differs — certificates empty out
    exactly as the run approaches the full protocol's no-news round, and
    never exceed the dense suspicion bitmap. *)

module Make (S : Eba_util.Procset.S) : Protocol_intf.PROTOCOL
(** The protocol over an arbitrary processor-set representation; all
    instances decide identically and send bit-identical messages. *)

module Word : Protocol_intf.PROTOCOL
(** [Make (Procset.Word)]: single-word sets, [n <= 62]. *)

module Wide : Protocol_intf.PROTOCOL
(** [Make (Procset.Wide)]: limb-array sets, any [n]. *)

include Protocol_intf.PROTOCOL
(** An alias of {!Word}, mirroring the full protocols' convention. *)

val for_params : Eba_sim.Params.t -> (module Protocol_intf.PROTOCOL)
(** {!Word} when [n] fits a single word, {!Wide} beyond. *)
