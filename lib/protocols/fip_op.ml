module View = Eba_fip.View
module Kb_protocol = Eba_core.Kb_protocol
module Decision_set = Eba_core.Decision_set
module Params = Eba_sim.Params
module Value = Eba_sim.Value

module Make (Ctx : sig
  val store : View.store
  val pair : Kb_protocol.pair
end) : Protocol_intf.PROTOCOL = struct
  let name = "FIP"

  type msg = View.id
  type state = { me : int; view : View.id }

  let init _params ~me value = { me; view = View.leaf Ctx.store ~owner:me value }

  let send (params : Params.t) st ~round:_ =
    Array.init params.Params.n (fun j -> if j = st.me then None else Some st.view)

  let receive _params st ~round:_ arrived =
    let received = Array.map Fun.id arrived in
    received.(st.me) <- None;
    { st with view = View.node Ctx.store ~owner:st.me ~prev:st.view ~received }

  let output st =
    let in_zero = Decision_set.mem Ctx.pair.Kb_protocol.zero st.view
    and in_one = Decision_set.mem Ctx.pair.Kb_protocol.one st.view in
    if in_zero && in_one then None
    else if in_zero then Some Value.Zero
    else if in_one then Some Value.One
    else None

  (* What travels here is a hash-consed view id into the shared arena, not
     a serialization of the view: header + an 8-byte store reference.  A
     real full-information wire format would grow exponentially with the
     round; this protocol exists for cross-layer differential testing, so
     its byte count is the (honest) cost of the reference, documented as
     such rather than a fiction of serializing the tree. *)
  let wire_size _params (_ : msg) = Protocol_intf.Wire.header + 8
end
