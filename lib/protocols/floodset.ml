(** FloodSet: the classical [t+1]-round simultaneous agreement protocol for
    crash failures, used as the SBA baseline.  Every processor floods the
    set of initial values it has seen; after round [t+1] all nonfaulty
    processors hold the same set and decide its minimum, simultaneously.

    This is the protocol EBA is measured against: it decides at time [t+1]
    in {e every} run, whereas the optimal EBA protocols usually decide much
    earlier. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value

type msg = bool * bool  (* (saw a 0, saw a 1) *)

type state = {
  me : int;
  deadline : int;
  saw_zero : bool;
  saw_one : bool;
  time : int;
}

let name = "FloodSet"

let init (params : Params.t) ~me value =
  {
    me;
    deadline = params.Params.t_failures + 1;
    saw_zero = Value.equal value Value.Zero;
    saw_one = Value.equal value Value.One;
    time = 0;
  }

let send (params : Params.t) st ~round:_ =
  let out = Array.make params.Params.n None in
  for j = 0 to params.Params.n - 1 do
    if j <> st.me then out.(j) <- Some (st.saw_zero, st.saw_one)
  done;
  out

let receive _params st ~round arrived =
  let saw_zero = ref st.saw_zero and saw_one = ref st.saw_one in
  Array.iter
    (function
      | Some (z, o) ->
          saw_zero := !saw_zero || z;
          saw_one := !saw_one || o
      | None -> ())
    arrived;
  { st with saw_zero = !saw_zero; saw_one = !saw_one; time = round }

let output st =
  if st.time >= st.deadline then
    Some (if st.saw_zero then Value.Zero else Value.One)
  else None

(* the two seen-value bits share one payload byte *)
let wire_size _params (_ : msg) = Protocol_intf.Wire.header + 1
