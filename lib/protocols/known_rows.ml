(** The per-processor row table shared by [P0opt+] and its compact-message
    variant [P0opt+delta]: for every processor [x] whose initial value has
    reached me, the row [(v_x, heard_x(1), ..., heard_x(k))] — everything a
    full-information view contains in the crash mode, in [O(n² T)] bits.

    The two protocols differ only in how rows travel (whole tables vs
    row-extension deltas); the decision rules operate on the table alone,
    so they live here and the equivalence of the two variants reduces to
    "the tables are equal at every step" (which the differential suite
    checks exhaustively).

    Rows are immutable once shared: every mutation copies first
    ({!Make.copy_row}), so a row can flow through messages by reference. *)

module Value = Eba_sim.Value

module Make (S : Eba_util.Procset.S) = struct
  type row = {
    r_value : Value.t;
    r_heard : S.t array;  (* r_heard.(k-1) = senders heard in round k *)
    r_upto : int;  (* rounds covered: r_heard.(0 .. r_upto - 1) are valid *)
  }

  let copy_row r = { r with r_heard = Array.copy r.r_heard }

  let merge_row mine theirs =
    match (mine, theirs) with
    | None, r | r, None -> r
    | Some a, Some b -> Some (if a.r_upto >= b.r_upto then a else b)

  let knows_zero table =
    Array.exists
      (function Some r -> Value.equal r.r_value Value.Zero | None -> false)
      table

  (* first round at which x is provably crashed: some known heard-set misses
     a message from x *)
  let crash_evidence table x =
    let best = ref None in
    Array.iteri
      (fun a row ->
        match row with
        | None -> ()
        | Some r ->
            if a <> x then
              for k = 1 to r.r_upto do
                if not (S.mem x r.r_heard.(k - 1)) then
                  match !best with
                  | Some b when b <= k -> ()
                  | Some _ | None -> best := Some k
              done)
      table;
    !best

  let upto table x = match table.(x) with None -> -1 | Some r -> r.r_upto

  let known_not_delivered table ~sender ~receiver ~round =
    match table.(receiver) with
    | Some r when round <= r.r_upto -> not (S.mem sender r.r_heard.(round - 1))
    | Some _ | None -> false

  (* Decide 1 at [time] when nobody can possibly know a 0 and be nonfaulty:
     the possibly-knows-0 fixpoint of the P0opt+ documentation, computed
     from the table alone. *)
  let safe_to_decide_one ~time table =
    let n = Array.length table in
    let evidence = Array.init n (fun x -> crash_evidence table x) in
    let k_now = Array.init n (fun x -> table.(x) = None) in
    let k_now = ref k_now in
    for k = 1 to time do
      let next =
        Array.init n (fun x ->
            upto table x < k
            && ((!k_now).(x)
               ||
               let feeds b =
                 (!k_now).(b)
                 && (not (known_not_delivered table ~sender:b ~receiver:x ~round:k))
                 && match evidence.(b) with Some kb -> kb >= k | None -> true
               in
               let rec any b = b < n && ((b <> x && feeds b) || any (b + 1)) in
               any 0))
      in
      k_now := next
    done;
    let threat x = (!k_now).(x) && evidence.(x) = None in
    let rec any x = x < n && (threat x || any (x + 1)) in
    not (any 0)
end
