(** The crash-mode EBA protocol of Prop 2.1's proof (after [LF82]): when a
    processor first learns that some processor has an initial value of 0,
    it decides 0 and relays the 0 once; a processor that has not learned of
    a 0 by time [t+1] decides 1.  {!P1} is the 0/1 mirror. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value

module Make (Target : sig
  val name : string

  val target : Value.t
  (** Decide [target] on learning of it; decide its negation at [t+1]. *)
end) : Protocol_intf.PROTOCOL = struct
  let name = Target.name

  type msg = Token  (* "some processor had initial value [target]" *)

  type state = {
    me : int;
    deadline : int;  (* t + 1 *)
    knows_target : bool;
    relayed : bool;
    time : int;
  }

  let init (params : Params.t) ~me value =
    {
      me;
      deadline = params.Params.t_failures + 1;
      knows_target = Value.equal value Target.target;
      relayed = false;
      time = 0;
    }

  let send (params : Params.t) st ~round:_ =
    let out = Array.make params.Params.n None in
    if st.knows_target && not st.relayed then
      for j = 0 to params.Params.n - 1 do
        if j <> st.me then out.(j) <- Some Token
      done;
    out

  let receive _params st ~round arrived =
    let heard = Array.exists (function Some Token -> true | None -> false) arrived in
    {
      st with
      relayed = st.relayed || st.knows_target;
      knows_target = st.knows_target || heard;
      time = round;
    }

  let output st =
    if st.knows_target then Some Target.target
    else if st.time >= st.deadline then Some (Value.negate Target.target)
    else None

  (* the token carries no payload: the header's tag byte says it all *)
  let wire_size _params Token = Protocol_intf.Wire.header
end

module P0 = Make (struct
  let name = "P0"
  let target = Value.Zero
end)

module P1 = Make (struct
  let name = "P1"
  let target = Value.One
end)
