(** [P0opt] (Section 2.2): the optimal crash-mode EBA protocol obtained by
    keeping [P0]'s rule for deciding 0 and deciding 1 as early as possible.

    Every processor maintains what it knows of the initial values and
    broadcasts that vector each round.  It decides 0 as soon as it learns
    of an initial 0, and decides 1 as soon as either

    (a) it knows every initial value is 1, or
    (b) it hears from the same set of processors in two consecutive rounds
        and still knows of no initial 0

    — in which case no nonfaulty processor can ever learn of a 0 (crash
    failures only).  Theorem 6.2: this makes the same decisions as the
    knowledge-based [F^Λ,2] at corresponding points, with linear-size
    messages instead of full-information ones.

    The only processor-set state is the heard-from set of rule (b), so the
    protocol is functorized over {!Eba_util.Procset.S}: [Word] keeps the
    single-word sets (and the allocation profile) of the original at
    [n <= 62]; [Wide] runs the identical rules at any [n] under the
    network simulator. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value

module Make (S : Eba_util.Procset.S) = struct
  type msg = Value.t option array  (* known initial values *)

  type state = {
    me : int;
    n : int;
    known : Value.t option array;
    heard_last : S.t option;  (* senders heard from in the last round *)
    heard_prev : S.t option;  (* ... and the round before *)
    time : int;
    decided : Value.t option;
  }

  let name = "P0opt"

  let knows_zero st =
    Array.exists (function Some v -> Value.equal v Value.Zero | None -> false) st.known

  let knows_all_one st =
    Array.for_all (function Some v -> Value.equal v Value.One | None -> false) st.known

  let quiescent st =
    (* condition (b): same heard-from set two rounds running *)
    match (st.heard_last, st.heard_prev) with
    | Some a, Some b -> S.equal a b
    | (Some _ | None), _ -> false

  let decide st =
    if st.decided <> None then st.decided
    else if knows_zero st then Some Value.Zero
    else if knows_all_one st || (st.time >= 2 && quiescent st) then Some Value.One
    else None

  let init (params : Params.t) ~me value =
    let known = Array.make params.Params.n None in
    known.(me) <- Some value;
    let st =
      { me; n = params.Params.n; known; heard_last = None; heard_prev = None; time = 0; decided = None }
    in
    { st with decided = decide st }

  let send (params : Params.t) st ~round:_ =
    (* One shared vector for every destination: [receive] copies before
       mutating and never writes into an arrived message, so the snapshot
       is immutable once sent. *)
    let snapshot : msg = st.known in
    Array.init params.Params.n (fun j -> if j = st.me then None else Some snapshot)

  let receive _params st ~round arrived =
    let known = Array.copy st.known in
    let heard = ref S.empty in
    Array.iteri
      (fun j m ->
        match m with
        | None -> ()
        | Some their_known ->
            heard := S.add j !heard;
            Array.iteri
              (fun p v -> match v with Some _ when known.(p) = None -> known.(p) <- v | _ -> ())
              their_known)
      arrived;
    let st =
      {
        st with
        known;
        heard_prev = st.heard_last;
        heard_last = Some !heard;
        time = round;
      }
    in
    { st with decided = decide st }

  let output st = st.decided

  (* full variant: the whole vector rides as a dense trit array *)
  let wire_size (params : Params.t) (_ : msg) =
    Protocol_intf.Wire.(header + trit_vector params.Params.n)
end

module Word = Make (Eba_util.Procset.Word)
module Wide = Make (Eba_util.Procset.Wide)
include Word

let for_params (params : Params.t) : (module Protocol_intf.PROTOCOL) =
  if params.Params.n <= Eba_util.Bitset.max_width then (module Word) else (module Wide)
