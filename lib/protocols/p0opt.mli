(** [P0opt] (Section 2.2): the optimal crash-mode EBA protocol obtained by
    keeping [P0]'s rule for deciding 0 and deciding 1 as early as possible
    with value-vector messages.  Decide 0 on learning of an initial 0;
    decide 1 when (a) every initial value is known to be 1, or (b) the
    heard-from set repeats in two consecutive rounds with no 0 known.

    Theorem 6.2 claims this matches the knowledge-based optimum [F^Λ,2];
    machine-checking shows that equivalence holds exactly for [t = 1] and
    fails for [t ≥ 2] (see {!P0opt_plus} and EXPERIMENTS.md E9).  [P0opt]
    remains a correct EBA protocol at every [t]. *)

module Make (S : Eba_util.Procset.S) : Protocol_intf.PROTOCOL
(** The protocol over an arbitrary processor-set representation.  All
    instances make bit-identical decisions and send bit-identical
    messages; only the set representation (hence width cap and
    allocation profile) differs. *)

module Word : Protocol_intf.PROTOCOL
(** [Make (Procset.Word)]: single-word sets, [n <= 62]. *)

module Wide : Protocol_intf.PROTOCOL
(** [Make (Procset.Wide)]: limb-array sets, any [n]. *)

include Protocol_intf.PROTOCOL
(** The historical interface — an alias of {!Word}. *)

val for_params : Eba_sim.Params.t -> (module Protocol_intf.PROTOCOL)
(** {!Word} when [n] fits a single word, {!Wide} beyond — so the
    simulator keeps the fast path at small [n] and never hits the
    bitset width cap at large [n]. *)
