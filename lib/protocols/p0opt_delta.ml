(** [P0opt-delta]: the bounded-bandwidth variant of {!P0opt} — identical
    decision rules over identical known-value vectors, but instead of
    broadcasting the whole vector every round, a processor sends each
    destination only the entries the destination is not yet known to hold.

    Naive "entries that changed since last round" is {e not} equivalent to
    the full protocol under failures: a faulty sender can deliver an entry
    to some destinations and not others in the round it was new, and a
    change-only delta would never offer it again.  The sound rule is
    {e confirm-or-resend}:

    - I keep, per destination [d], the set [confirmed.(d)] of slots I can
      prove [d] knows — [d]'s own slot, plus every slot that arrived {e in
      a message from [d]} (whatever [d] sent me, [d] knew);
    - the round-[k] message to [d] carries the entries of
      [known \ confirmed.(d)], plus a one-round {e fresh echo} of the
      entries I learned in round [k-1] (so knowledge I gained from [d]
      itself flows back as confirmation, and the deltas go quiet);
    - entries are [(slot, value)] pairs under a round-stamped header, and
      each slot holds at most one value per run, so merging arrived entries
      into the vector is idempotent: late, reordered or retransmitted
      copies within a round land in the same state.

    Induction over rounds shows every processor's [known] vector (and
    heard-from sets — message {e presence} is identical: both variants send
    to everyone, every round) equals the full variant's in every run, so
    decisions match in value and time everywhere; the test suite checks
    this point-for-point over exhaustive crash and omission universes and
    differentially at the wide netsim scales.  Only the wire size differs:
    deltas are empty from round 3 of a failure-free run, where the full
    vector keeps riding in full. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value

module type COMPACT = sig
  include Protocol_intf.PROTOCOL

  (** Test hooks: enough constructor/observer surface to drive [receive]
      with hand-built deltas and check reconstruction (the qcheck merge
      property), without exposing the state representation. *)

  val known : state -> Value.t option array
  (** A copy of the known-value vector. *)

  val message : round:int -> (int * Value.t) list -> msg
  (** A delta carrying exactly these entries. *)

  val entries : msg -> (int * Value.t) list
  (** The entries of a delta, in slot order. *)
end

module Make (S : Eba_util.Procset.S) = struct
  type msg = { d_round : int; d_entries : (int * Value.t) array }

  type state = {
    me : int;
    n : int;
    known : Value.t option array;
    confirmed : S.t array;  (* per destination: slots provably known there *)
    fresh : S.t;  (* slots learned in the previous round's receive *)
    heard_last : S.t option;
    heard_prev : S.t option;
    time : int;
    decided : Value.t option;
  }

  let name = "P0opt-delta"

  (* decision rules: verbatim P0opt *)

  let knows_zero st =
    Array.exists (function Some v -> Value.equal v Value.Zero | None -> false) st.known

  let knows_all_one st =
    Array.for_all (function Some v -> Value.equal v Value.One | None -> false) st.known

  let quiescent st =
    match (st.heard_last, st.heard_prev) with
    | Some a, Some b -> S.equal a b
    | (Some _ | None), _ -> false

  let decide st =
    if st.decided <> None then st.decided
    else if knows_zero st then Some Value.Zero
    else if knows_all_one st || (st.time >= 2 && quiescent st) then Some Value.One
    else None

  let init (params : Params.t) ~me value =
    let n = params.Params.n in
    let known = Array.make n None in
    known.(me) <- Some value;
    let st =
      {
        me;
        n;
        known;
        confirmed = Array.init n (fun d -> S.singleton d);
        fresh = S.singleton me;
        heard_last = None;
        heard_prev = None;
        time = 0;
        decided = None;
      }
    in
    { st with decided = decide st }

  let send (params : Params.t) st ~round =
    Array.init params.Params.n (fun d ->
        if d = st.me then None
        else begin
          let entries = ref [] in
          let conf = st.confirmed.(d) in
          for p = st.n - 1 downto 0 do
            if p <> d then
              match st.known.(p) with
              | Some v when (not (S.mem p conf)) || S.mem p st.fresh ->
                  entries := (p, v) :: !entries
              | Some _ | None -> ()
          done;
          Some { d_round = round; d_entries = Array.of_list !entries }
        end)

  let receive _params st ~round arrived =
    let known = Array.copy st.known in
    let confirmed = Array.copy st.confirmed in
    let heard = ref S.empty in
    let fresh = ref S.empty in
    Array.iteri
      (fun j m ->
        match m with
        | None -> ()
        | Some { d_round = _; d_entries } ->
            heard := S.add j !heard;
            let cj = ref confirmed.(j) in
            Array.iter
              (fun (p, v) ->
                if p >= 0 && p < Array.length known then begin
                  (* whatever j sent me, j knew at send time *)
                  cj := S.add p !cj;
                  match known.(p) with
                  | None ->
                      known.(p) <- Some v;
                      fresh := S.add p !fresh
                  | Some _ -> ()  (* one value per slot per run: idempotent *)
                end)
              d_entries;
            confirmed.(j) <- !cj)
      arrived;
    let st =
      {
        st with
        known;
        confirmed;
        fresh = !fresh;
        heard_prev = st.heard_last;
        heard_last = Some !heard;
        time = round;
      }
    in
    { st with decided = decide st }

  let output st = st.decided

  (* a delta never costs more than the dense vector the full variant sends *)
  let wire_size (params : Params.t) m =
    let open Protocol_intf.Wire in
    header + min (entry * Array.length m.d_entries) (trit_vector params.Params.n)

  (* test hooks *)
  let known st = Array.copy st.known
  let message ~round entries = { d_round = round; d_entries = Array.of_list entries }
  let entries m = Array.to_list m.d_entries
end

module Word = Make (Eba_util.Procset.Word)
module Wide = Make (Eba_util.Procset.Wide)
include Word

let for_params (params : Params.t) : (module Protocol_intf.PROTOCOL) =
  if params.Params.n <= Eba_util.Bitset.max_width then (module Word) else (module Wide)
