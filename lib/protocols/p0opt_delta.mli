(** [P0opt-delta]: the bounded-bandwidth variant of {!P0opt}.

    Same state, same decision rules, same message {e presence} — but each
    destination receives only the known-value entries it is not yet proven
    to hold ({e confirm-or-resend}: entries outside the per-destination
    confirmed set, plus a one-round echo of freshly learned entries), as
    sparse [(slot, value)] pairs under a round-stamped header that makes
    merging idempotent under loss, reordering and retransmission of copies.

    Decisions are identical to {!P0opt} in value and round on every run
    (checked exhaustively by the differential suite); only
    {!Protocol_intf.PROTOCOL.wire_size} differs — deltas shrink to the
    header once knowledge stabilizes, and never exceed the full variant's
    dense vector. *)

module type COMPACT = sig
  include Protocol_intf.PROTOCOL

  val known : state -> Eba_sim.Value.t option array
  (** A copy of the known-value vector (test hook). *)

  val message : round:int -> (int * Eba_sim.Value.t) list -> msg
  (** A delta carrying exactly these entries (test hook). *)

  val entries : msg -> (int * Eba_sim.Value.t) list
  (** The entries of a delta, in slot order (test hook). *)
end

module Make (S : Eba_util.Procset.S) : COMPACT
(** The protocol over an arbitrary processor-set representation; all
    instances decide identically and send bit-identical messages. *)

module Word : COMPACT
(** [Make (Procset.Word)]: single-word sets, [n <= 62]. *)

module Wide : COMPACT
(** [Make (Procset.Wide)]: limb-array sets, any [n]. *)

include COMPACT
(** An alias of {!Word}, mirroring the full protocols' convention. *)

val for_params : Eba_sim.Params.t -> (module Protocol_intf.PROTOCOL)
(** {!Word} when [n] fits a single word, {!Wide} beyond. *)
