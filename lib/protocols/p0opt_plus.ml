(** [P0opt+]: an optimal crash-mode EBA protocol with polynomial-size
    messages that matches the knowledge-based [F^Λ,2] {e for every t}.

    Theorem 6.2 presents [P0opt] (value vectors + the "same heard-set
    twice" rule) as equivalent to [F^Λ,2].  Exhaustive checking shows that
    equivalence is a [t = 1] phenomenon: for [t ≥ 2], a processor that
    crashes in round 1 while delivering its last message {e to me} keeps my
    heard-set shrinking, so rule (b) stays silent even when gossiped
    delivery evidence already pins every potential witness of a 0 as dead.
    [P0opt] remains correct but is strictly dominated.

    This variant closes the gap by gossiping, for every processor [j], the
    row [(v_j, heard_j(1), ..., heard_j(k))] — everything a full-information
    view contains in the crash mode, in [O(n² T)] bits.  Decisions:

    - decide 0 on (transitively) learning any initial 0;
    - decide 1 at time [m] when nobody can possibly know a 0 and be
      nonfaulty: compute the {e possibly-knows-0} relation
      [K(x, k)] — [x]'s value is unknown to me at [k = 0]; thereafter
      [K(x,k)] holds if my rows do not cover [x]'s time-[k] state and
      either [K(x,k-1)], or some [b] with [K(b,k-1)] might have delivered
      to [x] in round [k] ([b] not provably crashed before [k], delivery
      not contradicted by a known heard-set).  Decide 1 iff every [x] with
      [K(x,m)] is provably crashed (some known heard-set shows a missed
      message from [x], so [x] is faulty and permanently silent).

    The test-suite checks, exhaustively over crash universes with t = 1
    and t = 2, that this protocol makes {e exactly} the decisions of
    [F^Λ,2] at corresponding points.

    Rows are immutable once shared (every mutation copies first), so
    tables flow through messages by reference: [send] shares the whole
    table with every destination and merging keeps the winning row
    as-is.  Functorized over {!Eba_util.Procset.S} for the heard-sets,
    the [O(n² T)]-bit messages run at any [n] under the simulator. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value

module Make (S : Eba_util.Procset.S) = struct
  type row = {
    r_value : Value.t;
    r_heard : S.t array;  (* r_heard.(k-1) = senders heard in round k *)
    r_upto : int;  (* rounds covered: r_heard.(0 .. r_upto - 1) are valid *)
  }

  type msg = row option array  (* my whole table *)

  type state = {
    me : int;
    n : int;
    horizon : int;
    table : row option array;
    time : int;
    decided : Value.t option;
  }

  let name = "P0opt+"

  let knows_zero st =
    Array.exists
      (function Some r -> Value.equal r.r_value Value.Zero | None -> false)
      st.table

  (* first round at which x is provably crashed: some known heard-set misses
     a message from x *)
  let crash_evidence st x =
    let best = ref None in
    Array.iteri
      (fun a row ->
        match row with
        | None -> ()
        | Some r ->
            if a <> x then
              for k = 1 to r.r_upto do
                if not (S.mem x r.r_heard.(k - 1)) then
                  match !best with
                  | Some b when b <= k -> ()
                  | Some _ | None -> best := Some k
              done)
      st.table;
    !best

  let upto st x = match st.table.(x) with None -> -1 | Some r -> r.r_upto

  let known_not_delivered st ~sender ~receiver ~round =
    match st.table.(receiver) with
    | Some r when round <= r.r_upto -> not (S.mem sender r.r_heard.(round - 1))
    | Some _ | None -> false

  let safe_to_decide_one st =
    let n = st.n in
    let evidence = Array.init n (fun x -> crash_evidence st x) in
    let k_now = Array.init n (fun x -> st.table.(x) = None) in
    let k_now = ref k_now in
    for k = 1 to st.time do
      let next =
        Array.init n (fun x ->
            upto st x < k
            && ((!k_now).(x)
               ||
               let feeds b =
                 (!k_now).(b)
                 && (not (known_not_delivered st ~sender:b ~receiver:x ~round:k))
                 && match evidence.(b) with Some kb -> kb >= k | None -> true
               in
               let rec any b = b < n && ((b <> x && feeds b) || any (b + 1)) in
               any 0))
      in
      k_now := next
    done;
    let threat x = (!k_now).(x) && evidence.(x) = None in
    let rec any x = x < st.n && (threat x || any (x + 1)) in
    not (any 0)

  let decide st =
    if st.decided <> None then st.decided
    else if knows_zero st then Some Value.Zero
    else if safe_to_decide_one st then Some Value.One
    else None

  let init (params : Params.t) ~me value =
    let table = Array.make params.Params.n None in
    table.(me) <-
      Some { r_value = value; r_heard = Array.make params.Params.horizon S.empty; r_upto = 0 };
    let st =
      {
        me;
        n = params.Params.n;
        horizon = params.Params.horizon;
        table;
        time = 0;
        decided = None;
      }
    in
    { st with decided = decide st }

  let copy_row r = { r with r_heard = Array.copy r.r_heard }

  let send (params : Params.t) st ~round:_ =
    (* Rows are copy-on-write (see [receive]), so the table itself is the
       snapshot: one reference shared with every destination instead of
       n - 1 deep copies of an O(n · horizon) structure. *)
    let snapshot : msg = st.table in
    Array.init params.Params.n (fun j -> if j = st.me then None else Some snapshot)

  let merge_row mine theirs =
    match (mine, theirs) with
    | None, r | r, None -> r
    | Some a, Some b -> Some (if a.r_upto >= b.r_upto then a else b)

  let receive _params st ~round arrived =
    let table = Array.map Fun.id st.table in
    let heard = ref S.empty in
    Array.iteri
      (fun j m ->
        match m with
        | None -> ()
        | Some their_table ->
            heard := S.add j !heard;
            Array.iteri (fun x r -> table.(x) <- merge_row table.(x) r) their_table)
      arrived;
    (* extend my own row with this round's heard-set; the copy keeps every
       row that escaped through [send] (or arrived from elsewhere) frozen *)
    (match table.(st.me) with
    | Some r ->
        let r = copy_row r in
        r.r_heard.(round - 1) <- !heard;
        table.(st.me) <- Some { r with r_upto = round }
    | None -> assert false);
    let st = { st with table; time = round } in
    { st with decided = decide st }

  let output st = st.decided
end

module Word = Make (Eba_util.Procset.Word)
module Wide = Make (Eba_util.Procset.Wide)
include Word

let for_params (params : Params.t) : (module Protocol_intf.PROTOCOL) =
  if params.Params.n <= Eba_util.Bitset.max_width then (module Word) else (module Wide)
