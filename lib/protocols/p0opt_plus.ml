(** [P0opt+]: an optimal crash-mode EBA protocol with polynomial-size
    messages that matches the knowledge-based [F^Λ,2] {e for every t}.

    Theorem 6.2 presents [P0opt] (value vectors + the "same heard-set
    twice" rule) as equivalent to [F^Λ,2].  Exhaustive checking shows that
    equivalence is a [t = 1] phenomenon: for [t ≥ 2], a processor that
    crashes in round 1 while delivering its last message {e to me} keeps my
    heard-set shrinking, so rule (b) stays silent even when gossiped
    delivery evidence already pins every potential witness of a 0 as dead.
    [P0opt] remains correct but is strictly dominated.

    This variant closes the gap by gossiping, for every processor [j], the
    row [(v_j, heard_j(1), ..., heard_j(k))] — everything a full-information
    view contains in the crash mode, in [O(n² T)] bits.  Decisions:

    - decide 0 on (transitively) learning any initial 0;
    - decide 1 at time [m] when nobody can possibly know a 0 and be
      nonfaulty: compute the {e possibly-knows-0} relation
      [K(x, k)] — [x]'s value is unknown to me at [k = 0]; thereafter
      [K(x,k)] holds if my rows do not cover [x]'s time-[k] state and
      either [K(x,k-1)], or some [b] with [K(b,k-1)] might have delivered
      to [x] in round [k] ([b] not provably crashed before [k], delivery
      not contradicted by a known heard-set).  Decide 1 iff every [x] with
      [K(x,m)] is provably crashed (some known heard-set shows a missed
      message from [x], so [x] is faulty and permanently silent).

    The test-suite checks, exhaustively over crash universes with t = 1
    and t = 2, that this protocol makes {e exactly} the decisions of
    [F^Λ,2] at corresponding points.

    Rows are immutable once shared (every mutation copies first), so
    tables flow through messages by reference: [send] shares the whole
    table with every destination and merging keeps the winning row
    as-is.  Functorized over {!Eba_util.Procset.S} for the heard-sets,
    the [O(n² T)]-bit messages run at any [n] under the simulator. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value

module Make (S : Eba_util.Procset.S) = struct
  module K = Known_rows.Make (S)

  type row = K.row = {
    r_value : Value.t;
    r_heard : S.t array;  (* r_heard.(k-1) = senders heard in round k *)
    r_upto : int;  (* rounds covered: r_heard.(0 .. r_upto - 1) are valid *)
  }

  type msg = row option array  (* my whole table *)

  type state = {
    me : int;
    n : int;
    horizon : int;
    table : row option array;
    time : int;
    decided : Value.t option;
  }

  let name = "P0opt+"

  let decide st =
    if st.decided <> None then st.decided
    else if K.knows_zero st.table then Some Value.Zero
    else if K.safe_to_decide_one ~time:st.time st.table then Some Value.One
    else None

  let init (params : Params.t) ~me value =
    let table = Array.make params.Params.n None in
    table.(me) <-
      Some { r_value = value; r_heard = Array.make params.Params.horizon S.empty; r_upto = 0 };
    let st =
      {
        me;
        n = params.Params.n;
        horizon = params.Params.horizon;
        table;
        time = 0;
        decided = None;
      }
    in
    { st with decided = decide st }

  let send (params : Params.t) st ~round:_ =
    (* Rows are copy-on-write (see [receive]), so the table itself is the
       snapshot: one reference shared with every destination instead of
       n - 1 deep copies of an O(n · horizon) structure. *)
    let snapshot : msg = st.table in
    Array.init params.Params.n (fun j -> if j = st.me then None else Some snapshot)

  let receive _params st ~round arrived =
    let table = Array.map Fun.id st.table in
    let heard = ref S.empty in
    Array.iteri
      (fun j m ->
        match m with
        | None -> ()
        | Some their_table ->
            heard := S.add j !heard;
            Array.iteri (fun x r -> table.(x) <- K.merge_row table.(x) r) their_table)
      arrived;
    (* Extend my own row with this round's heard-set; the copy keeps every
       row that escaped through [send] (or arrived from elsewhere) frozen.
       My own row is present in every reachable state: [init] installs it
       and [merge_row] never turns a [Some] into [None] — no wire input,
       however corrupted, can delete a row, it can only fail to add one.
       Should future state surgery ever break that invariant, fail as a
       diagnosable error rather than an assertion crash mid-protocol. *)
    (match table.(st.me) with
    | Some r ->
        let r = K.copy_row r in
        r.r_heard.(round - 1) <- !heard;
        table.(st.me) <- Some { r with r_upto = round }
    | None -> invalid_arg "P0opt+.receive: own row missing from table");
    let st = { st with table; time = round } in
    { st with decided = decide st }

  let output st = st.decided

  (* full variant: every present row costs its value byte, a length byte
     for the covered prefix, its owner id and [r_upto] dense heard-sets *)
  let wire_size (params : Params.t) (m : msg) =
    let open Protocol_intf.Wire in
    let n = params.Params.n in
    let bytes = ref header in
    Array.iter
      (function
        | None -> ()
        | Some r -> bytes := !bytes + proc_id + 2 + (r.r_upto * set_bytes n))
      m;
    !bytes
end

module Word = Make (Eba_util.Procset.Word)
module Wide = Make (Eba_util.Procset.Wide)
include Word

let for_params (params : Params.t) : (module Protocol_intf.PROTOCOL) =
  if params.Params.n <= Eba_util.Bitset.max_width then (module Word) else (module Wide)
