(** [P0opt+]: an optimal crash-mode EBA protocol with polynomial-size
    messages that matches the knowledge-based [F^Λ,2] for {e every} [t]
    (machine-checked exhaustively at t = 1 and t = 2), repairing the
    [t ≥ 2] gap in Theorem 6.2's [P0opt].

    Messages gossip one row per processor — initial value plus per-round
    heard-sets ([O(n² T)] bits).  Decide 0 on any (transitively) learned
    initial 0; decide 1 when every processor that could possibly know a 0
    (a closure over unknown values and uncontradicted deliveries) is
    provably crashed and hence permanently silent. *)

module Make (S : Eba_util.Procset.S) : Protocol_intf.PROTOCOL
(** The protocol over an arbitrary processor-set representation; all
    instances decide identically and send bit-identical messages. *)

module Word : Protocol_intf.PROTOCOL
(** [Make (Procset.Word)]: single-word heard-sets, [n <= 62]. *)

module Wide : Protocol_intf.PROTOCOL
(** [Make (Procset.Wide)]: limb-array heard-sets, any [n]. *)

include Protocol_intf.PROTOCOL
(** The historical interface — an alias of {!Word}. *)

val for_params : Eba_sim.Params.t -> (module Protocol_intf.PROTOCOL)
(** {!Word} when [n] fits a single word, {!Wide} beyond. *)
