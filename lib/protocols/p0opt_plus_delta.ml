(** [P0opt+delta]: the bounded-bandwidth variant of {!P0opt_plus} —
    identical decision rules over the identical {!Known_rows} table, but a
    destination receives only {e row extensions} it is not yet proven to
    hold, instead of the whole table every round.

    The coverage evidence is the delta traffic itself: when [d]'s message
    carries an extension of [x]'s row up to round [u], then [d]'s own copy
    of that row reached [u] at send time (rows only grow, so it still
    does).  I track [cu.(d).(x)], the highest such [u] per destination and
    row, and send [d] the extension [(cu.(d).(x), r_upto]] of every row
    that has outgrown it — with the initial value attached when
    [cu.(d).(x) < 0], i.e. when [d] is not known to hold the row at all.
    [d]'s own row ([cu.(d).(d) >= 0] from the start) and my rows that [d]
    already covers travel as nothing.

    No separate echo is needed (unlike {!P0opt_delta}): row extensions
    keep flowing every round a row grows, and what I learned from [d]
    raises [cu.(d)] directly.  Entries carry an explicit
    [(from, heard-sets)] window under a round-stamped header, so applying
    one is idempotent and order-independent: an extension is grafted only
    where it strictly grows my row and seamlessly continues it, and
    retransmitted / reordered copies within a round reconstruct the same
    table ([Known_rows] content is unique per run — heard-sets are facts
    about the run, not about who reported them).

    By induction the table equals the full variant's at every processor
    after every round, message presence being identical — so decisions
    match in value and time everywhere (differential suite, exhaustive
    crash and omission universes; netsim at n = 128/256).  Only the wire
    size differs: the full table weighs [O(n · T)] dense sets per message
    forever, while deltas carry each heard-set roughly once per
    destination. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value

module Make (S : Eba_util.Procset.S) = struct
  module K = Known_rows.Make (S)

  type entry = {
    e_proc : int;  (* whose row *)
    e_value : Value.t;  (* its initial value (used when the row is new) *)
    e_from : int;  (* first covered round of the window, >= 1 *)
    e_heard : S.t array;  (* heard-sets of rounds e_from .. e_from+len-1 *)
  }

  type msg = { d_round : int; d_entries : entry array }

  type state = {
    me : int;
    n : int;
    horizon : int;
    table : K.row option array;
    cu : int array array;
        (* cu.(d).(x): highest r_upto of x's row provably held at d;
           -1 = d not known to hold the row *)
    time : int;
    decided : Value.t option;
  }

  let name = "P0opt+delta"

  let decide st =
    if st.decided <> None then st.decided
    else if K.knows_zero st.table then Some Value.Zero
    else if K.safe_to_decide_one ~time:st.time st.table then Some Value.One
    else None

  let init (params : Params.t) ~me value =
    let n = params.Params.n in
    let table = Array.make n None in
    table.(me) <-
      Some
        {
          K.r_value = value;
          r_heard = Array.make params.Params.horizon S.empty;
          r_upto = 0;
        };
    let st =
      {
        me;
        n;
        horizon = params.Params.horizon;
        (* everyone holds their own row from time 0 *)
        cu = Array.init n (fun d -> Array.init n (fun x -> if x = d then 0 else -1));
        table;
        time = 0;
        decided = None;
      }
    in
    { st with decided = decide st }

  let send (params : Params.t) st ~round =
    Array.init params.Params.n (fun d ->
        if d = st.me then None
        else begin
          let entries = ref [] in
          let cud = st.cu.(d) in
          for x = st.n - 1 downto 0 do
            (* never offer d its own row: d's copy is extended locally every
               round, so it is always at least as long as anyone else's *)
            match st.table.(x) with
            | Some r when x <> d && r.K.r_upto > cud.(x) ->
                let from = max 1 (cud.(x) + 1) in
                entries :=
                  {
                    e_proc = x;
                    e_value = r.K.r_value;
                    e_from = from;
                    e_heard = Array.sub r.K.r_heard (from - 1) (r.K.r_upto - from + 1);
                  }
                  :: !entries
            | Some _ | None -> ()
          done;
          Some { d_round = round; d_entries = Array.of_list !entries }
        end)

  (* Graft an arrived extension onto my copy of the row.  Windows that
     start beyond my covered prefix or beyond the horizon are dropped: an
     honest sender can produce neither (it extends from my proven
     coverage), so the guards only shield the merge from corrupted wire
     input — a protocol step must not crash on it. *)
  let apply_entry st table e =
    let len = Array.length e.e_heard in
    let upto_e = e.e_from + len - 1 in
    if e.e_from >= 1 && upto_e <= st.horizon then
      match table.(e.e_proc) with
      | None ->
          if e.e_from = 1 then begin
            let r_heard = Array.make st.horizon S.empty in
            Array.blit e.e_heard 0 r_heard 0 len;
            table.(e.e_proc) <-
              Some { K.r_value = e.e_value; r_heard; r_upto = upto_e }
          end
      | Some r when upto_e > r.K.r_upto && e.e_from <= r.K.r_upto + 1 ->
          let r = K.copy_row r in
          for k = r.K.r_upto + 1 to upto_e do
            r.K.r_heard.(k - 1) <- e.e_heard.(k - e.e_from)
          done;
          table.(e.e_proc) <- Some { r with K.r_upto = upto_e }
      | Some _ -> ()

  let receive _params st ~round arrived =
    let table = Array.map Fun.id st.table in
    let cu = Array.copy st.cu in
    let heard = ref S.empty in
    Array.iteri
      (fun j m ->
        match m with
        | None -> ()
        | Some { d_round = _; d_entries } ->
            heard := S.add j !heard;
            let cuj = Array.copy cu.(j) in
            Array.iter
              (fun e ->
                if e.e_proc >= 0 && e.e_proc < st.n then begin
                  let upto_e = e.e_from + Array.length e.e_heard - 1 in
                  (* whatever j sent me, j's row covered at send time *)
                  if upto_e > cuj.(e.e_proc) then cuj.(e.e_proc) <- upto_e;
                  apply_entry st table e
                end)
              d_entries;
            cu.(j) <- cuj)
      arrived;
    (* extend my own row with this round's heard-set — same invariant and
       same typed failure as the full variant (see {!P0opt_plus}) *)
    (match table.(st.me) with
    | Some r ->
        let r = K.copy_row r in
        r.K.r_heard.(round - 1) <- !heard;
        table.(st.me) <- Some { r with K.r_upto = round }
    | None -> invalid_arg "P0opt+delta.receive: own row missing from table");
    let st = { st with table; cu; time = round } in
    { st with decided = decide st }

  let output st = st.decided

  (* per entry: owner id, value byte, window bounds, and one dense
     heard-set per covered round *)
  let wire_size (params : Params.t) m =
    let open Protocol_intf.Wire in
    let n = params.Params.n in
    let bytes = ref header in
    Array.iter
      (fun e -> bytes := !bytes + proc_id + 3 + (Array.length e.e_heard * set_bytes n))
      m.d_entries;
    !bytes
end

module Word = Make (Eba_util.Procset.Word)
module Wide = Make (Eba_util.Procset.Wide)
include Word

let for_params (params : Params.t) : (module Protocol_intf.PROTOCOL) =
  if params.Params.n <= Eba_util.Bitset.max_width then (module Word) else (module Wide)
