(** [P0opt+delta]: the bounded-bandwidth variant of {!P0opt_plus}.

    Same {!Known_rows} table, same decision rules, same message presence —
    but a destination receives only {e row extensions} beyond its proven
    coverage (tracked per destination from the delta traffic itself),
    each entry an explicit [(owner, value, from, heard-sets)] window under
    a round-stamped header, so applying extensions is idempotent and
    order-independent within a round.

    Decisions are identical to {!P0opt_plus} in value and round on every
    run (checked exhaustively by the differential suite); only
    {!Protocol_intf.PROTOCOL.wire_size} differs — each heard-set crosses
    each link roughly once instead of riding in every subsequent round. *)

module Make (S : Eba_util.Procset.S) : Protocol_intf.PROTOCOL
(** The protocol over an arbitrary processor-set representation; all
    instances decide identically and send bit-identical messages. *)

module Word : Protocol_intf.PROTOCOL
(** [Make (Procset.Word)]: single-word sets, [n <= 62]. *)

module Wide : Protocol_intf.PROTOCOL
(** [Make (Procset.Wide)]: limb-array sets, any [n]. *)

include Protocol_intf.PROTOCOL
(** An alias of {!Word}, mirroring the full protocols' convention. *)

val for_params : Eba_sim.Params.t -> (module Protocol_intf.PROTOCOL)
(** {!Word} when [n] fits a single word, {!Wide} beyond. *)
