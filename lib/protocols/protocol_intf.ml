(** The operational protocol interface: the message-generation /
    state-transition / output form of Section 2.3, for protocols that run
    as real message-passing automata (as opposed to the knowledge-based
    decision pairs of [Eba_core]).

    One round proceeds as: every processor computes its outgoing messages
    with [send]; the failure pattern removes some of them; every processor
    then ingests what arrived with [receive].  Decisions are read with
    [output] at each time step (time 0 included) and are irreversible: the
    first non-[None] output is the decision. *)

module Params = Eba_sim.Params
module Value = Eba_sim.Value

(** Sizing conventions of the nominal wire encoding, shared by every
    protocol's {!PROTOCOL.wire_size}.  The encoding is byte-aligned and
    deliberately simple — no varints, no compression — so byte counts are
    exact, machine-independent integers the benchmark artifact can diff:

    - every message starts with a {!header}: 1 tag byte (protocol/message
      kind) + 4 bytes of round stamp, the epoch that lets retransmitted or
      reordered copies merge idempotently;
    - a processor id is {!proc_id} = 2 bytes (caps [n] at 65536, far above
      the simulator's 4096 cap);
    - a sparse known-value entry is {!entry} = 3 bytes (id + value byte);
    - a dense vector of ternary values (0 / 1 / unknown) packs 4 to a byte:
      {!trit_vector};
    - a processor set packs 8 membership bits to a byte: {!set_bytes}. *)
module Wire = struct
  let header = 5
  let proc_id = 2
  let entry = proc_id + 1
  let trit_vector n = (n + 3) / 4
  let set_bytes n = (n + 7) / 8
end

module type PROTOCOL = sig
  val name : string

  type state
  type msg

  val init : Params.t -> me:int -> Value.t -> state
  (** State at time 0. *)

  val send : Params.t -> state -> round:int -> msg option array
  (** [send params st ~round] returns the message for each destination
      ([None] = protocol sends nothing there; the self slot is ignored).
      The array length must be [n]. *)

  val receive : Params.t -> state -> round:int -> msg option array -> state
  (** [receive params st ~round arrived] with [arrived.(j)] the message
      from [j] if it was sent and delivered. *)

  val output : state -> Value.t option
  (** Current decision, if any; once some value is returned the runner
      records the first time it appeared. *)

  val wire_size : Params.t -> msg -> int
  (** Exact serialized size of one message in bytes under the {!Wire}
      conventions (header included).  A pure function of the message
      content and [params] — never of time or of the sending state — so
      retransmitted copies of a message all weigh the same and byte
      accounting is deterministic.  The harnesses treat it as a metric
      only: no protocol step may depend on it. *)
end
