module Params = Eba_sim.Params
module Config = Eba_sim.Config
module Pattern = Eba_sim.Pattern
module Value = Eba_sim.Value
module Metrics = Eba_util.Metrics

let m_runs = Metrics.counter "runner.runs_simulated"
let m_attempted = Metrics.counter "runner.messages_attempted"
let m_delivered = Metrics.counter "runner.messages_delivered"
let m_bytes = Metrics.counter "runner.bytes_attempted"

type decision = { at : int; value : Value.t }

type trace = {
  decisions : decision option array;
  messages_attempted : int;
  messages_delivered : int;
  bytes_attempted : int;
  bytes_delivered : int;
}

module Make (P : Protocol_intf.PROTOCOL) = struct
  type step_stats = {
    mutable attempted : int;
    mutable delivered : int;
    mutable bytes_attempted : int;
    mutable bytes_delivered : int;
  }

  let note_outputs states decisions time =
    Array.iteri
      (fun i st ->
        match (decisions.(i), P.output st) with
        | None, Some value -> decisions.(i) <- Some { at = time; value }
        | (Some _ | None), _ -> ())
      states

  let execute (params : Params.t) config pattern =
    let n = params.Params.n in
    let states =
      Array.init n (fun i -> P.init params ~me:i (Config.value config i))
    in
    let decisions = Array.make n None in
    let stats = { attempted = 0; delivered = 0; bytes_attempted = 0; bytes_delivered = 0 } in
    note_outputs states decisions 0;
    for round = 1 to params.Params.horizon do
      let outgoing = Array.init n (fun i -> P.send params states.(i) ~round) in
      let arrived = Array.init n (fun _ -> Array.make n None) in
      for sender = 0 to n - 1 do
        if Array.length outgoing.(sender) <> n then
          invalid_arg "Runner: send must return one slot per destination";
        (* The full-information protocols share one message snapshot across
           destinations, so memoize the last sizing by physical equality:
           sizing an O(n)-payload message per destination would turn the
           send loop quadratic-in-n into cubic. *)
        let sized = ref None in
        for dest = 0 to n - 1 do
          if dest <> sender then
            match outgoing.(sender).(dest) with
            | None -> ()
            | Some msg ->
                let bytes =
                  match !sized with
                  | Some (m, b) when m == msg -> b
                  | Some _ | None ->
                      let b = P.wire_size params msg in
                      sized := Some (msg, b);
                      b
                in
                stats.attempted <- stats.attempted + 1;
                stats.bytes_attempted <- stats.bytes_attempted + bytes;
                if Pattern.delivers pattern ~round ~sender ~receiver:dest then begin
                  stats.delivered <- stats.delivered + 1;
                  stats.bytes_delivered <- stats.bytes_delivered + bytes;
                  arrived.(dest).(sender) <- Some msg
                end
        done
      done;
      for i = 0 to n - 1 do
        states.(i) <- P.receive params states.(i) ~round arrived.(i)
      done;
      note_outputs states decisions round
    done;
    if Metrics.enabled () then begin
      Metrics.incr m_runs;
      Metrics.add m_attempted stats.attempted;
      Metrics.add m_delivered stats.delivered;
      Metrics.add m_bytes stats.bytes_attempted
    end;
    (states, decisions, stats)

  let run params config pattern =
    let _, decisions, stats = execute params config pattern in
    {
      decisions;
      messages_attempted = stats.attempted;
      messages_delivered = stats.delivered;
      bytes_attempted = stats.bytes_attempted;
      bytes_delivered = stats.bytes_delivered;
    }

  let final_states params config pattern =
    let states, _, _ = execute params config pattern in
    states
end
