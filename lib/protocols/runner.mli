(** Synchronous execution of an operational protocol under a failure
    pattern (the round structure of Section 2.3).

    Crash semantics: a processor that crashes in round [k] sends normally
    before round [k], sends only to the pattern's recipient set in round
    [k], and nothing afterwards; it keeps receiving (its state and outputs
    are irrelevant to the specification but are still tracked).  Omission
    semantics: the pattern's per-round omission sets are removed from
    whatever the protocol sends. *)

module Params = Eba_sim.Params
module Config = Eba_sim.Config
module Pattern = Eba_sim.Pattern
module Value = Eba_sim.Value

type decision = { at : int; value : Value.t }

type trace = {
  decisions : decision option array;  (** per processor, first output *)
  messages_attempted : int;  (** messages the protocol asked to send *)
  messages_delivered : int;
  bytes_attempted : int;
      (** total {!Protocol_intf.PROTOCOL.wire_size} of attempted messages *)
  bytes_delivered : int;  (** ... and of the delivered ones *)
}

module Make (P : Protocol_intf.PROTOCOL) : sig
  val run : Params.t -> Config.t -> Pattern.t -> trace
  (** Executes rounds [1..horizon] and returns the per-processor decisions
      (scanning outputs at every time from 0 to the horizon). *)

  val final_states : Params.t -> Config.t -> Pattern.t -> P.state array
  (** The states at the horizon, for tests that inspect protocol
      internals. *)
end
