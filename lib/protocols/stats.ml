module Params = Eba_sim.Params
module Config = Eba_sim.Config
module Pattern = Eba_sim.Pattern
module Universe = Eba_sim.Universe
module Value = Eba_sim.Value
module Bitset = Eba_util.Bitset
module Metrics = Eba_util.Metrics
module Parallel = Eba_util.Parallel

let s_sweep = Metrics.span "stats.sweep"

type by_failures = {
  failures : int;
  count : int;
  mean_time : float;
  max_time : int;
  undecided : int;
}

type source =
  | Enumerated
  | Exhaustive_universe of { flavour : string; universe : string }
  | Sampled_universe of { seed : int; samples : int; universe : string }

type summary = {
  protocol : string;
  runs : int;
  agreement_violations : int;
  validity_violations : int;
  undecided_nonfaulty : int;
  mean_time : float;
  max_time : int;
  by_failures : by_failures list;
  messages_attempted : int;
  messages_delivered : int;
  bytes_attempted : int;
  bytes_delivered : int;
  source : source;
}

let run_one (module P : Protocol_intf.PROTOCOL) params config pattern =
  let module R = Runner.Make (P) in
  R.run params config pattern

type acc = {
  mutable a_count : int;
  mutable a_time_sum : int;
  mutable a_time_n : int;
  mutable a_max : int;
  mutable a_undecided : int;
}

(* Per-domain accumulator of a sweep.  Every field is an exact integer
   count/sum/max, so merging accumulators in any fixed order reproduces the
   sequential totals bit for bit; the float means are derived only at the
   end, from the merged sums. *)
type state = {
  mutable s_runs : int;
  mutable s_agreement : int;
  mutable s_validity : int;
  mutable s_undecided : int;
  mutable s_time_sum : int;
  mutable s_time_n : int;
  mutable s_max_time : int;
  mutable s_attempted : int;
  mutable s_delivered : int;
  mutable s_bytes_attempted : int;
  mutable s_bytes_delivered : int;
  s_per_f : (int, acc) Hashtbl.t;
}

let fresh_state () =
  {
    s_runs = 0;
    s_agreement = 0;
    s_validity = 0;
    s_undecided = 0;
    s_time_sum = 0;
    s_time_n = 0;
    s_max_time = 0;
    s_attempted = 0;
    s_delivered = 0;
    s_bytes_attempted = 0;
    s_bytes_delivered = 0;
    s_per_f = Hashtbl.create 8;
  }

let acc_for st f =
  match Hashtbl.find_opt st.s_per_f f with
  | Some a -> a
  | None ->
      let a = { a_count = 0; a_time_sum = 0; a_time_n = 0; a_max = 0; a_undecided = 0 } in
      Hashtbl.add st.s_per_f f a;
      a

let merge_state into from =
  into.s_runs <- into.s_runs + from.s_runs;
  into.s_agreement <- into.s_agreement + from.s_agreement;
  into.s_validity <- into.s_validity + from.s_validity;
  into.s_undecided <- into.s_undecided + from.s_undecided;
  into.s_time_sum <- into.s_time_sum + from.s_time_sum;
  into.s_time_n <- into.s_time_n + from.s_time_n;
  into.s_max_time <- max into.s_max_time from.s_max_time;
  into.s_attempted <- into.s_attempted + from.s_attempted;
  into.s_delivered <- into.s_delivered + from.s_delivered;
  into.s_bytes_attempted <- into.s_bytes_attempted + from.s_bytes_attempted;
  into.s_bytes_delivered <- into.s_bytes_delivered + from.s_bytes_delivered;
  Hashtbl.iter
    (fun f (b : acc) ->
      let a = acc_for into f in
      a.a_count <- a.a_count + b.a_count;
      a.a_time_sum <- a.a_time_sum + b.a_time_sum;
      a.a_time_n <- a.a_time_n + b.a_time_n;
      a.a_max <- max a.a_max b.a_max;
      a.a_undecided <- a.a_undecided + b.a_undecided)
    from.s_per_f

let consume run n st (config, pattern) =
  st.s_runs <- st.s_runs + 1;
  let trace : Runner.trace = run config pattern in
  st.s_attempted <- st.s_attempted + trace.Runner.messages_attempted;
  st.s_delivered <- st.s_delivered + trace.Runner.messages_delivered;
  st.s_bytes_attempted <- st.s_bytes_attempted + trace.Runner.bytes_attempted;
  st.s_bytes_delivered <- st.s_bytes_delivered + trace.Runner.bytes_delivered;
  (* iterate the nonfaulty slots directly instead of materializing
     [Bitset.full n], which caps n at the word width; [Bitset.mem] is
     total, so this path is safe at any n *)
  let faulty = Pattern.faulty pattern in
  let iter_nonfaulty f =
    for i = 0 to n - 1 do
      if not (Bitset.mem i faulty) then f i
    done
  in
  let f = Pattern.num_failures pattern in
  let a = acc_for st f in
  a.a_count <- a.a_count + 1;
  let seen = ref None and agreement_bad = ref false and validity_bad = ref false in
  let unanimous = Config.all_equal config in
  iter_nonfaulty
    (fun i ->
      match trace.Runner.decisions.(i) with
      | None ->
          st.s_undecided <- st.s_undecided + 1;
          a.a_undecided <- a.a_undecided + 1
      | Some { Runner.at; value } ->
          st.s_time_sum <- st.s_time_sum + at;
          st.s_time_n <- st.s_time_n + 1;
          if at > st.s_max_time then st.s_max_time <- at;
          a.a_time_sum <- a.a_time_sum + at;
          a.a_time_n <- a.a_time_n + 1;
          if at > a.a_max then a.a_max <- at;
          (match !seen with
          | None -> seen := Some value
          | Some v -> if not (Value.equal v value) then agreement_bad := true);
          (match unanimous with
          | Some v when not (Value.equal v value) -> validity_bad := true
          | Some _ | None -> ()));
  if !agreement_bad then st.s_agreement <- st.s_agreement + 1;
  if !validity_bad then st.s_validity <- st.s_validity + 1

let summary_of_state ?(source = Enumerated) name st =
  let by_failures =
    Hashtbl.fold (fun f a acc -> (f, a) :: acc) st.s_per_f []
    |> List.sort (fun (f1, _) (f2, _) -> Stdlib.compare f1 f2)
    |> List.map (fun (f, a) ->
           {
             failures = f;
             count = a.a_count;
             (* empty-mean convention: 0.0 when nothing decided (see mli) *)
             mean_time =
               (if a.a_time_n = 0 then 0.0
                else float_of_int a.a_time_sum /. float_of_int a.a_time_n);
             max_time = a.a_max;
             undecided = a.a_undecided;
           })
  in
  {
    protocol = name;
    runs = st.s_runs;
    agreement_violations = st.s_agreement;
    validity_violations = st.s_validity;
    undecided_nonfaulty = st.s_undecided;
    mean_time =
      (* all-undecided sweeps have no decision times to average; 0.0 keeps
         the summary finite and its JSON emission RFC 8259-valid (NaN has
         no JSON encoding — [Eba_util.Json] would print [null]) *)
      (if st.s_time_n = 0 then 0.0
       else float_of_int st.s_time_sum /. float_of_int st.s_time_n);
    max_time = st.s_max_time;
    by_failures;
    messages_attempted = st.s_attempted;
    messages_delivered = st.s_delivered;
    bytes_attempted = st.s_bytes_attempted;
    bytes_delivered = st.s_bytes_delivered;
    source;
  }

let universe_desc (params : Params.t) = Format.asprintf "%a" Params.pp params

let over_seq ?jobs ?cancel ?source (module P : Protocol_intf.PROTOCOL)
    (params : Params.t) workload =
  let module R = Runner.Make (P) in
  let run config pattern = R.run params config pattern in
  let fold =
    let consume = consume run params.Params.n in
    match cancel with
    | None -> consume
    | Some token ->
        fun st work ->
          Eba_util.Cancel.check token;
          consume st work
  in
  let st =
    Metrics.time s_sweep (fun () ->
        Parallel.map_reduce_seq ?jobs ~init:fresh_state ~fold
          ~merge:merge_state workload)
  in
  summary_of_state ?source P.name st

let over ?jobs ?cancel ?source p params workload =
  over_seq ?jobs ?cancel ?source p params (List.to_seq workload)

let exhaustive ?(flavour = Universe.Exhaustive) ?jobs ?cancel p
    (params : Params.t) =
  let source =
    Exhaustive_universe
      {
        flavour =
          (match flavour with Universe.Exhaustive -> "exhaustive" | Universe.Sparse -> "sparse");
        universe = universe_desc params;
      }
  in
  over_seq ?jobs ?cancel ~source p params (Universe.workload_seq ~flavour params)

let sampled ?jobs ?cancel p (params : Params.t) ~seed ~samples =
  let rng = Random.State.make [| seed |] in
  (* drawn sequentially so the workload is deterministic in [seed]; only the
     runs themselves are distributed over domains *)
  let workload =
    List.init samples (fun _ ->
        let config =
          Config.of_bits ~n:params.Params.n
            (Random.State.int rng (1 lsl params.Params.n))
        in
        (config, Universe.random_pattern rng params))
  in
  let source =
    Sampled_universe
      { seed; samples; universe = universe_desc params ^ " uniform(config×pattern)" }
  in
  over ?jobs ?cancel ~source p params workload

let pp_by_failures fmt b =
  Format.fprintf fmt "f=%d: %d runs, mean %.2f, max %d%s" b.failures b.count b.mean_time
    b.max_time
    (if b.undecided > 0 then Printf.sprintf ", %d undecided" b.undecided else "")

let pp_source fmt = function
  | Enumerated -> Format.pp_print_string fmt "enumerated workload"
  | Exhaustive_universe { flavour; universe } ->
      Format.fprintf fmt "%s universe of %s" flavour universe
  | Sampled_universe { seed; samples; universe } ->
      Format.fprintf fmt "%d samples from %s, seed=%d" samples universe seed

let source_json = function
  | Enumerated -> Eba_util.Json.Obj [ ("kind", Eba_util.Json.String "enumerated") ]
  | Exhaustive_universe { flavour; universe } ->
      Eba_util.Json.Obj
        [
          ("kind", Eba_util.Json.String "exhaustive");
          ("flavour", Eba_util.Json.String flavour);
          ("universe", Eba_util.Json.String universe);
        ]
  | Sampled_universe { seed; samples; universe } ->
      Eba_util.Json.Obj
        [
          ("kind", Eba_util.Json.String "sampled");
          ("seed", Eba_util.Json.Int seed);
          ("samples", Eba_util.Json.Int samples);
          ("universe", Eba_util.Json.String universe);
        ]

let summary_json s =
  let open Eba_util.Json in
  Obj
    [
      ("protocol", String s.protocol);
      ("runs", Int s.runs);
      ("agreement_violations", Int s.agreement_violations);
      ("validity_violations", Int s.validity_violations);
      ("undecided_nonfaulty", Int s.undecided_nonfaulty);
      ("max_time", Int s.max_time);
      ("messages_attempted", Int s.messages_attempted);
      ("messages_delivered", Int s.messages_delivered);
      ("bytes_attempted", Int s.bytes_attempted);
      ("bytes_delivered", Int s.bytes_delivered);
      ( "by_failures",
        List
          (List.map
             (fun b ->
               Obj
                 [
                   ("failures", Int b.failures);
                   ("count", Int b.count);
                   ("mean_time", Float b.mean_time);
                   ("max_time", Int b.max_time);
                   ("undecided", Int b.undecided);
                 ])
             s.by_failures) );
      ("mean_time", Float s.mean_time);
      ("source", source_json s.source);
    ]

let pp fmt s =
  Format.fprintf fmt "%s over %d runs: agreement-violations=%d validity-violations=%d \
                      undecided=%d mean-decision=%.2f max-decision=%d msgs=%d/%d \
                      bytes=%d/%d@\n"
    s.protocol s.runs s.agreement_violations s.validity_violations s.undecided_nonfaulty
    s.mean_time s.max_time s.messages_delivered s.messages_attempted
    s.bytes_delivered s.bytes_attempted;
  Format.fprintf fmt "  source: %a@\n" pp_source s.source;
  List.iter (fun b -> Format.fprintf fmt "  %a@\n" pp_by_failures b) s.by_failures

let pp_table_header fmt () =
  Format.fprintf fmt "%-10s %8s %6s %6s %8s %8s %10s@\n" "protocol" "runs" "agree"
    "valid" "mean_t" "max_t" "msgs"

let pp_table_row fmt s =
  Format.fprintf fmt "%-10s %8d %6s %6s %8.2f %8d %10d@\n" s.protocol s.runs
    (if s.agreement_violations = 0 then "ok" else string_of_int s.agreement_violations)
    (if s.validity_violations = 0 then "ok" else string_of_int s.validity_violations)
    s.mean_time s.max_time s.messages_delivered
