(** Workload harness for operational protocols: execute a protocol over a
    set of (configuration, pattern) pairs and aggregate specification
    checks and decision-time statistics.

    This is what the benchmark tables are built from: exhaustive universes
    for the small models cross-validated against the semantic layer, and
    sampled universes for large [n]. *)

module Params = Eba_sim.Params
module Config = Eba_sim.Config
module Pattern = Eba_sim.Pattern

type by_failures = {
  failures : int;  (** [f] — processors exhibiting a failure *)
  count : int;  (** runs with this [f] *)
  mean_time : float;
      (** mean decision time of nonfaulty deciders; {e empty-mean
          convention}: exactly [0.0] when no nonfaulty processor decided,
          never NaN — summaries must stay finite so their JSON emission is
          RFC 8259-valid *)
  max_time : int;
  undecided : int;  (** nonfaulty processors without a decision *)
}

(** Where a summary's workload came from — enough to regenerate it
    exactly.  Sampled summaries carry their seed and a printed universe
    description, so any sampled number in EXPERIMENTS.md or a benchmark
    artifact can be reproduced with the recorded [(seed, samples,
    universe)] triple. *)
type source =
  | Enumerated  (** caller-supplied workload ({!over} / {!over_seq}) *)
  | Exhaustive_universe of { flavour : string; universe : string }
  | Sampled_universe of { seed : int; samples : int; universe : string }

type summary = {
  protocol : string;
  runs : int;
  agreement_violations : int;
  validity_violations : int;
  undecided_nonfaulty : int;
  mean_time : float;  (** empty-mean convention: [0.0] when nothing decided *)
  max_time : int;
  by_failures : by_failures list;  (** ascending [f] *)
  messages_attempted : int;
  messages_delivered : int;
  bytes_attempted : int;
      (** exact total {!Protocol_intf.PROTOCOL.wire_size} of attempted
          messages — an integer accumulator, bit-identical across [jobs] *)
  bytes_delivered : int;
  source : source;
}

val run_one :
  (module Protocol_intf.PROTOCOL) -> Params.t -> Config.t -> Pattern.t -> Runner.trace

val over_seq :
  ?jobs:int ->
  ?cancel:Eba_util.Cancel.t ->
  ?source:source ->
  (module Protocol_intf.PROTOCOL) ->
  Params.t ->
  (Config.t * Pattern.t) Seq.t ->
  summary
(** Execute the protocol over a streamed workload as a parallel map-reduce:
    runs are distributed over [jobs] domains (see {!Eba_util.Parallel} for
    how the count is resolved), each domain folds into a private integer
    accumulator, and accumulators are merged in a fixed order — so the
    summary is bit-identical for every job count, and the workload sequence
    is never materialized.

    [cancel] is polled before each workload pair: once fired, the sweep
    raises {!Eba_util.Cancel.Cancelled} within one run per domain.  An
    un-fired token changes nothing — same summary, same metrics. *)

val over :
  ?jobs:int ->
  ?cancel:Eba_util.Cancel.t ->
  ?source:source ->
  (module Protocol_intf.PROTOCOL) ->
  Params.t ->
  (Config.t * Pattern.t) list ->
  summary
(** {!over_seq} on an already-materialized workload. *)

val exhaustive :
  ?flavour:Eba_sim.Universe.flavour ->
  ?jobs:int ->
  ?cancel:Eba_util.Cancel.t ->
  (module Protocol_intf.PROTOCOL) ->
  Params.t ->
  summary
(** Every configuration × every pattern of the universe, streamed from
    {!Eba_sim.Universe.workload_seq}. *)

val sampled :
  ?jobs:int ->
  ?cancel:Eba_util.Cancel.t ->
  (module Protocol_intf.PROTOCOL) ->
  Params.t ->
  seed:int ->
  samples:int ->
  summary
(** Random configurations and patterns (deterministic in [seed] regardless
    of [jobs]). *)

val pp : Format.formatter -> summary -> unit
val pp_source : Format.formatter -> source -> unit
val pp_table_row : Format.formatter -> summary -> unit
val pp_table_header : Format.formatter -> unit -> unit

val source_json : source -> Eba_util.Json.t
(** [{"kind": ...}] plus the seed/samples/universe of sampled sources —
    what the benchmark artifact records next to sampled numbers. *)

val summary_json : summary -> Eba_util.Json.t
(** Schema-stable object: every count an integer (including the byte
    totals), the means finite floats under the empty-mean convention, the
    per-failure breakdown as a list, and the {!source_json} identity —
    the [sampled] rows of the benchmark artifact. *)
