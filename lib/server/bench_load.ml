module Json = Eba_util.Json

type result = {
  verb : string;
  clients : int;
  workers : int;
  requests : int;
  requests_per_client : int;
  ok : int;
  busy : int;
  errors : int;
  latency_samples : int;
  elapsed_s : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  requests_per_sec : float;
}

type client_tally = {
  mutable t_ok : int;
  mutable t_busy : int;
  mutable t_errors : int;
  mutable t_samples : int;  (* completed round-trips: latencies_ns.(0 .. t_samples-1) are real *)
  latencies_ns : int64 array;
}

let now_ns () = Monotonic_clock.now ()

let client_loop ~address ~requests ~verb ~params =
  let tally =
    {
      t_ok = 0;
      t_busy = 0;
      t_errors = 0;
      t_samples = 0;
      latencies_ns = Array.make requests 0L;
    }
  in
  (match Client.connect address with
  | exception Unix.Unix_error _ -> tally.t_errors <- requests
  | c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let broken = ref false in
          for _ = 0 to requests - 1 do
            if !broken then tally.t_errors <- tally.t_errors + 1
            else begin
              let t0 = now_ns () in
              match Client.call c ~verb ~params () with
              | reply ->
                  (* a reply of any status is a completed round-trip, so
                     its wall time is a real latency sample; requests that
                     never completed (connection broken, never sent) must
                     not contribute fabricated zeros *)
                  tally.latencies_ns.(tally.t_samples) <-
                    Int64.sub (now_ns ()) t0;
                  tally.t_samples <- tally.t_samples + 1;
                  (match reply with
                  | Ok (_, Protocol.Ok_result _) -> tally.t_ok <- tally.t_ok + 1
                  | Ok (_, Protocol.Busy_reply _) ->
                      tally.t_busy <- tally.t_busy + 1
                  | Ok (_, (Protocol.Cancelled_reply | Protocol.Progress_frame _))
                  | Ok (_, Protocol.Error_reply _)
                  | Error _ ->
                      tally.t_errors <- tally.t_errors + 1)
              | exception Unix.Unix_error _ ->
                  broken := true;
                  tally.t_errors <- tally.t_errors + 1
            end
          done));
  tally

(* Nearest-rank percentile of a sorted sample. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    Int64.to_float sorted.(rank - 1) /. 1e3

let run ~address ~clients ~requests ~verb ~params =
  let t0 = now_ns () in
  let domains =
    Array.init clients (fun _ ->
        Domain.spawn (fun () -> client_loop ~address ~requests ~verb ~params))
  in
  let tallies = Array.map Domain.join domains in
  let elapsed_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  let ok = Array.fold_left (fun a t -> a + t.t_ok) 0 tallies in
  let busy = Array.fold_left (fun a t -> a + t.t_busy) 0 tallies in
  let errors = Array.fold_left (fun a t -> a + t.t_errors) 0 tallies in
  (* only completed round-trips enter the latency statistics *)
  let latencies =
    Array.concat
      (Array.to_list
         (Array.map (fun t -> Array.sub t.latencies_ns 0 t.t_samples) tallies))
  in
  Array.sort Int64.compare latencies;
  let total = clients * requests in
  let samples = Array.length latencies in
  let sum = Array.fold_left Int64.add 0L latencies in
  let mean_us =
    if samples = 0 then 0.0
    else Int64.to_float sum /. 1e3 /. float_of_int samples
  in
  {
    verb;
    clients;
    workers = 0;  (* filled in by the callers that know the daemon config *)
    requests = total;
    requests_per_client = requests;
    ok;
    busy;
    errors;
    latency_samples = samples;
    elapsed_s;
    mean_us;
    p50_us = percentile latencies 0.50;
    p99_us = percentile latencies 0.99;
    requests_per_sec =
      (if elapsed_s > 0.0 then float_of_int total /. elapsed_s else 0.0);
  }

let run_local ?(workers = 4) ?(queue_cap = 64) ~clients ~requests ~verb ~params
    () =
  let ready = Atomic.make None in
  let cfg =
    {
      Daemon.default_config with
      address = Frame.Tcp 0;
      workers;
      queue_cap;
    }
  in
  let daemon =
    Domain.spawn (fun () ->
        Daemon.run ~on_ready:(fun a -> Atomic.set ready (Some a)) cfg)
  in
  let rec wait_ready tries =
    match Atomic.get ready with
    | Some a -> a
    | None ->
        if tries > 5000 then failwith "bench-serve: daemon did not come up"
        else begin
          Unix.sleepf 0.001;
          wait_ready (tries + 1)
        end
  in
  let address = wait_ready 0 in
  let stop () =
    match Client.connect address with
    | exception Unix.Unix_error _ -> ()
    | c ->
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () -> ignore (Client.call c ~verb:"shutdown" ()))
  in
  let result =
    Fun.protect
      ~finally:(fun () ->
        stop ();
        Domain.join daemon)
      (fun () -> run ~address ~clients ~requests ~verb ~params)
  in
  { result with workers }

let result_json r =
  Json.Obj
    [
      ("verb", Json.String r.verb);
      ("clients", Json.Int r.clients);
      ("workers", Json.Int r.workers);
      ("requests", Json.Int r.requests);
      ("requests_per_client", Json.Int r.requests_per_client);
      ("ok", Json.Int r.ok);
      ("busy", Json.Int r.busy);
      ("errors", Json.Int r.errors);
      ("latency_samples", Json.Int r.latency_samples);
      ("elapsed_s", Json.Float r.elapsed_s);
      ("mean_us", Json.Float r.mean_us);
      ("p50_us", Json.Float r.p50_us);
      ("p99_us", Json.Float r.p99_us);
      ("requests_per_sec", Json.Float r.requests_per_sec);
    ]

let pp fmt r =
  Format.fprintf fmt
    "@[<v>serve %s: %d clients x %d requests, %d workers@,\
     ok %d  busy %d  errors %d@,\
     latency mean %.1fus  p50 %.1fus  p99 %.1fus (%d samples)@,\
     %.0f requests/sec (%.3fs wall)@]"
    r.verb r.clients r.requests_per_client r.workers r.ok r.busy
    r.errors r.mean_us r.p50_us r.p99_us r.latency_samples r.requests_per_sec
    r.elapsed_s
