(** Load generator for the daemon ([eba bench-serve]): [clients]
    concurrent connections each issuing [requests] synchronous calls,
    with per-request wall latency measured on the client side
    (monotonic clock).

    The latency distribution is reported as nearest-rank percentiles in
    microseconds, plus aggregate throughput — the numbers the benchmark
    artifact's [serve] section records. *)

module Json = Eba_util.Json

type result = {
  verb : string;
  clients : int;
  workers : int;
  requests : int;  (** total across all clients *)
  requests_per_client : int;
      (** the per-client count as given — carried, not re-derived by
          division, so [pp] prints the truth even for uneven totals *)
  ok : int;
  busy : int;  (** typed backpressure replies *)
  errors : int;  (** transport failures and error replies *)
  latency_samples : int;
      (** completed round-trips — the population of the latency stats.
          Requests that never completed (connect failure, broken
          connection, skipped after a break) are counted in [errors] but
          contribute {e no} latency sample; when this is [0] the
          mean/p50/p99 are reported as [0.0] over zero samples, never
          fabricated from empty slots *)
  elapsed_s : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  requests_per_sec : float;
}

val run :
  address:Frame.address ->
  clients:int ->
  requests:int ->
  verb:string ->
  params:(string * Json.t) list ->
  result
(** [requests] is per client.  Each client runs in its own domain with
    its own connection; a client that cannot connect or loses its
    connection counts its remaining calls as [errors]. *)

val run_local :
  ?workers:int ->
  ?queue_cap:int ->
  clients:int ->
  requests:int ->
  verb:string ->
  params:(string * Json.t) list ->
  unit ->
  result
(** Start an in-process daemon on an ephemeral loopback port, drive
    {!run} against it, then shut it down via the [shutdown] verb.
    What [eba bench-serve] and the CI smoke step call. *)

val result_json : result -> Json.t
(** The [serve] section row: every field above, snake_case keys. *)

val pp : Format.formatter -> result -> unit
