module Json = Eba_util.Json

type t = { fd : Unix.file_descr; mutable open_ : bool }

let connect address = { fd = Frame.connect address; open_ = true }

let close c =
  if c.open_ then begin
    c.open_ <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let send c request = Frame.write_frame c.fd (Json.to_string request)

let recv c =
  match Frame.read_frame c.fd with
  | Ok payload -> Ok payload
  | Error `Eof -> Error "connection closed by the daemon"
  | Error (`Oversize n) -> Error (Printf.sprintf "oversize reply (%d bytes)" n)
  | exception End_of_file -> Error "connection closed mid-frame"

let recv_json c =
  match recv c with
  | Error _ as e -> e
  | Ok payload -> (
      match Json.parse payload with
      | Ok json -> Ok json
      | Error e -> Error ("reply is not valid JSON: " ^ Json.error_to_string e))

let raw_call c ?id ~verb ?params () =
  send c (Protocol.request ?id ~verb ?params ());
  recv c

let call c ?id ~verb ?params () =
  send c (Protocol.request ?id ~verb ?params ());
  match recv_json c with
  | Error _ as e -> e
  | Ok json -> Protocol.reply_of_json json

let call_stream c ?id ?(on_progress = fun ~done_:_ ~total:_ -> ()) ~verb
    ?params () =
  send c (Protocol.request ?id ~progress:true ~verb ?params ());
  let rec await () =
    match recv_json c with
    | Error _ as e -> e
    | Ok json -> (
        match Protocol.reply_of_json json with
        | Error _ as e -> e
        | Ok (_, Protocol.Progress_frame { p_done; p_total }) ->
            on_progress ~done_:p_done ~total:p_total;
            await ()
        | Ok _ as final -> final)
  in
  await ()
