(** A blocking client for the agreement service — what the CLI, the
    bench load generator and the differential tests speak.

    One connection, synchronous {!call} or explicit {!send}/{!recv}
    pipelining (match pipelined replies by the [id] you chose).
    {!raw_call} exposes the exact reply bytes for the byte-identity
    tests. *)

module Json = Eba_util.Json

type t

val connect : Frame.address -> t
(** Raises [Unix.Unix_error] if nothing is listening. *)

val close : t -> unit

val send : t -> Json.t -> unit
(** Write one request frame. *)

val recv : t -> (string, string) result
(** Read the next response frame's exact payload bytes. *)

val recv_json : t -> (Json.t, string) result

val call :
  t ->
  ?id:Json.t ->
  verb:string ->
  ?params:(string * Json.t) list ->
  unit ->
  (Json.t * Protocol.reply, string) result
(** One request, one reply: [(echoed id, reply)]. *)

val raw_call :
  t ->
  ?id:Json.t ->
  verb:string ->
  ?params:(string * Json.t) list ->
  unit ->
  (string, string) result
(** Like {!call} but returns the reply frame's payload verbatim. *)
