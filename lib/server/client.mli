(** A blocking client for the agreement service — what the CLI, the
    bench load generator and the differential tests speak.

    One connection, synchronous {!call} or explicit {!send}/{!recv}
    pipelining (match pipelined replies by the [id] you chose).
    {!raw_call} exposes the exact reply bytes for the byte-identity
    tests. *)

module Json = Eba_util.Json

type t

val connect : Frame.address -> t
(** Raises [Unix.Unix_error] if nothing is listening. *)

val close : t -> unit

val send : t -> Json.t -> unit
(** Write one request frame. *)

val recv : t -> (string, string) result
(** Read the next response frame's exact payload bytes. *)

val recv_json : t -> (Json.t, string) result

val call :
  t ->
  ?id:Json.t ->
  verb:string ->
  ?params:(string * Json.t) list ->
  unit ->
  (Json.t * Protocol.reply, string) result
(** One request, one reply: [(echoed id, reply)]. *)

val raw_call :
  t ->
  ?id:Json.t ->
  verb:string ->
  ?params:(string * Json.t) list ->
  unit ->
  (string, string) result
(** Like {!call} but returns the reply frame's payload verbatim. *)

val call_stream :
  t ->
  ?id:Json.t ->
  ?on_progress:(done_:int -> total:int -> unit) ->
  verb:string ->
  ?params:(string * Json.t) list ->
  unit ->
  (Json.t * Protocol.reply, string) result
(** Like {!call} but opts into streaming: the request carries
    [progress: true], every interim progress frame is folded into
    [on_progress] (cumulative completed runs over the total; values are
    non-decreasing), and the first non-progress reply — the final
    result, error, or [cancelled] — is returned.  With the default
    [on_progress] the frames are silently discarded, making this a
    drop-in [call] for verbs that stream. *)
