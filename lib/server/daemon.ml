module Json = Eba_util.Json
module Metrics = Eba_util.Metrics

type config = {
  address : Frame.address;
  workers : int;
  queue_cap : int;
  max_frame : int;
  max_conns : int;
  handle_signals : bool;
}

let default_config =
  {
    address = Frame.Unix_socket "eba.sock";
    workers = 4;
    queue_cap = 64;
    max_frame = Frame.default_max_frame;
    max_conns = 900;
    handle_signals = false;
  }

type conn = {
  fd : Unix.file_descr;
  cid : int;
  dec : Frame.decoder;
  out : string Queue.t;  (* encoded frames not yet fully on the wire *)
  mutable out_off : int;  (* bytes of the queue head already written *)
  mutable out_pending : int;  (* unwritten bytes across the whole queue *)
  mutable alive : bool;
}

(* What workers hand back to the loop.  [c_key = Some k] marks the
   final reply of tracked request [k] (the loop forgets its token);
   progress frames and untracked replies carry [None]. *)
type completion = {
  c_conn : int;
  c_key : (int * string) option;
  c_json : Json.t;
}

type state = {
  cfg : config;
  mutable listen_fd : Unix.file_descr option;
  conns : (int, conn) Hashtbl.t;
  mutable next_cid : int;
  queue : Pool.job Req_queue.t;
  mutable pool : Pool.t option;
  (* completions cross domains: workers push under the lock and nudge the
     self-pipe; only the loop thread pops and touches sockets *)
  completions : completion Queue.t;
  completions_lock : Mutex.t;
  (* (connection, id bytes) -> cancellation token for every tracked
     request accepted and not yet finally replied to.  Loop thread only;
     workers reach the tokens through their job records. *)
  inflight : (int * string, Eba_util.Cancel.t) Hashtbl.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  stop : bool Atomic.t;  (* set by signal handlers / the shutdown verb *)
  mutable draining : bool;
}

let requests_counter = Metrics.counter "serve.requests"
let busy_counter = Metrics.counter "serve.busy"
let cancelled_counter = Metrics.counter ~deterministic:false "serve.cancelled"

let all_verbs = Registry.verbs @ [ "cancel"; "status"; "shutdown" ]

(* --- replies (every socket write goes through here, on the loop thread) --- *)

let close_conn st conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end;
  Hashtbl.remove st.conns conn.cid;
  (* nobody is left to read the replies: fire the connection's tokens so
     its in-flight work stops at the next run boundary *)
  let stale =
    Hashtbl.fold
      (fun key token acc ->
        if fst key = conn.cid then (key, token) :: acc else acc)
      st.inflight []
  in
  List.iter
    (fun (key, token) ->
      Eba_util.Cancel.cancel token;
      Hashtbl.remove st.inflight key)
    stale

(* Connection sockets are non-blocking: a write takes whatever the kernel
   will buffer and the rest waits in [conn.out] for select writability,
   so one client that stops reading its replies can never stall the loop
   (and with it every other connection). *)
let rec flush_out st conn =
  if conn.alive && conn.out_pending > 0 then begin
    let head = Queue.peek conn.out in
    let len = String.length head - conn.out_off in
    match Unix.write_substring conn.fd head conn.out_off len with
    | wrote ->
        conn.out_pending <- conn.out_pending - wrote;
        if wrote = len then begin
          ignore (Queue.pop conn.out);
          conn.out_off <- 0;
          flush_out st conn
        end
        else conn.out_off <- conn.out_off + wrote
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()  (* kernel buffer full: the rest waits for writability *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_out st conn
    | exception Unix.Unix_error _ ->
        (* EPIPE (SIGPIPE is ignored — {!Frame.ignore_sigpipe}),
           ECONNRESET, ...: the peer is gone *)
        close_conn st conn
  end

(* A reader this many bytes behind is not coming back; cut it loose
   rather than buffer its replies without bound. *)
let max_reply_backlog cfg = 2 * cfg.max_frame

let send st conn json =
  if conn.alive then begin
    let frame = Frame.encode (Json.to_string json) in
    Queue.push frame conn.out;
    conn.out_pending <- conn.out_pending + String.length frame;
    flush_out st conn;
    if conn.alive && conn.out_pending > max_reply_backlog st.cfg then
      close_conn st conn
  end

(* --- completion channel (worker side is [push_completion]) --- *)

let push_completion st comp =
  Mutex.lock st.completions_lock;
  Queue.push comp st.completions;
  Mutex.unlock st.completions_lock;
  (* one nudge byte; the pipe buffer far exceeds any worker count, so
     this never blocks a worker *)
  ignore (Unix.write st.pipe_w (Bytes.make 1 '!') 0 1)

let drain_completions st =
  let pending =
    Mutex.lock st.completions_lock;
    let xs = Queue.fold (fun acc x -> x :: acc) [] st.completions in
    Queue.clear st.completions;
    Mutex.unlock st.completions_lock;
    List.rev xs
  in
  List.iter
    (fun comp ->
      (* a final reply (result, error or cancelled) retires the
         request's tracking entry whether or not the peer survived to
         read it *)
      Option.iter (Hashtbl.remove st.inflight) comp.c_key;
      match Hashtbl.find_opt st.conns comp.c_conn with
      | Some conn -> send st conn comp.c_json
      | None -> ())
    pending

(* --- progress frames --- *)

let progress_interval_ns = 50_000_000L

(* One emitter per opted-in request, called from whatever engine domains
   the sweep fans out to, hence the lock.  Emitted [done] values are
   strictly increasing and pushed in order (the push happens under the
   lock), so the client sees non-decreasing progress; the interval gate
   keeps a fast sweep from flooding the wire — except the first frame,
   which always fires so short sweeps still demonstrate liveness. *)
let progress_emitter st ~conn ~id =
  let lock = Mutex.create () in
  let last_ns = ref Int64.min_int in
  let last_done = ref 0 in
  fun ~done_ ~total ->
    if done_ > !last_done then begin
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          let now = Monotonic_clock.now () in
          if
            done_ > !last_done
            && (!last_ns = Int64.min_int
               || Int64.compare (Int64.sub now !last_ns) progress_interval_ns
                  >= 0)
          then begin
            last_ns := now;
            last_done := done_;
            push_completion st
              {
                c_conn = conn;
                c_key = None;
                c_json = Protocol.progress ~id ~done_ ~total;
              }
          end)
    end

(* --- dispatch --- *)

let status_result st =
  let pool_stat f = match st.pool with Some p -> f p | None -> 0 in
  Json.Obj
    [
      ("service", Json.String "eba-serve/1");
      ("verbs", Json.List (List.map (fun v -> Json.String v) all_verbs));
      ("workers", Json.Int st.cfg.workers);
      ("queue_depth", Json.Int (Req_queue.depth st.queue));
      ("queue_cap", Json.Int (Req_queue.cap st.queue));
      ("in_flight", Json.Int (pool_stat Pool.in_flight));
      ("served", Json.Int (pool_stat Pool.served));
      ("draining", Json.Bool st.draining);
    ]

(* [cancel] is an admin verb: it steers loop-owned state (the queue and
   the in-flight table), so it answers inline and is never queued — a
   saturated queue cannot delay the cancellation of what saturated it.
   Scope is the requesting connection: ids are client-chosen, so
   [(cid, id)] is the only well-defined key. *)
let dispatch_cancel st conn ~id params =
  let target =
    match params with
    | Json.Obj fields -> List.assoc_opt "target" fields
    | _ -> None
  in
  let bad_keys =
    match params with
    | Json.Obj fields -> List.exists (fun (k, _) -> k <> "target") fields
    | _ -> false
  in
  if bad_keys then
    send st conn
      (Protocol.error ~id Protocol.Bad_request
         "cancel takes exactly one param: \"target\"")
  else
    match target with
    | None | Some Json.Null ->
        send st conn
          (Protocol.error ~id Protocol.Bad_request
             "cancel requires a non-null \"target\" param (the id of the \
              request to cancel)")
    | Some target ->
        let key = (conn.cid, Json.to_string target) in
        (* fast path: still queued — yank it and answer the original
           request right now, no worker involved *)
        let removed =
          Req_queue.remove st.queue (fun (j : Pool.job) ->
              j.Pool.job_key = Some key)
        in
        let state =
          if removed <> [] then begin
            Hashtbl.remove st.inflight key;
            List.iter
              (fun (j : Pool.job) ->
                Eba_util.Cancel.cancel j.Pool.job_cancel)
              removed;
            "queued"
          end
          else
            match Hashtbl.find_opt st.inflight key with
            | Some token ->
                (* running: fire the token; the worker notices at the
                   next run/row boundary and completes with the typed
                   [cancelled] reply *)
                Eba_util.Cancel.cancel token;
                "running"
            | None -> "unknown"
        in
        if state <> "unknown" then Metrics.incr cancelled_counter;
        send st conn
          (Protocol.ok ~id
             (Json.Obj [ ("target", target); ("state", Json.String state) ]));
        (* the yanked requests' own typed replies, after the cancel's ok
           so the wire order matches the running case *)
        List.iter (fun (j : Pool.job) -> send st conn (j.Pool.cancelled ())) removed

let dispatch st conn (req : Protocol.request) =
  Metrics.incr requests_counter;
  let id = req.Protocol.req_id in
  match req.Protocol.verb with
  | "status" -> send st conn (Protocol.ok ~id (status_result st))
  | "cancel" -> dispatch_cancel st conn ~id req.Protocol.params
  | "shutdown" ->
      send st conn (Protocol.ok ~id (Json.Obj [ ("stopping", Json.Bool true) ]));
      Atomic.set st.stop true
  | verb -> (
      if st.draining then
        send st conn
          (Protocol.error ~id Protocol.Shutting_down
             "daemon is draining; not accepting new work")
      else
        match Registry.prepare ~verb ~params:req.Protocol.params with
        | Error `Unknown_verb ->
            send st conn
              (Protocol.error ~id Protocol.Unknown_verb
                 (Printf.sprintf "unknown verb %S (have: %s)" verb
                    (String.concat ", " all_verbs)))
        | Error (`Bad_request msg) ->
            send st conn (Protocol.error ~id Protocol.Bad_request msg)
        | Ok thunk ->
            (* only a non-null id can be named by a later [cancel]; a
               null-id request runs untracked, exactly as before *)
            let key =
              match id with
              | Json.Null -> None
              | _ -> Some (conn.cid, Json.to_string id)
            in
            let cancel = Eba_util.Cancel.create () in
            let progress =
              if req.Protocol.want_progress then
                Some (progress_emitter st ~conn:conn.cid ~id)
              else None
            in
            let ctx = { Registry.cancel; progress } in
            let job =
              {
                Pool.job_conn = conn.cid;
                job_key = key;
                job_cancel = cancel;
                response =
                  (fun () ->
                    match thunk ctx with
                    | Ok result -> Protocol.ok ~id result
                    | Error msg -> Protocol.error ~id Protocol.Bad_request msg);
                cancelled = (fun () -> Protocol.cancelled ~id);
                abort =
                  (fun () ->
                    Protocol.error ~id Protocol.Shutting_down
                      "daemon drained before this request started");
              }
            in
            (match Req_queue.try_push st.queue job with
            | `Ok ->
                Option.iter
                  (fun k -> Hashtbl.replace st.inflight k cancel)
                  key
            | `Full depth ->
                Metrics.incr busy_counter;
                send st conn
                  (Protocol.busy ~id ~depth ~cap:(Req_queue.cap st.queue))
            | `Closed ->
                send st conn
                  (Protocol.error ~id Protocol.Shutting_down
                     "daemon is draining; not accepting new work")))

let handle_frame st conn payload =
  match Json.parse payload with
  | Error e ->
      send st conn
        (Protocol.error ~id:Json.Null Protocol.Bad_request
           ("frame is not valid JSON: " ^ Json.error_to_string e))
  | Ok json -> (
      match Protocol.request_of_json json with
      | Error msg ->
          send st conn (Protocol.error ~id:Json.Null Protocol.Bad_request msg)
      | Ok req -> dispatch st conn req)

let read_chunk_size = 65536

let handle_readable st conn =
  let buf = Bytes.create read_chunk_size in
  match Unix.read conn.fd buf 0 read_chunk_size with
  | 0 -> close_conn st conn
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()  (* spurious wakeup / interrupted read: select will re-report *)
  | exception Unix.Unix_error _ ->
      (* ECONNRESET, ETIMEDOUT, ...: any other error on a connection
         socket means that connection, never the loop *)
      close_conn st conn
  | len ->
      Frame.feed conn.dec buf ~len;
      let rec frames () =
        if conn.alive then
          match Frame.next conn.dec with
          | Ok None -> ()
          | Ok (Some payload) ->
              handle_frame st conn payload;
              frames ()
          | Error (`Oversize n) ->
              send st conn
                (Protocol.error ~id:Json.Null Protocol.Bad_request
                   (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap"
                      n st.cfg.max_frame));
              close_conn st conn
      in
      frames ()

let accept_conn st listen_fd =
  match Unix.accept listen_fd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
      Unix.set_close_on_exec fd;
      Unix.set_nonblock fd;
      let cid = st.next_cid in
      st.next_cid <- cid + 1;
      Hashtbl.replace st.conns cid
        {
          fd;
          cid;
          dec = Frame.decoder ~max_frame:st.cfg.max_frame ();
          out = Queue.create ();
          out_off = 0;
          out_pending = 0;
          alive = true;
        }

(* --- drain --- *)

let close_listener st =
  match st.listen_fd with
  | None -> ()
  | Some fd ->
      st.listen_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* unlink now, not at exit: a restarted daemon binds immediately
         while this one finishes its in-flight work *)
      (match st.cfg.address with
      | Frame.Unix_socket path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | Frame.Tcp _ -> ())

(* Best-effort delivery of buffered replies before the final close,
   bounded by a deadline so one dead peer cannot hold up shutdown. *)
let drain_flush_deadline_ns = 5_000_000_000L

let flush_remaining st =
  let deadline = Int64.add (Monotonic_clock.now ()) drain_flush_deadline_ns in
  let rec go () =
    let waiting =
      Hashtbl.fold
        (fun _ c acc -> if c.alive && c.out_pending > 0 then c :: acc else acc)
        st.conns []
    in
    if waiting <> [] && Int64.compare (Monotonic_clock.now ()) deadline < 0
    then begin
      (match Unix.select [] (List.map (fun c -> c.fd) waiting) [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | _, writable, _ ->
          List.iter
            (fun c -> if List.mem c.fd writable then flush_out st c)
            waiting);
      go ()
    end
  in
  go ()

let drain st =
  st.draining <- true;
  close_listener st;
  (* every queued-but-unstarted job gets its typed reply *)
  let leftovers = Req_queue.close st.queue in
  List.iter
    (fun (job : Pool.job) ->
      push_completion st
        {
          c_conn = job.Pool.job_conn;
          c_key = job.Pool.job_key;
          c_json = job.Pool.abort ();
        })
    leftovers;
  (* in-flight jobs finish; their completions can't block because the
     pipe write is tiny and we drain everything right after the join *)
  Option.iter Pool.join st.pool;
  drain_completions st;
  flush_remaining st;
  let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) st.conns [] in
  List.iter (close_conn st) remaining

(* --- the loop --- *)

(* [pipe_r] is non-blocking, so reading it dry is safe even when the
   pending nudge bytes are an exact multiple of the buffer size — a
   blocking fd would wedge the loop on that follow-up read. *)
let drain_pipe st =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read st.pipe_r buf 0 256 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let serve st =
  let rec loop () =
    if Atomic.get st.stop then ()
    else begin
      let read_fds = ref [ st.pipe_r ] in
      let write_fds = ref [] in
      Hashtbl.iter
        (fun _ c ->
          if c.alive then begin
            read_fds := c.fd :: !read_fds;
            if c.out_pending > 0 then write_fds := c.fd :: !write_fds
          end)
        st.conns;
      (* stop watching the listener at the connection cap: Unix.select
         is limited to FD_SETSIZE descriptors, so accepts beyond the cap
         wait in the kernel backlog until a slot frees *)
      (match st.listen_fd with
      | Some fd when Hashtbl.length st.conns < st.cfg.max_conns ->
          read_fds := fd :: !read_fds
      | _ -> ());
      match Unix.select !read_fds !write_fds [] 1.0 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready_r, ready_w, _ ->
          if List.mem st.pipe_r ready_r then begin
            drain_pipe st;
            drain_completions st
          end;
          let writable_conns =
            Hashtbl.fold
              (fun _ c acc ->
                if c.alive && List.mem c.fd ready_w then c :: acc else acc)
              st.conns []
          in
          List.iter
            (fun c -> if c.alive then flush_out st c)
            writable_conns;
          (match st.listen_fd with
          | Some lfd when List.mem lfd ready_r -> accept_conn st lfd
          | _ -> ());
          let ready_conns =
            Hashtbl.fold
              (fun _ c acc ->
                if c.alive && List.mem c.fd ready_r then c :: acc else acc)
              st.conns []
          in
          List.iter (fun c -> if c.alive then handle_readable st c) ready_conns;
          loop ()
    end
  in
  loop ()

let with_signals st enabled f =
  if not enabled then f ()
  else begin
    let request_stop _ = Atomic.set st.stop true in
    let installed =
      List.map
        (fun s -> (s, Sys.signal s (Sys.Signal_handle request_stop)))
        [ Sys.sigint; Sys.sigterm ]
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun (s, old) -> Sys.set_signal s old) installed)
      f
  end

let run ?on_ready cfg =
  if cfg.queue_cap < 1 then invalid_arg "Daemon.run: queue_cap must be >= 1";
  if cfg.max_conns < 1 then invalid_arg "Daemon.run: max_conns must be >= 1";
  let listen_fd = Frame.listen cfg.address in
  Unix.set_nonblock listen_fd;
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock pipe_r;
  let queue = Req_queue.create ~cap:cfg.queue_cap in
  let st =
    {
      cfg;
      listen_fd = Some listen_fd;
      conns = Hashtbl.create 16;
      next_cid = 0;
      queue;
      pool = None;
      completions = Queue.create ();
      completions_lock = Mutex.create ();
      inflight = Hashtbl.create 16;
      pipe_r;
      pipe_w;
      stop = Atomic.make false;
      draining = false;
    }
  in
  let finally () =
    close_listener st;
    (try Unix.close pipe_r with Unix.Unix_error _ -> ());
    try Unix.close pipe_w with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      with_signals st cfg.handle_signals (fun () ->
          st.pool <-
            Some
              (Pool.create ~workers:cfg.workers ~queue
                 ~complete:(fun ~job reply ->
                   push_completion st
                     {
                       c_conn = job.Pool.job_conn;
                       c_key = job.Pool.job_key;
                       c_json = reply;
                     }));
          Option.iter (fun f -> f (Frame.bound_address listen_fd cfg.address))
            on_ready;
          Fun.protect
            ~finally:(fun () -> drain st)
            (fun () -> serve st)))
