(** The resident agreement service: one select-based event loop, a
    bounded request queue, and a {!Pool} of worker domains.

    {2 Life of a request}

    The event loop owns every socket.  It accepts connections, feeds
    bytes through a per-connection incremental {!Frame.decoder}, parses
    each frame with {!Eba_util.Json.parse}, and dispatches:

    - unparseable frame / bad envelope: inline [bad-request] reply;
    - [status], [shutdown]: answered inline (they read or steer loop
      state);
    - compute verbs: decoded and resolved inline ({!Registry.prepare} —
      a bad request is refused before it costs a queue slot), then
      pushed to the bounded queue.  A full queue is an inline [busy]
      reply with the observed depth and the cap; the connection stays
      open.

    Workers pop jobs, run them, and hand [(connection, reply)] back
    through a mutex-guarded completion list plus a self-pipe byte; the
    loop wakes, drains the list, and writes each frame on its
    connection.  Every socket write happens on the loop thread, so
    frames never interleave.

    {2 Cancellation, progress, and the model cache}

    Every compute request with a non-null [id] is tracked (keyed by
    connection and id) from the moment it is queued until its final
    reply drains.  The [cancel] verb ([params.target] = the id to
    cancel, same connection only) answers inline with what it caught:
    ["queued"] (the job was yanked from the queue — its [cancelled]
    reply follows immediately), ["running"] (the job's cooperative
    {!Eba_util.Cancel} token was fired; the worker polls it at
    run/wave/pattern/chain-row boundaries and stops within one unit),
    or ["unknown"].  The cancel's ok-ack is always written before the
    cancelled request's terminal [{"status":"cancelled"}] reply, and a
    connection close fires the tokens of all its in-flight requests.

    A request carrying ["progress": true] additionally receives
    rate-limited monotone progress frames
    ([{"status":"progress","done":k,"total":K}]) through the same
    completion channel before its final reply; clients that do not opt
    in observe exactly the one-reply-per-request protocol.

    [knowledge-query] jobs share {!Registry.model_cache}, a promise
    LRU over bounded models keyed by the {!Eba_sim.Params.t} identity:
    concurrent queries for one identity wait on a single build, warm
    replies are byte-identical to cold ones, and hit/miss counts are
    deterministic functions of the request multiset.

    {2 Misbehaving peers}

    The loop must outlive any client, so nothing a peer does may block
    or kill it.  Connection sockets are non-blocking: replies are
    buffered per connection and flushed as [select] reports
    writability, so a client that pipelines requests but stops reading
    stalls only itself — a reader more than two frame-caps behind is
    disconnected rather than buffered without bound.  [SIGPIPE] is
    ignored ({!Frame.ignore_sigpipe}), so a peer that closes before
    reading its reply produces an [EPIPE] handled as a connection
    close.  Any other [Unix_error] on a connection read or write also
    closes just that connection.  Accepts stop at [max_conns] open
    connections (keeping the [select] sets inside [FD_SETSIZE]);
    further connects wait in the kernel backlog until a slot frees.

    {2 Graceful drain}

    [SIGINT], [SIGTERM] (when [handle_signals]) and the [shutdown] verb
    all trigger the same drain: stop accepting (the listening socket is
    closed and, for Unix sockets, unlinked {e immediately}, so a
    restarted daemon can bind while the old one finishes), close the
    queue and answer every queued-but-unstarted job with
    [shutting-down], let in-flight jobs run to completion, deliver
    their replies, then close every connection.  Nothing is dropped
    silently and no socket file is left behind — a crash that does
    leave one is recovered by the next {!Frame.listen}'s stale-socket
    probe. *)

type config = {
  address : Frame.address;
  workers : int;
      (** worker domains; [0] = accept-only (see {!Pool.create}) *)
  queue_cap : int;  (** bounded queue slots, >= 1 *)
  max_frame : int;  (** per-frame byte cap for reads *)
  max_conns : int;
      (** open-connection cap, >= 1 — accepts beyond it wait in the
          listen backlog; keep below [FD_SETSIZE] (1024) minus
          headroom, or [Unix.select] fails with [EINVAL] *)
  handle_signals : bool;
      (** install SIGINT/SIGTERM drain handlers — process-global, so
          only the CLI sets this; in-process daemons (tests, bench) use
          the [shutdown] verb *)
}

val default_config : config
(** Unix socket ["eba.sock"], 4 workers, 64 queue slots, the default
    frame cap, 900 connections, no signal handlers. *)

val run : ?on_ready:(Frame.address -> unit) -> config -> unit
(** Bind, serve until drained, clean up, return.  [on_ready] fires once
    with the bound address (the concrete port for [Tcp 0]) — how tests
    and the bench harness learn where to connect when they run the
    daemon in a spawned domain. *)
