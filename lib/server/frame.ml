type address = Unix_socket of string | Tcp of int

let address_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp port -> Printf.sprintf "tcp:%d" port

let default_max_frame = 64 * 1024 * 1024

let encode payload =
  let len = String.length payload in
  if len > default_max_frame then
    invalid_arg
      (Printf.sprintf "Frame.encode: %d bytes exceeds the %d-byte frame cap"
         len default_max_frame);
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.unsafe_to_string b

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let wrote = Unix.write fd b !off (len - !off) in
    if wrote = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    off := !off + wrote
  done

let write_frame fd payload = write_all fd (Bytes.of_string (encode payload))

let read_exactly fd b off len =
  let off = ref off and remaining = ref len in
  while !remaining > 0 do
    let got = Unix.read fd b !off !remaining in
    if got = 0 then raise End_of_file;
    off := !off + got;
    remaining := !remaining - got
  done

let read_frame ?(max_frame = default_max_frame) fd =
  let header = Bytes.create 4 in
  match Unix.read fd header 0 4 with
  | 0 -> Error `Eof
  | got ->
      if got < 4 then read_exactly fd header got (4 - got);
      let len = Int32.to_int (Bytes.get_int32_be header 0) in
      if len < 0 || len > max_frame then Error (`Oversize len)
      else begin
        let payload = Bytes.create len in
        read_exactly fd payload 0 len;
        Ok (Bytes.unsafe_to_string payload)
      end

(* --- incremental decoder --- *)

type decoder = {
  max_frame : int;
  mutable buf : Bytes.t;  (* accumulated input, [start, fill) live *)
  mutable start : int;
  mutable fill : int;
  mutable poisoned : int option;  (* the oversize length, once seen *)
}

let decoder ?(max_frame = default_max_frame) () =
  { max_frame; buf = Bytes.create 4096; start = 0; fill = 0; poisoned = None }

let buffered d = d.fill - d.start

let feed d chunk ~len =
  if len > 0 then begin
    if d.fill + len > Bytes.length d.buf then begin
      (* compact, then grow if still needed *)
      let live = buffered d in
      Bytes.blit d.buf d.start d.buf 0 live;
      d.start <- 0;
      d.fill <- live;
      if live + len > Bytes.length d.buf then begin
        let cap = ref (max 4096 (2 * Bytes.length d.buf)) in
        while live + len > !cap do
          cap := 2 * !cap
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit d.buf 0 bigger 0 live;
        d.buf <- bigger
      end
    end;
    Bytes.blit chunk 0 d.buf d.fill len;
    d.fill <- d.fill + len
  end

let next d =
  match d.poisoned with
  | Some n -> Error (`Oversize n)
  | None ->
      if buffered d < 4 then Ok None
      else
        let len = Int32.to_int (Bytes.get_int32_be d.buf d.start) in
        if len < 0 || len > d.max_frame then begin
          d.poisoned <- Some len;
          Error (`Oversize len)
        end
        else if buffered d < 4 + len then Ok None
        else begin
          let payload = Bytes.sub_string d.buf (d.start + 4) len in
          d.start <- d.start + 4 + len;
          if d.start = d.fill then begin
            d.start <- 0;
            d.fill <- 0
          end;
          Ok (Some payload)
        end

(* --- sockets --- *)

(* Writing to a socket whose peer has gone delivers SIGPIPE before the
   write can fail with EPIPE; with the default disposition that kills
   the whole process.  Every transport user — daemon, client, bench —
   wants the error, not the signal, so [listen] and [connect] both
   force the disposition (idempotently) before handing out a socket. *)
let ignore_sigpipe =
  let forced = ref false in
  fun () ->
    if not !forced then begin
      forced := true;
      try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
      with Invalid_argument _ -> ()  (* platform without SIGPIPE *)
    end

let socket_of = function
  | Unix_socket _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  | Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0

let sockaddr_of = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

(* A socket file nobody accepts on is litter from a killed daemon: probe
   with a connect, and unlink only a confirmed-dead socket.  Anything
   that is not a socket is somebody else's file — never unlink it. *)
let remove_stale_socket path =
  match (Unix.stat path).Unix.st_kind with
  | Unix.S_SOCK -> (
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        Fun.protect
          ~finally:(fun () -> Unix.close probe)
          (fun () ->
            match Unix.connect probe (Unix.ADDR_UNIX path) with
            | () -> true
            | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
              ->
                false)
      in
      if live then
        raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
      else Unix.unlink path)
  | _ ->
      invalid_arg
        (Printf.sprintf "Frame.listen: %s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let listen ?(backlog = 64) address =
  ignore_sigpipe ();
  (match address with
  | Unix_socket path -> remove_stale_socket path
  | Tcp _ -> ());
  let fd = socket_of address in
  (try
     Unix.set_close_on_exec fd;
     (match address with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_socket _ -> ());
     Unix.bind fd (sockaddr_of address);
     Unix.listen fd backlog
   with e ->
     Unix.close fd;
     raise e);
  fd

let bound_address fd = function
  | Unix_socket _ as a -> a
  | Tcp _ -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Tcp port
      | Unix.ADDR_UNIX path -> Unix_socket path)

let connect address =
  ignore_sigpipe ();
  let fd = socket_of address in
  (try
     Unix.set_close_on_exec fd;
     Unix.connect fd (sockaddr_of address)
   with e ->
     Unix.close fd;
     raise e);
  fd
