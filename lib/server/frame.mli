(** Wire framing and transport addresses for the agreement service.

    Every message on an [eba serve] connection — request or response — is
    one {e frame}: a 4-byte big-endian payload length followed by exactly
    that many payload bytes (the payload is one JSON text).  Framing is
    direction-symmetric and carries no other state, so a connection is a
    plain sequence of frames each way.

    Two transports: a Unix-domain socket (the default — filesystem
    permissions are the access control) and a localhost TCP port.  Both
    speak byte streams; nothing here depends on which one carries the
    frames. *)

type address =
  | Unix_socket of string  (** filesystem path *)
  | Tcp of int  (** 127.0.0.1 port; [0] lets the kernel pick *)

val address_to_string : address -> string
(** [unix:PATH] / [tcp:PORT] — the rendering the CLI and telemetry use. *)

val default_max_frame : int
(** 64 MiB — frames beyond this are a protocol violation, not a
    larger-buffer request. *)

val encode : string -> string
(** The 4-byte length prefix followed by the payload.  Raises
    [Invalid_argument] past {!default_max_frame}. *)

val write_frame : Unix.file_descr -> string -> unit
(** [encode] and write fully (retrying short writes).  Raises
    [Unix.Unix_error] as the descriptor does. *)

val read_frame :
  ?max_frame:int -> Unix.file_descr -> (string, [ `Eof | `Oversize of int ]) result
(** Blocking read of one complete frame.  [`Eof] when the peer closed
    cleanly {e between} frames; a close mid-frame raises [End_of_file]
    (truncated input is a peer bug, not a clean end). *)

(** {1 Incremental decoding}

    The daemon reads sockets as they become readable and feeds whatever
    arrived into a per-connection decoder; complete frames pop out as
    their last byte lands.  A decoder that has signalled [`Oversize] is
    poisoned: the stream can no longer be re-synchronized, so the
    connection must be dropped. *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder

val feed : decoder -> bytes -> len:int -> unit
(** Append the first [len] bytes of the buffer to the decoder's input. *)

val next : decoder -> (string option, [ `Oversize of int ]) result
(** The next complete payload, [Ok None] when more input is needed. *)

val buffered : decoder -> int
(** Bytes fed but not yet returned — a backpressure signal. *)

(** {1 Sockets} *)

val ignore_sigpipe : unit -> unit
(** Set [SIGPIPE] to ignored (process-global, idempotent, a no-op on
    platforms without the signal) so a write to a peer that has closed
    fails with the [EPIPE] [Unix.Unix_error] instead of killing the
    process.  {!listen} and {!connect} call this before returning a
    socket; it is exposed for programs that write to descriptors they
    obtained some other way. *)

val listen : ?backlog:int -> address -> Unix.file_descr
(** Bind and listen.  For {!Unix_socket}, recovers from a {e stale}
    socket file: if the path holds a socket nobody is accepting on (a
    previous daemon was killed without cleanup), it is unlinked and the
    address reused — restart-after-kill must not require manual [rm].  A
    path holding a live server fails with [Unix.EADDRINUSE]; a path
    holding anything that is not a socket is never touched and fails with
    [Invalid_argument]. *)

val bound_address : Unix.file_descr -> address -> address
(** The concrete address after {!listen} — resolves [Tcp 0] to the port
    the kernel picked. *)

val connect : address -> Unix.file_descr
