module Params = Eba_sim.Params
module Model = Eba_fip.Model
module Metrics = Eba_util.Metrics

(* serve.* like the daemon's other counters; deterministic because the
   promise protocol makes hit/miss counts a pure function of the request
   multiset, not of worker interleaving *)
let m_hits = Metrics.counter "serve.model_cache.hits"
let m_misses = Metrics.counter "serve.model_cache.misses"
let m_evictions = Metrics.counter ~deterministic:false "serve.model_cache.evictions"

type slot = Building | Ready of Model.t

type t = {
  capacity : int;
  lock : Mutex.t;
  ready : Condition.t;  (* signalled when a Building slot resolves *)
  table : (Params.t, slot) Hashtbl.t;
  mutable recency : Params.t list;  (* Ready keys, most recent first *)
  (* own atomics rather than Metrics so tests see exact counts without
     flipping the process-wide metrics switch *)
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?(capacity = 8) () =
  if capacity < 1 then invalid_arg "Model_cache.create: capacity must be >= 1";
  {
    capacity;
    lock = Mutex.create ();
    ready = Condition.create ();
    table = Hashtbl.create 16;
    recency = [];
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let capacity c = c.capacity

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let touch c key =
  c.recency <- key :: List.filter (fun k -> not (k = key)) c.recency

(* Evict least-recently-used Ready entries until the table fits the
   capacity again.  Building slots are never evicted — their builder will
   publish and the next overflow reclaims them in recency order. *)
let evict_over_capacity c =
  while Hashtbl.length c.table > c.capacity && c.recency <> [] do
    let victim = List.hd (List.rev c.recency) in
    c.recency <- List.filter (fun k -> not (k = victim)) c.recency;
    Hashtbl.remove c.table victim;
    Metrics.incr m_evictions
  done

let record_hit c =
  Atomic.incr c.hits;
  Metrics.incr m_hits

let record_miss c =
  Atomic.incr c.misses;
  Metrics.incr m_misses

let find_or_build c key build =
  Mutex.lock c.lock;
  let rec await () =
    match Hashtbl.find_opt c.table key with
    | Some (Ready m) ->
        touch c key;
        record_hit c;
        Mutex.unlock c.lock;
        m
    | Some Building ->
        (* a sibling worker owns the build; any number of waiters share
           its one result — "build at most once per key" is the protocol,
           not a race outcome *)
        Condition.wait c.ready c.lock;
        await ()
    | None ->
        Hashtbl.replace c.table key Building;
        record_miss c;
        Mutex.unlock c.lock;
        let m =
          match build key with
          | m -> m
          | exception e ->
              (* failed builds must not wedge the waiters on a Building
                 slot that will never resolve *)
              Mutex.lock c.lock;
              Hashtbl.remove c.table key;
              Condition.broadcast c.ready;
              Mutex.unlock c.lock;
              raise e
        in
        (* the one domain-unsafe part of a model is its lazy run index;
           force it before other domains can reach the entry *)
        Model.prepare_index m;
        Mutex.lock c.lock;
        Hashtbl.replace c.table key (Ready m);
        touch c key;
        evict_over_capacity c;
        Condition.broadcast c.ready;
        Mutex.unlock c.lock;
        m
  in
  await ()

let find c key =
  locked c (fun () ->
      match Hashtbl.find_opt c.table key with
      | Some (Ready m) ->
          touch c key;
          record_hit c;
          Some m
      | Some Building | None -> None)

let length c =
  locked c (fun () ->
      Hashtbl.fold (fun _ s n -> match s with Ready _ -> n + 1 | Building -> n)
        c.table 0)

let mem c key =
  locked c (fun () ->
      match Hashtbl.find_opt c.table key with
      | Some (Ready _) -> true
      | Some Building | None -> false)

let clear c =
  locked c (fun () ->
      (* leave Building slots alone: their owner still holds the promise
         and will publish into the cleared table *)
      let building =
        Hashtbl.fold
          (fun k s acc -> match s with Building -> k :: acc | Ready _ -> acc)
          c.table []
      in
      Hashtbl.reset c.table;
      List.iter (fun k -> Hashtbl.replace c.table k Building) building;
      c.recency <- [];
      Atomic.set c.hits 0;
      Atomic.set c.misses 0)

type stats = { s_hits : int; s_misses : int; s_entries : int }

let stats c =
  locked c (fun () ->
      {
        s_hits = Atomic.get c.hits;
        s_misses = Atomic.get c.misses;
        s_entries =
          Hashtbl.fold
            (fun _ s n -> match s with Ready _ -> n + 1 | Building -> n)
            c.table 0;
      })
