(** The daemon's hot knowledge-model cache.

    Building the bounded run/view model ({!Eba_fip.Model.build}) dwarfs
    every query against it, and repeat [knowledge-query] requests against
    the same universe — the common case for optimality checks — were
    rebuilding it per request.  This is a size-bounded, mutex-guarded LRU
    keyed by the full parameter record [(n, t, horizon, mode)], shared by
    the whole worker pool.

    Concurrency protocol (promise per key): the first worker to miss a
    key installs a [Building] slot, releases the lock, builds, and
    publishes; workers racing the same key block on a condition until the
    slot resolves, then share the one model.  So concurrent identical
    requests build {e at most once} (twice only if a build fails and a
    waiter retries), entries are never torn, and the hit/miss counts are
    a pure function of the request multiset — deterministic at every
    worker count:  K distinct keys over R requests is exactly K misses
    and [R - K] hits while nothing is evicted.

    A cached model is immutable ({!Eba_fip.Model.prepare_index} is forced
    before publication), so sharing across domains is sound, and a warm
    reply is byte-identical to a cold one by construction — the tests pin
    this anyway.

    Counters: [serve.model_cache.hits] / [serve.model_cache.misses]
    (deterministic, in {!Eba_util.Metrics}) mirror the cache-local
    {!stats}, which tests read without enabling process-wide metrics;
    [serve.model_cache.evictions] is scheduling-dependent only in the
    degenerate always-building overflow case and recorded
    non-deterministic out of caution. *)

module Params = Eba_sim.Params
module Model = Eba_fip.Model

type t

val create : ?capacity:int -> unit -> t
(** An empty cache holding at most [capacity] (default 8) built models.
    Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : t -> int

val find_or_build : t -> Params.t -> (Params.t -> Model.t) -> Model.t
(** [find_or_build c key build] returns the cached model for [key],
    waiting out a concurrent build of the same key if one is in flight,
    or builds and publishes it ([build] runs {e outside} the cache lock).
    Counts one hit (entry existed — ready or building) or one miss (this
    call ran [build]).  If [build] raises, the exception propagates, the
    slot is released, and one waiter (if any) retries the build. *)

val find : t -> Params.t -> Model.t option
(** Non-blocking lookup: [Some] (counted as a hit, refreshes recency)
    only for a fully built entry. *)

val mem : t -> Params.t -> bool
(** Is a {e built} entry present?  No recency refresh, no counter. *)

val length : t -> int
(** Built entries resident (excludes in-flight builds). *)

val clear : t -> unit
(** Drop every built entry and zero the {!stats} counters (the
    process-wide {!Eba_util.Metrics} counters are not touched — those
    reset with {!Eba_util.Metrics.reset} like every other counter).
    In-flight builds survive and still publish. *)

type stats = { s_hits : int; s_misses : int; s_entries : int }

val stats : t -> stats
(** Exact counts since creation or {!clear}, readable whether or not
    process metrics are enabled. *)
