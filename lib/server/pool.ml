module Json = Eba_util.Json

type job = {
  job_conn : int;
  job_key : (int * string) option;
  job_cancel : Eba_util.Cancel.t;
  response : unit -> Json.t;
  cancelled : unit -> Json.t;
  abort : unit -> Json.t;
}

type t = {
  domains : unit Domain.t array;
  n_workers : int;
  in_flight : int Atomic.t;
  served : int Atomic.t;
}

let worker_span = Eba_util.Metrics.span "serve.request"

let run_job pool ~complete job =
  Atomic.incr pool.in_flight;
  let reply =
    (* a token fired while the job sat in the queue (racing past the
       loop's instant-cancel sweep): skip the compute entirely *)
    if Eba_util.Cancel.cancelled job.job_cancel then job.cancelled ()
    else
      match Eba_util.Metrics.time worker_span job.response with
      | json -> json
      | exception Eba_util.Cancel.Cancelled -> job.cancelled ()
      | exception e ->
          Protocol.error ~id:Json.Null Protocol.Internal (Printexc.to_string e)
  in
  complete ~job reply;
  Atomic.incr pool.served;
  Atomic.decr pool.in_flight

let create ~workers ~queue ~complete =
  if workers < 0 then invalid_arg "Pool.create: workers must be >= 0";
  let pool =
    {
      domains = [||];
      n_workers = workers;
      in_flight = Atomic.make 0;
      served = Atomic.make 0;
    }
  in
  let rec loop () =
    match Req_queue.pop queue with
    | None -> ()
    | Some job ->
        run_job pool ~complete job;
        loop ()
  in
  let domains = Array.init workers (fun _ -> Domain.spawn loop) in
  { pool with domains }

let workers pool = pool.n_workers
let in_flight pool = Atomic.get pool.in_flight
let served pool = Atomic.get pool.served
let join pool = Array.iter Domain.join pool.domains
