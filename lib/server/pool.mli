(** The daemon's worker pool: [workers] domains draining one
    {!Req_queue} of jobs.

    Which worker runs a job never changes the bytes of its reply — a
    job's [response] thunk is a pure function of the request (every
    engine underneath is bit-deterministic), and completed replies are
    routed back through [complete] tagged with the job they belong to,
    so scheduling only permutes {e which} reply finishes first, never
    its content.  Clients match pipelined replies by [id].

    Cancellation: each job carries its request's cooperative token.  A
    worker checks it once before starting (a token fired while the job
    was queued skips the compute entirely) and the engines underneath
    poll it at run/row boundaries, surfacing
    {!Eba_util.Cancel.Cancelled} out of [response]; either way the job
    completes with its typed [cancelled] reply instead of a result. *)

module Json = Eba_util.Json

type job = {
  job_conn : int;  (** the daemon's token for the requesting connection *)
  job_key : (int * string) option;
      (** the daemon's cancellation-tracking key [(conn, id bytes)];
          [None] for untracked (null-id) requests *)
  job_cancel : Eba_util.Cancel.t;
      (** the request's cooperative cancellation token, shared with the
          daemon's in-flight table *)
  response : unit -> Json.t;
      (** runs in a worker; must be total (the daemon wraps handler
          calls), but a raise still yields a typed [internal] reply —
          except {!Eba_util.Cancel.Cancelled}, which yields
          [cancelled ()] *)
  cancelled : unit -> Json.t;
      (** the typed [cancelled] reply for this request *)
  abort : unit -> Json.t;
      (** the reply for a job the drain threw out of the queue before
          any worker started it ([shutting-down]) *)
}

type t

val create :
  workers:int ->
  queue:job Req_queue.t ->
  complete:(job:job -> Json.t -> unit) ->
  t
(** Spawns [workers] domains ([workers >= 0]).  [complete] is called
    from worker domains — it must be thread-safe (the daemon's is: a
    mutex-guarded completion list plus a self-pipe wakeup).

    [workers = 0] is accept-only mode: jobs queue up but nothing drains
    them.  It exists so tests can fill the queue to its cap
    deterministically and observe the [busy] backpressure reply (and
    the instant cancellation of queued requests). *)

val workers : t -> int

val in_flight : t -> int
(** Jobs popped by a worker and not yet completed. *)

val served : t -> int
(** Jobs completed since the pool started (cancelled jobs count: their
    [cancelled] reply is a completion like any other). *)

val join : t -> unit
(** Wait for every worker to exit.  Only returns promptly after the
    queue has been closed; in-flight jobs run to completion (and their
    replies reach [complete]) — the drain half of graceful shutdown. *)
