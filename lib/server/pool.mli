(** The daemon's worker pool: [workers] domains draining one
    {!Req_queue} of jobs.

    Which worker runs a job never changes the bytes of its reply — a
    job's [response] thunk is a pure function of the request (every
    engine underneath is bit-deterministic), and completed replies are
    routed back through [complete] tagged with the connection they
    belong to, so scheduling only permutes {e which} reply finishes
    first, never its content.  Clients match pipelined replies by
    [id]. *)

module Json = Eba_util.Json

type job = {
  job_conn : int;  (** the daemon's token for the requesting connection *)
  response : unit -> Json.t;
      (** runs in a worker; must be total (the daemon wraps handler
          calls), but a raise still yields a typed [internal] reply *)
  abort : unit -> Json.t;
      (** the reply for a job the drain threw out of the queue before
          any worker started it ([shutting-down]) *)
}

type t

val create :
  workers:int ->
  queue:job Req_queue.t ->
  complete:(conn:int -> Json.t -> unit) ->
  t
(** Spawns [workers] domains ([workers >= 0]).  [complete] is called
    from worker domains — it must be thread-safe (the daemon's is: a
    mutex-guarded completion list plus a self-pipe wakeup).

    [workers = 0] is accept-only mode: jobs queue up but nothing drains
    them.  It exists so tests can fill the queue to its cap
    deterministically and observe the [busy] backpressure reply. *)

val workers : t -> int

val in_flight : t -> int
(** Jobs popped by a worker and not yet completed. *)

val served : t -> int
(** Jobs completed since the pool started. *)

val join : t -> unit
(** Wait for every worker to exit.  Only returns promptly after the
    queue has been closed; in-flight jobs run to completion (and their
    replies reach [complete]) — the drain half of graceful shutdown. *)
