module Json = Eba_util.Json

type error_code = Bad_request | Unknown_verb | Busy | Shutting_down | Internal

let code_to_string = function
  | Bad_request -> "bad-request"
  | Unknown_verb -> "unknown-verb"
  | Busy -> "busy"
  | Shutting_down -> "shutting-down"
  | Internal -> "internal"

let code_of_string = function
  | "bad-request" -> Some Bad_request
  | "unknown-verb" -> Some Unknown_verb
  | "busy" -> Some Busy
  | "shutting-down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

type request = {
  req_id : Json.t;
  verb : string;
  params : Json.t;
  want_progress : bool;
}

let mem j key =
  match j with Json.Obj fields -> List.assoc_opt key fields | _ -> None

let request_of_json j =
  match j with
  | Json.Obj _ -> (
      let req_id = Option.value (mem j "id") ~default:Json.Null in
      match mem j "progress" with
      | Some (Json.Bool _) | None -> (
          let want_progress =
            match mem j "progress" with Some (Json.Bool b) -> b | _ -> false
          in
          match mem j "verb" with
          | Some (Json.String verb) -> (
              match mem j "params" with
              | None -> Ok { req_id; verb; params = Json.Obj []; want_progress }
              | Some (Json.Obj _ as params) ->
                  Ok { req_id; verb; params; want_progress }
              | Some _ -> Error "\"params\" must be an object")
          | Some _ -> Error "\"verb\" must be a string"
          | None -> Error "missing \"verb\"")
      | Some _ -> Error "\"progress\" must be a boolean")
  | _ -> Error "request frame must be a JSON object"

let request ?(id = Json.Null) ?(progress = false) ~verb ?(params = []) () =
  Json.Obj
    (("id", id) :: ("verb", Json.String verb)
    :: ("params", Json.Obj params)
    :: (if progress then [ ("progress", Json.Bool true) ] else []))

let ok ~id result =
  Json.Obj [ ("id", id); ("status", Json.String "ok"); ("result", result) ]

let busy ~id ~depth ~cap =
  Json.Obj
    [
      ("id", id);
      ("status", Json.String "busy");
      ( "error",
        Json.Obj
          [
            ("code", Json.String (code_to_string Busy));
            ( "message",
              Json.String
                (Printf.sprintf
                   "request queue saturated (%d of %d); retry later" depth cap)
            );
            ("queue_depth", Json.Int depth);
            ("queue_cap", Json.Int cap);
          ] );
    ]

let error ~id code message =
  Json.Obj
    [
      ("id", id);
      ("status", Json.String "error");
      ( "error",
        Json.Obj
          [
            ("code", Json.String (code_to_string code));
            ("message", Json.String message);
          ] );
    ]

let cancelled ~id = Json.Obj [ ("id", id); ("status", Json.String "cancelled") ]

let progress ~id ~done_ ~total =
  Json.Obj
    [
      ("id", id);
      ("status", Json.String "progress");
      ("done", Json.Int done_);
      ("total", Json.Int total);
    ]

type reply =
  | Ok_result of Json.t
  | Busy_reply of { depth : int; cap : int }
  | Error_reply of { code : error_code; message : string }
  | Cancelled_reply
  | Progress_frame of { p_done : int; p_total : int }

let reply_of_json j =
  let id = Option.value (mem j "id") ~default:Json.Null in
  match mem j "status" with
  | Some (Json.String "ok") -> (
      match mem j "result" with
      | Some r -> Ok (id, Ok_result r)
      | None -> Error "ok response without \"result\"")
  | Some (Json.String "cancelled") -> Ok (id, Cancelled_reply)
  | Some (Json.String "progress") -> (
      match (mem j "done", mem j "total") with
      | Some (Json.Int p_done), Some (Json.Int p_total) ->
          Ok (id, Progress_frame { p_done; p_total })
      | _ -> Error "progress frame without integer \"done\"/\"total\"")
  | Some (Json.String ("busy" | "error" as status)) -> (
      match mem j "error" with
      | Some e -> (
          let message =
            match mem e "message" with Some (Json.String m) -> m | _ -> ""
          in
          if status = "busy" then
            let geti k =
              match mem e k with Some (Json.Int i) -> i | _ -> -1
            in
            Ok (id, Busy_reply { depth = geti "queue_depth"; cap = geti "queue_cap" })
          else
            match mem e "code" with
            | Some (Json.String c) -> (
                match code_of_string c with
                | Some code -> Ok (id, Error_reply { code; message })
                | None -> Error (Printf.sprintf "unknown error code %S" c))
            | _ -> Error "error response without a code")
      | None -> Error "error response without \"error\"")
  | Some (Json.String other) -> Error (Printf.sprintf "unknown status %S" other)
  | _ -> Error "response frame without a status"

(* --- param accessors --- *)

let wrong key expected = Error (Printf.sprintf "%S must be %s" key expected)

let get_int ?default params key =
  match mem params key with
  | Some (Json.Int i) -> Ok i
  | Some _ -> wrong key "an integer"
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing %S" key))

let get_int_opt params key =
  match mem params key with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> wrong key "an integer"

let get_float ?default params key =
  match mem params key with
  | Some (Json.Float x) -> Ok x
  | Some (Json.Int i) -> Ok (float_of_int i)
  | Some _ -> wrong key "a number"
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing %S" key))

let get_float_opt params key =
  match mem params key with
  | None | Some Json.Null -> Ok None
  | Some (Json.Float x) -> Ok (Some x)
  | Some (Json.Int i) -> Ok (Some (float_of_int i))
  | Some _ -> wrong key "a number"

let get_string ?default params key =
  match mem params key with
  | Some (Json.String s) -> Ok s
  | Some _ -> wrong key "a string"
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing %S" key))

let get_string_opt params key =
  match mem params key with
  | None | Some Json.Null -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> wrong key "a string"

let get_bool ?default params key =
  match mem params key with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> wrong key "a boolean"
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing %S" key))
