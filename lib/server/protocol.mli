(** The request/response envelope of the agreement service.

    A {b request} frame carries one JSON object:

    {v
      {"id": <any value, echoed back>, "verb": "<verb>", "params": {...},
       "progress": <bool, optional>}
    v}

    [id] is optional (defaults to [null]) and opaque — clients that
    pipeline several requests on one connection use it to match answers.
    [params] is optional and defaults to [{}]; its schema is per-verb
    ({!Spec}).  [progress] (default [false]) opts this request into
    streaming progress frames; it lives in the envelope, not in
    [params], so per-verb parameter schemas — and the byte-identity of
    answers to progress-free requests — are untouched.

    A {b response} frame carries one JSON object in one of five shapes,
    discriminated by ["status"]:

    {v
      {"id": ..., "status": "ok",   "result": <verb-specific JSON>}
      {"id": ..., "status": "busy", "error": {"code": "busy",
        "message": ..., "queue_depth": D, "queue_cap": C}}
      {"id": ..., "status": "error", "error": {"code": <code>,
        "message": ...}}
      {"id": ..., "status": "cancelled"}
      {"id": ..., "status": "progress", "done": K_DONE, "total": K}
    v}

    [busy] is the typed backpressure reply: the bounded request queue was
    full when the request arrived.  The connection stays open and the
    client may retry; nothing was executed.  Error codes are closed
    ({!error_code}): [bad-request] (unparseable frame or params),
    [unknown-verb], [busy], [shutting-down] (the daemon is draining and
    will not start new work), [internal] (handler raised).

    [cancelled] is the terminal answer to a request aborted by the
    [cancel] verb — the work stopped at a run/row boundary and no result
    exists.  [progress] frames are {e interim}: zero or more may precede
    a request's terminal reply (only for requests that opted in), each
    carrying the cumulative count of finished runs out of the total.
    Every other status is terminal — exactly one per request. *)

module Json = Eba_util.Json

type error_code = Bad_request | Unknown_verb | Busy | Shutting_down | Internal

val code_to_string : error_code -> string
val code_of_string : string -> error_code option

type request = {
  req_id : Json.t;  (** echoed verbatim in the response; [Null] if absent *)
  verb : string;
  params : Json.t;  (** always an object; [{}] if absent *)
  want_progress : bool;  (** the envelope's ["progress"]; [false] if absent *)
}

val request_of_json : Json.t -> (request, string) result
(** Rejects non-object frames, a missing or non-string ["verb"], a
    non-object ["params"], and a non-boolean ["progress"]. *)

val request :
  ?id:Json.t ->
  ?progress:bool ->
  verb:string ->
  ?params:(string * Json.t) list ->
  unit ->
  Json.t
(** Client-side constructor for the request envelope.  [progress]
    defaults to [false], in which case the field is omitted entirely —
    a progress-free request is byte-identical to one built before the
    field existed. *)

val ok : id:Json.t -> Json.t -> Json.t
val busy : id:Json.t -> depth:int -> cap:int -> Json.t
val error : id:Json.t -> error_code -> string -> Json.t

val cancelled : id:Json.t -> Json.t
(** The terminal reply to a request aborted by the [cancel] verb. *)

val progress : id:Json.t -> done_:int -> total:int -> Json.t
(** An interim progress frame: [done_] of [total] runs finished. *)

(** Reply views, for clients and tests. *)
type reply =
  | Ok_result of Json.t
  | Busy_reply of { depth : int; cap : int }
  | Error_reply of { code : error_code; message : string }
  | Cancelled_reply
  | Progress_frame of { p_done : int; p_total : int }
      (** interim — more frames follow on the same request id *)

val reply_of_json : Json.t -> (Json.t * reply, string) result
(** [(id, reply)] of a response frame. *)

(** {1 Param accessors}

    Small total accessors the per-verb decoders are written with; each
    returns [Error] naming the field on a type mismatch, and [default]
    when the field is absent. *)

val mem : Json.t -> string -> Json.t option
val get_int : ?default:int -> Json.t -> string -> (int, string) result
val get_int_opt : Json.t -> string -> (int option, string) result
val get_float : ?default:float -> Json.t -> string -> (float, string) result
val get_float_opt : Json.t -> string -> (float option, string) result
val get_string : ?default:string -> Json.t -> string -> (string, string) result
val get_string_opt : Json.t -> string -> (string option, string) result
val get_bool : ?default:bool -> Json.t -> string -> (bool, string) result
