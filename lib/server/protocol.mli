(** The request/response envelope of the agreement service.

    A {b request} frame carries one JSON object:

    {v
      {"id": <any value, echoed back>, "verb": "<verb>", "params": {...}}
    v}

    [id] is optional (defaults to [null]) and opaque — clients that
    pipeline several requests on one connection use it to match answers.
    [params] is optional and defaults to [{}]; its schema is per-verb
    ({!Spec}).

    A {b response} frame carries one JSON object in one of three shapes,
    discriminated by ["status"]:

    {v
      {"id": ..., "status": "ok",   "result": <verb-specific JSON>}
      {"id": ..., "status": "busy", "error": {"code": "busy",
        "message": ..., "queue_depth": D, "queue_cap": C}}
      {"id": ..., "status": "error", "error": {"code": <code>,
        "message": ...}}
    v}

    [busy] is the typed backpressure reply: the bounded request queue was
    full when the request arrived.  The connection stays open and the
    client may retry; nothing was executed.  Error codes are closed
    ({!error_code}): [bad-request] (unparseable frame or params),
    [unknown-verb], [busy], [shutting-down] (the daemon is draining and
    will not start new work), [internal] (handler raised). *)

module Json = Eba_util.Json

type error_code = Bad_request | Unknown_verb | Busy | Shutting_down | Internal

val code_to_string : error_code -> string
val code_of_string : string -> error_code option

type request = {
  req_id : Json.t;  (** echoed verbatim in the response; [Null] if absent *)
  verb : string;
  params : Json.t;  (** always an object; [{}] if absent *)
}

val request_of_json : Json.t -> (request, string) result
(** Rejects non-object frames, a missing or non-string ["verb"], and a
    non-object ["params"]. *)

val request : ?id:Json.t -> verb:string -> ?params:(string * Json.t) list -> unit -> Json.t
(** Client-side constructor for the request envelope. *)

val ok : id:Json.t -> Json.t -> Json.t
val busy : id:Json.t -> depth:int -> cap:int -> Json.t
val error : id:Json.t -> error_code -> string -> Json.t

(** Reply views, for clients and tests. *)
type reply =
  | Ok_result of Json.t
  | Busy_reply of { depth : int; cap : int }
  | Error_reply of { code : error_code; message : string }

val reply_of_json : Json.t -> (Json.t * reply, string) result
(** [(id, reply)] of a response frame. *)

(** {1 Param accessors}

    Small total accessors the per-verb decoders are written with; each
    returns [Error] naming the field on a type mismatch, and [default]
    when the field is absent. *)

val mem : Json.t -> string -> Json.t option
val get_int : ?default:int -> Json.t -> string -> (int, string) result
val get_int_opt : Json.t -> string -> (int option, string) result
val get_float : ?default:float -> Json.t -> string -> (float, string) result
val get_float_opt : Json.t -> string -> (float option, string) result
val get_string : ?default:string -> Json.t -> string -> (string, string) result
val get_string_opt : Json.t -> string -> (string option, string) result
val get_bool : ?default:bool -> Json.t -> string -> (bool, string) result
