module Json = Eba_util.Json
module P = Protocol
module Params = Eba_sim.Params

let ( let* ) = Result.bind

let verbs = [ "netsim-sweep"; "probcheck"; "knowledge-query" ]

type ctx = {
  cancel : Eba_util.Cancel.t;
  progress : (done_:int -> total:int -> unit) option;
}

let no_ctx = { cancel = Eba_util.Cancel.create (); progress = None }

(* One cache for the whole process: every worker domain of every daemon
   instance shares it, which is the point — repeat queries against the
   same universe reuse one built model. *)
let model_cache = Model_cache.create ~capacity:8 ()

(* --- netsim-sweep --- *)

let netsim params =
  let* spec = Spec.of_json params in
  let* resolved = Spec.resolve spec in
  Ok
    (fun ctx ->
      Ok
        (Eba_net.Net_stats.summary_json
           (Spec.run ~cancel:ctx.cancel ?progress:ctx.progress resolved)))

(* --- probcheck --- *)

let probcheck params =
  let* spec = Spec.Probcheck.of_json params in
  (* [Report.make] IS the computation (the exact Markov analysis), so it
     runs in the worker; its validation failures come back as the
     thunk's [Error]. *)
  Ok
    (fun ctx ->
      Result.map Eba_prob.Report.to_json
        (Spec.Probcheck.report ~cancel:ctx.cancel spec))

(* --- knowledge-query --- *)

(* The semantic layer's named protocols, exactly the CLI [check]
   command's table. *)
let kb_protocol_names =
  [ "never"; "p0"; "p1"; "p0opt"; "f-lambda-2"; "chain0"; "f-star" ]

let pair_of_name env = function
  | "never" ->
      Eba_core.Kb_protocol.never_decide (Eba_epistemic.Formula.model env)
  | "p0" -> Eba_core.Zoo.p0 env
  | "p1" -> Eba_core.Zoo.p1 env
  | "p0opt" | "f-lambda-2" -> Eba_core.Zoo.f_lambda_2 env
  | "chain0" -> Eba_core.Zoo.chain_zero env
  | "f-star" -> Eba_core.Zoo.f_star env
  | other -> invalid_arg ("unknown protocol " ^ other)

let spec_report_json (r : Eba_core.Spec.report) =
  Json.Obj
    [
      ("weak_agreement", Json.Bool r.weak_agreement);
      ("agreement", Json.Bool r.agreement);
      ("weak_validity", Json.Bool r.weak_validity);
      ("validity", Json.Bool r.validity);
      ("decision", Json.Bool r.decision);
      ("simultaneity", Json.Bool r.simultaneity);
      ("unambiguous", Json.Bool r.unambiguous);
      ( "max_decision_time",
        match r.max_decision_time with
        | Some t -> Json.Int t
        | None -> Json.Null );
    ]

let trying f = match f () with v -> Ok v | exception Invalid_argument m -> Error m

let knowledge params =
  let* () =
    Spec.check_keys
      ~allowed:[ "n"; "t"; "horizon"; "mode"; "protocol"; "query"; "jobs" ]
      params
  in
  let* n = P.get_int ~default:3 params "n" in
  let* t = P.get_int ~default:1 params "t" in
  let* horizon = P.get_int ~default:3 params "horizon" in
  let* mode_s = P.get_string ~default:"crash" params "mode" in
  let* mode =
    match Spec.mode_of_string mode_s with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "unknown mode %S" mode_s)
  in
  let* query = P.get_string ~default:"spec" params "query" in
  let* jobs = P.get_int_opt params "jobs" in
  let* model_params = trying (fun () -> Params.make ~n ~t ~horizon ~mode) in
  let identity name =
    [
      ("protocol", Json.String name);
      ("query", Json.String query);
      ("n", Json.Int n);
      ("t", Json.Int t);
      ("horizon", Json.Int horizon);
      ("mode", Json.String mode_s);
    ]
  in
  match query with
  | "spec" ->
      (* The CLI [check] command's pipeline: semantic decisions of the
         named knowledge-based protocol, checked against the EBA spec
         and the Theorem 5.3 optimality characterization. *)
      let* name = P.get_string ~default:"f-lambda-2" params "protocol" in
      let* () =
        if List.mem name kb_protocol_names then Ok ()
        else
          Error
            (Printf.sprintf "unknown protocol %S (have: %s)" name
               (String.concat ", " kb_protocol_names))
      in
      Ok
        (fun ctx ->
          trying (fun () ->
              Eba_util.Cancel.check ctx.cancel;
              (* the hot path: repeat queries against the same universe
                 reuse the built model; [jobs] (previously parsed and
                 dropped) now reaches the builder on a cold miss *)
              let model =
                Model_cache.find_or_build model_cache model_params
                  (fun p -> Eba_fip.Model.build ?jobs p)
              in
              let env = Eba_epistemic.Formula.env model in
              let pair = pair_of_name env name in
              let d = Eba_core.Kb_protocol.decide model pair in
              let report = Eba_core.Spec.check d in
              Json.Obj
                (identity name
                @ [
                    ("eba", Json.Bool (Eba_core.Spec.is_eba report));
                    ( "nta",
                      Json.Bool
                        (Eba_core.Spec.is_nontrivial_agreement report) );
                    ( "optimal",
                      Json.Bool (Eba_core.Characterize.is_optimal env d) );
                    ("report", spec_report_json report);
                  ])))
  | "exhaustive" ->
      (* Every configuration x every pattern through an operational
         protocol — [Stats.exhaustive]'s summary, same JSON as the
         benchmark artifact rows. *)
      let* name = P.get_string ~default:"floodset" params "protocol" in
      let* select =
        match List.assoc_opt name Spec.protocols with
        | Some s -> Ok s
        | None ->
            Error
              (Printf.sprintf "unknown protocol %S (have: %s)" name
                 (String.concat ", " Spec.protocol_names))
      in
      let* protocol = trying (fun () -> select model_params) in
      Ok
        (fun ctx ->
          trying (fun () ->
              let summary =
                Eba_protocols.Stats.exhaustive ?jobs ~cancel:ctx.cancel
                  protocol model_params
              in
              Json.Obj
                (identity name
                @ [ ("summary", Eba_protocols.Stats.summary_json summary) ])))
  | other ->
      Error
        (Printf.sprintf "unknown query %S (have: spec, exhaustive)" other)

let prepare ~verb ~params =
  let wrap = function
    | Ok thunk -> Ok thunk
    | Error msg -> Error (`Bad_request msg)
  in
  match verb with
  | "netsim-sweep" -> wrap (netsim params)
  | "probcheck" -> wrap (probcheck params)
  | "knowledge-query" -> wrap (knowledge params)
  | _ -> Error `Unknown_verb
