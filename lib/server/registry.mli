(** Verb registry: maps the service's compute verbs onto the existing
    engines.

    Decoding and validation run in the event loop ({!prepare}) so a bad
    request is refused {e before} it occupies a queue slot; the returned
    thunk is the expensive part and runs in a worker.  Each thunk is a
    pure function of the request params, so replies are bit-identical
    regardless of which worker runs them or in what order — the served
    [netsim-sweep] and [probcheck] results are byte-equal to the batch
    CLI's JSON for the same identity because both sides execute the same
    {!Spec} resolution.

    Admin verbs ([status], [shutdown]) are not here: they are answered
    inline by the daemon, which owns the state they report. *)

module Json = Eba_util.Json

val verbs : string list
(** The compute verbs: [netsim-sweep], [probcheck], [knowledge-query]. *)

val prepare :
  verb:string ->
  params:Json.t ->
  ( unit -> (Json.t, string) result,
    [ `Unknown_verb | `Bad_request of string ] )
  result
(** [Ok thunk]: params decoded (and, where cheap, resolved); running
    [thunk ()] in any domain yields the verb's result JSON.  A thunk
    [Error] is a validation failure only detectable at execution time
    (e.g. probcheck's exact analysis rejecting its timing parameters) —
    the daemon renders it as a [bad-request] reply.  Thunks never
    raise by contract; the pool still guards with a typed [internal]
    reply. *)
