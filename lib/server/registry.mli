(** Verb registry: maps the service's compute verbs onto the existing
    engines.

    Decoding and validation run in the event loop ({!prepare}) so a bad
    request is refused {e before} it occupies a queue slot; the returned
    thunk is the expensive part and runs in a worker.  Each thunk is a
    pure function of the request params, so replies are bit-identical
    regardless of which worker runs them or in what order — the served
    [netsim-sweep] and [probcheck] results are byte-equal to the batch
    CLI's JSON for the same identity because both sides execute the same
    {!Spec} resolution.

    Admin verbs ([status], [shutdown]) are not here: they are answered
    inline by the daemon, which owns the state they report. *)

module Json = Eba_util.Json

val verbs : string list
(** The compute verbs: [netsim-sweep], [probcheck], [knowledge-query]. *)

(** What the daemon threads into a running thunk: the request's
    cancellation token (polled by the engines at run/row boundaries; a
    fired token surfaces as {!Eba_util.Cancel.Cancelled} out of the
    thunk) and, when the request opted in, a progress sink the sweep
    calls with cumulative completed-run counts. *)
type ctx = {
  cancel : Eba_util.Cancel.t;
  progress : (done_:int -> total:int -> unit) option;
}

val no_ctx : ctx
(** A fresh never-cancelled token and no progress sink — for callers
    (tests, ad-hoc tools) that just want the thunk's result. *)

val model_cache : Model_cache.t
(** The process-wide knowledge-model cache every [knowledge-query]
    [spec] thunk goes through (capacity 8). *)

val prepare :
  verb:string ->
  params:Json.t ->
  ( ctx -> (Json.t, string) result,
    [ `Unknown_verb | `Bad_request of string ] )
  result
(** [Ok thunk]: params decoded (and, where cheap, resolved); running
    [thunk ctx] in any domain yields the verb's result JSON.  A thunk
    [Error] is a validation failure only detectable at execution time
    (e.g. probcheck's exact analysis rejecting its timing parameters) —
    the daemon renders it as a [bad-request] reply.  Thunks raise only
    {!Eba_util.Cancel.Cancelled} by contract (the pool renders it as the
    typed [cancelled] reply, and still guards everything else with a
    typed [internal] reply). *)
