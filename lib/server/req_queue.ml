type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~cap =
  if cap < 1 then invalid_arg "Req_queue.create: cap must be >= 1";
  {
    capacity = cap;
    items = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let cap q = q.capacity

let locked q f =
  Mutex.lock q.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.lock) f

let depth q = locked q (fun () -> Queue.length q.items)

let try_push q x =
  locked q (fun () ->
      if q.closed then `Closed
      else
        let d = Queue.length q.items in
        if d >= q.capacity then `Full d
        else begin
          Queue.push x q.items;
          Condition.signal q.nonempty;
          `Ok
        end)

let pop q =
  locked q (fun () ->
      let rec wait () =
        if not (Queue.is_empty q.items) then Some (Queue.pop q.items)
        else if q.closed then None
        else begin
          Condition.wait q.nonempty q.lock;
          wait ()
        end
      in
      wait ())

let remove q pred =
  locked q (fun () ->
      let kept = Queue.create () and removed = ref [] in
      Queue.iter
        (fun x -> if pred x then removed := x :: !removed else Queue.push x kept)
        q.items;
      Queue.clear q.items;
      Queue.transfer kept q.items;
      List.rev !removed)

let close q =
  locked q (fun () ->
      q.closed <- true;
      Condition.broadcast q.nonempty;
      let rec drain acc =
        if Queue.is_empty q.items then List.rev acc
        else drain (Queue.pop q.items :: acc)
      in
      drain [])
