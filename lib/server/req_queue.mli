(** The daemon's bounded request queue.

    One producer (the event loop) and any number of consumer domains (the
    worker pool).  The bound is the backpressure contract: {!try_push} on
    a full queue refuses instantly — it never blocks the event loop — and
    the daemon turns that refusal into the typed [busy] reply.  {!pop}
    blocks the calling worker until an item or {!close}. *)

type 'a t

val create : cap:int -> 'a t
(** [cap >= 1], else [Invalid_argument]. *)

val cap : 'a t -> int

val depth : 'a t -> int
(** Items queued and not yet popped (a racy snapshot, exact when only the
    event loop is pushing). *)

val try_push : 'a t -> 'a -> [ `Ok | `Full of int | `Closed ]
(** [`Full depth] carries the depth observed at refusal ([= cap]). *)

val pop : 'a t -> 'a option
(** Blocks; [None] once the queue is closed {e and} drained — the
    consumer's signal to exit. *)

val remove : 'a t -> ('a -> bool) -> 'a list
(** Atomically extract every queued item matching the predicate (in push
    order), preserving the relative order of the rest.  The cancellation
    fast path: a queued-but-unstarted request leaves the queue without a
    worker ever seeing it. *)

val close : 'a t -> 'a list
(** Refuse further pushes, wake all blocked consumers, and hand back the
    items nobody popped (in push order) so the caller can answer them
    with [shutting-down] instead of dropping them silently. *)
