module Json = Eba_util.Json
module Params = Eba_sim.Params
module Net = Eba_net
module P = Protocol

let ( let* ) = Result.bind

type mux = Mux_off | Mux_auto | Mux_live of int

type t = {
  protocol : string;
  compact : bool;
  n : int;
  t_failures : int;
  horizon : int;
  mode : Params.mode;
  latency : Net.Link.latency;
  loss : float;
  seed : int;
  runs : int option;
  mux : mux;
  rto : float option;
  round_duration : float option;
  retries : int option;
  omit_prob : float;
  partitions : int;
  partition_span : float option;
  jobs : int option;
}

let default =
  {
    protocol = "floodset";
    compact = false;
    n = 3;
    t_failures = 1;
    horizon = 3;
    mode = Params.Crash;
    latency = Net.Link.Const 1.0;
    loss = 0.0;
    seed = 1;
    runs = None;
    mux = Mux_off;
    rto = None;
    round_duration = None;
    retries = None;
    omit_prob = 0.5;
    partitions = 0;
    partition_span = None;
    jobs = None;
  }

(* The same selector tables [eba netsim] is built on: the set-carrying
   protocols pick their word-backed instance at small n and the limb-array
   one beyond, so every protocol runs at any n. *)
let protocols :
    (string * (Params.t -> (module Eba_protocols.Protocol_intf.PROTOCOL))) list
    =
  [
    ("p0", fun _ -> (module Eba_protocols.P0.P0));
    ("p1", fun _ -> (module Eba_protocols.P0.P1));
    ("p0opt", Eba_protocols.P0opt.for_params);
    ("p0opt+", Eba_protocols.P0opt_plus.for_params);
    ("floodset", fun _ -> (module Eba_protocols.Floodset));
    ("chain0", Eba_protocols.Chain0.for_params);
  ]

let compact_protocols :
    (string * (Params.t -> (module Eba_protocols.Protocol_intf.PROTOCOL))) list
    =
  [
    ("p0opt", Eba_protocols.P0opt_delta.for_params);
    ("p0opt+", Eba_protocols.P0opt_plus_delta.for_params);
    ("chain0", Eba_protocols.Chain0_cert.for_params);
  ]

let protocol_names = List.map fst protocols
let compact_protocol_names = List.map fst compact_protocols

type resolved = {
  r_spec : t;
  r_protocol : (module Eba_protocols.Protocol_intf.PROTOCOL);
  r_params : Params.t;
  r_topology : Net.Topology.t;
  r_sync : Net.Sync.t;
  r_dynamic : Net.Inject.dynamic;
  r_runs : int;
  r_mux : int option;
}

(* Raising constructors ([Params.make], [Link.make], [Sync.make], ...)
   become typed errors here: a daemon must answer a bad request, not die
   on it. *)
let trying f = match f () with v -> Ok v | exception Invalid_argument m -> Error m

let resolve spec =
  let* r_params =
    trying (fun () ->
        Params.make ~n:spec.n ~t:spec.t_failures ~horizon:spec.horizon
          ~mode:spec.mode)
  in
  let* select =
    if not spec.compact then
      match List.assoc_opt spec.protocol protocols with
      | Some s -> Ok s
      | None ->
          Error
            (Printf.sprintf "unknown protocol %S (have: %s)" spec.protocol
               (String.concat ", " protocol_names))
    else
      match List.assoc_opt spec.protocol compact_protocols with
      | Some s -> Ok s
      | None ->
          Error
            (Printf.sprintf
               "compact: no bounded-bandwidth variant of %s (have: %s)"
               spec.protocol
               (String.concat ", " compact_protocol_names))
  in
  let* r_protocol = trying (fun () -> select r_params) in
  let* r_topology =
    trying (fun () ->
        Net.Topology.make ~n:spec.n
          ~link:(Net.Link.make ~latency:spec.latency ~loss:spec.loss))
  in
  let dflt = Net.Sync.default_for r_topology in
  let rto = Option.value spec.rto ~default:dflt.Net.Sync.rto in
  let* r_sync =
    trying (fun () ->
        Net.Sync.make
          ~round_duration:
            (Option.value spec.round_duration ~default:(8.0 *. rto))
          ~rto
          ~max_retries:
            (Option.value spec.retries ~default:dflt.Net.Sync.max_retries))
  in
  let* r_dynamic =
    trying (fun () ->
        Net.Inject.dynamic ~omit_prob:spec.omit_prob
          ~partitions:spec.partitions
          ~partition_span:
            (Option.value spec.partition_span ~default:(2.0 *. rto))
          ~max_faulty:spec.t_failures ())
  in
  let r_runs =
    match (spec.runs, spec.mux) with
    | Some r, _ -> r
    | None, Mux_live live -> live
    | None, (Mux_off | Mux_auto) -> 100
  in
  let* () = if r_runs >= 1 then Ok () else Error "runs must be >= 1" in
  let* r_mux =
    match spec.mux with
    | Mux_off -> Ok None
    | Mux_auto -> Ok (Some (Net.Mux.auto_live ~runs:r_runs))
    | Mux_live k ->
        if k >= 1 then Ok (Some k) else Error "mux wave size must be >= 1"
  in
  Ok { r_spec = spec; r_protocol; r_params; r_topology; r_sync; r_dynamic;
       r_runs; r_mux }

let run ?cancel ?progress r =
  Net.Netsim.sweep ?jobs:r.r_spec.jobs ?mux:r.r_mux ?cancel ?progress
    r.r_protocol r.r_params ~sync:r.r_sync ~topology:r.r_topology
    ~dynamic:r.r_dynamic ~seed:r.r_spec.seed ~runs:r.r_runs

(* --- JSON (de)serialization of the spec --- *)

let mode_to_string = function
  | Params.Crash -> "crash"
  | Params.Omission -> "omission"
  | Params.General_omission -> "general-omission"

let mode_of_string = function
  | "crash" -> Some Params.Crash
  | "omission" -> Some Params.Omission
  | "general-omission" -> Some Params.General_omission
  | _ -> None

let check_keys ~allowed params =
  match params with
  | Json.Obj fields ->
      let rec go = function
        | [] -> Ok ()
        | (k, _) :: rest ->
            if List.mem k allowed then go rest
            else
              Error
                (Printf.sprintf "unknown field %S (allowed: %s)" k
                   (String.concat ", " allowed))
      in
      go fields
  | _ -> Error "params must be an object"

let netsim_keys =
  [
    "protocol"; "compact"; "n"; "t"; "horizon"; "mode"; "latency"; "loss";
    "seed"; "runs"; "mux"; "rto"; "round_duration"; "retries"; "omit_prob";
    "partitions"; "partition_span"; "jobs";
  ]

let get_latency ?(default = default.latency) params key =
  match P.mem params key with
  | None | Some Json.Null -> Ok default
  | Some (Json.String s) -> (
      match Net.Link.latency_of_string s with
      | lat -> Ok lat
      | exception Invalid_argument m -> Error m)
  | Some _ -> Error (Printf.sprintf "%S must be a latency spec string" key)

let get_mux params =
  match P.mem params "mux" with
  | None | Some Json.Null -> Ok Mux_off
  | Some (Json.String "off") -> Ok Mux_off
  | Some (Json.String "auto") -> Ok Mux_auto
  | Some (Json.Int k) -> Ok (Mux_live k)
  | Some _ -> Error "\"mux\" must be \"off\", \"auto\" or a wave size"

let of_json params =
  let d = default in
  let* () = check_keys ~allowed:netsim_keys params in
  let* protocol = P.get_string ~default:d.protocol params "protocol" in
  let* compact = P.get_bool ~default:d.compact params "compact" in
  let* n = P.get_int ~default:d.n params "n" in
  let* t_failures = P.get_int ~default:d.t_failures params "t" in
  let* horizon = P.get_int ~default:d.horizon params "horizon" in
  let* mode_s = P.get_string ~default:(mode_to_string d.mode) params "mode" in
  let* mode =
    match mode_of_string mode_s with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "unknown mode %S" mode_s)
  in
  let* latency = get_latency params "latency" in
  let* loss = P.get_float ~default:d.loss params "loss" in
  let* seed = P.get_int ~default:d.seed params "seed" in
  let* runs = P.get_int_opt params "runs" in
  let* mux = get_mux params in
  let* rto = P.get_float_opt params "rto" in
  let* round_duration = P.get_float_opt params "round_duration" in
  let* retries = P.get_int_opt params "retries" in
  let* omit_prob = P.get_float ~default:d.omit_prob params "omit_prob" in
  let* partitions = P.get_int ~default:d.partitions params "partitions" in
  let* partition_span = P.get_float_opt params "partition_span" in
  let* jobs = P.get_int_opt params "jobs" in
  Ok
    {
      protocol; compact; n; t_failures; horizon; mode; latency; loss; seed;
      runs; mux; rto; round_duration; retries; omit_prob; partitions;
      partition_span; jobs;
    }

let to_params spec =
  let d = default in
  let add cond field rest = if cond then field :: rest else rest in
  let opt_float key v rest =
    match v with None -> rest | Some x -> (key, Json.Float x) :: rest
  in
  let opt_int key v rest =
    match v with None -> rest | Some i -> (key, Json.Int i) :: rest
  in
  []
  |> opt_int "jobs" spec.jobs
  |> opt_float "partition_span" spec.partition_span
  |> add (spec.partitions <> d.partitions)
       ("partitions", Json.Int spec.partitions)
  |> add (spec.omit_prob <> d.omit_prob) ("omit_prob", Json.Float spec.omit_prob)
  |> opt_int "retries" spec.retries
  |> opt_float "round_duration" spec.round_duration
  |> opt_float "rto" spec.rto
  |> (fun rest ->
       match spec.mux with
       | Mux_off -> rest
       | Mux_auto -> ("mux", Json.String "auto") :: rest
       | Mux_live k -> ("mux", Json.Int k) :: rest)
  |> opt_int "runs" spec.runs
  |> add (spec.seed <> d.seed) ("seed", Json.Int spec.seed)
  |> add (spec.loss <> d.loss) ("loss", Json.Float spec.loss)
  |> add (spec.latency <> d.latency)
       ("latency", Json.String (Net.Link.latency_to_string spec.latency))
  |> add (spec.mode <> d.mode) ("mode", Json.String (mode_to_string spec.mode))
  |> add (spec.horizon <> d.horizon) ("horizon", Json.Int spec.horizon)
  |> add (spec.t_failures <> d.t_failures) ("t", Json.Int spec.t_failures)
  |> add (spec.n <> d.n) ("n", Json.Int spec.n)
  |> add spec.compact ("compact", Json.Bool true)
  |> add (spec.protocol <> d.protocol)
       ("protocol", Json.String spec.protocol)

module Probcheck = struct
  type t = {
    n : int;
    t_failures : int;
    rounds : int option;
    latency : Net.Link.latency;
    loss : string;
    rto : float option;
    round_duration : float option;
    retries : int option;
  }

  let default =
    {
      n = 3;
      t_failures = 1;
      rounds = None;
      latency = Net.Link.Const 1.0;
      loss = "0";
      rto = None;
      round_duration = None;
      retries = None;
    }

  let report ?cancel spec =
    let* loss =
      match Eba_prob.Q.of_decimal_string spec.loss with
      | q -> Ok q
      | exception Invalid_argument m -> Error m
    in
    let* topology =
      trying (fun () ->
          Net.Topology.make ~n:spec.n
            ~link:(Net.Link.make ~latency:spec.latency ~loss:0.0))
    in
    let dflt = Net.Sync.default_for topology in
    let rto = Option.value spec.rto ~default:dflt.Net.Sync.rto in
    trying (fun () ->
        let sync =
          Net.Sync.make
            ~round_duration:
              (Option.value spec.round_duration ~default:(8.0 *. rto))
            ~rto
            ~max_retries:
              (Option.value spec.retries ~default:dflt.Net.Sync.max_retries)
        in
        Eba_prob.Report.make ?cancel ~n:spec.n ~t:spec.t_failures
          ~rounds:(Option.value spec.rounds ~default:(spec.t_failures + 1))
          ~loss ~latency:spec.latency ~sync ())

  let keys =
    [ "n"; "t"; "rounds"; "latency"; "loss"; "rto"; "round_duration"; "retries" ]

  let of_json params =
    let d = default in
    let* () = check_keys ~allowed:keys params in
    let* n = P.get_int ~default:d.n params "n" in
    let* t_failures = P.get_int ~default:d.t_failures params "t" in
    let* rounds = P.get_int_opt params "rounds" in
    let* latency = get_latency ~default:d.latency params "latency" in
    let* loss = P.get_string ~default:d.loss params "loss" in
    let* rto = P.get_float_opt params "rto" in
    let* round_duration = P.get_float_opt params "round_duration" in
    let* retries = P.get_int_opt params "retries" in
    Ok { n; t_failures; rounds; latency; loss; rto; round_duration; retries }

  let to_params spec =
    let d = default in
    let add cond field rest = if cond then field :: rest else rest in
    let opt_float key v rest =
      match v with None -> rest | Some x -> (key, Json.Float x) :: rest
    in
    let opt_int key v rest =
      match v with None -> rest | Some i -> (key, Json.Int i) :: rest
    in
    []
    |> opt_int "retries" spec.retries
    |> opt_float "round_duration" spec.round_duration
    |> opt_float "rto" spec.rto
    |> add (spec.loss <> d.loss) ("loss", Json.String spec.loss)
    |> add (spec.latency <> d.latency)
         ("latency", Json.String (Net.Link.latency_to_string spec.latency))
    |> opt_int "rounds" spec.rounds
    |> add (spec.t_failures <> d.t_failures) ("t", Json.Int spec.t_failures)
    |> add (spec.n <> d.n) ("n", Json.Int spec.n)
end
