(** Request specifications for the compute verbs — the {e single} place
    the parameters of a [netsim-sweep] or [probcheck] workload are
    interpreted.

    Both [bin/eba] and the resident daemon build one of these records
    (the CLI from its flags, the daemon from a request's ["params"]
    object) and execute it through {!resolve}/{!run} here, so a served
    answer is bit-identical to the batch CLI's for the same request
    identity {e by construction} — there is no second copy of the
    defaulting logic to drift.  The differential suite pins the identity
    end-to-end over a live socket anyway. *)

module Json = Eba_util.Json
module Params = Eba_sim.Params
module Net = Eba_net

(** Multiplex selection: [Mux_auto] picks the measured-throughput-peak
    wave size ({!Eba_net.Mux.auto_live}); results are bit-identical
    across all three. *)
type mux = Mux_off | Mux_auto | Mux_live of int

type t = {
  protocol : string;
  compact : bool;
  n : int;
  t_failures : int;
  horizon : int;
  mode : Params.mode;
  latency : Net.Link.latency;
  loss : float;
  seed : int;
  runs : int option;  (** [None]: 100, or the explicit mux wave size *)
  mux : mux;
  rto : float option;  (** [None]: derived from the topology's bound *)
  round_duration : float option;  (** [None]: 8 RTOs *)
  retries : int option;  (** [None]: the {!Eba_net.Sync.default_for} budget *)
  omit_prob : float;
  partitions : int;
  partition_span : float option;  (** [None]: 2 RTOs *)
  jobs : int option;  (** engine domains; [None] defers to the process default *)
}

val default : t
(** FloodSet, [n = 3], [t = 1], [horizon = 3], crash mode, unit constant
    latency, no loss, seed 1 — the CLI's flag defaults. *)

val protocol_names : string list
val compact_protocol_names : string list

val protocols :
  (string * (Params.t -> (module Eba_protocols.Protocol_intf.PROTOCOL))) list
(** The operational selector table (protocol name -> module for the run
    parameters), shared with the CLI and the exhaustive knowledge query. *)

val mode_to_string : Params.mode -> string
val mode_of_string : string -> Params.mode option

val check_keys : allowed:string list -> Json.t -> (unit, string) result
(** Reject any field outside [allowed] — a misspelled parameter must not
    silently mean its default. *)

type resolved = {
  r_spec : t;
  r_protocol : (module Eba_protocols.Protocol_intf.PROTOCOL);
  r_params : Params.t;
  r_topology : Net.Topology.t;
  r_sync : Net.Sync.t;
  r_dynamic : Net.Inject.dynamic;
  r_runs : int;
  r_mux : int option;  (** the concrete wave size, [Mux_auto] resolved *)
}

val resolve : t -> (resolved, string) result
(** Validates everything up front (protocol name, compact availability,
    parameter ranges, sync timing) and freezes the derived defaults. *)

val run :
  ?cancel:Eba_util.Cancel.t ->
  ?progress:(done_:int -> total:int -> unit) ->
  resolved ->
  Net.Net_stats.summary
(** {!Eba_net.Netsim.sweep} with the resolved arguments — bit-identical
    for every job count and mux wave size.  [cancel] and [progress] pass
    straight through to the sweep (polled per run or wave); both default
    off, so CLI and daemon answers stay byte-identical whether or not a
    caller opts in. *)

val of_json : Json.t -> (t, string) result
(** Decode a request's ["params"] object; unknown fields are errors
    (a typo must not silently fall back to a default). *)

val to_params : t -> (string * Json.t) list
(** The inverse — the ["params"] fields a client sends.  Omits fields
    still at their default, so requests stay small. *)

(** The [probcheck] verb: exact failure probabilities, computed. *)
module Probcheck : sig
  type t = {
    n : int;
    t_failures : int;
    rounds : int option;  (** [None]: t + 1 *)
    latency : Net.Link.latency;
    loss : string;  (** decimal literal, read exactly ("0.05" = 1/20) *)
    rto : float option;
    round_duration : float option;
    retries : int option;
  }

  val default : t

  val report :
    ?cancel:Eba_util.Cancel.t -> t -> (Eba_prob.Report.t, string) result
  (** The exact Markov analysis ({!Eba_prob.Report.make}); [cancel] is
      polled between its major steps and per landing row. *)

  val of_json : Json.t -> (t, string) result
  val to_params : t -> (string * Json.t) list
end
