type t = Value.t array

let make values = Array.copy values

(* [1 lsl i] silently wraps once [i] reaches the sign bit, so the bit
   encoding is only sound for up to 62 processors (the {!Eba_util.Bitset}
   width); reject anything wider instead of corrupting values. *)
let max_bits = 62

let check_bits_width n =
  if n < 0 || n > max_bits then
    invalid_arg (Printf.sprintf "Config: n=%d outside the bit-packing range [0, %d]" n max_bits)

let of_bits ~n bits =
  check_bits_width n;
  Array.init n (fun i -> if bits land (1 lsl i) <> 0 then Value.One else Value.Zero)

let to_bits c =
  check_bits_width (Array.length c);
  let bits = ref 0 in
  Array.iteri (fun i v -> if Value.equal v Value.One then bits := !bits lor (1 lsl i)) c;
  !bits

let n = Array.length
let value c i = c.(i)
let exists_value c v = Array.exists (Value.equal v) c

let all_equal c =
  let v = c.(0) in
  if Array.for_all (Value.equal v) c then Some v else None

let all ~n =
  List.init (1 lsl n) (fun bits -> of_bits ~n bits)

let constant ~n v = Array.make n v
let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b
let compare a b = Stdlib.compare (Array.length a, to_bits a) (Array.length b, to_bits b)

let pp fmt c =
  Array.iter (fun v -> Value.pp fmt v) c
