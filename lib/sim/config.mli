(** Initial configurations: the vector of initial values, one per
    processor.  A protocol, an initial configuration and a failure pattern
    uniquely determine a run (Section 2.3 of the paper). *)

type t
(** An immutable initial configuration. *)

val make : Value.t array -> t
(** Takes ownership of a copy of the array. *)

val of_bits : n:int -> int -> t
(** [of_bits ~n bits] assigns processor [i] the value [One] iff bit [i] of
    [bits] is set.  Inverse of {!to_bits}.  Raises [Invalid_argument] when
    [n] is negative or exceeds 62, where the encoding would overflow. *)

val to_bits : t -> int
(** Inverse of {!of_bits}; raises [Invalid_argument] for configurations
    wider than 62 processors. *)

val n : t -> int
val value : t -> int -> Value.t

val exists_value : t -> Value.t -> bool
(** The paper's basic facts [∃0] / [∃1]: does some processor hold this
    initial value? *)

val all_equal : t -> Value.t option
(** [Some v] iff every processor starts with [v]. *)

val all : n:int -> t list
(** All [2^n] configurations, in increasing {!to_bits} order. *)

val constant : n:int -> Value.t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
