module Bitset = Eba_util.Bitset

type mode = Crash | Omission | General_omission

type t = { n : int; t_failures : int; horizon : int; mode : mode }

let make ~n ~t ~horizon ~mode =
  if n < 2 then invalid_arg "Params.make: need at least 2 processors";
  if n > 4096 then invalid_arg "Params.make: n is unreasonably large";
  if t < 0 || t >= n then invalid_arg "Params.make: need 0 <= t < n";
  if horizon < 1 then invalid_arg "Params.make: horizon must be >= 1";
  { n; t_failures = t; horizon; mode }

let mode_equal a b = a = b

let pp_mode fmt = function
  | Crash -> Format.pp_print_string fmt "crash"
  | Omission -> Format.pp_print_string fmt "omission"
  | General_omission -> Format.pp_print_string fmt "general-omission"

let pp fmt p =
  Format.fprintf fmt "n=%d t=%d T=%d mode=%a" p.n p.t_failures p.horizon pp_mode
    p.mode

let procs p = List.init p.n Fun.id
let all_procs p = Bitset.full p.n
let times p = List.init (p.horizon + 1) Fun.id
let rounds p = List.init p.horizon (fun k -> k + 1)
