(** Model parameters: system size, resilience bound, failure mode and the
    time horizon of a bounded model. *)

type mode = Crash | Omission | General_omission
(** The paper's two failure modes — crash failures ([Crash]) and sending
    omission failures ([Omission]) — plus the [PT86] general omission mode
    ([General_omission], faulty processors may omit to receive as well as
    to send), which the paper explicitly leaves open and we support as an
    extension. *)

type t = private {
  n : int;  (** number of processors, [>= 2] *)
  t_failures : int;  (** resilience bound [t], [0 <= t < n] *)
  horizon : int;  (** last time of the bounded model; rounds are [1..horizon] *)
  mode : mode;
}

val make : n:int -> t:int -> horizon:int -> mode:mode -> t
(** Validates and builds a parameter record.  Raises [Invalid_argument] on
    nonsensical combinations ([n < 2], [t < 0], [t >= n], [horizon < 1],
    [n > 4096]).

    [n] may exceed [Bitset.max_width]: the network simulator runs the
    scale-safe operational protocols (those whose state does not pack
    processor sets into words) far beyond the enumerable sizes.  Anything
    that needs processor bitsets — {!all_procs}, patterns, universes, the
    model builder — still raises loudly past [Bitset.max_width]. *)

val mode_equal : mode -> mode -> bool
val pp_mode : Format.formatter -> mode -> unit
val pp : Format.formatter -> t -> unit

val procs : t -> int list
(** [[0; ...; n-1]]. *)

val all_procs : t -> Eba_util.Bitset.t
(** The full processor set. *)

val times : t -> int list
(** [[0; ...; horizon]]. *)

val rounds : t -> int list
(** [[1; ...; horizon]]. *)
