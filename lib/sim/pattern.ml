module Bitset = Eba_util.Bitset

type crash = { crash_proc : int; crash_round : int; crash_recipients : Bitset.t }
type omission = { om_proc : int; om_omits : Bitset.t array }

type general = {
  g_proc : int;
  g_send : Bitset.t array;  (* receivers not sent to, per round *)
  g_recv : Bitset.t array;  (* senders not received from, per round *)
}

type behaviour = Crashes of crash | Omits of omission | General of general

type t = {
  params_mode : Params.mode;
  horizon : int;
  faulty : Bitset.t;
  items : behaviour array;  (* sorted by processor id *)
}

let behaviour_proc = function
  | Crashes c -> c.crash_proc
  | Omits o -> o.om_proc
  | General g -> g.g_proc

let crash ~horizon ~proc ~round ~recipients =
  if round < 1 || round > horizon + 1 then
    invalid_arg "Pattern.crash: round out of range";
  if Bitset.mem proc recipients then
    invalid_arg "Pattern.crash: a processor does not message itself";
  if round = horizon + 1 && not (Bitset.is_empty recipients) then
    invalid_arg "Pattern.crash: clean crash must have empty recipients";
  Crashes { crash_proc = proc; crash_round = round; crash_recipients = recipients }

let clean_crash ~horizon ~proc =
  Crashes { crash_proc = proc; crash_round = horizon + 1; crash_recipients = Bitset.empty }

let omission ~horizon ~proc ~omits =
  if Array.length omits <> horizon then
    invalid_arg "Pattern.omission: omits must cover every round";
  if Array.exists (Bitset.mem proc) omits then
    invalid_arg "Pattern.omission: a processor does not message itself";
  Omits { om_proc = proc; om_omits = Array.copy omits }

let clean_omission ~horizon ~proc =
  Omits { om_proc = proc; om_omits = Array.make horizon Bitset.empty }

let general ~horizon ~proc ~send ~recv =
  if Array.length send <> horizon || Array.length recv <> horizon then
    invalid_arg "Pattern.general: omission sets must cover every round";
  if Array.exists (Bitset.mem proc) send || Array.exists (Bitset.mem proc) recv then
    invalid_arg "Pattern.general: a processor does not message itself";
  General { g_proc = proc; g_send = Array.copy send; g_recv = Array.copy recv }

let make (params : Params.t) behaviours =
  let items = Array.of_list behaviours in
  Array.sort (fun a b -> Stdlib.compare (behaviour_proc a) (behaviour_proc b)) items;
  let faulty =
    Array.fold_left (fun acc b -> Bitset.add (behaviour_proc b) acc) Bitset.empty items
  in
  if Bitset.cardinal faulty <> Array.length items then
    invalid_arg "Pattern.make: duplicate faulty processor";
  if Bitset.cardinal faulty > params.Params.t_failures then
    invalid_arg "Pattern.make: more than t faulty processors";
  Array.iter
    (fun b ->
      let p = behaviour_proc b in
      if p < 0 || p >= params.Params.n then invalid_arg "Pattern.make: processor out of range";
      match (b, params.Params.mode) with
      | Crashes _, Params.Crash
      | Omits _, Params.Omission
      | (Omits _ | General _), Params.General_omission ->
          (* sending-only omitters are legal general omitters *)
          ()
      | Crashes _, (Params.Omission | Params.General_omission)
      | Omits _, Params.Crash
      | General _, (Params.Crash | Params.Omission) ->
          invalid_arg "Pattern.make: behaviour does not match failure mode")
    items;
  { params_mode = params.Params.mode; horizon = params.Params.horizon; faulty; items }

let failure_free params = make params []

let faulty p = p.faulty
let behaviours p = Array.to_list p.items

let find_behaviour p proc =
  let n = Array.length p.items in
  let rec loop i =
    if i >= n then None
    else
      let b = p.items.(i) in
      if behaviour_proc b = proc then Some b else loop (i + 1)
  in
  loop 0

(* Delivery queries are only meaningful for the rounds the pattern
   describes.  Out-of-range rounds used to disagree across branches
   (nonfaulty and crash senders answered [true] past the horizon, omitters
   [false]), so they are now uniformly a programming error. *)
let check_round p round =
  if round < 1 || round > p.horizon then
    invalid_arg "Pattern: round out of range [1, horizon]"

let sender_delivers p ~round ~sender ~receiver =
  check_round p round;
  match find_behaviour p sender with
  | None -> true
  | Some (Crashes c) ->
      if round < c.crash_round then true
      else if round = c.crash_round then Bitset.mem receiver c.crash_recipients
      else false
  | Some (Omits o) -> not (Bitset.mem receiver o.om_omits.(round - 1))
  | Some (General g) -> not (Bitset.mem receiver g.g_send.(round - 1))

let receiver_accepts p ~round ~sender ~receiver =
  check_round p round;
  match find_behaviour p receiver with
  | None | Some (Crashes _) | Some (Omits _) -> true
  | Some (General g) -> not (Bitset.mem sender g.g_recv.(round - 1))

let delivers p ~round ~sender ~receiver =
  sender_delivers p ~round ~sender ~receiver
  && receiver_accepts p ~round ~sender ~receiver

(* The round-local footprint of a behaviour, in the normal form the
   shared-prefix enumerator groups by: which receivers the processor's
   round-[round] messages fail to reach through its own fault, and which
   senders it refuses to receive from.  A crash is "deliver everything"
   before its round, a strict-subset delivery at it, and silence after. *)
let round_signature ~n b ~round =
  if round < 1 then invalid_arg "Pattern.round_signature: round out of range";
  match b with
  | Crashes c ->
      let rest = Bitset.remove c.crash_proc (Bitset.full n) in
      if round < c.crash_round then (Bitset.empty, Bitset.empty)
      else if round = c.crash_round then
        (Bitset.diff rest c.crash_recipients, Bitset.empty)
      else (rest, Bitset.empty)
  | Omits o ->
      if round > Array.length o.om_omits then
        invalid_arg "Pattern.round_signature: round out of range";
      (o.om_omits.(round - 1), Bitset.empty)
  | General g ->
      if round > Array.length g.g_send then
        invalid_arg "Pattern.round_signature: round out of range";
      (g.g_send.(round - 1), g.g_recv.(round - 1))

let crashed_before p ~proc ~round =
  match find_behaviour p proc with
  | Some (Crashes c) -> round > c.crash_round
  | Some (Omits _) | Some (General _) | None -> false

let visible_failure p = function
  | Crashes c -> c.crash_round <= p.horizon
  | Omits o -> Array.exists (fun s -> not (Bitset.is_empty s)) o.om_omits
  | General g ->
      Array.exists (fun s -> not (Bitset.is_empty s)) g.g_send
      || Array.exists (fun s -> not (Bitset.is_empty s)) g.g_recv

let num_failures p =
  Array.fold_left (fun acc b -> if visible_failure p b then acc + 1 else acc) 0 p.items

let behaviour_key = function
  | Crashes c -> (0, c.crash_proc, c.crash_round, [ Bitset.to_int c.crash_recipients ])
  | Omits o -> (1, o.om_proc, 0, Array.to_list (Array.map Bitset.to_int o.om_omits))
  | General g ->
      ( 2,
        g.g_proc,
        0,
        Array.to_list (Array.map Bitset.to_int g.g_send)
        @ Array.to_list (Array.map Bitset.to_int g.g_recv) )

let compare a b =
  Stdlib.compare
    (Array.to_list (Array.map behaviour_key a.items))
    (Array.to_list (Array.map behaviour_key b.items))

let equal a b = compare a b = 0

let pp_sets sets =
  String.concat ";"
    (Array.to_list (Array.map (fun s -> Format.asprintf "%a" Bitset.pp s) sets))

let pp_behaviour fmt = function
  | Crashes c ->
      Format.fprintf fmt "crash(p%d@r%d->%a)" c.crash_proc c.crash_round Bitset.pp
        c.crash_recipients
  | Omits o -> Format.fprintf fmt "omit(p%d:%s)" o.om_proc (pp_sets o.om_omits)
  | General g ->
      Format.fprintf fmt "general(p%d:send %s recv %s)" g.g_proc (pp_sets g.g_send)
        (pp_sets g.g_recv)

let pp fmt p =
  if Array.length p.items = 0 then Format.pp_print_string fmt "failure-free"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
      pp_behaviour fmt (Array.to_list p.items)
