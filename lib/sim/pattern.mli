(** Failure patterns (Section 2.3): the complete faulty behaviour of every
    faulty processor in a run.

    A pattern only ever {e removes} messages that the protocol asks a
    processor to send; it never injects messages (crash and sending-omission
    modes are benign in that sense).

    Crash behaviours are canonicalized so that syntactically distinct
    patterns describe distinct in-horizon behaviours: a crash in round
    [k <= horizon] must deliver a {e strict} subset of the required round-[k]
    messages (delivering all of them is the same in-horizon behaviour as
    crashing a round later), and a crash after the horizon is represented as
    the [clean] behaviour — the processor is faulty but exhibits no failure
    before the end of the model.  Such "faulty but in-horizon clean" runs are
    genuine runs of the paper's systems and matter for what processors can
    consider possible. *)

module Bitset = Eba_util.Bitset

type crash = private {
  crash_proc : int;
  crash_round : int;  (** [1..horizon], or [horizon+1] for in-horizon clean *)
  crash_recipients : Bitset.t;
      (** receivers of the round-[crash_round] messages; [empty] when clean *)
}

type omission = private {
  om_proc : int;
  om_omits : Bitset.t array;  (** [om_omits.(k-1)] = receivers omitted in round [k] *)
}

type general = private {
  g_proc : int;
  g_send : Bitset.t array;  (** receivers not sent to, per round *)
  g_recv : Bitset.t array;  (** senders not received from, per round *)
}
(** A [PT86] general-omission behaviour (extension beyond the paper). *)

type behaviour = Crashes of crash | Omits of omission | General of general

type t
(** A failure pattern: a set of faulty processors with their behaviours. *)

val crash : horizon:int -> proc:int -> round:int -> recipients:Bitset.t -> behaviour
(** Raises [Invalid_argument] if [round] is outside [1..horizon+1] or [proc]
    is in [recipients].  The canonical-form discipline from the module
    description is enforced by the enumerators in {!module:Universe}, which
    only generate strict-subset crash deliveries. *)

val clean_crash : horizon:int -> proc:int -> behaviour
(** A crash-mode faulty processor that fails only after the horizon. *)

val omission : horizon:int -> proc:int -> omits:Bitset.t array -> behaviour
(** Raises [Invalid_argument] if [omits] has length [<> horizon] or some
    omission set contains [proc]. *)

val clean_omission : horizon:int -> proc:int -> behaviour

val general :
  horizon:int -> proc:int -> send:Bitset.t array -> recv:Bitset.t array -> behaviour
(** General-omission behaviour; a sending-only omitter ([Omits]) is also
    accepted by {!make} in [General_omission] mode. *)

val make : Params.t -> behaviour list -> t
(** Builds a pattern.  Checks: behaviours match the failure mode, processors
    are distinct and in range, and at most [t] processors are faulty. *)

val failure_free : Params.t -> t
(** The pattern with no faulty processor. *)

val faulty : t -> Bitset.t
(** The set of faulty processors (faulty anywhere in the run, which is the
    paper's notion of nonfaulty-throughout complement). *)

val behaviours : t -> behaviour list

val delivers : t -> round:int -> sender:int -> receiver:int -> bool
(** Whether a message the protocol requires [sender] to send to [receiver]
    in [round] is actually delivered.  [round] must lie in [1..horizon] —
    the rounds the pattern describes; anything else raises
    [Invalid_argument] (all failure kinds agree on this, where they used to
    answer inconsistently past the horizon). *)

val round_signature : n:int -> behaviour -> round:int -> Bitset.t * Bitset.t
(** [(send_omit, recv_omit)]: the receivers (other than the processor
    itself) that its round-[round] messages fail to reach through its own
    fault, and the senders whose round-[round] messages it refuses to
    accept.  Together with "nonfaulty processors omit nothing" this
    determines {!delivers} for the round, so behaviours with equal
    signatures on rounds [1..k] are indistinguishable through time [k] —
    the grouping invariant behind {!Universe.prefix_forest}.  [n] is the
    system size (behaviours do not record it).  Raises [Invalid_argument]
    on rounds outside the behaviour's horizon. *)

val crashed_before : t -> proc:int -> round:int -> bool
(** Crash mode only: has [proc] crashed strictly before [round] (so it sends
    nothing at all in [round])? *)

val num_failures : t -> int
(** The paper's [f]: how many processors actually exhibit a failure within
    the horizon (in-horizon clean faulty processors do not count). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
