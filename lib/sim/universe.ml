module Bitset = Eba_util.Bitset
module Combi = Eba_util.Combi

let others (params : Params.t) proc =
  Bitset.remove proc (Bitset.full params.Params.n)

let crash_behaviours (params : Params.t) ~proc =
  let horizon = params.Params.horizon in
  let rest = others params proc in
  let strict =
    List.filter (fun s -> not (Bitset.equal s rest)) (Bitset.subsets_of rest)
  in
  let per_round round =
    List.map (fun recipients -> Pattern.crash ~horizon ~proc ~round ~recipients) strict
  in
  Pattern.clean_crash ~horizon ~proc
  :: List.concat_map per_round (Params.rounds params)

let round_choices_exhaustive params proc = Bitset.subsets_of (others params proc)

let round_choices_sparse params proc =
  let rest = others params proc in
  Bitset.empty :: rest :: List.map Bitset.singleton (Bitset.to_list rest)

let omission_of_choices (params : Params.t) proc choices =
  Pattern.omission ~horizon:params.Params.horizon ~proc ~omits:(Array.of_list choices)

let omission_behaviours_gen choices (params : Params.t) ~proc =
  let per_round = choices params proc in
  let tuples = Combi.cartesian (List.map (fun _ -> per_round) (Params.rounds params)) in
  List.map (omission_of_choices params proc) tuples

let omission_behaviours params ~proc =
  omission_behaviours_gen round_choices_exhaustive params ~proc

let omission_behaviours_sparse params ~proc =
  omission_behaviours_gen round_choices_sparse params ~proc

let general_behaviours_gen choices (params : Params.t) ~proc =
  let per_round = choices params proc in
  (* a round's behaviour is an independent (send-omit, receive-omit) pair *)
  let pairs =
    List.concat_map (fun s -> List.map (fun r -> (s, r)) per_round) per_round
  in
  let tuples = Combi.cartesian (List.map (fun _ -> pairs) (Params.rounds params)) in
  List.map
    (fun per_rounds ->
      let send = Array.of_list (List.map fst per_rounds) in
      let recv = Array.of_list (List.map snd per_rounds) in
      Pattern.general ~horizon:params.Params.horizon ~proc ~send ~recv)
    tuples

let general_behaviours params ~proc =
  general_behaviours_gen round_choices_exhaustive params ~proc

let general_behaviours_sparse params ~proc =
  general_behaviours_gen round_choices_sparse params ~proc

type flavour = Exhaustive | Sparse

let behaviours_for ?(flavour = Exhaustive) (params : Params.t) ~proc =
  match (params.Params.mode, flavour) with
  | Params.Crash, _ -> crash_behaviours params ~proc
  | Params.Omission, Exhaustive -> omission_behaviours params ~proc
  | Params.Omission, Sparse -> omission_behaviours_sparse params ~proc
  | Params.General_omission, Exhaustive -> general_behaviours params ~proc
  | Params.General_omission, Sparse -> general_behaviours_sparse params ~proc

(* The exhaustive path is streaming: only the per-processor behaviour lists
   (small) are materialized, never the cartesian product across processors
   or the pattern list itself. *)
let patterns_seq ?(flavour = Exhaustive) (params : Params.t) =
  let faulty_sets = Bitset.subsets_upto params.Params.n params.Params.t_failures in
  Seq.concat_map
    (fun set ->
      let per_proc =
        List.map (fun proc -> behaviours_for ~flavour params ~proc) (Bitset.to_list set)
      in
      Seq.map (Pattern.make params) (Combi.cartesian_seq per_proc))
    (List.to_seq faulty_sets)

let patterns ?flavour (params : Params.t) = List.of_seq (patterns_seq ?flavour params)

let workload_seq ?flavour ?configs (params : Params.t) =
  let configs =
    match configs with Some cs -> cs | None -> Config.all ~n:params.Params.n
  in
  Seq.concat_map
    (fun pattern -> Seq.map (fun config -> (config, pattern)) (List.to_seq configs))
    (patterns_seq ?flavour params)

(* --- shared-prefix enumeration ----------------------------------------

   Exhaustive universes are cartesian products of per-processor behaviour
   lists, so patterns share long delivery prefixes: two behaviours that
   agree on their round-[1..k] signatures produce identical deliveries
   through time [k].  [prefix_forest] exposes that sharing as a lazy tree
   per faulty set — each node is an equivalence class of behaviour tuples
   on a signature prefix — so a model builder can extend views once per
   node instead of once per pattern.  Leaves carry their pattern together
   with its index in the canonical [patterns_seq] order, computed in mixed
   radix from the per-processor behaviour indices, so a tree walk can
   place every run at exactly the slot the naive enumeration would. *)

type prefix_node = {
  pn_depth : int;
  pn_send_omit : Bitset.t array;
  pn_recv_omit : Bitset.t array;
  pn_children : unit -> prefix_node list;
  pn_patterns : unit -> (int * Pattern.t) list;
}

(* Partition [members] (indices into [behs]) by their round-[round]
   signature, preserving first-occurrence order. *)
let partition_round ~n behs ~round members =
  let table = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun i ->
      let send, recv = Pattern.round_signature ~n behs.(i) ~round in
      let key = (Bitset.to_int send, Bitset.to_int recv) in
      match Hashtbl.find_opt table key with
      | Some cell -> cell := i :: !cell
      | None ->
          let cell = ref [ i ] in
          Hashtbl.add table key cell;
          order := (send, recv, cell) :: !order)
    members;
  List.rev_map
    (fun (send, recv, cell) -> (send, recv, Array.of_list (List.rev !cell)))
    !order

let prefix_forest ?(flavour = Exhaustive) (params : Params.t) =
  let n = params.Params.n and horizon = params.Params.horizon in
  let faulty_sets = Bitset.subsets_upto n params.Params.t_failures in
  let offset = ref 0 in
  let roots =
    List.map
      (fun set ->
        let procs = Bitset.to_list set in
        let behaviours =
          List.map
            (fun proc -> Array.of_list (behaviours_for ~flavour params ~proc))
            procs
        in
        let base = !offset in
        offset := base + List.fold_left (fun b a -> b * Array.length a) 1 behaviours;
        (* [groups]: per processor (in [procs] order), the behaviour indices
           compatible with the signature prefix leading to this node. *)
        let rec node depth ~send ~recv groups =
          {
            pn_depth = depth;
            pn_send_omit = send;
            pn_recv_omit = recv;
            pn_children =
              (fun () ->
                if depth >= horizon then []
                else
                  let round = depth + 1 in
                  let parts =
                    List.map2
                      (fun behs g -> partition_round ~n behs ~round g)
                      behaviours groups
                  in
                  (* cross product of the per-processor partitions, first
                     processor varying slowest (the canonical tuple order) *)
                  let rec cross procs parts =
                    match (procs, parts) with
                    | [], [] ->
                        [ (Array.make n Bitset.empty, Array.make n Bitset.empty, []) ]
                    | proc :: ps, part :: pl ->
                        let rest = cross ps pl in
                        List.concat_map
                          (fun (s, r, g) ->
                            List.map
                              (fun (send, recv, groups) ->
                                let send = Array.copy send and recv = Array.copy recv in
                                send.(proc) <- s;
                                recv.(proc) <- r;
                                (send, recv, g :: groups))
                              rest)
                          part
                    | [], _ :: _ | _ :: _, [] ->
                        (* unreachable: [parts] is built by [List.map2]
                           over [groups], and [groups] always has exactly
                           one entry per processor of [procs] (both
                           originate from the same [faulty_sets] row and
                           recursion peels one of each) — but a mismatch
                           would mean corrupted forest construction, so
                           fail diagnosably rather than crash an assert *)
                        invalid_arg
                          "Universe.prefix_forest: per-processor partition \
                           lists out of step"
                  in
                  List.map
                    (fun (send, recv, groups) -> node (depth + 1) ~send ~recv groups)
                    (cross procs parts))
            ;
            pn_patterns =
              (fun () ->
                if depth < horizon then []
                else
                  let rec leaves behs_list groups idx acc =
                    match (behs_list, groups) with
                    | [], [] ->
                        [ (base + idx, Pattern.make params (List.rev acc)) ]
                    | behs :: bl, g :: gl ->
                        List.concat_map
                          (fun i ->
                            leaves bl gl ((idx * Array.length behs) + i)
                              (behs.(i) :: acc))
                          (Array.to_list g)
                    | [], _ :: _ | _ :: _, [] ->
                        (* unreachable for the same reason as [cross]
                           above: [groups] carries one index array per
                           behaviour list and the recursion consumes them
                           in lockstep *)
                        invalid_arg
                          "Universe.prefix_forest: behaviour/group lists \
                           out of step"
                  in
                  leaves behaviours groups 0 []);
          }
        in
        let empty_sig = Array.make n Bitset.empty in
        ( set,
          node 0 ~send:empty_sig ~recv:empty_sig
            (List.map (fun behs -> Array.init (Array.length behs) Fun.id) behaviours)
        ))
      faulty_sets
  in
  (!offset, roots)

(* Every arithmetic step is overflow-checked: with the n-cap at 4096 these
   closed forms leave the int range as early as n = 63 (crash needs
   2^(n-1)), and a wrapped count is worse than no count — raise
   [Combi.Overflow] instead. *)
let behaviour_count ?(flavour = Exhaustive) (params : Params.t) =
  let n = params.Params.n and horizon = params.Params.horizon in
  match (params.Params.mode, flavour) with
  | Params.Crash, _ -> Combi.add_exn 1 (Combi.mul_exn horizon (Combi.pow 2 (n - 1) - 1))
  | Params.Omission, Exhaustive -> Combi.pow (Combi.pow 2 (n - 1)) horizon
  | Params.Omission, Sparse -> Combi.pow (n + 1) horizon
  | Params.General_omission, Exhaustive ->
      Combi.pow (Combi.mul_exn (Combi.pow 2 (n - 1)) (Combi.pow 2 (n - 1))) horizon
  | Params.General_omission, Sparse -> Combi.pow ((n + 1) * (n + 1)) horizon

let count ?(flavour = Exhaustive) (params : Params.t) =
  let per_proc = behaviour_count ~flavour params in
  let n = params.Params.n in
  let rec total f acc =
    if f > params.Params.t_failures then acc
    else
      total (f + 1)
        (Combi.add_exn acc (Combi.mul_exn (Combi.choose n f) (Combi.pow per_proc f)))
  in
  total 0 0

let random_subset rng set =
  Bitset.filter (fun _ -> Random.State.bool rng) set

let random_behaviour rng (params : Params.t) proc =
  let horizon = params.Params.horizon in
  match params.Params.mode with
  | Params.Crash ->
      (* Round is uniform over [1 .. horizon+1]; the extra slot [horizon+1]
         is deliberately aliased to the in-horizon clean crash, giving the
         clean behaviour weight 1/(horizon+1).  Pinned by the distribution
         test in test_sim.ml so the weighting stays intentional. *)
      let round = 1 + Random.State.int rng (horizon + 1) in
      if round > horizon then Pattern.clean_crash ~horizon ~proc
      else
        let rest = others params proc in
        let recipients = random_subset rng rest in
        let recipients =
          (* A full recipient set aliases the clean crash; de-alias by
             dropping one *uniformly drawn* recipient.  (Dropping the
             lowest-indexed one, as this used to, deterministically biased
             every sampled crash universe: processor 0 was never the sole
             missed recipient.) *)
          if Bitset.equal recipients rest && not (Bitset.is_empty rest) then begin
            let members = Bitset.to_list rest in
            let victim = List.nth members (Random.State.int rng (List.length members)) in
            Bitset.remove victim recipients
          end
          else recipients
        in
        Pattern.crash ~horizon ~proc ~round ~recipients
  | Params.Omission ->
      let rest = others params proc in
      let omits = Array.init horizon (fun _ -> random_subset rng rest) in
      Pattern.omission ~horizon ~proc ~omits
  | Params.General_omission ->
      let rest = others params proc in
      let send = Array.init horizon (fun _ -> random_subset rng rest) in
      let recv = Array.init horizon (fun _ -> random_subset rng rest) in
      Pattern.general ~horizon ~proc ~send ~recv

let random_pattern rng (params : Params.t) =
  let f = Random.State.int rng (params.Params.t_failures + 1) in
  let rec pick_faulty acc =
    if Bitset.cardinal acc = f then acc
    else pick_faulty (Bitset.add (Random.State.int rng params.Params.n) acc)
  in
  let faulty = pick_faulty Bitset.empty in
  let behaviours =
    List.map (fun proc -> random_behaviour rng params proc) (Bitset.to_list faulty)
  in
  Pattern.make params behaviours
