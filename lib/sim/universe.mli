(** Adversary universes: enumerations of failure patterns that define which
    runs exist in a bounded model.

    Knowledge is always computed {e relative to a system of runs}; these
    enumerators make the system explicit.  [exhaustive] universes contain
    every canonical pattern of the mode and are what the correctness and
    optimality experiments quantify over.  The [sparse] omission universe is
    a documented restriction (each faulty processor omits, per round, either
    nothing, everything, or a single receiver) used when the exhaustive
    omission universe is too large; it still contains every run construction
    used by the paper's Section 6 proofs. *)

module Bitset = Eba_util.Bitset

val crash_behaviours : Params.t -> proc:int -> Pattern.behaviour list
(** All canonical crash behaviours of [proc]: the in-horizon clean one plus,
    for every round and every strict subset of the other processors, the
    crash delivering exactly that subset. *)

val omission_behaviours : Params.t -> proc:int -> Pattern.behaviour list
(** All [2^(n-1)] per-round omission choices, over all rounds. *)

val omission_behaviours_sparse : Params.t -> proc:int -> Pattern.behaviour list
(** Per-round omission set restricted to [∅], a singleton, or all others. *)

type flavour = Exhaustive | Sparse

val behaviours_for : ?flavour:flavour -> Params.t -> proc:int -> Pattern.behaviour list
(** The canonical behaviours of one faulty processor under the params' mode
    (the dispatcher behind the per-mode enumerators above). *)

val patterns_seq : ?flavour:flavour -> Params.t -> Pattern.t Seq.t
(** Every pattern, streamed: for each faulty set of size [<= t], every
    combination of per-processor behaviours.  Nothing beyond the small
    per-processor behaviour lists is materialized, so exhaustive sweeps can
    consume universes far larger than memory.  [flavour] defaults to
    [Exhaustive] and only affects omission modes.  The sequence is
    persistent and enumerates in a fixed, deterministic order. *)

val patterns : ?flavour:flavour -> Params.t -> Pattern.t list
(** [List.of_seq (patterns_seq p)] — kept for callers that want the list. *)

val workload_seq :
  ?flavour:flavour -> ?configs:Config.t list -> Params.t -> (Config.t * Pattern.t) Seq.t
(** The exhaustive run workload: every pattern of {!patterns_seq} paired
    with every initial configuration ([Config.all] by default), streamed in
    pattern-major order. *)

type prefix_node = {
  pn_depth : int;  (** rounds of behaviour fixed so far (time [pn_depth]) *)
  pn_send_omit : Bitset.t array;
      (** per processor: receivers its round-[pn_depth] messages miss
          (all empty at the depth-0 root, where no round is fixed yet) *)
  pn_recv_omit : Bitset.t array;
      (** per processor: senders it refuses in round [pn_depth] *)
  pn_children : unit -> prefix_node list;
      (** the distinct round-[pn_depth+1] signature combinations compatible
          with this prefix; [[]] exactly at depth [horizon] *)
  pn_patterns : unit -> (int * Pattern.t) list;
      (** at depth [horizon]: the patterns of this equivalence class, each
          with its index in the canonical {!patterns_seq} order (almost
          always a singleton); [[]] at interior depths *)
}
(** One equivalence class of failure patterns: all behaviour tuples of a
    faulty set that agree on their per-round delivery signatures
    ({!Pattern.round_signature}) for rounds [1..pn_depth], and hence
    produce identical deliveries — identical views — through time
    [pn_depth]. *)

val prefix_forest :
  ?flavour:flavour -> Params.t -> int * (Bitset.t * prefix_node) list
(** The pattern universe of {!patterns_seq}, factored by shared delivery
    prefixes: the total pattern count plus one lazy tree root per faulty
    set (in the same faulty-set order).  Walking every tree to depth
    [horizon] visits every pattern exactly once, and the leaf indices are
    a bijection onto [0 .. count-1] in {!patterns_seq} order — which is
    what lets a shared-prefix model builder reproduce the naive run
    numbering exactly.  Trees are recomputed on demand and hold no state;
    distinct subtrees may be walked from distinct domains. *)

val count : ?flavour:flavour -> Params.t -> int
(** [List.length (patterns p)] computed arithmetically, for guarding against
    accidentally huge models.  Raises [Combi.Overflow] when the count does
    not fit in a native [int] (e.g. exhaustive omission at [n >= 63], or
    crash at [n >= 63] with any horizon) instead of wrapping to a
    negative/garbage size. *)

val behaviour_count : ?flavour:flavour -> Params.t -> int
(** Per-processor behaviour count computed arithmetically:
    [List.length (behaviours_for p ~proc)] for any [proc].  Raises
    [Combi.Overflow] like {!count}. *)

val random_pattern : Random.State.t -> Params.t -> Pattern.t
(** A uniformly-chosen-shape random pattern for the operational layer:
    failure count uniform in [0..t], then uniform behaviours.  In crash
    mode each faulty processor's behaviour is drawn as: crash round
    uniform over [1 .. horizon+1] with [horizon+1] meaning the in-horizon
    clean crash (so the clean behaviour carries weight [1/(horizon+1)] by
    design), then a uniformly random strict subset of recipients — when
    the drawn subset is everybody, one uniformly drawn recipient is
    dropped to de-alias from the clean crash. *)
