(* Sign-magnitude bignum over base-2^30 limbs (little-endian int arrays,
   no leading zeros; zero has an empty magnitude and sign 0).  The limb
   width keeps every intermediate product below 2^61, inside the native
   63-bit [int]. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let norm_mag mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make sign mag =
  let mag = norm_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* Walk the negative side: its range is one wider, so [min_int] needs
       no special case. *)
    let v = ref (if n < 0 then n else -n) in
    let acc = ref [] in
    while !v <> 0 do
      acc := -(!v mod base) :: !acc;
      v := !v / base
    done;
    { sign; mag = Array.of_list (List.rev !acc) }
  end

let one = of_int 1

let to_int_opt t =
  if t.sign = 0 then Some 0
  else begin
    (* Accumulate the negated value, again for the wider negative range. *)
    let r = ref 0 in
    let ok = ref true in
    for i = Array.length t.mag - 1 downto 0 do
      let limb = t.mag.(i) in
      if !ok then
        if !r < (min_int + limb) / base then ok := false
        else r := (!r * base) - limb
    done;
    if not !ok then None
    else if t.sign < 0 then Some !r
    else if !r = min_int then None
    else Some (- !r)
  end

let sign t = t.sign
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let i = ref (la - 1) in
    while !i >= 0 && a.(!i) = b.(!i) do
      decr i
    done;
    if !i < 0 then 0 else compare a.(!i) b.(!i)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      !carry
      + (if i < la then a.(i) else 0)
      + (if i < lb then b.(i) else 0)
    in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  norm_mag r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  norm_mag r

let add_into r x off =
  let lx = Array.length x in
  let carry = ref 0 in
  for i = 0 to lx - 1 do
    let v = r.(off + i) + x.(i) + !carry in
    r.(off + i) <- v land mask;
    carry := v lsr base_bits
  done;
  let k = ref (off + lx) in
  while !carry <> 0 do
    let v = r.(!k) + !carry in
    r.(!k) <- v land mask;
    carry := v lsr base_bits;
    incr k
  done

let mul_school a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let v = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- v land mask;
        carry := v lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = r.(!k) + !carry in
        r.(!k) <- v land mask;
        carry := v lsr base_bits;
        incr k
      done
    end
  done;
  norm_mag r

let kara_threshold = 32

let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la <= kara_threshold || lb <= kara_threshold then mul_school a b
  else begin
    let m = (max la lb + 1) / 2 in
    let lo x =
      norm_mag (Array.sub x 0 (min m (Array.length x)))
    in
    let hi x =
      if Array.length x <= m then [||]
      else Array.sub x m (Array.length x - m)
    in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = mul_mag a0 b0 in
    let z2 = mul_mag a1 b1 in
    let mid = mul_mag (add_mag a0 a1) (add_mag b0 b1) in
    (* mid >= z0 + z2, so both magnitude subtractions are valid. *)
    let z1 = sub_mag (sub_mag mid z0) z2 in
    let r = Array.make (la + lb) 0 in
    add_into r z0 0;
    add_into r z2 (2 * m);
    add_into r z1 m;
    norm_mag r
  end

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = add_mag a.mag b.mag }
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then { sign = a.sign; mag = sub_mag a.mag b.mag }
    else { sign = b.sign; mag = sub_mag b.mag a.mag }
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = mul_mag a.mag b.mag }

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let r = ref one in
  let b = ref b in
  let e = ref e in
  while !e > 0 do
    if !e land 1 = 1 then r := mul !r !b;
    e := !e lsr 1;
    if !e > 0 then b := mul !b !b
  done;
  !r

(* Left shift by [s] bits (0 <= s < base_bits); always one extra limb. *)
let shl_bits x s =
  let lx = Array.length x in
  let r = Array.make (lx + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lx - 1 do
    let v = (x.(i) lsl s) lor !carry in
    r.(i) <- v land mask;
    carry := v lsr base_bits
  done;
  r.(lx) <- !carry;
  r

let shr_bits x s =
  if s = 0 then norm_mag (Array.copy x)
  else begin
    let lx = Array.length x in
    let r = Array.make lx 0 in
    let carry = ref 0 in
    for i = lx - 1 downto 0 do
      r.(i) <- (x.(i) lsr s) lor (!carry lsl (base_bits - s));
      carry := x.(i) land ((1 lsl s) - 1)
    done;
    norm_mag r
  end

(* Knuth's Algorithm D on magnitudes; returns (quotient, remainder). *)
let divmod_mag a b =
  let lb = Array.length b in
  if lb = 0 then raise Division_by_zero;
  if cmp_mag a b < 0 then ([||], norm_mag (Array.copy a))
  else if lb = 1 then begin
    let d = b.(0) in
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let v = (!r * base) + a.(i) in
      q.(i) <- v / d;
      r := v mod d
    done;
    (norm_mag q, if !r = 0 then [||] else [| !r |])
  end
  else begin
    let la = Array.length a in
    (* Normalize so the divisor's top limb has its high bit set. *)
    let s = ref 0 in
    while (b.(lb - 1) lsl !s) < base / 2 do
      incr s
    done;
    let s = !s in
    let vn = Array.sub (shl_bits b s) 0 lb in
    let un = shl_bits a s in
    let m = la - lb in
    let q = Array.make (m + 1) 0 in
    for j = m downto 0 do
      let u2 = (un.(j + lb) * base) + un.(j + lb - 1) in
      let qhat = ref (u2 / vn.(lb - 1)) in
      let rhat = ref (u2 mod vn.(lb - 1)) in
      let adjusting = ref true in
      while !adjusting do
        if
          !qhat >= base
          || !qhat * vn.(lb - 2) > (!rhat * base) + un.(j + lb - 2)
        then begin
          decr qhat;
          rhat := !rhat + vn.(lb - 1);
          if !rhat >= base then adjusting := false
        end
        else adjusting := false
      done;
      (* Multiply-subtract qhat * vn from un[j .. j+lb]. *)
      let carry = ref 0 in
      let borrow = ref 0 in
      for i = 0 to lb - 1 do
        let p = (!qhat * vn.(i)) + !carry in
        carry := p lsr base_bits;
        let d = un.(j + i) - (p land mask) - !borrow in
        if d < 0 then begin
          un.(j + i) <- d + base;
          borrow := 1
        end
        else begin
          un.(j + i) <- d;
          borrow := 0
        end
      done;
      let d = un.(j + lb) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add the divisor back. *)
        un.(j + lb) <- d + base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to lb - 1 do
          let v = un.(j + i) + vn.(i) + !carry in
          un.(j + i) <- v land mask;
          carry := v lsr base_bits
        done;
        un.(j + lb) <- (un.(j + lb) + !carry) land mask
      end
      else un.(j + lb) <- d;
      q.(j) <- !qhat
    done;
    (norm_mag q, shr_bits (Array.sub un 0 lb) s)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    (make (a.sign * b.sign) qm, make a.sign rm)
  end

let gcd a b =
  let rec go a b =
    if Array.length b = 0 then a else go b (snd (divmod_mag a b))
  in
  if a.sign = 0 then abs b
  else if b.sign = 0 then abs a
  else make 1 (go a.mag b.mag)

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let negated = s.[0] = '-' in
  let start = if negated then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: lone sign";
  let v = ref zero in
  let chunk_base = of_int 1_000_000_000 in
  let i = ref start in
  while !i < len do
    let stop = min len (!i + 9) in
    let chunk = ref 0 in
    for j = !i to stop - 1 do
      match s.[j] with
      | '0' .. '9' -> chunk := (!chunk * 10) + (Char.code s.[j] - Char.code '0')
      | c -> invalid_arg (Printf.sprintf "Bigint.of_string: bad char %C" c)
    done;
    let scale =
      if stop - !i = 9 then chunk_base else of_int (int_of_float (10. ** float_of_int (stop - !i)))
    in
    v := add (mul !v scale) (of_int !chunk);
    i := stop
  done;
  if negated then neg !v else !v

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    if t.sign < 0 then Buffer.add_char buf '-';
    (* Divide-and-conquer on powers 10^(9 * 2^k), largest first, so the
       cost is dominated by balanced divisions instead of a quadratic
       chunk-at-a-time scan. *)
    let chunk = [| 1_000_000_000 |] in
    let rec powers acc p = if cmp_mag p t.mag > 0 then acc else powers (p :: acc) (mul_mag p p) in
    let ps = powers [] chunk in
    (* [ps] is descending; [pad] forces full zero-padded width. *)
    let rec emit ~pad x ps =
      match ps with
      | [] ->
          let v = if Array.length x = 0 then 0 else x.(0) in
          if pad then Buffer.add_string buf (Printf.sprintf "%09d" v)
          else Buffer.add_string buf (string_of_int v)
      | p :: rest ->
          if (not pad) && cmp_mag x p < 0 then emit ~pad x rest
          else begin
            let q, r = divmod_mag x p in
            emit ~pad q rest;
            emit ~pad:true r rest
          end
    in
    emit ~pad:false t.mag ps;
    Buffer.contents buf
  end

let mag_bits mag =
  let l = Array.length mag in
  if l = 0 then 0
  else begin
    let top = mag.(l - 1) in
    let b = ref 0 in
    while top lsr !b <> 0 do
      incr b
    done;
    ((l - 1) * base_bits) + !b
  end

let num_digits t =
  if t.sign = 0 then 1
  else begin
    let bits = mag_bits t.mag in
    (* 30103/100000 slightly overestimates log10 2; correct by comparing
       against exact powers of ten (a couple of iterations at most). *)
    let ten = of_int 10 in
    let d = ref (max 0 ((bits - 1) * 30103 / 100000)) in
    let p = ref (pow ten !d) in
    while !d > 0 && cmp_mag t.mag !p.mag < 0 do
      decr d;
      p := fst (divmod !p ten)
    done;
    let digits = ref (!d + 1) in
    let p = ref (mul !p ten) in
    while cmp_mag t.mag !p.mag >= 0 do
      incr digits;
      p := mul !p ten
    done;
    !digits
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
