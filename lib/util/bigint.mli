(** Arbitrary-precision signed integers, dependency-free.

    Sign-magnitude representation over base-2^30 limbs so that limb
    products fit comfortably in OCaml's 63-bit native [int]; no [zarith].
    Values are immutable and canonical: the magnitude carries no leading
    zero limbs and the zero value has an empty magnitude, so structural
    equality coincides with numeric equality.

    Sized for the probability engine ({!Eba_prob}): multiplication
    switches to Karatsuba above a fixed limb threshold, exponentiation is
    by repeated squaring, and division is Knuth's Algorithm D — whose cost
    is proportional to quotient limbs times divisor limbs, i.e. cheap in
    the engine's dominant use (reducing a huge numerator by a huge,
    same-size denominator to a handful of quotient digits). *)

type t

val zero : t
val one : t
val of_int : int -> t
(** Total, including [min_int]. *)

val to_int_opt : t -> int option
(** [Some n] iff the value fits a native [int]. *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val pow : t -> int -> t
(** [pow b e] by repeated squaring.  Raises [Invalid_argument] on
    [e < 0]. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|] and [r]
    carrying the sign of [a] (truncated division, like [Stdlib.( / )]).
    Raises [Division_by_zero] on [b = 0]. *)

val gcd : t -> t -> t
(** Non-negative; [gcd 0 0 = 0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val of_string : string -> t
(** Decimal, with optional leading [-].  Raises [Invalid_argument] on
    anything else (no underscores, no hex). *)

val to_string : t -> string
(** Decimal rendering; [of_string (to_string x) = x]. *)

val num_digits : t -> int
(** Number of decimal digits of the magnitude ([1] for zero). *)

val pp : Format.formatter -> t -> unit
