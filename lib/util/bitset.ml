type t = int

let max_width = 62

let empty = 0

let check_width n =
  if n < 0 || n > max_width then
    invalid_arg (Printf.sprintf "Bitset: width %d out of range" n)

let full n =
  check_width n;
  if n = 0 then 0 else (1 lsl n) - 1

let singleton i =
  check_width (i + 1);
  1 lsl i

let add i s = s lor singleton i
let remove i s = s land lnot (singleton i)
let mem i s = i >= 0 && i < max_width && s land (1 lsl i) <> 0
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let is_empty s = s = 0
let equal (a : int) b = a = b
let compare (a : int) b = Stdlib.compare a b
let subset a b = a land lnot b = 0
let disjoint a b = a land b = 0

let cardinal s =
  let rec count acc s = if s = 0 then acc else count (acc + 1) (s land (s - 1)) in
  count 0 s

let of_list l = List.fold_left (fun s i -> add i s) empty l

let fold f s init =
  let rec loop i s acc =
    if s = 0 then acc
    else if s land 1 <> 0 then loop (i + 1) (s lsr 1) (f i acc)
    else loop (i + 1) (s lsr 1) acc
  in
  loop 0 s init

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])
let iter f s = fold (fun i () -> f i) s ()
let for_all p s = fold (fun i acc -> acc && p i) s true
let exists p s = fold (fun i acc -> acc || p i) s false
let filter p s = fold (fun i acc -> if p i then add i acc else acc) s empty

let choose s =
  if s = 0 then None
  else
    let rec first i s = if s land 1 <> 0 then Some i else first (i + 1) (s lsr 1) in
    first 0 s

let to_int s = s
let of_int s = s

(* Enumerate the subsets of [mask] directly with the [(sub - mask) land
   mask] successor trick: 2^|mask| steps in increasing bit-pattern order,
   instead of enumerating every integer up to [mask] and filtering. *)
let subsets_of mask =
  let rec loop sub acc =
    let acc = sub :: acc in
    if sub = mask then List.rev acc else loop ((sub - mask) land mask) acc
  in
  loop 0 []

let subsets n =
  check_width n;
  subsets_of (full n)

let subsets_upto n k =
  let all = subsets n in
  let by_card = List.filter (fun s -> cardinal s <= k) all in
  List.stable_sort (fun a b -> Stdlib.compare (cardinal a) (cardinal b)) by_card

let pp fmt s =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (to_list s)))
