(** Small bitsets over processor identifiers [0 .. width-1].

    A set is represented as the bits of a single native [int], so widths up
    to 62 are supported — far beyond the processor counts handled by the
    exhaustive model enumeration.  All operations are pure. *)

type t = private int
(** A set of small non-negative integers. *)

val max_width : int
(** Largest supported element count (62 on 64-bit platforms). *)

val empty : t
(** The empty set. *)

val full : int -> t
(** [full n] is [{0, ..., n-1}].  Raises [Invalid_argument] if [n] is
    negative or exceeds {!max_width}. *)

val singleton : int -> t
(** [singleton i] is [{i}]. *)

val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** [diff a b] is [a \ b]. *)

val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val disjoint : t -> t -> bool
val cardinal : t -> int

val of_list : int list -> t
val to_list : t -> int list
(** Elements in increasing order. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val choose : t -> int option
(** Smallest element, if any. *)

val to_int : t -> int
val of_int : int -> t
(** Raw bit-pattern conversions, used when a set is a hash-table key. *)

val subsets : int -> t list
(** [subsets n] enumerates all [2^n] subsets of [full n], in increasing
    bit-pattern order. *)

val subsets_of : t -> t list
(** [subsets_of s] enumerates all [2^(cardinal s)] subsets of [s], in
    increasing bit-pattern order — without touching the non-members of
    [s]. *)

val subsets_upto : int -> int -> t list
(** [subsets_upto n k] enumerates the subsets of [full n] of cardinality at
    most [k], smallest cardinality first. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0,2,3}]. *)
