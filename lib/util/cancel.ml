exception Cancelled

type t = bool Atomic.t

let create () = Atomic.make false
let cancel t = Atomic.set t true
let cancelled t = Atomic.get t
let check t = if Atomic.get t then raise Cancelled

let check_opt = function None -> () | Some t -> check t
