(** Cooperative cancellation tokens.

    A token is a single atomic flag shared between the party that may
    abort a computation and the domains doing the work.  Workers poll it
    at natural unit-of-work boundaries — one simulated run, one
    multiplexed wave, one exhaustive-workload pattern, one chain row —
    via {!check}, which raises {!Cancelled} once {!cancel} has been
    called.  Polling is a plain atomic read, so threading a token
    through a sweep leaves its results and deterministic metrics
    bit-identical when the token never fires.

    Raising (rather than returning an option) composes with
    {!Parallel.map_reduce_seq}: the pool joins every domain and
    re-raises the first exception, so a cancelled parallel fold
    terminates within one chunk boundary per domain and surfaces
    {!Cancelled} to the caller exactly once. *)

exception Cancelled
(** Raised by {!check} on a cancelled token.  Escapes to whoever started
    the computation; never caught internally. *)

type t
(** A cancellation token.  Domain-safe; cancelling is idempotent. *)

val create : unit -> t
(** A fresh, un-cancelled token. *)

val cancel : t -> unit
(** Request cancellation.  Workers observe it at their next {!check}. *)

val cancelled : t -> bool
(** Has {!cancel} been called?  A plain atomic read. *)

val check : t -> unit
(** Raise {!Cancelled} if {!cancelled}; otherwise return. *)

val check_opt : t option -> unit
(** {!check} when a token is present; no-op on [None] — the form engine
    entry points use for their optional [?cancel] parameter. *)
