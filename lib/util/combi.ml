let cartesian lists =
  let extend acc l =
    List.concat_map (fun tuple -> List.map (fun x -> x :: tuple) l) acc
  in
  List.map List.rev (List.fold_left extend [ [] ] lists)

let rec cartesian_seq = function
  | [] -> Seq.return []
  | l :: rest ->
      let tails = cartesian_seq rest in
      Seq.concat_map (fun x -> Seq.map (fun tl -> x :: tl) tails) (List.to_seq l)

let choose n k =
  if k < 0 || k > n then 0
  else
    let k = min k (n - k) in
    let rec loop acc i = if i > k then acc else loop (acc * (n - k + i) / i) (i + 1) in
    loop 1 1

let assignments keys values =
  cartesian (List.map (fun k -> List.map (fun v -> (k, v)) values) keys)

let pow base e =
  if e < 0 then invalid_arg "Combi.pow: negative exponent";
  let rec loop acc e = if e = 0 then acc else loop (acc * base) (e - 1) in
  loop 1 e
