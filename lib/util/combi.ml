let cartesian lists =
  let extend acc l =
    List.concat_map (fun tuple -> List.map (fun x -> x :: tuple) l) acc
  in
  List.map List.rev (List.fold_left extend [ [] ] lists)

let rec cartesian_seq = function
  | [] -> Seq.return []
  | l :: rest ->
      let tails = cartesian_seq rest in
      Seq.concat_map (fun x -> Seq.map (fun tl -> x :: tl) tails) (List.to_seq l)

exception Overflow

(* Checked arithmetic on non-negative operands (all counting here is of
   non-negative quantities).  Detection is exact: [a * b] wrapped iff
   dividing back fails, [a + b] wrapped iff the sum went negative. *)
let add_exn a b =
  let s = a + b in
  if s < 0 then raise Overflow;
  s

let mul_exn a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a || p < 0 then raise Overflow;
    p

let choose n k =
  if k < 0 || k > n then 0
  else
    let k = min k (n - k) in
    (* [acc * (n - k + i)] is always divisible by [i] here.  [Overflow]
       fires when an intermediate product leaves the int range — slightly
       conservative (the final binomial is at most a factor [k] below the
       largest intermediate), never wrong. *)
    let rec loop acc i = if i > k then acc else loop (mul_exn acc (n - k + i) / i) (i + 1) in
    loop 1 1

let assignments keys values =
  cartesian (List.map (fun k -> List.map (fun v -> (k, v)) values) keys)

let pow base e =
  if e < 0 then invalid_arg "Combi.pow: negative exponent";
  let rec loop acc e = if e = 0 then acc else loop (mul_exn acc base) (e - 1) in
  loop 1 e
