(** Combinatorial enumeration helpers used by the adversary universes. *)

val cartesian : 'a list list -> 'a list list
(** [cartesian [l1; ...; lk]] is the list of all [k]-tuples (as lists)
    drawing the [i]-th component from [li], in lexicographic order.
    [cartesian []] is [[[]]]. *)

val cartesian_seq : 'a list list -> 'a list Seq.t
(** {!cartesian} as a lazy sequence, in the same lexicographic order, so
    huge products can be consumed without ever being materialized.  The
    sequence is persistent: it may be re-traversed (tails are recomputed). *)

val choose : int -> int -> int
(** Binomial coefficient [choose n k]; 0 when [k < 0] or [k > n]. *)

val assignments : 'a list -> 'b list -> ('a * 'b) list list
(** [assignments keys values] enumerates every total function from [keys]
    to [values], represented as an association list in key order. *)

val pow : int -> int -> int
(** Integer exponentiation.  Raises [Invalid_argument] on negative
    exponents. *)
