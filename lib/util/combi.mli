(** Combinatorial enumeration helpers used by the adversary universes.

    With the processor cap at 4096, the closed-form universe counts leave
    the native int range early (2^62 behaviours at n = 63 crash); every
    counting function here raises {!Overflow} instead of silently wrapping
    to garbage or negative values. *)

exception Overflow
(** Raised by {!add_exn}, {!mul_exn}, {!pow} and {!choose} when a result
    (or, for [choose], an intermediate product) does not fit in a native
    [int]. *)

val cartesian : 'a list list -> 'a list list
(** [cartesian [l1; ...; lk]] is the list of all [k]-tuples (as lists)
    drawing the [i]-th component from [li], in lexicographic order.
    [cartesian []] is [[[]]]. *)

val cartesian_seq : 'a list list -> 'a list Seq.t
(** {!cartesian} as a lazy sequence, in the same lexicographic order, so
    huge products can be consumed without ever being materialized.  The
    sequence is persistent: it may be re-traversed (tails are recomputed). *)

val add_exn : int -> int -> int
(** Checked addition of non-negative ints.  Raises {!Overflow} on wrap. *)

val mul_exn : int -> int -> int
(** Checked multiplication of non-negative ints.  Raises {!Overflow} on
    wrap. *)

val choose : int -> int -> int
(** Binomial coefficient [choose n k]; 0 when [k < 0] or [k > n].  Raises
    {!Overflow} when an intermediate product exceeds [max_int] (slightly
    conservative: the running product stays within a factor [k] of the
    result). *)

val assignments : 'a list -> 'b list -> ('a * 'b) list list
(** [assignments keys values] enumerates every total function from [keys]
    to [values], represented as an association list in key order. *)

val pow : int -> int -> int
(** Integer exponentiation.  Raises [Invalid_argument] on negative
    exponents and {!Overflow} when the result exceeds [max_int]. *)
