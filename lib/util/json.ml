type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let pp_string fmt s =
  let buf = Buffer.create (String.length s + 2) in
  escape buf s;
  Format.fprintf fmt "\"%s\"" (Buffer.contents buf)

let pp_float fmt x =
  if not (Float.is_finite x) then
    (* JSON has no NaN/infinity; null is the conventional stand-in *)
    Format.pp_print_string fmt "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Format.fprintf fmt "%.1f" x
  else
    let s = Printf.sprintf "%.17g" x in
    (* keep the token lexically a float: %.17g renders large integral
       floats (e.g. 2^50) bare, which would reparse as an Int *)
    if String.contains s '.' || String.contains s 'e' then
      Format.pp_print_string fmt s
    else Format.fprintf fmt "%s.0" s

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float x -> pp_float fmt x
  | String s -> pp_string fmt s
  | List [] -> Format.pp_print_string fmt "[]"
  | List items ->
      Format.fprintf fmt "@[<v 2>[@,%a@;<0 -2>]@]"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,") pp)
        items
  | Obj [] -> Format.pp_print_string fmt "{}"
  | Obj fields ->
      let pp_field fmt (k, v) = Format.fprintf fmt "@[<hv 2>%a: %a@]" pp_string k pp v in
      Format.fprintf fmt "@[<v 2>{@,%a@;<0 -2>}@]"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,") pp_field)
        fields

let to_string j = Format.asprintf "%a@." pp j

(* Atomic write: temporary file in the target directory, renamed over the
   destination only once complete, unlinked on failure — an interrupted
   process leaves either the old document or the new one, never a torn
   half-write. *)
let to_file path j =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc (to_string j))
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* --- parsing --- *)

type failure =
  | Unexpected_end
  | Unexpected_char of char
  | Bad_escape
  | Bad_number
  | Too_deep of int
  | Trailing_garbage

type error = { at : int; failure : failure }

let failure_to_string = function
  | Unexpected_end -> "unexpected end of input"
  | Unexpected_char c ->
      if Char.code c < 0x20 || Char.code c >= 0x7f then
        Printf.sprintf "unexpected byte 0x%02x" (Char.code c)
      else Printf.sprintf "unexpected character %C" c
  | Bad_escape -> "malformed string escape"
  | Bad_number -> "malformed number"
  | Too_deep depth -> Printf.sprintf "nesting deeper than %d" depth
  | Trailing_garbage -> "trailing garbage after the value"

let error_to_string { at; failure } =
  Printf.sprintf "%s at byte %d" (failure_to_string failure) at

let default_max_depth = 512

exception Fail of int * failure

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse ?(max_depth = default_max_depth) s =
  let len = String.length s in
  let pos = ref 0 in
  let fail failure = raise (Fail (!pos, failure)) in
  let peek () = if !pos < len then Some (String.unsafe_get s !pos) else None in
  let skip_ws () =
    while
      !pos < len
      && match String.unsafe_get s !pos with
         | ' ' | '\t' | '\n' | '\r' -> true
         | _ -> false
    do
      incr pos
    done
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= len && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else
      match peek () with
      | Some c -> fail (Unexpected_char c)
      | None -> fail Unexpected_end
  in
  let hex4 () =
    if !pos + 4 > len then fail Bad_escape;
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail Bad_escape
    in
    let v =
      (digit s.[!pos] lsl 12)
      lor (digit s.[!pos + 1] lsl 8)
      lor (digit s.[!pos + 2] lsl 4)
      lor digit s.[!pos + 3]
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    (* caller consumed the opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail Unexpected_end;
      match String.unsafe_get s !pos with
      | '"' ->
          incr pos;
          Buffer.contents buf
      | '\\' ->
          incr pos;
          (if !pos >= len then fail Unexpected_end;
           let c = s.[!pos] in
           incr pos;
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
               let cp = hex4 () in
               if cp >= 0xd800 && cp <= 0xdbff then begin
                 (* high surrogate: a low surrogate escape must follow *)
                 if
                   not
                     (!pos + 2 <= len && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
                 then fail Bad_escape;
                 pos := !pos + 2;
                 let lo = hex4 () in
                 if not (lo >= 0xdc00 && lo <= 0xdfff) then fail Bad_escape;
                 add_utf8 buf
                   (0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00))
               end
               else if cp >= 0xdc00 && cp <= 0xdfff then fail Bad_escape
               else add_utf8 buf cp
           | _ -> fail Bad_escape);
          go ()
      | c when Char.code c < 0x20 -> fail (Unexpected_char c)
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      while !pos < len && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      if !pos = d0 then fail Bad_number
    in
    if peek () = Some '-' then incr pos;
    (match peek () with
    | Some '0' -> incr pos (* a leading zero stands alone per the RFC *)
    | Some ('1' .. '9') -> digits ()
    | _ -> fail Bad_number);
    let fractional = peek () = Some '.' in
    if fractional then begin
      incr pos;
      digits ()
    end;
    let exponent = match peek () with Some ('e' | 'E') -> true | _ -> false in
    if exponent then begin
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    end;
    let tok = String.sub s start (!pos - start) in
    if not (fractional || exponent) then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok) (* out of int range *)
    else Float (float_of_string tok)
  in
  let rec value depth =
    if depth > max_depth then fail (Too_deep max_depth);
    skip_ws ();
    match peek () with
    | None -> fail Unexpected_end
    | Some '"' ->
        incr pos;
        String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else
          let rec items acc =
            let v = value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (v :: acc)
            | Some ']' ->
                incr pos;
                List (List.rev (v :: acc))
            | Some c -> fail (Unexpected_char c)
            | None -> fail Unexpected_end
          in
          items []
    | Some '{' ->
        incr pos;
        let field () =
          skip_ws ();
          (match peek () with
          | Some '"' -> incr pos
          | Some c -> fail (Unexpected_char c)
          | None -> fail Unexpected_end);
          let k = parse_string () in
          skip_ws ();
          (match peek () with
          | Some ':' -> incr pos
          | Some c -> fail (Unexpected_char c)
          | None -> fail Unexpected_end);
          (k, value (depth + 1))
        in
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields (kv :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev (kv :: acc))
            | Some c -> fail (Unexpected_char c)
            | None -> fail Unexpected_end
          in
          fields []
    | Some c -> fail (Unexpected_char c)
  in
  match
    let v = value 1 in
    skip_ws ();
    if !pos <> len then fail Trailing_garbage;
    v
  with
  | v -> Ok v
  | exception Fail (at, failure) -> Error { at; failure }
