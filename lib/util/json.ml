type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let pp_string fmt s =
  let buf = Buffer.create (String.length s + 2) in
  escape buf s;
  Format.fprintf fmt "\"%s\"" (Buffer.contents buf)

let pp_float fmt x =
  if not (Float.is_finite x) then
    (* JSON has no NaN/infinity; null is the conventional stand-in *)
    Format.pp_print_string fmt "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Format.fprintf fmt "%.1f" x
  else Format.fprintf fmt "%.17g" x

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float x -> pp_float fmt x
  | String s -> pp_string fmt s
  | List [] -> Format.pp_print_string fmt "[]"
  | List items ->
      Format.fprintf fmt "@[<v 2>[@,%a@;<0 -2>]@]"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,") pp)
        items
  | Obj [] -> Format.pp_print_string fmt "{}"
  | Obj fields ->
      let pp_field fmt (k, v) = Format.fprintf fmt "@[<hv 2>%a: %a@]" pp_string k pp v in
      Format.fprintf fmt "@[<v 2>{@,%a@;<0 -2>}@]"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,") pp_field)
        fields

let to_string j = Format.asprintf "%a@." pp j

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string j))
