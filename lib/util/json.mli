(** A minimal JSON value type and printer, enough for the machine-readable
    surfaces of this repository (metrics snapshots and the benchmark
    artifact [BENCH_*.json]).  Emission only — nothing here parses.

    Strings are escaped per RFC 8259; floats print with enough digits to
    round-trip ([%.17g]) except for integral values, which print as
    [x.0] so consumers can rely on a stable numeric shape. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Pretty-prints with 2-space indentation and a deterministic layout
    (object fields in the order given). *)

val to_string : t -> string
(** [Format.asprintf "%a" pp], with a trailing newline. *)

val to_file : string -> t -> unit
(** Writes [to_string] to a file, truncating it. *)
