(** A minimal JSON value type, printer and parser, enough for the
    machine-readable surfaces of this repository (metrics snapshots, the
    benchmark artifact [BENCH_*.json], and the [eba serve] wire protocol).

    Strings are escaped per RFC 8259; floats print with enough digits to
    round-trip ([%.17g]) except for integral values, which print as
    [x.0] so consumers can rely on a stable numeric shape. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Pretty-prints with 2-space indentation and a deterministic layout
    (object fields in the order given). *)

val to_string : t -> string
(** [Format.asprintf "%a" pp], with a trailing newline. *)

val to_file : string -> t -> unit
(** Writes {!to_string} to a file, truncating it.  The write is atomic:
    the document lands in a temporary file in the same directory which is
    renamed over [path] only once fully written, so an interrupted run
    (SIGINT mid-sweep, crash) never leaves a truncated artifact behind —
    and the temporary is removed if the write itself fails. *)

(** {1 Parsing}

    {!parse} accepts the RFC 8259 grammar, with the deviations below —
    exactly the documents {!pp} emits round-trip ({!parse} ∘ {!to_string}
    is the identity on values with finite floats, which is all the
    emitter can represent):

    - {b Input} is a single JSON text: optional whitespace (space, tab,
      CR, LF), one value, optional whitespace, end of input.  Anything
      after the value is rejected as {!Trailing_garbage} — a frame
      carrying two concatenated documents is an error, never a silent
      truncation.
    - {b Numbers} follow the RFC grammar: an optional minus, an integer
      part with no superfluous leading zero, then an optional [.digits]
      fraction and an optional [e±digits] exponent.  A number with no
      fraction and no exponent that fits in an OCaml [int] parses as
      {!Int}; every other number parses as {!Float} via
      [float_of_string] (so the emitter's [%.17g] renderings round-trip
      exactly).  [NaN]/[Infinity] literals are not part of JSON and are
      rejected (the emitter prints non-finite floats as [null]).
    - {b Strings} are UTF-8; the eight single-character escapes (quote,
      backslash, slash, backspace, form feed, newline, carriage return,
      tab) and [\uXXXX] are decoded, including surrogate pairs.  A lone
      surrogate or malformed [\uXXXX] sequence is a {!Bad_escape}; raw
      control characters below [0x20] must be escaped.
    - {b Objects} preserve field order and keep duplicate keys (the
      emitter is field-order-deterministic, so round-trips are exact).
    - {b Nesting} beyond [max_depth] containers (default
      {!default_max_depth}) fails with {!Too_deep} instead of risking
      stack exhaustion on adversarial input. *)

type failure =
  | Unexpected_end  (** input stopped mid-value *)
  | Unexpected_char of char
  | Bad_escape  (** malformed [\u] sequence, lone surrogate, unknown escape *)
  | Bad_number  (** a number token violating the RFC grammar *)
  | Too_deep of int  (** nesting exceeded the bound (the bound is carried) *)
  | Trailing_garbage  (** a complete value followed by non-whitespace *)

type error = { at : int;  (** byte offset into the input *) failure : failure }

val failure_to_string : failure -> string
val error_to_string : error -> string
(** ["trailing garbage at byte 42"]-style one-liner for error replies. *)

val default_max_depth : int
(** [512]. *)

val parse : ?max_depth:int -> string -> (t, error) result
(** Parse one JSON text per the grammar above.  Never raises. *)
