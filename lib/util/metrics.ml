type mode = Pretty | Json_mode

(* The enabled flag is a plain ref on purpose: it is written before a run
   and only read (racily but benignly) from worker domains, and a plain
   load keeps the disabled path at one memory read. *)
let enabled_flag = ref false
let mode_ref = ref Pretty

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let mode () = !mode_ref
let set_mode m = mode_ref := m

let clock = ref Unix.gettimeofday
let set_clock f = clock := f

type kind = Counter | Gauge | Span

type instrument = {
  i_name : string;
  i_kind : kind;
  i_deterministic : bool;
  count : int Atomic.t;  (* counter/gauge value; span call count *)
  ns : int Atomic.t;  (* spans: accumulated nanoseconds *)
}

(* Registration is rare (module initialization) and guarded; recording
   goes through the returned handle and never touches the table. *)
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let register ?(deterministic = true) kind name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> i
      | None ->
          let i =
            {
              i_name = name;
              i_kind = kind;
              i_deterministic = deterministic;
              count = Atomic.make 0;
              ns = Atomic.make 0;
            }
          in
          Hashtbl.add registry name i;
          i)

type counter = instrument
type gauge = instrument
type span = instrument

let counter ?deterministic name = register ?deterministic Counter name
let gauge ?deterministic name = register ?deterministic Gauge name
let span name = register ~deterministic:false Span name

let add c k = if !enabled_flag then ignore (Atomic.fetch_and_add c.count k : int)
let incr c = add c 1

let record g v =
  if !enabled_flag then begin
    let rec loop () =
      let cur = Atomic.get g.count in
      if v > cur && not (Atomic.compare_and_set g.count cur v) then loop ()
    in
    loop ()
  end

let time sp f =
  if not !enabled_flag then f ()
  else begin
    let t0 = !clock () in
    Fun.protect
      ~finally:(fun () ->
        let dt = !clock () -. t0 in
        ignore (Atomic.fetch_and_add sp.count 1 : int);
        ignore (Atomic.fetch_and_add sp.ns (int_of_float (dt *. 1e9)) : int))
      f
  end

type entry = {
  e_name : string;
  e_kind : kind;
  e_deterministic : bool;
  e_count : int;
  e_seconds : float;
}

let snapshot () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold
        (fun _ i acc ->
          let count = Atomic.get i.count in
          if count = 0 then acc
          else
            {
              e_name = i.i_name;
              e_kind = i.i_kind;
              e_deterministic = i.i_deterministic;
              e_count = count;
              e_seconds = float_of_int (Atomic.get i.ns) /. 1e9;
            }
            :: acc)
        registry [])
  |> List.sort (fun a b -> String.compare a.e_name b.e_name)

let deterministic_counters () =
  snapshot ()
  |> List.filter_map (fun e ->
         if e.e_deterministic && e.e_kind <> Span then Some (e.e_name, e.e_count)
         else None)

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter
        (fun _ i ->
          Atomic.set i.count 0;
          Atomic.set i.ns 0)
        registry)

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Span -> "span"

let pp fmt entries =
  Format.fprintf fmt "@[<v>metrics (%d instruments):@," (List.length entries);
  List.iter
    (fun e ->
      match e.e_kind with
      | Span ->
          Format.fprintf fmt "  %-42s %10d calls %12.3f ms@," e.e_name e.e_count
            (e.e_seconds *. 1e3)
      | Counter | Gauge ->
          Format.fprintf fmt "  %-42s %10d%s@," e.e_name e.e_count
            (if e.e_deterministic then "" else "  (scheduling)"))
    entries;
  Format.fprintf fmt "@]"

let to_json entries =
  Json.Obj
    (List.map
       (fun e ->
         let fields =
           [
             ("kind", Json.String (kind_name e.e_kind));
             ("deterministic", Json.Bool e.e_deterministic);
             ("count", Json.Int e.e_count);
           ]
         in
         let fields =
           if e.e_kind = Span then fields @ [ ("seconds", Json.Float e.e_seconds) ]
           else fields
         in
         (e.e_name, Json.Obj fields))
       entries)

let report fmt () =
  if !enabled_flag then
    match !mode_ref with
    | Pretty -> Format.fprintf fmt "%a@." pp (snapshot ())
    | Json_mode -> Format.fprintf fmt "%a@." Json.pp (to_json (snapshot ()))

let at_exit_registered = ref false

let report_at_exit () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit (fun () -> report Format.err_formatter ())
  end

(* EBA_METRICS: enable (and pick the format) from the environment, so any
   entry point — CLI, bench, examples, tests — can be observed without a
   flag.  Unset, empty and "0" mean disabled. *)
let () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "EBA_METRICS") with
  | None | Some ("" | "0" | "false" | "off") -> ()
  | Some "json" ->
      set_enabled true;
      set_mode Json_mode
  | Some _ ->
      set_enabled true;
      set_mode Pretty
