(** Process-wide observability: named counters, gauges and span timers for
    the sweep/model-checking engine.

    Design constraints, in order:

    - {b Near-zero overhead when disabled.}  Every recording entry point
      checks one global flag and returns; instrument sites hold their
      handle statically (module-initialization time), so the hot path
      never hashes a name.  Spans check the flag once per span, not per
      measurement.
    - {b Domain-safe.}  Counters are atomics; the engine bumps them from
      worker domains during parallel sweeps.  Counter totals that describe
      {e work done} (runs simulated, views interned, fixpoint iterations…)
      are bit-identical for every job count; scheduling counters (chunks
      per domain, domains spawned) are registered as
      [~deterministic:false] and excluded from {!deterministic_counters}.
    - {b Pluggable clock.}  The default clock is [Unix.gettimeofday]
      (wall, not guaranteed monotonic).  Binaries that link bechamel
      install its CLOCK_MONOTONIC stub via {!set_clock}; the core library
      stays free of the C-stub dependency.

    Enabling: [set_enabled true] programmatically, [--metrics[=json|pretty]]
    on every [eba] subcommand, or the [EBA_METRICS] environment variable
    ([1]/[pretty] or [json]) which is read once at module initialization. *)

type mode = Pretty | Json_mode

val enabled : unit -> bool
val set_enabled : bool -> unit

val mode : unit -> mode
val set_mode : mode -> unit

val set_clock : (unit -> float) -> unit
(** Install a clock returning seconds from an arbitrary epoch.  Affects
    spans only. *)

(** {1 Instruments}

    [counter]/[gauge]/[span] register on first use and return the existing
    instrument when called again with the same name (the kind and
    determinism flag of the first registration win).  Obtain handles at
    module-initialization time; recording through a handle is wait-free. *)

type counter

val counter : ?deterministic:bool -> string -> counter
(** A monotone sum.  [deterministic] (default [true]) declares the total
    independent of the parallel job count. *)

val add : counter -> int -> unit
val incr : counter -> unit

type gauge

val gauge : ?deterministic:bool -> string -> gauge
(** A high-water mark: {!record} keeps the maximum value seen. *)

val record : gauge -> int -> unit

type span

val span : string -> span
(** A timer accumulating call count and total elapsed time.  Timings are
    never deterministic. *)

val time : span -> (unit -> 'a) -> 'a
(** Runs the thunk, attributing its elapsed time to the span (also on
    exceptions).  When disabled this is one flag check plus the call. *)

(** {1 Reading} *)

type kind = Counter | Gauge | Span

type entry = {
  e_name : string;
  e_kind : kind;
  e_deterministic : bool;
  e_count : int;  (** counter/gauge value; for spans, the number of calls *)
  e_seconds : float;  (** spans only; 0 otherwise *)
}

val snapshot : unit -> entry list
(** Every registered instrument with a nonzero count, sorted by name. *)

val deterministic_counters : unit -> (string * int) list
(** Name-sorted [(name, value)] for deterministic counters and gauges
    only — the comparable cross-job-count signature. *)

val reset : unit -> unit
(** Zeroes every instrument (registrations survive). *)

val pp : Format.formatter -> entry list -> unit

val to_json : entry list -> Json.t
(** [{"name": {"kind": ..., "count": ..., "seconds": ...}, ...}] — an
    object keyed by instrument name, schema-stable for diffing. *)

val report : Format.formatter -> unit -> unit
(** Prints the current snapshot in the configured {!mode}; does nothing
    when disabled. *)

val report_at_exit : unit -> unit
(** Registers (once) an [at_exit] hook printing {!report} to stderr. *)
