(* A small chunked domain pool for the sweep engine.

   Work items are pulled in chunks from a shared cursor under a mutex, each
   worker folds into its own accumulator, and the per-domain accumulators
   are merged in a fixed (domain-index) order once every worker has joined.
   All the merges used by the engine combine exact integer counters, so an
   N-domain run produces bit-identical results to a sequential one; with an
   effective job count of 1 no domain is ever spawned and the fold runs in
   the calling domain, so sequential behaviour is exactly the old code. *)

let available () = Domain.recommended_domain_count ()

(* Scheduling observability: totals depend on the job count and chunk
   geometry, so none of these are deterministic across [--jobs] values. *)
let m_spawned = Metrics.counter ~deterministic:false "parallel.domains_spawned"
let m_chunks = Metrics.counter ~deterministic:false "parallel.chunks"
let m_chunk_max = Metrics.gauge ~deterministic:false "parallel.max_chunks_per_domain"

let note_chunks per_domain =
  if Metrics.enabled () then begin
    Metrics.add m_chunks per_domain;
    Metrics.record m_chunk_max per_domain
  end

let env_jobs () =
  match Sys.getenv_opt "EBA_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 0 -> Some (available ())
      | Some j when j >= 1 -> Some j
      | Some _ | None ->
          invalid_arg (Printf.sprintf "EBA_DOMAINS: bad job count %S" s))

(* [None] = no programmatic override; the environment (or 1) decides. *)
let override : int option Atomic.t = Atomic.make None

let set_jobs j =
  if j < 0 then invalid_arg "Parallel.set_jobs: negative job count";
  Atomic.set override (if j = 0 then None else Some j)

let jobs () =
  match Atomic.get override with
  | Some j -> j
  | None -> ( match env_jobs () with Some j -> j | None -> 1)

let effective = function Some j when j >= 1 -> j | Some _ | None -> jobs ()

let with_jobs j f =
  let saved = Atomic.get override in
  set_jobs j;
  Fun.protect ~finally:(fun () -> Atomic.set override saved) f

(* Run [main] in this domain and [n-1] copies in fresh domains; join them
   all even when one raises, then re-raise the first failure. *)
let run_workers n worker =
  let failure : exn Atomic.t = Atomic.make Not_found in
  let failed = Atomic.make false in
  let guarded () =
    try worker ()
    with e ->
      if not (Atomic.exchange failed true) then Atomic.set failure e;
      None
  in
  Metrics.add m_spawned (n - 1);
  let domains = Array.init (n - 1) (fun _ -> Domain.spawn guarded) in
  let first = guarded () in
  let rest = Array.map Domain.join domains in
  if Atomic.get failed then raise (Atomic.get failure);
  Array.to_list (Array.append [| first |] rest) |> List.filter_map Fun.id

let parallel_ranges ?jobs n f =
  let j = min (effective jobs) n in
  if j <= 1 then begin
    if n > 0 then f 0 n
  end
  else begin
    let chunk = max 1 (n / (j * 8)) in
    let next = Atomic.make 0 in
    let worker () =
      let mine = ref 0 in
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          Stdlib.incr mine;
          f start (min n (start + chunk));
          loop ()
        end
      in
      loop ();
      note_chunks !mine;
      None
    in
    ignore (run_workers j worker : unit list)
  end

let parallel_for ?jobs n f =
  parallel_ranges ?jobs n (fun lo hi ->
      for i = lo to hi - 1 do
        f i
      done)

let default_chunk = 64

let map_reduce_seq ?jobs ?(chunk = default_chunk) ~init ~fold ~merge seq =
  if chunk < 1 then invalid_arg "Parallel.map_reduce_seq: chunk must be >= 1";
  let j = effective jobs in
  if j <= 1 then begin
    let acc = init () in
    Seq.iter (fold acc) seq;
    acc
  end
  else begin
    let lock = Mutex.create () in
    let cursor = ref seq in
    let next_chunk () =
      Mutex.protect lock (fun () ->
          let rec take k s acc =
            if k = 0 then (acc, s)
            else
              match s () with
              | Seq.Nil -> (acc, Seq.empty)
              | Seq.Cons (x, tl) -> take (k - 1) tl (x :: acc)
          in
          let items, rest = take chunk !cursor [] in
          cursor := rest;
          List.rev items)
    in
    let worker () =
      let acc = init () in
      let mine = ref 0 in
      let rec loop () =
        match next_chunk () with
        | [] ->
            note_chunks !mine;
            Some acc
        | items ->
            Stdlib.incr mine;
            List.iter (fold acc) items;
            loop ()
      in
      loop ()
    in
    match run_workers j worker with
    | [] -> init ()
    | acc :: rest ->
        List.iter (merge acc) rest;
        acc
  end

let map_reduce_list ?jobs ?chunk ~init ~fold ~merge l =
  map_reduce_seq ?jobs ?chunk ~init ~fold ~merge (List.to_seq l)
