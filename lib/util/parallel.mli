(** A chunked domain pool for data-parallel sweeps on OCaml 5.

    The exhaustive experiments are embarrassingly parallel folds over very
    large enumerations; this module runs such folds over [jobs] domains with
    per-domain accumulators merged in a fixed order.  Every combining
    operation the engine uses is an exact integer sum or max, so results are
    bit-identical for every job count, and when the effective job count is 1
    nothing is spawned at all — the fold runs sequentially in the caller.

    The job count is resolved, in order of precedence, from the [?jobs]
    argument of a call, the last {!set_jobs} override (the [--jobs] flag),
    the [EBA_DOMAINS] environment variable ([0] meaning {!available}), and
    finally a default of 1. *)

val available : unit -> int
(** Domains the hardware can usefully run ({!Domain.recommended_domain_count}). *)

val jobs : unit -> int
(** The currently effective job count. *)

val set_jobs : int -> unit
(** Override the job count process-wide; [0] clears the override so
    [EBA_DOMAINS] (or the default of 1) applies again.  Raises
    [Invalid_argument] on negative counts. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs j f] runs [f] with the override set to [j], restoring the
    previous override afterwards (also on exceptions). *)

val parallel_for : ?jobs:int -> int -> (int -> unit) -> unit
(** [parallel_for n f] applies [f] to every index in [0 .. n-1], in chunks
    stolen from a shared counter.  [f] must be safe to call concurrently on
    distinct indices (the engine's uses write to disjoint array slots of a
    shared buffer).  Sequential when the effective job count is 1. *)

val parallel_ranges : ?jobs:int -> int -> (int -> int -> unit) -> unit
(** [parallel_ranges n f] covers [0 .. n-1] with disjoint half-open ranges,
    calling [f lo hi] for each — the chunked scheduler behind
    {!parallel_for}, exposed so callers can hoist per-chunk work (batched
    metric updates, scratch buffers) out of the per-index loop.  With an
    effective job count of 1 it makes the single call [f 0 n]. *)

val map_reduce_seq :
  ?jobs:int ->
  ?chunk:int ->
  init:(unit -> 'acc) ->
  fold:('acc -> 'a -> unit) ->
  merge:('acc -> 'acc -> unit) ->
  'a Seq.t ->
  'acc
(** [map_reduce_seq ~init ~fold ~merge seq] folds every element of [seq]
    into an accumulator.  Each worker owns a private accumulator from
    [init]; elements are pulled from [seq] in chunks of [?chunk] (default
    64) under a lock, so the sequence itself is only ever forced by one
    domain at a time; [merge acc other] folds a worker's accumulator into
    the first one, called in a fixed order after all workers join.
    [fold]/[merge] mutate their first argument in place. *)

val map_reduce_list :
  ?jobs:int ->
  ?chunk:int ->
  init:(unit -> 'acc) ->
  fold:('acc -> 'a -> unit) ->
  merge:('acc -> 'acc -> unit) ->
  'a list ->
  'acc
(** {!map_reduce_seq} over a materialized work list. *)
