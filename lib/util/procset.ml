module type S = sig
  type t

  val max_width : int
  val empty : t
  val full : int -> t
  val singleton : int -> t
  val add : int -> t -> t
  val remove : int -> t -> t
  val mem : int -> t -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val is_empty : t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val subset : t -> t -> bool
  val disjoint : t -> t -> bool
  val cardinal : t -> int
  val of_list : int list -> t
  val to_list : t -> int list
  val iter : (int -> unit) -> t -> unit
  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
  val for_all : (int -> bool) -> t -> bool
  val exists : (int -> bool) -> t -> bool
  val filter : (int -> bool) -> t -> t
  val choose : t -> int option
  val subsets : int -> t list
  val subsets_of : t -> t list
  val subsets_upto : int -> int -> t list
  val pp : Format.formatter -> t -> unit
end

module Word : S with type t = Bitset.t = Bitset

module Wide : S = struct
  (* Limbs of [wbits] = Bitset.max_width bits each, so a one-limb Wide set
     carries exactly a Word set's bit pattern.  Storage is a [Bytes.t] of
     8 bytes per limb (native-endian int64), read and written through the
     compiler's unaligned 64-bit primitives — one load per limb, no bounds
     check, no per-limb boxing — sized so the protocol hot loops (union,
     inter, subset over n=256 sets) touch four cache-resident words.
     Values stay persistent: a buffer is never mutated after the
     constructing operation returns.  Canonical form: no trailing zero
     limbs ([empty] has length 0); every operation restores it, so [equal]
     is [Bytes.equal] and [compare] orders by numeric bit-pattern value
     (length first, then limbs most-significant down), agreeing with
     [Word.compare] on one-limb sets. *)
  type t = Bytes.t

  external unsafe_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
  external unsafe_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

  let wbits = Bitset.max_width

  (* limb values use 62 bits, so [Int64.to_int] is exact *)
  let get s w = Int64.to_int (unsafe_get64 s (w lsl 3))
  let set s w v = unsafe_set64 s (w lsl 3) (Int64.of_int v)
  let limbs s = Bytes.length s lsr 3
  let alloc limbs = Bytes.make (limbs lsl 3) '\000'

  (* all [wbits] bits set; [max_int] = 2^62 - 1 exactly, no shift needed *)
  let limb_full = max_int
  let max_width = max_int
  let empty = Bytes.create 0

  let check_index i =
    if i < 0 then invalid_arg (Printf.sprintf "Procset.Wide: negative index %d" i)

  let trim a =
    let len = ref (limbs a) in
    while !len > 0 && get a (!len - 1) = 0 do
      decr len
    done;
    if !len = limbs a then a else Bytes.sub a 0 (!len lsl 3)

  let full n =
    if n < 0 then invalid_arg (Printf.sprintf "Procset.Wide: width %d out of range" n);
    if n = 0 then empty
    else begin
      let nl = ((n - 1) / wbits) + 1 in
      let a = alloc nl in
      for w = 0 to nl - 1 do
        let bits = min wbits (n - (w * wbits)) in
        set a w (limb_full lsr (wbits - bits))
      done;
      a
    end

  let singleton i =
    check_index i;
    let w = i / wbits in
    let a = alloc (w + 1) in
    set a w (1 lsl (i mod wbits));
    a

  let mem i s =
    i >= 0
    &&
    let w = i / wbits in
    w < limbs s && get s w land (1 lsl (i mod wbits)) <> 0

  let add i s =
    check_index i;
    if mem i s then s
    else begin
      let w = i / wbits in
      let a = alloc (max (limbs s) (w + 1)) in
      Bytes.blit s 0 a 0 (Bytes.length s);
      set a w (get a w lor (1 lsl (i mod wbits)));
      a
    end

  let remove i s =
    if not (mem i s) then s
    else begin
      let a = Bytes.copy s in
      let w = i / wbits in
      set a w (get a w land lnot (1 lsl (i mod wbits)));
      trim a
    end

  let union a b =
    let long, short = if limbs a >= limbs b then (a, b) else (b, a) in
    let ls = limbs short in
    if ls = 0 then long
    else begin
      (* [long]'s top limb is nonzero (canonical), so the result is too *)
      let r = Bytes.copy long in
      for w = 0 to ls - 1 do
        set r w (get r w lor get short w)
      done;
      r
    end

  let inter a b =
    let len = min (limbs a) (limbs b) in
    let r = alloc len in
    for w = 0 to len - 1 do
      set r w (get a w land get b w)
    done;
    trim r

  let diff a b =
    let la = limbs a and lb = limbs b in
    let r = alloc la in
    for w = 0 to la - 1 do
      set r w (get a w land lnot (if w < lb then get b w else 0))
    done;
    trim r

  let is_empty s = Bytes.length s = 0
  let equal a b = Bytes.equal a b

  let compare a b =
    let la = limbs a and lb = limbs b in
    if la <> lb then Stdlib.compare la lb
    else
      let rec cmp w =
        if w < 0 then 0
        else
          let c = Stdlib.compare (get a w) (get b w) in
          if c <> 0 then c else cmp (w - 1)
      in
      cmp (la - 1)

  let subset a b =
    let la = limbs a and lb = limbs b in
    let rec ok w =
      w >= la
      || (get a w land lnot (if w < lb then get b w else 0) = 0 && ok (w + 1))
    in
    ok 0

  let disjoint a b =
    let len = min (limbs a) (limbs b) in
    let rec ok w = w >= len || (get a w land get b w = 0 && ok (w + 1)) in
    ok 0

  let popcount x =
    let rec count acc x = if x = 0 then acc else count (acc + 1) (x land (x - 1)) in
    count 0 x

  let cardinal s =
    let acc = ref 0 in
    for w = 0 to limbs s - 1 do
      acc := !acc + popcount (get s w)
    done;
    !acc

  let fold f s init =
    let acc = ref init in
    for w = 0 to limbs s - 1 do
      let base = w * wbits in
      let rec bits i x =
        if x <> 0 then begin
          if x land 1 <> 0 then acc := f (base + i) !acc;
          bits (i + 1) (x lsr 1)
        end
      in
      bits 0 (get s w)
    done;
    !acc

  let of_list l = List.fold_left (fun s i -> add i s) empty l
  let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])
  let iter f s = fold (fun i () -> f i) s ()
  let for_all p s = fold (fun i acc -> acc && p i) s true
  let exists p s = fold (fun i acc -> acc || p i) s false
  let filter p s = fold (fun i acc -> if p i then add i acc else acc) s empty

  let choose s =
    if is_empty s then None
    else begin
      let w = ref 0 in
      while get s !w = 0 do
        incr w
      done;
      let rec first i x = if x land 1 <> 0 then i else first (i + 1) (x lsr 1) in
      Some ((!w * wbits) + first 0 (get s !w))
    end

  (* Counting in binary over the member positions (lowest member =
     least-significant digit) is exactly the increasing-bit-pattern order
     Word's [(sub - mask) land mask] successor trick produces. *)
  let subsets_of s =
    let members = Array.of_list (to_list s) in
    let k = Array.length members in
    if k > wbits then
      invalid_arg (Printf.sprintf "Procset.Wide.subsets_of: %d members" k);
    let of_counter c =
      let r = ref empty in
      for j = 0 to k - 1 do
        if c land (1 lsl j) <> 0 then r := add members.(j) !r
      done;
      !r
    in
    List.init (1 lsl k) of_counter

  let subsets n =
    if n < 0 || n > wbits then
      invalid_arg (Printf.sprintf "Procset.Wide.subsets: width %d out of range" n);
    subsets_of (full n)

  (* [c]-element subsets of [{0..limit-1}] in colexicographic order (sort
     by largest element, then recurse) — for sets of equal cardinality
     this coincides with increasing bit-pattern order, matching Word's
     [subsets_upto]. *)
  let rec combs c limit =
    if c = 0 then [ empty ]
    else
      List.concat_map
        (fun m -> List.map (add m) (combs (c - 1) m))
        (List.init (limit - c + 1) (fun i -> i + c - 1))

  let subsets_upto n k =
    if n < 0 then invalid_arg "Procset.Wide.subsets_upto";
    List.concat_map (fun c -> combs c n) (List.init (min k n + 1) Fun.id)

  let pp fmt s =
    Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (to_list s)))
end
