(** Processor-set representations behind one signature.

    The model-checking core packs processor sets into single-word
    {!Bitset}s ([max_width = 62]) — the right call on the enumerable
    universes where sets are hash keys and hot-loop operands.  The
    operational protocols (P0opt, P0opt+, Chain0), however, only need the
    set {e algebra}, and the network simulator runs them far beyond 62
    processors.  This module abstracts exactly the {!Bitset} operations
    those protocols use into a signature {!S} with two implementations:

    - {!Word} — {!Bitset} itself: the int-backed fast path, widths ≤ 62;
    - {!Wide} — a canonical [Bytes.t] of 62-bit limbs (8 native-endian
      bytes each, accessed through the compiler's unchecked 64-bit
      load/store primitives): any width, flat unboxed storage.

    The two agree observationally wherever both are defined: for every
    operation and every width ≤ 62, [Word] and [Wide] produce equal sets
    (element-for-element, including enumeration order of [to_list],
    [fold] and [subsets_of]) — property-tested in [test_procset.ml].
    Protocols functorized over {!S} therefore make bit-identical decisions
    under either representation; [P0opt.for_params] and friends pick
    [Word] at [n ≤ Bitset.max_width] and [Wide] beyond, so small-n runs
    keep the single-word hot path. *)

module type S = sig
  type t
  (** A set of small non-negative integers. *)

  val max_width : int
  (** Largest supported element count (62 for {!Word}, effectively
      unbounded for {!Wide}). *)

  val empty : t

  val full : int -> t
  (** [full n] is [{0, ..., n-1}].  Raises [Invalid_argument] if [n] is
      negative or exceeds {!max_width}. *)

  val singleton : int -> t
  val add : int -> t -> t
  val remove : int -> t -> t
  val mem : int -> t -> bool
  val union : t -> t -> t
  val inter : t -> t -> t

  val diff : t -> t -> t
  (** [diff a b] is [a \ b]. *)

  val is_empty : t -> bool
  val equal : t -> t -> bool

  val compare : t -> t -> int
  (** A total order.  Both implementations order by the numeric value of
      the bit pattern, so [Word.compare] and [Wide.compare] agree on every
      pair of sets with elements below 62. *)

  val subset : t -> t -> bool
  (** [subset a b] is true iff every element of [a] is in [b]. *)

  val disjoint : t -> t -> bool
  val cardinal : t -> int
  val of_list : int list -> t

  val to_list : t -> int list
  (** Elements in increasing order. *)

  val iter : (int -> unit) -> t -> unit
  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
  val for_all : (int -> bool) -> t -> bool
  val exists : (int -> bool) -> t -> bool
  val filter : (int -> bool) -> t -> t

  val choose : t -> int option
  (** Smallest element, if any. *)

  val subsets : int -> t list
  (** [subsets n] enumerates all [2^n] subsets of [full n], in increasing
      bit-pattern order.  Raises [Invalid_argument] when [2^n] subsets
      cannot be enumerated ([n > 62]). *)

  val subsets_of : t -> t list
  (** [subsets_of s] enumerates all [2^(cardinal s)] subsets of [s], in
      increasing bit-pattern order (equivalently: counting in binary over
      the member positions, lowest member = least-significant digit).
      Raises [Invalid_argument] if [cardinal s > 62]. *)

  val subsets_upto : int -> int -> t list
  (** [subsets_upto n k] enumerates the subsets of [full n] of cardinality
      at most [k], smallest cardinality first, colexicographic (=
      increasing bit-pattern) order within each cardinality. *)

  val pp : Format.formatter -> t -> unit
  (** Prints as [{0,2,3}]. *)
end

module Word : S with type t = Bitset.t
(** The single-word fast path: {!Bitset} re-exported at signature {!S}. *)

module Wide : S
(** The wide path: a canonical array of 62-bit limbs (no trailing zero
    limbs, so structural equality is set equality).  Widths are bounded
    only by memory; [full], [add], [mem] & co. accept any non-negative
    index.  [subsets]/[subsets_of] still refuse to enumerate more than
    [2^62] subsets. *)
