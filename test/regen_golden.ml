(* Regenerates the golden experiment verdicts:
     dune exec test/regen_golden.exe > test/golden/experiments.expected *)

let () =
  Format.printf "%a" Eba_harness.Experiments.pp_verdicts
    (Eba_harness.Experiments.all ~scale:Eba_harness.Experiments.Small ())
