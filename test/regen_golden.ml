(* Regenerates the committed golden files:

     dune exec test/regen_golden.exe                    > test/golden/experiments.expected
     dune exec test/regen_golden.exe -- probcheck-small > test/golden/probcheck_small.expected
     dune exec test/regen_golden.exe -- probcheck-n64   > test/golden/probcheck_n64.expected *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "experiments" in
  match which with
  | "experiments" ->
      Format.printf "%a" Eba_harness.Experiments.pp_verdicts
        (Eba_harness.Experiments.all ~scale:Eba_harness.Experiments.Small ())
  | "probcheck-small" | "probcheck-n64" -> (
      let name = String.sub which 10 (String.length which - 10) in
      match Eba_harness.Probcheck_cases.by_name name with
      | Some report ->
          print_string (Eba.Json.to_string (Eba.Prob.Report.to_json report))
      | None -> assert false)
  | other ->
      Printf.eprintf
        "regen_golden: unknown target %S (expected experiments, \
         probcheck-small or probcheck-n64)\n"
        other;
      exit 2
