module B = Eba.Bitset
open Helpers

(* model-based checking against sorted int lists *)
let sorted_unique l = List.sort_uniq Stdlib.compare l

let gen_elems = QCheck2.Gen.(list_size (int_bound 12) (int_bound 20))

let unit_tests =
  [
    test "empty is empty" (fun () ->
        check "empty" true (B.is_empty B.empty);
        check_int "card" 0 (B.cardinal B.empty));
    test "full n" (fun () ->
        check_int "card" 5 (B.cardinal (B.full 5));
        check "mem 4" true (B.mem 4 (B.full 5));
        check "mem 5" false (B.mem 5 (B.full 5)));
    test "add/remove/mem" (fun () ->
        let s = B.add 3 (B.add 1 B.empty) in
        check "mem 1" true (B.mem 1 s);
        check "mem 2" false (B.mem 2 s);
        check "removed" false (B.mem 3 (B.remove 3 s)));
    test "to_list sorted" (fun () ->
        Alcotest.(check (list int)) "order" [ 0; 2; 7 ] (B.to_list (B.of_list [ 7; 0; 2 ])));
    test "subsets count" (fun () ->
        check_int "2^4" 16 (List.length (B.subsets 4)));
    test "subsets_upto counts" (fun () ->
        check_int "<=1 of 4" 5 (List.length (B.subsets_upto 4 1));
        check_int "<=2 of 4" 11 (List.length (B.subsets_upto 4 2)));
    test "subsets_upto ordered by cardinality" (fun () ->
        let cards = List.map B.cardinal (B.subsets_upto 5 3) in
        check "ascending" true (List.sort Stdlib.compare cards = cards));
    test "subsets_of counts and membership" (fun () ->
        let mask = B.of_list [ 1; 3; 4 ] in
        let subs = B.subsets_of mask in
        check_int "2^3" 8 (List.length subs);
        check "all subsets" true (List.for_all (fun s -> B.subset s mask) subs);
        check "distinct" true
          (List.length (List.sort_uniq B.compare subs) = List.length subs);
        Alcotest.(check (list int)) "empty mask" [ 0 ]
          (List.map B.to_int (B.subsets_of B.empty)));
    test "subsets_of ascending, agrees with filtered subsets" (fun () ->
        let mask = B.of_list [ 0; 2; 3 ] in
        let subs = B.subsets_of mask in
        check "ascending" true (List.sort B.compare subs = subs);
        check "same as filter" true
          (subs = List.filter (fun s -> B.subset s mask) (B.subsets 4)));
    test "choose smallest" (fun () ->
        Alcotest.(check (option int)) "min" (Some 2) (B.choose (B.of_list [ 5; 2; 9 ]));
        Alcotest.(check (option int)) "none" None (B.choose B.empty));
    test "full 0 and width guard" (fun () ->
        check "full0" true (B.is_empty (B.full 0));
        Alcotest.check_raises "neg" (Invalid_argument "Bitset: width -1 out of range")
          (fun () -> ignore (B.full (-1))));
  ]

let prop_tests =
  [
    qtest "union = list union" gen_elems (fun l ->
        let a = List.filteri (fun i _ -> i mod 2 = 0) l and b = List.filteri (fun i _ -> i mod 2 = 1) l in
        B.to_list (B.union (B.of_list a) (B.of_list b)) = sorted_unique (a @ b));
    qtest "inter = list inter" gen_elems (fun l ->
        let a = List.filteri (fun i _ -> i mod 2 = 0) l and b = List.filteri (fun i _ -> i mod 2 = 1) l in
        B.to_list (B.inter (B.of_list a) (B.of_list b))
        = sorted_unique (List.filter (fun x -> List.mem x b) a));
    qtest "diff = list diff" gen_elems (fun l ->
        let a = List.filteri (fun i _ -> i mod 2 = 0) l and b = List.filteri (fun i _ -> i mod 2 = 1) l in
        B.to_list (B.diff (B.of_list a) (B.of_list b))
        = sorted_unique (List.filter (fun x -> not (List.mem x b)) a));
    qtest "cardinal = length of to_list" gen_elems (fun l ->
        let s = B.of_list l in
        B.cardinal s = List.length (B.to_list s));
    qtest "subset iff diff empty" gen_elems (fun l ->
        let a = List.filteri (fun i _ -> i mod 2 = 0) l and b = List.filteri (fun i _ -> i mod 2 = 1) l in
        let sa = B.of_list a and sb = B.of_list b in
        B.subset sa sb = B.is_empty (B.diff sa sb));
    qtest "fold visits each member once" gen_elems (fun l ->
        let s = B.of_list l in
        B.fold (fun _ acc -> acc + 1) s 0 = B.cardinal s);
    qtest "filter keeps exactly the predicate" gen_elems (fun l ->
        let s = B.of_list l in
        let even x = x mod 2 = 0 in
        B.to_list (B.filter even s) = List.filter even (B.to_list s));
  ]

let suite = ("bitset", unit_tests @ prop_tests)
