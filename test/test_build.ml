(* The shared-prefix model builder (and its supporting machinery): the
   prefix forest enumerates exactly the canonical pattern universe, the
   shared builder is bit-identical to the naive one — same runs, same view
   ids, same CSR cells — for every flavour, mode and job count, while
   provably doing less interning work, and the hashed run index agrees
   with a linear scan. *)

module V = Eba.View
module M = Eba.Model
module Cfg = Eba.Config
module Pat = Eba.Pattern
module U = Eba.Universe
module Params = Eba.Params
module Val = Eba.Value
module B = Eba.Bitset
module Metrics = Eba.Metrics
module Parallel = Eba.Parallel
open Helpers

(* Bit-identical equivalence, down to view-store metadata: the shared
   builder's contract is that nothing observable distinguishes it from the
   naive builder. *)
let check_models_equal label (a : M.t) (b : M.t) =
  let ck what ok = check (label ^ ": " ^ what) true ok in
  check_int (label ^ ": nruns") (M.nruns a) (M.nruns b);
  check_int (label ^ ": views") (V.size a.M.store) (V.size b.M.store);
  Array.iteri
    (fun idx ra ->
      let rb = b.M.runs.(idx) in
      check_int (label ^ ": run index") ra.M.index rb.M.index;
      ck "run config" (Cfg.equal ra.M.config rb.M.config);
      ck "run pattern" (Pat.equal ra.M.pattern rb.M.pattern);
      ck "run faulty" (B.equal ra.M.faulty rb.M.faulty);
      ck "run views" (ra.M.views = rb.M.views))
    a.M.runs;
  let sa = a.M.store and sb = b.M.store in
  for v = 0 to V.size sa - 1 do
    check_int (label ^ ": owner") (V.owner sa v) (V.owner sb v);
    check_int (label ^ ": time") (V.time sa v) (V.time sb v);
    ck "init" (Val.equal (V.init_value sa v) (V.init_value sb v));
    ck "prev" (V.prev sa v = V.prev sb v);
    ck "heard" (B.equal (V.heard_from sa v) (V.heard_from sb v));
    ck "knows_zero" (V.knows_zero sa v = V.knows_zero sb v);
    for j = 0 to M.n a - 1 do
      ck "received" (V.received sa v j = V.received sb v j)
    done
  done;
  ck "cell_off" (a.M.cell_off = b.M.cell_off);
  ck "cell_ids" (a.M.cell_ids = b.M.cell_ids)

let scenario_gen =
  QCheck2.Gen.(
    let* mode = oneofl [ Params.Crash; Params.Omission; Params.General_omission ] in
    let* flavour = oneofl [ U.Exhaustive; U.Sparse ] in
    let* n = int_range 2 4 in
    let* t = int_range 0 2 in
    let* horizon = int_range 1 3 in
    return (mode, flavour, n, t, horizon))

let scenario_print (mode, flavour, n, t, horizon) =
  Printf.sprintf "mode=%s flavour=%s n=%d t=%d T=%d"
    (match mode with
    | Params.Crash -> "crash"
    | Params.Omission -> "omission"
    | Params.General_omission -> "general")
    (match flavour with U.Exhaustive -> "exhaustive" | U.Sparse -> "sparse")
    n t horizon

let equivalence_tests =
  [
    qtest ~count:30 "shared builder is bit-identical to naive" scenario_gen
      (fun ((mode, flavour, n, t, horizon) as sc) ->
        QCheck2.assume (t < n);
        let params = Params.make ~n ~t ~horizon ~mode in
        QCheck2.assume (U.count ~flavour params * (1 lsl n) <= 6000);
        let naive = M.build ~flavour ~builder:M.Naive params in
        (* jobs=1 takes the sequential trie builder, jobs=4 the
           shard-and-merge one; both must be indistinguishable from naive *)
        let shared =
          Parallel.with_jobs 1 (fun () -> M.build ~flavour ~builder:M.Shared params)
        in
        let sharded =
          Parallel.with_jobs 4 (fun () -> M.build ~flavour ~builder:M.Shared params)
        in
        check_models_equal (scenario_print sc) naive shared;
        check_models_equal (scenario_print sc ^ " [jobs=4]") naive sharded;
        true);
    test "shared build is bit-identical for jobs=1 and jobs=4" (fun () ->
        List.iter
          (fun (label, fx) ->
            let m1 =
              Parallel.with_jobs 1 (fun () -> M.build ~builder:M.Shared fx.params)
            in
            let m4 =
              Parallel.with_jobs 4 (fun () -> M.build ~builder:M.Shared fx.params)
            in
            check_models_equal label m1 m4)
          small_fixtures);
    test "restricted configs produce the same model under both builders" (fun () ->
        let params = crash_3_1_3.params in
        let configs = [ Cfg.of_bits ~n:3 0b000; Cfg.of_bits ~n:3 0b101 ] in
        let naive = M.build ~configs ~builder:M.Naive params in
        let shared = M.build ~configs ~builder:M.Shared params in
        check_models_equal "restricted configs" naive shared);
  ]

let forest_tests =
  [
    test "prefix forest leaves are a bijection onto patterns_seq" (fun () ->
        List.iter
          (fun (label, params, flavour) ->
            let expected = Array.of_list (U.patterns ~flavour params) in
            let count, roots = U.prefix_forest ~flavour params in
            check_int (label ^ ": count") (Array.length expected) count;
            let seen = Array.make count false in
            let rec walk node =
              List.iter
                (fun (idx, pat) ->
                  check (label ^ ": index fresh") false seen.(idx);
                  seen.(idx) <- true;
                  check (label ^ ": pattern at canonical index") true
                    (Pat.equal pat expected.(idx)))
                (node.U.pn_patterns ());
              List.iter walk (node.U.pn_children ())
            in
            List.iter (fun (_set, root) -> walk root) roots;
            check (label ^ ": all indices emitted") true (Array.for_all Fun.id seen))
          [
            ("crash", crash_3_1_3.params, U.Exhaustive);
            ("omission", omission_3_1_2.params, U.Exhaustive);
            ("sparse omission", omission_4_2_2.params, U.Sparse);
          ]);
    test "prefix sharing is strict and accounted exactly" (fun () ->
        let was = Metrics.enabled () in
        Metrics.set_enabled true;
        Metrics.reset ();
        Fun.protect
          ~finally:(fun () ->
            Metrics.set_enabled was;
            Metrics.reset ())
          (fun () ->
            let params = crash_3_1_3.params in
            let (_ : M.t) = M.build ~builder:M.Shared params in
            let det = Metrics.deterministic_counters () in
            let get name = List.assoc name det in
            let tree_nodes = get "model.tree_nodes" in
            let hits = get "model.prefix_hits" in
            let npatterns = U.count params in
            let naive_nodes = npatterns * 3 * 8 * 3 in
            let shared_nodes = tree_nodes * 8 * 3 in
            check "some prefixes were shared" true (hits > 0);
            check_int "shared work + hits = naive work" naive_nodes
              (shared_nodes + hits)));
  ]

let cell_tests =
  [
    test "CSR accessors agree with the materialized cell" (fun () ->
        let m = model crash_3_1_3 in
        let store = m.M.store in
        for v = 0 to V.size store - 1 do
          let cell = M.cell m v in
          check_int "length" (Array.length cell) (M.cell_length m v);
          let got = ref [] in
          M.cell_iter m v (fun q -> got := q :: !got);
          check "iter order" true (Array.of_list (List.rev !got) = cell);
          check "sorted ascending" true
            (Array.for_all2 ( = ) cell (let c = Array.copy cell in Array.sort compare c; c));
          let owner = V.owner store v in
          check "forall matches the cell" true
            (M.cell_forall m v (fun q -> M.view_at m ~point:q ~proc:owner = v));
          check "forall short-circuits falsity" false
            (M.cell_forall m v (fun _ -> false))
        done);
  ]

let find_run_tests =
  [
    test "find_run locates every run by (config, pattern)" (fun () ->
        let m = model omission_3_1_2 in
        Array.iter
          (fun r ->
            match M.find_run m ~config:r.M.config ~pattern:r.M.pattern with
            | Some r' -> check_int "index" r.M.index r'.M.index
            | None -> Alcotest.fail "run not found")
          m.M.runs);
    test "find_run rejects patterns outside the model" (fun () ->
        (* a sparse n=4 universe lacks the two-receiver omission below *)
        let params = omission_4_1_3.params in
        let m = M.build ~flavour:U.Sparse params in
        let omits = [| B.add 1 (B.add 2 B.empty); B.empty; B.empty |] in
        let pattern = Pat.make params [ Pat.omission ~horizon:3 ~proc:0 ~omits ] in
        let config = Cfg.of_bits ~n:4 0b0110 in
        check "absent" true (M.find_run m ~config ~pattern = None);
        (* same config with an in-universe pattern is found *)
        check "present" true
          (M.find_run m ~config ~pattern:(Pat.failure_free params) <> None));
  ]

let suite =
  ( "build",
    List.concat [ equivalence_tests; forest_tests; cell_tests; find_run_tests ] )
