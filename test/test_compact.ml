(* Bounded-bandwidth protocol variants and the boundary-condition bugfix
   batch.

   1. Exhaustive differentials: each compact variant (P0opt-delta,
      P0opt+delta, Chain0-cert) decides identically — value AND round — to
      its full-information protocol on every run of the exhaustive crash
      and omission n=3 t=1 universes, with identical message presence and
      never more bytes on the wire.

   2. A qcheck property: delta-encoding followed by merge reconstructs the
      full known-vector state whatever subset of copies survives and in
      whatever order entries ride them.

   3. Netsim: replaying the exhaustive universes through the round
      synchronizer matches the lockstep runner for the compact variants
      too, with the delivered-bytes counters agreeing exactly; a lossy
      same-seed full-vs-compact sweep pair has identical decision
      statistics and strictly fewer data bytes; byte counters are
      bit-identical across --jobs.

   4. The Sync.attempts boundary: an exact-multiple window excludes the
      retry that would fire at the window's close.

   5. The Stats / Net_stats empty-mean convention: all-undecided sweeps
      summarize to finite means and RFC 8259-valid JSON. *)

module Net = Eba.Net
module Runner = Eba.Runner
module Val = Eba.Value
open Helpers

let pairs :
    (string
    * (module Eba.Protocol_intf.PROTOCOL)
    * (module Eba.Protocol_intf.PROTOCOL))
    list =
  [
    ("P0opt", (module Eba.P0opt), (module Eba.P0opt_delta));
    ("P0opt+", (module Eba.P0opt_plus), (module Eba.P0opt_plus_delta));
    ("Chain0", (module Eba.Chain0), (module Eba.Chain0_cert));
  ]

(* --- exhaustive decision/time/byte differentials --- *)

let universe_bytes (module F : Eba.Protocol_intf.PROTOCOL)
    (module C : Eba.Protocol_intf.PROTOCOL) params =
  let module RF = Runner.Make (F) in
  let module RC = Runner.Make (C) in
  let full = ref 0 and compact = ref 0 and bad = ref [] in
  let blame fmt = Format.kasprintf (fun s -> bad := s :: !bad) fmt in
  Seq.iter
    (fun (config, pattern) ->
      let tf = RF.run params config pattern in
      let tc = RC.run params config pattern in
      for i = 0 to params.Eba.Params.n - 1 do
        let same =
          match (tf.Runner.decisions.(i), tc.Runner.decisions.(i)) with
          | None, None -> true
          | Some a, Some b ->
              a.Runner.at = b.Runner.at && Val.equal a.Runner.value b.Runner.value
          | None, Some _ | Some _, None -> false
        in
        if not same then
          blame "%a / %a proc %d: decisions differ" Eba.Config.pp config
            Eba.Pattern.pp pattern i
      done;
      if
        tf.Runner.messages_attempted <> tc.Runner.messages_attempted
        || tf.Runner.messages_delivered <> tc.Runner.messages_delivered
      then
        blame "%a / %a: message presence differs" Eba.Config.pp config
          Eba.Pattern.pp pattern;
      if tc.Runner.bytes_attempted > tf.Runner.bytes_attempted then
        blame "%a / %a: compact run costs %d bytes > full %d" Eba.Config.pp
          config Eba.Pattern.pp pattern tc.Runner.bytes_attempted
          tf.Runner.bytes_attempted;
      full := !full + tf.Runner.bytes_attempted;
      compact := !compact + tc.Runner.bytes_attempted)
    (Eba.Universe.workload_seq params);
  (!full, !compact, List.rev !bad)

let differential name f c ~strict params () =
  let full, compact, bad = universe_bytes f c params in
  (match bad with
  | [] -> ()
  | first :: _ ->
      Alcotest.failf "%s: %d differential entries disagree; first: %s" name
        (List.length bad) first);
  if strict then
    check
      (Printf.sprintf "compact bytes %d strictly under full %d" compact full)
      true (compact < full)
  else
    check
      (Printf.sprintf "compact bytes %d at most full %d" compact full)
      true (compact <= full)

let differential_tests =
  List.concat_map
    (fun (name, f, c) ->
      (* at n=3 a one-entry delta already costs the min-cap, so P0opt's
         savings only appear past the tiny universe; the strict inequality
         for it is pinned by the netsim pair test at n=16 below *)
      let strict = name <> "P0opt" in
      [
        test
          (Printf.sprintf "%s compact = full, exhaustive crash n=3 t=1" name)
          (differential name f c ~strict crash_3_1_3.params);
        test
          (Printf.sprintf "%s compact = full, exhaustive omission n=3 t=1" name)
          (differential name f c ~strict omission_3_1_3.params);
      ])
    pairs

let jobs_tests =
  List.map
    (fun (name, _, (module C : Eba.Protocol_intf.PROTOCOL)) ->
      test
        (Printf.sprintf "%s compact exhaustive summary identical for jobs=1/4"
           name) (fun () ->
          let s1 = Eba.Stats.exhaustive ~jobs:1 (module C) omission_3_1_3.params in
          let s4 = Eba.Stats.exhaustive ~jobs:4 (module C) omission_3_1_3.params in
          check "bit-identical (bytes included)" true (compare s1 s4 = 0)))
    pairs

(* --- qcheck: delta-encode then merge reconstructs the known vector --- *)

let reconstruction_tests =
  let n = 6 in
  let params = Eba.Params.make ~n ~t:1 ~horizon:3 ~mode:Eba.Params.Crash in
  [
    qtest ~count:300
      "qcheck: delta merge reconstructs known vector under loss/reorder"
      (* truth per slot 1..5; per-sender inclusion mask over those slots
         (bit 6 reverses the entry order); loss bitmap over senders *)
      QCheck2.Gen.(
        triple
          (array_size (return (n - 1)) (option bool))
          (array_size (return (n - 1)) (int_bound 127))
          (int_bound 31))
      (fun (truth, masks, lost) ->
        let value b = if b then Val.One else Val.Zero in
        let entries_of mask =
          let picked = ref [] in
          Array.iteri
            (fun i t ->
              match t with
              | Some b when mask land (1 lsl i) <> 0 ->
                  picked := (i + 1, value b) :: !picked
              | Some _ | None -> ())
            truth;
          if mask land 64 <> 0 then !picked else List.rev !picked
        in
        let inbox =
          Array.init n (fun j ->
              if j = 0 || lost land (1 lsl (j - 1)) <> 0 then None
              else
                Some (Eba.P0opt_delta.message ~round:1 (entries_of masks.(j - 1))))
        in
        let st = Eba.P0opt_delta.init params ~me:0 Val.One in
        let st = Eba.P0opt_delta.receive params st ~round:1 inbox in
        let got = Eba.P0opt_delta.known st in
        let arrived p =
          (* some sender both included slot p and was not lost *)
          let rec go j =
            j < n - 1
            && ((masks.(j) land (1 lsl (p - 1)) <> 0
                && lost land (1 lsl j) = 0)
               || go (j + 1))
          in
          go 0
        in
        let expected =
          Array.init n (fun p ->
              if p = 0 then Some Val.One
              else
                match truth.(p - 1) with
                | Some b when arrived p -> Some (value b)
                | Some _ | None -> None)
        in
        Array.for_all2
          (fun a b ->
            match (a, b) with
            | None, None -> true
            | Some x, Some y -> Val.equal x y
            | _ -> false)
          got expected);
  ]

(* --- netsim: replay differential and byte identities --- *)

let replay_bytes_agree name (module C : Eba.Protocol_intf.PROTOCOL) params () =
  let module R = Runner.Make (C) in
  let module S = Net.Netsim.Make (C) in
  let bad = ref [] in
  Seq.iter
    (fun (config, pattern) ->
      let lock = R.run params config pattern in
      let net = S.replay params pattern config in
      for i = 0 to params.Eba.Params.n - 1 do
        let same =
          match (lock.Runner.decisions.(i), net.Net.Net_stats.o_decisions.(i)) with
          | None, None -> true
          | Some a, Some b ->
              a.Runner.at = b.Runner.at && Val.equal a.Runner.value b.Runner.value
          | None, Some _ | Some _, None -> false
        in
        if not same then
          bad :=
            Format.asprintf "%a / %a proc %d: decisions differ" Eba.Config.pp
              config Eba.Pattern.pp pattern i
            :: !bad
      done;
      (* every fresh delivery carries its message's wire size, so the
         netsim delivered-bytes counter must equal the lockstep runner's
         exactly, pattern by pattern *)
      if
        net.Net.Net_stats.o_wire.Net.Net_stats.w_delivered_bytes
        <> lock.Runner.bytes_delivered
      then
        bad :=
          Format.asprintf "%a / %a: netsim delivered %d bytes vs runner %d"
            Eba.Config.pp config Eba.Pattern.pp pattern
            net.Net.Net_stats.o_wire.Net.Net_stats.w_delivered_bytes
            lock.Runner.bytes_delivered
          :: !bad)
    (Eba.Universe.workload_seq params);
  match !bad with
  | [] -> ()
  | first :: _ ->
      Alcotest.failf "%s: %d replay entries disagree; first: %s" name
        (List.length !bad) first

let pair_sweep (module P : Eba.Protocol_intf.PROTOCOL) ~jobs ~n ~t ~mode ~seed =
  let params = Eba.Params.make ~n ~t ~horizon:(t + 1) ~mode in
  let topology =
    Net.Topology.make ~n
      ~link:(Net.Link.make ~latency:(Net.Link.Uniform (0.2, 1.0)) ~loss:0.05)
  in
  let sync = Net.Sync.default_for topology in
  Net.Netsim.sweep ~jobs
    (module P)
    params ~sync ~topology
    ~dynamic:(Net.Inject.dynamic ~max_faulty:t ())
    ~seed ~runs:6

let lossy_pair name (module F : Eba.Protocol_intf.PROTOCOL)
    (module C : Eba.Protocol_intf.PROTOCOL) ~mode () =
  let sf = pair_sweep (module F) ~jobs:1 ~n:16 ~t:4 ~mode ~seed:99 in
  let sc = pair_sweep (module C) ~jobs:1 ~n:16 ~t:4 ~mode ~seed:99 in
  (* message presence is identical, so the two sweeps replay the same
     event schedule from the same seed: every decision statistic and
     every copy count must agree exactly; only the byte totals differ *)
  let eq what a b = check_int (name ^ " " ^ what) a b in
  eq "runs" sf.Net.Net_stats.ns_runs sc.Net.Net_stats.ns_runs;
  eq "agreement" sf.Net.Net_stats.ns_agreement_violations
    sc.Net.Net_stats.ns_agreement_violations;
  eq "validity" sf.Net.Net_stats.ns_validity_violations
    sc.Net.Net_stats.ns_validity_violations;
  eq "undecided" sf.Net.Net_stats.ns_undecided_nonfaulty
    sc.Net.Net_stats.ns_undecided_nonfaulty;
  eq "decided" sf.Net.Net_stats.ns_decided_nonfaulty
    sc.Net.Net_stats.ns_decided_nonfaulty;
  eq "round sum" sf.Net.Net_stats.ns_decision_round_sum
    sc.Net.Net_stats.ns_decision_round_sum;
  eq "ns sum" sf.Net.Net_stats.ns_decision_ns_sum
    sc.Net.Net_stats.ns_decision_ns_sum;
  eq "attempted" sf.Net.Net_stats.ns_attempted sc.Net.Net_stats.ns_attempted;
  eq "delivered" sf.Net.Net_stats.ns_delivered sc.Net.Net_stats.ns_delivered;
  eq "copies" sf.Net.Net_stats.ns_wire.Net.Net_stats.w_copies
    sc.Net.Net_stats.ns_wire.Net.Net_stats.w_copies;
  eq "retransmissions" sf.Net.Net_stats.ns_wire.Net.Net_stats.w_retransmissions
    sc.Net.Net_stats.ns_wire.Net.Net_stats.w_retransmissions;
  eq "ack bytes" sf.Net.Net_stats.ns_wire.Net.Net_stats.w_ack_bytes
    sc.Net.Net_stats.ns_wire.Net.Net_stats.w_ack_bytes;
  check_int (name ^ " zero violations") 0
    (sf.Net.Net_stats.ns_agreement_violations
    + sf.Net.Net_stats.ns_validity_violations);
  check
    (Printf.sprintf "%s compact data bytes %d strictly under full %d" name
       sc.Net.Net_stats.ns_wire.Net.Net_stats.w_data_bytes
       sf.Net.Net_stats.ns_wire.Net.Net_stats.w_data_bytes)
    true
    (sc.Net.Net_stats.ns_wire.Net.Net_stats.w_data_bytes
    < sf.Net.Net_stats.ns_wire.Net.Net_stats.w_data_bytes);
  (* and the byte counters obey the same determinism discipline as every
     other accumulator: bit-identical across --jobs *)
  let sc4 = pair_sweep (module C) ~jobs:4 ~n:16 ~t:4 ~mode ~seed:99 in
  check (name ^ " compact sweep bit-identical for jobs=1/4") true
    (compare sc sc4 = 0)

let netsim_tests =
  List.concat_map
    (fun (name, _, c) ->
      [
        test
          (Printf.sprintf
             "%s compact netsim replay = Runner + bytes, crash n=3 t=1" name)
          (replay_bytes_agree name c crash_3_1_3.params);
        test
          (Printf.sprintf
             "%s compact netsim replay = Runner + bytes, omission n=3 t=1" name)
          (replay_bytes_agree name c omission_3_1_3.params);
      ])
    pairs
  @ [
      slow "P0opt vs P0opt-delta lossy sweep: same decisions, fewer bytes"
        (lossy_pair "P0opt" (module Eba.P0opt) (module Eba.P0opt_delta)
           ~mode:Eba.Params.Crash);
      slow "P0opt+ vs P0opt+delta lossy sweep: same decisions, fewer bytes"
        (lossy_pair "P0opt+"
           (module Eba.P0opt_plus)
           (module Eba.P0opt_plus_delta)
           ~mode:Eba.Params.Crash);
      slow "Chain0 vs Chain0-cert lossy sweep: same decisions, fewer bytes"
        (lossy_pair "Chain0" (module Eba.Chain0) (module Eba.Chain0_cert)
           ~mode:Eba.Params.Omission);
    ]

(* --- the Sync.attempts boundary --- *)

let sync_tests =
  let attempts ~d ~rto ~retries =
    Net.Sync.attempts (Net.Sync.make ~round_duration:d ~rto ~max_retries:retries)
  in
  [
    test "attempts: exact-multiple window excludes the boundary retry" (fun () ->
        (* retries would fire at 1,2,3,4 — but 4.0 is the window close, and
           a copy launched there is dead on arrival *)
        check_int "D=4 rto=1" 4 (attempts ~d:4.0 ~rto:1.0 ~retries:7));
    test "attempts: a fractional window keeps the last interior retry" (fun () ->
        check_int "D=4.5 rto=1" 5 (attempts ~d:4.5 ~rto:1.0 ~retries:7));
    test "attempts: the retry budget still caps the count" (fun () ->
        check_int "retries=2" 3 (attempts ~d:4.0 ~rto:1.0 ~retries:2));
    test "attempts: window of one rto means a single transmission" (fun () ->
        check_int "D=rto" 1 (attempts ~d:1.0 ~rto:1.0 ~retries:7));
    test "attempts: the default timing is unchanged at 8" (fun () ->
        (* default: window 8 rto, 7 retries at 1..7 rto, all interior *)
        check_int "default" 8
          (Net.Sync.attempts
             (Net.Sync.default_for (Net.Netsim.lossless_topology ~n:3))));
  ]

(* --- all-undecided summaries stay finite and JSON-valid --- *)

module Never : Eba.Protocol_intf.PROTOCOL = struct
  let name = "NeverTest"

  type state = unit
  type msg = unit

  let init _ ~me:_ _ = ()
  let send (params : Eba.Params.t) () ~round:_ = Array.make params.Eba.Params.n None
  let receive _ () ~round:_ _ = ()
  let output () = None
  let wire_size _ () = Eba.Protocol_intf.Wire.header
end

let json_is_finite s =
  let lowered = String.lowercase_ascii s in
  let contains needle =
    let nl = String.length needle and l = String.length lowered in
    let rec at i = i + nl <= l && (String.sub lowered i nl = needle || at (i + 1)) in
    at 0
  in
  (not (contains "nan")) && not (contains "inf")

let empty_mean_tests =
  [
    test "all-undecided Stats summary: means are 0.0, JSON finite" (fun () ->
        let s = Eba.Stats.exhaustive ~jobs:1 (module Never) crash_3_1_3.params in
        check "undecided everywhere" true (s.Eba.Stats.undecided_nonfaulty > 0);
        check "mean_time is exactly 0.0" true (s.Eba.Stats.mean_time = 0.0);
        List.iter
          (fun (b : Eba.Stats.by_failures) ->
            check "per-failure mean finite" true
              (Float.is_finite b.Eba.Stats.mean_time))
          s.Eba.Stats.by_failures;
        let json = Eba.Json.to_string (Eba.Stats.summary_json s) in
        check "JSON has no NaN/Inf tokens" true (json_is_finite json));
    test "empty Net_stats summary: means are 0.0, JSON finite" (fun () ->
        let s =
          Net.Net_stats.summary_of_state ~protocol:"none" ~params:"-" ~seed:0
            ~plan:"-" ~topology:"-" ~sync:"-"
            (Net.Net_stats.fresh_state ())
        in
        check "round mean" true (s.Net.Net_stats.ns_mean_decision_round = 0.0);
        check "ns mean" true (s.Net.Net_stats.ns_mean_decision_ns = 0.0);
        let json = Eba.Json.to_string (Net.Net_stats.summary_json s) in
        check "JSON has no NaN/Inf tokens" true (json_is_finite json));
  ]

let tests =
  differential_tests @ jobs_tests @ reconstruction_tests @ netsim_tests
  @ sync_tests @ empty_mean_tests

let suite = ("compact", tests)
