(* Differential testing: the semantic decision sets (Kb_protocol over the
   enumerated model) against the operational runner, point for point, over
   the exhaustive crash n=3 t=1 universe.  For each protocol with both a
   knowledge-based and a message-passing implementation, every nonfaulty
   processor must decide the same value at the same time in the
   corresponding run — Prop 2.2's "one model supports every protocol"
   claim, machine-checked as an equality of decision tables.

   (test_cross.ml checks the FIP and Thm 6.2 equivalences; this suite is
   the protocol-by-protocol matrix and reports *which* entries disagree,
   not just how many.) *)

module M = Eba.Model
module KB = Eba.Kb_protocol
module Runner = Eba.Runner
module Val = Eba.Value
module B = Eba.Bitset
open Helpers

(* All (run, proc) entries where the semantic and operational decisions
   differ, with a printable description of both sides. *)
let disagreements fixture pair (module P : Eba.Protocol_intf.PROTOCOL) =
  let m = model fixture in
  let d = KB.decide m pair in
  let module R = Runner.Make (P) in
  let bad = ref [] in
  for r = M.nruns m - 1 downto 0 do
    let run = M.run_of_point m (M.point m ~run:r ~time:0) in
    let trace = R.run fixture.params run.M.config run.M.pattern in
    B.iter
      (fun i ->
        let sem = KB.outcome d ~run:r ~proc:i in
        let op = trace.Runner.decisions.(i) in
        let same =
          match (sem, op) with
          | None, None -> true
          | Some { KB.at; value }, Some { Runner.at = at'; value = value' } ->
              at = at' && Val.equal value value'
          | None, Some _ | Some _, None -> false
        in
        if not same then begin
          let show = function
            | None -> "undecided"
            | Some (at, v) -> Format.asprintf "%a@%d" Val.pp v at
          in
          let sem = Option.map (fun { KB.at; value } -> (at, value)) sem in
          let op = Option.map (fun { Runner.at; value } -> (at, value)) op in
          bad :=
            Printf.sprintf "run %d proc %d: semantic %s vs operational %s" r i
              (show sem) (show op)
            :: !bad
        end)
      (M.nonfaulty m ~run:r)
  done;
  !bad

let agree name fixture pair p () =
  match disagreements fixture pair p with
  | [] -> ()
  | first :: _ as all ->
      Alcotest.failf "%s: %d nonfaulty decisions disagree; first: %s" name
        (List.length all) first

let tests =
  let e = env crash_3_1_3 in
  [
    test "P0 semantic = operational, exhaustive crash n=3 t=1"
      (agree "P0" crash_3_1_3 (Eba.Zoo.p0 e) (module Eba.P0.P0));
    test "P0opt (F^L,2) semantic = operational, exhaustive crash n=3 t=1"
      (agree "P0opt" crash_3_1_3 (Eba.Zoo.f_lambda_2 e) (module Eba.P0opt));
    test "FloodSet semantic = operational, exhaustive crash n=3 t=1"
      (agree "FloodSet" crash_3_1_3 (Eba.Zoo.sba_fixed_time e) (module Eba.Floodset));
    test "differential harness is sensitive (P0 vs the P1 decision sets)" (fun () ->
        (* sanity: the matrix must be able to fail — P1's decision pair
           cannot reproduce P0's operational decisions *)
        check "P1 pair vs P0 runner disagrees somewhere" true
          (disagreements crash_3_1_3 (Eba.Zoo.p1 e) (module Eba.P0.P0) <> []));
  ]

let suite = ("differential", tests)
