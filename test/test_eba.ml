let () =
  Alcotest.run "eba"
    [
      Test_bitset.suite;
      Test_procset.suite;
      Test_parallel.suite;
      Test_sim.suite;
      Test_fip.suite;
      Test_build.suite;
      Test_pset.suite;
      Test_epistemic.suite;
      Test_decision.suite;
      Test_construct.suite;
      Test_zoo.suite;
      Test_protocols.suite;
      Test_cross.suite;
      Test_eventual.suite;
      Test_general.suite;
      Test_sba.suite;
      Test_semantics.suite;
      Test_misc.suite;
      Test_metrics.suite;
      Test_differential.suite;
      Test_netsim.suite;
      Test_compact.suite;
      Test_prob.suite;
      Test_golden.suite;
    ]
