(* The full-information layer: hash-consed views and enumerated models. *)

module V = Eba.View
module M = Eba.Model
module Cfg = Eba.Config
module Pat = Eba.Pattern
module Params = Eba.Params
module Val = Eba.Value
module B = Eba.Bitset
open Helpers

let view_tests =
  [
    test "leaf identity" (fun () ->
        let s = V.create_store ~n:3 () in
        let a = V.leaf s ~owner:0 Val.Zero in
        let b = V.leaf s ~owner:0 Val.Zero in
        let c = V.leaf s ~owner:0 Val.One in
        let d = V.leaf s ~owner:1 Val.Zero in
        check_int "same" a b;
        check "value distinguishes" true (a <> c);
        check "owner distinguishes" true (a <> d));
    test "node identity and metadata" (fun () ->
        let s = V.create_store ~n:3 () in
        let l0 = V.leaf s ~owner:0 Val.Zero in
        let l1 = V.leaf s ~owner:1 Val.One in
        let recv = [| None; Some l1; None |] in
        let a = V.node s ~owner:0 ~prev:l0 ~received:recv in
        let b = V.node s ~owner:0 ~prev:l0 ~received:[| None; Some l1; None |] in
        check_int "hash-consed" a b;
        check_int "time" 1 (V.time s a);
        check_int "owner" 0 (V.owner s a);
        check "heard" true (B.equal (B.singleton 1) (V.heard_from s a));
        check "prev" true (V.prev s a = Some l0);
        check "received" true (V.received s a 1 = Some l1);
        check "not received" true (V.received s a 2 = None));
    test "knows_zero propagates" (fun () ->
        let s = V.create_store ~n:2 () in
        let z = V.leaf s ~owner:0 Val.Zero in
        let o = V.leaf s ~owner:1 Val.One in
        check "leaf zero" true (V.knows_zero s z);
        check "leaf one" false (V.knows_zero s o);
        let n = V.node s ~owner:1 ~prev:o ~received:[| Some z; None |] in
        check "heard a zero" true (V.knows_zero s n);
        let n2 = V.node s ~owner:1 ~prev:o ~received:[| None; None |] in
        check "no zero" false (V.knows_zero s n2));
    test "node validation" (fun () ->
        let s = V.create_store ~n:2 () in
        let l0 = V.leaf s ~owner:0 Val.Zero in
        let l1 = V.leaf s ~owner:1 Val.One in
        Alcotest.check_raises "self message" (Invalid_argument "View.node: self-message")
          (fun () -> ignore (V.node s ~owner:0 ~prev:l0 ~received:[| Some l0; None |]));
        Alcotest.check_raises "owner mismatch"
          (Invalid_argument "View.node: owner mismatch with prev") (fun () ->
            ignore (V.node s ~owner:0 ~prev:l1 ~received:[| None; None |])));
  ]

let growth_tests =
  (* The store starts with room for 1024 view metas and doubles on demand;
     these pin the behaviour across that boundary. *)
  let chain s ~owner ~len =
    let rec go acc v k =
      if k = 0 then List.rev acc
      else
        let v' = V.node s ~owner ~prev:v ~received:[| None; None |] in
        go (v' :: acc) v' (k - 1)
    in
    let l = V.leaf s ~owner Val.Zero in
    l :: go [] l len
  in
  [
    test "interning stays injective past the 1024-meta capacity" (fun () ->
        let s = V.create_store ~n:2 () in
        (* two interleaved chains, so growth copies a mixed-owner prefix *)
        let len = 1300 in
        let c0 = chain s ~owner:0 ~len and c1 = chain s ~owner:1 ~len in
        check "crossed the initial capacity twice" true (V.size s > 2048);
        check_int "distinct views only" (2 * (len + 1)) (V.size s);
        let all = c0 @ c1 in
        check_int "ids are dense" (V.size s)
          (1 + List.fold_left max 0 all));
    test "metas survive growth intact" (fun () ->
        let s = V.create_store ~n:2 () in
        let c = chain s ~owner:1 ~len:1500 in
        List.iteri
          (fun time v ->
            check_int "owner" 1 (V.owner s v);
            check_int "time" time (V.time s v);
            check "init value" true (V.init_value s v = Val.Zero);
            match V.prev s v with
            | None -> check_int "only the leaf lacks prev" 0 time
            | Some p -> check_int "prev is one round back" (time - 1) (V.time s p))
          c);
    test "re-interning after growth returns the same ids" (fun () ->
        let s = V.create_store ~n:2 () in
        let c1 = chain s ~owner:0 ~len:1100 in
        let size1 = V.size s in
        let c2 = chain s ~owner:0 ~len:1100 in
        check "same ids" true (c1 = c2);
        check_int "no new allocations" size1 (V.size s));
    test "a real model past 1024 views keeps cells consistent" (fun () ->
        let m = model crash_4_1_3 in
        let store = m.M.store in
        check "model is past the initial capacity" true (V.size store > 1024);
        for v = 0 to V.size store - 1 do
          let owner = V.owner store v in
          Array.iter
            (fun pid ->
              check_int "cell member holds the view" v
                (M.view_at m ~point:pid ~proc:owner))
            (M.cell m v)
        done);
  ]

let model_tests =
  [
    test "crash model sizes" (fun () ->
        let m = model crash_3_1_3 in
        check_int "runs = patterns * configs" (31 * 8) (M.nruns m);
        check_int "points" (M.nruns m * 4) (M.npoints m));
    test "point indexing roundtrip" (fun () ->
        let m = model crash_3_1_3 in
        List.iter
          (fun pid ->
            let run = M.run_index_of_point m pid and time = M.time_of_point m pid in
            check_int "roundtrip" pid (M.point m ~run ~time))
          (some_points m 50));
    test "views are time-stamped" (fun () ->
        let m = model crash_3_1_3 in
        let store = m.M.store in
        List.iter
          (fun pid ->
            let time = M.time_of_point m pid in
            for i = 0 to 2 do
              let v = M.view_at m ~point:pid ~proc:i in
              check_int "time" time (V.time store v);
              check_int "owner" i (V.owner store v)
            done)
          (some_points m 50));
    test "cells partition points per owner" (fun () ->
        let m = model crash_3_1_3 in
        (* every point appears in exactly one cell per processor: total cell
           mass = npoints * n *)
        check_int "mass" (M.npoints m * 3) (Array.length m.M.cell_ids);
        check_int "offsets cover cell_ids" (Array.length m.M.cell_ids)
          m.M.cell_off.(Array.length m.M.cell_off - 1));
    test "cell members share the view" (fun () ->
        let m = model crash_3_1_3 in
        let store = m.M.store in
        for v = 0 to V.size store - 1 do
          let owner = V.owner store v in
          Array.iter
            (fun pid -> check_int "same view" v (M.view_at m ~point:pid ~proc:owner))
            (M.cell m v)
        done);
    test "failure-free run is full-information" (fun () ->
        let m = model crash_3_1_3 in
        let pattern = Pat.failure_free crash_3_1_3.params in
        let config = Cfg.of_bits ~n:3 0b101 in
        match M.find_run m ~config ~pattern with
        | None -> Alcotest.fail "run not found"
        | Some run ->
            let store = m.M.store in
            (* at time 1 everybody heard from everybody *)
            for i = 0 to 2 do
              let v = M.view m ~run:run.M.index ~time:1 ~proc:i in
              check_int "heard all" 2 (B.cardinal (V.heard_from store v))
            done;
            check "nonfaulty all" true
              (B.equal (B.full 3) (M.nonfaulty m ~run:run.M.index)));
    test "silent processor is never heard" (fun () ->
        let m = model crash_3_1_3 in
        let b = Pat.crash ~horizon:3 ~proc:0 ~round:1 ~recipients:B.empty in
        let pattern = Pat.make crash_3_1_3.params [ b ] in
        let config = Cfg.constant ~n:3 Val.One in
        match M.find_run m ~config ~pattern with
        | None -> Alcotest.fail "run not found"
        | Some run ->
            let store = m.M.store in
            for time = 1 to 3 do
              for i = 1 to 2 do
                let v = M.view m ~run:run.M.index ~time ~proc:i in
                check "no msg from 0" false (B.mem 0 (V.heard_from store v))
              done
            done);
    test "corresponding views are shared across configs (Prop 2.2 shape)" (fun () ->
        (* identical deliveries + identical initial values seen => identical
           view ids, even under different patterns *)
        let m = model crash_3_1_3 in
        let p1 = Pat.failure_free crash_3_1_3.params in
        let p2 = Pat.make crash_3_1_3.params [ Pat.clean_crash ~horizon:3 ~proc:0 ] in
        let config = Cfg.of_bits ~n:3 0b011 in
        let r1 = Option.get (M.find_run m ~config ~pattern:p1) in
        let r2 = Option.get (M.find_run m ~config ~pattern:p2) in
        for time = 0 to 3 do
          for i = 0 to 2 do
            check_int "same view"
              (M.view m ~run:r1.M.index ~time ~proc:i)
              (M.view m ~run:r2.M.index ~time ~proc:i)
          done
        done;
        check "different nonfaulty sets" false
          (B.equal (M.nonfaulty m ~run:r1.M.index) (M.nonfaulty m ~run:r2.M.index)));
    test "omission model sizes" (fun () ->
        let m = model omission_3_1_2 in
        check_int "runs" (49 * 8) (M.nruns m));
  ]

let suite = ("fip", view_tests @ growth_tests @ model_tests)
