(* Golden reproduction pin: E1..E12 at Small scale, verdict lines diffed
   against the committed test/golden/experiments.expected.  A behaviour
   change anywhere in the stack — enumeration, epistemic kernels, the
   optimizer, the protocol zoo — that flips a paper claim (or silently
   changes which claims are even checked) shows up as a one-line diff
   here.  Regenerate with:

     dune exec test/regen_golden.exe > test/golden/experiments.expected *)

open Helpers

let expected_path = "golden/experiments.expected"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let actual () =
  Format.asprintf "%a" Eba_harness.Experiments.pp_verdicts
    (Eba_harness.Experiments.all ~scale:Eba_harness.Experiments.Small ())

let tests =
  [
    slow "E1..E12 verdicts match the committed golden file" (fun () ->
        let expected = read_file expected_path in
        Alcotest.(check string) "experiments.expected" expected (actual ()));
    test "every experiment id appears exactly once in the golden file" (fun () ->
        let golden = read_file expected_path in
        List.iter
          (fun id ->
            let needle = id ^ " " in
            let occurrences = ref 0 in
            let lines = String.split_on_char '\n' golden in
            List.iter
              (fun l -> if String.starts_with ~prefix:needle l then incr occurrences)
              lines;
            check_int (id ^ " pinned once") 1 !occurrences)
          (Eba_harness.Experiments.ids ()));
  ]

let suite = ("golden", tests)
