(* The dependency-free JSON parser that gives the service its wire
   format: RFC 8259 unit coverage (tokens, strings with surrogate pairs,
   the int/float split), the hardening guarantees (trailing-garbage
   rejection, the typed deep-nesting bound), and the emit <-> parse
   round-trip as a qcheck law over the whole [Json.t] type. *)

module Json = Eba.Json
open Helpers

let json_testable =
  Alcotest.testable
    (fun fmt j -> Format.pp_print_string fmt (Json.to_string j))
    ( = )

let parses name input expected =
  test name (fun () ->
      match Json.parse input with
      | Ok v -> Alcotest.check json_testable name expected v
      | Error e -> Alcotest.failf "%s: parse failed: %s" name (Json.error_to_string e))

let rejects name ?max_depth input expected_failure =
  test name (fun () ->
      match Json.parse ?max_depth input with
      | Ok _ -> Alcotest.failf "%s: accepted %S" name input
      | Error e ->
          Alcotest.check Alcotest.string name
            (Json.failure_to_string expected_failure)
            (Json.failure_to_string e.Json.failure))

let accept_tests =
  [
    parses "null" "null" Json.Null;
    parses "true" "true" (Json.Bool true);
    parses "false" "false" (Json.Bool false);
    parses "zero" "0" (Json.Int 0);
    parses "negative int" "-42" (Json.Int (-42));
    parses "max_int stays an int" (string_of_int max_int) (Json.Int max_int);
    parses "min_int stays an int" (string_of_int min_int) (Json.Int min_int);
    parses "fraction is a float" "1.5" (Json.Float 1.5);
    parses "exponent is a float" "1e2" (Json.Float 100.0);
    parses "signed exponent" "-2.5E-1" (Json.Float (-0.25));
    parses "integer token beyond 63 bits falls back to float"
      "9223372036854775808"
      (Json.Float 9.223372036854775808e18);
    parses "plain string" {|"hello"|} (Json.String "hello");
    parses "all single-char escapes" {|"\" \\ \/ \b \f \n \r \t"|}
      (Json.String "\" \\ / \b \012 \n \r \t");
    parses "unicode escape" {|"A\u00e9"|} (Json.String "A\xc3\xa9");
    parses "surrogate pair" {|"\ud83d\ude00"|} (Json.String "\xf0\x9f\x98\x80");
    parses "raw utf8 bytes pass through" "\"\xf0\x9f\x98\x80\""
      (Json.String "\xf0\x9f\x98\x80");
    parses "empty containers" "[[], {}]" (Json.List [ Json.List []; Json.Obj [] ]);
    parses "whitespace everywhere" " { \"a\" :\t[ 1 ,\n2 ] } "
      (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]);
    parses "nested object"
      {|{"a": {"b": [true, null]}, "c": -1}|}
      (Json.Obj
         [
           ("a", Json.Obj [ ("b", Json.List [ Json.Bool true; Json.Null ]) ]);
           ("c", Json.Int (-1));
         ]);
    parses "duplicate keys kept in order" {|{"k": 1, "k": 2}|}
      (Json.Obj [ ("k", Json.Int 1); ("k", Json.Int 2) ]);
    parses "trailing newline is fine" "42\n" (Json.Int 42);
  ]

let reject_tests =
  [
    rejects "empty input" "" Json.Unexpected_end;
    rejects "trailing garbage" "1 2" Json.Trailing_garbage;
    rejects "trailing garbage after object" {|{"a": 1} x|} Json.Trailing_garbage;
    rejects "two documents" "[1][2]" Json.Trailing_garbage;
    rejects "unterminated string" {|"abc|} Json.Unexpected_end;
    rejects "unterminated array" "[1, 2" Json.Unexpected_end;
    rejects "bare word" "nope" (Json.Unexpected_char 'n');
    rejects "single quote" "'x'" (Json.Unexpected_char '\'');
    rejects "unknown escape" {|"\q"|} Json.Bad_escape;
    rejects "truncated unicode escape" {|"\u00"|} Json.Bad_escape;
    rejects "lone high surrogate" {|"\ud83d"|} Json.Bad_escape;
    rejects "lone low surrogate" {|"\ude00"|} Json.Bad_escape;
    rejects "raw control char in string" "\"a\nb\"" (Json.Unexpected_char '\n');
    rejects "leading zero" "01" Json.Trailing_garbage;
    rejects "bare minus" "-" Json.Bad_number;
    rejects "dot without digits" "1." Json.Bad_number;
    rejects "leading dot" ".5" (Json.Unexpected_char '.');
    rejects "exponent without digits" "1e" Json.Bad_number;
    rejects "plus sign" "+1" (Json.Unexpected_char '+');
    rejects "missing comma" "[1 2]" (Json.Unexpected_char '2');
    rejects "missing colon" {|{"a" 1}|} (Json.Unexpected_char '1');
    rejects "non-string key" "{1: 2}" (Json.Unexpected_char '1');
  ]

let depth_tests =
  let nested k = String.make k '[' ^ String.make k ']' in
  [
    test "depth bound is typed and positioned" (fun () ->
        match Json.parse ~max_depth:8 (nested 9) with
        | Error { Json.failure = Json.Too_deep 8; _ } -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Json.error_to_string e)
        | Ok _ -> Alcotest.fail "accepted nesting past the bound");
    test "depth exactly at the bound is accepted" (fun () ->
        check "depth 8 under max_depth 8" true
          (Result.is_ok (Json.parse ~max_depth:8 (nested 8))));
    test "default bound accepts deep-but-sane documents" (fun () ->
        check "depth 100" true (Result.is_ok (Json.parse (nested 100))));
    test "default bound stops the stack attack" (fun () ->
        match Json.parse (nested 100_000) with
        | Error { Json.failure = Json.Too_deep d; _ } ->
            check_int "default bound" Json.default_max_depth d
        | Error e -> Alcotest.failf "wrong error: %s" (Json.error_to_string e)
        | Ok _ -> Alcotest.fail "accepted 100k nesting");
  ]

(* --- emit <-> parse round trip --- *)

let gen_json =
  let open QCheck2.Gen in
  (* strings are raw bytes: anything the emitter can see, including
     control characters and non-ASCII *)
  let gen_string = string_size ~gen:char (int_bound 12) in
  let gen_float =
    (* finite only — the emitter renders non-finite floats as null by
       design, which is a documented non-identity *)
    map
      (fun (mant, ex) -> ldexp mant ex)
      (pair (float_bound_inclusive 1.0) (int_range (-60) 60))
  in
  let base =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun x -> Json.Float x) gen_float;
        map (fun s -> Json.String s) gen_string;
      ]
  in
  sized
  @@ fix (fun self k ->
         if k <= 0 then base
         else
           frequency
             [
               (2, base);
               ( 1,
                 map (fun xs -> Json.List xs)
                   (list_size (int_bound 4) (self (k / 2))) );
               ( 1,
                 map (fun kvs -> Json.Obj kvs)
                   (list_size (int_bound 4)
                      (pair gen_string (self (k / 2)))) );
             ])

let roundtrip_tests =
  [
    qtest ~count:500 "emit then parse is the identity" gen_json (fun j ->
        match Json.parse (Json.to_string j) with
        | Ok j' -> j = j'
        | Error e ->
            QCheck2.Test.fail_reportf "parse failed: %s" (Json.error_to_string e));
    qtest ~count:200 "parsing emitted output never hits the depth bound"
      gen_json (fun j -> Result.is_ok (Json.parse (Json.to_string j)));
  ]

let file_tests =
  [
    test "to_file is atomic and rereadable" (fun () ->
        let path = Filename.temp_file "eba_json" ".json" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let doc =
              Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Float 0.5 ]) ]
            in
            Json.to_file path doc;
            check "no temp litter" false
              (Sys.file_exists
                 (Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())));
            let ic = open_in_bin path in
            let len = in_channel_length ic in
            let contents = really_input_string ic len in
            close_in ic;
            Alcotest.check json_testable "reread" doc
              (Result.get_ok (Json.parse contents))));
  ]

let suite =
  ("json", accept_tests @ reject_tests @ depth_tests @ roundtrip_tests @ file_tests)
