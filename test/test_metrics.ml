(* The observability layer: unit semantics of counters/gauges/spans, plus
   the two metamorphic guarantees the engine instrumentation must keep:

   - enabling metrics never changes a computed result (sweeps, knowledge
     sets, experiment verdicts are bit-identical with metrics on or off);
   - deterministic counters are independent of the parallel job count
     (jobs=1 and jobs=4 runs agree counter for counter), while timings and
     scheduling counters are allowed to differ. *)

module Metrics = Eba.Metrics
open Helpers

let with_metrics f =
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled was;
      Metrics.reset ())
    f

(* Fresh handles per test would collide on names — reuse static ones. *)
let c_test = Metrics.counter "test.counter"
let c_sched = Metrics.counter ~deterministic:false "test.scheduling"
let g_test = Metrics.gauge "test.gauge"
let s_test = Metrics.span "test.span"

let find name =
  List.find_opt (fun e -> e.Metrics.e_name = name) (Metrics.snapshot ())

let unit_tests =
  [
    test "counters accumulate and reset" (fun () ->
        with_metrics (fun () ->
            Metrics.add c_test 5;
            Metrics.incr c_test;
            check_int "sum" 6 (Option.get (find "test.counter")).Metrics.e_count;
            Metrics.reset ();
            check "zeroed entries drop from the snapshot" true
              (find "test.counter" = None)));
    test "disabled recording is a no-op" (fun () ->
        Metrics.reset ();
        check "disabled" false (Metrics.enabled ());
        Metrics.add c_test 42;
        Metrics.record g_test 42;
        check_int "span thunk still runs" 7 (Metrics.time s_test (fun () -> 7));
        check "nothing recorded" true (Metrics.snapshot () = []));
    test "gauges keep the high-water mark" (fun () ->
        with_metrics (fun () ->
            Metrics.record g_test 3;
            Metrics.record g_test 9;
            Metrics.record g_test 5;
            check_int "max" 9 (Option.get (find "test.gauge")).Metrics.e_count));
    test "spans count calls, accumulate time, survive exceptions" (fun () ->
        with_metrics (fun () ->
            check_int "result" 3 (Metrics.time s_test (fun () -> 3));
            (try Metrics.time s_test (fun () -> failwith "boom") with Failure _ -> ());
            let e = Option.get (find "test.span") in
            check_int "calls" 2 e.Metrics.e_count;
            check "kind" true (e.Metrics.e_kind = Metrics.Span);
            check "elapsed >= 0" true (e.Metrics.e_seconds >= 0.)));
    test "registration is idempotent; first kind wins" (fun () ->
        with_metrics (fun () ->
            let again = Metrics.counter "test.counter" in
            Metrics.incr again;
            Metrics.incr c_test;
            check_int "same instrument" 2
              (Option.get (find "test.counter")).Metrics.e_count));
    test "deterministic_counters excludes scheduling counters and spans" (fun () ->
        with_metrics (fun () ->
            Metrics.incr c_test;
            Metrics.incr c_sched;
            ignore (Metrics.time s_test (fun () -> ()));
            let det = List.map fst (Metrics.deterministic_counters ()) in
            check "counter in" true (List.mem "test.counter" det);
            check "scheduling out" false (List.mem "test.scheduling" det);
            check "span out" false (List.mem "test.span" det)));
    test "snapshot is name-sorted (stable pretty/json layout)" (fun () ->
        with_metrics (fun () ->
            Metrics.incr c_test;
            Metrics.record g_test 1;
            ignore
              (Eba.Model.build
                 (Eba.Params.make ~n:3 ~t:1 ~horizon:2 ~mode:Eba.Params.Crash));
            let names = List.map (fun e -> e.Metrics.e_name) (Metrics.snapshot ()) in
            check "sorted" true (names = List.sort String.compare names)));
  ]

(* --- metamorphic: metrics on/off cannot change results --- *)

let sweep_params ~n ~horizon ~mode = Eba.Params.make ~n ~t:1 ~horizon ~mode

let metamorphic_tests =
  [
    qtest ~count:20 "sampled sweep summary is bit-identical with metrics on vs off"
      QCheck2.Gen.(
        triple (int_range 3 4) (int_range 2 3) (int_range 0 1000))
      (fun (n, horizon, seed) ->
        let params = sweep_params ~n ~horizon ~mode:Eba.Params.Crash in
        let sweep () =
          Eba.Stats.sampled (module Eba.P0opt) params ~seed ~samples:25
        in
        let off = sweep () in
        let on = with_metrics (fun () -> sweep ()) in
        off = on);
    test "exhaustive sweep and knowledge sets identical with metrics on vs off"
      (fun () ->
        let params = omission_3_1_2.params in
        let off = Eba.Stats.exhaustive (module Eba.Chain0) params in
        let on = with_metrics (fun () -> Eba.Stats.exhaustive (module Eba.Chain0) params) in
        check "summary" true (off = on);
        let m = model crash_3_1_3 in
        let nf = Eba.Nonrigid.nonfaulty m in
        let e0 =
          Eba.Formula.eval (env crash_3_1_3) (Eba.Formula.exists_value m Eba.Value.zero)
        in
        let k_off = Eba.Knowledge.everyone_knows m nf e0 in
        let k_on = with_metrics (fun () -> Eba.Knowledge.everyone_knows m nf e0) in
        check "E_N set" true (Eba.Pset.equal k_off k_on));
    test "experiment verdict identical with metrics on vs off" (fun () ->
        let run () = Eba_harness.Experiments.run "E5" in
        let off = run () in
        let on = with_metrics (fun () -> run ()) in
        check "outcome" true (off = on));
  ]

(* --- metamorphic: deterministic counters are job-count independent --- *)

let det_counters_of f =
  with_metrics (fun () ->
      ignore (f ());
      Metrics.deterministic_counters ())

let jobs_tests =
  [
    qtest ~count:8 "sweep counters identical for jobs=1 vs jobs=2..4"
      QCheck2.Gen.(int_range 2 4)
      (fun jobs ->
        let params = omission_3_1_2.params in
        let sweep jobs () = Eba.Stats.exhaustive ~jobs (module Eba.P0opt_plus) params in
        det_counters_of (sweep 1) = det_counters_of (sweep jobs));
    test "knowledge-kernel counters identical for jobs=1 vs jobs=4" (fun () ->
        let m = model crash_3_1_3 in
        let nf = Eba.Nonrigid.nonfaulty m in
        let e0 =
          Eba.Formula.eval (env crash_3_1_3) (Eba.Formula.exists_value m Eba.Value.zero)
        in
        let kernel jobs () =
          Eba.Parallel.with_jobs jobs (fun () -> Eba.Knowledge.everyone_knows m nf e0)
        in
        let c1 = det_counters_of (kernel 1) and c4 = det_counters_of (kernel 4) in
        check "counters" true (c1 = c4);
        check "nonempty" true (c1 <> []));
    test "scheduling counters do differ across job counts (sanity)" (fun () ->
        (* if this starts passing with equal snapshots, the scheduling
           counters stopped observing anything *)
        let params = omission_3_1_2.params in
        let all_counters jobs =
          with_metrics (fun () ->
              ignore (Eba.Stats.exhaustive ~jobs (module Eba.P0opt) params);
              List.filter_map
                (fun e ->
                  if not e.Metrics.e_deterministic && e.Metrics.e_kind <> Metrics.Span
                  then Some (e.Metrics.e_name, e.Metrics.e_count)
                  else None)
                (Metrics.snapshot ()))
        in
        check "jobs=1 vs jobs=3 scheduling footprint differs" true
          (all_counters 1 <> all_counters 3));
  ]

let json_tests =
  [
    test "json printer escapes and shapes values" (fun () ->
        let j =
          Eba.Json.Obj
            [
              ("s", Eba.Json.String "a\"b\\c\nd");
              ("i", Eba.Json.Int 42);
              ("f", Eba.Json.Float 1.5);
              ("whole", Eba.Json.Float 3.0);
              ("nan", Eba.Json.Float Float.nan);
              ("l", Eba.Json.List [ Eba.Json.Bool true; Eba.Json.Null ]);
              ("empty", Eba.Json.Obj []);
            ]
        in
        let s = Eba.Json.to_string j in
        let contains sub =
          let n = String.length s and m = String.length sub in
          let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
          loop 0
        in
        check "escaped quote" true (contains {|a\"b\\c\nd|});
        check "int" true (contains "42");
        check "whole float keeps .0" true (contains "3.0");
        check "nan becomes null" true (contains "\"nan\": null");
        check "list" true (contains "true");
        check "empty obj" true (contains "{}"));
    test "metrics json snapshot is an object keyed by instrument" (fun () ->
        with_metrics (fun () ->
            Metrics.incr c_test;
            match Metrics.to_json (Metrics.snapshot ()) with
            | Eba.Json.Obj fields ->
                check "has test.counter" true (List.mem_assoc "test.counter" fields)
            | _ -> Alcotest.fail "expected an object"));
  ]

let suite = ("metrics", unit_tests @ metamorphic_tests @ jobs_tests @ json_tests)
