(* Odds and ends: formula printing, runner validation, omission-mode
   random-delay optimization, CLI-level protocol constructions. *)

module F = Eba.Formula
module M = Eba.Model
module N = Eba.Nonrigid
module KB = Eba.Kb_protocol
module Spec = Eba.Spec
module Dom = Eba.Dominance
module Con = Eba.Construct
module Ch = Eba.Characterize
module DS = Eba.Decision_set
module Val = Eba.Value
open Helpers

let pp_tests =
  [
    test "formula printer covers every operator" (fun () ->
        let m = model crash_3_1_3 in
        let nf = N.nonfaulty m in
        let e0 = F.exists_value m Val.Zero in
        let f =
          F.Implies
            ( F.And [ F.K (0, e0); F.B (nf, 1, F.Not e0); F.In (nf, 2) ],
              F.Or
                [
                  F.C (nf, e0);
                  F.Cbox (nf, F.Always e0);
                  F.Cdia (nf, F.Eventually e0);
                  F.Ebox (nf, F.Throughout e0);
                  F.Iff (F.Empty nf, F.Const false);
                ] )
        in
        let s = Format.asprintf "%a" F.pp f in
        List.iter
          (fun needle ->
            check needle true
              (let nl = String.length needle and ol = String.length s in
               let rec find i = i + nl <= ol && (String.sub s i nl = needle || find (i + 1)) in
               find 0))
          [ "K_0"; "B[N]_1"; "C[N]"; "C□[N]"; "C◇[N]"; "E□[N]"; "□"; "◇"; "⊟"; "exists0" ]);
  ]

(* a delayed chain protocol stays NTA in omission mode; its optimization
   must dominate and be optimal (the omission-mode twin of the crash-mode
   random-delay property) *)
let delayed_chain fixture delay =
  let e = env fixture in
  let m = model fixture in
  let ch = Eba.Zoo.chain_zero e in
  let store = m.M.store in
  let late set =
    DS.of_views m (fun v -> Eba.View.time store v >= delay && DS.mem set v)
  in
  { KB.zero = late ch.KB.zero; one = late ch.KB.one }

let delay_tests =
  [
    qtest ~count:3 "optimizing delayed chain variants (omission)"
      QCheck2.Gen.(int_bound 2)
      (fun delay ->
        let fixture = omission_3_1_2 in
        let e = env fixture in
        let m = model fixture in
        let pair = delayed_chain fixture delay in
        let d = KB.decide m pair in
        Spec.is_nontrivial_agreement (Spec.check d)
        &&
        let opt = Con.optimize ~first:Con.One_first e pair in
        let dopt = KB.decide m opt in
        Spec.is_nontrivial_agreement (Spec.check dopt)
        && Ch.is_optimal e dopt && Dom.dominates dopt d);
  ]

let runner_tests =
  [
    test "runner rejects malformed send arity" (fun () ->
        let module Bad : Eba.Protocol_intf.PROTOCOL = struct
          let name = "bad"

          type state = unit
          type msg = unit

          let init _ ~me:_ _ = ()
          let send _ () ~round:_ = [| None |] (* wrong arity *)
          let receive _ () ~round:_ _ = ()
          let output () = None
          let wire_size _ () = Eba.Protocol_intf.Wire.header
        end in
        let module R = Eba.Runner.Make (Bad) in
        let params = crash_3_1_3.params in
        Alcotest.check_raises "arity"
          (Invalid_argument "Runner: send must return one slot per destination")
          (fun () ->
            ignore
              (R.run params
                 (Eba.Config.constant ~n:3 Val.One)
                 (Eba.Pattern.failure_free params))));
    test "trace decisions printer" (fun () ->
        let m = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let d = KB.decide m (Eba.Zoo.p0 e) in
        let s = Format.asprintf "%a" (Eba.Trace.pp_decisions d ~run:0) () in
        check "mentions p2" true (String.length s > 0 && String.sub s 0 2 = "p0"));
  ]

let suite = ("misc", pp_tests @ delay_tests @ runner_tests)
