(* The multiplexed engine's load-bearing property: running N instances
   through one shared event loop is invisible.  Per-instance outcomes —
   decisions, decision instants, wire counters, rng-driven drop/latency
   draws — are bit-identical to running the sequential engine once per
   instance with the same (seed, run) generators, across every operational
   protocol and its compact variants, on both the batched (uniform
   constant-latency) and heap (randomized-latency, heterogeneous,
   zero-latency) paths, and independent of the parallel job count.

   Plus the satellite regressions: event-queue push/pop order pinned
   across growth boundaries and reserve/clear, timer-wheel slot
   semantics, the mux.* metrics counters, and the decision-round
   quantiles feeding the p99 headline number. *)

module Net = Eba.Net
module EQ = Net.Event_queue
module TW = Net.Timer_wheel
module Metrics = Eba.Metrics
open Helpers

let all_protocols : (string * (module Eba.Protocol_intf.PROTOCOL)) list =
  [
    ("P0", (module Eba.P0.P0));
    ("P0opt", (module Eba.P0opt));
    ("P0opt+", (module Eba.P0opt_plus));
    ("FloodSet", (module Eba.Floodset));
    ("Chain0", (module Eba.Chain0));
    ("P0opt-delta", (module Eba.P0opt_delta));
    ("P0opt+delta", (module Eba.P0opt_plus_delta));
    ("Chain0-cert", (module Eba.Chain0_cert));
  ]

(* --- event queue: growth boundaries, reserve, clear --- *)

let eq_growth_tests =
  [
    test "push/pop order pinned across growth boundaries" (fun () ->
        (* interleave duplicate and descending times so every growth
           boundary (16, 32, 64, 128) happens mid-tie; stable (time,
           seqno) order must survive the reallocation *)
        let q = EQ.create () in
        let items = List.init 200 (fun i -> (float_of_int ((i * 7) mod 13), i)) in
        List.iter (fun (t, i) -> EQ.push q ~time:t (t, i)) items;
        let rec drain acc =
          match EQ.pop q with None -> List.rev acc | Some (_, x) -> drain (x :: acc)
        in
        let expected =
          List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2) items
        in
        check "stable across growth" true (drain [] = expected));
    test "reserve on an empty queue sizes the next allocation" (fun () ->
        let q = EQ.create () in
        EQ.reserve q 500;
        List.iter (fun i -> EQ.push q ~time:(float_of_int (i mod 7)) i)
          (List.init 400 Fun.id);
        let rec drain acc =
          match EQ.pop q with None -> List.rev acc | Some (_, x) -> drain (x :: acc)
        in
        let expected =
          List.stable_sort
            (fun a b -> compare (a mod 7) (b mod 7))
            (List.init 400 Fun.id)
        in
        check "order with reserve" true (drain [] = expected));
    test "reserve grows a live queue in place" (fun () ->
        let q = EQ.create () in
        List.iter (fun i -> EQ.push q ~time:(float_of_int i) i) (List.init 10 Fun.id);
        EQ.reserve q 1000;
        List.iter
          (fun i -> EQ.push q ~time:(float_of_int i) i)
          (List.init 10 (fun i -> i + 10));
        let rec drain acc =
          match EQ.pop q with None -> List.rev acc | Some (_, x) -> drain (x :: acc)
        in
        check "content preserved" true (drain [] = List.init 20 Fun.id);
        check "reject negative" true
          (try
             EQ.reserve q (-1);
             false
           with Invalid_argument _ -> true));
    test "clear rewinds the shared sequence counter" (fun () ->
        let q = EQ.create () in
        EQ.push q ~time:1.0 "x";
        ignore (EQ.alloc_seq q);
        EQ.clear q;
        check_int "seq restarts" 0 (EQ.alloc_seq q);
        check "emptied" true (EQ.is_empty q));
    test "peek agrees with pop" (fun () ->
        let q = EQ.create () in
        EQ.push q ~time:2.0 "b";
        EQ.push q ~time:1.0 "a";
        (match EQ.peek q with
        | Some (t, s) ->
            check "peek time" true (t = 1.0);
            check_int "peek seq" 1 s
        | None -> Alcotest.fail "peek on non-empty");
        ignore (EQ.pop q);
        ignore (EQ.pop q);
        check "peek empty" true (EQ.peek q = None));
  ]

(* --- timer wheel --- *)

let wheel_tests =
  [
    test "create validates the tick schedule" (fun () ->
        List.iter
          (fun times ->
            check "reject" true
              (try
                 ignore (TW.create ~times);
                 false
               with Invalid_argument _ -> true))
          [ [| 1.0; 1.0 |]; [| 2.0; 1.0 |]; [| -1.0 |]; [| Float.nan |] ]);
    test "slots drain in append order and merge keys are exact" (fun () ->
        let w = TW.create ~times:[| 0.0; 1.5; 3.0 |] in
        check "exact hit" true (TW.index_of_time w 1.5 = Some 1);
        check "miss" true (TW.index_of_time w 1.4999 = None);
        TW.schedule w ~tick:1 ~seq:7 "a";
        TW.schedule w ~tick:1 ~seq:9 "b";
        check "cursor slot empty" true (TW.peek w = None);
        TW.advance w;
        check "peek head" true (TW.peek w = Some (1.5, 7));
        Alcotest.(check string) "take order" "a" (TW.take w);
        Alcotest.(check string) "take order" "b" (TW.take w);
        check "drained" true (TW.peek w = None);
        check "advance requires drained" true
          (try
             TW.schedule w ~tick:0 ~seq:1 "late";
             false
           with Invalid_argument _ -> true);
        TW.advance w;
        TW.advance w;
        check_int "exhausted" 3 (TW.cursor w));
    test "reset rewinds and keeps capacity" (fun () ->
        let w = TW.create ~times:[| 0.0; 1.0 |] in
        for i = 0 to 20 do
          TW.schedule w ~tick:1 ~seq:i i
        done;
        TW.reset w;
        check_int "rewound" 0 (TW.cursor w);
        TW.advance w;
        check "slots emptied" true (TW.peek w = None));
  ]

(* --- per-instance bit-identity against the sequential engine --- *)

let crash_params ~n ~t = Eba.Params.make ~n ~t ~horizon:(t + 1) ~mode:Eba.Params.Crash

(* the sequential side of the differential: replicates Netsim.sweep's
   per-run draw order exactly *)
let sequential_outcomes (module P : Eba.Protocol_intf.PROTOCOL) params ~sync
    ~topology ~plan ~seed ~runs =
  let module S = Net.Netsim.Make (P) in
  let n = params.Eba.Params.n in
  Array.init runs (fun run ->
      let rng = Net.Netsim.run_seed ~seed ~run in
      let config =
        Eba.Config.make
          (Array.init n (fun _ ->
               if Random.State.bool rng then Eba.Value.One else Eba.Value.Zero))
      in
      S.run_one params ~sync ~topology ~plan ~rng config)

let mux_matches (module P : Eba.Protocol_intf.PROTOCOL) params ?sync ~topology
    ~dynamic ~seed ~live ~runs () =
  let sync =
    match sync with Some s -> s | None -> Net.Sync.default_for topology
  in
  let plan = Net.Inject.Dynamic dynamic in
  let seq =
    sequential_outcomes (module P) params ~sync ~topology ~plan ~seed ~runs
  in
  let module M = Net.Mux.Make (P) in
  let eng = M.create params ~sync ~topology ~plan ~live in
  let compared = ref 0 in
  let rec waves first =
    if first < runs then begin
      let count = min live (runs - first) in
      M.run_wave eng
        ~rng_of_run:(fun run -> Net.Netsim.run_seed ~seed ~run)
        ~first ~count
        ~consume:(fun run o ->
          incr compared;
          if compare seq.(run) o <> 0 then
            Alcotest.failf "run %d: mux outcome differs from sequential" run);
      waves (first + count)
    end
  in
  waves 0;
  check_int "every run compared" runs !compared

let const_topology ~n ~loss =
  Net.Topology.make ~n ~link:(Net.Link.make ~latency:(Net.Link.Const 1.0) ~loss)

let uniform_topology ~n ~loss =
  Net.Topology.make ~n
    ~link:(Net.Link.make ~latency:(Net.Link.Uniform (0.2, 1.0)) ~loss)

let identity_tests =
  List.concat_map
    (fun (name, p) ->
      let params = crash_params ~n:6 ~t:2 in
      [
        test
          (Printf.sprintf "%s: mux = sequential, const latency (batched path)" name)
          (mux_matches p params
             ~topology:(const_topology ~n:6 ~loss:0.1)
             ~dynamic:(Net.Inject.dynamic ~max_faulty:2 ())
             ~seed:42 ~live:4 ~runs:7);
        test
          (Printf.sprintf "%s: mux = sequential, uniform latency (heap path)" name)
          (mux_matches p params
             ~topology:(uniform_topology ~n:6 ~loss:0.1)
             ~dynamic:(Net.Inject.dynamic ~max_faulty:2 ())
             ~seed:1729 ~live:4 ~runs:7);
      ])
    all_protocols

let corner_tests =
  [
    test "tie corner: rto = link latency, deliveries land exactly on ticks"
      (* every arrival instant is also a retry tick, so nothing batches
         and the wheel-vs-heap merge resolves every collision by seqno *)
      (mux_matches
         (module Eba.Floodset)
         (crash_params ~n:5 ~t:2)
         ~sync:(Net.Sync.make ~round_duration:8.0 ~rto:1.0 ~max_retries:7)
         ~topology:(const_topology ~n:5 ~loss:0.3)
         ~dynamic:(Net.Inject.dynamic ~max_faulty:2 ())
         ~seed:7 ~live:3 ~runs:6);
    test "zero-latency links: arrival = now falls back to the heap"
      (mux_matches
         (module Eba.Floodset)
         (crash_params ~n:4 ~t:1)
         ~sync:(Net.Sync.make ~round_duration:4.0 ~rto:1.0 ~max_retries:3)
         ~topology:
           (Net.Topology.make ~n:4
              ~link:(Net.Link.make ~latency:(Net.Link.Const 0.0) ~loss:0.2))
         ~dynamic:(Net.Inject.dynamic ~max_faulty:1 ())
         ~seed:11 ~live:4 ~runs:5);
    test "heterogeneous override disables batching, not correctness"
      (mux_matches
         (module Eba.Floodset)
         (crash_params ~n:5 ~t:1)
         ~topology:
           (Net.Topology.with_link (const_topology ~n:5 ~loss:0.1) ~src:0 ~dst:1
              (Net.Link.make ~latency:(Net.Link.Const 2.0) ~loss:0.5))
         ~dynamic:(Net.Inject.dynamic ~max_faulty:1 ())
         ~seed:23 ~live:3 ~runs:5);
    test "omissions and partitions under mux"
      (mux_matches
         (module Eba.Floodset)
         (Eba.Params.make ~n:6 ~t:2 ~horizon:3 ~mode:Eba.Params.Omission)
         ~topology:(const_topology ~n:6 ~loss:0.0)
         ~dynamic:
           (Net.Inject.dynamic ~max_faulty:2 ~omit_prob:0.3 ~partitions:2
              ~partition_span:2.0 ())
         ~seed:99 ~live:4 ~runs:8);
    test "single-instance waves degenerate to the sequential engine"
      (mux_matches
         (module Eba.Chain0)
         (crash_params ~n:4 ~t:1)
         ~topology:(uniform_topology ~n:4 ~loss:0.05)
         ~dynamic:(Net.Inject.dynamic ~max_faulty:1 ())
         ~seed:5 ~live:1 ~runs:4);
  ]

(* --- sweep-level equality and jobs-independence --- *)

let sweep_of ~jobs ?mux ~seed ~runs ~n ~t topology =
  let params = crash_params ~n ~t in
  let sync = Net.Sync.default_for topology in
  Net.Netsim.sweep ~jobs ?mux
    (module Eba.Floodset)
    params ~sync ~topology
    ~dynamic:(Net.Inject.dynamic ~max_faulty:t ())
    ~seed ~runs

let sweep_tests =
  [
    qtest ~count:6 "qcheck: sweep ~mux summary = sequential sweep, jobs 1 and 4"
      QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 3))
      (fun (seed, t) ->
        let topology = uniform_topology ~n:8 ~loss:0.1 in
        let s = sweep_of ~jobs:1 ~seed ~runs:11 ~n:8 ~t topology in
        compare s (sweep_of ~jobs:1 ~mux:4 ~seed ~runs:11 ~n:8 ~t topology) = 0
        && compare s (sweep_of ~jobs:4 ~mux:4 ~seed ~runs:11 ~n:8 ~t topology) = 0);
    test "batched path: mux sweep summary = sequential (multi-wave, partial last)"
      (fun () ->
        let topology = const_topology ~n:8 ~loss:0.05 in
        let s = sweep_of ~jobs:1 ~seed:2026 ~runs:10 ~n:8 ~t:2 topology in
        check "mux 3 (4 waves)" true
          (compare s (sweep_of ~jobs:1 ~mux:3 ~seed:2026 ~runs:10 ~n:8 ~t:2 topology)
          = 0);
        check "mux larger than runs" true
          (compare s
             (sweep_of ~jobs:1 ~mux:64 ~seed:2026 ~runs:10 ~n:8 ~t:2 topology)
          = 0));
  ]

(* --- decision-round quantiles (the p99 headline) --- *)

let quantile_tests =
  [
    test "decision-round histogram sums to decided and quantiles are monotone"
      (fun () ->
        let s =
          sweep_of ~jobs:1 ~seed:1 ~runs:12 ~n:8 ~t:3
            (uniform_topology ~n:8 ~loss:0.1)
        in
        let hist_sum = Array.fold_left ( + ) 0 s.Net.Net_stats.ns_round_hist in
        check_int "hist mass" s.Net.Net_stats.ns_decided_nonfaulty hist_sum;
        let q p = Net.Net_stats.quantile_decision_round s ~permille:p in
        check "monotone" true (q 500 <= q 990 && q 990 <= q 1000);
        check_int "p99 = permille 990" (q 990) (Net.Net_stats.p99_decision_round s);
        check "p99 within horizon" true (q 990 >= 1 && q 990 <= 4));
  ]

(* --- mux metrics --- *)

let metrics_tests =
  [
    test "mux.* counters fire and match across job counts" (fun () ->
        let was = Metrics.enabled () in
        Fun.protect
          ~finally:(fun () -> Metrics.set_enabled was)
          (fun () ->
            Metrics.set_enabled true;
            let run ~jobs =
              Metrics.reset ();
              ignore
                (sweep_of ~jobs ~mux:4 ~seed:3 ~runs:10 ~n:8 ~t:2
                   (const_topology ~n:8 ~loss:0.05));
              Metrics.deterministic_counters ()
            in
            let c1 = run ~jobs:1 in
            let value name =
              match List.assoc_opt name c1 with Some v -> v | None -> 0
            in
            check "timer ticks" true (value "mux.timer_ticks" > 0);
            check "batched deliveries" true (value "mux.batched_deliveries" > 0);
            check "arena reuses" true (value "mux.arena_reuses" > 0);
            check_int "peak live instances" 4 (value "mux.live_instances");
            check_int "runs counted once" 10 (value "net.runs_simulated");
            check "jobs-independent" true (run ~jobs:4 = c1)));
  ]

let tests =
  eq_growth_tests @ wheel_tests @ identity_tests @ corner_tests @ sweep_tests
  @ quantile_tests @ metrics_tests

let suite = ("mux", tests)
