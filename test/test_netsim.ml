(* The network simulator: event-queue determinism, timing validation, and
   the two load-bearing properties of the subsystem —

   1. Differential equivalence: replaying every exhaustive crash and
      omission pattern (n=3 t=1, loss-free fabric) through the round
      synchronizer produces decisions and per-run message counts identical
      to the lockstep Runner, for all five operational protocols.

   2. Determinism: a sampled netsim sweep is a pure function of its seed —
      bit-identical across --jobs values and across repeated runs — which
      is what makes the differential suite and the committed benchmark
      numbers meaningful.

   Plus the large-n acceptance workload: n=64 t=8 under nonzero loss with
   retransmission, zero spec violations, everyone nonfaulty decided. *)

module Net = Eba.Net
module EQ = Net.Event_queue
module Runner = Eba.Runner
module Val = Eba.Value
open Helpers

(* --- event queue --- *)

let eq_tests =
  [
    test "pop order is (time, seqno)" (fun () ->
        let q = EQ.create () in
        EQ.push q ~time:2.0 "c";
        EQ.push q ~time:1.0 "a";
        EQ.push q ~time:1.0 "b";
        EQ.push q ~time:0.5 "z";
        let order = List.init 4 (fun _ -> snd (Option.get (EQ.pop q))) in
        Alcotest.(check (list string)) "order" [ "z"; "a"; "b"; "c" ] order;
        check "drained" true (EQ.is_empty q));
    test "push rejects bad times" (fun () ->
        let q = EQ.create () in
        check "neg" true
          (try
             EQ.push q ~time:(-1.0) ();
             false
           with Invalid_argument _ -> true);
        check "nan" true
          (try
             EQ.push q ~time:Float.nan ();
             false
           with Invalid_argument _ -> true));
    qtest ~count:200 "qcheck: pop is a stable sort by time"
      QCheck2.Gen.(list_size (int_bound 40) (int_bound 5))
      (fun times ->
        let q = EQ.create () in
        List.iteri (fun i t -> EQ.push q ~time:(float_of_int t) (t, i)) times;
        let rec drain acc =
          match EQ.pop q with None -> List.rev acc | Some (_, x) -> drain (x :: acc)
        in
        let popped = drain [] in
        let expected =
          List.stable_sort
            (fun (t1, i1) (t2, i2) -> if t1 <> t2 then compare t1 t2 else compare i1 i2)
            (List.mapi (fun i t -> (t, i)) times)
        in
        popped = expected);
  ]

(* --- links and timing --- *)

let link_tests =
  [
    test "latency spec round-trips" (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check string)
              s s
              (Net.Link.latency_to_string (Net.Link.latency_of_string s)))
          [ "const:1"; "uniform:0.5,2"; "spike:1,0.01,50" ]);
    test "malformed latency specs raise" (fun () ->
        List.iter
          (fun s ->
            check s true
              (try
                 ignore (Net.Link.latency_of_string s);
                 false
               with Invalid_argument _ -> true))
          [ "1.0"; "const:"; "uniform:2,1"; "spike:1,2,3"; "gauss:1,2" ]);
    test "sync rejects a window smaller than the latency bound" (fun () ->
        let top =
          Net.Topology.make ~n:3
            ~link:(Net.Link.make ~latency:(Net.Link.Const 10.0) ~loss:0.0)
        in
        let sync = Net.Sync.make ~round_duration:5.0 ~rto:1.0 ~max_retries:2 in
        check "check raises" true
          (try
             Net.Sync.check sync top;
             false
           with Invalid_argument _ -> true);
        (* and the default timing always fits *)
        Net.Sync.check (Net.Sync.default_for top) top);
    test "topology override changes one directed link only" (fun () ->
        let slow = Net.Link.make ~latency:(Net.Link.Const 9.0) ~loss:0.5 in
        let top =
          Net.Topology.with_link (Net.Netsim.lossless_topology ~n:4) ~src:1 ~dst:2 slow
        in
        check "override" true (Net.Topology.link top ~src:1 ~dst:2 = slow);
        check "reverse untouched" true
          (Net.Link.latency_bound (Net.Topology.link top ~src:2 ~dst:1).Net.Link.lat
          = 1.0);
        check "bound grows" true (Net.Topology.latency_bound top = 9.0));
  ]

(* --- differential equivalence against the lockstep runner --- *)

let operational_protocols : (string * (module Eba.Protocol_intf.PROTOCOL)) list =
  [
    ("P0", (module Eba.P0.P0));
    ("P0opt", (module Eba.P0opt));
    ("P0opt+", (module Eba.P0opt_plus));
    ("FloodSet", (module Eba.Floodset));
    ("Chain0", (module Eba.Chain0));
  ]

let replay_disagreements (module P : Eba.Protocol_intf.PROTOCOL) params =
  let module R = Runner.Make (P) in
  let module S = Net.Netsim.Make (P) in
  let bad = ref [] in
  Seq.iter
    (fun (config, pattern) ->
      let lock = R.run params config pattern in
      let net = S.replay params pattern config in
      let show = function
        | None -> "undecided"
        | Some { Runner.at; value } -> Format.asprintf "%a@%d" Val.pp value at
      in
      for i = 0 to params.Eba.Params.n - 1 do
        let same =
          match (lock.Runner.decisions.(i), net.Net.Net_stats.o_decisions.(i)) with
          | None, None -> true
          | Some a, Some b -> a.Runner.at = b.Runner.at && Val.equal a.Runner.value b.Runner.value
          | None, Some _ | Some _, None -> false
        in
        if not same then
          bad :=
            Format.asprintf "%a / %a proc %d: runner %s vs netsim %s" Eba.Config.pp
              config Eba.Pattern.pp pattern i
              (show lock.Runner.decisions.(i))
              (show net.Net.Net_stats.o_decisions.(i))
            :: !bad
      done;
      if
        lock.Runner.messages_attempted <> net.Net.Net_stats.o_attempted
        || lock.Runner.messages_delivered <> net.Net.Net_stats.o_delivered
      then
        bad :=
          Format.asprintf "%a / %a: runner msgs %d/%d vs netsim %d/%d" Eba.Config.pp
            config Eba.Pattern.pp pattern lock.Runner.messages_delivered
            lock.Runner.messages_attempted net.Net.Net_stats.o_delivered
            net.Net.Net_stats.o_attempted
          :: !bad)
    (Eba.Universe.workload_seq params);
  !bad

let replay_agrees name p params () =
  match replay_disagreements p params with
  | [] -> ()
  | first :: _ as all ->
      Alcotest.failf "%s: %d replay entries disagree with Runner; first: %s" name
        (List.length all) first

let differential_tests =
  List.concat_map
    (fun (name, p) ->
      [
        test
          (Printf.sprintf "%s netsim replay = Runner, exhaustive crash n=3 t=1" name)
          (replay_agrees name p crash_3_1_3.params);
        test
          (Printf.sprintf "%s netsim replay = Runner, exhaustive omission n=3 t=1"
             name)
          (replay_agrees name p omission_3_1_3.params);
      ])
    operational_protocols

(* --- determinism of sampled sweeps --- *)

let sweep_of ~jobs ~seed ~runs ~loss ~n ~t =
  let params = Eba.Params.make ~n ~t ~horizon:(t + 1) ~mode:Eba.Params.Crash in
  let topology =
    Net.Topology.make ~n
      ~link:(Net.Link.make ~latency:(Net.Link.Uniform (0.2, 1.0)) ~loss)
  in
  let sync = Net.Sync.default_for topology in
  Net.Netsim.sweep ~jobs
    (module Eba.Floodset)
    params ~sync ~topology
    ~dynamic:(Net.Inject.dynamic ~max_faulty:t ())
    ~seed ~runs

let determinism_tests =
  [
    qtest ~count:8 "qcheck: sweep summary is bit-identical for jobs=1 and jobs=4"
      QCheck2.Gen.(pair (int_bound 10_000) (int_range 2 5))
      (fun (seed, t) ->
        let s1 = sweep_of ~jobs:1 ~seed ~runs:12 ~loss:0.1 ~n:8 ~t in
        let s4 = sweep_of ~jobs:4 ~seed ~runs:12 ~loss:0.1 ~n:8 ~t in
        compare s1 s4 = 0);
    qtest ~count:8 "qcheck: sweep summary is bit-identical across repeated runs"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        let s1 = sweep_of ~jobs:2 ~seed ~runs:10 ~loss:0.05 ~n:6 ~t:2 in
        let s2 = sweep_of ~jobs:2 ~seed ~runs:10 ~loss:0.05 ~n:6 ~t:2 in
        compare s1 s2 = 0);
    test "different seeds give different traffic" (fun () ->
        let s1 = sweep_of ~jobs:1 ~seed:1 ~runs:10 ~loss:0.1 ~n:8 ~t:3 in
        let s2 = sweep_of ~jobs:1 ~seed:2 ~runs:10 ~loss:0.1 ~n:8 ~t:3 in
        check "distinct" true (compare s1 s2 <> 0));
  ]

(* --- dynamic adversaries and the large-n acceptance workload --- *)

let acceptance_tests =
  [
    test "dynamic crash compile: crash times exactly on the chosen faulty" (fun () ->
        let params = Eba.Params.make ~n:16 ~t:5 ~horizon:6 ~mode:Eba.Params.Crash in
        let rng = Net.Netsim.run_seed ~seed:42 ~run:0 in
        let inj =
          Net.Inject.compile rng params ~total_time:100.0
            (Net.Inject.Dynamic (Net.Inject.dynamic ~max_faulty:5 ()))
        in
        let faulty = Net.Inject.faulty inj in
        Array.iteri
          (fun p f ->
            check "crash time iff faulty" true
              (Option.is_some (Net.Inject.crash_time inj ~proc:p) = f))
          faulty);
    slow "n=64 t=8, loss 5%, retransmission: zero violations, all decide" (fun () ->
        let n = 64 and t = 8 in
        let params = Eba.Params.make ~n ~t ~horizon:(t + 1) ~mode:Eba.Params.Crash in
        let topology =
          Net.Topology.make ~n
            ~link:(Net.Link.make ~latency:(Net.Link.Uniform (0.2, 1.0)) ~loss:0.05)
        in
        let sync = Net.Sync.default_for topology in
        let s =
          Net.Netsim.sweep ~jobs:1
            (module Eba.Floodset)
            params ~sync ~topology
            ~dynamic:(Net.Inject.dynamic ~max_faulty:t ())
            ~seed:2026 ~runs:3
        in
        check_int "agreement violations" 0 s.Net.Net_stats.ns_agreement_violations;
        check_int "validity violations" 0 s.Net.Net_stats.ns_validity_violations;
        check_int "undecided nonfaulty" 0 s.Net.Net_stats.ns_undecided_nonfaulty;
        check "everyone nonfaulty decided" true
          (s.Net.Net_stats.ns_decided_nonfaulty > 0);
        check "loss actually happened" true
          (s.Net.Net_stats.ns_wire.Net.Net_stats.w_dropped_loss > 0);
        check "retransmission actually masked it" true
          (s.Net.Net_stats.ns_wire.Net.Net_stats.w_retransmissions > 0));
    test "transient partitions sever copies but retransmission masks them" (fun () ->
        let n = 8 in
        let params = Eba.Params.make ~n ~t:2 ~horizon:3 ~mode:Eba.Params.Omission in
        let topology =
          Net.Topology.make ~n
            ~link:(Net.Link.make ~latency:(Net.Link.Const 1.0) ~loss:0.0)
        in
        let sync = Net.Sync.default_for topology in
        let s =
          Net.Netsim.sweep ~jobs:1
            (module Eba.Floodset)
            params ~sync ~topology
            ~dynamic:
              (Net.Inject.dynamic ~max_faulty:2 ~omit_prob:0.3 ~partitions:2
                 ~partition_span:(2.0 *. sync.Net.Sync.rto) ())
            ~seed:7 ~runs:20
        in
        check "partition cut some copies" true
          (s.Net.Net_stats.ns_wire.Net.Net_stats.w_dropped_cut > 0);
        check_int "agreement violations" 0 s.Net.Net_stats.ns_agreement_violations;
        check_int "undecided nonfaulty" 0 s.Net.Net_stats.ns_undecided_nonfaulty);
  ]

(* --- cooperative cancellation and progress --- *)

let sweep_cancellable ?cancel ?progress ?mux ~jobs ~runs () =
  let n = 4 and t = 1 in
  let params = Eba.Params.make ~n ~t ~horizon:(t + 1) ~mode:Eba.Params.Crash in
  let topology =
    Net.Topology.make ~n
      ~link:(Net.Link.make ~latency:(Net.Link.Const 1.0) ~loss:0.0)
  in
  let sync = Net.Sync.default_for topology in
  Net.Netsim.sweep ~jobs ?mux ?cancel ?progress
    (module Eba.Floodset)
    params ~sync ~topology
    ~dynamic:(Net.Inject.dynamic ~max_faulty:t ())
    ~seed:11 ~runs

let cancel_tests =
  [
    test "a pre-fired token cancels the sweep before any run" (fun () ->
        List.iter
          (fun (jobs, mux) ->
            let cancel = Eba.Cancel.create () in
            Eba.Cancel.cancel cancel;
            match sweep_cancellable ~cancel ?mux ~jobs ~runs:50 () with
            | _ -> Alcotest.fail "cancelled sweep returned a summary"
            | exception Eba.Cancel.Cancelled -> ())
          [ (1, None); (4, None); (1, Some 8); (4, Some 8) ]);
    test "a token fired from mid-sweep progress stops within the sweep"
      (fun () ->
        (* fire the token the moment the third run completes: the sweep
           must raise instead of running all 10_000 remaining runs, which
           is exactly the per-run poll the daemon's cancel verb relies on *)
        let cancel = Eba.Cancel.create () in
        let seen = ref 0 in
        let progress ~done_ ~total:_ =
          seen := max !seen done_;
          if done_ >= 3 then Eba.Cancel.cancel cancel
        in
        (match sweep_cancellable ~cancel ~progress ~jobs:1 ~runs:10_000 () with
        | _ -> Alcotest.fail "cancelled sweep returned a summary"
        | exception Eba.Cancel.Cancelled -> ());
        check "stopped promptly" true (!seen < 100));
    test "progress reports every run exactly once, jobs 1 and 4, mux on \
          and off"
      (fun () ->
        List.iter
          (fun (jobs, mux) ->
            let ticks = ref 0 and peak = ref 0 and totals_ok = ref true in
            let lock = Mutex.create () in
            let progress ~done_ ~total =
              Mutex.lock lock;
              incr ticks;
              peak := max !peak done_;
              if total <> 40 then totals_ok := false;
              Mutex.unlock lock
            in
            let runs = 40 in
            ignore (sweep_cancellable ~progress ?mux ~jobs ~runs ());
            check "total is always the run count" true !totals_ok;
            check_int "cumulative done reaches runs" runs !peak;
            (* non-mux ticks once per run; mux ticks once per completed
               wave batch, so at most once per run either way *)
            check "no overcounting" true (!ticks <= runs))
          [ (1, None); (4, None); (1, Some 8); (4, Some 8) ]);
    test "a cancelled sweep with progress never reports beyond the stop"
      (fun () ->
        let cancel = Eba.Cancel.create () in
        Eba.Cancel.cancel cancel;
        let called = ref false in
        let progress ~done_:_ ~total:_ = called := true in
        (match
           sweep_cancellable ~cancel ~progress ~jobs:1 ~runs:50 ()
         with
        | _ -> Alcotest.fail "cancelled sweep returned a summary"
        | exception Eba.Cancel.Cancelled -> ());
        check "no progress after a pre-fired token" false !called);
  ]

let tests =
  eq_tests @ link_tests @ differential_tests @ determinism_tests
  @ acceptance_tests @ cancel_tests

let suite = ("netsim", tests)
