(* The domain pool and the streaming sweep engine: parallel results must be
   bit-identical to sequential ones, and the streamed enumerators must agree
   with the closed-form counts. *)

module Par = Eba.Parallel
module U = Eba.Universe
module Params = Eba.Params
module Stats = Eba.Stats
open Helpers

let pool_tests =
  [
    test "jobs override and restore" (fun () ->
        let outside = Par.jobs () in
        Par.with_jobs 3 (fun () -> check_int "inside" 3 (Par.jobs ()));
        check_int "restored" outside (Par.jobs ()));
    test "parallel_for covers every index exactly once" (fun () ->
        List.iter
          (fun jobs ->
            let n = 1000 in
            let hits = Array.make n 0 in
            Par.parallel_for ~jobs n (fun i -> hits.(i) <- hits.(i) + 1);
            check "all once" true (Array.for_all (fun h -> h = 1) hits))
          [ 1; 4 ]);
    test "parallel_for n=0" (fun () ->
        Par.parallel_for ~jobs:4 0 (fun _ -> failwith "should not run"));
    test "map_reduce_seq sums match sequential" (fun () ->
        let seq () = Seq.init 10_000 Fun.id in
        let total jobs =
          let r =
            Par.map_reduce_seq ~jobs ~chunk:7 ~init:(fun () -> ref 0)
              ~fold:(fun acc x -> acc := !acc + x)
              ~merge:(fun acc other -> acc := !acc + !other)
              (seq ())
          in
          !r
        in
        check_int "jobs=4" (total 1) (total 4));
    test "map_reduce_seq empty sequence" (fun () ->
        let r =
          Par.map_reduce_seq ~jobs:4 ~init:(fun () -> ref 0)
            ~fold:(fun acc _ -> incr acc)
            ~merge:(fun acc other -> acc := !acc + !other)
            Seq.empty
        in
        check_int "empty" 0 !r);
    test "worker exceptions propagate" (fun () ->
        check "raises" true
          (try
             Par.parallel_for ~jobs:4 100 (fun i -> if i = 57 then failwith "boom");
             false
           with Failure _ -> true));
  ]

(* Universe.count / behaviour_count vs the observed lengths of the streams,
   across all three modes and both flavours (skipping parameter points whose
   exhaustive universe is too large to walk in a unit test). *)
let gen_params_flavour =
  QCheck2.Gen.(
    map
      (fun ((n, t_raw, horizon), (mode, flavour)) ->
        (Params.make ~n ~t:(min t_raw (n - 1)) ~horizon ~mode, flavour))
      (pair
         (triple (int_range 2 4) (int_range 0 2) (int_range 1 2))
         (pair
            (oneofl [ Params.Crash; Params.Omission; Params.General_omission ])
            (oneofl [ U.Exhaustive; U.Sparse ]))))

let count_tests =
  [
    qtest ~count:60 "patterns_seq length = count; behaviours = behaviour_count"
      gen_params_flavour
      (fun (params, flavour) ->
        QCheck2.assume (U.count ~flavour params <= 20_000);
        Seq.length (U.patterns_seq ~flavour params) = U.count ~flavour params
        && List.for_all
             (fun proc ->
               List.length (U.behaviours_for ~flavour params ~proc)
               = U.behaviour_count ~flavour params)
             (Params.procs params));
    test "patterns list agrees with stream" (fun () ->
        let params = crash_3_1_3.params in
        check_int "same length"
          (List.length (U.patterns params))
          (Seq.length (U.patterns_seq params)));
    test "workload_seq is count * 2^n long" (fun () ->
        let params = omission_3_1_2.params in
        check_int "runs" (U.count params * 8) (Seq.length (U.workload_seq params)));
  ]

(* Bit-identical summaries: the whole point of the deterministic merge. *)
let by_failures_eq (a : Stats.by_failures) (b : Stats.by_failures) =
  a.Stats.failures = b.Stats.failures
  && a.Stats.count = b.Stats.count
  && Float.equal a.Stats.mean_time b.Stats.mean_time
  && a.Stats.max_time = b.Stats.max_time
  && a.Stats.undecided = b.Stats.undecided

let summary_eq (a : Stats.summary) (b : Stats.summary) =
  a.Stats.protocol = b.Stats.protocol
  && a.Stats.runs = b.Stats.runs
  && a.Stats.agreement_violations = b.Stats.agreement_violations
  && a.Stats.validity_violations = b.Stats.validity_violations
  && a.Stats.undecided_nonfaulty = b.Stats.undecided_nonfaulty
  && Float.equal a.Stats.mean_time b.Stats.mean_time
  && a.Stats.max_time = b.Stats.max_time
  && List.length a.Stats.by_failures = List.length b.Stats.by_failures
  && List.for_all2 by_failures_eq a.Stats.by_failures b.Stats.by_failures
  && a.Stats.messages_attempted = b.Stats.messages_attempted
  && a.Stats.messages_delivered = b.Stats.messages_delivered

let sweep_determinism_tests =
  let identical name (module P : Eba.Protocol_intf.PROTOCOL) params =
    test name (fun () ->
        let seq = Stats.exhaustive ~jobs:1 (module P) params in
        let par = Stats.exhaustive ~jobs:4 (module P) params in
        check "bit-identical summary" true (summary_eq seq par))
  in
  [
    identical "exhaustive crash n=3 t=1: jobs=1 = jobs=4" (module Eba.Floodset)
      crash_3_1_3.params;
    identical "exhaustive omission n=3 t=1: jobs=1 = jobs=4" (module Eba.Chain0)
      omission_3_1_3.params;
    test "sampled is deterministic in seed across jobs" (fun () ->
        let p = crash_3_1_3.params in
        let a = Stats.sampled ~jobs:1 (module Eba.Floodset) p ~seed:7 ~samples:200 in
        let b = Stats.sampled ~jobs:4 (module Eba.Floodset) p ~seed:7 ~samples:200 in
        check "equal" true (summary_eq a b));
    test "knowledge kernels agree across jobs" (fun () ->
        let model = model crash_3_1_3 in
        let e = env crash_3_1_3 in
        let nf = Eba.Nonrigid.nonfaulty model in
        let phi = Eba.Formula.eval e (Eba.Formula.exists_value model Eba.Value.zero) in
        let seq = Par.with_jobs 1 (fun () -> Eba.Knowledge.everyone_knows model nf phi) in
        let par = Par.with_jobs 4 (fun () -> Eba.Knowledge.everyone_knows model nf phi) in
        check "equal point sets" true (Eba.Pset.equal seq par));
  ]

let suite = ("parallel", pool_tests @ count_tests @ sweep_determinism_tests)
