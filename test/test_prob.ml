(* The exact probability engine, tested at three levels:

   1. Foundations: qcheck laws for `Bigint` and `Q` against the native-int
      model below overflow, plus normalization/rendering invariants.
   2. Ground truth: the Markov chain of a sync round window agrees exactly
      (rational equality, not tolerance) with the closed forms and with
      the Binomial(m, q) factorization at small sizes.
   3. Differential: seeded Monte Carlo netsim sweeps land inside exact
      99.9% binomial confidence bounds computed from the Markov answer —
      the enumerated/sampled discipline of PRs 2-6 applied to
      probabilities.  A sweep also pins the deterministic decision time
      against the model's exact nanosecond count. *)

open Helpers
module B = Eba.Bigint
module Q = Eba.Prob.Q
module RC = Eba.Prob.Round_chain
module Bin = Eba.Prob.Binomial
module Report = Eba.Prob.Report
module Net = Eba.Net

(* --- Bigint vs the native-int model --- *)

let gen_i9 = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000

(* A value that overflows native ints: a product of three 9-digit ints. *)
let gen_big =
  QCheck2.Gen.map
    (fun ((a, b), c) -> B.mul (B.mul (B.of_int a) (B.of_int b)) (B.of_int c))
    QCheck2.Gen.(pair (pair gen_i9 gen_i9) gen_i9)

let bigint_tests =
  [
    qtest "qcheck: of_int/to_int_opt round-trips the whole int range"
      QCheck2.Gen.int
      (fun x -> B.to_int_opt (B.of_int x) = Some x);
    qtest "qcheck: add matches the int model below overflow"
      QCheck2.Gen.(pair gen_i9 gen_i9)
      (fun (a, b) -> B.to_int_opt (B.add (B.of_int a) (B.of_int b)) = Some (a + b));
    qtest "qcheck: sub matches the int model below overflow"
      QCheck2.Gen.(pair gen_i9 gen_i9)
      (fun (a, b) -> B.to_int_opt (B.sub (B.of_int a) (B.of_int b)) = Some (a - b));
    qtest "qcheck: mul matches the int model below overflow"
      QCheck2.Gen.(pair gen_i9 gen_i9)
      (fun (a, b) -> B.to_int_opt (B.mul (B.of_int a) (B.of_int b)) = Some (a * b))
      (* 10^9 * 10^9 = 10^18 < 2^62 *);
    qtest "qcheck: pow matches the int model below overflow"
      QCheck2.Gen.(pair (int_range (-30) 30) (int_range 0 12))
      (fun (b, e) ->
        let rec ipow acc i = if i = 0 then acc else ipow (acc * b) (i - 1) in
        B.to_int_opt (B.pow (B.of_int b) e) = Some (ipow 1 e));
    qtest "qcheck: compare agrees with the int model"
      QCheck2.Gen.(pair gen_i9 gen_i9)
      (fun (a, b) -> B.compare (B.of_int a) (B.of_int b) = compare a b);
    qtest "qcheck: to_string round-trips through of_string" gen_big (fun x ->
        B.equal (B.of_string (B.to_string x)) x);
    qtest "qcheck: to_string matches the int model" QCheck2.Gen.int (fun x ->
        B.to_string (B.of_int x) = string_of_int x);
    qtest "qcheck: divmod invariant a = q*b + r with |r| < |b|, sign of a"
      QCheck2.Gen.(pair gen_big (map B.of_int (oneof [ gen_i9; int_range 1 50 ])))
      (fun (a, b) ->
        if B.sign b = 0 then true
        else begin
          let q, r = B.divmod a b in
          B.equal a (B.add (B.mul q b) r)
          && B.compare (B.abs r) (B.abs b) < 0
          && (B.sign r = 0 || B.sign r = B.sign a)
        end);
    qtest "qcheck: gcd divides both and matches Euclid on ints"
      QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 100000))
      (fun (a, b) ->
        let rec euclid a b = if b = 0 then a else euclid b (a mod b) in
        B.to_int_opt (B.gcd (B.of_int a) (B.of_int b)) = Some (euclid a b));
    qtest "qcheck: gcd of big products divides both" gen_big (fun x ->
        let y = B.mul x (B.of_int 91) in
        let g = B.gcd x y in
        if B.sign x = 0 then B.equal g (B.abs y)
        else
          B.sign (snd (B.divmod x g)) = 0 && B.sign (snd (B.divmod y g)) = 0);
    qtest "qcheck: num_digits equals the decimal rendering's length" gen_big
      (fun x -> B.num_digits x = String.length (B.to_string (B.abs x)));
    test "of_string rejects garbage" (fun () ->
        List.iter
          (fun s ->
            check (Printf.sprintf "reject %S" s) true
              (match B.of_string s with
              | _ -> false
              | exception Invalid_argument _ -> true))
          [ ""; "-"; "1_2"; "0x10"; "12.5"; " 7" ]);
    test "min_int corner: negation and rendering" (fun () ->
        let m = B.of_int min_int in
        check "to_string" true (B.to_string m = string_of_int min_int);
        check "round trip" true (B.to_int_opt m = Some min_int);
        check "neg leaves int range" true
          (B.to_int_opt (B.neg m) = None
          && B.equal (B.neg (B.neg m)) m));
  ]

(* --- Q: normalization, field laws, rendering --- *)

let gen_q =
  QCheck2.Gen.map
    (fun (a, b) -> Q.of_ints a (if b = 0 then 1 else b))
    QCheck2.Gen.(pair (int_range (-10000) 10000) (int_range (-10000) 10000))

let q_tests =
  [
    qtest "qcheck: make normalizes (den > 0, gcd = 1, sign on numerator)"
      QCheck2.Gen.(pair (int_range (-100000) 100000) (int_range (-100000) 100000))
      (fun (a, b) ->
        if b = 0 then true
        else begin
          let q = Q.of_ints a b in
          B.sign (Q.den q) > 0
          && B.equal (B.gcd (Q.num q) (Q.den q)) B.one
          && Q.sign q = compare (a * b) 0
        end);
    qtest "qcheck: (a + b) - b = a" QCheck2.Gen.(pair gen_q gen_q)
      (fun (a, b) -> Q.equal (Q.sub (Q.add a b) b) a);
    qtest "qcheck: a * (b + c) = a*b + a*c"
      QCheck2.Gen.(pair gen_q (pair gen_q gen_q))
      (fun (a, (b, c)) ->
        Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)));
    qtest "qcheck: (a / b) * b = a for b <> 0" QCheck2.Gen.(pair gen_q gen_q)
      (fun (a, b) -> Q.is_zero b || Q.equal (Q.mul (Q.div a b) b) a);
    qtest "qcheck: pow agrees with iterated mul"
      QCheck2.Gen.(pair gen_q (int_range 0 8))
      (fun (q, k) ->
        let rec go acc i = if i = 0 then acc else go (Q.mul acc q) (i - 1) in
        Q.equal (Q.pow q k) (go Q.one k));
    qtest "qcheck: pow of a negative exponent inverts"
      QCheck2.Gen.(pair gen_q (int_range 1 6))
      (fun (q, k) ->
        Q.is_zero q || Q.equal (Q.pow q (-k)) (Q.inv (Q.pow q k)));
    qtest "qcheck: compare is antisymmetric and agrees with sub's sign"
      QCheck2.Gen.(pair gen_q gen_q)
      (fun (a, b) ->
        Q.compare a b = -Q.compare b a && Q.compare a b = Q.sign (Q.sub a b));
    qtest "qcheck: equal coincides with compare = 0 (canonical forms)"
      QCheck2.Gen.(pair gen_q gen_q)
      (fun (a, b) -> Q.equal a b = (Q.compare a b = 0));
    qtest "qcheck: decimal literals round-trip exactly"
      QCheck2.Gen.(pair (int_range 1 999999) (int_range 0 3))
      (fun (a, k) ->
        let x = Q.make (B.of_int a) (B.pow (B.of_int 10) k) in
        Q.equal (Q.of_decimal_string (Q.to_decimal ~sig_figs:12 x)) x);
    test "of_float is exact on dyadics" (fun () ->
        check "0.5" true (Q.equal (Q.of_float 0.5) (Q.of_ints 1 2));
        check "-0.375" true (Q.equal (Q.of_float (-0.375)) (Q.of_ints (-3) 8));
        check "2.5" true (Q.equal (Q.of_float 2.5) (Q.of_ints 5 2));
        check "20.0" true (Q.equal (Q.of_float 20.0) (Q.of_int 20));
        check "0" true (Q.equal (Q.of_float 0.0) Q.zero));
    test "of_float 0.1 is the float, not the literal" (fun () ->
        (* the binary double closest to 0.1 — exactly why probcheck parses
           loss from the decimal string instead *)
        check "0.1 <> 1/10" false (Q.equal (Q.of_float 0.1) (Q.of_ints 1 10));
        check "0.1 dyadic den" true
          (B.equal (Q.den (Q.of_float 0.1))
             (B.pow (B.of_int 2) 55)));
    test "of_decimal_string parses exactly" (fun () ->
        check "0.05" true (Q.equal (Q.of_decimal_string "0.05") (Q.of_ints 1 20));
        check "3.14" true (Q.equal (Q.of_decimal_string "3.14") (Q.of_ints 157 50));
        check "-0.125" true
          (Q.equal (Q.of_decimal_string "-0.125") (Q.of_ints (-1) 8));
        check "10" true (Q.equal (Q.of_decimal_string "10") (Q.of_int 10));
        check ".5" true (Q.equal (Q.of_decimal_string ".5") (Q.of_ints 1 2));
        List.iter
          (fun s ->
            check (Printf.sprintf "reject %S" s) true
              (match Q.of_decimal_string s with
              | _ -> false
              | exception Invalid_argument _ -> true))
          [ ""; "."; "1e5"; "1.2.3"; "1/2" ]);
    test "to_decimal renders like %g" (fun () ->
        let cases =
          [
            (Q.of_ints 1 2, "0.5");
            (Q.of_ints 1 20, "0.05");
            (Q.of_ints (-3) 2, "-1.5");
            (Q.of_int 0, "0");
            (Q.of_ints 1 3, "0.333333333");
            (Q.of_ints 2 3, "0.666666667");
            (Q.of_ints 1 25_600_000_000, "3.90625e-11");
            (Q.of_ints 567 400_000_000, "1.4175e-06");
            (Q.of_int 180_000_000_000, "1.8e+11");
          ]
        in
        List.iter
          (fun (q, expect) ->
            Alcotest.(check string) expect expect (Q.to_decimal q))
          cases;
        Alcotest.(check string) "sig_figs=3 rounding overflow" "1e+03"
          (Q.to_decimal ~sig_figs:3 (Q.of_ints 999999 1000)));
    test "decimal_of_ratio works unreduced" (fun () ->
        Alcotest.(check string) "6/4" "1.5"
          (Q.decimal_of_ratio ~num:(B.of_int 6) ~den:(B.of_int 4) ()));
  ]

(* --- Binomial: exact distribution arithmetic --- *)

let binomial_tests =
  [
    test "choose: Pascal row 6" (fun () ->
        List.iteri
          (fun k expect ->
            check_int (Printf.sprintf "C(6,%d)" k) expect
              (Option.get (B.to_int_opt (Bin.choose 6 k))))
          [ 1; 6; 15; 20; 15; 6; 1 ]);
    qtest "qcheck: choose satisfies the Pascal recurrence"
      QCheck2.Gen.(pair (int_range 1 40) (int_range 0 40))
      (fun (n, k) ->
        B.equal (Bin.choose n k)
          (B.add (Bin.choose (n - 1) (k - 1)) (Bin.choose (n - 1) k)));
    qtest "qcheck: pmf sums to exactly one"
      QCheck2.Gen.(pair (int_range 1 12) (pair (int_range 0 10) (int_range 1 10)))
      (fun (n, (a, b)) ->
        let p = Q.of_ints (min a b) (max (min a b) b) in
        let total = ref Q.zero in
        for k = 0 to n do
          total := Q.add !total (Bin.pmf ~n ~k ~p)
        done;
        Q.equal !total Q.one);
    qtest "qcheck: two_sided_bounds is the tightest exact central interval"
      QCheck2.Gen.(pair (int_range 1 40) (int_range 1 19))
      (fun (n, a) ->
        let p = Q.of_ints a 20 in
        let alpha = Q.of_ints 1 1000 in
        let half = Q.div alpha (Q.of_int 2) in
        let lo, hi = Bin.two_sided_bounds ~n ~p ~alpha in
        let cdf k = Bin.cdf ~n ~k ~p in
        lo <= hi
        && (lo = 0 || Q.compare (cdf (lo - 1)) half <= 0)
        && Q.compare (cdf lo) half > 0
        && Q.compare (cdf hi) (Q.sub Q.one half) >= 0
        && (hi = 0 || Q.compare (cdf (hi - 1)) (Q.sub Q.one half) < 0));
    test "two_sided_bounds degenerate p" (fun () ->
        check "p=0" true (Bin.two_sided_bounds ~n:50 ~p:Q.zero ~alpha:(Q.of_ints 1 100) = (0, 0));
        check "p=1" true (Bin.two_sided_bounds ~n:50 ~p:Q.one ~alpha:(Q.of_ints 1 100) = (50, 50)));
    test "two_sided_bounds at Monte Carlo scale brackets the mean" (fun () ->
        let lo, hi =
          Bin.two_sided_bounds ~n:7200 ~p:(Q.of_ints 1 16) ~alpha:(Q.of_ints 1 1000)
        in
        check "lo <= mean" true (lo <= 450);
        check "mean <= hi" true (450 <= hi);
        check "bounds discriminate a wrong attempt count" true
          (hi < 900 && lo > 225));
  ]

(* --- Round_chain: spec, chain-vs-closed-form, landing --- *)

let sync ~d ~rto ~retries = Net.Sync.make ~round_duration:d ~rto ~max_retries:retries

(* rto=1, window=4, deep budget: the PR 6 boundary case — the retry at
   offset 4 would land exactly on the close, so only 4 attempts exist. *)
let boundary_sync = sync ~d:4.0 ~rto:1.0 ~retries:7

let chain_tests =
  [
    test "attempt_times mirrors attempts on the default timing" (fun () ->
        List.iter
          (fun bound ->
            let topo =
              Net.Topology.make ~n:4
                ~link:(Net.Link.make ~latency:(Net.Link.Const bound) ~loss:0.0)
            in
            let s = Net.Sync.default_for topo in
            let times = Net.Sync.attempt_times s in
            check_int
              (Printf.sprintf "bound %g" bound)
              (Net.Sync.attempts s) (Array.length times);
            check "starts at 0" true (times.(0) = 0.0);
            Array.iteri
              (fun i t ->
                if i > 0 then begin
                  check "increasing" true (t > times.(i - 1));
                  check "inside window" true (t < s.Net.Sync.round_duration)
                end)
              times)
          [ 0.0; 0.25; 1.0; 3.0 ]);
    test "boundary window = k * rto admits k attempts, not k+1" (fun () ->
        check_int "attempts" 4 (Net.Sync.attempts boundary_sync);
        check_int "attempt_times" 4 (Array.length (Net.Sync.attempt_times boundary_sync));
        check "offsets" true (Net.Sync.attempt_times boundary_sync = [| 0.0; 1.0; 2.0; 3.0 |]));
    test "spec: constant latency inside the window saturates in_window" (fun () ->
        let spec =
          RC.spec ~sync:(sync ~d:8.0 ~rto:1.0 ~retries:1)
            ~latency:(Net.Link.Const 0.25) ~loss:(Q.of_ints 1 4)
        in
        check_int "attempts" 2 spec.RC.attempts;
        Array.iter (fun u -> check "u = 1" true (Q.equal u Q.one)) spec.RC.in_window;
        Array.iter
          (fun s -> check "s = 3/4" true (Q.equal s (Q.of_ints 3 4)))
          spec.RC.success;
        check "miss = 1/16" true
          (Q.equal (RC.per_message_miss spec) (Q.of_ints 1 16)));
    test "spec: uniform latency crosses the last cutoff" (fun () ->
        let spec =
          RC.spec ~sync:boundary_sync
            ~latency:(Net.Link.Uniform (0.5, 1.5))
            ~loss:(Q.of_ints 1 2)
        in
        (* cutoffs 4, 3, 2, 1: the attempt-4 copy only lands if its latency
           is below 1.0, i.e. with probability (1 - 0.5) / (1.5 - 0.5). *)
        check "u = [1; 1; 1; 1/2]" true
          (Array.for_all2 Q.equal spec.RC.in_window
             [| Q.one; Q.one; Q.one; Q.of_ints 1 2 |]);
        check "q = 3/32" true
          (Q.equal (RC.per_message_miss spec) (Q.of_ints 3 32)));
    test "spec: spike latency mixes the two branches" (fun () ->
        let spec =
          RC.spec ~sync:boundary_sync
            ~latency:(Net.Link.Spike { base = 0.5; prob = 0.25; spike = 10.0 })
            ~loss:Q.zero
        in
        Array.iter
          (fun u -> check "u = 3/4" true (Q.equal u (Q.of_ints 3 4)))
          spec.RC.in_window);
    test "latency_cdf edge: arrival exactly at the close is late" (fun () ->
        check "const at cutoff" true
          (Q.is_zero (RC.latency_cdf (Net.Link.Const 1.0) ~cutoff:(Q.of_int 1)));
        check "const below cutoff" true
          (Q.equal (RC.latency_cdf (Net.Link.Const 0.99) ~cutoff:(Q.of_int 1)) Q.one));
    test "chain rows are exact probability distributions" (fun () ->
        let spec =
          RC.spec ~sync:boundary_sync
            ~latency:(Net.Link.Uniform (0.5, 1.5))
            ~loss:(Q.of_ints 1 2)
        in
        let rows = RC.chain spec ~m:6 in
        check_int "rows" (spec.RC.attempts + 1) (Array.length rows);
        Array.iter
          (fun row ->
            let total = Array.fold_left Q.add Q.zero row in
            check "row sums to 1" true (Q.equal total Q.one))
          rows);
    test "chain absorbs into Binomial(m, q): exact rational equality" (fun () ->
        let spec =
          RC.spec ~sync:boundary_sync
            ~latency:(Net.Link.Uniform (0.5, 1.5))
            ~loss:(Q.of_ints 1 2)
        in
        let m = 6 in
        let rows = RC.chain spec ~m in
        let final = rows.(spec.RC.attempts) in
        let q = RC.per_message_miss spec in
        for j = 0 to m do
          check
            (Printf.sprintf "P(%d undelivered)" j)
            true
            (Q.equal final.(j) (Bin.pmf ~n:m ~k:j ~p:q))
        done);
    test "chain mass at zero equals the all_by closed form at every step" (fun () ->
        let spec =
          RC.spec ~sync:boundary_sync
            ~latency:(Net.Link.Uniform (0.5, 1.5))
            ~loss:(Q.of_ints 1 2)
        in
        let m = 5 in
        let rows = RC.chain spec ~m in
        for k = 0 to spec.RC.attempts do
          check
            (Printf.sprintf "all_by %d" k)
            true
            (Q.equal rows.(k).(0) (RC.all_by spec ~m ~k))
        done);
    test "chain expectation equals m * q" (fun () ->
        let spec =
          RC.spec ~sync:(sync ~d:8.0 ~rto:1.0 ~retries:2)
            ~latency:(Net.Link.Const 0.25) ~loss:(Q.of_ints 1 4)
        in
        let m = 7 in
        let rows = RC.chain spec ~m in
        let final = rows.(spec.RC.attempts) in
        let expectation = ref Q.zero in
        Array.iteri
          (fun j p -> expectation := Q.add !expectation (Q.mul (Q.of_int j) p))
          final;
        check "E = m*q" true
          (Q.equal !expectation (RC.expected_undelivered spec ~m)));
    test "landing distribution is consistent with all_by and sums to one" (fun () ->
        let spec =
          RC.spec ~sync:boundary_sync
            ~latency:(Net.Link.Uniform (0.5, 1.5))
            ~loss:(Q.of_ints 1 2)
        in
        let m = 5 in
        let landing = RC.landing ~sig_figs:9 spec ~m in
        check_int "all_by entries" (spec.RC.attempts + 1)
          (Array.length landing.RC.all_by_attempt);
        Array.iteri
          (fun i d ->
            let exact =
              Q.sub landing.RC.all_by_attempt.(i + 1) landing.RC.all_by_attempt.(i)
            in
            Alcotest.(check string)
              (Printf.sprintf "exactly %d" (i + 1))
              (Q.to_decimal ~sig_figs:9 exact) d)
          landing.RC.exactly_decimal;
        Alcotest.(check string) "residual"
          (Q.to_decimal ~sig_figs:9
             (Q.one_minus landing.RC.all_by_attempt.(spec.RC.attempts)))
          landing.RC.residual_decimal;
        (* exact total: all_by A + residual = 1 *)
        check "monotone" true
          (Array.for_all
             (fun k ->
               Q.compare landing.RC.all_by_attempt.(k)
                 landing.RC.all_by_attempt.(k + 1)
               <= 0)
             (Array.init spec.RC.attempts (fun i -> i))));
    test "committed n=64 row: exact residual miss, misses, decision time" (fun () ->
        let report = Eba_harness.Probcheck_cases.n64 () in
        check "q = 1/25600000000" true
          (Q.equal report.Report.per_message_miss (Q.of_ints 1 25_600_000_000));
        check "E misses = 567/400000000" true
          (Q.equal report.Report.expected_misses_per_run
             (Q.of_ints 567 400_000_000));
        Alcotest.(check string) "q decimal" "3.90625e-11"
          (Q.to_decimal report.Report.per_message_miss);
        check "decision = 180e9 ns" true
          (Q.equal report.Report.decision_time_ns (Q.of_int 180_000_000_000));
        check_int "attempts" 8 report.Report.spec.RC.attempts;
        check_int "messages per run" 36288 report.Report.messages_per_run);
  ]

(* --- Monte Carlo differential: seeded sweeps inside exact bounds --- *)

(* A loss-only sweep (no faults): every one of the runs * rounds * n(n-1)
   FloodSet messages independently misses its window with the model's
   exact probability q, so the sweep's missed-message count is a
   Binomial(N, q) draw.  Assert it lands inside the exact two-sided 99.9%
   interval — and that the deterministic decision times match the model's
   nanosecond count exactly. *)
let mc_case ~name ~n ~t ~latency ~loss ~loss_float ~sync ~runs ~seed ~jobs () =
  let rounds = t + 1 in
  let spec = RC.spec ~sync ~latency ~loss in
  let q = RC.per_message_miss spec in
  let total = runs * rounds * n * (n - 1) in
  let lo, hi = Bin.two_sided_bounds ~n:total ~p:q ~alpha:(Q.of_ints 1 1000) in
  let params = Eba.Params.make ~n ~t ~horizon:rounds ~mode:Eba.Params.Crash in
  let topology =
    Net.Topology.make ~n ~link:(Net.Link.make ~latency ~loss:loss_float)
  in
  let summary =
    Net.Netsim.sweep ~jobs
      (module Eba.Floodset)
      params ~sync ~topology
      ~dynamic:(Net.Inject.dynamic ~max_faulty:0 ())
      ~seed ~runs
  in
  check_int (name ^ ": every message attempted") total
    summary.Net.Net_stats.ns_attempted;
  let missed =
    summary.Net.Net_stats.ns_attempted - summary.Net.Net_stats.ns_delivered
  in
  check
    (Printf.sprintf "%s: missed=%d inside exact 99.9%% bounds [%d, %d]" name
       missed lo hi)
    true
    (lo <= missed && missed <= hi);
  (* decision time: fault-free FloodSet decides at the close of round t+1,
     and the model's exact nanosecond count must match the simulator's. *)
  let report = Report.make ~n ~t ~rounds ~loss ~latency ~sync () in
  let per_decision =
    Option.get (B.to_int_opt (Q.num report.Report.decision_time_ns))
  in
  check "decision_time_ns is integral" true
    (B.equal (Q.den report.Report.decision_time_ns) B.one);
  check_int (name ^ ": all nonfaulty decided") (n * runs)
    summary.Net.Net_stats.ns_decided_nonfaulty;
  check_int
    (name ^ ": decision ns sum = decided * model")
    (n * runs * per_decision)
    summary.Net.Net_stats.ns_decision_ns_sum

let mc_settings =
  [
    (* retry budget of 1: A = 2, q = (1/4)^2 *)
    ( "budget",
      mc_case ~name:"budget" ~n:4 ~t:1 ~latency:(Net.Link.Const 0.25)
        ~loss:(Q.of_ints 1 4) ~loss_float:0.25
        ~sync:(sync ~d:8.0 ~rto:1.0 ~retries:1)
        ~runs:300 ~seed:20260808 );
    (* PR 6 boundary, window = 4 * rto: A = 4 (truncation would say 5),
       q = (1/2)^4 — a wrong attempt count doubles the expected count and
       lands far outside the 99.9% interval *)
    ( "boundary",
      mc_case ~name:"boundary" ~n:4 ~t:1 ~latency:(Net.Link.Const 0.25)
        ~loss:(Q.of_ints 1 2) ~loss_float:0.5 ~sync:boundary_sync ~runs:300
        ~seed:31337 );
    (* no retries at all: the miss probability is the raw loss 3/8 *)
    ( "no-retries",
      mc_case ~name:"no-retries" ~n:4 ~t:1 ~latency:(Net.Link.Const 0.25)
        ~loss:(Q.of_ints 3 8) ~loss_float:0.375
        ~sync:(sync ~d:8.0 ~rto:1.0 ~retries:0)
        ~runs:100 ~seed:4242 );
    (* uniform latency crossing the last cutoff: q = (1/2)^3 * 3/4 *)
    ( "uniform-tail",
      mc_case ~name:"uniform-tail" ~n:4 ~t:1
        ~latency:(Net.Link.Uniform (0.5, 1.5))
        ~loss:(Q.of_ints 1 2) ~loss_float:0.5 ~sync:boundary_sync ~runs:200
        ~seed:90210 );
  ]

let mc_tests =
  List.concat_map
    (fun (name, case) ->
      [
        slow (Printf.sprintf "MC differential (%s), jobs=1" name) (case ~jobs:1);
        slow (Printf.sprintf "MC differential (%s), jobs=4" name) (case ~jobs:4);
      ])
    mc_settings

(* --- golden probcheck reports --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_tests =
  [
    test "probcheck small report matches the committed golden JSON" (fun () ->
        Alcotest.(check string) "probcheck_small.expected"
          (read_file "golden/probcheck_small.expected")
          (Eba.Json.to_string
             (Report.to_json (Eba_harness.Probcheck_cases.small ()))));
    slow "probcheck n=64 report matches the committed golden JSON" (fun () ->
        Alcotest.(check string) "probcheck_n64.expected"
          (read_file "golden/probcheck_n64.expected")
          (Eba.Json.to_string
             (Report.to_json (Eba_harness.Probcheck_cases.n64 ()))));
  ]

(* --- cooperative cancellation --- *)

let cancel_tests =
  [
    test "a pre-fired token cancels Report.make before the analysis"
      (fun () ->
        let cancel = Eba.Cancel.create () in
        Eba.Cancel.cancel cancel;
        let latency = Eba.Net.Link.Const 1.0 in
        let sync =
          Eba.Net.Sync.default_for
            (Eba.Net.Topology.make ~n:4
               ~link:(Eba.Net.Link.make ~latency ~loss:0.0))
        in
        match
          Report.make ~cancel ~n:4 ~t:1 ~rounds:2 ~loss:(Q.of_ints 1 20)
            ~latency ~sync ()
        with
        | _ -> Alcotest.fail "cancelled report returned"
        | exception Eba.Cancel.Cancelled -> ());
    test "a pre-fired token cancels Round_chain.landing row enumeration"
      (fun () ->
        let cancel = Eba.Cancel.create () in
        Eba.Cancel.cancel cancel;
        let spec =
          RC.spec ~sync:boundary_sync
            ~latency:(Net.Link.Uniform (0.5, 1.5))
            ~loss:(Q.of_ints 1 2)
        in
        match RC.landing ~cancel spec ~m:5 with
        | _ -> Alcotest.fail "cancelled landing returned"
        | exception Eba.Cancel.Cancelled -> ());
  ]

let suite =
  ( "prob",
    bigint_tests @ q_tests @ binomial_tests @ chain_tests @ mc_tests
    @ golden_tests @ cancel_tests )
