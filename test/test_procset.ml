(* Word/Wide processor-set equivalence (the PR-5 tentpole's safety net):

   1. Model checking: [Procset.Wide] agrees with a sorted-int-list model on
      random operation sequences at widths straddling every limb boundary
      — {0, 61, 62, 63, 64, 127, 128, 200}.

   2. Representation agreement: [Word] and [Wide] traces coincide
      element-for-element at widths <= 62, including [compare] signs and
      the enumeration orders of [subsets]/[subsets_of]/[subsets_upto]
      (protocol code folds over these, so order is observable).

   3. Protocol differential: P0opt, P0opt+ and Chain0 instantiated at
      [Word] and at [Wide] make bit-identical decisions (and message
      counts) across the exhaustive crash and omission n=3 t=1 universes.

   4. A wide netsim acceptance run: P0opt.Wide at n=80 (beyond any
      single-word representation) under loss, zero spec violations. *)

module Word = Eba.Procset.Word
module Wide = Eba.Procset.Wide
module Runner = Eba.Runner
module Net = Eba.Net
open Helpers

let sorted_unique l = List.sort_uniq Stdlib.compare l

(* --- operation sequences, applied to an arbitrary representation --- *)

type op =
  | Add of int
  | Remove of int
  | Union of int list
  | Inter of int list
  | Diff of int list

module Trace (S : Eba.Procset.S) = struct
  (* the [to_list] image of the state after every step *)
  let run ops =
    let step s = function
      | Add i -> S.add i s
      | Remove i -> S.remove i s
      | Union l -> S.union s (S.of_list l)
      | Inter l -> S.inter s (S.of_list l)
      | Diff l -> S.diff s (S.of_list l)
    in
    let _, tr =
      List.fold_left
        (fun (s, tr) op ->
          let s' = step s op in
          (s', S.to_list s' :: tr))
        (S.empty, []) ops
    in
    List.rev tr
end

module Trace_word = Trace (Word)
module Trace_wide = Trace (Wide)

let model_trace ops =
  let step l = function
    | Add i -> sorted_unique (i :: l)
    | Remove i -> List.filter (fun x -> x <> i) l
    | Union m -> sorted_unique (l @ m)
    | Inter m -> List.filter (fun x -> List.mem x m) l
    | Diff m -> List.filter (fun x -> not (List.mem x m)) l
  in
  let _, tr =
    List.fold_left
      (fun (l, tr) op ->
        let l' = step l op in
        (l', l' :: tr))
      ([], []) ops
  in
  List.rev tr

let gen_ops width =
  let open QCheck2.Gen in
  let elem = if width <= 1 then pure 0 else int_bound (width - 1) in
  let set = list_size (int_bound 8) elem in
  let op =
    oneof
      [
        map (fun i -> Add i) elem;
        map (fun i -> Remove i) elem;
        map (fun l -> Union l) set;
        map (fun l -> Inter l) set;
        map (fun l -> Diff l) set;
      ]
  in
  list_size (int_bound 25) op

let boundary_widths = [ 0; 61; 62; 63; 64; 127; 128; 200 ]
let word_widths = [ 0; 31; 61; 62 ]

let model_tests =
  List.map
    (fun w ->
      qtest ~count:80
        (Printf.sprintf "qcheck: Wide = list model, ops at width %d" w)
        (gen_ops w)
        (fun ops -> Trace_wide.run ops = model_trace ops))
    boundary_widths

let agreement_tests =
  List.map
    (fun w ->
      qtest ~count:80
        (Printf.sprintf "qcheck: Wide = Word, ops at width %d" w)
        (gen_ops w)
        (fun ops -> Trace_wide.run ops = Trace_word.run ops))
    word_widths

(* sets as element lists below width 62, for cross-representation checks *)
let gen_pair =
  QCheck2.Gen.(
    pair (list_size (int_bound 15) (int_bound 61)) (list_size (int_bound 15) (int_bound 61)))

let sign x = Stdlib.compare x 0

let predicate_tests =
  [
    qtest ~count:200 "qcheck: compare signs agree with Word" gen_pair (fun (a, b) ->
        sign (Word.compare (Word.of_list a) (Word.of_list b))
        = sign (Wide.compare (Wide.of_list a) (Wide.of_list b)));
    qtest ~count:200 "qcheck: subset/disjoint/equal agree with Word" gen_pair
      (fun (a, b) ->
        let wa = Word.of_list a and wb = Word.of_list b in
        let da = Wide.of_list a and db = Wide.of_list b in
        Word.subset wa wb = Wide.subset da db
        && Word.disjoint wa wb = Wide.disjoint da db
        && Word.equal wa wb = Wide.equal da db);
    qtest ~count:200 "qcheck: fold order, choose, cardinal agree with Word" gen_pair
      (fun (a, _) ->
        let wa = Word.of_list a and da = Wide.of_list a in
        Word.fold (fun i acc -> i :: acc) wa []
        = Wide.fold (fun i acc -> i :: acc) da []
        && Word.choose wa = Wide.choose da
        && Word.cardinal wa = Wide.cardinal da
        && Word.to_list (Word.filter (fun i -> i mod 2 = 0) wa)
           = Wide.to_list (Wide.filter (fun i -> i mod 2 = 0) da));
  ]

let enumeration_tests =
  [
    test "subsets_of order matches Word" (fun () ->
        let mask = [ 1; 3; 4; 7 ] in
        Alcotest.(check (list (list int)))
          "order"
          (List.map Word.to_list (Word.subsets_of (Word.of_list mask)))
          (List.map Wide.to_list (Wide.subsets_of (Wide.of_list mask))));
    test "subsets order matches Word" (fun () ->
        Alcotest.(check (list (list int)))
          "order"
          (List.map Word.to_list (Word.subsets 5))
          (List.map Wide.to_list (Wide.subsets 5)));
    test "subsets_upto order matches Word" (fun () ->
        Alcotest.(check (list (list int)))
          "order"
          (List.map Word.to_list (Word.subsets_upto 6 3))
          (List.map Wide.to_list (Wide.subsets_upto 6 3)));
    test "subsets_of with members beyond one limb" (fun () ->
        let subs = Wide.subsets_of (Wide.of_list [ 5; 70; 130 ]) in
        Alcotest.(check (list (list int)))
          "counting order over member positions"
          [ []; [ 5 ]; [ 70 ]; [ 5; 70 ]; [ 130 ]; [ 5; 130 ]; [ 70; 130 ]; [ 5; 70; 130 ] ]
          (List.map Wide.to_list subs));
    test "subsets_of refuses > 62 members" (fun () ->
        check "raises" true
          (try
             ignore (Wide.subsets_of (Wide.full 63));
             false
           with Invalid_argument _ -> true));
    test "subsets_upto at wide n stays small" (fun () ->
        let subs = Wide.subsets_upto 100 1 in
        check_int "1 + 100" 101 (List.length subs);
        check "card sorted" true
          (List.map Wide.cardinal subs = List.sort Stdlib.compare (List.map Wide.cardinal subs)));
  ]

let wide_unit_tests =
  [
    test "full across limb boundaries" (fun () ->
        List.iter
          (fun n ->
            let s = Wide.full n in
            check_int (Printf.sprintf "cardinal full %d" n) n (Wide.cardinal s);
            if n > 0 then check "top member" true (Wide.mem (n - 1) s);
            check "no overflow member" false (Wide.mem n s))
          [ 0; 1; 61; 62; 63; 124; 125; 200 ]);
    test "add/remove far beyond a word is canonical" (fun () ->
        let base = Wide.of_list [ 0; 3 ] in
        let roundtrip = Wide.remove 200 (Wide.add 200 base) in
        check "equal" true (Wide.equal base roundtrip);
        check_int "compare" 0 (Wide.compare base roundtrip));
    test "cross-length union/inter/diff" (fun () ->
        let lo = Wide.of_list [ 0; 5 ] and hi = Wide.of_list [ 5; 150 ] in
        Alcotest.(check (list int)) "union" [ 0; 5; 150 ] (Wide.to_list (Wide.union lo hi));
        Alcotest.(check (list int)) "inter" [ 5 ] (Wide.to_list (Wide.inter lo hi));
        Alcotest.(check (list int)) "diff lo hi" [ 0 ] (Wide.to_list (Wide.diff lo hi));
        Alcotest.(check (list int)) "diff hi lo" [ 150 ] (Wide.to_list (Wide.diff hi lo));
        check "inter collapses to short form" true
          (Wide.equal (Wide.inter lo hi) (Wide.of_list [ 5 ])));
    test "subset/disjoint across lengths" (fun () ->
        check "shorter subset of longer" true
          (Wide.subset (Wide.of_list [ 1 ]) (Wide.of_list [ 1; 100 ]));
        check "longer not subset of shorter" false
          (Wide.subset (Wide.of_list [ 1; 100 ]) (Wide.of_list [ 1 ]));
        check "disjoint across lengths" true
          (Wide.disjoint (Wide.of_list [ 2 ]) (Wide.of_list [ 3; 90 ])));
    test "pp matches Word's format" (fun () ->
        Alcotest.(check string)
          "format" "{0,2,63}"
          (Format.asprintf "%a" Wide.pp (Wide.of_list [ 63; 0; 2 ])));
  ]

(* --- Word vs Wide protocol instances: bit-identical decisions --- *)

let rep_pairs :
    (string
    * (module Eba.Protocol_intf.PROTOCOL)
    * (module Eba.Protocol_intf.PROTOCOL))
    list =
  [
    ("P0opt", (module Eba.P0opt.Word), (module Eba.P0opt.Wide));
    ("P0opt+", (module Eba.P0opt_plus.Word), (module Eba.P0opt_plus.Wide));
    ("Chain0", (module Eba.Chain0.Word), (module Eba.Chain0.Wide));
  ]

let rep_disagreements (module A : Eba.Protocol_intf.PROTOCOL)
    (module B : Eba.Protocol_intf.PROTOCOL) params =
  let module RA = Runner.Make (A) in
  let module RB = Runner.Make (B) in
  let bad = ref 0 in
  Seq.iter
    (fun (config, pattern) ->
      let ta = RA.run params config pattern in
      let tb = RB.run params config pattern in
      if Stdlib.compare ta tb <> 0 then incr bad)
    (Eba.Universe.workload_seq params);
  !bad

let rep_differential_tests =
  List.concat_map
    (fun (name, word, wide) ->
      [
        test
          (Printf.sprintf "%s Word = Wide, exhaustive crash n=3 t=1" name)
          (fun () ->
            check_int "disagreeing runs" 0
              (rep_disagreements word wide crash_3_1_3.params));
        test
          (Printf.sprintf "%s Word = Wide, exhaustive omission n=3 t=1" name)
          (fun () ->
            check_int "disagreeing runs" 0
              (rep_disagreements word wide omission_3_1_3.params));
      ])
    rep_pairs

(* --- beyond any single word: optimal protocols under the simulator --- *)

let wide_netsim_tests =
  [
    test "P0opt.Wide n=80 under 5% loss: zero violations, all decide" (fun () ->
        let n = 80 and t = 8 in
        let params = Eba.Params.make ~n ~t ~horizon:(t + 1) ~mode:Eba.Params.Crash in
        let topology =
          Net.Topology.make ~n
            ~link:(Net.Link.make ~latency:(Net.Link.Uniform (0.2, 1.0)) ~loss:0.05)
        in
        let sync = Net.Sync.default_for topology in
        let s =
          Net.Netsim.sweep ~jobs:1
            (Eba.P0opt.for_params params)
            params ~sync ~topology
            ~dynamic:(Net.Inject.dynamic ~max_faulty:t ())
            ~seed:5 ~runs:4
        in
        check_int "agreement violations" 0 s.Net.Net_stats.ns_agreement_violations;
        check_int "validity violations" 0 s.Net.Net_stats.ns_validity_violations;
        check_int "undecided nonfaulty" 0 s.Net.Net_stats.ns_undecided_nonfaulty;
        check "everyone nonfaulty decided" true
          (s.Net.Net_stats.ns_decided_nonfaulty > 0));
    test "for_params switches representation at the word width" (fun () ->
        (* observational: the wide instance must accept n = 63 where the
           word one raises on its first heard-set [add] past the width cap *)
        let mk n = Eba.Params.make ~n ~t:1 ~horizon:2 ~mode:Eba.Params.Crash in
        let run_with (module P : Eba.Protocol_intf.PROTOCOL) n =
          let params = mk n in
          let st = ref (P.init params ~me:0 Eba.Value.One) in
          let arrived = Array.make n None in
          (* everyone else sends me their round-1 message *)
          let senders =
            List.init (n - 1) (fun j ->
                let stj = P.init params ~me:(j + 1) Eba.Value.One in
                (j + 1, (P.send params stj ~round:1).(0)))
          in
          List.iter (fun (j, m) -> arrived.(j) <- m) senders;
          st := P.receive params !st ~round:1 arrived;
          P.output !st
        in
        check "word instance handles n=62" true
          (run_with (module Eba.P0opt.Word) 62 <> Some Eba.Value.Zero);
        check "for_params instance handles n=63" true
          (run_with (Eba.P0opt.for_params (mk 63)) 63 <> Some Eba.Value.Zero));
  ]

let tests =
  model_tests @ agreement_tests @ predicate_tests @ enumeration_tests @ wide_unit_tests
  @ rep_differential_tests @ wide_netsim_tests

let suite = ("procset", tests)
