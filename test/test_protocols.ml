(* Operational protocols: unit behaviour, specification compliance over
   exhaustive universes, and statistics plumbing. *)

module Params = Eba.Params
module Cfg = Eba.Config
module Pat = Eba.Pattern
module Val = Eba.Value
module B = Eba.Bitset
module Stats = Eba.Stats
module Runner = Eba.Runner
open Helpers

let crash_params = crash_3_1_3.params
let omission_params = omission_3_1_3.params

let run_p0 = Stats.run_one (module Eba.P0.P0) crash_params
let run_p0opt = Stats.run_one (module Eba.P0opt) crash_params
let run_flood = Stats.run_one (module Eba.Floodset) crash_params

let decision_of trace i = trace.Runner.decisions.(i)

let unit_tests =
  [
    test "P0: zero holders decide 0 at time 0 and flood" (fun () ->
        let trace = run_p0 (Cfg.of_bits ~n:3 0b110) (Pat.failure_free crash_params) in
        (match decision_of trace 0 with
        | Some { Runner.at; value } ->
            check_int "time" 0 at;
            check "value" true (Val.equal value Val.Zero)
        | None -> Alcotest.fail "no decision");
        (* everyone else learns the zero in round 1 *)
        List.iter
          (fun i ->
            match decision_of trace i with
            | Some { Runner.at; value } ->
                check_int "time" 1 at;
                check "value" true (Val.equal value Val.Zero)
            | None -> Alcotest.fail "no decision")
          [ 1; 2 ]);
    test "P0: all-one run decides 1 at t+1" (fun () ->
        let trace = run_p0 (Cfg.constant ~n:3 Val.One) (Pat.failure_free crash_params) in
        for i = 0 to 2 do
          match decision_of trace i with
          | Some { Runner.at; value } ->
              check_int "deadline" 2 at;
              check "one" true (Val.equal value Val.One)
          | None -> Alcotest.fail "no decision"
        done);
    test "P0opt: all-one failure-free run decides 1 at time 1 (rule a)" (fun () ->
        let trace = run_p0opt (Cfg.constant ~n:3 Val.One) (Pat.failure_free crash_params) in
        for i = 0 to 2 do
          match decision_of trace i with
          | Some { Runner.at; value } ->
              check_int "fast" 1 at;
              check "one" true (Val.equal value Val.One)
          | None -> Alcotest.fail "no decision"
        done);
    test "P0opt: quiescence rule (b) fires after a silent crash" (fun () ->
        (* p0 crashes before round 1 reaching nobody: survivors hear the
           same set {each other} in rounds 1 and 2 and decide 1 at time 2 *)
        let b = Pat.crash ~horizon:3 ~proc:0 ~round:1 ~recipients:B.empty in
        let pattern = Pat.make crash_params [ b ] in
        let trace = run_p0opt (Cfg.constant ~n:3 Val.One) pattern in
        List.iter
          (fun i ->
            match decision_of trace i with
            | Some { Runner.at; value } ->
                check_int "time 2" 2 at;
                check "one" true (Val.equal value Val.One)
            | None -> Alcotest.fail "no decision")
          [ 1; 2 ]);
    test "FloodSet: everyone decides exactly at t+1" (fun () ->
        let trace = run_flood (Cfg.of_bits ~n:3 0b010) (Pat.failure_free crash_params) in
        for i = 0 to 2 do
          match decision_of trace i with
          | Some { Runner.at; value } ->
              check_int "t+1" 2 at;
              check "zero wins" true (Val.equal value Val.Zero)
          | None -> Alcotest.fail "no decision"
        done);
    test "Chain0: failure-free all-one decides 1 at time 1" (fun () ->
        let trace =
          Stats.run_one (module Eba.Chain0) omission_params (Cfg.constant ~n:3 Val.One)
            (Pat.failure_free omission_params)
        in
        for i = 0 to 2 do
          match decision_of trace i with
          | Some { Runner.at; value } ->
              check_int "f+1 = 1" 1 at;
              check "one" true (Val.equal value Val.One)
          | None -> Alcotest.fail "no decision"
        done);
    test "message accounting" (fun () ->
        let trace = run_flood (Cfg.constant ~n:3 Val.One) (Pat.failure_free crash_params) in
        (* 3 procs * 2 destinations * 3 rounds *)
        check_int "attempted" 18 trace.Runner.messages_attempted;
        check_int "delivered" 18 trace.Runner.messages_delivered);
  ]

let spec_over_universe (module P : Eba.Protocol_intf.PROTOCOL) params =
  let s = Stats.exhaustive (module P) params in
  check (P.name ^ " agreement") true (s.Stats.agreement_violations = 0);
  check (P.name ^ " validity") true (s.Stats.validity_violations = 0);
  check (P.name ^ " decision") true (s.Stats.undecided_nonfaulty = 0)

let universe_tests =
  [
    test "P0 meets EBA over the exhaustive crash universe" (fun () ->
        spec_over_universe (module Eba.P0.P0) crash_params);
    test "P1 meets EBA over the exhaustive crash universe" (fun () ->
        spec_over_universe (module Eba.P0.P1) crash_params);
    test "P0opt meets EBA over the exhaustive crash universe" (fun () ->
        spec_over_universe (module Eba.P0opt) crash_params;
        spec_over_universe (module Eba.P0opt) crash_4_1_3.params);
    test "FloodSet meets SBA over the exhaustive crash universe" (fun () ->
        spec_over_universe (module Eba.Floodset) crash_params;
        (* simultaneity: decisions always exactly at t+1 *)
        let s = Stats.exhaustive (module Eba.Floodset) crash_params in
        List.iter
          (fun (b : Stats.by_failures) ->
            check "max = t+1" true (b.Stats.max_time = 2);
            check "mean = t+1" true (Float.abs (b.Stats.mean_time -. 2.0) < 1e-9))
          s.Stats.by_failures);
    test "Chain0 meets EBA over the exhaustive omission universe" (fun () ->
        spec_over_universe (module Eba.Chain0) omission_params);
    test "Chain0 respects the f+1 bound per failure count" (fun () ->
        let s = Stats.exhaustive (module Eba.Chain0) omission_params in
        List.iter
          (fun (b : Stats.by_failures) -> check "≤ f+1" true (b.Stats.max_time <= b.Stats.failures + 1))
          s.Stats.by_failures);
    slow "Chain0 at n=4 t=2 omission (sparse universe)" (fun () ->
        let params = Params.make ~n:4 ~t:2 ~horizon:3 ~mode:Params.Omission in
        let s =
          Stats.exhaustive ~flavour:Eba.Universe.Sparse (module Eba.Chain0) params
        in
        check "agreement" true (s.Stats.agreement_violations = 0);
        check "validity" true (s.Stats.validity_violations = 0);
        check "decision" true (s.Stats.undecided_nonfaulty = 0);
        List.iter
          (fun (b : Stats.by_failures) -> check "≤ f+1" true (b.Stats.max_time <= b.Stats.failures + 1))
          s.Stats.by_failures);
  ]

let sampled_tests =
  [
    test "sampled harness is deterministic in the seed" (fun () ->
        let params = Params.make ~n:6 ~t:2 ~horizon:4 ~mode:Params.Crash in
        let a = Stats.sampled (module Eba.P0opt) params ~seed:7 ~samples:200 in
        let b = Stats.sampled (module Eba.P0opt) params ~seed:7 ~samples:200 in
        check "same mean" true (a.Stats.mean_time = b.Stats.mean_time);
        check_int "same msgs" a.Stats.messages_delivered b.Stats.messages_delivered);
    test "P0opt stays correct on larger sampled crash systems" (fun () ->
        let params = Params.make ~n:8 ~t:3 ~horizon:5 ~mode:Params.Crash in
        let s = Stats.sampled (module Eba.P0opt) params ~seed:11 ~samples:400 in
        check "agreement" true (s.Stats.agreement_violations = 0);
        check "validity" true (s.Stats.validity_violations = 0);
        check "decision" true (s.Stats.undecided_nonfaulty = 0));
    test "Chain0 stays correct on larger sampled omission systems" (fun () ->
        let params = Params.make ~n:8 ~t:3 ~horizon:5 ~mode:Params.Omission in
        let s = Stats.sampled (module Eba.Chain0) params ~seed:13 ~samples:400 in
        check "agreement" true (s.Stats.agreement_violations = 0);
        check "validity" true (s.Stats.validity_violations = 0);
        check "decision" true (s.Stats.undecided_nonfaulty = 0));
    test "P0 message complexity beats P0opt's" (fun () ->
        (* P0 sends only relays of 0; P0opt floods value vectors *)
        let params = Params.make ~n:6 ~t:2 ~horizon:4 ~mode:Params.Crash in
        let p0 = Stats.sampled (module Eba.P0.P0) params ~seed:3 ~samples:100 in
        let p0opt = Stats.sampled (module Eba.P0opt) params ~seed:3 ~samples:100 in
        check "fewer msgs" true
          (p0.Stats.messages_attempted < p0opt.Stats.messages_attempted));
  ]

let cancel_tests =
  [
    test "a pre-fired token cancels exhaustive and sampled stats" (fun () ->
        let fired () =
          let c = Eba.Cancel.create () in
          Eba.Cancel.cancel c;
          c
        in
        List.iter
          (fun jobs ->
            (match
               Stats.exhaustive ~jobs ~cancel:(fired ())
                 (module Eba.Floodset)
                 crash_params
             with
            | _ -> Alcotest.fail "cancelled exhaustive returned"
            | exception Eba.Cancel.Cancelled -> ());
            match
              Stats.sampled ~jobs ~cancel:(fired ())
                (module Eba.Floodset)
                crash_params ~seed:7 ~samples:50
            with
            | _ -> Alcotest.fail "cancelled sampled returned"
            | exception Eba.Cancel.Cancelled -> ())
          [ 1; 4 ]);
  ]

let suite =
  ("protocols", unit_tests @ universe_tests @ sampled_tests @ cancel_tests)
