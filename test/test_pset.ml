(* Point-set bit vectors, model-checked against naive bool lists. *)

module P = Eba.Pset
open Helpers

let len = 150 (* straddles word boundaries *)

let gen_members = QCheck2.Gen.(list_size (int_bound 60) (int_bound (len - 1)))

let of_list l =
  let s = P.create len in
  List.iter (P.add s) l;
  s

let to_list s =
  let acc = ref [] in
  P.iter s (fun i -> acc := i :: !acc);
  List.rev !acc

let sorted_unique l = List.sort_uniq Stdlib.compare l

let unit_tests =
  [
    test "create empty / full" (fun () ->
        check "empty" true (P.is_empty (P.create len));
        check "full" true (P.is_full (P.full len));
        check_int "full card" len (P.cardinal (P.full len)));
    test "complement of empty is full" (fun () ->
        check "eq" true (P.equal (P.complement (P.create len)) (P.full len)));
    test "add and remove" (fun () ->
        let s = P.create len in
        P.add s 100;
        check "mem" true (P.mem s 100);
        P.remove s 100;
        check "gone" false (P.mem s 100));
    test "bounds checked" (fun () ->
        Alcotest.check_raises "oob" (Invalid_argument "Pset: index out of bounds")
          (fun () -> ignore (P.mem (P.create len) len)));
    test "length mismatch rejected" (fun () ->
        Alcotest.check_raises "mismatch" (Invalid_argument "Pset: length mismatch")
          (fun () -> ignore (P.union (P.create 10) (P.create 11))));
    test "init matches predicate" (fun () ->
        let s = P.init len (fun i -> i mod 3 = 0) in
        check_int "card" 50 (P.cardinal s));
    test "word-boundary lengths" (fun () ->
        (* straddle the 62-bit word size: 0, 61, 62, 63 and 124 exercise
           the last-word mask with rem = 0, bpw-1, 0, 1 and 0 *)
        List.iter
          (fun l ->
            let f = P.full l in
            check_int (Printf.sprintf "full %d card" l) l (P.cardinal f);
            check (Printf.sprintf "full %d is_full" l) true (P.is_full f);
            check
              (Printf.sprintf "complement full %d empty" l)
              true
              (P.is_empty (P.complement f));
            check
              (Printf.sprintf "complement empty %d full" l)
              true
              (P.equal (P.complement (P.create l)) f);
            check_int
              (Printf.sprintf "init all %d" l)
              l
              (P.cardinal (P.init l (fun _ -> true)));
            if l > 0 then begin
              let s = P.create l in
              P.add s (l - 1);
              check (Printf.sprintf "top bit %d" l) true (P.mem s (l - 1));
              check
                (Printf.sprintf "complement drops top bit %d" l)
                false
                (P.mem (P.complement s) (l - 1))
            end)
          [ 0; 61; 62; 63; 124 ]);
  ]

let prop_tests =
  [
    qtest "union" QCheck2.Gen.(pair gen_members gen_members) (fun (a, b) ->
        to_list (P.union (of_list a) (of_list b)) = sorted_unique (a @ b));
    qtest "inter" QCheck2.Gen.(pair gen_members gen_members) (fun (a, b) ->
        to_list (P.inter (of_list a) (of_list b))
        = sorted_unique (List.filter (fun x -> List.mem x b) a));
    qtest "diff" QCheck2.Gen.(pair gen_members gen_members) (fun (a, b) ->
        to_list (P.diff (of_list a) (of_list b))
        = sorted_unique (List.filter (fun x -> not (List.mem x b)) a));
    qtest "complement involution" gen_members (fun a ->
        P.equal (P.complement (P.complement (of_list a))) (of_list a));
    qtest "complement disjoint and covering" gen_members (fun a ->
        let s = of_list a in
        let c = P.complement s in
        P.is_empty (P.inter s c) && P.is_full (P.union s c));
    qtest "cardinal" gen_members (fun a ->
        P.cardinal (of_list a) = List.length (sorted_unique a));
    qtest "subset" QCheck2.Gen.(pair gen_members gen_members) (fun (a, b) ->
        P.subset (of_list a) (of_list b)
        = List.for_all (fun x -> List.mem x b) a);
    qtest "inter_ip agrees with inter" QCheck2.Gen.(pair gen_members gen_members)
      (fun (a, b) ->
        let acc = of_list a in
        P.inter_ip acc (of_list b);
        P.equal acc (P.inter (of_list a) (of_list b)));
    qtest "for_all over members" gen_members (fun a ->
        P.for_all (of_list a) (fun i -> List.mem i a));
    qtest "choose is a member" gen_members (fun a ->
        match P.choose (of_list a) with
        | None -> a = []
        | Some i -> List.mem i a);
  ]

let suite = ("pset", unit_tests @ prop_tests)
