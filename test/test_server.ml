(* The resident agreement service, tested in-process: a daemon domain on
   an ephemeral loopback port (or a temp Unix socket), real sockets in
   between.

   The load-bearing claims:
   - framing survives arbitrary chunking, and oversize frames are typed
     errors, not crashes;
   - a served netsim-sweep / probcheck is byte-identical to the batch
     CLI's JSON for the same request identity, at 1 worker and at 4;
   - many simultaneous clients each get exactly their own answer;
   - a full queue yields the typed busy reply on a connection that stays
     usable, and a drain answers queued-but-unstarted work with
     shutting-down instead of dropping it;
   - a daemon restarts cleanly after both a graceful shutdown and a
     kill that left a stale socket file behind. *)

module Server = Eba.Server
module Frame = Server.Frame
module Protocol = Server.Protocol
module Spec = Server.Spec
module Client = Server.Client
module Daemon = Server.Daemon
module Req_queue = Server.Req_queue
module Json = Eba.Json
module Net = Eba.Net
open Helpers

let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then false
    else String.sub s i n = sub || go (i + 1)
  in
  go 0

(* --- fixtures --- *)

let with_daemon ?(workers = 2) ?(queue_cap = 64) ?max_conns ?address f =
  let address = Option.value address ~default:(Frame.Tcp 0) in
  let ready = Atomic.make None in
  let max_conns =
    Option.value max_conns ~default:Daemon.default_config.Daemon.max_conns
  in
  let cfg =
    { Daemon.default_config with address; workers; queue_cap; max_conns }
  in
  let daemon =
    Domain.spawn (fun () ->
        Daemon.run ~on_ready:(fun a -> Atomic.set ready (Some a)) cfg)
  in
  let rec wait tries =
    match Atomic.get ready with
    | Some a -> a
    | None ->
        if tries > 5000 then failwith "daemon did not come up"
        else begin
          Unix.sleepf 0.001;
          wait (tries + 1)
        end
  in
  let bound = wait 0 in
  let shutdown () =
    match Client.connect bound with
    | exception Unix.Unix_error _ -> ()
    | c ->
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () -> ignore (Client.call c ~verb:"shutdown" ()))
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown ();
      Domain.join daemon)
    (fun () -> f bound)

let with_client bound f =
  let c = Client.connect bound in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let temp_socket_path () =
  let path = Filename.temp_file "eba_serve" ".sock" in
  Sys.remove path;
  path

(* What the batch CLI emits for this sweep identity ([eba netsim
   --json]): the shared [Spec] resolution, rendered by the one JSON
   emitter. *)
let cli_netsim_bytes spec =
  match Spec.resolve spec with
  | Error m -> Alcotest.failf "resolve failed: %s" m
  | Ok r -> Json.to_string (Net.Net_stats.summary_json (Spec.run r))

let served_result_bytes reply_payload =
  match Json.parse reply_payload with
  | Error e -> Alcotest.failf "reply not JSON: %s" (Json.error_to_string e)
  | Ok json -> (
      match Protocol.reply_of_json json with
      | Ok (_, Protocol.Ok_result result) -> Json.to_string result
      | Ok (_, Protocol.Busy_reply _) -> Alcotest.fail "unexpected busy reply"
      | Ok (_, Protocol.Cancelled_reply) ->
          Alcotest.fail "unexpected cancelled reply"
      | Ok (_, Protocol.Progress_frame _) ->
          Alcotest.fail "unexpected progress frame"
      | Ok (_, Protocol.Error_reply { message; _ }) ->
          Alcotest.failf "error reply: %s" message
      | Error m -> Alcotest.failf "bad reply envelope: %s" m)

let sweep_params ~seed =
  [
    ("protocol", Json.String "floodset");
    ("n", Json.Int 4);
    ("t", Json.Int 1);
    ("runs", Json.Int 5);
    ("seed", Json.Int seed);
  ]

let sweep_spec ~seed =
  { Spec.default with n = 4; t_failures = 1; runs = Some 5; seed }

(* --- framing --- *)

let frame_tests =
  [
    test "encode carries a big-endian length prefix" (fun () ->
        let f = Frame.encode "abc" in
        check_int "length" 7 (String.length f);
        check_int "prefix" 3 (Char.code f.[3]);
        check_str "payload" "abc" (String.sub f 4 3));
    test "decoder reassembles frames fed one byte at a time" (fun () ->
        let d = Frame.decoder () in
        let stream = Frame.encode "hello" ^ Frame.encode "" ^ Frame.encode "world" in
        let got = ref [] in
        String.iter
          (fun c ->
            Frame.feed d (Bytes.make 1 c) ~len:1;
            let rec drain () =
              match Frame.next d with
              | Ok (Some p) ->
                  got := p :: !got;
                  drain ()
              | Ok None -> ()
              | Error (`Oversize n) -> Alcotest.failf "oversize %d" n
            in
            drain ())
          stream;
        Alcotest.(check (list string))
          "frames" [ "hello"; ""; "world" ] (List.rev !got));
    test "decoder rejects oversize frames and stays poisoned" (fun () ->
        let d = Frame.decoder ~max_frame:8 () in
        let f = Frame.encode "123456789" in
        Frame.feed d (Bytes.of_string f) ~len:(String.length f);
        (match Frame.next d with
        | Error (`Oversize 9) -> ()
        | _ -> Alcotest.fail "expected oversize");
        match Frame.next d with
        | Error (`Oversize _) -> ()
        | _ -> Alcotest.fail "decoder must stay poisoned");
    test "request/reply envelope round trip" (fun () ->
        let req =
          Protocol.request ~id:(Json.Int 7) ~verb:"status"
            ~params:[ ("x", Json.Int 1) ] ()
        in
        match Protocol.request_of_json req with
        | Error m -> Alcotest.fail m
        | Ok r ->
            check_str "verb" "status" r.Protocol.verb;
            (match
               Protocol.reply_of_json
                 (Protocol.busy ~id:r.Protocol.req_id ~depth:3 ~cap:3)
             with
            | Ok (Json.Int 7, Protocol.Busy_reply { depth = 3; cap = 3 }) -> ()
            | _ -> Alcotest.fail "busy reply did not round-trip"));
  ]

(* --- the bounded queue --- *)

let queue_tests =
  [
    test "try_push refuses at the cap with the observed depth" (fun () ->
        let q = Req_queue.create ~cap:2 in
        check "push 1" true (Req_queue.try_push q 1 = `Ok);
        check "push 2" true (Req_queue.try_push q 2 = `Ok);
        (match Req_queue.try_push q 3 with
        | `Full 2 -> ()
        | _ -> Alcotest.fail "expected `Full 2");
        check_int "depth" 2 (Req_queue.depth q));
    test "close hands back undrained items in order" (fun () ->
        let q = Req_queue.create ~cap:4 in
        ignore (Req_queue.try_push q 1);
        ignore (Req_queue.try_push q 2);
        check "pop" true (Req_queue.pop q = Some 1);
        Alcotest.(check (list int)) "leftovers" [ 2 ] (Req_queue.close q);
        check "closed pop" true (Req_queue.pop q = None);
        check "closed push" true (Req_queue.try_push q 9 = `Closed));
  ]

(* --- spec interpretation (shared CLI/daemon semantics) --- *)

let spec_tests =
  [
    test "unknown params field is an error, not a default" (fun () ->
        match Spec.of_json (Json.Obj [ ("sede", Json.Int 7) ]) with
        | Error m -> check "names the field" true (contains m "sede")
        | Ok _ -> Alcotest.fail "typo accepted");
    test "to_params / of_json round trip" (fun () ->
        let spec =
          {
            Spec.default with
            protocol = "p0opt";
            compact = true;
            n = 8;
            t_failures = 2;
            seed = 42;
            runs = Some 7;
            mux = Spec.Mux_auto;
            loss = 0.1;
          }
        in
        match Spec.of_json (Json.Obj (Spec.to_params spec)) with
        | Ok spec' -> check "round trip" true (spec = spec')
        | Error m -> Alcotest.fail m);
    test "runs defaults: 100 plain, the wave size under --mux K" (fun () ->
        let r s = Result.get_ok (Spec.resolve s) in
        check_int "plain" 100 (r Spec.default).Spec.r_runs;
        let mux7 = { Spec.default with mux = Spec.Mux_live 7 } in
        check_int "mux 7" 7 (r mux7).Spec.r_runs;
        check_int "mux auto" 100
          (r { Spec.default with mux = Spec.Mux_auto }).Spec.r_runs);
    test "mux auto resolves to the measured peak, clamped" (fun () ->
        check_int "peak" 16 (Net.Mux.auto_live ~runs:100);
        check_int "clamped to runs" 5 (Net.Mux.auto_live ~runs:5);
        check_int "floor" 1 (Net.Mux.auto_live ~runs:0);
        let resolved =
          Result.get_ok
            (Spec.resolve
               { (sweep_spec ~seed:3) with runs = Some 40; mux = Spec.Mux_auto })
        in
        check "auto = 16 at 40 runs" true (resolved.Spec.r_mux = Some 16));
    test "mux auto sweep is byte-identical to explicit 16 and to off"
      (fun () ->
        let bytes mux =
          cli_netsim_bytes { (sweep_spec ~seed:11) with runs = Some 40; mux }
        in
        let auto = bytes Spec.Mux_auto in
        check_str "auto = mux 16" auto (bytes (Spec.Mux_live 16));
        check_str "auto = sequential" auto (bytes Spec.Mux_off));
  ]

(* --- served vs CLI byte identity --- *)

let differential_tests =
  let served_sweep ~workers ~seed =
    with_daemon ~workers (fun bound ->
        with_client bound (fun c ->
            match
              Client.raw_call c ~id:(Json.Int 1) ~verb:"netsim-sweep"
                ~params:(sweep_params ~seed) ()
            with
            | Ok payload -> served_result_bytes payload
            | Error m -> Alcotest.fail m))
  in
  [
    test "served sweep = CLI bytes (1 worker)" (fun () ->
        check_str "bytes" (cli_netsim_bytes (sweep_spec ~seed:5))
          (served_sweep ~workers:1 ~seed:5));
    test "served sweep = CLI bytes (4 workers)" (fun () ->
        check_str "bytes" (cli_netsim_bytes (sweep_spec ~seed:5))
          (served_sweep ~workers:4 ~seed:5));
    test "served probcheck = CLI bytes" (fun () ->
        let spec = { Spec.Probcheck.default with n = 4; loss = "0.05" } in
        let expected =
          Json.to_string
            (Eba.Prob.Report.to_json
               (Result.get_ok (Spec.Probcheck.report spec)))
        in
        with_daemon (fun bound ->
            with_client bound (fun c ->
                match
                  Client.raw_call c ~verb:"probcheck"
                    ~params:
                      [ ("n", Json.Int 4); ("loss", Json.String "0.05") ]
                    ()
                with
                | Ok payload ->
                    check_str "bytes" expected (served_result_bytes payload)
                | Error m -> Alcotest.fail m)));
    test "served knowledge-query matches the semantic layer" (fun () ->
        with_daemon (fun bound ->
            with_client bound (fun c ->
                match
                  Client.call c ~verb:"knowledge-query"
                    ~params:[ ("protocol", Json.String "p0") ]
                    ()
                with
                | Ok (_, Protocol.Ok_result (Json.Obj fields)) ->
                    check "eba" true
                      (List.assoc_opt "eba" fields = Some (Json.Bool true));
                    check "optimal" true
                      (List.assoc_opt "optimal" fields
                      = Some (Json.Bool false))
                | Ok _ -> Alcotest.fail "expected ok object"
                | Error m -> Alcotest.fail m)));
    test "bad requests are typed errors on a live connection" (fun () ->
        with_daemon (fun bound ->
            with_client bound (fun c ->
                (match
                   Client.call c ~verb:"netsim-sweep"
                     ~params:[ ("sede", Json.Int 1) ]
                     ()
                 with
                | Ok (_, Protocol.Error_reply { code = Protocol.Bad_request; _ })
                  -> ()
                | _ -> Alcotest.fail "expected bad-request");
                (match Client.call c ~verb:"frobnicate" () with
                | Ok (_, Protocol.Error_reply { code = Protocol.Unknown_verb; _ })
                  -> ()
                | _ -> Alcotest.fail "expected unknown-verb");
                match Client.call c ~verb:"status" () with
                | Ok (_, Protocol.Ok_result _) -> ()
                | _ -> Alcotest.fail "connection must survive the errors")));
  ]

(* --- concurrency --- *)

let concurrency_tests =
  [
    test "8 interleaved clients each get exactly their answer" (fun () ->
        with_daemon ~workers:4 (fun bound ->
            let expected seed = cli_netsim_bytes (sweep_spec ~seed) in
            let client seed () =
              with_client bound (fun c ->
                  match
                    Client.raw_call c ~id:(Json.Int seed) ~verb:"netsim-sweep"
                      ~params:(sweep_params ~seed) ()
                  with
                  | Ok payload -> (seed, served_result_bytes payload)
                  | Error m -> failwith m)
            in
            let domains =
              List.init 8 (fun i -> Domain.spawn (client (100 + i)))
            in
            List.iter
              (fun d ->
                let seed, got = Domain.join d in
                check_str (Printf.sprintf "seed %d" seed) (expected seed) got)
              domains));
    test "pipelined requests on one connection all come back" (fun () ->
        with_daemon ~workers:2 (fun bound ->
            with_client bound (fun c ->
                let ids = [ 1; 2; 3; 4 ] in
                List.iter
                  (fun i ->
                    Client.send c
                      (Protocol.request ~id:(Json.Int i) ~verb:"netsim-sweep"
                         ~params:(sweep_params ~seed:i) ()))
                  ids;
                let got =
                  List.map
                    (fun _ ->
                      match Client.recv_json c with
                      | Ok json -> (
                          match Protocol.reply_of_json json with
                          | Ok (Json.Int i, Protocol.Ok_result _) -> i
                          | _ -> Alcotest.fail "expected ok with int id")
                      | Error m -> Alcotest.fail m)
                    ids
                in
                Alcotest.(check (list int))
                  "all ids answered" ids (List.sort compare got))));
  ]

(* --- backpressure and drain --- *)

let backpressure_tests =
  [
    test "full queue: typed busy reply, connection stays open, drain \
          answers the queued jobs"
      (fun () ->
        (* workers:0 never drains the queue, so cap 2 fills
           deterministically: requests 1 and 2 occupy the slots, request
           3 bounces with busy, and the shutdown drain answers 1 and 2
           with shutting-down. *)
        with_daemon ~workers:0 ~queue_cap:2 (fun bound ->
            with_client bound (fun c ->
                List.iter
                  (fun i ->
                    Client.send c
                      (Protocol.request ~id:(Json.Int i) ~verb:"netsim-sweep"
                         ~params:(sweep_params ~seed:i) ()))
                  [ 1; 2; 3 ];
                (match Client.recv_json c with
                | Ok json -> (
                    match Protocol.reply_of_json json with
                    | Ok (Json.Int 3, Protocol.Busy_reply { depth = 2; cap = 2 })
                      -> ()
                    | _ -> Alcotest.fail "expected busy for request 3")
                | Error m -> Alcotest.fail m);
                (* the connection survived: an admin verb still answers *)
                Client.send c
                  (Protocol.request ~id:(Json.Int 9) ~verb:"status" ());
                (match Client.recv_json c with
                | Ok json -> (
                    match Protocol.reply_of_json json with
                    | Ok (Json.Int 9, Protocol.Ok_result (Json.Obj fields)) ->
                        check "queue_depth" true
                          (List.assoc_opt "queue_depth" fields
                          = Some (Json.Int 2))
                    | _ -> Alcotest.fail "expected status ok")
                | Error m -> Alcotest.fail m);
                (* drain: the two queued jobs get shutting-down replies *)
                Client.send c
                  (Protocol.request ~id:(Json.Int 10) ~verb:"shutdown" ());
                let replies =
                  List.map
                    (fun _ ->
                      match Client.recv_json c with
                      | Ok json -> Result.get_ok (Protocol.reply_of_json json)
                      | Error m -> Alcotest.fail m)
                    [ (); (); () ]
                in
                let aborted =
                  List.filter_map
                    (function
                      | ( Json.Int i,
                          Protocol.Error_reply
                            { code = Protocol.Shutting_down; _ } ) ->
                          Some i
                      | _ -> None)
                    replies
                in
                Alcotest.(check (list int))
                  "queued jobs answered on drain" [ 1; 2 ]
                  (List.sort compare aborted))));
  ]

(* --- misbehaving peers: the daemon must outlive its clients --- *)

let robustness_tests =
  [
    test "a client that closes before reading its reply cannot kill the \
          daemon"
      (fun () ->
        (* status is answered inline, so the reply write lands on a peer
           that already closed: with the default signal disposition that
           is SIGPIPE and instant death, with it ignored it is an EPIPE
           handled as a connection close *)
        let path = temp_socket_path () in
        with_daemon ~address:(Frame.Unix_socket path) (fun bound ->
            for i = 1 to 5 do
              let c = Client.connect bound in
              Client.send c
                (Protocol.request ~id:(Json.Int i) ~verb:"status" ());
              Client.close c
            done;
            Unix.sleepf 0.05;
            with_client bound (fun c ->
                match Client.call c ~verb:"status" () with
                | Ok (_, Protocol.Ok_result _) -> ()
                | _ -> Alcotest.fail "daemon died after an early disconnect")));
    test "a slow reader is buffered per connection, not allowed to stall \
          the loop"
      (fun () ->
        (* pipeline far more replies than a unix-socket buffer holds
           without reading any; the daemon must keep serving another
           client meanwhile, then deliver every reply in order *)
        let path = temp_socket_path () in
        with_daemon ~address:(Frame.Unix_socket path) (fun bound ->
            with_client bound (fun slow ->
                let n = 3000 in
                for i = 1 to n do
                  Client.send slow
                    (Protocol.request ~id:(Json.Int i) ~verb:"status" ())
                done;
                with_client bound (fun c ->
                    match Client.call c ~verb:"status" () with
                    | Ok (_, Protocol.Ok_result _) -> ()
                    | _ ->
                        Alcotest.fail
                          "daemon stalled behind a backlogged peer");
                for i = 1 to n do
                  match Client.recv_json slow with
                  | Ok json -> (
                      match Protocol.reply_of_json json with
                      | Ok (Json.Int j, Protocol.Ok_result _) when j = i -> ()
                      | _ -> Alcotest.failf "reply %d: wrong id or kind" i)
                  | Error m -> Alcotest.failf "reply %d: %s" i m
                done)));
    test "accepts beyond max_conns wait in the backlog until a slot frees"
      (fun () ->
        with_daemon ~max_conns:1 (fun bound ->
            let first = Client.connect bound in
            (match Client.call first ~verb:"status" () with
            | Ok (_, Protocol.Ok_result _) -> ()
            | _ -> Alcotest.fail "first client refused");
            let second = Client.connect bound in
            Fun.protect
              ~finally:(fun () -> Client.close second)
              (fun () ->
                Client.send second
                  (Protocol.request ~id:(Json.Int 2) ~verb:"status" ());
                (* only closing the first connection frees its slot and
                   lets the daemon accept (and answer) the second *)
                Client.close first;
                match Client.recv_json second with
                | Ok json -> (
                    match Protocol.reply_of_json json with
                    | Ok (Json.Int 2, Protocol.Ok_result _) -> ()
                    | _ -> Alcotest.fail "expected status ok for request 2")
                | Error m -> Alcotest.fail m)));
  ]

(* --- restart and stale sockets --- *)

let restart_tests =
  [
    test "stale socket file from a killed daemon is recovered" (fun () ->
        let path = temp_socket_path () in
        (* a bind+close without unlink is exactly what a SIGKILLed daemon
           leaves behind: the file exists, connects are refused *)
        let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind dead (Unix.ADDR_UNIX path);
        Unix.listen dead 1;
        Unix.close dead;
        check "litter exists" true (Sys.file_exists path);
        let fd = Frame.listen (Frame.Unix_socket path) in
        Fun.protect
          ~finally:(fun () ->
            Unix.close fd;
            try Unix.unlink path with Unix.Unix_error _ -> ())
          (fun () -> check "rebound" true (Sys.file_exists path)));
    test "a live daemon's socket is never stolen" (fun () ->
        let path = temp_socket_path () in
        with_daemon ~address:(Frame.Unix_socket path) (fun _ ->
            match Frame.listen (Frame.Unix_socket path) with
            | fd ->
                Unix.close fd;
                Alcotest.fail "second daemon bound a live socket"
            | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ()));
    test "a non-socket file is never unlinked" (fun () ->
        let path = Filename.temp_file "eba_serve" ".notasock" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            (match Frame.listen (Frame.Unix_socket path) with
            | fd ->
                Unix.close fd;
                Alcotest.fail "bound over a regular file"
            | exception Invalid_argument _ -> ());
            check "file untouched" true (Sys.file_exists path)));
    test "graceful shutdown unlinks the socket; restart binds it again"
      (fun () ->
        let path = temp_socket_path () in
        let serve_once () =
          with_daemon ~address:(Frame.Unix_socket path) (fun bound ->
              with_client bound (fun c ->
                  match Client.call c ~verb:"status" () with
                  | Ok (_, Protocol.Ok_result _) -> ()
                  | _ -> Alcotest.fail "status failed"))
        in
        serve_once ();
        check "socket unlinked after drain" false (Sys.file_exists path);
        (* the restart-after-kill scenario, end to end *)
        serve_once ());
  ]

(* --- cancellation --- *)

(* Big enough that an uncancelled sweep runs for tens of seconds — the
   test only finishes promptly because the fired token stops the worker
   at a run boundary. *)
let huge_sweep_params ~seed =
  [
    ("protocol", Json.String "floodset");
    ("n", Json.Int 4);
    ("t", Json.Int 1);
    ("runs", Json.Int 20_000_000);
    ("seed", Json.Int seed);
  ]

let wait_in_flight bound ~want =
  with_client bound (fun admin ->
      let rec wait tries =
        if tries > 5000 then Alcotest.fail "request never reached a worker"
        else
          match Client.call admin ~verb:"status" () with
          | Ok (_, Protocol.Ok_result (Json.Obj fields)) ->
              if List.assoc_opt "in_flight" fields = Some (Json.Int want) then
                ()
              else begin
                Unix.sleepf 0.001;
                wait (tries + 1)
              end
          | _ -> Alcotest.fail "status failed"
      in
      wait 0)

let cancel_state fields =
  match List.assoc_opt "state" fields with
  | Some (Json.String s) -> s
  | _ -> Alcotest.fail "cancel reply without a state"

let cancel_mid_sweep ~workers () =
  with_daemon ~workers (fun bound ->
      with_client bound (fun c ->
          Client.send c
            (Protocol.request ~id:(Json.Int 1) ~verb:"netsim-sweep"
               ~params:(huge_sweep_params ~seed:1) ());
          wait_in_flight bound ~want:1;
          (match
             Client.call c ~id:(Json.Int 2) ~verb:"cancel"
               ~params:[ ("target", Json.Int 1) ]
               ()
           with
          | Ok (Json.Int 2, Protocol.Ok_result (Json.Obj fields)) ->
              check_str "state" "running" (cancel_state fields)
          | _ -> Alcotest.fail "cancel did not return ok");
          match Client.recv_json c with
          | Ok json -> (
              match Protocol.reply_of_json json with
              | Ok (Json.Int 1, Protocol.Cancelled_reply) -> ()
              | _ -> Alcotest.fail "expected a cancelled reply for id 1")
          | Error m -> Alcotest.fail m))

let cancellation_tests =
  [
    test "cancel mid-sweep stops the worker, typed cancelled reply (1 \
          worker)"
      (cancel_mid_sweep ~workers:1);
    test "cancel mid-sweep stops the worker, typed cancelled reply (4 \
          workers)"
      (cancel_mid_sweep ~workers:4);
    test "cancelling a queued request answers it instantly, no worker \
          involved"
      (fun () ->
        (* workers:0 never pops, so the request is provably still queued
           when the cancel lands — the reply must come from the loop's
           queue sweep, not from a worker noticing the token *)
        with_daemon ~workers:0 ~queue_cap:4 (fun bound ->
            with_client bound (fun c ->
                Client.send c
                  (Protocol.request ~id:(Json.Int 1) ~verb:"netsim-sweep"
                     ~params:(sweep_params ~seed:1) ());
                (match
                   Client.call c ~id:(Json.Int 2) ~verb:"cancel"
                     ~params:[ ("target", Json.Int 1) ]
                     ()
                 with
                | Ok (Json.Int 2, Protocol.Ok_result (Json.Obj fields)) ->
                    check_str "state" "queued" (cancel_state fields)
                | _ -> Alcotest.fail "cancel did not return ok");
                (match Client.recv_json c with
                | Ok json -> (
                    match Protocol.reply_of_json json with
                    | Ok (Json.Int 1, Protocol.Cancelled_reply) -> ()
                    | _ -> Alcotest.fail "expected cancelled reply for id 1")
                | Error m -> Alcotest.fail m);
                (* the slot was really freed: the queue accepts new work *)
                match Client.call c ~id:(Json.Int 3) ~verb:"status" () with
                | Ok (_, Protocol.Ok_result (Json.Obj fields)) ->
                    check "queue empty again" true
                      (List.assoc_opt "queue_depth" fields = Some (Json.Int 0))
                | _ -> Alcotest.fail "status failed")));
    test "cancelling an unknown or finished id reports state unknown"
      (fun () ->
        with_daemon (fun bound ->
            with_client bound (fun c ->
                match
                  Client.call c ~id:(Json.Int 1) ~verb:"cancel"
                    ~params:[ ("target", Json.Int 99) ]
                    ()
                with
                | Ok (Json.Int 1, Protocol.Ok_result (Json.Obj fields)) ->
                    check_str "state" "unknown" (cancel_state fields)
                | _ -> Alcotest.fail "cancel did not return ok")));
    test "cancel without a target is a typed bad-request" (fun () ->
        with_daemon (fun bound ->
            with_client bound (fun c ->
                match Client.call c ~verb:"cancel" () with
                | Ok (_, Protocol.Error_reply { code = Protocol.Bad_request; _ })
                  -> ()
                | _ -> Alcotest.fail "expected bad-request")));
  ]

(* --- streaming progress --- *)

let progress_tests =
  [
    test "call_stream: >=1 progress frame, non-decreasing, final bytes = \
          CLI bytes"
      (fun () ->
        with_daemon ~workers:1 (fun bound ->
            with_client bound (fun c ->
                let frames = ref [] in
                match
                  Client.call_stream c ~id:(Json.Int 1)
                    ~on_progress:(fun ~done_ ~total ->
                      frames := (done_, total) :: !frames)
                    ~verb:"netsim-sweep"
                    ~params:(sweep_params ~seed:5)
                    ()
                with
                | Ok (Json.Int 1, Protocol.Ok_result result) ->
                    let frames = List.rev !frames in
                    check "at least one frame" true (List.length frames >= 1);
                    let dones = List.map fst frames in
                    check "non-decreasing" true
                      (List.sort compare dones = dones);
                    List.iter
                      (fun (d, total) ->
                        check "total is the run count" true (total = 5);
                        check "done within total" true (d >= 1 && d <= total))
                      frames;
                    check_str "final result bytes"
                      (cli_netsim_bytes (sweep_spec ~seed:5))
                      (Json.to_string result)
                | Ok _ -> Alcotest.fail "expected ok result"
                | Error m -> Alcotest.fail m)));
    test "progress is opt-in: a plain call sees exactly one reply frame"
      (fun () ->
        with_daemon ~workers:1 (fun bound ->
            with_client bound (fun c ->
                (match
                   Client.call c ~id:(Json.Int 1) ~verb:"netsim-sweep"
                     ~params:(sweep_params ~seed:5) ()
                 with
                | Ok (Json.Int 1, Protocol.Ok_result _) -> ()
                | _ -> Alcotest.fail "expected ok");
                (* any stray progress frame would come back as the reply
                   to this status probe and trip the id check *)
                match Client.call c ~id:(Json.Int 2) ~verb:"status" () with
                | Ok (Json.Int 2, Protocol.Ok_result _) -> ()
                | _ -> Alcotest.fail "unexpected extra frame on the wire")));
    test "progress envelope flag round-trips; frames parse back" (fun () ->
        let req =
          Protocol.request ~id:(Json.Int 3) ~progress:true ~verb:"netsim-sweep"
            ()
        in
        (match Protocol.request_of_json req with
        | Ok r -> check "want_progress" true r.Protocol.want_progress
        | Error m -> Alcotest.fail m);
        (match
           Protocol.reply_of_json
             (Protocol.progress ~id:(Json.Int 3) ~done_:7 ~total:9)
         with
        | Ok (Json.Int 3, Protocol.Progress_frame { p_done = 7; p_total = 9 })
          -> ()
        | _ -> Alcotest.fail "progress frame did not round-trip");
        match Protocol.reply_of_json (Protocol.cancelled ~id:(Json.Int 3)) with
        | Ok (Json.Int 3, Protocol.Cancelled_reply) -> ()
        | _ -> Alcotest.fail "cancelled reply did not round-trip");
  ]

(* --- the knowledge-model cache --- *)

module Model_cache = Server.Model_cache
module Registry = Server.Registry
module Params = Eba.Params

let cache_key ~n ~horizon =
  Params.make ~n ~t:1 ~horizon ~mode:Params.Crash

let knowledge_params ?jobs () =
  [
    ("protocol", Json.String "p0");
    ("n", Json.Int 4);
    ("t", Json.Int 1);
    ("horizon", Json.Int 3);
  ]
  @ match jobs with Some j -> [ ("jobs", Json.Int j) ] | None -> []

let raw_knowledge c ?jobs ~id () =
  match
    Client.raw_call c ~id:(Json.Int id) ~verb:"knowledge-query"
      ~params:(knowledge_params ?jobs ()) ()
  with
  | Ok payload -> payload
  | Error m -> Alcotest.fail m

let cache_tests =
  [
    test "find_or_build: one build per key, warm lookups share the model"
      (fun () ->
        let cache = Model_cache.create ~capacity:4 () in
        let builds = ref 0 in
        let build p = incr builds; Eba.Model.build p in
        let key = cache_key ~n:3 ~horizon:2 in
        let m1 = Model_cache.find_or_build cache key build in
        let m2 = Model_cache.find_or_build cache key build in
        check_int "one build" 1 !builds;
        check "physically shared" true (m1 == m2);
        let s = Model_cache.stats cache in
        check_int "hits" 1 s.Model_cache.s_hits;
        check_int "misses" 1 s.Model_cache.s_misses;
        check_int "entries" 1 s.Model_cache.s_entries);
    test "LRU eviction at capacity drops the least-recent key" (fun () ->
        let cache = Model_cache.create ~capacity:2 () in
        let build p = Eba.Model.build p in
        let a = cache_key ~n:3 ~horizon:1 in
        let b = cache_key ~n:3 ~horizon:2 in
        let c = cache_key ~n:4 ~horizon:1 in
        ignore (Model_cache.find_or_build cache a build);
        ignore (Model_cache.find_or_build cache b build);
        (* touch [a] so [b] is now least-recent *)
        check "a findable" true (Model_cache.find cache a <> None);
        ignore (Model_cache.find_or_build cache c build);
        check_int "capacity held" 2 (Model_cache.length cache);
        check "a survives" true (Model_cache.mem cache a);
        check "b evicted" false (Model_cache.mem cache b);
        check "c resident" true (Model_cache.mem cache c));
    test "workers racing the same key build it exactly once" (fun () ->
        let cache = Model_cache.create ~capacity:4 () in
        let builds = Atomic.make 0 in
        let key = cache_key ~n:4 ~horizon:3 in
        let build p =
          Atomic.incr builds;
          (* widen the race window: every domain reaches find_or_build
             while the first build is still running *)
          Unix.sleepf 0.05;
          Eba.Model.build p
        in
        let domains =
          List.init 4 (fun _ ->
              Domain.spawn (fun () -> Model_cache.find_or_build cache key build))
        in
        let models = List.map Domain.join domains in
        check_int "exactly one build" 1 (Atomic.get builds);
        (match models with
        | first :: rest ->
            List.iter
              (fun m -> check "all share the one model" true (m == first))
              rest
        | [] -> assert false);
        let s = Model_cache.stats cache in
        check_int "deterministic misses" 1 s.Model_cache.s_misses;
        check_int "deterministic hits" 3 s.Model_cache.s_hits);
    test "a failed build releases the slot instead of wedging waiters"
      (fun () ->
        let cache = Model_cache.create ~capacity:4 () in
        let key = cache_key ~n:3 ~horizon:2 in
        (match
           Model_cache.find_or_build cache key (fun _ -> failwith "boom")
         with
        | _ -> Alcotest.fail "expected the build failure to propagate"
        | exception Failure _ -> ());
        (* the key is buildable again — no stale Building slot *)
        let m = Model_cache.find_or_build cache key Eba.Model.build in
        check "recovered" true (Model_cache.mem cache key);
        ignore m);
    test "clear drops entries and zeroes the counters" (fun () ->
        let cache = Model_cache.create ~capacity:4 () in
        let key = cache_key ~n:3 ~horizon:2 in
        ignore (Model_cache.find_or_build cache key Eba.Model.build);
        ignore (Model_cache.find_or_build cache key Eba.Model.build);
        Model_cache.clear cache;
        check_int "no entries" 0 (Model_cache.length cache);
        let s = Model_cache.stats cache in
        check_int "hits zeroed" 0 s.Model_cache.s_hits;
        check_int "misses zeroed" 0 s.Model_cache.s_misses);
  ]

let served_cache_tests =
  let warm_vs_cold ~workers () =
    Model_cache.clear Registry.model_cache;
    with_daemon ~workers (fun bound ->
        with_client bound (fun c ->
            let cold = raw_knowledge c ~id:1 () in
            let warm = raw_knowledge c ~id:2 () in
            check_str "warm bytes = cold bytes"
              (served_result_bytes cold)
              (served_result_bytes warm);
            (* the warm request skipped Model.build entirely *)
            let s = Model_cache.stats Registry.model_cache in
            check_int "one miss (the cold build)" 1 s.Model_cache.s_misses;
            check_int "one hit (the warm reuse)" 1 s.Model_cache.s_hits))
  in
  [
    test "served warm knowledge-query = cold bytes, build skipped (1 worker)"
      (warm_vs_cold ~workers:1);
    test "served warm knowledge-query = cold bytes, build skipped (4 \
          workers)"
      (warm_vs_cold ~workers:4);
    test "served jobs:1 and jobs:4 cold builds are byte-identical" (fun () ->
        with_daemon ~workers:2 (fun bound ->
            with_client bound (fun c ->
                Model_cache.clear Registry.model_cache;
                let j1 = raw_knowledge c ~jobs:1 ~id:1 () in
                Model_cache.clear Registry.model_cache;
                let j4 = raw_knowledge c ~jobs:4 ~id:2 () in
                (* [clear] zeroed the counters between the two, so the
                   jobs:4 request must itself have been a cold build *)
                let s = Model_cache.stats Registry.model_cache in
                check_int "jobs:4 was a cold build" 1 s.Model_cache.s_misses;
                check_int "no warm reuse" 0 s.Model_cache.s_hits;
                check_str "bytes agree" (served_result_bytes j1)
                  (served_result_bytes j4))));
    test "4 clients racing one key: deterministic 1 miss / 3 hits at 4 \
          workers"
      (fun () ->
        Model_cache.clear Registry.model_cache;
        with_daemon ~workers:4 (fun bound ->
            let client () =
              with_client bound (fun c ->
                  served_result_bytes (raw_knowledge c ~id:1 ()))
            in
            let domains = List.init 4 (fun _ -> Domain.spawn client) in
            let replies = List.map Domain.join domains in
            (match replies with
            | first :: rest ->
                List.iter (fun r -> check_str "same bytes" first r) rest
            | [] -> assert false);
            let s = Model_cache.stats Registry.model_cache in
            check_int "misses" 1 s.Model_cache.s_misses;
            check_int "hits" 3 s.Model_cache.s_hits));
  ]

(* --- the load generator's latency accounting --- *)

module Bench_load = Server.Bench_load

let bench_tests =
  [
    test "bench load: failed requests contribute no latency samples"
      (fun () ->
        (* nothing listens here, so every connect fails: all requests are
           errors and the latency population must be empty — not a pile
           of fabricated zeros dragging the percentiles down *)
        let address = Frame.Unix_socket (temp_socket_path ()) in
        let r =
          Bench_load.run ~address ~clients:2 ~requests:5 ~verb:"status"
            ~params:[]
        in
        check_int "all errors" 10 r.Bench_load.errors;
        check_int "no ok" 0 r.Bench_load.ok;
        check_int "no samples" 0 r.Bench_load.latency_samples;
        check_int "requests" 10 r.Bench_load.requests;
        check_int "requests_per_client" 5 r.Bench_load.requests_per_client;
        let pp = Format.asprintf "%a" Bench_load.pp r in
        check "pp shows per-client requests" true
          (contains pp "2 clients x 5 requests");
        check "pp shows the sample count" true (contains pp "(0 samples)"));
    test "bench load against a live daemon: every sample is a completed \
          round-trip"
      (fun () ->
        let r =
          Bench_load.run_local ~workers:2 ~clients:2 ~requests:10
            ~verb:"status" ~params:[] ()
        in
        check_int "all ok" 20 r.Bench_load.ok;
        check_int "samples = completions" 20 r.Bench_load.latency_samples;
        check "positive mean" true (r.Bench_load.mean_us > 0.0));
  ]

let suite =
  ( "server",
    frame_tests @ queue_tests @ spec_tests @ differential_tests
    @ concurrency_tests @ backpressure_tests @ cancellation_tests
    @ progress_tests @ cache_tests @ served_cache_tests @ bench_tests
    @ robustness_tests @ restart_tests )
