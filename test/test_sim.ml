(* Units for the synchronous substrate: values, configurations, failure
   patterns and adversary universes. *)

module V = Eba.Value
module Cfg = Eba.Config
module Pat = Eba.Pattern
module U = Eba.Universe
module Params = Eba.Params
module B = Eba.Bitset
module Combi = Eba.Combi
open Helpers

let crash_params = crash_3_1_3.params
let omission_params = omission_3_1_2.params

let value_tests =
  [
    test "negate involutive" (fun () ->
        List.iter (fun v -> check "inv" true (V.equal v (V.negate (V.negate v)))) V.all);
    test "of_int/to_int" (fun () ->
        check_int "0" 0 (V.to_int (V.of_int 0));
        check_int "1" 1 (V.to_int (V.of_int 1));
        Alcotest.check_raises "2" (Invalid_argument "Value.of_int: 2") (fun () ->
            ignore (V.of_int 2)));
  ]

let config_tests =
  [
    test "bits roundtrip" (fun () ->
        List.iter
          (fun c -> check "rt" true (Cfg.equal c (Cfg.of_bits ~n:4 (Cfg.to_bits c))))
          (Cfg.all ~n:4));
    test "all count" (fun () -> check_int "2^3" 8 (List.length (Cfg.all ~n:3)));
    test "exists_value" (fun () ->
        let c = Cfg.of_bits ~n:3 0b010 in
        check "e1" true (Cfg.exists_value c V.One);
        check "e0" true (Cfg.exists_value c V.Zero);
        check "all1 no zero" false (Cfg.exists_value (Cfg.constant ~n:3 V.One) V.Zero));
    test "all_equal" (fun () ->
        check "const" true (Cfg.all_equal (Cfg.constant ~n:3 V.Zero) = Some V.Zero);
        check "mixed" true (Cfg.all_equal (Cfg.of_bits ~n:3 1) = None));
    test "equal checks length first" (fun () ->
        check "different n" false (Cfg.equal (Cfg.of_bits ~n:3 0b101) (Cfg.of_bits ~n:4 0b101));
        check "same" true (Cfg.equal (Cfg.of_bits ~n:3 0b101) (Cfg.of_bits ~n:3 0b101)));
    test "bit packing rejects overflowing widths" (fun () ->
        Alcotest.check_raises "of_bits n=63"
          (Invalid_argument "Config: n=63 outside the bit-packing range [0, 62]")
          (fun () -> ignore (Cfg.of_bits ~n:63 0));
        Alcotest.check_raises "to_bits n=63"
          (Invalid_argument "Config: n=63 outside the bit-packing range [0, 62]")
          (fun () -> ignore (Cfg.to_bits (Cfg.constant ~n:63 V.One)));
        check_int "n=62 roundtrips" 0 (Cfg.to_bits (Cfg.of_bits ~n:62 0)));
  ]

let pattern_tests =
  [
    test "failure-free delivers everything" (fun () ->
        let p = Pat.failure_free crash_params in
        check "deliver" true (Pat.delivers p ~round:2 ~sender:0 ~receiver:1);
        check "faulty empty" true (B.is_empty (Pat.faulty p));
        check_int "f" 0 (Pat.num_failures p));
    test "crash semantics" (fun () ->
        let b = Pat.crash ~horizon:3 ~proc:0 ~round:2 ~recipients:(B.singleton 1) in
        let p = Pat.make crash_params [ b ] in
        check "before" true (Pat.delivers p ~round:1 ~sender:0 ~receiver:2);
        check "at, in set" true (Pat.delivers p ~round:2 ~sender:0 ~receiver:1);
        check "at, out of set" false (Pat.delivers p ~round:2 ~sender:0 ~receiver:2);
        check "after" false (Pat.delivers p ~round:3 ~sender:0 ~receiver:1);
        check "others unaffected" true (Pat.delivers p ~round:3 ~sender:1 ~receiver:2);
        check "crashed_before" true (Pat.crashed_before p ~proc:0 ~round:3);
        check "not crashed yet" false (Pat.crashed_before p ~proc:0 ~round:2);
        check_int "f" 1 (Pat.num_failures p));
    test "clean crash counts as faulty but not failed" (fun () ->
        let p = Pat.make crash_params [ Pat.clean_crash ~horizon:3 ~proc:1 ] in
        check "faulty" true (B.mem 1 (Pat.faulty p));
        check_int "f" 0 (Pat.num_failures p);
        check "delivers" true (Pat.delivers p ~round:3 ~sender:1 ~receiver:0));
    test "omission semantics" (fun () ->
        let omits = [| B.singleton 1; B.empty |] in
        let p = Pat.make omission_params [ Pat.omission ~horizon:2 ~proc:0 ~omits ] in
        check "omitted" false (Pat.delivers p ~round:1 ~sender:0 ~receiver:1);
        check "kept" true (Pat.delivers p ~round:1 ~sender:0 ~receiver:2);
        check "next round ok" true (Pat.delivers p ~round:2 ~sender:0 ~receiver:1);
        check_int "f" 1 (Pat.num_failures p));
    test "mode mismatch rejected" (fun () ->
        Alcotest.check_raises "crash in omission mode"
          (Invalid_argument "Pattern.make: behaviour does not match failure mode")
          (fun () ->
            ignore
              (Pat.make omission_params
                 [ Pat.crash ~horizon:2 ~proc:0 ~round:1 ~recipients:B.empty ])));
    test "too many faulty rejected" (fun () ->
        Alcotest.check_raises "t+1 faulty"
          (Invalid_argument "Pattern.make: more than t faulty processors")
          (fun () ->
            ignore
              (Pat.make crash_params
                 [ Pat.clean_crash ~horizon:3 ~proc:0; Pat.clean_crash ~horizon:3 ~proc:1 ])));
    test "self-message rejected" (fun () ->
        Alcotest.check_raises "self"
          (Invalid_argument "Pattern.crash: a processor does not message itself")
          (fun () ->
            ignore (Pat.crash ~horizon:3 ~proc:0 ~round:1 ~recipients:(B.singleton 0))));
    test "delivery queries pinned to rounds 1..horizon" (fun () ->
        (* all behaviour kinds must agree on out-of-range rounds: they are
           rejected, for nonfaulty, crashed and omitting senders alike *)
        let oob = Invalid_argument "Pattern: round out of range [1, horizon]" in
        let patterns =
          [
            Pat.failure_free crash_params;
            Pat.make crash_params
              [ Pat.crash ~horizon:3 ~proc:0 ~round:2 ~recipients:B.empty ];
            Pat.make omission_params
              [ Pat.omission ~horizon:2 ~proc:0 ~omits:[| B.singleton 1; B.empty |] ];
          ]
        in
        List.iter
          (fun p ->
            Alcotest.check_raises "round 0" oob (fun () ->
                ignore (Pat.delivers p ~round:0 ~sender:0 ~receiver:1));
            Alcotest.check_raises "past horizon" oob (fun () ->
                ignore (Pat.delivers p ~round:100 ~sender:0 ~receiver:1)))
          patterns);
  ]

let universe_tests =
  [
    test "crash behaviour count" (fun () ->
        (* clean + horizon * (2^(n-1) - 1) strict subsets *)
        check_int "n=3 T=3" 10 (List.length (U.crash_behaviours crash_params ~proc:0)));
    test "behaviour counts match behaviour_count for every proc" (fun () ->
        (* regression: the old enumeration walked every integer up to the
           bit-pattern of [rest], so the count was only right by filtering;
           proc 0 has the highest-valued [rest] and is the sharpest case *)
        let check_params params flavour =
          List.iter
            (fun proc ->
              check_int
                (Format.asprintf "%a proc %d" Params.pp params proc)
                (U.behaviour_count ~flavour params)
                (List.length (U.behaviours_for ~flavour params ~proc)))
            (Params.procs params)
        in
        List.iter
          (fun mode ->
            let params = Params.make ~n:4 ~t:2 ~horizon:2 ~mode in
            check_params params U.Exhaustive;
            check_params params U.Sparse)
          [ Params.Crash; Params.Omission; Params.General_omission ]);
    test "crash universe count formula" (fun () ->
        check_int "n=3 t=1 T=3" 31 (U.count crash_params);
        check_int "matches enumeration" (U.count crash_params)
          (List.length (U.patterns crash_params)));
    test "omission universe count formula" (fun () ->
        check_int "n=3 t=1 T=2" 49 (U.count omission_params);
        check_int "matches enumeration" (U.count omission_params)
          (List.length (U.patterns omission_params)));
    test "sparse omission universe is smaller (n=4)" (fun () ->
        (* at n=3, {∅, singletons, all} happens to be every subset, so the
           sparse flavour only thins out from n=4 up *)
        let params4 = Params.make ~n:4 ~t:1 ~horizon:2 ~mode:Params.Omission in
        let sparse = U.count ~flavour:U.Sparse params4 in
        check "smaller" true (sparse < U.count params4);
        check_int "matches enumeration" sparse
          (List.length (U.patterns ~flavour:U.Sparse params4));
        check_int "n=3 sparse = exhaustive" (U.count omission_params)
          (U.count ~flavour:U.Sparse omission_params));
    test "patterns are distinct" (fun () ->
        let ps = U.patterns crash_params in
        let sorted = List.sort_uniq Pat.compare ps in
        check_int "no duplicates" (List.length ps) (List.length sorted));
    test "random pattern respects t" (fun () ->
        let rng = Random.State.make [| 42 |] in
        for _ = 1 to 50 do
          let p = U.random_pattern rng crash_params in
          check "≤t" true (B.cardinal (Pat.faulty p) <= crash_params.Params.t_failures)
        done);
    test "cartesian" (fun () ->
        check_int "2x3" 6 (List.length (Combi.cartesian [ [ 1; 2 ]; [ 3; 4; 5 ] ]));
        check_int "empty" 1 (List.length (Combi.cartesian [])));
    test "choose" (fun () ->
        check_int "5C2" 10 (Combi.choose 5 2);
        check_int "oob" 0 (Combi.choose 3 5));
  ]

(* With the Params n-cap at 4096, the closed-form universe counts cross
   max_int as early as n = 62-63; they must raise Combi.Overflow, never
   wrap to garbage. *)
let overflow_tests =
  [
    test "pow is exact up to the boundary and raises past it" (fun () ->
        check_int "2^61" 2305843009213693952 (Combi.pow 2 61);
        Alcotest.check_raises "2^62" Combi.Overflow (fun () -> ignore (Combi.pow 2 62)));
    test "choose is checked" (fun () ->
        check_int "62C5" 6471002 (Combi.choose 62 5);
        check_int "symmetric" (Combi.choose 62 5) (Combi.choose 62 57);
        Alcotest.check_raises "67C33" Combi.Overflow (fun () ->
            ignore (Combi.choose 67 33)));
    test "add_exn / mul_exn" (fun () ->
        check_int "add" 7 (Combi.add_exn 3 4);
        check_int "mul" 12 (Combi.mul_exn 3 4);
        check_int "mul 0" 0 (Combi.mul_exn 0 max_int);
        Alcotest.check_raises "add wrap" Combi.Overflow (fun () ->
            ignore (Combi.add_exn max_int 1));
        Alcotest.check_raises "mul wrap" Combi.Overflow (fun () ->
            ignore (Combi.mul_exn ((max_int / 2) + 1) 2)));
    test "universe counts at the n=62/63/64 boundary" (fun () ->
        let crash n = Params.make ~n ~t:1 ~horizon:1 ~mode:Params.Crash in
        let om n = Params.make ~n ~t:1 ~horizon:2 ~mode:Params.Omission in
        (* largest exactly-representable crash behaviour count: 2^61 *)
        check_int "crash n=62 T=1 behaviours" (Combi.pow 2 61)
          (U.behaviour_count (crash 62));
        Alcotest.check_raises "crash n=63 behaviours" Combi.Overflow (fun () ->
            ignore (U.behaviour_count (crash 63)));
        (* the pattern count multiplies once more and overflows one step
           earlier than the per-processor behaviour count *)
        Alcotest.check_raises "crash n=62 count" Combi.Overflow (fun () ->
            ignore (U.count (crash 62)));
        Alcotest.check_raises "omission n=63 behaviours" Combi.Overflow (fun () ->
            ignore (U.behaviour_count (om 63)));
        Alcotest.check_raises "omission n=64 count" Combi.Overflow (fun () ->
            ignore (U.count (om 64)));
        Alcotest.check_raises "general omission n=64 count" Combi.Overflow (fun () ->
            ignore
              (U.count (Params.make ~n:64 ~t:1 ~horizon:2 ~mode:Params.General_omission))));
  ]

(* Pins the *intentional* shape of the sampled crash distribution
   (documented in universe.mli): crash round uniform over [1 .. T+1] with
   the extra slot aliased to the clean crash, and — the PR-5 bias fix —
   the full-recipient-set de-alias dropping a *uniform* element, not
   always the lowest-indexed one (which used to give rank 0 half the
   single-miss mass instead of 1/3). *)
let sampling_tests =
  [
    test "sampled crash: round weights 1/(T+1), de-alias unbiased" (fun () ->
        let params = Params.make ~n:4 ~t:1 ~horizon:3 ~mode:Params.Crash in
        let horizon = params.Params.horizon in
        let rng = Random.State.make [| 2025 |] in
        let total = ref 0 and clean = ref 0 in
        let per_round = Array.make (horizon + 1) 0 in
        let single = ref 0 in
        let rank = Array.make (params.Params.n - 1) 0 in
        for _ = 1 to 8000 do
          let p = U.random_pattern rng params in
          (* [faulty], not [num_failures]: the latter deliberately excludes
             clean crashes, which are half the point of this pin *)
          if B.cardinal (Pat.faulty p) = 1 then begin
            incr total;
            let proc = Option.get (B.choose (Pat.faulty p)) in
            let rest =
              List.filter (fun j -> j <> proc) (List.init params.Params.n Fun.id)
            in
            let missed k =
              List.filter
                (fun j -> not (Pat.delivers p ~round:k ~sender:proc ~receiver:j))
                rest
            in
            let rec first_miss k =
              if k > horizon then None
              else match missed k with [] -> first_miss (k + 1) | l -> Some (k, l)
            in
            match first_miss 1 with
            | None -> incr clean
            | Some (r, l) ->
                per_round.(r) <- per_round.(r) + 1;
                if List.length l = 1 then begin
                  incr single;
                  let v = List.hd l in
                  let rk = List.length (List.filter (fun j -> j < v) rest) in
                  rank.(rk) <- rank.(rk) + 1
                end
          end
        done;
        let share x = float_of_int x /. float_of_int !total in
        check "enough single-failure samples" true (!total > 3000);
        check "clean weight ~ 1/(T+1)" true (abs_float (share !clean -. 0.25) < 0.05);
        for r = 1 to horizon do
          check
            (Printf.sprintf "round %d weight ~ 1/(T+1)" r)
            true
            (abs_float (share per_round.(r) -. 0.25) < 0.05)
        done;
        check "enough single-miss samples" true (!single > 500);
        Array.iteri
          (fun i c ->
            let s = float_of_int c /. float_of_int !single in
            check
              (Printf.sprintf "missed-recipient rank %d ~ uniform" i)
              true
              (s > 0.20 && s < 0.45))
          rank);
  ]

let suite =
  ( "sim",
    value_tests @ config_tests @ pattern_tests @ universe_tests @ overflow_tests
    @ sampling_tests )
