(* Units for the synchronous substrate: values, configurations, failure
   patterns and adversary universes. *)

module V = Eba.Value
module Cfg = Eba.Config
module Pat = Eba.Pattern
module U = Eba.Universe
module Params = Eba.Params
module B = Eba.Bitset
module Combi = Eba.Combi
open Helpers

let crash_params = crash_3_1_3.params
let omission_params = omission_3_1_2.params

let value_tests =
  [
    test "negate involutive" (fun () ->
        List.iter (fun v -> check "inv" true (V.equal v (V.negate (V.negate v)))) V.all);
    test "of_int/to_int" (fun () ->
        check_int "0" 0 (V.to_int (V.of_int 0));
        check_int "1" 1 (V.to_int (V.of_int 1));
        Alcotest.check_raises "2" (Invalid_argument "Value.of_int: 2") (fun () ->
            ignore (V.of_int 2)));
  ]

let config_tests =
  [
    test "bits roundtrip" (fun () ->
        List.iter
          (fun c -> check "rt" true (Cfg.equal c (Cfg.of_bits ~n:4 (Cfg.to_bits c))))
          (Cfg.all ~n:4));
    test "all count" (fun () -> check_int "2^3" 8 (List.length (Cfg.all ~n:3)));
    test "exists_value" (fun () ->
        let c = Cfg.of_bits ~n:3 0b010 in
        check "e1" true (Cfg.exists_value c V.One);
        check "e0" true (Cfg.exists_value c V.Zero);
        check "all1 no zero" false (Cfg.exists_value (Cfg.constant ~n:3 V.One) V.Zero));
    test "all_equal" (fun () ->
        check "const" true (Cfg.all_equal (Cfg.constant ~n:3 V.Zero) = Some V.Zero);
        check "mixed" true (Cfg.all_equal (Cfg.of_bits ~n:3 1) = None));
    test "equal checks length first" (fun () ->
        check "different n" false (Cfg.equal (Cfg.of_bits ~n:3 0b101) (Cfg.of_bits ~n:4 0b101));
        check "same" true (Cfg.equal (Cfg.of_bits ~n:3 0b101) (Cfg.of_bits ~n:3 0b101)));
    test "bit packing rejects overflowing widths" (fun () ->
        Alcotest.check_raises "of_bits n=63"
          (Invalid_argument "Config: n=63 outside the bit-packing range [0, 62]")
          (fun () -> ignore (Cfg.of_bits ~n:63 0));
        Alcotest.check_raises "to_bits n=63"
          (Invalid_argument "Config: n=63 outside the bit-packing range [0, 62]")
          (fun () -> ignore (Cfg.to_bits (Cfg.constant ~n:63 V.One)));
        check_int "n=62 roundtrips" 0 (Cfg.to_bits (Cfg.of_bits ~n:62 0)));
  ]

let pattern_tests =
  [
    test "failure-free delivers everything" (fun () ->
        let p = Pat.failure_free crash_params in
        check "deliver" true (Pat.delivers p ~round:2 ~sender:0 ~receiver:1);
        check "faulty empty" true (B.is_empty (Pat.faulty p));
        check_int "f" 0 (Pat.num_failures p));
    test "crash semantics" (fun () ->
        let b = Pat.crash ~horizon:3 ~proc:0 ~round:2 ~recipients:(B.singleton 1) in
        let p = Pat.make crash_params [ b ] in
        check "before" true (Pat.delivers p ~round:1 ~sender:0 ~receiver:2);
        check "at, in set" true (Pat.delivers p ~round:2 ~sender:0 ~receiver:1);
        check "at, out of set" false (Pat.delivers p ~round:2 ~sender:0 ~receiver:2);
        check "after" false (Pat.delivers p ~round:3 ~sender:0 ~receiver:1);
        check "others unaffected" true (Pat.delivers p ~round:3 ~sender:1 ~receiver:2);
        check "crashed_before" true (Pat.crashed_before p ~proc:0 ~round:3);
        check "not crashed yet" false (Pat.crashed_before p ~proc:0 ~round:2);
        check_int "f" 1 (Pat.num_failures p));
    test "clean crash counts as faulty but not failed" (fun () ->
        let p = Pat.make crash_params [ Pat.clean_crash ~horizon:3 ~proc:1 ] in
        check "faulty" true (B.mem 1 (Pat.faulty p));
        check_int "f" 0 (Pat.num_failures p);
        check "delivers" true (Pat.delivers p ~round:3 ~sender:1 ~receiver:0));
    test "omission semantics" (fun () ->
        let omits = [| B.singleton 1; B.empty |] in
        let p = Pat.make omission_params [ Pat.omission ~horizon:2 ~proc:0 ~omits ] in
        check "omitted" false (Pat.delivers p ~round:1 ~sender:0 ~receiver:1);
        check "kept" true (Pat.delivers p ~round:1 ~sender:0 ~receiver:2);
        check "next round ok" true (Pat.delivers p ~round:2 ~sender:0 ~receiver:1);
        check_int "f" 1 (Pat.num_failures p));
    test "mode mismatch rejected" (fun () ->
        Alcotest.check_raises "crash in omission mode"
          (Invalid_argument "Pattern.make: behaviour does not match failure mode")
          (fun () ->
            ignore
              (Pat.make omission_params
                 [ Pat.crash ~horizon:2 ~proc:0 ~round:1 ~recipients:B.empty ])));
    test "too many faulty rejected" (fun () ->
        Alcotest.check_raises "t+1 faulty"
          (Invalid_argument "Pattern.make: more than t faulty processors")
          (fun () ->
            ignore
              (Pat.make crash_params
                 [ Pat.clean_crash ~horizon:3 ~proc:0; Pat.clean_crash ~horizon:3 ~proc:1 ])));
    test "self-message rejected" (fun () ->
        Alcotest.check_raises "self"
          (Invalid_argument "Pattern.crash: a processor does not message itself")
          (fun () ->
            ignore (Pat.crash ~horizon:3 ~proc:0 ~round:1 ~recipients:(B.singleton 0))));
    test "delivery queries pinned to rounds 1..horizon" (fun () ->
        (* all behaviour kinds must agree on out-of-range rounds: they are
           rejected, for nonfaulty, crashed and omitting senders alike *)
        let oob = Invalid_argument "Pattern: round out of range [1, horizon]" in
        let patterns =
          [
            Pat.failure_free crash_params;
            Pat.make crash_params
              [ Pat.crash ~horizon:3 ~proc:0 ~round:2 ~recipients:B.empty ];
            Pat.make omission_params
              [ Pat.omission ~horizon:2 ~proc:0 ~omits:[| B.singleton 1; B.empty |] ];
          ]
        in
        List.iter
          (fun p ->
            Alcotest.check_raises "round 0" oob (fun () ->
                ignore (Pat.delivers p ~round:0 ~sender:0 ~receiver:1));
            Alcotest.check_raises "past horizon" oob (fun () ->
                ignore (Pat.delivers p ~round:100 ~sender:0 ~receiver:1)))
          patterns);
  ]

let universe_tests =
  [
    test "crash behaviour count" (fun () ->
        (* clean + horizon * (2^(n-1) - 1) strict subsets *)
        check_int "n=3 T=3" 10 (List.length (U.crash_behaviours crash_params ~proc:0)));
    test "behaviour counts match behaviour_count for every proc" (fun () ->
        (* regression: the old enumeration walked every integer up to the
           bit-pattern of [rest], so the count was only right by filtering;
           proc 0 has the highest-valued [rest] and is the sharpest case *)
        let check_params params flavour =
          List.iter
            (fun proc ->
              check_int
                (Format.asprintf "%a proc %d" Params.pp params proc)
                (U.behaviour_count ~flavour params)
                (List.length (U.behaviours_for ~flavour params ~proc)))
            (Params.procs params)
        in
        List.iter
          (fun mode ->
            let params = Params.make ~n:4 ~t:2 ~horizon:2 ~mode in
            check_params params U.Exhaustive;
            check_params params U.Sparse)
          [ Params.Crash; Params.Omission; Params.General_omission ]);
    test "crash universe count formula" (fun () ->
        check_int "n=3 t=1 T=3" 31 (U.count crash_params);
        check_int "matches enumeration" (U.count crash_params)
          (List.length (U.patterns crash_params)));
    test "omission universe count formula" (fun () ->
        check_int "n=3 t=1 T=2" 49 (U.count omission_params);
        check_int "matches enumeration" (U.count omission_params)
          (List.length (U.patterns omission_params)));
    test "sparse omission universe is smaller (n=4)" (fun () ->
        (* at n=3, {∅, singletons, all} happens to be every subset, so the
           sparse flavour only thins out from n=4 up *)
        let params4 = Params.make ~n:4 ~t:1 ~horizon:2 ~mode:Params.Omission in
        let sparse = U.count ~flavour:U.Sparse params4 in
        check "smaller" true (sparse < U.count params4);
        check_int "matches enumeration" sparse
          (List.length (U.patterns ~flavour:U.Sparse params4));
        check_int "n=3 sparse = exhaustive" (U.count omission_params)
          (U.count ~flavour:U.Sparse omission_params));
    test "patterns are distinct" (fun () ->
        let ps = U.patterns crash_params in
        let sorted = List.sort_uniq Pat.compare ps in
        check_int "no duplicates" (List.length ps) (List.length sorted));
    test "random pattern respects t" (fun () ->
        let rng = Random.State.make [| 42 |] in
        for _ = 1 to 50 do
          let p = U.random_pattern rng crash_params in
          check "≤t" true (B.cardinal (Pat.faulty p) <= crash_params.Params.t_failures)
        done);
    test "cartesian" (fun () ->
        check_int "2x3" 6 (List.length (Combi.cartesian [ [ 1; 2 ]; [ 3; 4; 5 ] ]));
        check_int "empty" 1 (List.length (Combi.cartesian [])));
    test "choose" (fun () ->
        check_int "5C2" 10 (Combi.choose 5 2);
        check_int "oob" 0 (Combi.choose 3 5));
  ]

let suite = ("sim", value_tests @ config_tests @ pattern_tests @ universe_tests)
